// Package adaptivefl's repository-level benchmarks: one testing.B entry
// per paper table/figure (each measures the marginal cost of the
// experiment's unit of work — an FL round, a pool split, a test-bed
// simulation step — at a reduced scale), plus micro-benchmarks for the
// computational substrate. Regenerating the full artefacts is
// cmd/flbench's job; these benches keep the harness honest and fast.
package adaptivefl

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"adaptivefl/internal/agg"
	"adaptivefl/internal/baselines"
	"adaptivefl/internal/core"
	"adaptivefl/internal/data"
	"adaptivefl/internal/exp"
	"adaptivefl/internal/models"
	"adaptivefl/internal/nn"
	"adaptivefl/internal/prune"
	"adaptivefl/internal/rl"
	"adaptivefl/internal/sched"
	"adaptivefl/internal/tensor"
	"adaptivefl/internal/testbed"
)

// benchScale is a miniature configuration so each FL-round iteration costs
// tens of milliseconds.
func benchScale() exp.Scale {
	return exp.Scale{
		Name: "bench", Clients: 8, K: 3, Rounds: 1, EvalEvery: 1,
		SamplesPerClient: 12, TestSamples: 40, WidthScale: 0.07,
		LocalEpochs: 1, BatchSize: 6, LR: 0.05, Momentum: 0.5,
		Parallelism: 3, Seed: 1,
	}
}

func benchRunner(b *testing.B, alg string, arch models.Arch, dataset string, dist exp.Dist) baselines.Runner {
	b.Helper()
	sc := benchScale()
	fed, err := exp.BuildFederation(arch, dataset, dist, exp.DefaultProportions, sc)
	if err != nil {
		b.Fatal(err)
	}
	r, err := exp.NewRunner(alg, fed, sc)
	if err != nil {
		b.Fatal(err)
	}
	return r
}

func benchRounds(b *testing.B, r baselines.Runner) {
	b.Helper()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.Round(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1_SplitVGG16 measures building the full-scale Table 1
// pool (the split step of every AdaptiveFL round, Algorithm 1 line 4).
func BenchmarkTable1_SplitVGG16(b *testing.B) {
	cfg := models.Config{Arch: models.VGG16, NumClasses: 10}
	for i := 0; i < b.N; i++ {
		if _, err := prune.BuildPool(cfg, prune.Config{P: 3}); err != nil {
			b.Fatal(err)
		}
	}
}

// Table 2 benches: one FL round per compared algorithm.

func BenchmarkTable2_AdaptiveFL_VGG16_CIFAR10(b *testing.B) {
	benchRounds(b, benchRunner(b, "AdaptiveFL", models.VGG16, "cifar10", exp.IID))
}

func BenchmarkTable2_AllLarge_VGG16_CIFAR10(b *testing.B) {
	benchRounds(b, benchRunner(b, "All-Large", models.VGG16, "cifar10", exp.IID))
}

func BenchmarkTable2_Decoupled_VGG16_CIFAR10(b *testing.B) {
	benchRounds(b, benchRunner(b, "Decoupled", models.VGG16, "cifar10", exp.IID))
}

func BenchmarkTable2_HeteroFL_VGG16_CIFAR10(b *testing.B) {
	benchRounds(b, benchRunner(b, "HeteroFL", models.VGG16, "cifar10", exp.IID))
}

func BenchmarkTable2_ScaleFL_VGG16_CIFAR10(b *testing.B) {
	benchRounds(b, benchRunner(b, "ScaleFL", models.VGG16, "cifar10", exp.IID))
}

func BenchmarkTable2_AdaptiveFL_ResNet18_CIFAR100_Dir03(b *testing.B) {
	benchRounds(b, benchRunner(b, "AdaptiveFL", models.ResNet18, "cifar100", exp.Dir03))
}

func BenchmarkTable2_AdaptiveFL_ResNet18_FEMNIST(b *testing.B) {
	benchRounds(b, benchRunner(b, "AdaptiveFL", models.ResNet18, "femnist", exp.Natural))
}

// BenchmarkFigure2_CurveEvaluation measures one learning-curve point (the
// avg/full evaluation recorded every EvalEvery rounds in Figure 2).
func BenchmarkFigure2_CurveEvaluation(b *testing.B) {
	sc := benchScale()
	fed, err := exp.BuildFederation(models.VGG16, "cifar10", exp.IID, exp.DefaultProportions, sc)
	if err != nil {
		b.Fatal(err)
	}
	r, err := exp.NewRunner("AdaptiveFL", fed, sc)
	if err != nil {
		b.Fatal(err)
	}
	if err := r.Round(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Evaluate(fed.Test, 20); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure3_SubmodelExtraction measures slicing the three level
// submodels out of the global model (Figure 3's measurement step).
func BenchmarkFigure3_SubmodelExtraction(b *testing.B) {
	cfg := models.Config{Arch: models.VGG16, NumClasses: 10, WidthScale: 0.25, Seed: 1}
	pool, err := prune.BuildPool(cfg, prune.Config{P: 3})
	if err != nil {
		b.Fatal(err)
	}
	global := nn.StateDict(models.MustBuild(cfg, nil))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, name := range []string{"S1", "M1", "L1"} {
			for _, m := range pool.Members {
				if m.Name() != name {
					continue
				}
				if _, err := pool.ExtractState(global, m); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

// BenchmarkFigure4_Round_K50 measures one round at the Figure 4 scalability
// sweep's smallest population (50 clients, 5 per round).
func BenchmarkFigure4_Round_K50(b *testing.B) {
	sc := benchScale()
	sc.Clients = 50
	sc.K = 5
	fed, err := exp.BuildFederation(models.ResNet18, "cifar10", exp.Dir06, exp.DefaultProportions, sc)
	if err != nil {
		b.Fatal(err)
	}
	r, err := exp.NewRunner("AdaptiveFL", fed, sc)
	if err != nil {
		b.Fatal(err)
	}
	benchRounds(b, r)
}

// BenchmarkTable3_Round_Proportion811 measures a round under the 8:1:1
// weak-heavy device mix of Table 3.
func BenchmarkTable3_Round_Proportion811(b *testing.B) {
	sc := benchScale()
	fed, err := exp.BuildFederation(models.VGG16, "cifar10", exp.IID, [3]float64{8, 1, 1}, sc)
	if err != nil {
		b.Fatal(err)
	}
	r, err := exp.NewRunner("AdaptiveFL", fed, sc)
	if err != nil {
		b.Fatal(err)
	}
	benchRounds(b, r)
}

// BenchmarkTable4_CoarseRound measures a round with the coarse (p=1) pool
// of the Table 4 ablation.
func BenchmarkTable4_CoarseRound(b *testing.B) {
	benchRounds(b, benchRunner(b, "AdaptiveFL-Coarse", models.VGG16, "cifar10", exp.IID))
}

// BenchmarkFigure5_RLSelection measures the RL client-selection step
// (reward computation + sampling) on a 100-client population.
func BenchmarkFigure5_RLSelection(b *testing.B) {
	pool, err := prune.BuildPool(models.Config{Arch: models.ResNet18, NumClasses: 100, WidthScale: 0.25}, prune.Config{P: 3})
	if err != nil {
		b.Fatal(err)
	}
	tables := rl.NewTables(rl.Config{}, 3, len(pool.Members), 100)
	rng := rand.New(rand.NewSource(1))
	candidates := make([]int, 100)
	for i := range candidates {
		candidates[i] = i
	}
	// Populate with plausible history.
	for i := 0; i < 500; i++ {
		sent := pool.Members[rng.Intn(len(pool.Members))]
		got, ok := pool.LargestFit(sent, pool.Members[rng.Intn(len(pool.Members))].Size)
		if !ok {
			got = pool.Smallest()
		}
		tables.RecordDispatch(sent, got, rng.Intn(100))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tables.SelectClient(rng, rl.ModeCS, pool.Members[i%len(pool.Members)], pool, candidates)
	}
}

// BenchmarkFigure6_TestbedRound measures one simulated test-bed round
// (MobileNetV2, Widar-like, Table 5 platform).
func BenchmarkFigure6_TestbedRound(b *testing.B) {
	sc := benchScale()
	sc.Clients = 17
	sc.K = 5
	fed, err := exp.BuildFederation(models.MobileNetV2, "widar", exp.Natural, [3]float64{4, 10, 3}, sc)
	if err != nil {
		b.Fatal(err)
	}
	r, err := exp.NewRunner("AdaptiveFL", fed, sc)
	if err != nil {
		b.Fatal(err)
	}
	sim, err := testbed.NewSim(testbed.Table5Platform())
	if err != nil {
		b.Fatal(err)
	}
	a := r.(*baselines.Adaptive)
	classOf := func(id int) core.DeviceClass { return fed.Clients[id].Device.Class }
	samplesOf := func(id int) int { return fed.Clients[id].Data.Len() }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.Round(); err != nil {
			b.Fatal(err)
		}
		stats := a.Srv.Stats()
		sim.Advance(sim.RoundTime(stats[len(stats)-1], classOf, samplesOf, sc.LocalEpochs))
	}
}

// --- substrate micro-benchmarks ---

func BenchmarkGEMM_128(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := tensor.Randn(rng, 1, 128, 128)
	y := tensor.Randn(rng, 1, 128, 128)
	c := tensor.New(128, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.Gemm(false, false, 1, x, y, 0, c)
	}
}

func BenchmarkConvForward_VGGBlock(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	conv := nn.NewConv2D(rng, "c", 16, 16, 3, 1, 1, false)
	x := tensor.Randn(rng, 1, 8, 16, 16, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conv.Forward(x, true)
	}
}

// seedConvForward reproduces the seed's per-sample conv forward — one
// im2col and one scalar i-k-j GEMM per sample, with the branchy av==0
// inner loop — so the batched-path speedup can be measured against it in
// the same process regardless of machine load.
func seedConvForward(w, x *tensor.Tensor, k, stride, pad int) *tensor.Tensor {
	n, ci, h, ww := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	outC := w.Shape[0]
	oh := tensor.ConvOutSize(h, k, stride, pad)
	ow := tensor.ConvOutSize(ww, k, stride, pad)
	spatial := oh * ow
	wm := w.Reshape(outC, ci*k*k)
	cols := tensor.New(ci*k*k, spatial)
	out := tensor.New(n, outC, oh, ow)
	for s := 0; s < n; s++ {
		xs := tensor.FromSlice(x.Data[s*ci*h*ww:(s+1)*ci*h*ww], ci, h, ww)
		tensor.Im2Col(xs, k, k, stride, pad, cols)
		ys := out.Data[s*outC*spatial : (s+1)*outC*spatial]
		for i := 0; i < outC; i++ {
			yi := ys[i*spatial : (i+1)*spatial]
			ai := wm.Data[i*ci*k*k : (i+1)*ci*k*k]
			for p, av := range ai {
				if av == 0 {
					continue
				}
				bp := cols.Data[p*spatial : (p+1)*spatial]
				for j, bv := range bp {
					yi[j] += av * bv
				}
			}
		}
	}
	return out
}

// BenchmarkConvForward_SeedPerSample is the pre-batching baseline for
// BenchmarkConvForward_VGGBlock: same shapes, per-sample seed path.
func BenchmarkConvForward_SeedPerSample(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	x := tensor.Randn(rng, 1, 8, 16, 16, 16)
	w := tensor.Randn(rng, 1, 16, 16, 3, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seedConvForward(w, x, 3, 1, 1)
	}
}

// BenchmarkConv2DBatched measures one train-mode forward+backward of the
// batched im2col+GEMM convolution on the same shapes as
// BenchmarkConvForward_VGGBlock, covering all three batched GEMMs
// (forward, dW, dX).
func BenchmarkConv2DBatched(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	conv := nn.NewConv2D(rng, "c", 16, 16, 3, 1, 1, false)
	x := tensor.Randn(rng, 1, 8, 16, 16, 16)
	grad := tensor.Randn(rng, 1, 8, 16, 16, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conv.Forward(x, true)
		conv.Backward(grad)
	}
}

// BenchmarkDepthwiseForward measures the tap-vectorized depthwise kernel
// on a MobileNetV2-like block.
func BenchmarkDepthwiseForward(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	conv := nn.NewDepthwiseConv2D(rng, "d", 32, 3, 1, 1, false)
	x := tensor.Randn(rng, 1, 8, 32, 16, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conv.Forward(x, true)
	}
}

// BenchmarkGemmTiled measures the blocked GEMM kernel at sizes that span
// one and several cache panels.
func BenchmarkGemmTiled(b *testing.B) {
	for _, size := range []int{128, 256} {
		b.Run(fmt.Sprintf("%d", size), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			x := tensor.Randn(rng, 1, size, size)
			y := tensor.Randn(rng, 1, size, size)
			c := tensor.New(size, size)
			b.SetBytes(int64(8 * size * size * 3))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tensor.Gemm(false, false, 1, x, y, 0, c)
			}
		})
	}
}

// BenchmarkGemmSkinny measures the skinny-m/huge-n shape batched conv
// produces ([OutC, InC·K²] × [InC·K², N·OH·OW] with small OutC), where
// row-only chunking would leave every worker but one idle; the j-split
// grid is what keeps the pool busy here.
func BenchmarkGemmSkinny(b *testing.B) {
	for _, m := range []int{2, 8} {
		b.Run(fmt.Sprintf("m%d", m), func(b *testing.B) {
			const k, n = 72, 16384
			rng := rand.New(rand.NewSource(1))
			x := tensor.Randn(rng, 1, m, k)
			y := tensor.Randn(rng, 1, k, n)
			c := tensor.New(m, n)
			b.SetBytes(int64(8 * (m*k + k*n + m*n)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tensor.Gemm(false, false, 1, x, y, 0, c)
			}
		})
	}
}

func BenchmarkLocalTrainEpoch(b *testing.B) {
	sc := benchScale()
	mcfg, err := exp.ModelConfig(models.ResNet18, "cifar10", sc)
	if err != nil {
		b.Fatal(err)
	}
	global := nn.StateDict(models.MustBuild(mcfg, nil))
	dcfg, err := exp.DatasetConfig("cifar10", sc)
	if err != nil {
		b.Fatal(err)
	}
	train, _ := data.Generate(dcfg)
	ds := train.Subset(seqInts(sc.SamplesPerClient))
	rng := rand.New(rand.NewSource(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.TrainLocal(mcfg, nil, global, ds, sc.TrainConfig(), rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAggregateHeterogeneous(b *testing.B) {
	cfg := models.Config{Arch: models.VGG16, NumClasses: 10, WidthScale: 0.125, Seed: 1}
	pool, err := prune.BuildPool(cfg, prune.Config{P: 3})
	if err != nil {
		b.Fatal(err)
	}
	global := nn.StateDict(models.MustBuild(cfg, nil))
	var updates []agg.Update
	for _, name := range []string{"S3", "M2", "L1"} {
		for _, m := range pool.Members {
			if m.Name() != name {
				continue
			}
			st, err := pool.ExtractState(global, m)
			if err != nil {
				b.Fatal(err)
			}
			updates = append(updates, agg.Update{State: st, Weight: 10})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := agg.Aggregate(global, updates); err != nil {
			b.Fatal(err)
		}
	}
}

func seqInts(n int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = i
	}
	return s
}

// --- scheduler benchmarks ---

// benchSchedServer mirrors the sched test federation at bench scale.
func benchSchedServer(b *testing.B, n, k int) *core.Server {
	b.Helper()
	mcfg := models.Config{Arch: models.ResNet18, NumClasses: 4, WidthScale: 0.07, Seed: 3}
	pool, err := prune.BuildPool(mcfg, prune.Config{P: 3})
	if err != nil {
		b.Fatal(err)
	}
	dcfg := data.SynthConfig{Name: "b", Classes: 4, Channels: 3, Size: 32,
		Train: n * 12, Test: 40, Noise: 0.3, MaxShift: 1, Seed: 11}
	train, _ := data.Generate(dcfg)
	rng := rand.New(rand.NewSource(5))
	parts := data.PartitionIID(rng, train.Len(), n)
	devices := core.NewPopulation(rng, n, [3]float64{4, 3, 3}, pool, core.DefaultDeviceModel())
	clients := make([]*core.Client, n)
	for i := range clients {
		clients[i] = &core.Client{ID: i, Data: train.Subset(parts[i]), Device: devices[i]}
	}
	srv, err := core.NewServer(core.Config{
		Model: mcfg, Pool: prune.Config{P: 3}, ClientsPerRound: k,
		Train: core.TrainConfig{LocalEpochs: 1, BatchSize: 6, LR: 0.05, Momentum: 0.5},
		Seed:  41, Parallelism: k,
	}, clients)
	if err != nil {
		b.Fatal(err)
	}
	return srv
}

// benchSchedRound measures one engine aggregation (Step) per iteration,
// at Parallelism 1 and GOMAXPROCS, so the executor's speedup is read
// straight off the par1/parN ratio on a multi-core runner. The straggler
// trace keeps every client reachable (no stalls at any b.N).
func benchSchedRound(b *testing.B, policy sched.Policy) {
	for _, par := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("par%d", par), func(b *testing.B) {
			srv := benchSchedServer(b, 10, 4)
			sim, err := testbed.NewSim(testbed.Table5Platform())
			if err != nil {
				b.Fatal(err)
			}
			trace := &sched.RandomTrace{Seed: 7, MeanOn: 1e9, SlowProb: 0.3, SlowFactor: 3}
			eng, err := sched.New(srv, sim, trace, sched.Config{
				Policy: policy, K: 4, Extra: 2, Buffer: 2, Epochs: 1, Parallelism: par,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Step(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSchedRound_Sync(b *testing.B)          { benchSchedRound(b, sched.Sync) }
func BenchmarkSchedRound_Deadline(b *testing.B)      { benchSchedRound(b, sched.Deadline) }
func BenchmarkSchedRound_DeadlineReuse(b *testing.B) { benchSchedRound(b, sched.DeadlineReuse) }
func BenchmarkSchedRound_Semiasync(b *testing.B)     { benchSchedRound(b, sched.SemiAsync) }
