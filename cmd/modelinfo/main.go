// Command modelinfo prints the pruning split table (params / MACs / size
// ratio per pool member) for any supported architecture — Table 1 of the
// paper generalised to all three model families.
//
// Usage:
//
//	modelinfo -arch vgg16|resnet18|mobilenetv2 [-classes 10] [-p 3] [-input 32] [-scale 1.0]
package main

import (
	"flag"
	"fmt"
	"os"

	"adaptivefl/internal/models"
	"adaptivefl/internal/prune"
)

func main() {
	var (
		arch    = flag.String("arch", "vgg16", "architecture: vgg16|resnet18|mobilenetv2")
		classes = flag.Int("classes", 10, "number of classes")
		p       = flag.Int("p", 3, "submodels per level")
		input   = flag.Int("input", 32, "input resolution")
		scale   = flag.Float64("scale", 1.0, "width scale")
	)
	flag.Parse()

	mcfg := models.Config{
		Arch:       models.Arch(*arch),
		NumClasses: *classes,
		InputSize:  *input,
		WidthScale: *scale,
	}
	pool, err := prune.BuildPool(mcfg, prune.Config{P: *p})
	if err != nil {
		fmt.Fprintln(os.Stderr, "modelinfo:", err)
		os.Exit(1)
	}
	full := float64(pool.Largest().Size)
	fmt.Printf("split settings for %s (p=%d, classes=%d, input=%d, scale=%.3f)\n",
		*arch, *p, *classes, *input, *scale)
	fmt.Println("level  r_w    I    #params      #MACs  ratio")
	for i := len(pool.Members) - 1; i >= 0; i-- {
		m := pool.Members[i]
		iStr := fmt.Sprintf("%3d", m.I)
		if m.Level == prune.LevelL {
			iStr = "N/A"
		}
		fmt.Printf("%-5s  %.2f  %s  %9d  %9d  %.3f\n",
			m.Name(), m.Rw, iStr, m.Size, m.MACs, float64(m.Size)/full)
	}
}
