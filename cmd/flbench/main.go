// Command flbench regenerates the paper's tables and figures. Each
// experiment prints the same rows/series the paper reports, computed on
// the synthetic substrate at a configurable scale.
//
// Usage:
//
//	flbench -exp table1|table2|table3|table4|fig2|fig3|fig4|fig5|fig6|sched|byzantine|all \
//	        -scale quick|small|paper [-dataset cifar10,...] [-arch vgg16,...] \
//	        [-sched sync|deadline|deadline-reuse|semiasync] \
//	        [-trace straggler|churn|always] [-codec q8 [-wire-estimate]] \
//	        [-agg trim:frac=0.45] [-adversary mix:frac=0.3,signflip=1,scale=1]
//
// With -pop a parametric population spec replaces the experiment tables:
// the fleet is generated lazily (core.ParsePopulation grammar) and driven
// through the event engine — or, with -edges N > 1, through the two-tier
// edge hierarchy — for -sim-seconds of virtual time:
//
//	flbench -pop 'mix:n=1000000,weak=0.6,churn=30' -sched semiasync -edges 8
//
// With -bench-json the scheduler policies are measured (ns/round,
// allocs/round) instead; -bench-baseline diffs the fresh numbers against a
// committed baseline and exits non-zero past -bench-tol regression.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"time"

	"adaptivefl/internal/core"
	"adaptivefl/internal/exp"
	"adaptivefl/internal/models"
	"adaptivefl/internal/prune"
	"adaptivefl/internal/tensor"
	"adaptivefl/internal/wire"
)

func main() {
	var shared exp.Flags
	shared.Register(flag.CommandLine)
	var (
		expName   = flag.String("exp", "all", "experiment to run: table1|table2|table3|table4|fig2|fig3|fig4|fig5|fig6|sched|byzantine|all")
		datasets  = flag.String("datasets", "cifar10,cifar100,femnist", "Table 2 datasets (comma separated)")
		archs     = flag.String("archs", "vgg16,resnet18", "Table 2 architectures (comma separated)")
		dists     = flag.String("dists", "iid,dir0.6,dir0.3", "Table 2 distributions (comma separated)")
		benchOut  = flag.String("bench-json", "", "measure the scheduler policies (ns/round, allocs/round) and write the results to this JSON file instead of running experiments")
		benchBase = flag.String("bench-baseline", "", "with -bench-json: compare the fresh measurements against this committed baseline and fail on regression")
		benchTol  = flag.Float64("bench-tol", 0.25, "with -bench-baseline: allowed relative ns/round regression before failing (0.25 = +25%)")
		popSpec   = flag.String("pop", "", "parametric population spec (core.ParsePopulation grammar, e.g. 'mix:n=1000000,weak=0.6,churn=30'); runs a lazy-population simulation instead of the experiment tables")
		edges     = flag.Int("edges", 1, "with -pop: number of edge aggregators in the two-tier hierarchy (1 = flat)")
		simSecs   = flag.Float64("sim-seconds", 86400, "with -pop: virtual-time horizon of the simulation (default one simulated day)")
		timeScale = flag.Float64("time-scale", 0, "with -pop: multiply every priced duration by this factor (0 = auto-calibrate the reduced bench model to a realistic fleet round cadence)")
	)
	flag.Parse()

	if err := shared.Validate(); err != nil {
		fatal(err)
	}
	sc, err := shared.Scale()
	if err != nil {
		fatal(err)
	}
	obsv, obsDone, err := shared.Observability("flbench")
	if err != nil {
		fatal(err)
	}
	defer obsDone()
	sc.Observer = obsv
	if *benchOut != "" {
		fresh, err := writeSchedBench(*benchOut, sc)
		if err != nil {
			fatal(err)
		}
		if *benchBase != "" {
			if err := compareSchedBench(*benchBase, fresh, *benchTol); err != nil {
				fatal(err)
			}
		}
		return
	}
	if *popSpec != "" {
		sc.Sched = shared.Sched
		if err := runPopSim(*popSpec, sc, *edges, *simSecs, *timeScale, shared.LedgerOut); err != nil {
			fatal(err)
		}
		return
	}
	if shared.LedgerOut != "" {
		fatal(fmt.Errorf("-ledger-out requires -pop"))
	}
	// Unlike cmd/adaptivefl (which rejects specs the selected algorithm
	// would ignore), flbench runs mixed-algorithm experiments by design —
	// so say out loud which rows each spec actually touches.
	if shared.Sched != "" {
		sc.Sched = shared.Sched
		fmt.Fprintf(os.Stderr, "flbench: -sched %s applies to AdaptiveFL variants only; baseline rows keep their synchronous loops\n", shared.Sched)
	}
	sc.Trace = shared.Trace
	if shared.Agg != "" {
		sc.Agg = shared.Agg
		fmt.Fprintf(os.Stderr, "flbench: -agg %s applies to AdaptiveFL variants only; baseline rows keep their exact means\n", shared.Agg)
	}
	if shared.Adversary != "" {
		sc.Adversary = shared.Adversary
		fmt.Fprintf(os.Stderr, "flbench: -adversary %s compromises clients on AdaptiveFL rows only\n", shared.Adversary)
	}
	if shared.Codec != "" {
		sc.Codec = shared.Codec
		fmt.Fprintf(os.Stderr, "flbench: -codec %s applies to AdaptiveFL variants only; baseline rows run the exact in-memory path\n", shared.Codec)
	}
	w := os.Stdout

	run := func(name string, fn func() error) {
		start := time.Now()
		fmt.Fprintf(w, "\n==== %s (scale=%s) ====\n", name, sc.Name)
		if err := fn(); err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		fmt.Fprintf(w, "[%s done in %v]\n", name, time.Since(start).Round(time.Millisecond))
	}

	want := func(name string) bool { return *expName == "all" || *expName == name }

	if want("table1") {
		run("table1", func() error { return exp.Table1(w) })
	}
	if want("table2") {
		cells := table2Cells(*datasets, *archs, *dists)
		run("table2", func() error { return exp.Table2(w, cells, exp.Table2Algorithms, sc) })
	}
	if want("fig2") {
		run("fig2", func() error { return exp.Figure2(w, sc) })
	}
	if want("fig3") {
		run("fig3", func() error { return exp.Figure3(w, sc) })
	}
	if want("fig4") {
		pops := []int{50, 100, 200, 500}
		if sc.Name == "quick" {
			pops = []int{20, 40}
		} else if sc.Name == "small" {
			pops = []int{50, 100, 200}
		}
		run("fig4", func() error { return exp.Figure4(w, pops, sc) })
	}
	if want("table3") {
		run("table3", func() error { return exp.Table3(w, sc) })
	}
	if want("table4") {
		cells := []exp.Cell{
			{Dataset: "cifar10", Arch: models.VGG16, Dist: exp.IID},
			{Dataset: "cifar10", Arch: models.ResNet18, Dist: exp.IID},
			{Dataset: "cifar10", Arch: models.VGG16, Dist: exp.Dir03},
			{Dataset: "cifar100", Arch: models.ResNet18, Dist: exp.IID},
		}
		if sc.Name == "quick" {
			cells = cells[:2]
		}
		run("table4", func() error { return exp.Table4(w, cells, sc) })
	}
	if want("fig5") {
		run("fig5", func() error { return exp.Figure5(w, sc) })
	}
	if want("fig6") {
		run("fig6", func() error { return exp.Figure6(w, sc) })
	}
	if want("sched") {
		run("sched", func() error { return exp.TableSched(w, sc) })
	}
	if want("byzantine") {
		run("byzantine", func() error { return exp.TableByzantine(w, sc) })
	}
}

func table2Cells(datasets, archs, dists string) []exp.Cell {
	var cells []exp.Cell
	for _, ds := range strings.Split(datasets, ",") {
		ds = strings.TrimSpace(ds)
		if ds == "" {
			continue
		}
		for _, a := range strings.Split(archs, ",") {
			arch := models.Arch(strings.TrimSpace(a))
			if ds == "femnist" {
				// FEMNIST is naturally non-IID; it has a single setting.
				cells = append(cells, exp.Cell{Dataset: ds, Arch: arch, Dist: exp.Natural})
				continue
			}
			for _, d := range strings.Split(dists, ",") {
				cells = append(cells, exp.Cell{Dataset: ds, Arch: arch, Dist: exp.Dist(strings.TrimSpace(d))})
			}
		}
	}
	return cells
}

// schedBenchResult is one policy's measured cost per engine aggregation.
type schedBenchResult struct {
	NsPerRound     int64 `json:"ns_per_round"`
	AllocsPerRound int64 `json:"allocs_per_round"`
	BytesPerRound  int64 `json:"bytes_per_round"`
	Rounds         int   `json:"rounds"`
}

// schedBenchFile is the BENCH_sched.json schema: a perf baseline future
// changes can diff against, recorded with the parallelism knobs that
// produced it.
type schedBenchFile struct {
	GOMAXPROCS  int                         `json:"gomaxprocs"`
	Parallelism int                         `json:"parallelism"`
	Scale       string                      `json:"scale"`
	Policies    map[string]schedBenchResult `json:"policies"`
}

// compareSchedBench diffs a fresh measurement against a committed
// baseline: any policy present in both whose ns/round grew by more than
// tol (relative) fails the run. Policies only in the fresh file (a newly
// added policy has no baseline yet) are reported but never fail. A
// GOMAXPROCS mismatch makes the whole comparison advisory — the two
// numbers were produced by different machine configurations, so a hard
// gate would measure the hardware delta, not a code regression; the gate
// arms itself again once the baseline is re-recorded at the runner's
// configuration.
func compareSchedBench(baselinePath string, fresh schedBenchFile, tol float64) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("bench baseline: %w", err)
	}
	var base schedBenchFile
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("bench baseline %s: %w", baselinePath, err)
	}
	advisory := base.GOMAXPROCS != fresh.GOMAXPROCS
	if advisory {
		fmt.Fprintf(os.Stderr, "flbench: baseline recorded at GOMAXPROCS=%d, fresh run at %d — cross-configuration, comparison is advisory only (re-record the baseline to arm the gate)\n",
			base.GOMAXPROCS, fresh.GOMAXPROCS)
	}
	var failures []string
	for _, policy := range exp.SchedPolicies {
		f, ok := fresh.Policies[policy]
		if !ok {
			continue
		}
		b, ok := base.Policies[policy]
		if !ok {
			fmt.Fprintf(os.Stderr, "flbench: %-14s no baseline entry (new policy) — %d ns/round recorded, not compared\n",
				policy, f.NsPerRound)
			continue
		}
		ratio := float64(f.NsPerRound) / float64(b.NsPerRound)
		fmt.Fprintf(os.Stderr, "flbench: %-14s %12d ns/round vs baseline %12d (%.2fx)\n",
			policy, f.NsPerRound, b.NsPerRound, ratio)
		if ratio > 1+tol {
			failures = append(failures, fmt.Sprintf("%s regressed %.0f%% (limit %.0f%%)",
				policy, (ratio-1)*100, tol*100))
		}
	}
	if len(failures) > 0 {
		if advisory {
			fmt.Fprintf(os.Stderr, "flbench: would have failed at matched GOMAXPROCS: %s\n", strings.Join(failures, "; "))
			return nil
		}
		return fmt.Errorf("bench regression: %s", strings.Join(failures, "; "))
	}
	return nil
}

// benchRounds is the fixed per-policy measurement window: one warmup
// aggregation (pipeline fill, arena warm) then this many timed ones.
// A fixed window keeps runs comparable — testing.Benchmark's adaptive
// iteration count used to time semiasync over 4 rounds one run and 1 the
// next, and the first aggregation's fill cost made those incomparable.
const benchRounds = 4

// writeSchedBench benchmarks one engine aggregation per policy on the
// Table 5 platform federation (the same cell TableSched runs) and writes
// the results as JSON.
func writeSchedBench(path string, sc exp.Scale) (schedBenchFile, error) {
	s := sc
	s.Clients = 17
	s.K = 5
	if s.Trace == "" {
		s.Trace = "straggler"
	}
	if s.Sched == "" {
		s.Sched = "sync"
	}
	out := schedBenchFile{
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Parallelism: s.Parallelism,
		Scale:       s.Name,
		Policies:    map[string]schedBenchResult{},
	}
	for _, policy := range exp.SchedPolicies {
		run := s
		run.Sched = policy
		fed, err := exp.BuildFederation(models.MobileNetV2, "widar", exp.Natural, [3]float64{4, 10, 3}, run)
		if err != nil {
			return out, err
		}
		r, err := exp.NewRunner("AdaptiveFL", fed, run)
		if err != nil {
			return out, err
		}
		if err := r.Round(); err != nil { // warmup
			return out, fmt.Errorf("%s: %w", policy, err)
		}
		var m0, m1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&m0)
		start := time.Now()
		for i := 0; i < benchRounds; i++ {
			if err := r.Round(); err != nil {
				return out, fmt.Errorf("%s: %w", policy, err)
			}
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&m1)
		res := schedBenchResult{
			NsPerRound:     elapsed.Nanoseconds() / benchRounds,
			AllocsPerRound: int64(m1.Mallocs-m0.Mallocs) / benchRounds,
			BytesPerRound:  int64(m1.TotalAlloc-m0.TotalAlloc) / benchRounds,
			Rounds:         benchRounds,
		}
		out.Policies[policy] = res
		fmt.Fprintf(os.Stderr, "flbench: %-14s %12d ns/round %8d allocs/round (%d rounds)\n",
			policy, res.NsPerRound, res.AllocsPerRound, res.Rounds)
	}
	if err := benchMillionClients(&out, s); err != nil {
		return out, err
	}
	if err := benchDownlinkFanout(&out, s); err != nil {
		return out, err
	}
	benchGemm(&out)
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return out, err
	}
	return out, os.WriteFile(path, append(data, '\n'), 0o644)
}

// popBenchSimSeconds is the virtual window of the clients=1e6 bench row:
// long enough for a handful of global commits, short enough to keep the
// wall cost a small fraction of the policy sweep.
const popBenchSimSeconds = 240

// benchMillionClients records the lazy-population fleet at full scale as
// an extra row of the bench file: a million-client spec driven through
// the semiasync engine for a short simulated window, cost reported per
// commit. The "clients=1e6" key is not in exp.SchedPolicies, so
// compareSchedBench records it in the artifact without ever gating on it
// — the row tracks the scaling path's cost over time, advisory only.
func benchMillionClients(out *schedBenchFile, s exp.Scale) error {
	spec, err := core.ParsePopulation("mix:n=1000000,weak=0.6,churn=30")
	if err != nil {
		return err
	}
	run := s
	run.Sched = "semiasync"
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	start := time.Now()
	res, err := exp.RunPopSim(nil, spec, run, 1, popBenchSimSeconds, 0)
	if err != nil {
		return fmt.Errorf("clients=1e6: %w", err)
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	n := int64(res.Commits)
	if n < 1 {
		n = 1
	}
	row := schedBenchResult{
		NsPerRound:     elapsed.Nanoseconds() / n,
		AllocsPerRound: int64(m1.Mallocs-m0.Mallocs) / n,
		BytesPerRound:  int64(m1.TotalAlloc-m0.TotalAlloc) / n,
		Rounds:         res.Commits,
	}
	out.Policies["clients=1e6"] = row
	fmt.Fprintf(os.Stderr, "flbench: %-14s %12d ns/commit %8d allocs/commit (%d commits, live=%d made=%d)\n",
		"clients=1e6", row.NsPerRound, row.AllocsPerRound, res.Commits, res.Live, res.TotalMade)
	return nil
}

// downlinkIters fixes each downlink-fanout row's measurement window (one
// warmup round then this many timed ones).
const downlinkIters = 8

// benchDownlinkFanout records the encode-once dispatch fan-out as extra
// advisory rows: for each cohort size, the wall cost of planning one
// round's whole downlink — RL selection, artifact-store extract+encode
// for each distinct pool member, store hits for every further client.
// The "downlink=N" keys are not in exp.SchedPolicies, so compareSchedBench
// records them without gating; the point of the series is that
// BytesPerRound (bytes actually pushed through the codec per round) stays
// flat while N grows, and ns/round grows only with the per-client
// planning bookkeeping — the store encodes each (snapshot, member, codec)
// exactly once per commit no matter how wide the cohort fans out.
func benchDownlinkFanout(out *schedBenchFile, s exp.Scale) error {
	for _, n := range []int{8, 32, 128} {
		run := s
		run.Clients = n
		run.K = n
		fed, err := exp.BuildFederation(models.MobileNetV2, "widar", exp.Natural, [3]float64{4, 10, 3}, run)
		if err != nil {
			return err
		}
		srv, err := core.NewServer(core.Config{
			Model: fed.Model, Pool: prune.Config{P: 3}, ClientsPerRound: n,
			Train: run.TrainConfig(), Seed: run.Seed, Codec: wire.Q8{},
		}, fed.Clients)
		if err != nil {
			return err
		}
		key := fmt.Sprintf("downlink=%d", n)
		plan := func() (int64, error) {
			// One round's downlink, no training: plan every flight so the
			// store serves each artifact and the ledger prices real bytes.
			slots := srv.PlanSlots(n, nil)
			trainer, err := srv.RoundTrainer(slots)
			if err != nil {
				return 0, err
			}
			var bytes int64
			encoded := map[int]bool{} // members whose encode this round paid
			for _, sl := range slots {
				f := srv.OpenFlight(sl)
				pl, err := srv.Plan(trainer, f)
				if err != nil {
					return 0, err
				}
				if !encoded[sl.Sent.Index] {
					encoded[sl.Sent.Index] = true
					bytes += pl.SentBytes
				}
				srv.SkipFlight(f)
				srv.Release(f)
			}
			// Advance the snapshot so the next iteration re-encodes like a
			// fresh commit instead of replaying warm store hits: the key is
			// content-addressed, so the weights must actually move.
			st := srv.Global().Clone()
			for _, ten := range st {
				ten.Data[0] += 1e-6
				break
			}
			srv.SyncGlobal(st)
			return bytes, nil
		}
		if _, err := plan(); err != nil { // warmup
			return fmt.Errorf("%s: %w", key, err)
		}
		var bytes int64
		var m0, m1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&m0)
		start := time.Now()
		for i := 0; i < downlinkIters; i++ {
			b, err := plan()
			if err != nil {
				return fmt.Errorf("%s: %w", key, err)
			}
			bytes = b
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&m1)
		row := schedBenchResult{
			NsPerRound:     elapsed.Nanoseconds() / downlinkIters,
			AllocsPerRound: int64(m1.Mallocs-m0.Mallocs) / downlinkIters,
			BytesPerRound:  bytes,
			Rounds:         downlinkIters,
		}
		out.Policies[key] = row
		fmt.Fprintf(os.Stderr, "flbench: %-14s %12d ns/round %8d allocs/round (%d encoded bytes/round, %d clients)\n",
			key, row.NsPerRound, row.AllocsPerRound, row.BytesPerRound, n)
	}
	return nil
}

// gemmIters fixes each GEMM row's measurement window (one warmup pass
// then this many timed ones) — the same fixed-window rationale as
// benchRounds.
const gemmIters = 30

// benchGemm records the multi-core GEMM kernel at the repository
// benchmark shapes as extra advisory rows: the cache-panel square sizes
// (BenchmarkGemmTiled) and the skinny-m/huge-n conv shape whose j-split
// keeps the worker pool busy (BenchmarkGemmSkinny). The "gemm=…" keys are
// not in exp.SchedPolicies, so compareSchedBench records them in the
// artifact without ever gating on them — they track how the kernels scale
// with the runner's GOMAXPROCS over time.
func benchGemm(out *schedBenchFile) {
	shapes := []struct {
		key     string
		m, k, n int
	}{
		{"gemm=tiled128", 128, 128, 128},
		{"gemm=tiled256", 256, 256, 256},
		{"gemm=skinny-m2", 2, 72, 16384},
		{"gemm=skinny-m8", 8, 72, 16384},
	}
	for _, sh := range shapes {
		rng := rand.New(rand.NewSource(1))
		x := tensor.Randn(rng, 1, sh.m, sh.k)
		y := tensor.Randn(rng, 1, sh.k, sh.n)
		c := tensor.New(sh.m, sh.n)
		tensor.Gemm(false, false, 1, x, y, 0, c) // warmup (pool spin-up)
		var m0, m1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&m0)
		start := time.Now()
		for i := 0; i < gemmIters; i++ {
			tensor.Gemm(false, false, 1, x, y, 0, c)
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&m1)
		row := schedBenchResult{
			NsPerRound:     elapsed.Nanoseconds() / gemmIters,
			AllocsPerRound: int64(m1.Mallocs-m0.Mallocs) / gemmIters,
			BytesPerRound:  int64(m1.TotalAlloc-m0.TotalAlloc) / gemmIters,
			Rounds:         gemmIters,
		}
		out.Policies[sh.key] = row
		fmt.Fprintf(os.Stderr, "flbench: %-14s %12d ns/op %8d allocs/op (%d iters)\n",
			sh.key, row.NsPerRound, row.AllocsPerRound, row.Rounds)
	}
}

// runPopSim parses a population spec and drives it through the lazy
// population simulator, printing a one-line summary. The weights hash is
// the determinism witness: the same flags and seed reproduce it exactly.
func runPopSim(specStr string, sc exp.Scale, edges int, simSeconds, timeScale float64, ledgerOut string) error {
	spec, err := core.ParsePopulation(specStr)
	if err != nil {
		return err
	}
	if spec.N < 1 {
		spec.N = 1_000_000
	}
	policy := sc.Sched
	if policy == "" {
		policy = "semiasync"
	}
	start := time.Now()
	res, err := exp.RunPopSim(os.Stderr, spec, sc, edges, simSeconds, timeScale)
	if err != nil {
		return err
	}
	if ledgerOut != "" {
		if err := res.Ledger.WriteFile(ledgerOut); err != nil {
			return fmt.Errorf("ledger %s: %w", ledgerOut, err)
		}
		fmt.Fprintf(os.Stderr, "flbench: ledger summary written to %s\n", ledgerOut)
	}
	// stdout carries only deterministic fields: two same-seed runs must be
	// byte-identical, which is what the CI smoke job diffs. Wall time goes
	// to stderr.
	fmt.Printf("popsim clients=%d edges=%d policy=%s sim=%.0fs commits=%d edge-commits=%d live=%d made=%d rl-rows=%d mix=%d/%d/%d weights=%016x\n",
		res.Clients, res.Edges, policy, res.SimTime, res.Commits, res.EdgeCommits,
		res.Live, res.TotalMade, res.RLRows, res.Mix[0], res.Mix[1], res.Mix[2],
		res.WeightsHash)
	fmt.Fprintf(os.Stderr, "flbench: popsim wall %v\n", time.Since(start).Round(time.Millisecond))
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "flbench:", err)
	os.Exit(1)
}
