package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeBaseline(t *testing.T, f schedBenchFile) string {
	t.Helper()
	data, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "base.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestCompareSchedBench pins the regression gate: within tolerance
// passes, past tolerance fails naming the policy, and a policy without a
// baseline entry (newly added) never fails the run.
func TestCompareSchedBench(t *testing.T) {
	base := schedBenchFile{
		GOMAXPROCS: 1,
		Policies: map[string]schedBenchResult{
			"sync":     {NsPerRound: 1000},
			"deadline": {NsPerRound: 1000},
		},
	}
	path := writeBaseline(t, base)

	ok := schedBenchFile{GOMAXPROCS: 1, Policies: map[string]schedBenchResult{
		"sync":           {NsPerRound: 1200}, // +20%, inside 25%
		"deadline":       {NsPerRound: 900},  // faster
		"deadline-reuse": {NsPerRound: 9999}, // no baseline: reported, not failed
	}}
	if err := compareSchedBench(path, ok, 0.25); err != nil {
		t.Fatalf("within-tolerance comparison failed: %v", err)
	}

	bad := schedBenchFile{GOMAXPROCS: 1, Policies: map[string]schedBenchResult{
		"sync":     {NsPerRound: 1300}, // +30%, past 25%
		"deadline": {NsPerRound: 1000},
	}}
	err := compareSchedBench(path, bad, 0.25)
	if err == nil {
		t.Fatal("regression past tolerance did not fail")
	}
	if !strings.Contains(err.Error(), "sync") {
		t.Fatalf("failure does not name the regressed policy: %v", err)
	}

	if err := compareSchedBench(filepath.Join(t.TempDir(), "missing.json"), ok, 0.25); err == nil {
		t.Fatal("missing baseline file did not fail")
	}

	// A GOMAXPROCS mismatch means the two measurements came from different
	// machine configurations: the comparison turns advisory and must not
	// fail, however large the delta.
	crossMachine := schedBenchFile{GOMAXPROCS: 4, Policies: map[string]schedBenchResult{
		"sync": {NsPerRound: 5000}, // 5x "regression", but cross-configuration
	}}
	if err := compareSchedBench(path, crossMachine, 0.25); err != nil {
		t.Fatalf("cross-GOMAXPROCS comparison failed hard instead of advising: %v", err)
	}
}
