// Command fltrace answers questions from a JSONL span trace (obs
// package, -trace-out on flbench/adaptivefl). It streams: a
// million-client smoke trace passes through bounded memory.
//
//	fltrace summary [-top N] trace.jsonl
//	    Critical-path, waste/bytes breakdowns, phase and staleness
//	    histograms, hierarchy backhaul stats.
//
//	fltrace audit [-ledger ledger.json] trace.jsonl
//	    Replay the span stream and cross-check conservation invariants
//	    against the run's ledger summary (-ledger-out). Exits 1 on any
//	    violation.
//
//	fltrace join [-top N] -wall wall.jsonl trace.jsonl
//	    Correlate deterministic flight spans with wall-clock fednet HTTP
//	    records (-wall-out) via the Fednet-Flight header.
//
// Reports are deterministic: two same-seed traces render byte-identical
// output.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"adaptivefl/internal/obs/analyze"
)

func usage() {
	fmt.Fprintf(os.Stderr, "usage: fltrace <summary|audit|join> [flags] trace.jsonl\nrun 'fltrace <cmd> -h' for flags\n")
	os.Exit(2)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "summary":
		err = runSummary(os.Args[2:])
	case "audit":
		err = runAudit(os.Args[2:])
	case "join":
		err = runJoin(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "fltrace: %v\n", err)
		os.Exit(1)
	}
}

// openTrace opens the positional trace argument ("-" for stdin).
func openTrace(fs *flag.FlagSet) (io.ReadCloser, error) {
	if fs.NArg() != 1 {
		return nil, fmt.Errorf("expected exactly one trace file argument")
	}
	if path := fs.Arg(0); path != "-" {
		return os.Open(path)
	}
	return io.NopCloser(os.Stdin), nil
}

func runSummary(args []string) error {
	fs := flag.NewFlagSet("summary", flag.ExitOnError)
	top := fs.Int("top", 10, "clients to list in the per-client table")
	fs.Parse(args)
	in, err := openTrace(fs)
	if err != nil {
		return err
	}
	defer in.Close()
	s, err := analyze.Summarize(in)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(os.Stdout)
	s.Write(w, *top)
	return w.Flush()
}

func runAudit(args []string) error {
	fs := flag.NewFlagSet("audit", flag.ExitOnError)
	ledgerPath := fs.String("ledger", "", "ledger summary JSON to reconcile against (-ledger-out)")
	fs.Parse(args)
	var ledger *analyze.LedgerSummary
	if *ledgerPath != "" {
		var err error
		if ledger, err = analyze.ReadLedgerFile(*ledgerPath); err != nil {
			return err
		}
	}
	in, err := openTrace(fs)
	if err != nil {
		return err
	}
	defer in.Close()
	violations, err := analyze.Audit(in, ledger)
	if err != nil {
		return err
	}
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintf(os.Stderr, "VIOLATION: %s\n", v)
		}
		return fmt.Errorf("%d violation(s)", len(violations))
	}
	fmt.Println("audit: ok")
	return nil
}

func runJoin(args []string) error {
	fs := flag.NewFlagSet("join", flag.ExitOnError)
	wallPath := fs.String("wall", "", "wall-clock record JSONL (-wall-out) [required]")
	top := fs.Int("top", 10, "flights to list by transport overhead")
	fs.Parse(args)
	if *wallPath == "" {
		return fmt.Errorf("join requires -wall")
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("expected exactly one trace file argument")
	}
	w := bufio.NewWriter(os.Stdout)
	if err := analyze.JoinFiles(fs.Arg(0), *wallPath, w, *top); err != nil {
		return err
	}
	return w.Flush()
}
