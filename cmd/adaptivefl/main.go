// Command adaptivefl runs a single federated-learning experiment — any of
// the five algorithms on any dataset/architecture/distribution cell — and
// prints the learning curve plus final metrics.
//
// Usage:
//
//	adaptivefl -alg AdaptiveFL -dataset cifar10 -arch vgg16 -dist iid \
//	           -scale quick [-rounds 30] [-clients 50] [-k 10] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"adaptivefl/internal/baselines"
	"adaptivefl/internal/core"
	"adaptivefl/internal/exp"
	"adaptivefl/internal/fednet"
	"adaptivefl/internal/models"
	"adaptivefl/internal/obs"
	"adaptivefl/internal/obs/analyze"
	"adaptivefl/internal/prune"
	"adaptivefl/internal/wire"
)

func main() {
	var shared exp.Flags
	shared.Register(flag.CommandLine)
	shared.RegisterOverrides(flag.CommandLine)
	var (
		alg       = flag.String("alg", "AdaptiveFL", "algorithm: All-Large|Decoupled|HeteroFL|ScaleFL|AdaptiveFL|AdaptiveFL+{Greedy,Random,C,S,CS}|AdaptiveFL-Coarse")
		dataset   = flag.String("dataset", "cifar10", "dataset: cifar10|cifar100|femnist|widar")
		arch      = flag.String("arch", "vgg16", "architecture: vgg16|resnet18|mobilenetv2")
		dist      = flag.String("dist", "iid", "distribution: iid|dir0.6|dir0.3|natural")
		useFednet = flag.Bool("fednet", false, "dispatch through real loopback HTTP agents (fednet.Cluster) instead of in-process training")
		wallOut   = flag.String("wall-out", "", "with -fednet: stream wall-clock HTTP timing records (server + agent side, keyed by flight ID) to this JSONL file for `fltrace join`")
	)
	flag.Parse()

	if err := shared.Validate(); err != nil {
		fatal(err)
	}
	sc, err := shared.Scale()
	if err != nil {
		fatal(err)
	}
	obsv, obsDone, err := shared.Observability("adaptivefl")
	if err != nil {
		fatal(err)
	}
	defer obsDone()
	sc.Observer = obsv

	// The grammar of every spec flag is already validated; what remains is
	// this command's gating — a single experiment cell, so a spec that the
	// selected algorithm would silently ignore is an error, not a shrug.
	requireAdaptive := func(flagName, val string) {
		if val != "" && !strings.HasPrefix(*alg, "AdaptiveFL") {
			fatal(fmt.Errorf("-%s applies to AdaptiveFL variants only (got -alg %s)", flagName, *alg))
		}
	}
	// Only the AdaptiveFL server moves models through a codec, runs
	// through the event engine, or owns a robust aggregation stage; the
	// baselines keep their own synchronous loops and exact means.
	requireAdaptive("codec", shared.Codec)
	requireAdaptive("sched", shared.Sched)
	requireAdaptive("agg", shared.Agg)
	requireAdaptive("adversary", shared.Adversary)
	sc.Codec = shared.Codec
	sc.Agg = shared.Agg
	sc.Adversary = shared.Adversary
	if shared.Sched != "" {
		sc.Sched = shared.Sched
		sc.Trace = shared.Trace
	} else if shared.Trace != "" {
		fatal(fmt.Errorf("-trace requires -sched"))
	}
	if shared.WireEstimate && *useFednet {
		// Real agents answer with real payloads; there is nothing lazy
		// to unlock and the plan-time estimate path is in-process only.
		fatal(fmt.Errorf("-wire-estimate applies to in-process runs, not -fednet"))
	}

	if *wallOut != "" && !*useFednet {
		fatal(fmt.Errorf("-wall-out requires -fednet (wall records time real HTTP round trips)"))
	}
	ledgerOut := &shared.LedgerOut
	if *ledgerOut != "" && !strings.HasPrefix(*alg, "AdaptiveFL") {
		fatal(fmt.Errorf("-ledger-out applies to AdaptiveFL variants only (got -alg %s)", *alg))
	}

	fed, err := exp.BuildFederation(models.Arch(*arch), *dataset, exp.Dist(*dist), exp.DefaultProportions, sc)
	if err != nil {
		fatal(err)
	}
	if *useFednet {
		// Real transport: one loopback HTTP agent per client, the trainer
		// POSTing every dispatch. The AdaptiveFL pool (p=3) must match the
		// agents' — variants with a different pool cannot ride this path.
		if *alg != "AdaptiveFL" && !strings.HasPrefix(*alg, "AdaptiveFL+") {
			fatal(fmt.Errorf("-fednet applies to AdaptiveFL (p=3) variants only (got -alg %s)", *alg))
		}
		cluster, err := fednet.NewCluster(fed.Clients, fed.Model, prune.Config{P: 3}, sc.TrainConfig())
		if err != nil {
			fatal(err)
		}
		defer cluster.Close()
		if sc.Codec != "" {
			c, err := wire.ByTag(sc.Codec)
			if err != nil {
				fatal(err)
			}
			// Negotiate rather than force: the run exercises the same
			// GET /train handshake a heterogeneous fleet would.
			cluster.Trainer.Negotiate(c)
		}
		if m := sc.Observer.Metrics(); m != nil {
			// One shared registry: the trainer's dispatch round trips and
			// every agent's request handling land in the same scrape, and
			// each agent's own port additionally answers GET /metrics.
			cluster.SetMetrics(m, func(int) *obs.Metrics { return m })
			if shared.Pprof {
				for _, a := range cluster.Agents {
					a.Pprof = true
				}
			}
			fmt.Fprintf(os.Stderr, "adaptivefl: agent metrics e.g. %s\n", cluster.MetricsURL(0))
		}
		if *wallOut != "" {
			f, err := os.Create(*wallOut)
			if err != nil {
				fatal(err)
			}
			wj := obs.NewJSONLWriter(f)
			cluster.SetWallLog(wj)
			defer func() {
				if err := wj.Close(); err != nil {
					fmt.Fprintf(os.Stderr, "adaptivefl: wall %s: %v\n", *wallOut, err)
				} else {
					fmt.Fprintf(os.Stderr, "adaptivefl: wall records in %s\n", *wallOut)
				}
			}()
		}
		if _, adv, err := sc.SplitAdversary(); err != nil {
			fatal(err)
		} else if adv.Enabled() {
			// Arm the agents with the resolved (spec, seed): the attacker
			// set matches an in-process run exactly, and Corrupt clients
			// flip bits on the real HTTP payload.
			cluster.SetAdversary(adv)
			fmt.Fprintf(os.Stderr, "adaptivefl: agents armed with adversary %q (seed %d)\n", adv, adv.Seed)
		}
		sc.Trainer = cluster.Trainer
		fmt.Printf("fednet: %d loopback agents spawned (codec=%q negotiated per agent)\n",
			len(cluster.Agents), sc.Codec)
	}
	runner, err := exp.NewRunner(*alg, fed, sc)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s on %s/%s/%s — %d clients, K=%d, %d rounds (scale=%s)\n",
		runner.Name(), *dataset, *arch, *dist, sc.Clients, sc.K, sc.Rounds, sc.Name)

	start := time.Now()
	curve, err := exp.RunCurve(runner, fed, sc)
	if err != nil {
		fatal(err)
	}
	fmt.Print(curve.CSV())
	fmt.Printf("best full: %.2f%%  best avg: %.2f%%  (wall %v)\n",
		exp.BestOf(curve, "full")*100, exp.BestOf(curve, "avg")*100,
		time.Since(start).Round(time.Millisecond))
	adaptive, ok := runner.(*baselines.Adaptive)
	if sa, isSched := runner.(*baselines.SchedAdaptive); isSched {
		adaptive, ok = sa.Adaptive, true
		commits := sa.Eng.Commits()
		reused := 0
		for _, c := range commits {
			reused += c.LateReused
		}
		fmt.Printf("simulated wall-clock (policy=%s, trace=%q): %.1fs over %d aggregations",
			sc.Sched, sc.Trace, sa.SimTime(), len(commits))
		if reused > 0 {
			fmt.Printf(", %d late uploads reused", reused)
		}
		fmt.Println()
	}
	if ok {
		fmt.Printf("communication waste: %.2f%%\n", adaptive.Waste()*100)
		if sc.Agg != "" || sc.Adversary != "" || strings.Contains(sc.Trace, ";") {
			rej, clipped := 0, 0
			for _, st := range adaptive.Srv.Stats() {
				rej += st.Rejected
				clipped += st.Clipped
			}
			fmt.Printf("robust ledger (agg=%q): %d uploads rejected, %d clipped\n", sc.Agg, rej, clipped)
		}
		if sc.Codec != "" || *useFednet {
			sent, back := core.TotalWireBytes(adaptive.Srv.Stats())
			fmt.Printf("wire bytes (codec=%s): %.2f MB down, %.2f MB up\n",
				sc.Codec, float64(sent)/1e6, float64(back)/1e6)
		}
		if sc.EstimateUp {
			var est int64
			for _, st := range adaptive.Srv.Stats() {
				est += st.ReturnedBytesEst
			}
			_, back := core.TotalWireBytes(adaptive.Srv.Stats())
			fmt.Printf("uplink pricing: %.2f MB estimated vs %.2f MB actual (%+.1f%%)\n",
				float64(est)/1e6, float64(back)/1e6, pctDelta(est, back))
		}
		if *ledgerOut != "" {
			ledger := analyze.SummarizeStats(adaptive.Srv.Stats())
			ledger.Policy = "legacy"
			if sa, isSched := runner.(*baselines.SchedAdaptive); isSched {
				ledger.Policy = sc.Sched
				ledger.HasDiscounts = true
				ledger.StalenessExp = sa.Eng.StalenessExp()
				ledger.DiscountSum = sa.Eng.DiscountSum()
			}
			if err := ledger.WriteFile(*ledgerOut); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "adaptivefl: ledger summary written to %s\n", *ledgerOut)
		}
	}
}

// pctDelta returns the estimate's relative error versus actual, in percent.
func pctDelta(est, actual int64) float64 {
	if actual == 0 {
		return 0
	}
	return 100 * (float64(est) - float64(actual)) / float64(actual)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "adaptivefl:", err)
	os.Exit(1)
}
