// Command adaptivefl runs a single federated-learning experiment — any of
// the five algorithms on any dataset/architecture/distribution cell — and
// prints the learning curve plus final metrics.
//
// Usage:
//
//	adaptivefl -alg AdaptiveFL -dataset cifar10 -arch vgg16 -dist iid \
//	           -scale quick [-rounds 30] [-clients 50] [-k 10] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"adaptivefl/internal/baselines"
	"adaptivefl/internal/core"
	"adaptivefl/internal/exp"
	"adaptivefl/internal/models"
	"adaptivefl/internal/sched"
	"adaptivefl/internal/wire"
)

func main() {
	var (
		alg     = flag.String("alg", "AdaptiveFL", "algorithm: All-Large|Decoupled|HeteroFL|ScaleFL|AdaptiveFL|AdaptiveFL+{Greedy,Random,C,S,CS}|AdaptiveFL-Coarse")
		dataset = flag.String("dataset", "cifar10", "dataset: cifar10|cifar100|femnist|widar")
		arch    = flag.String("arch", "vgg16", "architecture: vgg16|resnet18|mobilenetv2")
		dist    = flag.String("dist", "iid", "distribution: iid|dir0.6|dir0.3|natural")
		scale   = flag.String("scale", "quick", "fidelity: quick|small|paper")
		rounds  = flag.Int("rounds", 0, "override rounds")
		clients = flag.Int("clients", 0, "override client population")
		k       = flag.Int("k", 0, "override clients per round")
		seed    = flag.Int64("seed", 0, "override seed")
		codec   = flag.String("codec", "", "wire codec for AdaptiveFL model transport: raw|f32|q8|delta (empty = exact in-memory)")
		schedP  = flag.String("sched", "", "aggregation policy: sync|deadline|semiasync (empty = legacy synchronous loop)")
		par     = flag.Int("par", 0, "training parallelism override (0 = the scale's default)")
		trace   = flag.String("trace", "", "availability trace for -sched runs: always|straggler[:slow=,prob=,on=]|churn[:on=,off=,...]")
	)
	flag.Parse()

	sc, err := exp.ScaleByName(*scale)
	if err != nil {
		fatal(err)
	}
	if *rounds > 0 {
		sc.Rounds = *rounds
	}
	if *clients > 0 {
		sc.Clients = *clients
	}
	if *k > 0 {
		sc.K = *k
	}
	if *seed != 0 {
		sc.Seed = *seed
	}
	if *par > 0 {
		sc.Parallelism = *par
	}
	if *codec != "" {
		if _, err := wire.ByTag(*codec); err != nil {
			fatal(err)
		}
		// Only the AdaptiveFL server moves models through a codec; a
		// baseline run with -codec would silently measure the lossless
		// in-memory path under a codec label.
		if !strings.HasPrefix(*alg, "AdaptiveFL") {
			fatal(fmt.Errorf("-codec applies to AdaptiveFL variants only (got -alg %s)", *alg))
		}
		sc.Codec = *codec
	}
	if *schedP != "" {
		if _, err := sched.ParsePolicy(*schedP); err != nil {
			fatal(err)
		}
		// Only the AdaptiveFL server runs through the event engine; the
		// baselines keep their own synchronous loops.
		if !strings.HasPrefix(*alg, "AdaptiveFL") {
			fatal(fmt.Errorf("-sched applies to AdaptiveFL variants only (got -alg %s)", *alg))
		}
		sc.Sched = *schedP
		sc.Trace = *trace
	} else if *trace != "" {
		fatal(fmt.Errorf("-trace requires -sched"))
	}

	fed, err := exp.BuildFederation(models.Arch(*arch), *dataset, exp.Dist(*dist), exp.DefaultProportions, sc)
	if err != nil {
		fatal(err)
	}
	runner, err := exp.NewRunner(*alg, fed, sc)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s on %s/%s/%s — %d clients, K=%d, %d rounds (scale=%s)\n",
		runner.Name(), *dataset, *arch, *dist, sc.Clients, sc.K, sc.Rounds, sc.Name)

	start := time.Now()
	curve, err := exp.RunCurve(runner, fed, sc)
	if err != nil {
		fatal(err)
	}
	fmt.Print(curve.CSV())
	fmt.Printf("best full: %.2f%%  best avg: %.2f%%  (wall %v)\n",
		exp.BestOf(curve, "full")*100, exp.BestOf(curve, "avg")*100,
		time.Since(start).Round(time.Millisecond))
	adaptive, ok := runner.(*baselines.Adaptive)
	if sa, isSched := runner.(*baselines.SchedAdaptive); isSched {
		adaptive, ok = sa.Adaptive, true
		last := sa.Eng.Commits()
		fmt.Printf("simulated wall-clock (policy=%s, trace=%q): %.1fs over %d aggregations\n",
			sc.Sched, sc.Trace, sa.SimTime(), len(last))
	}
	if ok {
		fmt.Printf("communication waste: %.2f%%\n", adaptive.Waste()*100)
		if sc.Codec != "" {
			sent, back := core.TotalWireBytes(adaptive.Srv.Stats())
			fmt.Printf("wire bytes (codec=%s): %.2f MB down, %.2f MB up\n",
				sc.Codec, float64(sent)/1e6, float64(back)/1e6)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "adaptivefl:", err)
	os.Exit(1)
}
