// Command adaptivefl runs a single federated-learning experiment — any of
// the five algorithms on any dataset/architecture/distribution cell — and
// prints the learning curve plus final metrics.
//
// Usage:
//
//	adaptivefl -alg AdaptiveFL -dataset cifar10 -arch vgg16 -dist iid \
//	           -scale quick [-rounds 30] [-clients 50] [-k 10] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"adaptivefl/internal/baselines"
	"adaptivefl/internal/exp"
	"adaptivefl/internal/models"
)

func main() {
	var (
		alg     = flag.String("alg", "AdaptiveFL", "algorithm: All-Large|Decoupled|HeteroFL|ScaleFL|AdaptiveFL|AdaptiveFL+{Greedy,Random,C,S,CS}|AdaptiveFL-Coarse")
		dataset = flag.String("dataset", "cifar10", "dataset: cifar10|cifar100|femnist|widar")
		arch    = flag.String("arch", "vgg16", "architecture: vgg16|resnet18|mobilenetv2")
		dist    = flag.String("dist", "iid", "distribution: iid|dir0.6|dir0.3|natural")
		scale   = flag.String("scale", "quick", "fidelity: quick|small|paper")
		rounds  = flag.Int("rounds", 0, "override rounds")
		clients = flag.Int("clients", 0, "override client population")
		k       = flag.Int("k", 0, "override clients per round")
		seed    = flag.Int64("seed", 0, "override seed")
	)
	flag.Parse()

	sc, err := exp.ScaleByName(*scale)
	if err != nil {
		fatal(err)
	}
	if *rounds > 0 {
		sc.Rounds = *rounds
	}
	if *clients > 0 {
		sc.Clients = *clients
	}
	if *k > 0 {
		sc.K = *k
	}
	if *seed != 0 {
		sc.Seed = *seed
	}

	fed, err := exp.BuildFederation(models.Arch(*arch), *dataset, exp.Dist(*dist), exp.DefaultProportions, sc)
	if err != nil {
		fatal(err)
	}
	runner, err := exp.NewRunner(*alg, fed, sc)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s on %s/%s/%s — %d clients, K=%d, %d rounds (scale=%s)\n",
		runner.Name(), *dataset, *arch, *dist, sc.Clients, sc.K, sc.Rounds, sc.Name)

	start := time.Now()
	curve, err := exp.RunCurve(runner, fed, sc)
	if err != nil {
		fatal(err)
	}
	fmt.Print(curve.CSV())
	fmt.Printf("best full: %.2f%%  best avg: %.2f%%  (wall %v)\n",
		exp.BestOf(curve, "full")*100, exp.BestOf(curve, "avg")*100,
		time.Since(start).Round(time.Millisecond))
	if a, ok := runner.(*baselines.Adaptive); ok {
		fmt.Printf("communication waste: %.2f%%\n", a.Waste()*100)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "adaptivefl:", err)
	os.Exit(1)
}
