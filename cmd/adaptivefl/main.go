// Command adaptivefl runs a single federated-learning experiment — any of
// the five algorithms on any dataset/architecture/distribution cell — and
// prints the learning curve plus final metrics.
//
// Usage:
//
//	adaptivefl -alg AdaptiveFL -dataset cifar10 -arch vgg16 -dist iid \
//	           -scale quick [-rounds 30] [-clients 50] [-k 10] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"adaptivefl/internal/agg"
	"adaptivefl/internal/baselines"
	"adaptivefl/internal/core"
	"adaptivefl/internal/exp"
	"adaptivefl/internal/fednet"
	"adaptivefl/internal/models"
	"adaptivefl/internal/obs"
	"adaptivefl/internal/obs/analyze"
	"adaptivefl/internal/prune"
	"adaptivefl/internal/sched"
	"adaptivefl/internal/wire"
)

// setupObs assembles the observability layer from the CLI flags: a JSONL
// span trace, a live /metrics endpoint (with optional pprof) and a
// per-commit progress feed on stderr. With none of the flags set it
// returns a nil observer — the zero-cost disabled path. The returned func
// flushes the trace and stops the endpoint; call it once the run is done.
func setupObs(traceOut, metricsAddr string, withPprof, progress bool) (*obs.Observer, func(), error) {
	if traceOut == "" && metricsAddr == "" && !progress {
		return nil, func() {}, nil
	}
	var m *obs.Metrics
	var done []func()
	if metricsAddr != "" {
		m = obs.NewMetrics()
	}
	o := obs.NewObserver(m)
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return nil, nil, err
		}
		jw := obs.NewJSONLWriter(f)
		o.AddSink(jw)
		done = append(done, func() {
			if err := jw.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "adaptivefl: trace %s: %v\n", traceOut, err)
			} else {
				fmt.Fprintf(os.Stderr, "adaptivefl: trace %s: %d spans\n", traceOut, jw.Count())
			}
		})
	}
	if metricsAddr != "" {
		bound, shutdown, err := obs.Serve(metricsAddr, m, withPprof)
		if err != nil {
			return nil, nil, err
		}
		fmt.Fprintf(os.Stderr, "adaptivefl: metrics on http://%s/metrics\n", bound)
		done = append(done, func() { shutdown() }) //nolint:errcheck // best-effort teardown
	}
	if progress {
		o.AddSink(obs.NewProgressSink(os.Stderr))
	}
	return o, func() {
		for _, f := range done {
			f()
		}
	}, nil
}

func main() {
	var (
		alg       = flag.String("alg", "AdaptiveFL", "algorithm: All-Large|Decoupled|HeteroFL|ScaleFL|AdaptiveFL|AdaptiveFL+{Greedy,Random,C,S,CS}|AdaptiveFL-Coarse")
		dataset   = flag.String("dataset", "cifar10", "dataset: cifar10|cifar100|femnist|widar")
		arch      = flag.String("arch", "vgg16", "architecture: vgg16|resnet18|mobilenetv2")
		dist      = flag.String("dist", "iid", "distribution: iid|dir0.6|dir0.3|natural")
		scale     = flag.String("scale", "quick", "fidelity: quick|small|paper")
		rounds    = flag.Int("rounds", 0, "override rounds")
		clients   = flag.Int("clients", 0, "override client population")
		k         = flag.Int("k", 0, "override clients per round")
		seed      = flag.Int64("seed", 0, "override seed")
		codec     = flag.String("codec", "", "wire codec for AdaptiveFL model transport: raw|f32|q8|delta (empty = exact in-memory)")
		schedP    = flag.String("sched", "", "aggregation policy: sync|deadline|deadline-reuse|semiasync (empty = legacy synchronous loop)")
		par       = flag.Int("par", 0, "training parallelism override (0 = the scale's default)")
		trace     = flag.String("trace", "", "availability trace for -sched runs: always|straggler[:slow=,prob=,on=]|churn[:on=,off=,...]; an adversary spec may ride after a ';'")
		aggP      = flag.String("agg", "", "server aggregation policy: mean|trim[:frac=]|krum[:frac=,m=]|clip[:tau=], '+'-composable (empty = exact weighted mean)")
		advP      = flag.String("adversary", "", "compromise a deterministic client fraction (core.ParseAdversary grammar, e.g. signflip:frac=0.3 or mix:frac=0.3,signflip=1,scale=1)")
		estimate  = flag.Bool("wire-estimate", false, "price scheduled codec uplinks from the codec's size estimate (lazy codec flights; requires -codec)")
		useFednet = flag.Bool("fednet", false, "dispatch through real loopback HTTP agents (fednet.Cluster) instead of in-process training")

		traceOut    = flag.String("trace-out", "", "stream every span of the run to this file as JSON lines (see docs/OBS.md)")
		ledgerOut   = flag.String("ledger-out", "", "write the run's ledger summary JSON here (the `fltrace audit` cross-check target; AdaptiveFL variants only)")
		wallOut     = flag.String("wall-out", "", "with -fednet: stream wall-clock HTTP timing records (server + agent side, keyed by flight ID) to this JSONL file for `fltrace join`")
		metricsAddr = flag.String("metrics-addr", "", "serve Prometheus metrics at this address's /metrics while the run is live (e.g. 127.0.0.1:9090); with -fednet each agent additionally serves its own /metrics")
		pprofOn     = flag.Bool("pprof", false, "with -metrics-addr: also mount net/http/pprof under /debug/pprof (and on fednet agents)")
		progressOn  = flag.Bool("progress", false, "print a live per-commit progress line to stderr")
	)
	flag.Parse()

	sc, err := exp.ScaleByName(*scale)
	if err != nil {
		fatal(err)
	}
	if *rounds > 0 {
		sc.Rounds = *rounds
	}
	if *clients > 0 {
		sc.Clients = *clients
	}
	if *k > 0 {
		sc.K = *k
	}
	if *seed != 0 {
		sc.Seed = *seed
	}
	if *par > 0 {
		sc.Parallelism = *par
	}
	obsv, obsDone, err := setupObs(*traceOut, *metricsAddr, *pprofOn, *progressOn)
	if err != nil {
		fatal(err)
	}
	defer obsDone()
	sc.Observer = obsv
	if *codec != "" {
		if _, err := wire.ByTag(*codec); err != nil {
			fatal(err)
		}
		// Only the AdaptiveFL server moves models through a codec; a
		// baseline run with -codec would silently measure the lossless
		// in-memory path under a codec label.
		if !strings.HasPrefix(*alg, "AdaptiveFL") {
			fatal(fmt.Errorf("-codec applies to AdaptiveFL variants only (got -alg %s)", *alg))
		}
		sc.Codec = *codec
	}
	if *schedP != "" {
		if _, err := sched.ParsePolicy(*schedP); err != nil {
			fatal(err)
		}
		// Only the AdaptiveFL server runs through the event engine; the
		// baselines keep their own synchronous loops.
		if !strings.HasPrefix(*alg, "AdaptiveFL") {
			fatal(fmt.Errorf("-sched applies to AdaptiveFL variants only (got -alg %s)", *alg))
		}
		sc.Sched = *schedP
		sc.Trace = *trace
	} else if *trace != "" {
		fatal(fmt.Errorf("-trace requires -sched"))
	}
	if *aggP != "" {
		if _, _, err := agg.ParsePolicy(*aggP); err != nil {
			fatal(err)
		}
		// Only the AdaptiveFL server owns a robust aggregation stage; the
		// baselines merge with their own exact means.
		if !strings.HasPrefix(*alg, "AdaptiveFL") {
			fatal(fmt.Errorf("-agg applies to AdaptiveFL variants only (got -alg %s)", *alg))
		}
		sc.Agg = *aggP
	}
	if *advP != "" {
		if _, err := core.ParseAdversary(*advP); err != nil {
			fatal(err)
		}
		if !strings.HasPrefix(*alg, "AdaptiveFL") {
			fatal(fmt.Errorf("-adversary applies to AdaptiveFL variants only (got -alg %s)", *alg))
		}
		sc.Adversary = *advP
	}
	if *estimate {
		if sc.Codec == "" {
			fatal(fmt.Errorf("-wire-estimate requires -codec (the parameter estimate already prices codec-less flights)"))
		}
		if *useFednet {
			// Real agents answer with real payloads; there is nothing lazy
			// to unlock and the plan-time estimate path is in-process only.
			fatal(fmt.Errorf("-wire-estimate applies to in-process runs, not -fednet"))
		}
		sc.EstimateUp = true
	}

	if *wallOut != "" && !*useFednet {
		fatal(fmt.Errorf("-wall-out requires -fednet (wall records time real HTTP round trips)"))
	}
	if *ledgerOut != "" && !strings.HasPrefix(*alg, "AdaptiveFL") {
		fatal(fmt.Errorf("-ledger-out applies to AdaptiveFL variants only (got -alg %s)", *alg))
	}

	fed, err := exp.BuildFederation(models.Arch(*arch), *dataset, exp.Dist(*dist), exp.DefaultProportions, sc)
	if err != nil {
		fatal(err)
	}
	if *useFednet {
		// Real transport: one loopback HTTP agent per client, the trainer
		// POSTing every dispatch. The AdaptiveFL pool (p=3) must match the
		// agents' — variants with a different pool cannot ride this path.
		if *alg != "AdaptiveFL" && !strings.HasPrefix(*alg, "AdaptiveFL+") {
			fatal(fmt.Errorf("-fednet applies to AdaptiveFL (p=3) variants only (got -alg %s)", *alg))
		}
		cluster, err := fednet.NewCluster(fed.Clients, fed.Model, prune.Config{P: 3}, sc.TrainConfig())
		if err != nil {
			fatal(err)
		}
		defer cluster.Close()
		if sc.Codec != "" {
			c, err := wire.ByTag(sc.Codec)
			if err != nil {
				fatal(err)
			}
			// Negotiate rather than force: the run exercises the same
			// GET /train handshake a heterogeneous fleet would.
			cluster.Trainer.Negotiate(c)
		}
		if m := sc.Observer.Metrics(); m != nil {
			// One shared registry: the trainer's dispatch round trips and
			// every agent's request handling land in the same scrape, and
			// each agent's own port additionally answers GET /metrics.
			cluster.SetMetrics(m, func(int) *obs.Metrics { return m })
			if *pprofOn {
				for _, a := range cluster.Agents {
					a.Pprof = true
				}
			}
			fmt.Fprintf(os.Stderr, "adaptivefl: agent metrics e.g. %s\n", cluster.MetricsURL(0))
		}
		if *wallOut != "" {
			f, err := os.Create(*wallOut)
			if err != nil {
				fatal(err)
			}
			wj := obs.NewJSONLWriter(f)
			cluster.SetWallLog(wj)
			defer func() {
				if err := wj.Close(); err != nil {
					fmt.Fprintf(os.Stderr, "adaptivefl: wall %s: %v\n", *wallOut, err)
				} else {
					fmt.Fprintf(os.Stderr, "adaptivefl: wall records in %s\n", *wallOut)
				}
			}()
		}
		if _, adv, err := sc.SplitAdversary(); err != nil {
			fatal(err)
		} else if adv.Enabled() {
			// Arm the agents with the resolved (spec, seed): the attacker
			// set matches an in-process run exactly, and Corrupt clients
			// flip bits on the real HTTP payload.
			cluster.SetAdversary(adv)
			fmt.Fprintf(os.Stderr, "adaptivefl: agents armed with adversary %q (seed %d)\n", adv, adv.Seed)
		}
		sc.Trainer = cluster.Trainer
		fmt.Printf("fednet: %d loopback agents spawned (codec=%q negotiated per agent)\n",
			len(cluster.Agents), sc.Codec)
	}
	runner, err := exp.NewRunner(*alg, fed, sc)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s on %s/%s/%s — %d clients, K=%d, %d rounds (scale=%s)\n",
		runner.Name(), *dataset, *arch, *dist, sc.Clients, sc.K, sc.Rounds, sc.Name)

	start := time.Now()
	curve, err := exp.RunCurve(runner, fed, sc)
	if err != nil {
		fatal(err)
	}
	fmt.Print(curve.CSV())
	fmt.Printf("best full: %.2f%%  best avg: %.2f%%  (wall %v)\n",
		exp.BestOf(curve, "full")*100, exp.BestOf(curve, "avg")*100,
		time.Since(start).Round(time.Millisecond))
	adaptive, ok := runner.(*baselines.Adaptive)
	if sa, isSched := runner.(*baselines.SchedAdaptive); isSched {
		adaptive, ok = sa.Adaptive, true
		commits := sa.Eng.Commits()
		reused := 0
		for _, c := range commits {
			reused += c.LateReused
		}
		fmt.Printf("simulated wall-clock (policy=%s, trace=%q): %.1fs over %d aggregations",
			sc.Sched, sc.Trace, sa.SimTime(), len(commits))
		if reused > 0 {
			fmt.Printf(", %d late uploads reused", reused)
		}
		fmt.Println()
	}
	if ok {
		fmt.Printf("communication waste: %.2f%%\n", adaptive.Waste()*100)
		if sc.Agg != "" || sc.Adversary != "" || strings.Contains(sc.Trace, ";") {
			rej, clipped := 0, 0
			for _, st := range adaptive.Srv.Stats() {
				rej += st.Rejected
				clipped += st.Clipped
			}
			fmt.Printf("robust ledger (agg=%q): %d uploads rejected, %d clipped\n", sc.Agg, rej, clipped)
		}
		if sc.Codec != "" || *useFednet {
			sent, back := core.TotalWireBytes(adaptive.Srv.Stats())
			fmt.Printf("wire bytes (codec=%s): %.2f MB down, %.2f MB up\n",
				sc.Codec, float64(sent)/1e6, float64(back)/1e6)
		}
		if sc.EstimateUp {
			var est int64
			for _, st := range adaptive.Srv.Stats() {
				est += st.ReturnedBytesEst
			}
			_, back := core.TotalWireBytes(adaptive.Srv.Stats())
			fmt.Printf("uplink pricing: %.2f MB estimated vs %.2f MB actual (%+.1f%%)\n",
				float64(est)/1e6, float64(back)/1e6, pctDelta(est, back))
		}
		if *ledgerOut != "" {
			ledger := analyze.SummarizeStats(adaptive.Srv.Stats())
			ledger.Policy = "legacy"
			if sa, isSched := runner.(*baselines.SchedAdaptive); isSched {
				ledger.Policy = sc.Sched
				ledger.HasDiscounts = true
				ledger.StalenessExp = sa.Eng.StalenessExp()
				ledger.DiscountSum = sa.Eng.DiscountSum()
			}
			if err := ledger.WriteFile(*ledgerOut); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "adaptivefl: ledger summary written to %s\n", *ledgerOut)
		}
	}
}

// pctDelta returns the estimate's relative error versus actual, in percent.
func pctDelta(est, actual int64) float64 {
	if actual == 0 {
		return 0
	}
	return 100 * (float64(est) - float64(actual)) / float64(actual)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "adaptivefl:", err)
	os.Exit(1)
}
