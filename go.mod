module adaptivefl

go 1.21
