package sched_test

import (
	"math"
	"strings"
	"testing"

	"adaptivefl/internal/core"
	"adaptivefl/internal/sched"
)

// TestRandomTraceRetireBounded is the compaction regression test: a
// long-horizon monotonic query stream with Retire behind it must hold a
// bounded segment count, while answering every query exactly as an
// un-retired twin does.
func TestRandomTraceRetireBounded(t *testing.T) {
	const clients = 6
	tr := &sched.RandomTrace{Seed: 7, MeanOn: 5, MeanOff: 5}
	ref := &sched.RandomTrace{Seed: 7, MeanOn: 5, MeanOff: 5}
	maxHeld := 0
	for now := 0.0; now < 20_000; now += 3 {
		for c := 0; c < clients; c++ {
			u1, s1, e1 := tr.Window(c, now)
			u2, s2, e2 := ref.Window(c, now)
			if u1 != u2 || s1 != s2 || e1 != e2 {
				t.Fatalf("t=%.0f client %d: retired trace answers (%v,%v,%v), reference (%v,%v,%v)",
					now, c, u1, s1, e1, u2, s2, e2)
			}
		}
		tr.Retire(now)
		if n := tr.SegmentCount(); n > maxHeld {
			maxHeld = n
		}
	}
	// Bounded: per client the active window plus the compaction slack.
	// Without Retire the same horizon accretes thousands per client.
	if limit := clients * 64; maxHeld > limit {
		t.Fatalf("retired trace held %d segments (limit %d)", maxHeld, limit)
	}
	if ref.SegmentCount() < clients*1000 {
		t.Fatalf("reference trace held only %d segments; horizon too short to exercise compaction", ref.SegmentCount())
	}
}

func popTestSpec(seed int64) core.PopulationSpec {
	spec, err := core.ParsePopulation("mix:n=200,weak=0.5,on=30,churn=15,slow=4,slowprob=0.3")
	if err != nil {
		panic(err)
	}
	spec.Seed = seed
	return spec
}

// TestPopTraceWindows pins the stateless trace's contract: windows end
// strictly after their query time, and every answer is a pure function of
// (spec seed, client, t) — no instance state, no query-order dependence.
func TestPopTraceWindows(t *testing.T) {
	a := sched.PopTrace{Spec: popTestSpec(5)}
	b := sched.PopTrace{Spec: popTestSpec(5)}
	type win struct {
		up    bool
		slow  float64
		until float64
	}
	type query struct {
		c   int
		t   float64
		got win
	}
	var forward []query
	for now := 0.0; now < 500; now += 7.3 {
		for c := 0; c < 20; c++ {
			up, slow, until := a.Window(c, now)
			if until <= now {
				t.Fatalf("window for (%d, %.1f) ends at %v, not strictly after", c, now, until)
			}
			if slow != 1 && slow != 4 {
				t.Fatalf("window slow factor %v, want 1 or 4", slow)
			}
			forward = append(forward, query{c, now, win{up, slow, until}})
		}
	}
	// Replay the exact same queries in reverse on a fresh instance.
	for i := len(forward) - 1; i >= 0; i-- {
		q := forward[i]
		up, slow, until := b.Window(q.c, q.t)
		if q.got.up != up || q.got.slow != slow || q.got.until != until {
			t.Fatalf("query order changed the answer for (%d, %.1f)", q.c, q.t)
		}
	}

	// Huge query times stay finite and well-formed (the Nextafter guard).
	for _, now := range []float64{86_400, 1e7, 1e12} {
		for c := 0; c < 5; c++ {
			if _, _, until := a.Window(c, now); until <= now || math.IsNaN(until) {
				t.Fatalf("window at t=%g ends at %v", now, until)
			}
		}
	}

	// No churn: always up, and with no slowdown configured, never-ending.
	calm := popTestSpec(6)
	calm.MeanOff, calm.SlowProb, calm.SlowFactor = 0, 0, 1
	ct := sched.PopTrace{Spec: calm}
	up, slow, until := ct.Window(3, 123)
	if !up || slow != 1 || !math.IsInf(until, 1) {
		t.Fatalf("churn-free window (%v, %v, %v), want always-on", up, slow, until)
	}
}

// TestOffsetTraceRemaps pins the shard view: local client c reads base
// client c+Offset's timeline exactly.
func TestOffsetTraceRemaps(t *testing.T) {
	base := sched.PopTrace{Spec: popTestSpec(8)}
	off := sched.OffsetTrace{Base: base, Offset: 40}
	for now := 0.0; now < 200; now += 11 {
		for c := 0; c < 10; c++ {
			u1, s1, e1 := off.Window(c, now)
			u2, s2, e2 := base.Window(c+40, now)
			if u1 != u2 || s1 != s2 || e1 != e2 {
				t.Fatalf("offset trace (%d, %.0f) != base (%d, %.0f)", c, now, c+40, now)
			}
		}
	}
}

func buildHierarchy(t *testing.T) *sched.Hierarchy {
	t.Helper()
	eds := make([]*sched.Edge, 2)
	for i := range eds {
		srv := buildServer(t, 6, 2, 50+int64(i))
		eng, err := sched.New(srv, testSim(t), &sched.RandomTrace{Seed: 9, MeanOn: 40, MeanOff: 10}, sched.Config{
			Policy: sched.SemiAsync, K: 2, Epochs: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		eds[i] = &sched.Edge{Srv: srv, Eng: eng}
	}
	h, err := sched.NewHierarchy(eds, testSim(t), sched.HierConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// TestHierarchyDeterministic runs the two-tier topology twice from the
// same seeds and requires identical global event logs, nested edge logs,
// and global weights — the hierarchy's replay property.
func TestHierarchyDeterministic(t *testing.T) {
	run := func() ([]string, []string, map[string]float64) {
		h := buildHierarchy(t)
		if err := h.Run(3, nil); err != nil {
			t.Fatal(err)
		}
		var edgeLogs []string
		for _, ed := range h.Edges() {
			edgeLogs = append(edgeLogs, ed.Eng.Log()...)
		}
		sums := map[string]float64{}
		for name, v := range h.Global() {
			sums[name] = v.Sum()
		}
		return h.Log(), edgeLogs, sums
	}
	log1, edges1, sums1 := run()
	log2, edges2, sums2 := run()
	if strings.Join(log1, "\n") != strings.Join(log2, "\n") {
		t.Fatal("global event logs differ between identical runs")
	}
	if strings.Join(edges1, "\n") != strings.Join(edges2, "\n") {
		t.Fatal("edge event logs differ between identical runs")
	}
	for name, v := range sums1 {
		if sums2[name] != v {
			t.Fatalf("global parameter %q differs between identical runs", name)
		}
	}
}

// TestHierarchyProgression checks the topology's mechanics over a short
// run: global commits arrive in virtual-time order, edge commits feed
// them, and a global merge down-syncs every edge before it next runs.
func TestHierarchyProgression(t *testing.T) {
	h := buildHierarchy(t)
	var times []float64
	if err := h.Run(3, func(gc sched.GlobalCommit) bool {
		times = append(times, gc.Time)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(times) != 3 {
		t.Fatalf("ran %d global commits, want 3", len(times))
	}
	for i := 1; i < len(times); i++ {
		if times[i] < times[i-1] {
			t.Fatalf("global commits out of order: %v", times)
		}
	}
	if h.Version() != 3 || h.Clock() <= 0 {
		t.Fatalf("version=%d clock=%v after 3 commits", h.Version(), h.Clock())
	}
	log := strings.Join(h.Log(), "\n")
	for _, want := range []string{"edge-commit", "global-arrive", "global-commit", "down-sync"} {
		if !strings.Contains(log, want) {
			t.Fatalf("global log has no %q event:\n%s", want, log)
		}
	}
	for _, ed := range h.Edges() {
		if len(ed.Eng.Commits()) == 0 {
			t.Fatal("an edge never committed")
		}
	}
}
