package sched

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"

	"adaptivefl/internal/agg"
	"adaptivefl/internal/core"
	"adaptivefl/internal/obs"
)

// evKind classifies queue events.
type evKind int

const (
	evArrive evKind = iota // the flight's upload reaches the server
	evDrop                 // the client goes offline before finishing
)

func (k evKind) String() string {
	if k == evDrop {
		return "drop"
	}
	return "arrive"
}

// flight wraps one open core.Flight with its simulation fate.
type flight struct {
	f   *core.Flight
	d   core.Dispatch // priced ledger view of the executed dispatch
	eta float64       // virtual completion (or dropout) time
	// t0 / downT / trainT are the flight's virtual trace segments for
	// observability: dispatch cut, downlink completion, local-training
	// completion. downT/trainT stay zero when the phase never completed
	// (dropout mid-phase) or the flight was priced in one piece (an
	// unplannable trainer exposes only its end). eta closes the span.
	t0, downT, trainT float64
	// drops is the flight's fate, known at launch: the client's
	// availability window ends before the upload would complete.
	drops bool
	// collected marks a flight whose completion event fired before its
	// round closed (deadline policy: it made the cut).
	collected bool
	// recorded marks flights already finalised (deadline closes a round
	// before its stragglers' events fire); their events only release.
	recorded bool
}

// event is one entry of the virtual-time queue, ordered by (t, seq) so
// simultaneous events resolve in issue order, deterministically.
type event struct {
	t    float64
	seq  int64
	kind evKind
	fl   *flight
}

// eventHeap implements container/heap over events.
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Engine is the discrete-event federated-training driver.
type Engine struct {
	cfg   Config
	srv   *core.Server
	cost  CostModel
	trace Trace
	// exec runs flight trainings off the event loop: dispatches enqueue
	// lazily and the arrival event joins the result, so the virtual clock
	// advances while workers train (see launchFlights).
	exec *core.Executor

	clock  float64
	seq    int64
	events eventHeap
	busy   map[int]bool // client id → has an open flight

	// sampled marks a population too large to scan per decision (it
	// implements core.CandidateSampler): eligibility checks and window
	// scans probe a bounded random subset through the engine-owned probe
	// rng instead of iterating every client. The probe stream is seeded by
	// a fixed constant and consumed only on the event loop, so runs stay
	// deterministic.
	sampled bool
	probe   *rand.Rand

	log     []string
	commits []Commit
	// obs is the resolved observer (Config.Observer, falling back to the
	// server's). Nil when observability is off; always safe to call.
	obs *obs.Observer
	// spanEdge tags every span this engine emits with an edge index, so a
	// hierarchy's shared trace stays groupable per tier (0 — the flat-run
	// default — marshals away, matching the global tier's spans).
	spanEdge int
	// discountSum accumulates StalenessDiscount over every update this
	// engine appended to an aggregation (fresh merges count 1.0). It is the
	// ledger-side anchor for the trace auditor's discount reconciliation.
	discountSum float64

	// semiasync stream state, persisted across Steps.
	buffer []agg.Update
	accum  core.RoundStats
	// bank holds deadline-reuse updates from late uploads that arrived
	// after their round closed (staleness discount already applied); the
	// next commit merges and clears it. Their ledger entries accumulate in
	// accum alongside it.
	bank []agg.Update
	// trainer is the cached per-version trainer for one-at-a-time
	// dispatches: RoundTrainer snapshots the global weights, so it stays
	// valid (and keeps memoizing codec pre-encodes) until the next
	// aggregation bumps the version.
	trainer    core.Trainer
	trainerVer int
}

// New builds an engine around a server. cost is required; a nil trace
// defaults to AlwaysOn.
func New(srv *core.Server, cost CostModel, trace Trace, cfg Config) (*Engine, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if srv == nil || cost == nil {
		return nil, fmt.Errorf("sched: server and cost model are required")
	}
	if trace == nil {
		trace = AlwaysOn{}
	}
	if cfg.K > srv.NumClients() {
		return nil, fmt.Errorf("sched: K=%d exceeds population %d", cfg.K, srv.NumClients())
	}
	exec := srv.Executor()
	if cfg.Parallelism > 0 {
		exec = core.NewExecutor(cfg.Parallelism)
	}
	_, sampled := srv.Population().(core.CandidateSampler)
	observer := cfg.Observer
	if observer == nil {
		observer = srv.Observer()
	}
	if observer.Enabled() {
		exec.SetObserver(observer)
	}
	return &Engine{cfg: cfg, srv: srv, cost: cost, trace: trace, exec: exec,
		busy: map[int]bool{}, sampled: sampled, obs: observer,
		probe: rand.New(rand.NewSource(0x5851f42d4c957f2d))}, nil
}

// emitFlight closes a recorded flight's span: the server supplies the
// ledger facts and RL reward, the engine the virtual trace segments.
// Record must already have run (the reward reads the updated tables).
func (e *Engine) emitFlight(fl *flight, d core.Dispatch, oc core.Outcome) {
	if !e.obs.Enabled() {
		return
	}
	sp := e.srv.FlightSpan(fl.f, d, oc)
	sp.Time = e.clock
	sp.Start = fl.t0
	sp.DownEnd = fl.downT
	sp.TrainEnd = fl.trainT
	sp.End = fl.eta
	sp.Edge = e.spanEdge
	e.obs.Span(sp)
}

// SetSpanEdge tags every span this engine emits with an edge index.
// NewHierarchy calls it so edge traces multiplexed into one sink stay
// separable; flat runs keep the zero default.
func (e *Engine) SetSpanEdge(id int) { e.spanEdge = id }

// noteMerge accrues the staleness discount of one update entering an
// aggregation. Called exactly where an update is appended (fresh merges
// have stale=0 and count 1.0), so DiscountSum is the ground truth the
// trace auditor reconciles Σ StalenessDiscount(span.stale, α) against.
func (e *Engine) noteMerge(stale int) {
	e.discountSum += StalenessDiscount(stale, e.cfg.StalenessExp)
}

// DiscountSum returns the accumulated staleness discount over every
// update this engine merged (see noteMerge).
func (e *Engine) DiscountSum() float64 { return e.discountSum }

// StalenessExp returns the normalized staleness exponent α the engine
// discounts with.
func (e *Engine) StalenessExp() float64 { return e.cfg.StalenessExp }

// Clock returns the current virtual time in seconds.
func (e *Engine) Clock() float64 { return e.clock }

// Log returns the event log: one line per dispatch, arrival, drop and
// commit, in virtual-time order. Two runs with the same seed, trace and
// cost model produce identical logs.
func (e *Engine) Log() []string { return e.log }

// Commits returns the aggregations performed so far.
func (e *Engine) Commits() []Commit { return e.commits }

func (e *Engine) logf(format string, args ...any) {
	e.log = append(e.log, fmt.Sprintf(format, args...))
}

func (e *Engine) push(t float64, kind evKind, fl *flight) {
	e.seq++
	heap.Push(&e.events, &event{t: t, seq: e.seq, kind: kind, fl: fl})
}

func (e *Engine) pop() *event { return heap.Pop(&e.events).(*event) }

// eligible reports whether client c can receive a dispatch now.
func (e *Engine) eligible(c int) bool {
	if e.busy[c] {
		return false
	}
	up, _, _ := e.trace.Window(c, e.clock)
	return up
}

// probeCount bounds how many random clients a sampled-population engine
// inspects per eligibility or window scan.
const probeCount = 64

// anyEligible reports whether some client can receive a dispatch now. On
// a sampled population it probes probeCount random clients instead of
// scanning the fleet — with any realistic on-share, missing every up
// client 64 times in a row is negligible, and a miss only delays the
// dispatch to the next wake-up, never corrupts state.
func (e *Engine) anyEligible() bool {
	if e.sampled {
		n := e.srv.NumClients()
		for i := 0; i < probeCount; i++ {
			if e.eligible(e.probe.Intn(n)) {
				return true
			}
		}
		return false
	}
	for c := 0; c < e.srv.NumClients(); c++ {
		if e.eligible(c) {
			return true
		}
	}
	return false
}

// nextOffline returns the first time in [t, horizon) at which client c is
// offline, or +Inf if the client stays up for the whole span. Consecutive
// up segments (a speed change without churn) do not count — only a real
// off window can kill a flight.
func (e *Engine) nextOffline(c int, t, horizon float64) float64 {
	for t < horizon {
		up, _, until := e.trace.Window(c, t)
		if !up {
			return t
		}
		if math.IsInf(until, 1) {
			return math.Inf(1)
		}
		t = until
	}
	return math.Inf(1)
}

// transferEnd advances t by dur seconds of network transfer, or reports
// the dropout time if the client goes offline first.
func (e *Engine) transferEnd(c int, t, dur float64) (end float64, dropped bool) {
	if off := e.nextOffline(c, t, t+dur); off < t+dur {
		return off, true
	}
	return t + dur, false
}

// trainEnd integrates `work` nominal training seconds over the client's
// trace segments starting at t: a segment with slowdown f delivers
// (segment length)/f nominal seconds of progress, and an off segment
// kills the flight. Returns the completion (or dropout) time.
func (e *Engine) trainEnd(c int, t, work float64) (end float64, dropped bool) {
	for work > 0 {
		up, slow, until := e.trace.Window(c, t)
		if !up {
			return t, true
		}
		need := work * slow
		if math.IsInf(until, 1) || t+need <= until {
			return t + need, false
		}
		work -= (until - t) / slow
		t = until
	}
	return t, false
}

// launchFlights prices and lazily executes a burst of opened flights, in
// slot order, at the current virtual time. Pricing is staged around what
// is knowable without the trained result:
//
//   - A plannable flight (in-process trainer) prices its download and
//     training phases from the plan alone. If the client drops before the
//     upload, the fate is sealed and training is skipped entirely — the
//     eager engine used to train these and discard the result unread.
//   - With the upload priceable too (parameter estimate, or a failed
//     dispatch echoing the sent size), the completion event is queued
//     immediately and training runs lazily in the background; the event
//     that consumes the result joins it (Engine.join).
//   - A codec-sized upload of a surviving flight depends on the trained
//     values, so those flights (and flights of unplannable trainers,
//     which own the pruning decision) are joined here, after every
//     flight's training has been enqueued — the joins overlap across the
//     burst instead of serialising it.
//
// Events are pushed and dispatch lines logged in slot order, so the event
// log is bit-identical to the eager engine's.
func (e *Engine) launchFlights(trainer core.Trainer, open []*core.Flight) ([]*flight, error) {
	fls := make([]*flight, len(open))
	plans := make([]*core.FlightPlan, len(open))
	needJoin := make([]bool, len(open))
	uploadAt := make([]float64, len(open))
	downAt := make([]float64, len(open))
	for i, cf := range open {
		pl, err := e.srv.Plan(trainer, cf)
		if err != nil {
			return nil, fmt.Errorf("sched: t=%.3f %w", e.clock, err)
		}
		plans[i] = pl
		if pl == nil {
			e.srv.ExecuteAsync(e.exec, trainer, cf)
			needJoin[i] = true
			continue
		}
		d := cf.Dispatch() // the plan view: training has not run
		c := d.Client
		cl := e.srv.ClientAt(c)
		down, train, up := e.cost.DispatchTimes(cl.Device.Class, d, cl.Data.Len(), e.cfg.Epochs)
		var downEnd, trainDone float64
		t, dropped := e.transferEnd(c, e.clock, down)
		if !dropped {
			downEnd = t
			if t, dropped = e.trainEnd(c, t, train); !dropped {
				trainDone = t
			}
		}
		switch {
		case dropped:
			e.srv.SkipFlight(cf)
			fls[i] = &flight{f: cf, eta: t, drops: true, t0: e.clock, downT: downEnd}
		case pl.Failed || pl.UpBytesKnown:
			t2, dropped2 := e.transferEnd(c, t, up)
			if dropped2 || pl.Failed {
				e.srv.SkipFlight(cf)
			} else {
				e.srv.ExecuteAsync(e.exec, trainer, cf)
			}
			fls[i] = &flight{f: cf, eta: t2, drops: dropped2,
				t0: e.clock, downT: downEnd, trainT: trainDone}
		default:
			e.srv.ExecuteAsync(e.exec, trainer, cf)
			needJoin[i] = true
			uploadAt[i] = t
			downAt[i] = downEnd
		}
		if fls[i] != nil {
			fls[i].d = cf.Dispatch()
		}
	}
	for i, cf := range open {
		if needJoin[i] {
			cf.Wait()
			if err := cf.Err(); err != nil {
				return nil, fmt.Errorf("sched: t=%.3f client %d: %w", e.clock, cf.Slot.Client, err)
			}
			d := cf.Dispatch()
			cl := e.srv.ClientAt(d.Client)
			down, train, up := e.cost.DispatchTimes(cl.Device.Class, d, cl.Data.Len(), e.cfg.Epochs)
			var t, downEnd, trainDone float64
			var dropped bool
			if plans[i] != nil {
				// Download and training were priced in the first pass; the
				// join only supplied the upload size.
				downEnd, trainDone = downAt[i], uploadAt[i]
				t, dropped = e.transferEnd(d.Client, uploadAt[i], up)
			} else {
				t, dropped = e.transferEnd(d.Client, e.clock, down)
				if !dropped {
					downEnd = t
					if t, dropped = e.trainEnd(d.Client, t, train); !dropped {
						trainDone = t
					}
				}
				if !dropped {
					t, dropped = e.transferEnd(d.Client, t, up)
				}
			}
			fls[i] = &flight{f: cf, d: d, eta: t, drops: dropped,
				t0: e.clock, downT: downEnd, trainT: trainDone}
		}
		fl := fls[i]
		e.busy[fl.d.Client] = true
		kind := evArrive
		if fl.drops {
			kind = evDrop
		}
		e.push(fl.eta, kind, fl)
		e.logf("%.3f dispatch c%d %s eta=%.3f%s",
			e.clock, fl.d.Client, fl.d.Sent.Name(), fl.eta, map[bool]string{true: " will-drop"}[fl.drops])
	}
	return fls, nil
}

// join waits for a flight's pending training (a no-op for skipped or
// already-joined flights) and surfaces its error. Events that consume the
// trained result call it before recording.
func (e *Engine) join(fl *flight) error {
	fl.f.Wait()
	if err := fl.f.Err(); err != nil {
		return fmt.Errorf("sched: t=%.3f client %d: %w", e.clock, fl.d.Client, err)
	}
	return nil
}

// release hands the flight's client back to the selectable pool.
func (e *Engine) release(fl *flight) {
	e.srv.Release(fl.f)
	delete(e.busy, fl.d.Client)
}

// nextWindowOpen returns the earliest time a currently-offline, not-busy
// client comes back up, or +Inf if none is offline. A sampled population
// probes: the probed minimum upper-bounds the true one, which only delays
// a wake-up — every probed down client yields a finite bound, so progress
// is preserved whenever the fleet is mostly offline.
func (e *Engine) nextWindowOpen() float64 {
	open := math.Inf(1)
	if e.sampled {
		n := e.srv.NumClients()
		for i := 0; i < probeCount; i++ {
			c := e.probe.Intn(n)
			if e.busy[c] {
				continue
			}
			if up, _, until := e.trace.Window(c, e.clock); !up && until < open {
				open = until
			}
		}
		return open
	}
	for c := 0; c < e.srv.NumClients(); c++ {
		if e.busy[c] {
			continue
		}
		if up, _, until := e.trace.Window(c, e.clock); !up && until < open {
			open = until
		}
	}
	return open
}

// waitEligible advances virtual time until at least one client is
// dispatchable, processing any queue events passed over (stragglers from
// closed rounds release their clients — or bank their uploads — here). It
// fails if nothing can ever become eligible again.
func (e *Engine) waitEligible() error {
	for {
		if e.anyEligible() {
			return nil
		}
		tNext := math.Inf(1)
		if len(e.events) > 0 {
			tNext = e.events[0].t
		}
		// A down client's window end is the other signal that can change
		// eligibility.
		if open := e.nextWindowOpen(); open < tNext {
			tNext = open
		}
		if math.IsInf(tNext, 1) {
			return fmt.Errorf("sched: stalled at t=%.3f — no client can become available", e.clock)
		}
		if len(e.events) > 0 && e.events[0].t <= tNext {
			ev := e.pop()
			e.clock = ev.t
			if err := e.settleResidual(ev); err != nil {
				return err
			}
			continue
		}
		e.clock = tNext
	}
}

// settleResidual handles an event for a flight from an already-closed
// round. A flight finalised at close time only releases its client
// (finishResidual); a deadline-reuse straggler — left open at close
// precisely so its upload could still be observed — banks its result for
// the next aggregation instead.
func (e *Engine) settleResidual(ev *event) error {
	if !ev.fl.recorded && ev.kind == evArrive {
		return e.bankResidual(ev.fl)
	}
	e.finishResidual(ev)
	return nil
}

// finishResidual handles an event for a flight that was already finalised
// when its round closed: the client is released and the outcome logged,
// but ledger and tables were settled at close time.
func (e *Engine) finishResidual(ev *event) {
	e.release(ev.fl)
	e.logf("%.3f late-%s c%d %s", e.clock, ev.kind, ev.fl.d.Client, ev.fl.d.Got.Name())
}

// bankResidual collects a deadline-reuse straggler whose upload just
// arrived: the training is joined, the dispatch is ledgered LateReused
// (recorded exactly once — the flag flips here, so a banked flight can
// never be settled again), and the update joins the bank for the next
// aggregation, weighted by the staleness discount 1/(1+s)^α anchored to
// the version the dispatch was cut from.
func (e *Engine) bankResidual(fl *flight) error {
	if err := e.join(fl); err != nil {
		return err
	}
	e.release(fl)
	fl.recorded = true
	stale := e.srv.Staleness(fl.f)
	d, u := e.srv.Record(fl.f, core.LateReused)
	e.accum.Add(d)
	if d.Failed {
		// A capacity failure that also straggled: nothing to reuse, the
		// ledger entry is plain waste.
		e.logf("%.3f late-failed c%d %s", e.clock, d.Client, d.Got.Name())
	} else if d.Rejected {
		e.logf("%.3f late-rejected c%d %s", e.clock, d.Client, d.Got.Name())
	} else {
		e.logf("%.3f late-reuse c%d %s stale=%d", e.clock, d.Client, d.Got.Name(), stale)
	}
	if u != nil {
		u.Weight *= StalenessDiscount(stale, e.cfg.StalenessExp)
		e.noteMerge(stale)
		e.bank = append(e.bank, *u)
	}
	e.emitFlight(fl, d, core.LateReused)
	return nil
}

// launchBatch opens flights for the slots in order (deterministic IDs)
// and hands them to launchFlights.
func (e *Engine) launchBatch(slots []core.Slot) ([]*flight, error) {
	trainer, err := e.srv.RoundTrainer(slots)
	if err != nil {
		return nil, fmt.Errorf("sched: t=%.3f %w", e.clock, err)
	}
	open := make([]*core.Flight, len(slots))
	for i, sl := range slots {
		open[i] = e.srv.OpenFlight(sl)
	}
	return e.launchFlights(trainer, open)
}

// commitRecorded applies one aggregation from finalised dispatches and
// logs it.
func (e *Engine) commitRecorded(round int, stats core.RoundStats, updates []agg.Update) (Commit, error) {
	stats.Round = round
	if err := e.srv.ApplyUpdates(updates); err != nil {
		return Commit{}, fmt.Errorf("sched: t=%.3f round %d aggregate: %w", e.clock, round, err)
	}
	e.srv.PushStats(stats)
	c := Commit{Round: round, Time: e.clock, Merged: len(updates)}
	for _, d := range stats.Dispatches {
		switch {
		case d.Dropped:
			c.Dropped++
		case d.Failed:
			c.Failed++
		case d.Rejected:
			c.Rejected++
		case d.LateReused:
			c.LateReused++
		case d.Late:
			c.Late++
		default:
			if d.Clipped {
				c.Clipped++
			}
		}
	}
	e.commits = append(e.commits, c)
	// The rejected/clipped suffix appears only when nonzero: honest runs
	// keep the pinned log line byte-identical to previous releases.
	suffix := ""
	if c.Rejected > 0 || c.Clipped > 0 {
		suffix = fmt.Sprintf(" rejected=%d clipped=%d", c.Rejected, c.Clipped)
	}
	e.logf("%.3f commit round=%d merged=%d failed=%d late=%d reused=%d dropped=%d%s",
		e.clock, round, c.Merged, c.Failed, c.Late, c.LateReused, c.Dropped, suffix)
	if e.obs.Enabled() {
		e.obs.Span(obs.Span{Kind: obs.KindCommit, Time: e.clock, Client: -1,
			Round: round, Edge: e.spanEdge, Merged: c.Merged, Failed: c.Failed,
			Late: c.Late, Reused: c.LateReused, Dropped: c.Dropped,
			Rejected: c.Rejected, Clipped: c.Clipped})
	}
	return c, nil
}

// stepSync runs one barrier round: plan K dispatches among the available
// clients, wait for every one of them to arrive or drop, then aggregate in
// slot order — the legacy synchronous semantics on the virtual clock.
func (e *Engine) stepSync() (Commit, error) {
	if err := e.waitEligible(); err != nil {
		return Commit{}, err
	}
	round := e.srv.NextRound()
	slots := e.srv.PlanSlots(e.cfg.K, e.eligible)
	fls, err := e.launchBatch(slots)
	if err != nil {
		return Commit{}, err
	}
	for remaining := len(fls); remaining > 0; remaining-- {
		ev := e.pop()
		e.clock = ev.t
		if err := e.join(ev.fl); err != nil {
			return Commit{}, err
		}
		e.release(ev.fl)
		e.logf("%.3f %s c%d %s", e.clock, ev.kind, ev.fl.d.Client, ev.fl.d.Got.Name())
	}
	stats := core.RoundStats{}
	var updates []agg.Update
	for _, fl := range fls {
		oc := core.Merged
		if fl.drops {
			oc = core.Dropped
		}
		stale := e.srv.Staleness(fl.f)
		d, u := e.srv.Record(fl.f, oc)
		stats.Add(d)
		if u != nil {
			e.noteMerge(stale)
			updates = append(updates, *u)
		}
		e.emitFlight(fl, d, oc)
	}
	return e.commitRecorded(round, stats, updates)
}

// stepDeadline runs one over-provisioned round: dispatch K+Δ, close as
// soon as K responses are in (or the absolute deadline passes with at
// least one). At close, stragglers are finalised as Late/Dropped waste —
// or, with reuse (the deadline-reuse policy), left open so their uploads
// can be banked when they eventually arrive and merged into a later
// aggregation under the staleness discount, alongside any bank the
// previous rounds accumulated.
func (e *Engine) stepDeadline(reuse bool) (Commit, error) {
	if err := e.waitEligible(); err != nil {
		return Commit{}, err
	}
	round := e.srv.NextRound()
	slots := e.srv.PlanSlots(e.cfg.K+e.cfg.Extra, e.eligible)
	fls, err := e.launchBatch(slots)
	if err != nil {
		return Commit{}, err
	}
	target := e.cfg.K
	if target > len(fls) {
		target = len(fls)
	}
	deadline := math.Inf(1)
	if e.cfg.Deadline > 0 {
		deadline = e.clock + e.cfg.Deadline
	}
	thisRound := make(map[*flight]bool, len(fls))
	for _, fl := range fls {
		thisRound[fl] = true
	}
	// pending counts this round's flights still in the queue: once they
	// are exhausted (everything else dropped) the round closes with what
	// it has — prior rounds' residual events must not extend the wait.
	pending := len(fls)
	arrived := 0
	for arrived < target && pending > 0 {
		// Past the deadline with something in hand: stop waiting. (With an
		// empty hand the round stays open until the first response, which
		// may itself land past the deadline — the clock only ever moves
		// forward, so the close time is the later of the two.)
		if arrived >= 1 && e.events[0].t > deadline {
			if e.clock < deadline {
				e.clock = deadline
			}
			e.logf("%.3f deadline round=%d arrived=%d", e.clock, round, arrived)
			break
		}
		ev := e.pop()
		e.clock = ev.t
		if !thisRound[ev.fl] {
			// A prior round's flight: its client releases either way; a
			// reuse straggler additionally banks its upload.
			if err := e.settleResidual(ev); err != nil {
				return Commit{}, err
			}
			continue
		}
		if err := e.join(ev.fl); err != nil {
			return Commit{}, err
		}
		e.release(ev.fl)
		e.logf("%.3f %s c%d %s", e.clock, ev.kind, ev.fl.d.Client, ev.fl.d.Got.Name())
		pending--
		ev.fl.collected = true
		if ev.kind == evArrive {
			arrived++
		}
	}
	// The bank goes first: its entries arrived (in virtual time) before
	// this round's close, and merging banked updates ahead of fresh ones
	// keeps the aggregation order deterministic.
	stats := core.RoundStats{}
	var updates []agg.Update
	if reuse {
		stats, updates = e.accum, e.bank
		e.accum, e.bank = core.RoundStats{}, nil
	}
	for _, fl := range fls {
		var oc core.Outcome
		switch {
		case fl.collected && !fl.drops:
			oc = core.Merged
		case fl.drops:
			oc = core.Dropped
		case reuse:
			// The straggler's upload is still in flight and will be banked
			// at its arrival event; its ledger entry lands with the
			// aggregation that consumes it.
			continue
		default:
			// A straggler ledgered Late at close: its upload is discarded,
			// so a training still queued behind a worker is abandoned (the
			// ledger view falls back to the plan, which carries identical
			// fields for a discarded outcome).
			oc = core.Late
			fl.f.Cancel()
		}
		fl.recorded = true
		stale := e.srv.Staleness(fl.f)
		d, u := e.srv.Record(fl.f, oc)
		stats.Add(d)
		if u != nil {
			e.noteMerge(stale)
			updates = append(updates, *u)
		}
		e.emitFlight(fl, d, oc)
	}
	return e.commitRecorded(round, stats, updates)
}

// currentTrainer returns the trainer for one-at-a-time dispatches,
// rebuilding it only when an aggregation has moved the global weights.
func (e *Engine) currentTrainer() (core.Trainer, error) {
	if e.trainer == nil || e.trainerVer != e.srv.Version() {
		trainer, err := e.srv.RoundTrainer(nil)
		if err != nil {
			return nil, err
		}
		e.trainer, e.trainerVer = trainer, e.srv.Version()
	}
	return e.trainer, nil
}

// refill tops the in-flight set back up to K, one planned dispatch at a
// time, among currently eligible clients. The burst's flights are opened
// in plan order (deterministic IDs, rng stream identical to one-at-a-time
// dispatching) and then launched together, so their trainings overlap on
// the executor instead of serialising the refill.
func (e *Engine) refill() error {
	var open []*core.Flight
	var trainer core.Trainer
	for e.srv.InFlight() < e.cfg.K {
		slots := e.srv.PlanSlots(1, e.eligible)
		if len(slots) == 0 {
			break // nobody dispatchable right now
		}
		if trainer == nil {
			var err error
			if trainer, err = e.currentTrainer(); err != nil {
				return fmt.Errorf("sched: t=%.3f %w", e.clock, err)
			}
		}
		// Mark the client busy immediately so the next PlanSlots cannot
		// re-pick it (launchFlights marks it again, idempotently).
		e.busy[slots[0].Client] = true
		open = append(open, e.srv.OpenFlight(slots[0]))
	}
	if len(open) == 0 {
		return nil
	}
	_, err := e.launchFlights(trainer, open)
	return err
}

// stepSemiAsync advances the buffered-asynchronous stream until the next
// aggregation: keep K dispatches in flight, fold every arrival into the
// buffer with its staleness discount, and commit once B updates are in.
func (e *Engine) stepSemiAsync() (Commit, error) {
	for {
		if err := e.refill(); err != nil {
			return Commit{}, err
		}
		if len(e.events) == 0 {
			// Nothing in flight and nobody eligible: wait for a window.
			if err := e.waitEligible(); err != nil {
				return Commit{}, err
			}
			continue
		}
		// Below the in-flight target with clients merely offline: if a
		// window opens before the next queued event, jump there and cut
		// the dispatch immediately instead of letting the client idle
		// until an unrelated arrival happens to wake the loop.
		if e.srv.InFlight() < e.cfg.K {
			if open := e.nextWindowOpen(); open < e.events[0].t {
				e.clock = open
				continue
			}
		}
		ev := e.pop()
		e.clock = ev.t
		e.release(ev.fl)
		if ev.kind == evDrop {
			d, _ := e.srv.Record(ev.fl.f, core.Dropped)
			e.accum.Add(d)
			e.logf("%.3f drop c%d %s", e.clock, ev.fl.d.Client, ev.fl.d.Sent.Name())
			e.emitFlight(ev.fl, d, core.Dropped)
			continue
		}
		if err := e.join(ev.fl); err != nil {
			return Commit{}, err
		}
		stale := e.srv.Staleness(ev.fl.f)
		d, u := e.srv.Record(ev.fl.f, core.Merged)
		e.accum.Add(d)
		e.logf("%.3f arrive c%d %s stale=%d", e.clock, d.Client, d.Got.Name(), stale)
		e.emitFlight(ev.fl, d, core.Merged)
		if u != nil {
			u.Weight *= StalenessDiscount(stale, e.cfg.StalenessExp)
			e.noteMerge(stale)
			e.buffer = append(e.buffer, *u)
		}
		if len(e.buffer) >= e.cfg.Buffer {
			round := e.srv.NextRound()
			c, err := e.commitRecorded(round, e.accum, e.buffer)
			if err != nil {
				return Commit{}, err
			}
			e.buffer, e.accum = nil, core.RoundStats{}
			return c, nil
		}
	}
}

// Compactor is implemented by traces that can discard timeline state
// wholly behind a time bound (RandomTrace's generated segments). The
// engine's clock is monotonic and every trace query it issues is at or
// after the current clock, so Step retires everything behind the clock
// before advancing — without this, generated timelines grow O(time).
type Compactor interface {
	Retire(t float64)
}

// Step advances the schedule until the next aggregation and returns it.
func (e *Engine) Step() (Commit, error) {
	if c, ok := e.trace.(Compactor); ok {
		c.Retire(e.clock)
	}
	switch e.cfg.Policy {
	case Sync:
		return e.stepSync()
	case Deadline:
		return e.stepDeadline(false)
	case DeadlineReuse:
		return e.stepDeadline(true)
	case SemiAsync:
		return e.stepSemiAsync()
	}
	return Commit{}, fmt.Errorf("sched: unknown policy %q", e.cfg.Policy)
}

// Run performs n aggregations, invoking cb (if non-nil) after each; cb
// returning false stops early.
func (e *Engine) Run(n int, cb func(Commit) bool) error {
	for i := 0; i < n; i++ {
		c, err := e.Step()
		if err != nil {
			return err
		}
		if cb != nil && !cb(c) {
			return nil
		}
	}
	return nil
}
