package sched_test

import (
	"math"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"adaptivefl/internal/core"
	"adaptivefl/internal/sched"
	"adaptivefl/internal/wire"
)

// reuseScenario runs the 10×-slow-straggler federation (the same fleet as
// TestStragglerPolicies) under the given policy and staleness exponent.
func reuseScenario(t *testing.T, policy sched.Policy, alpha float64, rounds int) (*sched.Engine, *core.Server) {
	t.Helper()
	const n, k = 10, 5
	srv := buildServer(t, n, k, 47)
	// Populations are built bit-identically per seed, so probing the run's
	// own server is as structural as probing a throwaway copy.
	straggle := -1
	for i, c := range srv.Clients() {
		if c.Device.Class == core.Weak {
			straggle = i
			break
		}
	}
	if straggle < 0 {
		t.Fatal("no weak client in the population")
	}
	trace := &sched.RandomTrace{
		Seed: 7, MeanOn: 1e9, // one long segment: the slowdown is permanent
		SlowProb: 1, SlowFactor: 10,
		SlowOnly: func(c int) bool { return c == straggle },
	}
	eng, err := sched.New(srv, testSim(t), trace, sched.Config{
		Policy: policy, K: k, Extra: 2, Epochs: 1, StalenessExp: alpha,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(rounds, nil); err != nil {
		t.Fatalf("%s: %v", policy, err)
	}
	return eng, srv
}

// reuseStales extracts the stale= values of the late-reuse log lines.
func reuseStales(t *testing.T, log []string) []int {
	t.Helper()
	var stales []int
	for _, line := range log {
		if !strings.Contains(line, "late-reuse") {
			continue
		}
		i := strings.LastIndex(line, "stale=")
		if i < 0 {
			t.Fatalf("late-reuse line without stale: %q", line)
		}
		s, err := strconv.Atoi(line[i+len("stale="):])
		if err != nil {
			t.Fatalf("bad stale in %q: %v", line, err)
		}
		stales = append(stales, s)
	}
	return stales
}

// TestDeadlineReuseBanksStragglers is the reuse policy's reason to exist:
// under a permanent 10×-slow straggler, late uploads must be banked and
// merged into the next aggregation (ledgered LateReused, never
// double-merged), the schedule must finish no later than plain deadline's,
// and the whole run must be bit-deterministic.
func TestDeadlineReuseBanksStragglers(t *testing.T) {
	rounds := 4
	if testing.Short() {
		rounds = 3
	}

	engD, _ := reuseScenario(t, sched.Deadline, 0, rounds)
	engR, srvR := reuseScenario(t, sched.DeadlineReuse, 0, rounds)

	// ≥1 late upload banked and merged, with a real staleness gap.
	reused := 0
	for _, c := range engR.Commits() {
		reused += c.LateReused
	}
	if reused == 0 {
		t.Fatal("deadline-reuse merged no late uploads — pick another seed")
	}
	stales := reuseStales(t, engR.Log())
	if len(stales) != reused {
		t.Fatalf("%d late-reuse log lines for %d LateReused commits", len(stales), reused)
	}
	maxStale := 0
	for _, s := range stales {
		if s > maxStale {
			maxStale = s
		}
	}
	if maxStale < 1 {
		t.Fatalf("banked uploads all carried stale=0 — the discount path is untested (stales=%v)", stales)
	}

	// Reuse must not slow the schedule down: round closes are identical,
	// only the late uploads' fate changes.
	if engR.Clock() > engD.Clock() {
		t.Fatalf("deadline-reuse took %.1fs vs deadline %.1fs — reuse must not slow the schedule",
			engR.Clock(), engD.Clock())
	}

	// Ledger invariants: every dispatched flight is recorded exactly once
	// across all commits, and LateReused entries are consistent.
	dispatchLines := 0
	for _, line := range engR.Log() {
		if strings.Contains(line, " dispatch ") {
			dispatchLines++
		}
	}
	entries, ledgerReused := 0, 0
	for _, st := range srvR.Stats() {
		ledgerReused += st.LateReused
		for _, d := range st.Dispatches {
			entries++
			if d.LateReused && !d.Late {
				t.Fatalf("LateReused dispatch without Late: %+v", d)
			}
			if d.LateReused && (d.Failed || d.Dropped) {
				t.Fatalf("LateReused dispatch marked Failed/Dropped: %+v", d)
			}
		}
	}
	if ledgerReused != reused {
		t.Fatalf("ledger counts %d LateReused, commits count %d", ledgerReused, reused)
	}
	// Stragglers still open at the end of the run are legitimately
	// unrecorded; everything settled must appear exactly once, so the
	// ledger plus the in-flight set must account for every dispatch.
	if entries+srvR.InFlight() != dispatchLines {
		t.Fatalf("%d ledger entries + %d in flight ≠ %d dispatches — a flight was double-recorded or lost",
			entries, srvR.InFlight(), dispatchLines)
	}

	// A LateReused upload contributes returned parameters (it was not
	// waste), unlike a discarded Late one.
	for _, st := range srvR.Stats() {
		if st.LateReused > 0 && st.ReturnedParams == 0 {
			t.Fatalf("round %d reused %d uploads but counted no returned params", st.Round, st.LateReused)
		}
	}

	// Bit-determinism: an identical second run replays exactly.
	engR2, srvR2 := reuseScenario(t, sched.DeadlineReuse, 0, rounds)
	if !reflect.DeepEqual(engR.Log(), engR2.Log()) {
		t.Fatalf("deadline-reuse event logs differ across identical runs:\nA: %s\nB: %s",
			strings.Join(engR.Log(), "\n   "), strings.Join(engR2.Log(), "\n   "))
	}
	sumsA, sumsB := globalSums(srvR), globalSums(srvR2)
	for name, v := range sumsA {
		if sumsB[name] != v {
			t.Fatalf("parameter %q differs across identical deadline-reuse runs", name)
		}
	}

	// The staleness discount must actually bite: disabling it (α = 0 via
	// the negative sentinel) changes the aggregated weights.
	_, srvNoDisc := reuseScenario(t, sched.DeadlineReuse, -1, rounds)
	sumsND := globalSums(srvNoDisc)
	same := true
	for name, v := range sumsA {
		if sumsND[name] != v {
			same = false
			break
		}
	}
	if same {
		t.Fatal("disabling the staleness discount changed nothing — the discount is not applied")
	}
}

// TestStalenessDiscount pins the 1/(1+s)^α formula and its edge cases.
func TestStalenessDiscount(t *testing.T) {
	cases := []struct {
		stale int
		exp   float64
		want  float64
	}{
		{0, 0.5, 1},
		{-3, 0.5, 1},
		{1, 0.5, 1 / math.Sqrt(2)},
		{3, 0.5, 0.5},
		{3, 1, 0.25},
		{5, 0, 1},
	}
	for _, c := range cases {
		if got := sched.StalenessDiscount(c.stale, c.exp); math.Abs(got-c.want) > 1e-15 {
			t.Fatalf("StalenessDiscount(%d, %v) = %v, want %v", c.stale, c.exp, got, c.want)
		}
	}
}

// buildCodecServer is buildServer with the in-process wire codec (and
// optionally estimate-mode uplink pricing) configured.
func buildCodecServer(t *testing.T, n, k int, seed int64, codec wire.Codec, estimate bool) *core.Server {
	t.Helper()
	return buildServerCfg(t, n, k, seed, func(cfg *core.Config) {
		cfg.Codec = codec
		cfg.EstimateUpBytes = estimate
	})
}

// TestEstimateModeMatchesActualWeights: under the sync policy the
// aggregation order is slot order, so pricing the uplink from the codec's
// size estimate (full laziness) instead of the actual encoded length must
// change simulated times but not a single weight — and the ledger must
// carry both the estimate and the actual bytes.
func TestEstimateModeMatchesActualWeights(t *testing.T) {
	rounds := 2
	run := func(estimate bool) (*sched.Engine, *core.Server) {
		srv := buildCodecServer(t, 6, 3, 41, wire.Q8{}, estimate)
		eng, err := sched.New(srv, testSim(t), sched.AlwaysOn{}, sched.Config{
			Policy: sched.Sync, K: 3, Epochs: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.Run(rounds, nil); err != nil {
			t.Fatal(err)
		}
		return eng, srv
	}
	_, actual := run(false)
	engEst, est := run(true)

	sumsA, sumsE := globalSums(actual), globalSums(est)
	for name, v := range sumsA {
		if sumsE[name] != v {
			t.Fatalf("parameter %q differs between actual-bytes and estimate pricing", name)
		}
	}
	for _, st := range est.Stats() {
		if st.ReturnedBytesEst <= 0 {
			t.Fatalf("round %d: estimate mode recorded no estimated uplink bytes", st.Round)
		}
		for _, d := range st.Dispatches {
			if d.Failed {
				continue
			}
			if d.GotBytesEst <= 0 {
				t.Fatalf("round %d: dispatch priced without an estimate: %+v", st.Round, d)
			}
			if d.GotBytes <= 0 {
				t.Fatalf("round %d: merged dispatch lost its actual bytes: %+v", st.Round, d)
			}
		}
		if st.ReturnedBytes == st.ReturnedBytesEst {
			t.Logf("round %d: estimate exactly matched actual (%d B) — suspicious but not wrong", st.Round, st.ReturnedBytes)
		}
	}
	for _, st := range actual.Stats() {
		if st.ReturnedBytesEst != 0 {
			t.Fatalf("actual-bytes run recorded estimated bytes: %+v", st)
		}
	}
	if engEst.Clock() <= 0 {
		t.Fatal("virtual clock did not advance")
	}
}

// TestEstimateModeCancelDeterministic: a deadline round closing on
// estimate-priced stragglers cancels trainings that may or may not have
// already run, and the two states' ledger views differ in exactly one
// field (the executed view knows the actual encoded upload length). The
// ledger must not depend on that race: serial and wide runs produce
// identical stats and logs, and cancelled lates ledger the estimate, not
// a timing-dependent actual.
func TestEstimateModeCancelDeterministic(t *testing.T) {
	commits := 3
	if testing.Short() {
		commits = 2
	}
	run := func(par int) ([]string, []core.RoundStats) {
		srv := buildCodecServer(t, 6, 3, 43, wire.Q8{}, true)
		trace := &sched.RandomTrace{Seed: 99, MeanOn: 40, MeanOff: 5, SlowProb: 0.5, SlowFactor: 10}
		eng, err := sched.New(srv, testSim(t), trace, sched.Config{
			Policy: sched.Deadline, K: 3, Extra: 2, Epochs: 1, Parallelism: par,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.Run(commits, nil); err != nil {
			t.Fatal(err)
		}
		return eng.Log(), srv.Stats()
	}
	logS, statsS := run(1)
	logP, statsP := run(8)
	if !reflect.DeepEqual(logS, logP) {
		t.Fatalf("event logs differ between Parallelism=1 and 8:\nserial:   %s\nparallel: %s",
			strings.Join(logS, "\n          "), strings.Join(logP, "\n          "))
	}
	if !reflect.DeepEqual(statsS, statsP) {
		t.Fatalf("ledgers differ between serial and parallel runs:\nserial   %+v\nparallel %+v", statsS, statsP)
	}
	lates := 0
	for _, st := range statsS {
		for _, d := range st.Dispatches {
			if !d.Late || d.Failed {
				continue
			}
			lates++
			if d.GotBytes != 0 {
				t.Fatalf("cancelled late dispatch ledgered a timing-dependent actual upload: %+v", d)
			}
			if d.GotBytesEst <= 0 {
				t.Fatalf("cancelled late dispatch lost its pricing estimate: %+v", d)
			}
		}
	}
	if lates == 0 {
		t.Fatal("no late dispatches — the cancellation race was not exercised, pick another seed")
	}
}

// TestEstimateModeSkipsDroppedTraining: the estimate's whole point — with
// a codec active, a churny trace's sealed dropouts must skip training
// (TrainSkipped), which the actual-bytes path cannot do because it needs
// the trained payload to price the uplink.
func TestEstimateModeSkipsDroppedTraining(t *testing.T) {
	srv := buildCodecServer(t, 6, 3, 53, wire.Q8{}, true)
	trace := &sched.RandomTrace{Seed: 2, MeanOn: 2, MeanOff: 3, SlowProb: 0.6, SlowFactor: 10}
	eng, err := sched.New(srv, testSim(t), trace, sched.Config{
		Policy: sched.SemiAsync, K: 3, Buffer: 2, Epochs: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	commits := 3
	if testing.Short() {
		commits = 2
	}
	if err := eng.Run(commits, nil); err != nil {
		t.Fatal(err)
	}
	drops, skips := 0, 0
	for _, st := range srv.Stats() {
		skips += st.TrainSkipped
		for _, d := range st.Dispatches {
			if d.Dropped && !d.Failed {
				drops++
			}
		}
	}
	if drops == 0 {
		t.Fatal("churn trace produced no drops — pick another seed")
	}
	if skips == 0 {
		t.Fatalf("codec run with estimate pricing skipped no trainings for %d drops", drops)
	}
}
