package sched_test

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"adaptivefl/internal/core"
	"adaptivefl/internal/obs"
	"adaptivefl/internal/sched"
)

// obsRun drives one engine run of the given policy and returns everything
// the determinism contract covers: the event log, the ledger, the RL
// tables and the final global weights. With trace non-nil, an observer
// with a metrics registry and a JSONL sink writing into trace is
// attached; with trace nil the run is unobserved (nil observer — the
// zero-cost path).
func obsRun(t *testing.T, policy sched.Policy, trace *bytes.Buffer) ([]string, []core.RoundStats, *core.Server) {
	t.Helper()
	var observer *obs.Observer
	var jw *obs.JSONLWriter
	if trace != nil {
		jw = obs.NewJSONLWriter(trace)
		observer = obs.NewObserver(obs.NewMetrics(), jw)
	}
	srv := buildServerCfg(t, 6, 3, 43, func(c *core.Config) {
		c.Observer = observer
	})
	rt := &sched.RandomTrace{Seed: 99, MeanOn: 40, MeanOff: 5, SlowProb: 0.5, SlowFactor: 10}
	eng, err := sched.New(srv, testSim(t), rt, sched.Config{
		Policy: policy, K: 3, Extra: 2, Buffer: 2, Epochs: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(2, nil); err != nil {
		t.Fatalf("%s: %v", policy, err)
	}
	if jw != nil {
		if err := jw.Close(); err != nil {
			t.Fatalf("%s: closing trace: %v", policy, err)
		}
	}
	return eng.Log(), srv.Stats(), srv
}

// TestObserverBitIdentity is the observability layer's hard requirement:
// attaching an observer (metrics registry + JSONL span sink) must not
// perturb the run in any way — the event log, the communication ledger,
// the RL tables and the global weights are bit-identical with
// observability on or off, for every policy, with the parallel executor
// live (the test matters most under -race). It also pins the trace
// itself: two observed same-seed runs produce byte-identical JSONL.
func TestObserverBitIdentity(t *testing.T) {
	policies := []sched.Policy{sched.Sync, sched.Deadline, sched.DeadlineReuse, sched.SemiAsync}
	if testing.Short() {
		// The two policies with the richest span emission paths (late-upload
		// banking and buffered async merging) keep the property pinned.
		policies = []sched.Policy{sched.DeadlineReuse, sched.SemiAsync}
	}
	for _, policy := range policies {
		logOff, statsOff, srvOff := obsRun(t, policy, nil)

		var traceA bytes.Buffer
		logOn, statsOn, srvOn := obsRun(t, policy, &traceA)

		if !reflect.DeepEqual(logOff, logOn) {
			t.Fatalf("%s: event log differs with observer attached:\noff: %s\non:  %s",
				policy, strings.Join(logOff, "\n     "), strings.Join(logOn, "\n     "))
		}
		if !reflect.DeepEqual(statsOff, statsOn) {
			t.Fatalf("%s: ledger differs with observer attached:\noff %+v\non  %+v",
				policy, statsOff, statsOn)
		}
		if !reflect.DeepEqual(srvOff.Tables().Tr, srvOn.Tables().Tr) ||
			!reflect.DeepEqual(srvOff.Tables().Tc, srvOn.Tables().Tc) {
			t.Fatalf("%s: RL tables differ with observer attached", policy)
		}
		if !reflect.DeepEqual(srvOff.Global(), srvOn.Global()) {
			t.Fatalf("%s: global weights differ with observer attached", policy)
		}
		if traceA.Len() == 0 {
			t.Fatalf("%s: observed run emitted no spans", policy)
		}

		var traceB bytes.Buffer
		obsRun(t, policy, &traceB)
		if !bytes.Equal(traceA.Bytes(), traceB.Bytes()) {
			t.Fatalf("%s: JSONL traces of identical runs differ (%d vs %d bytes)",
				policy, traceA.Len(), traceB.Len())
		}
	}
}

// TestHierarchyObserverBitIdentity extends the bit-identity property to
// the two-tier topology: one observer shared by the global tier and both
// edge engines must leave the nested event logs and global weights
// untouched, and trace the same run to the same bytes.
func TestHierarchyObserverBitIdentity(t *testing.T) {
	run := func(trace *bytes.Buffer) ([]string, *sched.Hierarchy) {
		var observer *obs.Observer
		var jw *obs.JSONLWriter
		if trace != nil {
			jw = obs.NewJSONLWriter(trace)
			observer = obs.NewObserver(obs.NewMetrics(), jw)
		}
		eds := make([]*sched.Edge, 2)
		for i := range eds {
			srv := buildServerCfg(t, 6, 2, 50+int64(i), func(c *core.Config) {
				c.Observer = observer
			})
			eng, err := sched.New(srv, testSim(t), &sched.RandomTrace{Seed: 9, MeanOn: 40, MeanOff: 10}, sched.Config{
				Policy: sched.SemiAsync, K: 2, Epochs: 1,
			})
			if err != nil {
				t.Fatal(err)
			}
			eds[i] = &sched.Edge{Srv: srv, Eng: eng}
		}
		h, err := sched.NewHierarchy(eds, testSim(t), sched.HierConfig{Observer: observer})
		if err != nil {
			t.Fatal(err)
		}
		if err := h.Run(3, nil); err != nil {
			t.Fatal(err)
		}
		if jw != nil {
			if err := jw.Close(); err != nil {
				t.Fatalf("closing trace: %v", err)
			}
		}
		logs := append([]string{}, h.Log()...)
		for _, ed := range h.Edges() {
			logs = append(logs, ed.Eng.Log()...)
		}
		return logs, h
	}

	logsOff, hOff := run(nil)
	var traceA bytes.Buffer
	logsOn, hOn := run(&traceA)
	if !reflect.DeepEqual(logsOff, logsOn) {
		t.Fatal("hierarchy event logs differ with observer attached")
	}
	if !reflect.DeepEqual(hOff.Global(), hOn.Global()) {
		t.Fatal("hierarchy global weights differ with observer attached")
	}
	if traceA.Len() == 0 {
		t.Fatal("observed hierarchy run emitted no spans")
	}
	var traceB bytes.Buffer
	run(&traceB)
	if !bytes.Equal(traceA.Bytes(), traceB.Bytes()) {
		t.Fatal("JSONL traces of identical hierarchy runs differ")
	}
}
