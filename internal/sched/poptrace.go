package sched

import (
	"math"

	"adaptivefl/internal/core"
)

// PopTrace turns a core.PopulationSpec's churn profile into a Trace with
// O(1) memory and O(1) query time — no per-client rng objects or segment
// timelines, which RandomTrace needs ≈5 KB of per touched client and
// which a million-client day cannot afford. Each client lives on a fixed
// on/off cycle whose durations are the spec's means scaled by a
// per-client hash jitter in [0.5, 1.5), with a per-client phase offset so
// the fleet's off-windows decorrelate; whether a given on-window runs
// slowed is decided by hashing (client, cycle index). Everything is a
// pure function of (spec seed, client, t), so queries at any time, in any
// order, from any engine agree — which is also what makes a sharded
// hierarchy see exactly the availability a flat engine would.
type PopTrace struct {
	Spec core.PopulationSpec
	// SlowOnly restricts slowdown to clients for which it returns true
	// (nil = every client can slow), mirroring RandomTrace.
	SlowOnly func(c int) bool
}

// Hash salts for the trace's independent per-client streams. core's
// PopulationSpec owns salts 1-9; the trace uses 10+.
const (
	saltOnDur  uint64 = 10
	saltOffDur uint64 = 11
	saltPhase  uint64 = 12
	saltSlow   uint64 = 13
)

// hashFloat maps a spec hash to [0, 1).
func hashFloat(h uint64) float64 { return float64(h>>11) / (1 << 53) }

// jitter returns the client's duration multiplier in [0.5, 1.5).
func (p PopTrace) jitter(c int, salt uint64) float64 {
	return 0.5 + hashFloat(p.Spec.Hash(c, salt))
}

// Window implements Trace.
func (p PopTrace) Window(c int, t float64) (bool, float64, float64) {
	s := p.Spec
	meanOn := s.MeanOn
	if meanOn <= 0 {
		meanOn = 60
	}
	onD := meanOn * p.jitter(c, saltOnDur)
	if s.MeanOff <= 0 {
		// No churn: the client is always up; time is still carved into
		// onD-long cycles purely so the slowdown draw can vary over time
		// (a straggler profile without availability churn).
		if s.SlowFactor <= 1 || s.SlowProb <= 0 {
			return true, 1, math.Inf(1)
		}
		cyc := math.Floor(t / onD)
		return true, p.slow(c, int64(cyc)), (cyc + 1) * onD
	}
	offD := s.MeanOff * p.jitter(c, saltOffDur)
	period := onD + offD
	shifted := t + hashFloat(p.Spec.Hash(c, saltPhase))*period
	cyc := math.Floor(shifted / period)
	x := shifted - cyc*period // position within the cycle, in [0, period)
	if x < onD {
		return true, p.slow(c, int64(cyc)), boundAfter(t, t+(onD-x))
	}
	return false, 1, boundAfter(t, t+(period-x))
}

// boundAfter guards the Window contract that a segment ends strictly
// after its query time: at large t a sliver of remaining cycle can round
// to zero, which would wedge the engine's segment-walking loops.
func boundAfter(t, until float64) float64 {
	if until <= t {
		return math.Nextafter(t, math.Inf(1))
	}
	return until
}

// slow decides cycle cyc's slowdown for client c by hash.
func (p PopTrace) slow(c int, cyc int64) float64 {
	s := p.Spec
	if s.SlowFactor <= 1 || s.SlowProb <= 0 {
		return 1
	}
	if p.SlowOnly != nil && !p.SlowOnly(c) {
		return 1
	}
	if hashFloat(s.Hash(c, saltSlow+uint64(cyc)*0x9e3779b97f4a7c15)) < s.SlowProb {
		return s.SlowFactor
	}
	return 1
}
