package sched

import (
	"fmt"
	"math"
	"math/rand"

	"adaptivefl/internal/spec"
)

// Trace supplies per-client availability and speed over virtual time,
// modelling the paper's uncertain AIoT operating environments: devices go
// offline, come back, and fluctuate in effective training speed as
// co-located workloads contend for the board.
type Trace interface {
	// Window returns the trace segment containing virtual time t for
	// client c: whether the client is reachable, the training slowdown
	// factor for the segment (1 = nominal speed, 10 = ten times slower),
	// and the virtual time at which the segment ends (+Inf for never). A
	// dispatch that would finish after its segment ends is dropped: the
	// client went away mid-flight.
	Window(c int, t float64) (up bool, slow float64, until float64)
}

// AlwaysOn is the trivial trace: every client reachable at nominal speed
// forever. The sync policy under AlwaysOn reproduces the legacy
// synchronous Round bit-identically.
type AlwaysOn struct{}

// Window implements Trace.
func (AlwaysOn) Window(int, float64) (bool, float64, float64) {
	return true, 1, math.Inf(1)
}

// segment is one piecewise-constant span of a client's timeline.
type segment struct {
	end  float64 // exclusive
	up   bool
	slow float64
}

// RandomTrace deterministically generates per-client timelines of
// alternating on/off segments with per-segment slowdown factors. Every
// client's stream is seeded independently from Seed, so the same
// (Seed, parameters) pair always yields the same timeline regardless of
// query order — the property the scheduler's determinism test pins.
type RandomTrace struct {
	// Seed drives every client's segment stream.
	Seed int64
	// MeanOn is the mean duration (seconds, exponential) of an on
	// segment. Zero defaults to 60.
	MeanOn float64
	// MeanOff is the mean duration of an off segment; 0 means clients
	// never go offline (the trace only fluctuates speed).
	MeanOff float64
	// SlowProb is the chance an on segment runs slowed.
	SlowProb float64
	// SlowFactor multiplies training time during slowed segments (≥ 1).
	SlowFactor float64
	// SlowOnly restricts slowdown to clients for which it returns true
	// (nil = every client can slow). The straggler spec wires the weak
	// device class here.
	SlowOnly func(c int) bool

	segs map[int][]segment
	rngs map[int]*rand.Rand
}

// minSegment floors segment durations so a pathological rng draw cannot
// produce a zero-length window (which would drop every dispatch).
const minSegment = 1e-3

// extend generates client c's timeline until it covers time t.
func (r *RandomTrace) extend(c int, t float64) []segment {
	if r.segs == nil {
		r.segs = map[int][]segment{}
		r.rngs = map[int]*rand.Rand{}
	}
	rng, ok := r.rngs[c]
	if !ok {
		rng = rand.New(rand.NewSource(r.Seed + int64(c)*1_000_003 + 7))
		r.rngs[c] = rng
	}
	segs := r.segs[c]
	meanOn := r.MeanOn
	if meanOn <= 0 {
		meanOn = 60
	}
	last := 0.0
	if len(segs) > 0 {
		last = segs[len(segs)-1].end
	}
	for last <= t {
		// On segment, with an optional slowdown.
		d := meanOn * rng.ExpFloat64()
		if d < minSegment {
			d = minSegment
		}
		slow := 1.0
		if r.SlowFactor > 1 && (r.SlowOnly == nil || r.SlowOnly(c)) && rng.Float64() < r.SlowProb {
			slow = r.SlowFactor
		}
		last += d
		segs = append(segs, segment{end: last, up: true, slow: slow})
		// Off segment, if the trace has churn.
		if r.MeanOff > 0 {
			d = r.MeanOff * rng.ExpFloat64()
			if d < minSegment {
				d = minSegment
			}
			last += d
			segs = append(segs, segment{end: last, up: false, slow: 1})
		}
	}
	r.segs[c] = segs
	return segs
}

// Retire discards every generated segment that ends at or before t,
// implementing the engine's Compactor hook. Without it a long-horizon run
// accretes O(time) segments per client (extend only ever appends). Safe
// whenever the caller's future queries are all at times > retired — the
// engine's virtual clock is monotonic, so it retires behind the clock
// once per Step. Callers that query out of order (the trace's documented
// general contract) simply never call Retire. Per client, compaction
// waits until retireSlack segments are droppable so the slice copy is
// amortised; memory stays bounded by the active window + slack either way.
func (r *RandomTrace) Retire(t float64) {
	for c, segs := range r.segs {
		// First surviving segment: the first one ending after t. The final
		// segment always survives — extend derives the timeline's current
		// frontier from it, so dropping it would restart the client's
		// clock at zero mid-stream.
		lo := 0
		for lo < len(segs)-1 && segs[lo].end <= t {
			lo++
		}
		if lo < retireSlack {
			continue
		}
		kept := make([]segment, len(segs)-lo)
		copy(kept, segs[lo:])
		r.segs[c] = kept
	}
}

// retireSlack is the per-client droppable-segment count below which Retire
// leaves a timeline alone (compaction batching).
const retireSlack = 16

// SegmentCount reports the generated segments currently held across all
// clients — the quantity Retire bounds (regression-tested).
func (r *RandomTrace) SegmentCount() int {
	n := 0
	for _, segs := range r.segs {
		n += len(segs)
	}
	return n
}

// Window implements Trace.
func (r *RandomTrace) Window(c int, t float64) (bool, float64, float64) {
	segs := r.extend(c, t)
	// Binary search the first segment ending after t.
	lo, hi := 0, len(segs)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if segs[mid].end <= t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	s := segs[lo]
	return s.up, s.slow, s.end
}

// ParseTrace builds a Trace from a compact spec string:
//
//	""
//	"always"                          — every client always on
//	"straggler[:slow=10,prob=0.5,on=30]" — clients for which weak returns
//	    true run slow-factor segments intermittently; nobody goes offline
//	"churn[:on=60,off=20,slow=4,prob=0.2]" — everyone cycles on/off, with
//	    optional slowdown segments
//
// seed drives the generated timelines; weak marks the clients the
// straggler spec slows (nil slows everyone).
func ParseTrace(traceSpec string, seed int64, weak func(c int) bool) (Trace, error) {
	name, args, err := spec.Parse("sched", "trace", traceSpec)
	if err != nil {
		return nil, err
	}
	var tr Trace
	switch name {
	case "", "always":
		tr = AlwaysOn{}
	case "straggler":
		tr = &RandomTrace{
			Seed:       seed,
			MeanOn:     args.Float("on", 30),
			SlowProb:   args.Float("prob", 0.5),
			SlowFactor: args.Float("slow", 10),
			SlowOnly:   weak,
		}
	case "churn":
		tr = &RandomTrace{
			Seed:       seed,
			MeanOn:     args.Float("on", 60),
			MeanOff:    args.Float("off", 20),
			SlowProb:   args.Float("prob", 0),
			SlowFactor: args.Float("slow", 1),
		}
	default:
		return nil, fmt.Errorf("sched: unknown trace %q (always|straggler|churn)", name)
	}
	if err := args.Finish(); err != nil {
		return nil, err
	}
	return tr, nil
}
