package sched_test

import (
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"adaptivefl/internal/core"
	"adaptivefl/internal/data"
	"adaptivefl/internal/models"
	"adaptivefl/internal/prune"
	"adaptivefl/internal/sched"
	"adaptivefl/internal/testbed"
)

func testModelCfg() models.Config {
	return models.Config{Arch: models.ResNet18, NumClasses: 4, WidthScale: 0.07, Seed: 3}
}

// buildServer assembles a small deterministic federation. Building it
// twice with the same arguments yields bit-identical populations.
func buildServer(t *testing.T, n, k int, seed int64) *core.Server {
	t.Helper()
	return buildServerCfg(t, n, k, seed, nil)
}

// buildServerCfg is buildServer with a final say over the server config
// (codec, estimate mode, …) before construction.
func buildServerCfg(t *testing.T, n, k int, seed int64, mutate func(*core.Config)) *core.Server {
	t.Helper()
	pool, err := prune.BuildPool(testModelCfg(), prune.Config{P: 3})
	if err != nil {
		t.Fatal(err)
	}
	cfg := data.SynthConfig{Name: "t", Classes: 4, Channels: 3, Size: 32,
		Train: n * 24, Test: 80, Noise: 0.3, MaxShift: 1, Seed: 11}
	train, _ := data.Generate(cfg)
	rng := rand.New(rand.NewSource(5))
	parts := data.PartitionIID(rng, train.Len(), n)
	devices := core.NewPopulation(rng, n, [3]float64{4, 3, 3}, pool, core.DefaultDeviceModel())
	clients := make([]*core.Client, n)
	for i := range clients {
		clients[i] = &core.Client{ID: i, Data: train.Subset(parts[i]), Device: devices[i]}
	}
	ccfg := core.Config{
		Model: testModelCfg(), Pool: prune.Config{P: 3},
		ClientsPerRound: k,
		Train:           core.TrainConfig{LocalEpochs: 1, BatchSize: 12, LR: 0.02, Momentum: 0.5},
		Seed:            seed, Parallelism: k,
	}
	if mutate != nil {
		mutate(&ccfg)
	}
	srv, err := core.NewServer(ccfg, clients)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

func testSim(t *testing.T) *testbed.Sim {
	t.Helper()
	sim, err := testbed.NewSim(testbed.Table5Platform())
	if err != nil {
		t.Fatal(err)
	}
	return sim
}

func globalSums(srv *core.Server) map[string]float64 {
	sums := map[string]float64{}
	for name, v := range srv.Global() {
		sums[name] = v.Sum()
	}
	return sums
}

// TestSyncPolicyMatchesLegacyRound is the tentpole's compatibility bar:
// the event-driven sync policy under the AlwaysOn trace must reproduce the
// legacy synchronous Round loop bit-identically — same global weights,
// same ledger, same RL tables.
func TestSyncPolicyMatchesLegacyRound(t *testing.T) {
	rounds := 3
	if testing.Short() {
		rounds = 2
	}
	legacy := buildServer(t, 6, 3, 41)
	if err := legacy.Run(rounds, nil); err != nil {
		t.Fatal(err)
	}

	srv := buildServer(t, 6, 3, 41)
	eng, err := sched.New(srv, testSim(t), sched.AlwaysOn{}, sched.Config{
		Policy: sched.Sync, K: 3, Epochs: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(rounds, nil); err != nil {
		t.Fatal(err)
	}

	want, got := globalSums(legacy), globalSums(srv)
	for name, v := range want {
		if got[name] != v {
			t.Fatalf("parameter %q differs between legacy Round and sync policy", name)
		}
	}
	if !reflect.DeepEqual(legacy.Stats(), srv.Stats()) {
		t.Fatalf("ledgers differ:\nlegacy %+v\nsched  %+v", legacy.Stats(), srv.Stats())
	}
	if !reflect.DeepEqual(legacy.Tables().Tr, srv.Tables().Tr) || !reflect.DeepEqual(legacy.Tables().Tc, srv.Tables().Tc) {
		t.Fatal("RL tables differ between legacy Round and sync policy")
	}
	if eng.Clock() <= 0 {
		t.Fatal("virtual clock did not advance")
	}
}

// TestSchedulerDeterministic is the determinism property: for every
// policy, the same seed and trace must yield an identical event log and an
// identical final global state.
func TestSchedulerDeterministic(t *testing.T) {
	policies := []sched.Policy{sched.Sync, sched.Deadline, sched.DeadlineReuse, sched.SemiAsync}
	commits := 2
	for _, policy := range policies {
		run := func() ([]string, map[string]float64) {
			srv := buildServer(t, 6, 3, 43)
			trace := &sched.RandomTrace{Seed: 99, MeanOn: 40, MeanOff: 5, SlowProb: 0.5, SlowFactor: 10}
			eng, err := sched.New(srv, testSim(t), trace, sched.Config{
				Policy: policy, K: 3, Extra: 2, Buffer: 2, Epochs: 1,
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := eng.Run(commits, nil); err != nil {
				t.Fatalf("%s: %v", policy, err)
			}
			return eng.Log(), globalSums(srv)
		}
		logA, sumsA := run()
		logB, sumsB := run()
		if len(logA) == 0 {
			t.Fatalf("%s: empty event log", policy)
		}
		if !reflect.DeepEqual(logA, logB) {
			t.Fatalf("%s: event logs differ:\nA: %s\nB: %s", policy,
				strings.Join(logA, "\n   "), strings.Join(logB, "\n   "))
		}
		for name, v := range sumsA {
			if sumsB[name] != v {
				t.Fatalf("%s: parameter %q differs across identical runs", policy, name)
			}
		}
	}
}

// TestStragglerPolicies pins the scheduler's reason to exist: with one
// client 10× slower than its class, the deadline and semiasync policies
// must reach the same number of aggregations in less simulated time than
// the synchronous barrier, which waits for the straggler whenever it is
// selected.
func TestStragglerPolicies(t *testing.T) {
	const n, k = 10, 5
	rounds := 4
	if testing.Short() {
		rounds = 3
	}
	// The straggler must be the slowest device in the fleet for the test's
	// orderings to be structural, so slow down a weak-class client (a Pi is
	// already the slowest class; 10× on top makes it dominate every
	// barrier). Populations are rebuilt identically per policy, so the
	// index probed here holds for every run.
	straggle := -1
	for i, c := range buildServer(t, n, k, 47).Clients() {
		if c.Device.Class == core.Weak {
			straggle = i
			break
		}
	}
	if straggle < 0 {
		t.Fatal("no weak client in the population")
	}
	runPolicy := func(policy sched.Policy) (float64, *core.Server) {
		srv := buildServer(t, n, k, 47)
		trace := &sched.RandomTrace{
			Seed: 7, MeanOn: 1e9, // one long segment: the slowdown is permanent
			SlowProb: 1, SlowFactor: 10,
			SlowOnly: func(c int) bool { return c == straggle },
		}
		eng, err := sched.New(srv, testSim(t), trace, sched.Config{
			Policy: policy, K: k, Extra: 2, Buffer: k, Epochs: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.Run(rounds, nil); err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		return eng.Clock(), srv
	}

	tSync, syncSrv := runPolicy(sched.Sync)
	tDeadline, deadlineSrv := runPolicy(sched.Deadline)
	tSemi, _ := runPolicy(sched.SemiAsync)

	// The comparison is only meaningful if the sync run actually waited on
	// the straggler at least once; the fixed seed guarantees it did. And a
	// straggler trace never takes clients offline, so a speed-change
	// boundary must never masquerade as a dropout.
	hit := false
	for _, st := range syncSrv.Stats() {
		for _, d := range st.Dispatches {
			if d.Client == straggle {
				hit = true
			}
			if d.Dropped {
				t.Fatalf("round %d dropped client %d under a trace with no offline periods", st.Round, d.Client)
			}
		}
	}
	if !hit {
		t.Fatalf("seed never selected the straggler for sync — pick another seed")
	}
	if tDeadline >= tSync {
		t.Fatalf("deadline took %.1fs vs sync %.1fs — over-selection should beat the barrier", tDeadline, tSync)
	}
	if tSemi >= tSync {
		t.Fatalf("semiasync took %.1fs vs sync %.1fs — buffered aggregation should beat the barrier", tSemi, tSync)
	}

	// When the deadline run dispatched the straggler, its upload must show
	// up as waste (late or dropped), never as merged work.
	for _, st := range deadlineSrv.Stats() {
		for _, d := range st.Dispatches {
			if d.Client == straggle && !d.Failed && !d.Late && !d.Dropped {
				t.Fatalf("straggler's upload was aggregated in round %d despite the deadline", st.Round)
			}
		}
	}
}

// TestChurnTraceCompletes drives semiasync through a trace with real
// offline periods: the engine must keep making progress (waiting out
// windows, dropping mid-flight clients) and the drops must appear in the
// ledger as waste.
func TestChurnTraceCompletes(t *testing.T) {
	srv := buildServer(t, 6, 3, 53)
	// Short on-windows and heavy slowdowns so mid-flight dropouts occur
	// even in the -short run (the lazy-execution assertions below need at
	// least one drop).
	trace := &sched.RandomTrace{Seed: 2, MeanOn: 2, MeanOff: 3, SlowProb: 0.6, SlowFactor: 10}
	eng, err := sched.New(srv, testSim(t), trace, sched.Config{
		Policy: sched.SemiAsync, K: 3, Buffer: 2, Epochs: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	commits := 3
	if testing.Short() {
		commits = 2
	}
	if err := eng.Run(commits, nil); err != nil {
		t.Fatal(err)
	}
	if got := len(eng.Commits()); got != commits {
		t.Fatalf("made %d commits, want %d", got, commits)
	}
	if eng.Clock() <= 0 {
		t.Fatal("clock did not advance")
	}
	stats := srv.Stats()
	if len(stats) != commits {
		t.Fatalf("ledger has %d entries, want %d", len(stats), commits)
	}
	// Lazy execution: a dropped flight's result is discarded unread, so the
	// engine must not have burned training compute on it — every drop is
	// ledgered TrainSkipped (no codec is in play, so upload pricing never
	// needs the trained result) and the totals line up.
	drops, skips := 0, 0
	for _, st := range stats {
		skips += st.TrainSkipped
		for _, d := range st.Dispatches {
			if d.Dropped && d.GotBytes != 0 {
				t.Fatalf("dropped dispatch charged uplink bytes: %+v", d)
			}
			// Capacity-failed flights never had training to skip, so the
			// engine's guarantee covers non-failed drops only.
			if d.Dropped && !d.Failed {
				drops++
				if !d.TrainSkipped {
					t.Fatalf("dropped dispatch trained anyway: %+v", d)
				}
			}
			if d.TrainSkipped && !(d.Dropped && !d.Failed) {
				t.Fatalf("dispatch marked TrainSkipped without a non-failed drop: %+v", d)
			}
		}
	}
	if drops == 0 {
		t.Fatal("churn trace produced no drops — pick another seed")
	}
	if skips != drops {
		t.Fatalf("ledger counts %d skipped trainings, want %d (one per drop)", skips, drops)
	}
}

// TestSerialParallelBitIdentity is the executor's determinism bar: a
// serial engine (Parallelism=1) and a wide one (Parallelism=8) must
// produce identical event logs, ledgers, RL tables and global weights for
// every policy under a churny trace — parallel lazy execution may only
// change wall-clock, never results. Run with -race, this also shakes out
// synchronization bugs in the join/cancel paths.
func TestSerialParallelBitIdentity(t *testing.T) {
	commits := 3
	if testing.Short() {
		commits = 2
	}
	for _, policy := range []sched.Policy{sched.Sync, sched.Deadline, sched.DeadlineReuse, sched.SemiAsync} {
		run := func(par int) ([]string, map[string]float64, []core.RoundStats, *core.Server) {
			srv := buildServer(t, 6, 3, 43)
			trace := &sched.RandomTrace{Seed: 99, MeanOn: 40, MeanOff: 5, SlowProb: 0.5, SlowFactor: 10}
			eng, err := sched.New(srv, testSim(t), trace, sched.Config{
				Policy: policy, K: 3, Extra: 2, Buffer: 2, Epochs: 1, Parallelism: par,
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := eng.Run(commits, nil); err != nil {
				t.Fatalf("%s par=%d: %v", policy, par, err)
			}
			return eng.Log(), globalSums(srv), srv.Stats(), srv
		}
		logS, sumsS, statsS, srvS := run(1)
		logP, sumsP, statsP, srvP := run(8)
		if !reflect.DeepEqual(logS, logP) {
			t.Fatalf("%s: event logs differ between Parallelism=1 and 8:\nserial:   %s\nparallel: %s",
				policy, strings.Join(logS, "\n          "), strings.Join(logP, "\n          "))
		}
		for name, v := range sumsS {
			if sumsP[name] != v {
				t.Fatalf("%s: parameter %q differs between serial and parallel runs", policy, name)
			}
		}
		if !reflect.DeepEqual(statsS, statsP) {
			t.Fatalf("%s: ledgers differ between serial and parallel runs:\nserial   %+v\nparallel %+v",
				policy, statsS, statsP)
		}
		if !reflect.DeepEqual(srvS.Tables().Tr, srvP.Tables().Tr) || !reflect.DeepEqual(srvS.Tables().Tc, srvP.Tables().Tc) {
			t.Fatalf("%s: RL tables differ between serial and parallel runs", policy)
		}
	}
}

// TestSerialParallelBitIdentityRobustAgg extends the determinism bar to
// the robust aggregation policies under an adversarial fleet: trimmed
// mean, multi-Krum and clip-composed aggregation — with sign-flip, scale
// and corrupt clients in the mix driving the Rejected and Clipped ledger
// paths — must stay bit-identical between a serial and a wide executor.
func TestSerialParallelBitIdentityRobustAgg(t *testing.T) {
	commits := 3
	if testing.Short() {
		commits = 2
	}
	adv, err := core.ParseAdversary("mix:frac=0.5,signflip=1,scale=1,corrupt=1,k=4")
	if err != nil {
		t.Fatal(err)
	}
	// Seed chosen so the 6-client fleet draws sign-flip, scale AND corrupt
	// attackers — the rejection assertion below depends on it.
	adv.Seed = 300
	for _, aggSpec := range []string{
		"trim:frac=0.25",
		"krum:frac=0.25,m=2",
		"clip:tau=0.5+trim:frac=0.25",
	} {
		run := func(par int) ([]string, map[string]float64, []core.RoundStats, *core.Server) {
			srv := buildServerCfg(t, 6, 3, 43, func(cfg *core.Config) {
				cfg.Agg = aggSpec
				cfg.Adversary = adv
			})
			trace := &sched.RandomTrace{Seed: 99, MeanOn: 40, MeanOff: 5, SlowProb: 0.5, SlowFactor: 10}
			eng, err := sched.New(srv, testSim(t), trace, sched.Config{
				Policy: sched.DeadlineReuse, K: 3, Extra: 2, Buffer: 2, Epochs: 1, Parallelism: par,
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := eng.Run(commits, nil); err != nil {
				t.Fatalf("%s par=%d: %v", aggSpec, par, err)
			}
			return eng.Log(), globalSums(srv), srv.Stats(), srv
		}
		logS, sumsS, statsS, srvS := run(1)
		logP, sumsP, statsP, srvP := run(8)
		if !reflect.DeepEqual(logS, logP) {
			t.Fatalf("%s: event logs differ between Parallelism=1 and 8:\nserial:   %s\nparallel: %s",
				aggSpec, strings.Join(logS, "\n          "), strings.Join(logP, "\n          "))
		}
		for name, v := range sumsS {
			if sumsP[name] != v {
				t.Fatalf("%s: parameter %q differs between serial and parallel runs", aggSpec, name)
			}
		}
		if !reflect.DeepEqual(statsS, statsP) {
			t.Fatalf("%s: ledgers differ between serial and parallel runs:\nserial   %+v\nparallel %+v",
				aggSpec, statsS, statsP)
		}
		if !reflect.DeepEqual(srvS.Tables().Tr, srvP.Tables().Tr) || !reflect.DeepEqual(srvS.Tables().Tc, srvP.Tables().Tc) {
			t.Fatalf("%s: RL tables differ between serial and parallel runs", aggSpec)
		}
		rejected := 0
		for _, st := range statsS {
			rejected += st.Rejected
		}
		if rejected == 0 {
			t.Fatalf("%s: corrupt clients in the mix produced no rejections — the spec lost its teeth", aggSpec)
		}
	}
}

// TestRandomTraceWindows pins the trace generator's contract: windows are
// deterministic per seed, piecewise constant, and alternate on/off when
// MeanOff is set.
func TestRandomTraceWindows(t *testing.T) {
	mk := func() *sched.RandomTrace {
		return &sched.RandomTrace{Seed: 11, MeanOn: 20, MeanOff: 10, SlowProb: 0.5, SlowFactor: 4}
	}
	a, b := mk(), mk()
	for c := 0; c < 4; c++ {
		for _, ts := range []float64{0, 3.7, 12.9, 55.5, 123.4, 7.1} { // out of order on purpose
			upA, slowA, untilA := a.Window(c, ts)
			upB, slowB, untilB := b.Window(c, ts)
			if upA != upB || slowA != slowB || untilA != untilB {
				t.Fatalf("client %d t=%v: windows differ across identical traces", c, ts)
			}
			if untilA <= ts {
				t.Fatalf("client %d t=%v: window end %v not after query time", c, ts, untilA)
			}
			if !upA && slowA != 1 {
				t.Fatalf("off window carries slowdown %v", slowA)
			}
		}
	}
	// An off period must eventually occur with MeanOff > 0.
	sawOff := false
	for ts := 0.0; ts < 500; {
		up, _, until := a.Window(0, ts)
		if !up {
			sawOff = true
		}
		ts = until
	}
	if !sawOff {
		t.Fatal("trace with MeanOff=10 never went offline in 500s")
	}
}

// TestAlwaysOnWindow pins the trivial trace.
func TestAlwaysOnWindow(t *testing.T) {
	up, slow, until := sched.AlwaysOn{}.Window(3, 17.5)
	if !up || slow != 1 || !math.IsInf(until, 1) {
		t.Fatalf("AlwaysOn window = %v %v %v", up, slow, until)
	}
}

// TestParseTrace covers the -trace flag grammar.
func TestParseTrace(t *testing.T) {
	if tr, err := sched.ParseTrace("", 1, nil); err != nil || tr != (sched.AlwaysOn{}) {
		t.Fatalf("empty spec: %v %v", tr, err)
	}
	if _, err := sched.ParseTrace("always", 1, nil); err != nil {
		t.Fatal(err)
	}
	tr, err := sched.ParseTrace("straggler:slow=8,prob=1,on=5", 1, func(c int) bool { return c == 0 })
	if err != nil {
		t.Fatal(err)
	}
	if _, slow, _ := tr.Window(0, 0); slow != 8 {
		t.Fatalf("straggler slow = %v, want 8", slow)
	}
	if _, slow, _ := tr.Window(1, 0); slow != 1 {
		t.Fatalf("non-straggler slow = %v, want 1", slow)
	}
	if _, err := sched.ParseTrace("churn:on=2,off=2", 1, nil); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"nope", "churn:on", "churn:on=x"} {
		if _, err := sched.ParseTrace(bad, 1, nil); err == nil {
			t.Fatalf("spec %q should fail", bad)
		}
	}
}

// TestConfigValidation covers engine construction errors and defaults.
func TestConfigValidation(t *testing.T) {
	srv := buildServer(t, 4, 2, 61)
	sim := testSim(t)
	if _, err := sched.New(srv, sim, nil, sched.Config{Policy: "bogus", K: 2, Epochs: 1}); err == nil {
		t.Fatal("bogus policy accepted")
	}
	if _, err := sched.New(srv, sim, nil, sched.Config{Policy: sched.Sync, K: 0, Epochs: 1}); err == nil {
		t.Fatal("K=0 accepted")
	}
	if _, err := sched.New(srv, sim, nil, sched.Config{Policy: sched.Sync, K: 99, Epochs: 1}); err == nil {
		t.Fatal("K beyond population accepted")
	}
	if _, err := sched.New(nil, sim, nil, sched.Config{Policy: sched.Sync, K: 2, Epochs: 1}); err == nil {
		t.Fatal("nil server accepted")
	}
	if _, err := sched.New(srv, nil, nil, sched.Config{Policy: sched.Sync, K: 2, Epochs: 1}); err == nil {
		t.Fatal("nil cost model accepted")
	}
	if _, err := sched.New(srv, sim, nil, sched.Config{Policy: sched.Sync, K: 2}); err == nil {
		t.Fatal("Epochs=0 accepted")
	}
	if _, err := sched.ParsePolicy("deadline"); err != nil {
		t.Fatal(err)
	}
	if _, err := sched.ParsePolicy("deadline-reuse"); err != nil {
		t.Fatal(err)
	}
}
