package sched

import (
	"container/heap"
	"fmt"
	"math"

	"adaptivefl/internal/agg"
	"adaptivefl/internal/core"
	"adaptivefl/internal/nn"
	"adaptivefl/internal/obs"
)

// Edge is one edge aggregator of a two-tier topology: its own core.Server
// over a client shard, driven by its own Engine (any policy, its own
// seeded event queue). The hierarchy steps edges in virtual-time order
// and treats their commits as uploads into the global tier.
type Edge struct {
	Srv *core.Server
	Eng *Engine

	id int
	// anchor is the global version the edge last down-synced from; the
	// global tier discounts the edge's uploads by how many global merges
	// happened since (the same staleness currency the flat semiasync
	// policy uses for clients).
	anchor int
	// pendingSync marks that a global merge happened since the edge last
	// ran; the next step down-syncs the edge's model first.
	pendingSync bool
}

// HierConfig tunes the global tier.
type HierConfig struct {
	// GlobalBuffer is the number of edge updates per global merge
	// (semiasync-style buffering). Default max(1, edges/2).
	GlobalBuffer int
	// StalenessExp is the global tier's staleness-discount exponent α in
	// 1/(1+s)^α. Zero means the 0.5 default; negative disables.
	StalenessExp float64
	// Epochs is only used to price the edge→cloud uplink through the cost
	// model's interface. Default 1.
	Epochs int
	// Observer receives the global tier's spans — edge commits entering
	// transit, arrivals folding into the buffer, down-syncs, global merges
	// — mirroring the event-log lines one-to-one. Edge engines carry their
	// own observers (usually the same one).
	Observer *obs.Observer
}

// GlobalCommit is one global-tier merge.
type GlobalCommit struct {
	Round  int     // global version after the merge
	Time   float64 // virtual arrival time of the update that filled the buffer
	Merged int     // edge updates aggregated
}

// arrival is one edge commit in transit to the global tier.
type arrival struct {
	t      float64
	seq    int64
	edge   int
	state  nn.State
	weight float64
	anchor int
}

type arrivalHeap []*arrival

func (h arrivalHeap) Len() int { return len(h) }
func (h arrivalHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h arrivalHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *arrivalHeap) Push(x any)   { *h = append(*h, x.(*arrival)) }
func (h *arrivalHeap) Pop() any {
	old := *h
	n := len(old)
	a := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return a
}

// Hierarchy is the two-tier federated topology: N edge aggregators, each
// running its own policy over its own client shard, feed a global
// semiasync tier. Edge commits become the global tier's "uploads" — the
// full edge model crossing the backhaul, priced by the same CostModel
// that prices client dispatches (Strong class, largest pool member) — and
// merge under sched.StalenessDiscount once GlobalBuffer of them are in.
//
// The merge is a conservative discrete-event composition: the hierarchy
// always advances the edge whose virtual clock is smallest (ties break on
// edge index), and an in-transit edge update is only folded into the
// global buffer once every edge clock has passed its arrival time — by
// then no edge can emit an earlier-arriving update, so global merges
// happen in true virtual-time order and each edge's next down-sync is
// causally valid (its clock is already past the merge). Every decision is
// a deterministic function of the edge seeds, so the same configuration
// replays the same nested event log and the same global weights.
type Hierarchy struct {
	cfg   HierConfig
	cost  CostModel
	edges []*Edge

	global   nn.State
	version  int
	clock    float64
	seq      int64
	arrivals arrivalHeap
	buffer   []agg.Update
	buffered int // edge commits currently in the buffer

	log     []string
	commits []GlobalCommit
	// discountSum accumulates StalenessDiscount over every edge update
	// folded into the global buffer — the global-tier anchor for the trace
	// auditor's discount reconciliation (mirrors Engine.DiscountSum).
	discountSum float64
}

// NewHierarchy builds the two-tier topology over prepared edges. cost
// prices the edge→cloud uplink; the initial global model is edge 0's
// (all edges are built from the same model config, so they agree).
func NewHierarchy(edges []*Edge, cost CostModel, cfg HierConfig) (*Hierarchy, error) {
	if len(edges) == 0 {
		return nil, fmt.Errorf("sched: hierarchy needs at least one edge")
	}
	for i, ed := range edges {
		if ed == nil || ed.Srv == nil || ed.Eng == nil {
			return nil, fmt.Errorf("sched: edge %d is missing its server or engine", i)
		}
		ed.id = i
		// Tag the edge engine's spans so a shared trace sink can group
		// flights and commits per edge.
		ed.Eng.SetSpanEdge(i)
	}
	if cost == nil {
		return nil, fmt.Errorf("sched: hierarchy needs a cost model")
	}
	if cfg.GlobalBuffer <= 0 {
		cfg.GlobalBuffer = len(edges) / 2
		if cfg.GlobalBuffer < 1 {
			cfg.GlobalBuffer = 1
		}
	}
	switch {
	case cfg.StalenessExp == 0:
		cfg.StalenessExp = 0.5
	case cfg.StalenessExp < 0:
		cfg.StalenessExp = 0
	}
	if cfg.Epochs < 1 {
		cfg.Epochs = 1
	}
	return &Hierarchy{cfg: cfg, cost: cost, edges: edges, global: edges[0].Srv.Global()}, nil
}

// Clock returns the global tier's virtual time (the arrival time of the
// last update folded into the global buffer).
func (h *Hierarchy) Clock() float64 { return h.clock }

// Version returns the number of global merges so far.
func (h *Hierarchy) Version() int { return h.version }

// Global returns the current global-tier model state.
func (h *Hierarchy) Global() nn.State { return h.global }

// Commits returns the global merges so far.
func (h *Hierarchy) Commits() []GlobalCommit { return h.commits }

// DiscountSum returns the accumulated staleness discount over every edge
// update folded into the global tier.
func (h *Hierarchy) DiscountSum() float64 { return h.discountSum }

// StalenessExp returns the normalized global-tier staleness exponent.
func (h *Hierarchy) StalenessExp() float64 { return h.cfg.StalenessExp }

// Log returns the global tier's event log: edge commits entering transit,
// arrivals folding into the buffer, down-syncs, and global merges. Each
// edge's own engine log (Edges()[i].Eng.Log()) nests under it — together
// they are the run's full, deterministic event record.
func (h *Hierarchy) Log() []string { return h.log }

// Edges exposes the topology (read-only use intended).
func (h *Hierarchy) Edges() []*Edge { return h.edges }

func (h *Hierarchy) logf(format string, args ...any) {
	h.log = append(h.log, fmt.Sprintf(format, args...))
}

// minEdge returns the edge with the smallest virtual clock (ties break on
// index — deterministic).
func (h *Hierarchy) minEdge() *Edge {
	best := h.edges[0]
	for _, ed := range h.edges[1:] {
		if ed.Eng.Clock() < best.Eng.Clock() {
			best = ed
		}
	}
	return best
}

func (h *Hierarchy) minClock() float64 {
	min := math.Inf(1)
	for _, ed := range h.edges {
		if c := ed.Eng.Clock(); c < min {
			min = c
		}
	}
	return min
}

// uplinkTime prices one edge→cloud model upload: the full global-size
// model (the largest pool member) from a Strong-class endpoint, through
// the same cost model that prices client dispatches.
func (h *Hierarchy) uplinkTime(ed *Edge) float64 {
	largest := ed.Srv.Pool().Largest()
	d := core.Dispatch{Sent: largest, Got: largest}
	_, _, up := h.cost.DispatchTimes(core.Strong, d, 1, h.cfg.Epochs)
	return up
}

// Step advances the topology until the next global merge and returns it.
func (h *Hierarchy) Step() (GlobalCommit, error) {
	for {
		ed := h.minEdge()
		if ed.pendingSync {
			// The edge's clock is past the merge that set the flag (the
			// conservative drain guarantees it), so syncing now is a causal
			// downlink, not time travel.
			ed.Srv.SyncGlobal(h.global)
			ed.anchor = h.version
			ed.pendingSync = false
			h.logf("%.3f down-sync edge=%d version=%d", ed.Eng.Clock(), ed.id, h.version)
			if h.cfg.Observer.Enabled() {
				h.cfg.Observer.Span(obs.Span{Kind: obs.KindDownSync,
					Time: ed.Eng.Clock(), Client: -1, Edge: ed.id, Round: h.version})
			}
		}
		c, err := ed.Eng.Step()
		if err != nil {
			return GlobalCommit{}, fmt.Errorf("sched: edge %d: %w", ed.id, err)
		}
		if c.Merged > 0 {
			at := ed.Eng.Clock() + h.uplinkTime(ed)
			h.seq++
			heap.Push(&h.arrivals, &arrival{t: at, seq: h.seq, edge: ed.id,
				state: ed.Srv.Global(), weight: float64(c.Merged), anchor: ed.anchor})
			h.logf("%.3f edge-commit edge=%d round=%d merged=%d arrive=%.3f",
				ed.Eng.Clock(), ed.id, c.Round, c.Merged, at)
			if h.cfg.Observer.Enabled() {
				h.cfg.Observer.Span(obs.Span{Kind: obs.KindEdgeCommit,
					Time: ed.Eng.Clock(), Client: -1, Edge: ed.id,
					Round: c.Round, Merged: c.Merged, End: at})
			}
		}
		// Fold every in-transit update that no edge can beat anymore.
		safe := h.minClock()
		for len(h.arrivals) > 0 && h.arrivals[0].t <= safe {
			a := heap.Pop(&h.arrivals).(*arrival)
			h.clock = a.t
			stale := h.version - a.anchor
			h.buffer = append(h.buffer, agg.Update{
				State:  a.state,
				Weight: a.weight * StalenessDiscount(stale, h.cfg.StalenessExp),
			})
			h.discountSum += StalenessDiscount(stale, h.cfg.StalenessExp)
			h.buffered++
			h.logf("%.3f global-arrive edge=%d stale=%d", a.t, a.edge, stale)
			if h.cfg.Observer.Enabled() {
				h.cfg.Observer.Span(obs.Span{Kind: obs.KindGlobalArrive,
					Time: a.t, Client: -1, Edge: a.edge, Staleness: stale})
			}
			if h.buffered < h.cfg.GlobalBuffer {
				continue
			}
			next, err := agg.Aggregate(h.global, h.buffer)
			if err != nil {
				return GlobalCommit{}, fmt.Errorf("sched: global merge: %w", err)
			}
			h.global = next
			h.version++
			gc := GlobalCommit{Round: h.version, Time: h.clock, Merged: h.buffered}
			h.buffer, h.buffered = nil, 0
			for _, e := range h.edges {
				e.pendingSync = true
			}
			h.commits = append(h.commits, gc)
			h.logf("%.3f global-commit version=%d merged=%d", gc.Time, gc.Round, gc.Merged)
			if h.cfg.Observer.Enabled() {
				h.cfg.Observer.Span(obs.Span{Kind: obs.KindGlobalMerge,
					Time: gc.Time, Client: -1, Round: gc.Round, Merged: gc.Merged})
			}
			return gc, nil
		}
	}
}

// Run performs n global merges, invoking cb (if non-nil) after each; cb
// returning false stops early.
func (h *Hierarchy) Run(n int, cb func(GlobalCommit) bool) error {
	for i := 0; i < n; i++ {
		gc, err := h.Step()
		if err != nil {
			return err
		}
		if cb != nil && !cb(gc) {
			return nil
		}
	}
	return nil
}

// OffsetTrace exposes a shard's view of a base trace: local client c maps
// to base client c+Offset, so every edge of a sharded population reads
// exactly the availability timeline the flat fleet would. It deliberately
// does not forward Compactor — edges sit at different virtual times, so
// one edge retiring behind its own clock could drop state another edge
// still needs; sharded runs use the stateless PopTrace, which has nothing
// to retire.
type OffsetTrace struct {
	Base   Trace
	Offset int
}

// Window implements Trace.
func (o OffsetTrace) Window(c int, t float64) (bool, float64, float64) {
	return o.Base.Window(c+o.Offset, t)
}
