// Package sched drives federated training through a deterministic
// discrete-event simulation: a virtual clock, a seeded event queue, and
// per-client availability traces (on/off periods, speed fluctuation,
// mid-flight dropouts). It replaces the repository's lock-step "round"
// control flow with events — dispatches are opened against core.Server's
// in-flight set, priced by a cost model (internal/testbed), and collected
// by a pluggable aggregation policy:
//
//   - sync     — barrier on every dispatched client; under the AlwaysOn
//     trace this reproduces the legacy synchronous Round bit-identically,
//     and is the baseline the other policies are measured against.
//   - deadline — over-select K+Δ clients and close the round as soon as K
//     responses are in (or an absolute per-round deadline passes); late
//     uploads still cross the wire but are discarded and ledgered as
//     communication waste.
//   - semiasync — FedBuff-style buffered aggregation: updates merge as
//     soon as B of them arrive, each weighted by a staleness discount
//     1/(1+s)^α, and a new dispatch is cut immediately whenever a client
//     frees up, so fast Xavier boards never idle behind a straggling Pi.
//
// Everything is deterministic for a fixed (seed, trace, cost model):
// events are ordered by (virtual time, issue sequence) and every random
// draw flows from the server's seeded rng or the trace's seeded streams.
// See docs/SCHED.md for the event model and the policy semantics.
package sched

import (
	"fmt"
	"math"

	"adaptivefl/internal/core"
	"adaptivefl/internal/obs"
)

// Policy names an aggregation policy.
type Policy string

// The aggregation policies.
const (
	Sync      Policy = "sync"
	Deadline  Policy = "deadline"
	SemiAsync Policy = "semiasync"
	// DeadlineReuse closes rounds exactly like Deadline but banks late
	// uploads instead of discarding them: a straggler's result is merged
	// into the next aggregation under the semiasync staleness discount
	// 1/(1+s)^α (FedAsync-style reuse), ledgered as LateReused rather
	// than as communication waste.
	DeadlineReuse Policy = "deadline-reuse"
)

// ParsePolicy resolves a policy name.
func ParsePolicy(name string) (Policy, error) {
	switch Policy(name) {
	case Sync, Deadline, DeadlineReuse, SemiAsync:
		return Policy(name), nil
	}
	return "", fmt.Errorf("sched: unknown policy %q (sync|deadline|deadline-reuse|semiasync)", name)
}

// CostModel prices the three phases of one dispatch in virtual seconds.
// internal/testbed's Sim implements it from the Table 5 device specs,
// charging real encoded wire bytes when the dispatch carries them.
type CostModel interface {
	DispatchTimes(class core.DeviceClass, d core.Dispatch, samples, epochs int) (down, train, up float64)
}

// Config tunes the engine.
type Config struct {
	Policy Policy
	// K is the dispatch width: clients per round (sync, deadline) or the
	// in-flight target (semiasync).
	K int
	// Extra is the deadline policies' over-selection Δ: K+Extra clients
	// are dispatched, the round closes once K respond. Default
	// max(1, K/2).
	Extra int
	// Deadline is the deadline policy's optional absolute per-round cap in
	// virtual seconds; 0 closes purely on the K-th response. If nothing
	// has arrived by the cap, the round stays open until the first
	// response so progress is guaranteed.
	Deadline float64
	// Buffer is the semiasync aggregation size B. Default max(1, K/2).
	Buffer int
	// StalenessExp is the staleness-discount exponent α in
	// weight·1/(1+s)^α, applied to semiasync merges and to deadline-reuse
	// banked uploads. Zero (the unset value) means the 0.5 default
	// (FedBuff's square-root discount); a negative value disables the
	// discount entirely (α = 0, every stale update at full weight), which
	// a staleness ablation needs to be able to express.
	StalenessExp float64
	// Epochs is the local-epoch count the cost model charges training at.
	Epochs int
	// Parallelism bounds concurrent local-training executions on the
	// engine's worker pool (flights of every policy train lazily off the
	// event loop and are joined at their completion events). 0 shares the
	// server's executor, whose default width is GOMAXPROCS. Results are
	// bit-identical at any setting; only wall-clock changes.
	Parallelism int
	// Observer receives flight and commit spans from the engine
	// (internal/obs). Nil falls back to the server's observer; spans are a
	// pure read of state the engine computed anyway, so the event log,
	// ledger, RL tables and weights are bit-identical with or without one
	// (pinned by TestObserverBitIdentity).
	Observer *obs.Observer
}

func (c *Config) validate() error {
	if _, err := ParsePolicy(string(c.Policy)); err != nil {
		return err
	}
	if c.K < 1 {
		return fmt.Errorf("sched: K must be >= 1")
	}
	if c.Epochs < 1 {
		return fmt.Errorf("sched: Epochs must be >= 1")
	}
	if c.Extra <= 0 {
		c.Extra = c.K / 2
		if c.Extra < 1 {
			c.Extra = 1
		}
	}
	if c.Buffer <= 0 {
		c.Buffer = c.K / 2
		if c.Buffer < 1 {
			c.Buffer = 1
		}
	}
	switch {
	case c.StalenessExp == 0:
		c.StalenessExp = 0.5
	case c.StalenessExp < 0:
		c.StalenessExp = 0 // explicit no-discount
	}
	if c.Deadline < 0 {
		return fmt.Errorf("sched: negative deadline")
	}
	return nil
}

// Commit summarises one aggregation: its ledger round number, the virtual
// time it happened at, and how the dispatches it covered were finalised.
type Commit struct {
	Round  int
	Time   float64
	Merged int // updates aggregated into the global model (reused included)
	Failed int // capacity failures (no derivable member fit)
	Late   int // uploads discarded for missing the round close
	// LateReused counts uploads that missed their round close but were
	// banked and merged into this aggregation with a staleness discount
	// (deadline-reuse). They are included in Merged.
	LateReused int
	Dropped    int // clients that went offline mid-flight
	// Rejected counts uploads that arrived but were refused — undecodable
	// or non-finite payloads, or a non-positive sample weight. Clipped
	// counts merges whose update a robust policy norm-clipped first; they
	// are included in Merged.
	Rejected int
	Clipped  int
}

// StalenessDiscount is the weight multiplier 1/(1+s)^α applied to an
// update merged s aggregations after its dispatch (semiasync buffering,
// deadline-reuse banking). exp ≤ 0 or s ≤ 0 leave the weight untouched.
func StalenessDiscount(stale int, exp float64) float64 {
	if stale <= 0 {
		return 1
	}
	return 1 / math.Pow(1+float64(stale), exp)
}
