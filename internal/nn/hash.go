package nn

import (
	"hash/fnv"
	"math"
	"sort"
)

// HashState fingerprints a state dict: FNV-64a over sorted tensor names
// and raw float64 bits, so any single-bit weight divergence changes it.
// The hash content-addresses global snapshots (wire.ArtifactKey) and
// fingerprints run results; it is not cryptographic.
func HashState(st State) uint64 {
	names := make([]string, 0, len(st))
	for k := range st {
		names = append(names, k)
	}
	sort.Strings(names)
	h := fnv.New64a()
	var buf [8]byte
	for _, k := range names {
		h.Write([]byte(k))
		for _, v := range st[k].Data {
			bits := math.Float64bits(v)
			for i := 0; i < 8; i++ {
				buf[i] = byte(bits >> (8 * i))
			}
			h.Write(buf[:])
		}
	}
	return h.Sum64()
}
