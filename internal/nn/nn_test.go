package nn

import (
	"math"
	"math/rand"
	"testing"

	"adaptivefl/internal/tensor"
)

const gradTol = 1e-6

func checkLayer(t *testing.T, name string, layer Layer, x *tensor.Tensor) {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	res := CheckGradients(rng, layer, x)
	if res.MaxInputErr > gradTol {
		t.Errorf("%s: input gradient error %.3g > %g", name, res.MaxInputErr, gradTol)
	}
	if res.MaxParamErr > gradTol {
		t.Errorf("%s: param gradient error %.3g > %g", name, res.MaxParamErr, gradTol)
	}
}

func TestConv2DGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, cfg := range []struct {
		name                      string
		inC, outC, k, stride, pad int
		bias                      bool
	}{
		{"3x3-pad1-bias", 3, 4, 3, 1, 1, true},
		{"3x3-stride2", 2, 3, 3, 2, 1, false},
		{"1x1", 4, 2, 1, 1, 0, true},
		{"5x5-pad2", 2, 2, 5, 1, 2, false},
	} {
		layer := NewConv2D(rng, "c", cfg.inC, cfg.outC, cfg.k, cfg.stride, cfg.pad, cfg.bias)
		x := tensor.Randn(rng, 1, 2, cfg.inC, 6, 6)
		checkLayer(t, "Conv2D/"+cfg.name, layer, x)
	}
}

func TestDepthwiseConv2DGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, cfg := range []struct {
		name              string
		c, k, stride, pad int
		bias              bool
	}{
		{"3x3", 3, 3, 1, 1, true},
		{"3x3-stride2", 4, 3, 2, 1, false},
	} {
		layer := NewDepthwiseConv2D(rng, "d", cfg.c, cfg.k, cfg.stride, cfg.pad, cfg.bias)
		x := tensor.Randn(rng, 1, 2, cfg.c, 5, 5)
		checkLayer(t, "Depthwise/"+cfg.name, layer, x)
	}
}

func TestLinearGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	layer := NewLinear(rng, "fc", 7, 5, true)
	x := tensor.Randn(rng, 1, 3, 7)
	checkLayer(t, "Linear", layer, x)

	noBias := NewLinear(rng, "fc2", 4, 3, false)
	checkLayer(t, "Linear/nobias", noBias, tensor.Randn(rng, 1, 2, 4))
}

func TestReLUGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	checkLayer(t, "ReLU", NewReLU(), tensor.Randn(rng, 1, 2, 3, 4, 4))
	checkLayer(t, "ReLU6", NewReLU6(), tensor.Randn(rng, 4, 2, 3, 4, 4))
}

func TestBatchNormGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	layer := NewBatchNorm2D("bn", 3)
	// Non-trivial gamma/beta so the gradient paths are exercised.
	for i := range layer.gamma.Val.Data {
		layer.gamma.Val.Data[i] = 0.5 + rng.Float64()
		layer.beta.Val.Data[i] = rng.NormFloat64()
	}
	x := tensor.Randn(rng, 1, 4, 3, 3, 3)
	checkLayer(t, "BatchNorm2D", layer, x)
}

func TestBatchNormEvalUsesRunningStats(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	layer := NewBatchNorm2D("bn", 2)
	x := tensor.Randn(rng, 1, 8, 2, 4, 4)
	for i := 0; i < 20; i++ {
		layer.Forward(x, true)
	}
	y := layer.Forward(x, false)
	// After many passes over the same batch the running stats converge to
	// the batch stats, so eval output should be ~N(0,1) per channel.
	mean := y.Sum() / float64(y.Numel())
	if math.Abs(mean) > 0.1 {
		t.Fatalf("eval-mode mean %v, want ~0", mean)
	}
}

func TestPoolingGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	checkLayer(t, "MaxPool2D", NewMaxPool2D(2, 2), tensor.Randn(rng, 1, 2, 3, 6, 6))
	checkLayer(t, "GlobalAvgPool2D", NewGlobalAvgPool2D(), tensor.Randn(rng, 1, 2, 3, 5, 5))
	checkLayer(t, "AvgPool2D", NewAvgPool2D(2, 2), tensor.Randn(rng, 1, 2, 3, 6, 6))
}

func TestFlattenRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	f := NewFlatten()
	x := tensor.Randn(rng, 1, 2, 3, 4, 5)
	y := f.Forward(x, true)
	if y.Shape[0] != 2 || y.Shape[1] != 60 {
		t.Fatalf("Flatten shape = %v", y.Shape)
	}
	g := f.Backward(y)
	if g.Shape[1] != 3 || g.Shape[2] != 4 || g.Shape[3] != 5 {
		t.Fatalf("Flatten backward shape = %v", g.Shape)
	}
}

func TestSequentialGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	seq := NewSequential(
		NewConv2D(rng, "c1", 2, 4, 3, 1, 1, false),
		NewBatchNorm2D("bn1", 4),
		NewReLU(),
		NewMaxPool2D(2, 2),
		NewFlatten(),
		NewLinear(rng, "fc", 4*3*3, 3, true),
	)
	x := tensor.Randn(rng, 1, 2, 2, 6, 6)
	checkLayer(t, "Sequential", seq, x)
}

func TestDropoutEvalIsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	d := NewDropout(rng, 0.5)
	x := tensor.Randn(rng, 1, 4, 8)
	y := d.Forward(x, false)
	for i := range x.Data {
		if y.Data[i] != x.Data[i] {
			t.Fatal("Dropout must be identity in eval mode")
		}
	}
}

func TestDropoutTrainStats(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	d := NewDropout(rng, 0.3)
	x := tensor.Full(1, 1, 10000)
	y := d.Forward(x, true)
	zeros := 0
	for _, v := range y.Data {
		if v == 0 {
			zeros++
		}
	}
	rate := float64(zeros) / float64(y.Numel())
	if math.Abs(rate-0.3) > 0.03 {
		t.Fatalf("drop rate %v, want ~0.3", rate)
	}
	// Expectation preserved by inverted scaling.
	mean := y.Sum() / float64(y.Numel())
	if math.Abs(mean-1) > 0.05 {
		t.Fatalf("mean after dropout %v, want ~1", mean)
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	logits := tensor.Randn(rng, 3, 5, 7)
	p := Softmax(logits)
	for s := 0; s < 5; s++ {
		sum := 0.0
		for i := 0; i < 7; i++ {
			sum += p.At(s, i)
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("row %d sums to %v", s, sum)
		}
	}
}

func TestCrossEntropyGradientNumeric(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	logits := tensor.Randn(rng, 1, 4, 6)
	labels := []int{1, 5, 0, 3}
	_, grad := CrossEntropy(logits, labels)
	const eps = 1e-6
	for i := range logits.Data {
		orig := logits.Data[i]
		logits.Data[i] = orig + eps
		lp, _ := CrossEntropy(logits, labels)
		logits.Data[i] = orig - eps
		lm, _ := CrossEntropy(logits, labels)
		logits.Data[i] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-grad.Data[i]) > 1e-7 {
			t.Fatalf("CE grad mismatch at %d: %v vs %v", i, grad.Data[i], num)
		}
	}
}

func TestCrossEntropyPerfectPrediction(t *testing.T) {
	logits := tensor.FromSlice([]float64{100, 0, 0, 0, 100, 0}, 2, 3)
	loss, _ := CrossEntropy(logits, []int{0, 1})
	if loss > 1e-10 {
		t.Fatalf("loss for perfect predictions = %v", loss)
	}
}

func TestDistillKLZeroWhenEqual(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	logits := tensor.Randn(rng, 1, 3, 5)
	loss, grad := DistillKL(logits, logits.Clone(), 2)
	if loss > 1e-12 {
		t.Fatalf("KL(p‖p) = %v, want 0", loss)
	}
	if grad.MaxAbs() > 1e-12 {
		t.Fatalf("grad at equality should vanish, max %v", grad.MaxAbs())
	}
}

func TestDistillKLGradientNumeric(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	student := tensor.Randn(rng, 1, 3, 4)
	teacher := tensor.Randn(rng, 1, 3, 4)
	_, grad := DistillKL(student, teacher, 3)
	const eps = 1e-6
	for i := range student.Data {
		orig := student.Data[i]
		student.Data[i] = orig + eps
		lp, _ := DistillKL(student, teacher, 3)
		student.Data[i] = orig - eps
		lm, _ := DistillKL(student, teacher, 3)
		student.Data[i] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-grad.Data[i]) > 1e-7 {
			t.Fatalf("KL grad mismatch at %d: %v vs %v", i, grad.Data[i], num)
		}
	}
}

func TestAccuracy(t *testing.T) {
	logits := tensor.FromSlice([]float64{
		1, 2, 0,
		5, 1, 1,
		0, 0, 9,
	}, 3, 3)
	if got := Accuracy(logits, []int{1, 0, 2}); got != 1 {
		t.Fatalf("Accuracy = %v, want 1", got)
	}
	if got := Accuracy(logits, []int{0, 0, 2}); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("Accuracy = %v, want 2/3", got)
	}
}

func TestSGDConvergesOnQuadratic(t *testing.T) {
	// Minimise f(w) = ||w - target||² via the Param/SGD machinery.
	target := []float64{1, -2, 3}
	p := newParam("w", tensor.New(3))
	opt := NewSGD(0.1, 0.5, 0)
	for i := 0; i < 200; i++ {
		for j := range p.Grad.Data {
			p.Grad.Data[j] = 2 * (p.Val.Data[j] - target[j])
		}
		opt.Step([]*Param{p})
		p.Grad.Zero()
	}
	for j, want := range target {
		if math.Abs(p.Val.Data[j]-want) > 1e-6 {
			t.Fatalf("w[%d] = %v, want %v", j, p.Val.Data[j], want)
		}
	}
}

func TestSGDWeightDecayShrinks(t *testing.T) {
	p := newParam("w", tensor.Full(1, 4))
	opt := NewSGD(0.1, 0, 0.5)
	opt.Step([]*Param{p}) // grad 0, decay pulls towards 0
	if p.Val.Data[0] >= 1 {
		t.Fatalf("weight decay did not shrink: %v", p.Val.Data[0])
	}
}

func TestSGDSkipsBuffers(t *testing.T) {
	b := newBuffer("buf", tensor.Full(7, 2))
	opt := NewSGD(1, 0, 1)
	opt.Step([]*Param{b})
	if b.Val.Data[0] != 7 {
		t.Fatal("SGD must not update buffers")
	}
}

func TestStateDictRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	build := func() *Sequential {
		r := rand.New(rand.NewSource(17))
		return NewSequential(
			NewConv2D(r, "c1", 1, 2, 3, 1, 1, true),
			NewBatchNorm2D("bn", 2),
			NewFlatten(),
			NewLinear(r, "fc", 2*4*4, 3, true),
		)
	}
	a, b := build(), build()
	// Perturb a, snapshot, load into b, compare outputs.
	for _, p := range a.Params() {
		for i := range p.Val.Data {
			p.Val.Data[i] += rng.NormFloat64() * 0.1
		}
	}
	st := StateDict(a)
	if err := LoadState(b, st); err != nil {
		t.Fatal(err)
	}
	x := tensor.Randn(rng, 1, 2, 1, 4, 4)
	ya := a.Forward(x, false)
	yb := b.Forward(x, false)
	for i := range ya.Data {
		if math.Abs(ya.Data[i]-yb.Data[i]) > 1e-12 {
			t.Fatal("outputs differ after state transfer")
		}
	}
}

func TestLoadStateMissingParam(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	l := NewLinear(rng, "fc", 2, 2, true)
	err := LoadState(l, State{"fc.weight": tensor.New(2, 2)})
	if err == nil {
		t.Fatal("expected error for missing fc.bias")
	}
}

func TestLoadStateShapeMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	l := NewLinear(rng, "fc", 2, 2, false)
	err := LoadState(l, State{"fc.weight": tensor.New(3, 2)})
	if err == nil {
		t.Fatal("expected error for shape mismatch")
	}
}

func TestStateNumParamsAndNames(t *testing.T) {
	st := State{"b": tensor.New(2, 2), "a": tensor.New(3)}
	if st.NumParams() != 7 {
		t.Fatalf("NumParams = %d", st.NumParams())
	}
	names := st.Names()
	if names[0] != "a" || names[1] != "b" {
		t.Fatalf("Names = %v", names)
	}
}

// TestTrainingLearnsSeparableData is the end-to-end smoke test: a small
// conv net must fit class-conditional Gaussian blobs far above chance.
func TestTrainingLearnsSeparableData(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	const (
		classes = 3
		n       = 90
		dim     = 6
	)
	protos := make([]*tensor.Tensor, classes)
	for c := range protos {
		protos[c] = tensor.Randn(rng, 1, 1, dim, dim)
	}
	x := tensor.New(n, 1, dim, dim)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % classes
		labels[i] = c
		for j := 0; j < dim*dim; j++ {
			x.Data[i*dim*dim+j] = protos[c].Data[j] + 0.3*rng.NormFloat64()
		}
	}
	model := NewSequential(
		NewConv2D(rng, "c1", 1, 4, 3, 1, 1, true),
		NewReLU(),
		NewMaxPool2D(2, 2),
		NewFlatten(),
		NewLinear(rng, "fc", 4*3*3, classes, true),
	)
	opt := NewSGD(0.05, 0.5, 0)
	for epoch := 0; epoch < 30; epoch++ {
		ZeroGrads(model)
		logits := model.Forward(x, true)
		_, grad := CrossEntropy(logits, labels)
		model.Backward(grad)
		opt.Step(model.Params())
	}
	logits := model.Forward(x, false)
	if acc := Accuracy(logits, labels); acc < 0.9 {
		t.Fatalf("training accuracy %v, want >= 0.9", acc)
	}
}
