package nn

import (
	"math"
	"math/rand"

	"adaptivefl/internal/tensor"
)

// GradCheckResult reports the worst relative error found by CheckGradients.
type GradCheckResult struct {
	MaxInputErr float64
	MaxParamErr float64
}

// CheckGradients validates a layer's Backward pass against central finite
// differences of its Forward pass, using the scalar probe
// loss = Σ w ⊙ Forward(x) with random w. It checks the input gradient and
// every trainable parameter gradient. Layers must be deterministic in
// training mode for the check to be meaningful.
func CheckGradients(rng *rand.Rand, layer Layer, x *tensor.Tensor) GradCheckResult {
	const eps = 1e-5

	out := layer.Forward(x, true)
	w := tensor.Randn(rng, 1, out.Shape...)
	lossOf := func() float64 {
		y := layer.Forward(x, true)
		s := 0.0
		for i, v := range y.Data {
			s += v * w.Data[i]
		}
		return s
	}

	ZeroGrads(layer)
	layer.Forward(x, true)
	dx := layer.Backward(w.Clone())

	res := GradCheckResult{}
	relErr := func(analytic, numeric float64) float64 {
		denom := math.Max(1, math.Max(math.Abs(analytic), math.Abs(numeric)))
		return math.Abs(analytic-numeric) / denom
	}

	for i := range x.Data {
		orig := x.Data[i]
		x.Data[i] = orig + eps
		lp := lossOf()
		x.Data[i] = orig - eps
		lm := lossOf()
		x.Data[i] = orig
		num := (lp - lm) / (2 * eps)
		if e := relErr(dx.Data[i], num); e > res.MaxInputErr {
			res.MaxInputErr = e
		}
	}

	for _, p := range layer.Params() {
		if p.Buffer {
			continue
		}
		for i := range p.Val.Data {
			orig := p.Val.Data[i]
			p.Val.Data[i] = orig + eps
			lp := lossOf()
			p.Val.Data[i] = orig - eps
			lm := lossOf()
			p.Val.Data[i] = orig
			num := (lp - lm) / (2 * eps)
			if e := relErr(p.Grad.Data[i], num); e > res.MaxParamErr {
				res.MaxParamErr = e
			}
		}
	}
	return res
}
