package nn

import "adaptivefl/internal/tensor"

// SGD is stochastic gradient descent with classical momentum and optional
// L2 weight decay — the optimizer the paper uses (lr 0.01, momentum 0.5).
// Velocity buffers are keyed by parameter identity, so one SGD instance
// follows a model through repeated Forward/Backward cycles.
type SGD struct {
	LR          float64
	Momentum    float64
	WeightDecay float64

	velocity map[*Param]*tensor.Tensor
}

// NewSGD builds an optimizer with the given hyperparameters.
func NewSGD(lr, momentum, weightDecay float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, WeightDecay: weightDecay,
		velocity: make(map[*Param]*tensor.Tensor)}
}

// Reset zeroes the momentum state so a recycled optimizer behaves exactly
// like a freshly constructed one. Training arenas (internal/core) reuse an
// SGD instance across the dispatches a worker executes; Reset is what
// keeps that reuse bit-identical to building a new optimizer per dispatch.
func (o *SGD) Reset() {
	for _, v := range o.velocity {
		v.Zero()
	}
}

// Step applies one update to every trainable parameter and leaves
// gradients untouched (call ZeroGrads before the next backward pass).
func (o *SGD) Step(params []*Param) {
	for _, p := range params {
		if p.Buffer {
			continue
		}
		g := p.Grad
		if o.WeightDecay != 0 {
			g = g.Clone()
			g.AddScaled(o.WeightDecay, p.Val)
		}
		if o.Momentum != 0 {
			v, ok := o.velocity[p]
			if !ok {
				v = tensor.New(p.Val.Shape...)
				o.velocity[p] = v
			}
			v.Scale(o.Momentum)
			v.AddInPlace(g)
			g = v
		}
		p.Val.AddScaled(-o.LR, g)
	}
}
