package nn

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"adaptivefl/internal/tensor"
)

// Conv2D is a 2-D convolution with square kernels, implemented as
// im2col + GEMM over per-sample column blocks: each sample's [InC*K*K,
// OH*OW] block feeds one GEMM whose destination is a view straight into
// the [N, OutC, OH, OW] output, so no scatter copy reorders the result
// (and backward's gradient gather disappears symmetrically — the grad's
// per-sample [OutC, OH*OW] blocks are already GEMM-shaped). Per-element
// accumulation order matches the former whole-batch forward GEMM exactly
// (dot products over the same K·K·InC reduction), so forward results are
// bitwise unchanged. Weight layout is [OutC, InC, K, K]; input batches
// are [N, InC, H, W].
type Conv2D struct {
	InC, OutC, K, Stride, Pad int
	UseBias                   bool

	weight, bias *Param

	// forward cache, retained only for train-mode forwards; eval-mode
	// forwards release it so inference does not pin the column buffer.
	in     *tensor.Tensor
	cols   *tensor.Tensor // im2col blocks [N, InC*K*K, OH*OW]
	oh, ow int
}

// NewConv2D builds a convolution layer with He-initialised weights. The
// name prefixes the layer's parameter names ("<name>.weight").
func NewConv2D(rng *rand.Rand, name string, inC, outC, k, stride, pad int, bias bool) *Conv2D {
	fanIn := inC * k * k
	std := math.Sqrt(2.0 / float64(fanIn))
	c := &Conv2D{InC: inC, OutC: outC, K: k, Stride: stride, Pad: pad, UseBias: bias}
	c.weight = newParam(name+".weight", tensor.Randn(rng, std, outC, inC, k, k))
	if bias {
		c.bias = newParam(name+".bias", tensor.New(outC))
	}
	return c
}

// Forward computes the convolution over a batch.
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, ci, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	if ci != c.InC {
		panic(fmt.Sprintf("nn: conv %s expects %d input channels, got %d", c.weight.Name, c.InC, ci))
	}
	c.oh = tensor.ConvOutSize(h, c.K, c.Stride, c.Pad)
	c.ow = tensor.ConvOutSize(w, c.K, c.Stride, c.Pad)
	spatial := c.oh * c.ow
	rows := c.InC * c.K * c.K

	var cols *tensor.Tensor
	if train {
		if c.cols == nil || c.cols.Shape[0] != n || c.cols.Shape[1] != rows || c.cols.Shape[2] != spatial {
			c.cols = tensor.New(n, rows, spatial)
		}
		cols = c.cols
		c.in = x
	} else {
		// Eval-mode forwards don't keep column blocks for a backward pass,
		// so one scratch block from the size-keyed pool is reused for
		// every sample instead of allocating per call.
		cols = tensor.GetScratch(rows, spatial)
		c.in, c.cols = nil, nil
	}

	// One GEMM per sample, written straight into the sample's [OutC,
	// spatial] block of the output — the GEMM destination IS the final
	// layout, so nothing is scattered afterwards. Samples touch disjoint
	// cols and output blocks, so they run concurrently when workers are
	// available (each element is still computed by exactly one fixed code
	// path, so results stay bitwise independent of the parallelism).
	wm := c.weight.Val.Reshape(c.OutC, rows)
	out := tensor.New(n, c.OutC, c.oh, c.ow)
	doSample := func(s int, colsS *tensor.Tensor) {
		xs := tensor.FromSlice(x.Data[s*ci*h*w:(s+1)*ci*h*w], ci, h, w)
		tensor.Im2Col(xs, c.K, c.K, c.Stride, c.Pad, colsS)
		outS := tensor.FromSlice(out.Data[s*c.OutC*spatial:(s+1)*c.OutC*spatial], c.OutC, spatial)
		tensor.Gemm(false, false, 1, wm, colsS, 0, outS)
	}
	trainCols := func(s int) *tensor.Tensor {
		return tensor.FromSlice(cols.Data[s*rows*spatial:(s+1)*rows*spatial], rows, spatial)
	}
	if par := tensor.Parallelism(); par > 1 && n > 1 {
		if par > n {
			par = n
		}
		var wg sync.WaitGroup
		sem := make(chan struct{}, par)
		for s := 0; s < n; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				if train {
					doSample(s, trainCols(s))
					return
				}
				colsS := tensor.GetScratch(rows, spatial)
				doSample(s, colsS)
				tensor.PutScratch(colsS)
			}(s)
		}
		wg.Wait()
	} else {
		for s := 0; s < n; s++ {
			if train {
				doSample(s, trainCols(s))
			} else {
				doSample(s, cols)
			}
		}
	}
	if !train {
		tensor.PutScratch(cols)
	}
	if c.UseBias {
		for s := 0; s < n; s++ {
			for o := 0; o < c.OutC; o++ {
				b := c.bias.Val.Data[o]
				dst := out.Data[(s*c.OutC+o)*spatial : (s*c.OutC+o+1)*spatial]
				for i := range dst {
					dst[i] += b
				}
			}
		}
	}
	return out
}

// Backward accumulates dW (and db) and returns dX. The grad's per-sample
// [OutC, spatial] blocks are used as GEMM operands in place — the layout
// Forward writes is exactly the layout backward needs, so the former
// [OutC, N*spatial] gather buffer is gone.
func (c *Conv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if c.in == nil || c.cols == nil {
		panic(fmt.Sprintf("nn: conv %s Backward without a train-mode Forward", c.weight.Name))
	}
	n := grad.Shape[0]
	spatial := c.oh * c.ow
	rows := c.InC * c.K * c.K
	h, w := c.in.Shape[2], c.in.Shape[3]

	dwm := c.weight.Grad.Reshape(c.OutC, rows)
	wm := c.weight.Val.Reshape(c.OutC, rows)
	dx := tensor.New(n, c.InC, h, w)
	dcols := tensor.GetScratch(rows, spatial)
	for s := 0; s < n; s++ {
		gS := tensor.FromSlice(grad.Data[s*c.OutC*spatial:(s+1)*c.OutC*spatial], c.OutC, spatial)
		colsS := tensor.FromSlice(c.cols.Data[s*rows*spatial:(s+1)*rows*spatial], rows, spatial)
		// dW += g_s · cols_sᵀ
		tensor.Gemm(false, true, 1, gS, colsS, 1, dwm)
		// dcols_s = Wᵀ · g_s, folded back into the sample's dX plane.
		tensor.Gemm(true, false, 1, wm, gS, 0, dcols)
		dxS := tensor.FromSlice(dx.Data[s*c.InC*h*w:(s+1)*c.InC*h*w], c.InC, h, w)
		tensor.Col2Im(dcols, c.InC, h, w, c.K, c.K, c.Stride, c.Pad, dxS)
		if c.UseBias {
			for o := 0; o < c.OutC; o++ {
				row := gS.Data[o*spatial : (o+1)*spatial]
				acc := 0.0
				for _, v := range row {
					acc += v
				}
				c.bias.Grad.Data[o] += acc
			}
		}
	}
	tensor.PutScratch(dcols)
	return dx
}

// Params returns the weight (and bias) parameters.
func (c *Conv2D) Params() []*Param {
	if c.UseBias {
		return []*Param{c.weight, c.bias}
	}
	return []*Param{c.weight}
}

// DepthwiseConv2D applies one K×K filter per channel (groups == channels),
// the building block of MobileNetV2. Weight layout is [C, 1, K, K].
// Each (sample, channel) plane is convolved tap-by-tap over row-contiguous
// slices: the kernel taps form the outer loops and the inner loop runs
// along output rows with the bounds hoisted, instead of a 6-deep scalar
// loop with per-element padding branches.
type DepthwiseConv2D struct {
	C, K, Stride, Pad int
	UseBias           bool

	weight, bias *Param
	in           *tensor.Tensor
	oh, ow       int
}

// NewDepthwiseConv2D builds a depthwise convolution layer.
func NewDepthwiseConv2D(rng *rand.Rand, name string, c, k, stride, pad int, bias bool) *DepthwiseConv2D {
	std := math.Sqrt(2.0 / float64(k*k))
	d := &DepthwiseConv2D{C: c, K: k, Stride: stride, Pad: pad, UseBias: bias}
	d.weight = newParam(name+".weight", tensor.Randn(rng, std, c, 1, k, k))
	if bias {
		d.bias = newParam(name+".bias", tensor.New(c))
	}
	return d
}

// tapRange returns the output index range [lo,hi) along one axis for which
// the input index oi*stride - pad + k stays inside [0, in).
func tapRange(k, stride, pad, in, out int) (lo, hi int) {
	lo = 0
	if pad > k {
		lo = (pad - k + stride - 1) / stride
	}
	hi = out
	if m := (in - 1 + pad - k) / stride; m+1 < hi {
		hi = m + 1
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// Forward computes the per-channel convolution.
func (d *DepthwiseConv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	if c != d.C {
		panic(fmt.Sprintf("nn: depthwise %s expects %d channels, got %d", d.weight.Name, d.C, c))
	}
	if train {
		d.in = x
	} else {
		d.in = nil
	}
	d.oh = tensor.ConvOutSize(h, d.K, d.Stride, d.Pad)
	d.ow = tensor.ConvOutSize(w, d.K, d.Stride, d.Pad)
	out := tensor.New(n, c, d.oh, d.ow)
	for s := 0; s < n; s++ {
		for ch := 0; ch < c; ch++ {
			xIn := x.Data[(s*c+ch)*h*w : (s*c+ch+1)*h*w]
			ker := d.weight.Val.Data[ch*d.K*d.K : (ch+1)*d.K*d.K]
			yOut := out.Data[(s*c+ch)*d.oh*d.ow : (s*c+ch+1)*d.oh*d.ow]
			if d.UseBias {
				b := d.bias.Val.Data[ch]
				for i := range yOut {
					yOut[i] = b
				}
			}
			for ki := 0; ki < d.K; ki++ {
				oiLo, oiHi := tapRange(ki, d.Stride, d.Pad, h, d.oh)
				for kj := 0; kj < d.K; kj++ {
					kv := ker[ki*d.K+kj]
					ojLo, ojHi := tapRange(kj, d.Stride, d.Pad, w, d.ow)
					if ojHi <= ojLo {
						continue
					}
					for oi := oiLo; oi < oiHi; oi++ {
						ii := oi*d.Stride - d.Pad + ki
						yRow := yOut[oi*d.ow : (oi+1)*d.ow]
						if d.Stride == 1 {
							xSeg := xIn[ii*w+ojLo+kj-d.Pad : ii*w+ojHi+kj-d.Pad]
							ySeg := yRow[ojLo:ojHi]
							for j, v := range xSeg {
								ySeg[j] += kv * v
							}
							continue
						}
						jj := ojLo*d.Stride - d.Pad + kj
						for oj := ojLo; oj < ojHi; oj++ {
							yRow[oj] += kv * xIn[ii*w+jj]
							jj += d.Stride
						}
					}
				}
			}
		}
	}
	return out
}

// Backward accumulates per-channel filter gradients and returns dX.
func (d *DepthwiseConv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if d.in == nil {
		panic(fmt.Sprintf("nn: depthwise %s Backward without a train-mode Forward", d.weight.Name))
	}
	n, c := grad.Shape[0], grad.Shape[1]
	h, w := d.in.Shape[2], d.in.Shape[3]
	dx := tensor.New(n, c, h, w)
	for s := 0; s < n; s++ {
		for ch := 0; ch < c; ch++ {
			xIn := d.in.Data[(s*c+ch)*h*w : (s*c+ch+1)*h*w]
			g := grad.Data[(s*c+ch)*d.oh*d.ow : (s*c+ch+1)*d.oh*d.ow]
			ker := d.weight.Val.Data[ch*d.K*d.K : (ch+1)*d.K*d.K]
			dker := d.weight.Grad.Data[ch*d.K*d.K : (ch+1)*d.K*d.K]
			dxs := dx.Data[(s*c+ch)*h*w : (s*c+ch+1)*h*w]
			for ki := 0; ki < d.K; ki++ {
				oiLo, oiHi := tapRange(ki, d.Stride, d.Pad, h, d.oh)
				for kj := 0; kj < d.K; kj++ {
					kv := ker[ki*d.K+kj]
					ojLo, ojHi := tapRange(kj, d.Stride, d.Pad, w, d.ow)
					if ojHi <= ojLo {
						continue
					}
					acc := 0.0
					for oi := oiLo; oi < oiHi; oi++ {
						ii := oi*d.Stride - d.Pad + ki
						gRow := g[oi*d.ow : (oi+1)*d.ow]
						if d.Stride == 1 {
							off := ii*w + kj - d.Pad
							xSeg := xIn[off+ojLo : off+ojHi]
							dxSeg := dxs[off+ojLo : off+ojHi]
							gSeg := gRow[ojLo:ojHi]
							for j, gv := range gSeg {
								acc += gv * xSeg[j]
								dxSeg[j] += gv * kv
							}
							continue
						}
						jj := ojLo*d.Stride - d.Pad + kj
						for oj := ojLo; oj < ojHi; oj++ {
							gv := gRow[oj]
							acc += gv * xIn[ii*w+jj]
							dxs[ii*w+jj] += gv * kv
							jj += d.Stride
						}
					}
					dker[ki*d.K+kj] += acc
				}
			}
			if d.UseBias {
				s := 0.0
				for _, v := range g {
					s += v
				}
				d.bias.Grad.Data[ch] += s
			}
		}
	}
	return dx
}

// Params returns the weight (and bias) parameters.
func (d *DepthwiseConv2D) Params() []*Param {
	if d.UseBias {
		return []*Param{d.weight, d.bias}
	}
	return []*Param{d.weight}
}
