package nn

import (
	"fmt"
	"math"
	"math/rand"

	"adaptivefl/internal/tensor"
)

// Conv2D is a 2-D convolution with square kernels, implemented as
// im2col + GEMM. Weight layout is [OutC, InC, K, K]; input batches are
// [N, InC, H, W].
type Conv2D struct {
	InC, OutC, K, Stride, Pad int
	UseBias                   bool

	weight, bias *Param

	// forward cache
	in   *tensor.Tensor
	cols []*tensor.Tensor // per-sample im2col matrices
	oh   int
	ow   int
}

// NewConv2D builds a convolution layer with He-initialised weights. The
// name prefixes the layer's parameter names ("<name>.weight").
func NewConv2D(rng *rand.Rand, name string, inC, outC, k, stride, pad int, bias bool) *Conv2D {
	fanIn := inC * k * k
	std := math.Sqrt(2.0 / float64(fanIn))
	c := &Conv2D{InC: inC, OutC: outC, K: k, Stride: stride, Pad: pad, UseBias: bias}
	c.weight = newParam(name+".weight", tensor.Randn(rng, std, outC, inC, k, k))
	if bias {
		c.bias = newParam(name+".bias", tensor.New(outC))
	}
	return c
}

// Forward computes the convolution over a batch.
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, ci, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	if ci != c.InC {
		panic(fmt.Sprintf("nn: conv %s expects %d input channels, got %d", c.weight.Name, c.InC, ci))
	}
	c.oh = tensor.ConvOutSize(h, c.K, c.Stride, c.Pad)
	c.ow = tensor.ConvOutSize(w, c.K, c.Stride, c.Pad)
	c.in = x
	if cap(c.cols) < n {
		c.cols = make([]*tensor.Tensor, n)
	}
	c.cols = c.cols[:n]

	out := tensor.New(n, c.OutC, c.oh, c.ow)
	wm := c.weight.Val.Reshape(c.OutC, c.InC*c.K*c.K)
	spatial := c.oh * c.ow
	for s := 0; s < n; s++ {
		if c.cols[s] == nil || c.cols[s].Shape[0] != c.InC*c.K*c.K || c.cols[s].Shape[1] != spatial {
			c.cols[s] = tensor.New(c.InC*c.K*c.K, spatial)
		}
		xs := tensor.FromSlice(x.Data[s*ci*h*w:(s+1)*ci*h*w], ci, h, w)
		tensor.Im2Col(xs, c.K, c.K, c.Stride, c.Pad, c.cols[s])
		ys := tensor.FromSlice(out.Data[s*c.OutC*spatial:(s+1)*c.OutC*spatial], c.OutC, spatial)
		tensor.Gemm(false, false, 1, wm, c.cols[s], 0, ys)
		if c.UseBias {
			for o := 0; o < c.OutC; o++ {
				b := c.bias.Val.Data[o]
				row := ys.Data[o*spatial : (o+1)*spatial]
				for i := range row {
					row[i] += b
				}
			}
		}
	}
	return out
}

// Backward accumulates dW (and db) and returns dX.
func (c *Conv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n := grad.Shape[0]
	spatial := c.oh * c.ow
	h, w := c.in.Shape[2], c.in.Shape[3]
	dx := tensor.New(n, c.InC, h, w)
	dwm := c.weight.Grad.Reshape(c.OutC, c.InC*c.K*c.K)
	wm := c.weight.Val.Reshape(c.OutC, c.InC*c.K*c.K)
	dcols := tensor.New(c.InC*c.K*c.K, spatial)
	for s := 0; s < n; s++ {
		gs := tensor.FromSlice(grad.Data[s*c.OutC*spatial:(s+1)*c.OutC*spatial], c.OutC, spatial)
		// dW += gs · colsᵀ
		tensor.Gemm(false, true, 1, gs, c.cols[s], 1, dwm)
		// dcols = Wᵀ · gs
		tensor.Gemm(true, false, 1, wm, gs, 0, dcols)
		dxs := tensor.FromSlice(dx.Data[s*c.InC*h*w:(s+1)*c.InC*h*w], c.InC, h, w)
		tensor.Col2Im(dcols, c.InC, h, w, c.K, c.K, c.Stride, c.Pad, dxs)
		if c.UseBias {
			for o := 0; o < c.OutC; o++ {
				row := gs.Data[o*spatial : (o+1)*spatial]
				s := 0.0
				for _, v := range row {
					s += v
				}
				c.bias.Grad.Data[o] += s
			}
		}
	}
	return dx
}

// Params returns the weight (and bias) parameters.
func (c *Conv2D) Params() []*Param {
	if c.UseBias {
		return []*Param{c.weight, c.bias}
	}
	return []*Param{c.weight}
}

// DepthwiseConv2D applies one K×K filter per channel (groups == channels),
// the building block of MobileNetV2. Weight layout is [C, 1, K, K].
type DepthwiseConv2D struct {
	C, K, Stride, Pad int
	UseBias           bool

	weight, bias *Param
	in           *tensor.Tensor
	oh, ow       int
}

// NewDepthwiseConv2D builds a depthwise convolution layer.
func NewDepthwiseConv2D(rng *rand.Rand, name string, c, k, stride, pad int, bias bool) *DepthwiseConv2D {
	std := math.Sqrt(2.0 / float64(k*k))
	d := &DepthwiseConv2D{C: c, K: k, Stride: stride, Pad: pad, UseBias: bias}
	d.weight = newParam(name+".weight", tensor.Randn(rng, std, c, 1, k, k))
	if bias {
		d.bias = newParam(name+".bias", tensor.New(c))
	}
	return d
}

// Forward computes the per-channel convolution.
func (d *DepthwiseConv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	if c != d.C {
		panic(fmt.Sprintf("nn: depthwise %s expects %d channels, got %d", d.weight.Name, d.C, c))
	}
	d.in = x
	d.oh = tensor.ConvOutSize(h, d.K, d.Stride, d.Pad)
	d.ow = tensor.ConvOutSize(w, d.K, d.Stride, d.Pad)
	out := tensor.New(n, c, d.oh, d.ow)
	for s := 0; s < n; s++ {
		for ch := 0; ch < c; ch++ {
			xIn := x.Data[(s*c+ch)*h*w:]
			ker := d.weight.Val.Data[ch*d.K*d.K:]
			yOut := out.Data[(s*c+ch)*d.oh*d.ow:]
			b := 0.0
			if d.UseBias {
				b = d.bias.Val.Data[ch]
			}
			idx := 0
			for oi := 0; oi < d.oh; oi++ {
				for oj := 0; oj < d.ow; oj++ {
					acc := b
					for ki := 0; ki < d.K; ki++ {
						ii := oi*d.Stride - d.Pad + ki
						if ii < 0 || ii >= h {
							continue
						}
						for kj := 0; kj < d.K; kj++ {
							jj := oj*d.Stride - d.Pad + kj
							if jj >= 0 && jj < w {
								acc += xIn[ii*w+jj] * ker[ki*d.K+kj]
							}
						}
					}
					yOut[idx] = acc
					idx++
				}
			}
		}
	}
	return out
}

// Backward accumulates per-channel filter gradients and returns dX.
func (d *DepthwiseConv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n, c := grad.Shape[0], grad.Shape[1]
	h, w := d.in.Shape[2], d.in.Shape[3]
	dx := tensor.New(n, c, h, w)
	for s := 0; s < n; s++ {
		for ch := 0; ch < c; ch++ {
			xIn := d.in.Data[(s*c+ch)*h*w:]
			g := grad.Data[(s*c+ch)*d.oh*d.ow:]
			ker := d.weight.Val.Data[ch*d.K*d.K:]
			dker := d.weight.Grad.Data[ch*d.K*d.K:]
			dxs := dx.Data[(s*c+ch)*h*w:]
			idx := 0
			gsum := 0.0
			for oi := 0; oi < d.oh; oi++ {
				for oj := 0; oj < d.ow; oj++ {
					gv := g[idx]
					idx++
					if gv == 0 {
						continue
					}
					gsum += gv
					for ki := 0; ki < d.K; ki++ {
						ii := oi*d.Stride - d.Pad + ki
						if ii < 0 || ii >= h {
							continue
						}
						for kj := 0; kj < d.K; kj++ {
							jj := oj*d.Stride - d.Pad + kj
							if jj >= 0 && jj < w {
								dker[ki*d.K+kj] += gv * xIn[ii*w+jj]
								dxs[ii*w+jj] += gv * ker[ki*d.K+kj]
							}
						}
					}
				}
			}
			if d.UseBias {
				d.bias.Grad.Data[ch] += gsum
			}
		}
	}
	return dx
}

// Params returns the weight (and bias) parameters.
func (d *DepthwiseConv2D) Params() []*Param {
	if d.UseBias {
		return []*Param{d.weight, d.bias}
	}
	return []*Param{d.weight}
}
