package nn

import (
	"math"

	"adaptivefl/internal/tensor"
)

// MaxPool2D applies K×K max pooling with the given stride (no padding).
type MaxPool2D struct {
	K, Stride int

	argmax  []int
	inShape []int
}

// NewMaxPool2D builds a max-pooling layer.
func NewMaxPool2D(k, stride int) *MaxPool2D { return &MaxPool2D{K: k, Stride: stride} }

// Forward pools each window to its maximum and records the winner index.
func (p *MaxPool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	oh := tensor.ConvOutSize(h, p.K, p.Stride, 0)
	ow := tensor.ConvOutSize(w, p.K, p.Stride, 0)
	p.inShape = append(p.inShape[:0], x.Shape...)
	out := tensor.New(n, c, oh, ow)
	if cap(p.argmax) < out.Numel() {
		p.argmax = make([]int, out.Numel())
	}
	p.argmax = p.argmax[:out.Numel()]
	idx := 0
	for s := 0; s < n; s++ {
		for ch := 0; ch < c; ch++ {
			base := (s*c + ch) * h * w
			for oi := 0; oi < oh; oi++ {
				for oj := 0; oj < ow; oj++ {
					best, bestAt := math.Inf(-1), -1
					for ki := 0; ki < p.K; ki++ {
						ii := oi*p.Stride + ki
						if ii >= h {
							break
						}
						for kj := 0; kj < p.K; kj++ {
							jj := oj*p.Stride + kj
							if jj >= w {
								break
							}
							if v := x.Data[base+ii*w+jj]; v > best {
								best, bestAt = v, base+ii*w+jj
							}
						}
					}
					out.Data[idx] = best
					p.argmax[idx] = bestAt
					idx++
				}
			}
		}
	}
	return out
}

// Backward routes each output gradient to its window's argmax.
func (p *MaxPool2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	dx := tensor.New(p.inShape...)
	for i, at := range p.argmax {
		dx.Data[at] += grad.Data[i]
	}
	return dx
}

// Params returns nil; pooling has no parameters.
func (p *MaxPool2D) Params() []*Param { return nil }

// GlobalAvgPool2D averages each channel's spatial map to a single value,
// producing [N, C, 1, 1].
type GlobalAvgPool2D struct {
	inShape []int
}

// NewGlobalAvgPool2D builds a global average pooling layer.
func NewGlobalAvgPool2D() *GlobalAvgPool2D { return &GlobalAvgPool2D{} }

// Forward averages over H×W.
func (p *GlobalAvgPool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	p.inShape = append(p.inShape[:0], x.Shape...)
	out := tensor.New(n, c, 1, 1)
	spatial := h * w
	for i := 0; i < n*c; i++ {
		s := 0.0
		for j := 0; j < spatial; j++ {
			s += x.Data[i*spatial+j]
		}
		out.Data[i] = s / float64(spatial)
	}
	return out
}

// Backward spreads each gradient uniformly over its spatial map.
func (p *GlobalAvgPool2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	dx := tensor.New(p.inShape...)
	spatial := p.inShape[2] * p.inShape[3]
	inv := 1 / float64(spatial)
	for i := 0; i < p.inShape[0]*p.inShape[1]; i++ {
		g := grad.Data[i] * inv
		for j := 0; j < spatial; j++ {
			dx.Data[i*spatial+j] = g
		}
	}
	return dx
}

// Params returns nil; pooling has no parameters.
func (p *GlobalAvgPool2D) Params() []*Param { return nil }

// AvgPool2D applies K×K average pooling with the given stride (no padding).
type AvgPool2D struct {
	K, Stride int

	inShape []int
}

// NewAvgPool2D builds an average-pooling layer.
func NewAvgPool2D(k, stride int) *AvgPool2D { return &AvgPool2D{K: k, Stride: stride} }

// Forward pools each window to its mean.
func (p *AvgPool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	oh := tensor.ConvOutSize(h, p.K, p.Stride, 0)
	ow := tensor.ConvOutSize(w, p.K, p.Stride, 0)
	p.inShape = append(p.inShape[:0], x.Shape...)
	out := tensor.New(n, c, oh, ow)
	inv := 1 / float64(p.K*p.K)
	idx := 0
	for s := 0; s < n; s++ {
		for ch := 0; ch < c; ch++ {
			base := (s*c + ch) * h * w
			for oi := 0; oi < oh; oi++ {
				for oj := 0; oj < ow; oj++ {
					acc := 0.0
					for ki := 0; ki < p.K; ki++ {
						for kj := 0; kj < p.K; kj++ {
							acc += x.Data[base+(oi*p.Stride+ki)*w+oj*p.Stride+kj]
						}
					}
					out.Data[idx] = acc * inv
					idx++
				}
			}
		}
	}
	return out
}

// Backward spreads gradient uniformly across each window.
func (p *AvgPool2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n, c, h, w := p.inShape[0], p.inShape[1], p.inShape[2], p.inShape[3]
	oh := tensor.ConvOutSize(h, p.K, p.Stride, 0)
	ow := tensor.ConvOutSize(w, p.K, p.Stride, 0)
	dx := tensor.New(p.inShape...)
	inv := 1 / float64(p.K*p.K)
	idx := 0
	for s := 0; s < n; s++ {
		for ch := 0; ch < c; ch++ {
			base := (s*c + ch) * h * w
			for oi := 0; oi < oh; oi++ {
				for oj := 0; oj < ow; oj++ {
					g := grad.Data[idx] * inv
					idx++
					for ki := 0; ki < p.K; ki++ {
						for kj := 0; kj < p.K; kj++ {
							dx.Data[base+(oi*p.Stride+ki)*w+oj*p.Stride+kj] += g
						}
					}
				}
			}
		}
	}
	return dx
}

// Params returns nil; pooling has no parameters.
func (p *AvgPool2D) Params() []*Param { return nil }
