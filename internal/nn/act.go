package nn

import (
	"math/rand"

	"adaptivefl/internal/tensor"
)

// ReLU is max(0, x). With ClampAt > 0 it becomes the clipped variant
// min(max(0,x), ClampAt) — ReLU6 (ClampAt = 6) is MobileNetV2's activation.
type ReLU struct {
	ClampAt float64 // 0 means no upper clamp

	mask []bool
}

// NewReLU returns a standard rectifier.
func NewReLU() *ReLU { return &ReLU{} }

// NewReLU6 returns the MobileNet-style clipped rectifier.
func NewReLU6() *ReLU { return &ReLU{ClampAt: 6} }

// Forward applies the rectifier element-wise.
func (r *ReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out := x.Clone()
	if cap(r.mask) < len(out.Data) {
		r.mask = make([]bool, len(out.Data))
	}
	r.mask = r.mask[:len(out.Data)]
	for i, v := range out.Data {
		pass := v > 0
		if pass && r.ClampAt > 0 && v > r.ClampAt {
			out.Data[i] = r.ClampAt
			pass = false
		} else if !pass {
			out.Data[i] = 0
		}
		r.mask[i] = pass
	}
	return out
}

// Backward zeroes gradient where the forward pass saturated.
func (r *ReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	out := grad.Clone()
	for i := range out.Data {
		if !r.mask[i] {
			out.Data[i] = 0
		}
	}
	return out
}

// Params returns nil; ReLU has no parameters.
func (r *ReLU) Params() []*Param { return nil }

// Dropout zeroes activations with probability P during training and
// rescales survivors by 1/(1-P) (inverted dropout). Evaluation is a no-op.
type Dropout struct {
	P   float64
	rng *rand.Rand

	mask []bool
}

// NewDropout builds a dropout layer with drop probability p.
func NewDropout(rng *rand.Rand, p float64) *Dropout { return &Dropout{P: p, rng: rng} }

// Forward applies dropout in training mode.
func (d *Dropout) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if !train || d.P <= 0 {
		d.mask = d.mask[:0]
		return x
	}
	out := x.Clone()
	if cap(d.mask) < len(out.Data) {
		d.mask = make([]bool, len(out.Data))
	}
	d.mask = d.mask[:len(out.Data)]
	scale := 1 / (1 - d.P)
	for i := range out.Data {
		if d.rng.Float64() < d.P {
			out.Data[i] = 0
			d.mask[i] = false
		} else {
			out.Data[i] *= scale
			d.mask[i] = true
		}
	}
	return out
}

// Backward routes gradient only through surviving units.
func (d *Dropout) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if len(d.mask) == 0 {
		return grad
	}
	out := grad.Clone()
	scale := 1 / (1 - d.P)
	for i := range out.Data {
		if d.mask[i] {
			out.Data[i] *= scale
		} else {
			out.Data[i] = 0
		}
	}
	return out
}

// Params returns nil; Dropout has no parameters.
func (d *Dropout) Params() []*Param { return nil }
