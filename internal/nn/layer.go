// Package nn implements the training substrate AdaptiveFL runs on: neural
// network layers with hand-written forward/backward passes, losses, and an
// SGD optimizer — all on internal/tensor. Every layer's gradient is
// validated against finite differences in the package tests.
//
// Layers operate on batches: convolutional layers take [N,C,H,W] tensors,
// dense layers take [N,F]. A layer caches whatever its Backward pass needs
// during Forward, so the usual usage is strictly
// Forward → Backward → optimizer step.
package nn

import (
	"fmt"
	"sort"

	"adaptivefl/internal/tensor"
)

// Param is a named, trainable (or buffer) tensor attached to a layer.
// Names are stable across model reconstructions at different widths, which
// is what lets AdaptiveFL slice and aggregate heterogeneous submodels.
type Param struct {
	Name string
	Val  *tensor.Tensor
	Grad *tensor.Tensor
	// Buffer marks non-trainable state (e.g. BatchNorm running statistics):
	// it is carried in state dicts and aggregated across clients, but the
	// optimizer never touches it.
	Buffer bool
}

func newParam(name string, val *tensor.Tensor) *Param {
	return &Param{Name: name, Val: val, Grad: tensor.New(val.Shape...)}
}

func newBuffer(name string, val *tensor.Tensor) *Param {
	return &Param{Name: name, Val: val, Buffer: true}
}

// Layer is a differentiable module. Forward consumes a batch and returns
// the output batch; Backward consumes dLoss/dOutput and returns
// dLoss/dInput, accumulating parameter gradients along the way.
type Layer interface {
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	Backward(grad *tensor.Tensor) *tensor.Tensor
	Params() []*Param
}

// Sequential chains layers. It implements Layer.
type Sequential struct {
	Layers []Layer
}

// NewSequential builds a Sequential from the given layers.
func NewSequential(layers ...Layer) *Sequential { return &Sequential{Layers: layers} }

// Append adds more layers to the end of the chain.
func (s *Sequential) Append(layers ...Layer) { s.Layers = append(s.Layers, layers...) }

// Forward runs the layers in order.
func (s *Sequential) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, l := range s.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward runs the layers in reverse order.
func (s *Sequential) Backward(grad *tensor.Tensor) *tensor.Tensor {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		grad = s.Layers[i].Backward(grad)
	}
	return grad
}

// Params returns the concatenated parameters of all layers.
func (s *Sequential) Params() []*Param {
	var ps []*Param
	for _, l := range s.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// State is a named snapshot of parameter values — the wire format FL
// exchanges between server and clients.
type State map[string]*tensor.Tensor

// StateDict deep-copies every parameter (and buffer) of l into a State.
func StateDict(l Layer) State {
	st := make(State)
	for _, p := range l.Params() {
		if _, dup := st[p.Name]; dup {
			panic(fmt.Sprintf("nn: duplicate parameter name %q", p.Name))
		}
		st[p.Name] = p.Val.Clone()
	}
	return st
}

// LoadState copies values from st into l's parameters by name. Every
// parameter of l must be present with an identical shape; extra entries in
// st are ignored (they belong to larger variants of the model).
func LoadState(l Layer, st State) error {
	for _, p := range l.Params() {
		v, ok := st[p.Name]
		if !ok {
			return fmt.Errorf("nn: state missing parameter %q", p.Name)
		}
		if !tensor.SameShape(v, p.Val) {
			return fmt.Errorf("nn: parameter %q shape %v != model shape %v", p.Name, v.Shape, p.Val.Shape)
		}
		copy(p.Val.Data, v.Data)
	}
	return nil
}

// Clone deep-copies a State.
func (st State) Clone() State {
	c := make(State, len(st))
	for k, v := range st {
		c[k] = v.Clone()
	}
	return c
}

// Names returns the sorted parameter names in st.
func (st State) Names() []string {
	names := make([]string, 0, len(st))
	for k := range st {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// NumParams returns the total element count across all tensors in st.
func (st State) NumParams() int {
	n := 0
	for _, v := range st {
		n += v.Numel()
	}
	return n
}

// ZeroGrads clears the gradient of every trainable parameter of l.
func ZeroGrads(l Layer) {
	ZeroGradParams(l.Params())
}

// ZeroGradParams clears the gradients of a pre-collected parameter slice,
// for hot loops that hoist Params() out of the per-batch path.
func ZeroGradParams(params []*Param) {
	for _, p := range params {
		if !p.Buffer {
			p.Grad.Zero()
		}
	}
}
