package nn

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"adaptivefl/internal/tensor"
)

// naiveConv2D is the direct 7-loop reference convolution the batched
// im2col+GEMM path is checked against.
func naiveConv2D(x, weight *tensor.Tensor, bias []float64, stride, pad int) *tensor.Tensor {
	n, inC, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	outC, k := weight.Shape[0], weight.Shape[2]
	oh := tensor.ConvOutSize(h, k, stride, pad)
	ow := tensor.ConvOutSize(w, k, stride, pad)
	out := tensor.New(n, outC, oh, ow)
	for s := 0; s < n; s++ {
		for o := 0; o < outC; o++ {
			for oi := 0; oi < oh; oi++ {
				for oj := 0; oj < ow; oj++ {
					acc := 0.0
					if bias != nil {
						acc = bias[o]
					}
					for ci := 0; ci < inC; ci++ {
						for ki := 0; ki < k; ki++ {
							ii := oi*stride - pad + ki
							if ii < 0 || ii >= h {
								continue
							}
							for kj := 0; kj < k; kj++ {
								jj := oj*stride - pad + kj
								if jj < 0 || jj >= w {
									continue
								}
								acc += x.At(s, ci, ii, jj) * weight.At(o, ci, ki, kj)
							}
						}
					}
					out.Set(acc, s, o, oi, oj)
				}
			}
		}
	}
	return out
}

// naiveDepthwise is the per-channel direct reference for DepthwiseConv2D.
func naiveDepthwise(x, weight *tensor.Tensor, bias []float64, stride, pad int) *tensor.Tensor {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	k := weight.Shape[2]
	oh := tensor.ConvOutSize(h, k, stride, pad)
	ow := tensor.ConvOutSize(w, k, stride, pad)
	out := tensor.New(n, c, oh, ow)
	for s := 0; s < n; s++ {
		for ch := 0; ch < c; ch++ {
			for oi := 0; oi < oh; oi++ {
				for oj := 0; oj < ow; oj++ {
					acc := 0.0
					if bias != nil {
						acc = bias[ch]
					}
					for ki := 0; ki < k; ki++ {
						ii := oi*stride - pad + ki
						if ii < 0 || ii >= h {
							continue
						}
						for kj := 0; kj < k; kj++ {
							jj := oj*stride - pad + kj
							if jj < 0 || jj >= w {
								continue
							}
							acc += x.At(s, ch, ii, jj) * weight.At(ch, 0, ki, kj)
						}
					}
					out.Set(acc, s, ch, oi, oj)
				}
			}
		}
	}
	return out
}

// TestConv2DBatchedMatchesNaive checks the batched im2col+GEMM forward
// against the direct convolution to 1e-9, in both train and eval mode.
func TestConv2DBatchedMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, cfg := range []struct {
		name              string
		n, inC, outC, k   int
		stride, pad, h, w int
		bias              bool
	}{
		{"3x3-pad1-bias", 5, 3, 8, 3, 1, 1, 9, 9, true},
		{"3x3-stride2", 4, 2, 5, 3, 2, 1, 8, 10, false},
		{"1x1", 3, 4, 6, 1, 1, 0, 7, 5, true},
		{"5x5-pad2", 2, 2, 3, 5, 1, 2, 6, 6, false},
		{"batch1", 1, 3, 4, 3, 1, 1, 8, 8, true},
	} {
		conv := NewConv2D(rng, "c", cfg.inC, cfg.outC, cfg.k, cfg.stride, cfg.pad, cfg.bias)
		x := tensor.Randn(rng, 1, cfg.n, cfg.inC, cfg.h, cfg.w)
		var bias []float64
		if cfg.bias {
			bias = conv.bias.Val.Data
		}
		want := naiveConv2D(x, conv.weight.Val, bias, cfg.stride, cfg.pad)
		for _, train := range []bool{true, false} {
			got := conv.Forward(x, train)
			if !tensor.SameShape(got, want) {
				t.Fatalf("%s train=%v: shape %v, want %v", cfg.name, train, got.Shape, want.Shape)
			}
			for i := range got.Data {
				if math.Abs(got.Data[i]-want.Data[i]) > 1e-9 {
					t.Fatalf("%s train=%v: mismatch at %d: %v vs %v",
						cfg.name, train, i, got.Data[i], want.Data[i])
				}
			}
		}
	}
}

// TestDepthwiseMatchesNaive checks the tap-vectorized depthwise kernel
// against the direct reference to 1e-9.
func TestDepthwiseMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, cfg := range []struct {
		name              string
		n, c, k           int
		stride, pad, h, w int
		bias              bool
	}{
		{"3x3-pad1", 4, 3, 3, 1, 1, 7, 9, true},
		{"3x3-stride2", 3, 4, 3, 2, 1, 8, 8, false},
		{"5x5-pad2", 2, 2, 5, 1, 2, 6, 6, true},
	} {
		d := NewDepthwiseConv2D(rng, "d", cfg.c, cfg.k, cfg.stride, cfg.pad, cfg.bias)
		x := tensor.Randn(rng, 1, cfg.n, cfg.c, cfg.h, cfg.w)
		var bias []float64
		if cfg.bias {
			bias = d.bias.Val.Data
		}
		want := naiveDepthwise(x, d.weight.Val, bias, cfg.stride, cfg.pad)
		got := d.Forward(x, true)
		if !tensor.SameShape(got, want) {
			t.Fatalf("%s: shape %v, want %v", cfg.name, got.Shape, want.Shape)
		}
		for i := range got.Data {
			if math.Abs(got.Data[i]-want.Data[i]) > 1e-9 {
				t.Fatalf("%s: mismatch at %d: %v vs %v", cfg.name, i, got.Data[i], want.Data[i])
			}
		}
	}
}

// TestConvEvalReleasesCache pins the memory contract: an eval-mode forward
// must not retain the input or the im2col buffer, and a train-mode forward
// must (Backward needs them).
func TestConvEvalReleasesCache(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	conv := NewConv2D(rng, "c", 2, 3, 3, 1, 1, false)
	x := tensor.Randn(rng, 1, 2, 2, 6, 6)

	conv.Forward(x, true)
	if conv.in == nil || conv.cols == nil {
		t.Fatal("train forward must retain the backward cache")
	}
	conv.Forward(x, false)
	if conv.in != nil || conv.cols != nil {
		t.Fatal("eval forward must release the backward cache")
	}

	dw := NewDepthwiseConv2D(rng, "d", 2, 3, 1, 1, false)
	dw.Forward(x, true)
	if dw.in == nil {
		t.Fatal("train forward must retain the depthwise cache")
	}
	dw.Forward(x, false)
	if dw.in != nil {
		t.Fatal("eval forward must release the depthwise cache")
	}
}

// TestConvEvalScratchReuse: repeated eval-mode forwards must not grow a
// fresh column matrix per call — the size-keyed scratch pool hands the
// same slab back, so steady-state inference allocates only the output.
func TestConvEvalScratchReuse(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation inflates per-call heap bytes past the threshold")
	}
	rng := rand.New(rand.NewSource(46))
	conv := NewConv2D(rng, "c", 4, 8, 3, 1, 1, false)
	x := tensor.Randn(rng, 1, 2, 4, 8, 8)
	want := conv.Forward(x, false)
	// Warm the pool, then measure steady-state allocated bytes. The column
	// matrix (4·3·3 × 2·8·8 = 4608 floats ≈ 37 KB) dwarfs the 8 KB output
	// tensor, so reuse shows up as a large drop in bytes per call.
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	const calls = 50
	for i := 0; i < calls; i++ {
		conv.Forward(x, false)
	}
	runtime.ReadMemStats(&m1)
	perCall := (m1.TotalAlloc - m0.TotalAlloc) / calls
	// The output tensor plus headers is ~9 KB; without the pool the column
	// matrix and GEMM buffer add another ~38 KB every call.
	if perCall > 20000 {
		t.Fatalf("eval forward allocates %d bytes per call; scratch pool not engaged", perCall)
	}
	got := conv.Forward(x, false)
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatal("scratch reuse changed the forward result")
		}
	}
}

// TestConvForwardParallelBitwise: the per-sample forward fan-out must be
// bitwise identical to the serial loop, in both train and eval mode —
// each output element is computed by exactly one fixed code path, so the
// worker count may never show up in the numbers.
func TestConvForwardParallelBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	conv := NewConv2D(rng, "c", 3, 5, 3, 1, 1, true)
	x := tensor.Randn(rng, 1, 6, 3, 9, 9)
	defer tensor.SetParallelism(tensor.SetParallelism(1))
	for _, train := range []bool{true, false} {
		tensor.SetParallelism(1)
		want := conv.Forward(x, train)
		tensor.SetParallelism(4)
		got := conv.Forward(x, train)
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("train=%v: parallel forward differs at %d", train, i)
			}
		}
	}
}

// TestConvBackwardAfterEvalPanics documents that Backward requires a
// train-mode Forward.
func TestConvBackwardAfterEvalPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	conv := NewConv2D(rng, "c", 1, 2, 3, 1, 1, false)
	x := tensor.Randn(rng, 1, 1, 1, 5, 5)
	y := conv.Forward(x, false)
	defer func() {
		if recover() == nil {
			t.Fatal("Backward after eval forward must panic")
		}
	}()
	conv.Backward(y)
}

// TestConv2DBatchMatchesPerSample checks that one batched forward equals
// running the samples through one at a time — the batching must be purely
// an execution-layout change.
func TestConv2DBatchMatchesPerSample(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	conv := NewConv2D(rng, "c", 3, 4, 3, 1, 1, true)
	const n = 6
	x := tensor.Randn(rng, 1, n, 3, 8, 8)
	batched := conv.Forward(x, true)
	per := len(batched.Data) / n
	single := len(x.Data) / n
	for s := 0; s < n; s++ {
		xs := tensor.FromSlice(x.Data[s*single:(s+1)*single], 1, 3, 8, 8)
		ys := conv.Forward(xs, false)
		for i := range ys.Data {
			if math.Abs(ys.Data[i]-batched.Data[s*per+i]) > 1e-9 {
				t.Fatalf("sample %d diverges from batched forward at %d", s, i)
			}
		}
	}
}
