//go:build !race

package nn

// raceEnabled reports whether this test binary was built with -race.
const raceEnabled = false
