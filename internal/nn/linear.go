package nn

import (
	"fmt"
	"math"
	"math/rand"

	"adaptivefl/internal/tensor"
)

// Linear is a fully connected layer: y = x·Wᵀ + b with W of shape
// [Out, In] and batches of shape [N, In].
type Linear struct {
	In, Out int
	UseBias bool

	weight, bias *Param
	in           *tensor.Tensor
}

// NewLinear builds a dense layer with He-initialised weights.
func NewLinear(rng *rand.Rand, name string, in, out int, bias bool) *Linear {
	std := math.Sqrt(2.0 / float64(in))
	l := &Linear{In: in, Out: out, UseBias: bias}
	l.weight = newParam(name+".weight", tensor.Randn(rng, std, out, in))
	if bias {
		l.bias = newParam(name+".bias", tensor.New(out))
	}
	return l
}

// Forward computes y = x·Wᵀ + b.
func (l *Linear) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Shape[1] != l.In {
		panic(fmt.Sprintf("nn: linear %s expects %d features, got %d", l.weight.Name, l.In, x.Shape[1]))
	}
	l.in = x
	n := x.Shape[0]
	y := tensor.New(n, l.Out)
	tensor.Gemm(false, true, 1, x, l.weight.Val, 0, y)
	if l.UseBias {
		for s := 0; s < n; s++ {
			row := y.Data[s*l.Out : (s+1)*l.Out]
			for j := range row {
				row[j] += l.bias.Val.Data[j]
			}
		}
	}
	return y
}

// Backward accumulates dW = dYᵀ·X, db = Σ dY, and returns dX = dY·W.
func (l *Linear) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n := grad.Shape[0]
	tensor.Gemm(true, false, 1, grad, l.in, 1, l.weight.Grad)
	if l.UseBias {
		for s := 0; s < n; s++ {
			row := grad.Data[s*l.Out : (s+1)*l.Out]
			for j := range row {
				l.bias.Grad.Data[j] += row[j]
			}
		}
	}
	dx := tensor.New(n, l.In)
	tensor.Gemm(false, false, 1, grad, l.weight.Val, 0, dx)
	return dx
}

// Params returns the weight (and bias) parameters.
func (l *Linear) Params() []*Param {
	if l.UseBias {
		return []*Param{l.weight, l.bias}
	}
	return []*Param{l.weight}
}

// Flatten reshapes [N, C, H, W] batches into [N, C*H*W]. Because tensors
// are row-major NCHW, the flattened features are channel-major, so a
// channel-prefix of the conv output maps to a contiguous feature prefix —
// the property AdaptiveFL's width pruning relies on at the conv→FC seam.
type Flatten struct {
	inShape []int
}

// NewFlatten returns a Flatten layer.
func NewFlatten() *Flatten { return &Flatten{} }

// Forward flattens all trailing dimensions.
func (f *Flatten) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	f.inShape = append(f.inShape[:0], x.Shape...)
	return x.Reshape(x.Shape[0], -1)
}

// Backward restores the cached input shape.
func (f *Flatten) Backward(grad *tensor.Tensor) *tensor.Tensor {
	return grad.Reshape(f.inShape...)
}

// Params returns nil; Flatten has no parameters.
func (f *Flatten) Params() []*Param { return nil }
