package nn

import (
	"math"

	"adaptivefl/internal/tensor"
)

// Softmax writes row-wise softmax of logits [N,K] into a new tensor.
func Softmax(logits *tensor.Tensor) *tensor.Tensor {
	n, k := logits.Shape[0], logits.Shape[1]
	out := tensor.New(n, k)
	for s := 0; s < n; s++ {
		row := logits.Data[s*k : (s+1)*k]
		max := math.Inf(-1)
		for _, v := range row {
			if v > max {
				max = v
			}
		}
		sum := 0.0
		o := out.Data[s*k : (s+1)*k]
		for i, v := range row {
			e := math.Exp(v - max)
			o[i] = e
			sum += e
		}
		for i := range o {
			o[i] /= sum
		}
	}
	return out
}

// CrossEntropy computes mean softmax cross-entropy of logits [N,K] against
// integer labels, returning the loss and dLoss/dLogits (already divided by
// the batch size, ready to feed Backward).
func CrossEntropy(logits *tensor.Tensor, labels []int) (float64, *tensor.Tensor) {
	n, k := logits.Shape[0], logits.Shape[1]
	probs := Softmax(logits)
	grad := probs.Clone()
	loss := 0.0
	invN := 1 / float64(n)
	for s := 0; s < n; s++ {
		p := probs.Data[s*k+labels[s]]
		loss -= math.Log(math.Max(p, 1e-12))
		grad.Data[s*k+labels[s]] -= 1
	}
	grad.Scale(invN)
	return loss * invN, grad
}

// DistillKL computes T²·KL(softmax(teacher/T) ‖ softmax(student/T)) — the
// self-distillation loss ScaleFL uses between exits — and its gradient
// with respect to the student logits (mean over the batch). The teacher is
// treated as a constant.
func DistillKL(student, teacher *tensor.Tensor, temp float64) (float64, *tensor.Tensor) {
	n, k := student.Shape[0], student.Shape[1]
	sScaled := student.Clone()
	sScaled.Scale(1 / temp)
	tScaled := teacher.Clone()
	tScaled.Scale(1 / temp)
	ps := Softmax(sScaled)
	pt := Softmax(tScaled)
	grad := tensor.New(n, k)
	loss := 0.0
	invN := 1 / float64(n)
	for s := 0; s < n; s++ {
		for i := 0; i < k; i++ {
			q := pt.Data[s*k+i]
			p := ps.Data[s*k+i]
			if q > 0 {
				loss += q * math.Log(q/math.Max(p, 1e-12))
			}
			// d/d(student logit) of T²·KL = T · (p - q); the T² and the
			// 1/T from the chain rule leave a single factor of T.
			grad.Data[s*k+i] = temp * (p - q) * invN
		}
	}
	return loss * temp * temp * invN, grad
}

// Accuracy returns the fraction of rows of logits whose argmax equals the
// label.
func Accuracy(logits *tensor.Tensor, labels []int) float64 {
	n, k := logits.Shape[0], logits.Shape[1]
	if n == 0 {
		return 0
	}
	correct := 0
	for s := 0; s < n; s++ {
		row := logits.Data[s*k : (s+1)*k]
		best, bi := math.Inf(-1), 0
		for i, v := range row {
			if v > best {
				best, bi = v, i
			}
		}
		if bi == labels[s] {
			correct++
		}
	}
	return float64(correct) / float64(n)
}
