//go:build race

package nn

// raceEnabled reports that this test binary was built with -race, whose
// instrumentation inflates heap accounting and invalidates allocation
// thresholds.
const raceEnabled = true
