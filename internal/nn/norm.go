package nn

import (
	"fmt"
	"math"

	"adaptivefl/internal/tensor"
)

// BatchNorm2D normalises each channel over (N, H, W) with learnable scale
// and shift. Running statistics are exposed as Buffer params so that FL
// aggregation can average them alongside the weights (width pruning slices
// them like any other channel-indexed tensor).
type BatchNorm2D struct {
	C        int
	Eps      float64
	Momentum float64

	gamma, beta             *Param
	runningMean, runningVar *Param

	// forward cache
	in     *tensor.Tensor
	xhat   *tensor.Tensor
	invStd []float64
}

// NewBatchNorm2D builds a batch-norm layer with gamma=1, beta=0.
func NewBatchNorm2D(name string, c int) *BatchNorm2D {
	b := &BatchNorm2D{C: c, Eps: 1e-5, Momentum: 0.1}
	b.gamma = newParam(name+".gamma", tensor.Full(1, c))
	b.beta = newParam(name+".beta", tensor.New(c))
	b.runningMean = newBuffer(name+".running_mean", tensor.New(c))
	b.runningVar = newBuffer(name+".running_var", tensor.Full(1, c))
	return b
}

// Forward normalises with batch statistics in training mode and running
// statistics in evaluation mode.
func (b *BatchNorm2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	if c != b.C {
		panic(fmt.Sprintf("nn: batchnorm %s expects %d channels, got %d", b.gamma.Name, b.C, c))
	}
	out := tensor.New(n, c, h, w)
	spatial := h * w
	m := float64(n * spatial)

	if train {
		b.in = x
		// Reuse the normalised-activation cache across steps (and across
		// the dispatches of an arena-recycled model): every element is
		// overwritten below before Backward reads it.
		if b.xhat == nil || !tensor.SameShape(b.xhat, x) {
			b.xhat = tensor.New(n, c, h, w)
		}
		if cap(b.invStd) < c {
			b.invStd = make([]float64, c)
		}
		b.invStd = b.invStd[:c]
		for ch := 0; ch < c; ch++ {
			mean, sq := 0.0, 0.0
			for s := 0; s < n; s++ {
				base := (s*c + ch) * spatial
				for i := 0; i < spatial; i++ {
					v := x.Data[base+i]
					mean += v
					sq += v * v
				}
			}
			mean /= m
			variance := sq/m - mean*mean
			if variance < 0 {
				variance = 0
			}
			inv := 1 / math.Sqrt(variance+b.Eps)
			b.invStd[ch] = inv
			g, bt := b.gamma.Val.Data[ch], b.beta.Val.Data[ch]
			for s := 0; s < n; s++ {
				base := (s*c + ch) * spatial
				for i := 0; i < spatial; i++ {
					xh := (x.Data[base+i] - mean) * inv
					b.xhat.Data[base+i] = xh
					out.Data[base+i] = g*xh + bt
				}
			}
			b.runningMean.Val.Data[ch] = (1-b.Momentum)*b.runningMean.Val.Data[ch] + b.Momentum*mean
			b.runningVar.Val.Data[ch] = (1-b.Momentum)*b.runningVar.Val.Data[ch] + b.Momentum*variance
		}
		return out
	}

	for ch := 0; ch < c; ch++ {
		inv := 1 / math.Sqrt(b.runningVar.Val.Data[ch]+b.Eps)
		mean := b.runningMean.Val.Data[ch]
		g, bt := b.gamma.Val.Data[ch], b.beta.Val.Data[ch]
		for s := 0; s < n; s++ {
			base := (s*c + ch) * spatial
			for i := 0; i < spatial; i++ {
				out.Data[base+i] = g*(x.Data[base+i]-mean)*inv + bt
			}
		}
	}
	return out
}

// Backward implements the standard batch-norm gradient.
func (b *BatchNorm2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n, c, h, w := grad.Shape[0], grad.Shape[1], grad.Shape[2], grad.Shape[3]
	spatial := h * w
	m := float64(n * spatial)
	dx := tensor.New(n, c, h, w)
	for ch := 0; ch < c; ch++ {
		g := b.gamma.Val.Data[ch]
		inv := b.invStd[ch]
		sumDy, sumDyXhat := 0.0, 0.0
		for s := 0; s < n; s++ {
			base := (s*c + ch) * spatial
			for i := 0; i < spatial; i++ {
				dy := grad.Data[base+i]
				sumDy += dy
				sumDyXhat += dy * b.xhat.Data[base+i]
			}
		}
		b.beta.Grad.Data[ch] += sumDy
		b.gamma.Grad.Data[ch] += sumDyXhat
		k1 := g * inv / m
		for s := 0; s < n; s++ {
			base := (s*c + ch) * spatial
			for i := 0; i < spatial; i++ {
				dy := grad.Data[base+i]
				xh := b.xhat.Data[base+i]
				dx.Data[base+i] = k1 * (m*dy - sumDy - xh*sumDyXhat)
			}
		}
	}
	return dx
}

// Params returns gamma, beta and the running-statistic buffers.
func (b *BatchNorm2D) Params() []*Param {
	return []*Param{b.gamma, b.beta, b.runningMean, b.runningVar}
}
