package obs

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestHistogramBoundaryEdges pins the le semantics at the exact bucket
// bounds: a sample equal to an upper bound lands in that bound's bucket
// (Prometheus cumulative-le convention), and anything above the last bound
// lands in the implicit +Inf bucket.
func TestHistogramBoundaryEdges(t *testing.T) {
	h := NewHistogram(1, 10, 100)
	cases := []struct {
		v      float64
		bucket int
	}{
		{0, 0},          // below every bound
		{1, 0},          // exactly on the first bound → le="1"
		{1.0000001, 1},  // just above it
		{10, 1},         // exactly on the middle bound
		{100, 2},        // exactly on the last finite bound
		{100.000001, 3}, // above it → +Inf
		{1e12, 3},
	}
	for i, c := range cases {
		before := h.counts[c.bucket].Load()
		h.Observe(c.v)
		if got := h.counts[c.bucket].Load(); got != before+1 {
			t.Fatalf("case %d: Observe(%v) did not land in bucket %d", i, c.v, c.bucket)
		}
	}
	if h.Count() != int64(len(cases)) {
		t.Fatalf("count = %d, want %d", h.Count(), len(cases))
	}

	// The exposition's +Inf bucket must equal the total count, and the
	// cumulative bucket for le="1" must include the boundary sample.
	m := NewMetrics()
	for _, c := range cases {
		m.HTTPRequest("edge", c.v, 0, 0)
	}
	var buf bytes.Buffer
	if err := m.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	infLine := fmt.Sprintf(`fl_http_request_seconds_bucket{route="edge",le="+Inf"} %d`, len(cases))
	if !strings.Contains(text, infLine) {
		t.Fatalf("exposition missing %q:\n%s", infLine, text)
	}
}

// TestHistogramConcurrentObserve hammers one histogram from many
// goroutines; under -race this doubles as the lock-free Observe's data-race
// check, and the totals pin that no sample or sum update is lost.
func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram(1, 2, 4, 8)
	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(float64(w%5) + 0.5)
			}
		}(w)
	}
	wg.Wait()
	if got, want := h.Count(), int64(workers*perWorker); got != want {
		t.Fatalf("count = %d, want %d", got, want)
	}
	var wantSum float64
	for w := 0; w < workers; w++ {
		wantSum += perWorker * (float64(w%5) + 0.5)
	}
	if got := h.Sum(); got != wantSum {
		t.Fatalf("sum = %g, want %g (CAS sum lost updates)", got, wantSum)
	}
	var bucketTotal int64
	for i := range h.counts {
		bucketTotal += h.counts[i].Load()
	}
	if bucketTotal != h.Count() {
		t.Fatalf("bucket counts sum to %d, count is %d", bucketTotal, h.Count())
	}
}
