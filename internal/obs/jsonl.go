package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
)

// jsonlBufSize bounds the writer's only in-memory state: one bufio flush
// window. Span volume never accumulates — a million-flight run holds a
// million spans on disk and 64 KiB in memory.
const jsonlBufSize = 64 << 10

// JSONLWriter streams spans to a writer as one JSON object per line. It
// is bounded-memory by construction (spans are encoded and flushed
// through a fixed-size buffer, never retained), safe for concurrent use,
// and byte-deterministic: encoding/json emits struct fields in
// declaration order, and engine spans arrive in event order, so two
// same-seed runs produce identical trace files.
type JSONLWriter struct {
	mu      sync.Mutex
	bw      *bufio.Writer
	enc     *json.Encoder
	c       io.Closer
	n       atomic.Int64
	dropped atomic.Int64
	err     error
}

// NewJSONLWriter wraps w. If w is also an io.Closer, Close closes it.
func NewJSONLWriter(w io.Writer) *JSONLWriter {
	bw := bufio.NewWriterSize(w, jsonlBufSize)
	j := &JSONLWriter{bw: bw, enc: json.NewEncoder(bw)}
	if c, ok := w.(io.Closer); ok {
		j.c = c
	}
	return j
}

// Span writes one span line. Write errors are sticky: the first is kept
// and later spans are dropped and counted (a failing trace sink must not
// stall or perturb the run — the SpanSink interface has no error return
// by design). The loss is never silent: Err and Dropped expose it mid-run
// and Close returns the original error, so callers that care fail loudly
// at shutdown.
func (j *JSONLWriter) Span(s Span) {
	j.mu.Lock()
	if j.err == nil {
		j.err = j.enc.Encode(s)
	}
	dropped := j.err != nil
	j.mu.Unlock()
	j.n.Add(1)
	if dropped {
		j.dropped.Add(1)
	}
}

// Record writes one arbitrary JSON line (e.g. a WallRecord) through the
// same buffered stream, returning any write error immediately as well as
// keeping it sticky. Lines written via Record are not counted by Count.
func (j *JSONLWriter) Record(v any) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	j.err = j.enc.Encode(v)
	return j.err
}

// Count returns the number of spans received (including any dropped
// after a write error).
func (j *JSONLWriter) Count() int64 { return j.n.Load() }

// Dropped returns how many spans were discarded because an earlier write
// failed. Nonzero means the trace on disk is incomplete.
func (j *JSONLWriter) Dropped() int64 { return j.dropped.Load() }

// Err returns the sticky write error, or nil if every line so far was
// accepted by the underlying writer.
func (j *JSONLWriter) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Close flushes and closes the underlying writer, returning the first
// error seen (an earlier write error takes precedence over flush/close
// errors, since it is the root cause of any dropped spans).
func (j *JSONLWriter) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.bw.Flush(); j.err == nil {
		j.err = err
	}
	if j.c != nil {
		if err := j.c.Close(); j.err == nil {
			j.err = err
		}
	}
	return j.err
}
