package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
)

// jsonlBufSize bounds the writer's only in-memory state: one bufio flush
// window. Span volume never accumulates — a million-flight run holds a
// million spans on disk and 64 KiB in memory.
const jsonlBufSize = 64 << 10

// JSONLWriter streams spans to a writer as one JSON object per line. It
// is bounded-memory by construction (spans are encoded and flushed
// through a fixed-size buffer, never retained), safe for concurrent use,
// and byte-deterministic: encoding/json emits struct fields in
// declaration order, and engine spans arrive in event order, so two
// same-seed runs produce identical trace files.
type JSONLWriter struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	enc *json.Encoder
	c   io.Closer
	n   atomic.Int64
	err error
}

// NewJSONLWriter wraps w. If w is also an io.Closer, Close closes it.
func NewJSONLWriter(w io.Writer) *JSONLWriter {
	bw := bufio.NewWriterSize(w, jsonlBufSize)
	j := &JSONLWriter{bw: bw, enc: json.NewEncoder(bw)}
	if c, ok := w.(io.Closer); ok {
		j.c = c
	}
	return j
}

// Span writes one span line. Write errors are sticky: the first is kept
// and later spans are dropped (a failing trace sink must not stall or
// perturb the run).
func (j *JSONLWriter) Span(s Span) {
	j.mu.Lock()
	if j.err == nil {
		j.err = j.enc.Encode(s)
	}
	j.mu.Unlock()
	j.n.Add(1)
}

// Count returns the number of spans received (including any dropped
// after a write error).
func (j *JSONLWriter) Count() int64 { return j.n.Load() }

// Close flushes and closes the underlying writer, returning the first
// error seen.
func (j *JSONLWriter) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.bw.Flush(); j.err == nil {
		j.err = err
	}
	if j.c != nil {
		if err := j.c.Close(); j.err == nil {
			j.err = err
		}
	}
	return j.err
}
