package obs

import (
	"fmt"
	"io"
	"sync"
)

// ProgressSink renders a live one-line-per-commit view of a run from the
// span stream: virtual clock, round, merge/outcome counts and cumulative
// traffic. Point it at stderr so byte-diffed stdout summaries stay
// untouched.
type ProgressSink struct {
	mu      sync.Mutex
	w       io.Writer
	flights int64
	down    int64
	up      int64
}

// NewProgressSink writes progress lines to w.
func NewProgressSink(w io.Writer) *ProgressSink { return &ProgressSink{w: w} }

// Span implements SpanSink: flight spans accumulate, commit-level spans
// each print one line.
func (p *ProgressSink) Span(s Span) {
	p.mu.Lock()
	defer p.mu.Unlock()
	switch s.Kind {
	case KindFlight:
		p.flights++
		p.down += s.DownBytes
		up := s.UpBytes
		if up == 0 {
			up = s.UpBytesEst
		}
		p.up += up
	case KindCommit:
		fmt.Fprintf(p.w, "[t=%9.1fs] commit r=%d merged=%d failed=%d late=%d reused=%d dropped=%d flights=%d down=%s up=%s\n",
			s.Time, s.Round, s.Merged, s.Failed, s.Late, s.Reused, s.Dropped,
			p.flights, fmtBytes(p.down), fmtBytes(p.up))
	case KindEdgeCommit:
		fmt.Fprintf(p.w, "[t=%9.1fs] edge=%d commit r=%d merged=%d flights=%d\n",
			s.Time, s.Edge, s.Round, s.Merged, p.flights)
	case KindGlobalMerge:
		fmt.Fprintf(p.w, "[t=%9.1fs] global r=%d merged=%d flights=%d down=%s up=%s\n",
			s.Time, s.Round, s.Merged, p.flights, fmtBytes(p.down), fmtBytes(p.up))
	}
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
