package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable int64.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket cumulative histogram. Bucket bounds are
// chosen at construction and never change, so scrapes across a run line
// up. Observe is lock-free (atomic bucket counts, CAS float sum).
type Histogram struct {
	bounds []float64 // upper bounds; +Inf bucket is implicit
	counts []atomic.Int64
	sum    atomic.Uint64 // float64 bits
	count  atomic.Int64
}

// NewHistogram builds a histogram over the given ascending upper bounds.
func NewHistogram(bounds ...float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of samples.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all samples.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// counterVec is a label → Counter family; labels are created on first use.
type counterVec struct {
	mu sync.Mutex
	m  map[string]*Counter
}

func newCounterVec() *counterVec { return &counterVec{m: map[string]*Counter{}} }

func (v *counterVec) with(label string) *Counter {
	v.mu.Lock()
	c := v.m[label]
	if c == nil {
		c = &Counter{}
		v.m[label] = c
	}
	v.mu.Unlock()
	return c
}

func (v *counterVec) sortedLabels() []string {
	v.mu.Lock()
	labels := make([]string, 0, len(v.m))
	for k := range v.m {
		labels = append(labels, k)
	}
	v.mu.Unlock()
	sort.Strings(labels)
	return labels
}

// histogramVec is a label → Histogram family sharing one bucket layout.
type histogramVec struct {
	mu     sync.Mutex
	bounds []float64
	m      map[string]*Histogram
}

func newHistogramVec(bounds ...float64) *histogramVec {
	return &histogramVec{bounds: bounds, m: map[string]*Histogram{}}
}

func (v *histogramVec) with(label string) *Histogram {
	v.mu.Lock()
	h := v.m[label]
	if h == nil {
		h = NewHistogram(v.bounds...)
		v.m[label] = h
	}
	v.mu.Unlock()
	return h
}

func (v *histogramVec) sortedLabels() []string {
	v.mu.Lock()
	labels := make([]string, 0, len(v.m))
	for k := range v.m {
		labels = append(labels, k)
	}
	v.mu.Unlock()
	sort.Strings(labels)
	return labels
}

// Fixed bucket layouts. Virtual-time buckets span one straggler flight to
// a simulated hour; wall-clock buckets span a fast codec pass to a slow
// HTTP round trip; staleness follows the powers the discount 1/(1+s)^α
// cares about.
var (
	simSecondsBuckets  = []float64{15, 30, 60, 120, 300, 600, 1800, 3600}
	wallSecondsBuckets = []float64{0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5}
	stalenessBuckets   = []float64{0, 1, 2, 4, 8, 16, 32}
	rewardBuckets      = []float64{0.1, 0.25, 0.5, 1, 2, 4, 8}
)

// Metrics is the registry: a fixed catalogue of counters, gauges and
// histograms (documented in docs/OBS.md) fed from spans plus the
// wall-clock hooks. All fields are safe for concurrent use.
type Metrics struct {
	// Span-fed (deterministic content, scrape-time ordering).
	Flights        *counterVec // fl_flights_total{outcome=...}
	TrainSkipped   Counter     // fl_flights_train_skipped_total
	DownBytes      *counterVec // fl_down_bytes_total{path=...}
	UpBytes        Counter     // fl_up_bytes_total
	UpBytesEst     Counter     // fl_up_bytes_est_total
	Commits        *counterVec // fl_commits_total{kind=...}
	MergedUpdates  Counter     // fl_merged_updates_total
	Staleness      *Histogram  // fl_staleness
	Reward         *Histogram  // fl_reward
	FlightSimSecs  *Histogram  // fl_flight_sim_seconds
	LRUMaterialise Counter     // fl_lru_materialise_total
	LRUEvict       Counter     // fl_lru_evict_total

	// Live occupancy.
	LRULive     Gauge // fl_lru_live_clients
	ExecQueued  Gauge // fl_exec_queued
	ExecRunning Gauge // fl_exec_running

	// Wall-clock (never in spans).
	CodecSeconds  *histogramVec // fl_codec_seconds{op="<tag>/<encode|decode>"}
	CodecBytes    *counterVec   // fl_codec_bytes_total{op=...}
	HTTPSeconds   *histogramVec // fl_http_request_seconds{route=...}
	HTTPRequests  *counterVec   // fl_http_requests_total{route=...}
	HTTPReqBytes  Counter       // fl_http_request_bytes_total
	HTTPRespBytes Counter       // fl_http_response_bytes_total
}

// NewMetrics builds a registry with the fixed bucket layouts.
func NewMetrics() *Metrics {
	return &Metrics{
		Flights:       newCounterVec(),
		DownBytes:     newCounterVec(),
		Commits:       newCounterVec(),
		Staleness:     NewHistogram(stalenessBuckets...),
		Reward:        NewHistogram(rewardBuckets...),
		FlightSimSecs: NewHistogram(simSecondsBuckets...),
		CodecSeconds:  newHistogramVec(wallSecondsBuckets...),
		CodecBytes:    newCounterVec(),
		HTTPSeconds:   newHistogramVec(wallSecondsBuckets...),
		HTTPRequests:  newCounterVec(),
	}
}

// applySpan folds one span into the registry.
func (m *Metrics) applySpan(s Span) {
	switch s.Kind {
	case KindFlight:
		m.Flights.with(s.Outcome).Inc()
		if s.TrainSkipped {
			m.TrainSkipped.Inc()
		}
		path := s.DownPath
		if path == "" {
			path = DownEncodedOnce
		}
		m.DownBytes.with(path).Add(s.DownBytes)
		m.UpBytes.Add(s.UpBytes)
		m.UpBytesEst.Add(s.UpBytesEst)
		if s.Outcome == OutcomeMerged || s.Outcome == OutcomeLateReused {
			m.Staleness.Observe(float64(s.Staleness))
			m.Reward.Observe(s.Reward)
		}
		if s.End > s.Start {
			m.FlightSimSecs.Observe(s.End - s.Start)
		}
	case KindCommit, KindEdgeCommit, KindGlobalMerge, KindDownSync:
		m.Commits.with(s.Kind).Inc()
		m.MergedUpdates.Add(int64(s.Merged))
	case KindLRU:
		switch s.Op {
		case OpMaterialise:
			m.LRUMaterialise.Inc()
		case OpEvict:
			m.LRUEvict.Inc()
		}
	}
}

// CodecTiming records one wall-clock encode or decode pass. op is
// "encode" or "decode"; the series label is "<tag>/<op>".
func (m *Metrics) CodecTiming(tag, op string, bytes int, seconds float64) {
	if m == nil {
		return
	}
	label := tag + "/" + op
	m.CodecSeconds.with(label).Observe(seconds)
	m.CodecBytes.with(label).Add(int64(bytes))
}

// HTTPRequest records one served request: route (a low-cardinality path
// class like "train" or "metrics"), wall-clock latency and payload sizes.
func (m *Metrics) HTTPRequest(route string, seconds float64, reqBytes, respBytes int64) {
	if m == nil {
		return
	}
	m.HTTPSeconds.with(route).Observe(seconds)
	m.HTTPRequests.with(route).Inc()
	m.HTTPReqBytes.Add(reqBytes)
	m.HTTPRespBytes.Add(respBytes)
}

// WritePrometheus writes the registry in Prometheus text exposition
// format (version 0.0.4). Families appear in a fixed order, series within
// a family in sorted label order, so consecutive scrapes diff cleanly.
func (m *Metrics) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	writeCounterVec(bw, "fl_flights_total", "Flights finalised, by outcome.", "outcome", m.Flights)
	writeCounter(bw, "fl_flights_train_skipped_total", "Flights whose local training was lazily skipped.", &m.TrainSkipped)
	writeCounterVec(bw, "fl_down_bytes_total", "Downlink payload bytes dispatched (logical artifact size), by serving path.", "path", m.DownBytes)
	writeCounter(bw, "fl_up_bytes_total", "Uplink payload bytes received (actual).", &m.UpBytes)
	writeCounter(bw, "fl_up_bytes_est_total", "Uplink payload bytes as estimated for pricing.", &m.UpBytesEst)
	writeCounterVec(bw, "fl_commits_total", "Aggregation events, by tier/kind.", "kind", m.Commits)
	writeCounter(bw, "fl_merged_updates_total", "Client/edge updates folded into aggregations.", &m.MergedUpdates)
	writeHistogram(bw, "fl_staleness", "Aggregation distance of merged updates (versions).", "", "", m.Staleness)
	writeHistogram(bw, "fl_reward", "RL selection reward of merged updates.", "", "", m.Reward)
	writeHistogram(bw, "fl_flight_sim_seconds", "Virtual dispatch-to-arrival duration of completed flights.", "", "", m.FlightSimSecs)
	writeCounter(bw, "fl_lru_materialise_total", "Lazy-population clients materialised.", &m.LRUMaterialise)
	writeCounter(bw, "fl_lru_evict_total", "Lazy-population clients evicted.", &m.LRUEvict)
	writeGauge(bw, "fl_lru_live_clients", "Lazy-population clients currently resident.", &m.LRULive)
	writeGauge(bw, "fl_exec_queued", "Flight tasks waiting for an executor worker.", &m.ExecQueued)
	writeGauge(bw, "fl_exec_running", "Flight tasks currently executing.", &m.ExecRunning)
	writeHistogramVec(bw, "fl_codec_seconds", "Wall-clock codec pass latency, by tag/op.", "op", m.CodecSeconds)
	writeCounterVec(bw, "fl_codec_bytes_total", "Bytes through codec passes, by tag/op.", "op", m.CodecBytes)
	writeHistogramVec(bw, "fl_http_request_seconds", "Wall-clock HTTP request latency, by route.", "route", m.HTTPSeconds)
	writeCounterVec(bw, "fl_http_requests_total", "HTTP requests served, by route.", "route", m.HTTPRequests)
	writeCounter(bw, "fl_http_request_bytes_total", "HTTP request body bytes read.", &m.HTTPReqBytes)
	writeCounter(bw, "fl_http_response_bytes_total", "HTTP response body bytes written.", &m.HTTPRespBytes)
	return bw.Flush()
}

func writeHeader(w *bufio.Writer, name, help, typ string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func writeCounter(w *bufio.Writer, name, help string, c *Counter) {
	writeHeader(w, name, help, "counter")
	fmt.Fprintf(w, "%s %d\n", name, c.Value())
}

func writeGauge(w *bufio.Writer, name, help string, g *Gauge) {
	writeHeader(w, name, help, "gauge")
	fmt.Fprintf(w, "%s %d\n", name, g.Value())
}

func writeCounterVec(w *bufio.Writer, name, help, labelKey string, v *counterVec) {
	writeHeader(w, name, help, "counter")
	for _, label := range v.sortedLabels() {
		fmt.Fprintf(w, "%s{%s=%q} %d\n", name, labelKey, label, v.with(label).Value())
	}
}

func writeHistogram(w *bufio.Writer, name, help, labelKey, label string, h *Histogram) {
	if labelKey == "" {
		writeHeader(w, name, help, "histogram")
	}
	suffix := ""
	if labelKey != "" {
		suffix = fmt.Sprintf("%s=%q", labelKey, label)
	}
	cum := int64(0)
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		le := strconv.FormatFloat(b, 'g', -1, 64)
		if suffix != "" {
			fmt.Fprintf(w, "%s_bucket{%s,le=%q} %d\n", name, suffix, le, cum)
		} else {
			fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, cum)
		}
	}
	if suffix != "" {
		fmt.Fprintf(w, "%s_bucket{%s,le=\"+Inf\"} %d\n", name, suffix, h.Count())
		fmt.Fprintf(w, "%s_sum{%s} %g\n", name, suffix, h.Sum())
		fmt.Fprintf(w, "%s_count{%s} %d\n", name, suffix, h.Count())
	} else {
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count())
		fmt.Fprintf(w, "%s_sum %g\n", name, h.Sum())
		fmt.Fprintf(w, "%s_count %d\n", name, h.Count())
	}
}

func writeHistogramVec(w *bufio.Writer, name, help, labelKey string, v *histogramVec) {
	writeHeader(w, name, help, "histogram")
	for _, label := range v.sortedLabels() {
		writeHistogram(w, name, help, labelKey, label, v.with(label))
	}
}
