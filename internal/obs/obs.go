// Package obs is the observability layer: deterministic span tracing and
// a metrics registry for the federated-training engine, with Prometheus
// and JSONL exporters.
//
// The design splits what a run records into two streams with different
// guarantees:
//
//   - Spans carry *virtual-time* facts — one span per flight (dispatch →
//     download → train → upload → merge/cancel/late-reuse), per commit,
//     per hierarchy edge/global merge, per LRU materialise/evict. Every
//     field of a span is a deterministic function of the run's seed, trace
//     and cost model, and spans are emitted on the event-loop goroutine in
//     event order, so the JSONL trace of two same-seed runs is
//     byte-identical.
//   - Metrics carry *live* facts — counters, gauges and histograms fed
//     from the spans plus wall-clock timings (codec encode/decode, fednet
//     request latency) and executor/LRU occupancy. Metrics are for a
//     scrape endpoint mid-run, not for replay, and make no determinism
//     claim beyond never feeding back into the simulation.
//
// Attaching an Observer must never perturb a run: observers only read
// values the engine already computed, so the event log, ledger, RL tables
// and global weights are bit-identical with observability on or off
// (pinned by sched's TestObserverBitIdentity). A nil *Observer is the
// disabled state and is safe to call: every method nil-checks its
// receiver, and the nil path performs zero allocations (pinned by
// TestNilObserverZeroAlloc / BenchmarkNilObserverFlightPath), so the hot
// path carries no tracing cost when nothing is attached.
//
// See docs/OBS.md for the span model, the metric catalogue and example
// PromQL/jq queries over a JSONL trace.
package obs

import "sync"

// Span kinds. One flat Span struct covers every kind so emission sites
// build spans on the stack (no per-kind boxing); kinds use only the
// fields their documentation lists and leave the rest zero.
const (
	// KindFlight is one dispatch's full lifecycle: Client, Sent/Got,
	// Codec, byte counts, phase times (Start/DownEnd/TrainEnd/End),
	// Staleness, Reward and Outcome.
	KindFlight = "flight"
	// KindCommit is one engine aggregation: Round, Time and the
	// Merged/Failed/Late/Reused/Dropped outcome counts.
	KindCommit = "commit"
	// KindEdgeCommit is an edge aggregation entering backhaul transit in a
	// two-tier hierarchy: Edge, Round, Merged, Time (edge clock) and End
	// (global-tier arrival).
	KindEdgeCommit = "edge-commit"
	// KindGlobalArrive is an edge update folding into the global tier's
	// buffer after backhaul transit: Edge, Time (arrival) and Staleness
	// (global merges since the edge's anchor version).
	KindGlobalArrive = "global-arrive"
	// KindGlobalMerge is a global-tier aggregation: Round (global version),
	// Time and Merged (edge updates folded).
	KindGlobalMerge = "global-merge"
	// KindDownSync is an edge re-anchoring to a fresh global model: Edge,
	// Round (the synced version) and Time (edge clock).
	KindDownSync = "down-sync"
	// KindLRU is a lazy-population cache event: Op ("materialise" or
	// "evict") and Client. Time is unset — the population has no clock.
	KindLRU = "lru"
)

// Flight outcomes (Span.Outcome for KindFlight).
const (
	OutcomeMerged     = "merged"
	OutcomeLate       = "late"
	OutcomeLateReused = "late-reused"
	OutcomeDropped    = "dropped"
	OutcomeFailed     = "failed"
	// OutcomeRejected marks an upload that arrived but was refused —
	// undecodable or non-finite payload, or a non-positive sample weight.
	OutcomeRejected = "rejected"
	// OutcomeClipped marks a fresh merge whose update was norm-clipped by a
	// robust aggregation policy before folding in (clipped ⊆ merged).
	OutcomeClipped = "clipped"
)

// Downlink paths (Span.DownPath for KindFlight): how the dispatched
// artifact reached the client. DownBytes stays the logical artifact size
// on every path — the paths classify the serving cost, not the payload.
const (
	// DownEncodedOnce marks the first dispatch of a (snapshot, width,
	// codec) artifact: the one dispatch per cohort that pays the encode.
	DownEncodedOnce = "encoded-once"
	// DownReserved marks a dispatch served from the artifact store to a
	// client that had not yet received it — bytes cross, CPU does not.
	DownReserved = "re-served"
	// DownNotModified marks a dispatch to a client that already holds the
	// artifact (same client, same key): an ETag/If-None-Match skip where
	// neither encode CPU nor body bytes are spent.
	DownNotModified = "not-modified"
)

// LRU ops (Span.Op for KindLRU).
const (
	OpMaterialise = "materialise"
	OpEvict       = "evict"
)

// Span is one traced event. Fields are fixed-size (no slices, no maps) so
// a span builds entirely on the caller's stack; unused fields marshal away
// under omitempty. Client is -1 for spans that have no client.
type Span struct {
	Kind string `json:"kind"`
	// Time is the emitting tier's virtual clock when the span closed
	// (seconds). Zero for spans outside virtual time (KindLRU, and the
	// legacy synchronous Round path).
	Time float64 `json:"t"`
	// Start / DownEnd / TrainEnd / End are a flight's trace segments in
	// virtual seconds: dispatch cut, downlink done, local training done,
	// upload arrived (or the client dropped). End doubles as the arrival
	// time of an edge commit (KindEdgeCommit). DownEnd/TrainEnd are zero
	// when the phase never completed or the cost was priced in one piece
	// (an unplannable trainer's flight only exposes its end).
	Start    float64 `json:"start,omitempty"`
	DownEnd  float64 `json:"down_end,omitempty"`
	TrainEnd float64 `json:"train_end,omitempty"`
	End      float64 `json:"end,omitempty"`

	Client int    `json:"client"`
	Round  int    `json:"round,omitempty"`
	Edge   int    `json:"edge,omitempty"`
	Op     string `json:"op,omitempty"`

	// Flight is the dispatch's flight ID (KindFlight; IDs start at 1, so 0
	// marshals away and means "no flight"). It is the correlation key
	// across processes: fednet threads it through HTTP requests as the
	// Fednet-Flight header, so agent-side wall-clock records join back to
	// the deterministic span (fltrace join). Ver is the global-model
	// version the dispatch was cut from — the staleness anchor — letting an
	// auditor replay per-tier version counters from the stream and check
	// every span's stale field against sched.StalenessDiscount's input.
	Flight int64 `json:"flight,omitempty"`
	Ver    int   `json:"ver,omitempty"`

	// Flight payload facts: the dispatched and returned pool members (the
	// width decision), the negotiated codec, and the bytes that crossed —
	// estimated (pricing) and actual.
	Sent      string `json:"sent,omitempty"`
	Got       string `json:"got,omitempty"`
	Codec     string `json:"codec,omitempty"`
	DownBytes int64  `json:"down_bytes,omitempty"`
	// DownPath classifies how the downlink artifact was served (one of the
	// Down* constants). Empty on runs without an artifact store, which
	// metrics fold into the encoded-once series — the pre-store behaviour
	// where every dispatch paid its own encode.
	DownPath   string `json:"down_path,omitempty"`
	UpBytes    int64  `json:"up_bytes,omitempty"`
	UpBytesEst int64  `json:"up_bytes_est,omitempty"`

	// Staleness is the aggregation distance the update was merged at;
	// Reward the RL selection reward R(got, client) after the table
	// update; Outcome how the flight was finalised. TrainSkipped marks
	// lazily skipped trainings (sealed dropouts).
	Staleness    int     `json:"stale,omitempty"`
	Reward       float64 `json:"reward,omitempty"`
	Outcome      string  `json:"outcome,omitempty"`
	TrainSkipped bool    `json:"train_skipped,omitempty"`

	// Commit outcome counts (KindCommit, KindEdgeCommit, KindGlobalMerge).
	// Rejected counts refused uploads; Clipped counts norm-clipped merges
	// (a subset of Merged, not an extra class).
	Merged   int `json:"merged,omitempty"`
	Failed   int `json:"failed,omitempty"`
	Late     int `json:"late,omitempty"`
	Reused   int `json:"reused,omitempty"`
	Dropped  int `json:"dropped,omitempty"`
	Rejected int `json:"rejected,omitempty"`
	Clipped  int `json:"clipped,omitempty"`
}

// SpanSink receives completed spans. Implementations must be safe for
// concurrent use (engine spans arrive from the event loop, LRU spans from
// whichever goroutine touched the population).
type SpanSink interface {
	Span(s Span)
}

// Observer fans spans out to sinks and folds them into a metrics
// registry. The zero value and nil are both valid disabled observers; all
// methods nil-check the receiver so call sites need no guards (though
// guarding span *construction* behind Enabled keeps even the stack writes
// off the disabled hot path).
type Observer struct {
	mu      sync.Mutex
	sinks   []SpanSink
	metrics *Metrics
}

// NewObserver builds an observer feeding the given metrics registry (nil
// for spans-only) and sinks.
func NewObserver(m *Metrics, sinks ...SpanSink) *Observer {
	return &Observer{metrics: m, sinks: sinks}
}

// AddSink attaches another span sink.
func (o *Observer) AddSink(s SpanSink) {
	if o == nil || s == nil {
		return
	}
	o.mu.Lock()
	o.sinks = append(o.sinks, s)
	o.mu.Unlock()
}

// Enabled reports whether anything is attached. Emission sites use it to
// skip span construction entirely on the disabled path.
func (o *Observer) Enabled() bool { return o != nil }

// Metrics returns the observer's registry (nil when disabled or none was
// attached).
func (o *Observer) Metrics() *Metrics {
	if o == nil {
		return nil
	}
	return o.metrics
}

// Span emits one completed span: the metrics registry folds it in, then
// every sink sees it in attachment order. Safe (and free of allocation)
// on a nil observer.
func (o *Observer) Span(s Span) {
	if o == nil {
		return
	}
	if o.metrics != nil {
		o.metrics.applySpan(s)
	}
	o.mu.Lock()
	sinks := o.sinks
	o.mu.Unlock()
	for _, sink := range sinks {
		sink.Span(s)
	}
}

// ExecDepth updates the executor occupancy gauges: tasks waiting for a
// worker and tasks currently training. Deltas, not absolutes, so
// concurrent workers compose. Nil-safe, zero-alloc when disabled.
func (o *Observer) ExecDepth(queuedDelta, runningDelta int64) {
	if o == nil || o.metrics == nil {
		return
	}
	if queuedDelta != 0 {
		o.metrics.ExecQueued.Add(queuedDelta)
	}
	if runningDelta != 0 {
		o.metrics.ExecRunning.Add(runningDelta)
	}
}

// LRULive updates the lazy population's live-client gauge (materialised +
// pinned). Nil-safe, zero-alloc when disabled.
func (o *Observer) LRULive(live int64) {
	if o == nil || o.metrics == nil {
		return
	}
	o.metrics.LRULive.Set(live)
}
