// Package analyze turns a JSONL span trace into answers: per-commit
// critical paths, waste and byte breakdowns, phase/staleness histograms,
// hierarchy backhaul stats, and — via Audit — a replay that cross-checks
// the trace against the run's ledger summary. Everything streams: a
// million-flight trace passes through a fixed-size line buffer plus
// per-commit and per-client accumulators, never a whole-trace slice, and
// every report is a deterministic function of the trace bytes (same-seed
// runs produce byte-identical reports).
package analyze

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"adaptivefl/internal/core"
)

// LedgerSummary is the run-side half of the audit: the totals a run's own
// ledger accumulated, serialized by the cmds (-ledger-out) and replayed
// against by `fltrace audit`. Every total here has an independent
// counterpart derivable from the span stream alone, so the two agreeing
// means the trace is complete and the ledger conserved.
type LedgerSummary struct {
	// Policy is the scheduling policy label ("sync", "deadline-reuse",
	// ...; informational).
	Policy string `json:"policy,omitempty"`

	// Commits is the number of ledger entries (aggregations) pushed.
	Commits int `json:"commits"`
	// Dispatches counts every ledgered dispatch across all commits.
	Dispatches int `json:"dispatches"`
	// Outcome census over the ledgered dispatches. Merged counts fresh
	// merges only (late-reused ones are under LateReused); a banked
	// capacity failure counts under Failed.
	Merged       int `json:"merged"`
	Late         int `json:"late"`
	LateReused   int `json:"late_reused"`
	Dropped      int `json:"dropped"`
	Failed       int `json:"failed"`
	TrainSkipped int `json:"train_skipped"`
	// Rejected counts uploads refused at record time (undecodable or
	// non-finite payloads, non-positive sample weights); Clipped counts
	// fresh merges a robust policy norm-clipped (a subset of the merges,
	// censused separately under Merged's "clipped" span label).
	Rejected int `json:"rejected,omitempty"`
	Clipped  int `json:"clipped,omitempty"`

	// Downlink serving-path census (core.RoundStats semantics: all zero
	// when the run had no artifact store; every dispatch then paid its own
	// encode). DownEncodedOnce is the number of dispatches that actually
	// ran a codec encode — flat in cohort size under the encode-once store.
	DownEncodedOnce int `json:"down_encoded_once,omitempty"`
	DownReserved    int `json:"down_reserved,omitempty"`
	DownNotModified int `json:"down_not_modified,omitempty"`

	// Wire and parameter totals (core.RoundStats semantics: failed and
	// dropped dispatches return nothing; estimates count only beside an
	// actual payload).
	SentBytes        int64 `json:"sent_bytes"`
	ReturnedBytes    int64 `json:"returned_bytes"`
	ReturnedBytesEst int64 `json:"returned_bytes_est"`
	SentParams       int64 `json:"sent_params"`
	ReturnedParams   int64 `json:"returned_params"`

	// Engine staleness accounting (sched.Engine.DiscountSum): present when
	// HasDiscounts, summed across edge engines in a hierarchy run.
	HasDiscounts bool    `json:"has_discounts,omitempty"`
	StalenessExp float64 `json:"staleness_exp,omitempty"`
	DiscountSum  float64 `json:"discount_sum,omitempty"`

	// Global-tier accounting (hierarchy runs only).
	GlobalCommits      int     `json:"global_commits,omitempty"`
	GlobalStalenessExp float64 `json:"global_staleness_exp,omitempty"`
	GlobalDiscountSum  float64 `json:"global_discount_sum,omitempty"`

	// Lazy-population LRU accounting: present when HasLRU. LRUMade is the
	// total clients ever materialised, LRULive the resident count at the
	// end of the run.
	HasLRU  bool  `json:"has_lru,omitempty"`
	LRULive int64 `json:"lru_live,omitempty"`
	LRUMade int64 `json:"lru_made,omitempty"`
}

// SummarizeStats folds a run's ledger entries into the summary's dispatch
// and byte totals. Engine, hierarchy and LRU fields are the caller's to
// fill — they live outside the ledger.
func SummarizeStats(stats []core.RoundStats) LedgerSummary {
	var s LedgerSummary
	s.Commits = len(stats)
	for _, st := range stats {
		s.Dispatches += len(st.Dispatches)
		s.TrainSkipped += st.TrainSkipped
		s.SentBytes += st.SentBytes
		s.ReturnedBytes += st.ReturnedBytes
		s.ReturnedBytesEst += st.ReturnedBytesEst
		s.SentParams += st.SentParams
		s.ReturnedParams += st.ReturnedParams
		s.DownEncodedOnce += st.DownEncodedOnce
		s.DownReserved += st.DownReserved
		s.DownNotModified += st.DownNotModified
		for _, d := range st.Dispatches {
			switch {
			case d.Dropped:
				s.Dropped++
			case d.Failed:
				s.Failed++
			case d.Rejected:
				s.Rejected++
			case d.LateReused:
				s.LateReused++
			case d.Late:
				s.Late++
			default:
				if d.Clipped {
					s.Clipped++
				}
				s.Merged++
			}
		}
	}
	return s
}

// AddStats folds further ledger entries into an existing summary (a
// hierarchy run sums its edges' ledgers).
func (s *LedgerSummary) AddStats(stats []core.RoundStats) {
	o := SummarizeStats(stats)
	s.Commits += o.Commits
	s.Dispatches += o.Dispatches
	s.Merged += o.Merged
	s.Late += o.Late
	s.LateReused += o.LateReused
	s.Dropped += o.Dropped
	s.Failed += o.Failed
	s.Rejected += o.Rejected
	s.Clipped += o.Clipped
	s.TrainSkipped += o.TrainSkipped
	s.DownEncodedOnce += o.DownEncodedOnce
	s.DownReserved += o.DownReserved
	s.DownNotModified += o.DownNotModified
	s.SentBytes += o.SentBytes
	s.ReturnedBytes += o.ReturnedBytes
	s.ReturnedBytesEst += o.ReturnedBytesEst
	s.SentParams += o.SentParams
	s.ReturnedParams += o.ReturnedParams
}

// WriteFile serializes the summary as indented JSON.
func (s *LedgerSummary) WriteFile(path string) error {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ReadLedger parses a summary written by WriteFile (or any JSON object
// with the same fields).
func ReadLedger(r io.Reader) (*LedgerSummary, error) {
	var s LedgerSummary
	dec := json.NewDecoder(r)
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("analyze: parse ledger summary: %w", err)
	}
	return &s, nil
}

// ReadLedgerFile opens and parses a ledger summary file.
func ReadLedgerFile(path string) (*LedgerSummary, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadLedger(f)
}
