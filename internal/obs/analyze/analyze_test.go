package analyze_test

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"adaptivefl/internal/core"
	"adaptivefl/internal/data"
	"adaptivefl/internal/models"
	"adaptivefl/internal/obs"
	"adaptivefl/internal/obs/analyze"
	"adaptivefl/internal/prune"
	"adaptivefl/internal/sched"
	"adaptivefl/internal/testbed"
)

func testModelCfg() models.Config {
	return models.Config{Arch: models.ResNet18, NumClasses: 4, WidthScale: 0.07, Seed: 3}
}

// buildServer mirrors the sched package's deterministic test federation,
// so the traces audited here are the same shape the engine tests pin.
func buildServer(t *testing.T, n, k int, seed int64, observer *obs.Observer) *core.Server {
	t.Helper()
	pool, err := prune.BuildPool(testModelCfg(), prune.Config{P: 3})
	if err != nil {
		t.Fatal(err)
	}
	cfg := data.SynthConfig{Name: "t", Classes: 4, Channels: 3, Size: 32,
		Train: n * 24, Test: 80, Noise: 0.3, MaxShift: 1, Seed: 11}
	train, _ := data.Generate(cfg)
	rng := rand.New(rand.NewSource(5))
	parts := data.PartitionIID(rng, train.Len(), n)
	devices := core.NewPopulation(rng, n, [3]float64{4, 3, 3}, pool, core.DefaultDeviceModel())
	clients := make([]*core.Client, n)
	for i := range clients {
		clients[i] = &core.Client{ID: i, Data: train.Subset(parts[i]), Device: devices[i]}
	}
	srv, err := core.NewServer(core.Config{
		Model: testModelCfg(), Pool: prune.Config{P: 3},
		ClientsPerRound: k,
		Train:           core.TrainConfig{LocalEpochs: 1, BatchSize: 12, LR: 0.02, Momentum: 0.5},
		Seed:            seed, Parallelism: k,
		Observer: observer,
	}, clients)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

func testSim(t *testing.T) sched.CostModel {
	t.Helper()
	sim, err := testbed.NewSim(testbed.Table5Platform())
	if err != nil {
		t.Fatal(err)
	}
	return sim
}

// engineRun drives one traced engine run (straggler/churn trace, late
// uploads, drops) and returns the trace bytes plus the run's own ledger
// summary — the two halves `fltrace audit` reconciles.
func engineRun(t *testing.T, policy sched.Policy, commits int) ([]byte, analyze.LedgerSummary) {
	t.Helper()
	var buf bytes.Buffer
	jw := obs.NewJSONLWriter(&buf)
	observer := obs.NewObserver(nil, jw)
	srv := buildServer(t, 6, 3, 43, observer)
	rt := &sched.RandomTrace{Seed: 99, MeanOn: 40, MeanOff: 5, SlowProb: 0.5, SlowFactor: 10}
	eng, err := sched.New(srv, testSim(t), rt, sched.Config{
		Policy: policy, K: 3, Extra: 2, Buffer: 2, Epochs: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(commits, nil); err != nil {
		t.Fatalf("%s: %v", policy, err)
	}
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}
	ledger := analyze.SummarizeStats(srv.Stats())
	ledger.Policy = string(policy)
	ledger.HasDiscounts = true
	ledger.StalenessExp = eng.StalenessExp()
	ledger.DiscountSum = eng.DiscountSum()
	return buf.Bytes(), ledger
}

// hierarchyRun drives a traced two-tier run and assembles its ledger the
// way cmd ledger emission does: edge stats summed, global tier separate.
func hierarchyRun(t *testing.T) ([]byte, analyze.LedgerSummary) {
	t.Helper()
	var buf bytes.Buffer
	jw := obs.NewJSONLWriter(&buf)
	observer := obs.NewObserver(nil, jw)
	eds := make([]*sched.Edge, 2)
	for i := range eds {
		srv := buildServer(t, 6, 2, 50+int64(i), observer)
		eng, err := sched.New(srv, testSim(t), &sched.RandomTrace{Seed: 9, MeanOn: 40, MeanOff: 10}, sched.Config{
			Policy: sched.SemiAsync, K: 2, Epochs: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		eds[i] = &sched.Edge{Srv: srv, Eng: eng}
	}
	h, err := sched.NewHierarchy(eds, testSim(t), sched.HierConfig{Observer: observer})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Run(3, nil); err != nil {
		t.Fatal(err)
	}
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}
	var ledger analyze.LedgerSummary
	ledger.Policy = "semiasync"
	ledger.HasDiscounts = true
	for _, ed := range h.Edges() {
		ledger.AddStats(ed.Srv.Stats())
		ledger.DiscountSum += ed.Eng.DiscountSum()
		ledger.StalenessExp = ed.Eng.StalenessExp()
	}
	ledger.GlobalCommits = len(h.Commits())
	ledger.GlobalStalenessExp = h.StalenessExp()
	ledger.GlobalDiscountSum = h.DiscountSum()
	return buf.Bytes(), ledger
}

// TestAuditEnginePolicies is the audit's core promise: for every policy,
// replaying a real run's span stream against that run's own ledger finds
// zero violations — outcome census, byte conservation, staleness replay
// and discount sums all reconcile.
func TestAuditEnginePolicies(t *testing.T) {
	policies := []sched.Policy{sched.Sync, sched.DeadlineReuse, sched.SemiAsync}
	if testing.Short() {
		policies = []sched.Policy{sched.DeadlineReuse}
	}
	for _, policy := range policies {
		trace, ledger := engineRun(t, policy, 3)
		violations, err := analyze.Audit(bytes.NewReader(trace), &ledger)
		if err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		if len(violations) != 0 {
			t.Fatalf("%s: audit violations on a clean run:\n%s", policy, strings.Join(violations, "\n"))
		}
		// The stream-internal invariants hold without a ledger too.
		violations, err = analyze.Audit(bytes.NewReader(trace), nil)
		if err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		if len(violations) != 0 {
			t.Fatalf("%s: ledger-less audit violations:\n%s", policy, strings.Join(violations, "\n"))
		}
	}
}

// TestAuditHierarchy extends the zero-violation promise to the two-tier
// topology: edge commit census, down-sync version replay, backhaul FIFO
// staleness and global discount sums.
func TestAuditHierarchy(t *testing.T) {
	trace, ledger := hierarchyRun(t)
	violations, err := analyze.Audit(bytes.NewReader(trace), &ledger)
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) != 0 {
		t.Fatalf("hierarchy audit violations on a clean run:\n%s", strings.Join(violations, "\n"))
	}
}

// TestAuditDetectsTampering proves the audit is not vacuous: a single
// flipped span outcome breaks the commit census even without a ledger,
// and a ledger off by one dispatch is caught too.
func TestAuditDetectsTampering(t *testing.T) {
	trace, ledger := engineRun(t, sched.Sync, 2)

	tampered := bytes.Replace(trace, []byte(`"outcome":"merged"`), []byte(`"outcome":"late"`), 1)
	if bytes.Equal(tampered, trace) {
		t.Fatal("trace has no merged flight to tamper with")
	}
	violations, err := analyze.Audit(bytes.NewReader(tampered), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) == 0 {
		t.Fatal("flipped span outcome went unnoticed")
	}

	bad := ledger
	bad.Dispatches++
	violations, err = analyze.Audit(bytes.NewReader(trace), &bad)
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) == 0 {
		t.Fatal("ledger off by one dispatch went unnoticed")
	}

	bad = ledger
	bad.DiscountSum += 0.25
	violations, err = analyze.Audit(bytes.NewReader(trace), &bad)
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) == 0 {
		t.Fatal("perturbed discount sum went unnoticed")
	}
}

// TestSummaryDeterministic pins the report contract: two same-seed runs
// summarize to byte-identical reports, and the report carries the
// sections the CLI promises.
func TestSummaryDeterministic(t *testing.T) {
	render := func(trace []byte) string {
		s, err := analyze.Summarize(bytes.NewReader(trace))
		if err != nil {
			t.Fatal(err)
		}
		var out bytes.Buffer
		s.Write(&out, 5)
		return out.String()
	}
	traceA, _ := engineRun(t, sched.SemiAsync, 3)
	traceB, _ := engineRun(t, sched.SemiAsync, 3)
	if !bytes.Equal(traceA, traceB) {
		t.Fatal("same-seed traces differ; summary determinism is untestable")
	}
	a, b := render(traceA), render(traceB)
	if a != b {
		t.Fatalf("same-seed summaries differ:\n%s\nvs\n%s", a, b)
	}
	for _, section := range []string{"== overview ==", "== bytes ==", "== critical path ==",
		"== flight duration (virtual s) ==", "== staleness of merged/late-reused flights =="} {
		if !strings.Contains(a, section) {
			t.Errorf("summary missing section %q", section)
		}
	}
	if t.Failed() {
		t.Logf("summary:\n%s", a)
	}

	hier, _ := hierarchyRun(t)
	h1, h2 := render(hier), render(hier)
	if h1 != h2 {
		t.Fatal("re-rendering the same hierarchy trace differs")
	}
	if !strings.Contains(h1, "== hierarchy ==") || !strings.Contains(h1, "mean_lag_s") {
		t.Errorf("hierarchy summary missing backhaul stats:\n%s", h1)
	}
}

// TestReaderSeparatesStreams pins the line discipline both readers share:
// span scans skip wall records and blank lines, wall scans keep only wall
// records, and a final line without a trailing newline still parses.
func TestReaderSeparatesStreams(t *testing.T) {
	mixed := `{"kind":"flight","client":3,"flight":9,"outcome":"merged"}

{"kind":"wall","flight":9,"side":"server","route":"train","seconds":0.5}
{"kind":"commit","round":1,"merged":1}`
	var spans []obs.Span
	if err := analyze.ForEachSpan(strings.NewReader(mixed), func(sp obs.Span) error {
		spans = append(spans, sp)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(spans) != 2 || spans[0].Kind != obs.KindFlight || spans[1].Kind != obs.KindCommit {
		t.Fatalf("span scan saw %+v", spans)
	}
	if spans[0].Flight != 9 || spans[0].Client != 3 {
		t.Fatalf("span fields lost: %+v", spans[0])
	}
	var walls []obs.WallRecord
	if err := analyze.ForEachWall(strings.NewReader(mixed), func(r obs.WallRecord) error {
		walls = append(walls, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(walls) != 1 || walls[0].Flight != 9 || walls[0].Side != "server" {
		t.Fatalf("wall scan saw %+v", walls)
	}

	if err := analyze.ForEachSpan(strings.NewReader("not json\n"), func(obs.Span) error { return nil }); err == nil {
		t.Fatal("malformed line did not error")
	}
}
