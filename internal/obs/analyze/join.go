package analyze

import (
	"fmt"
	"io"
	"os"
	"sort"

	"adaptivefl/internal/obs"
)

// flightWall is the per-flight wall-clock view joined from both sides of
// the fednet transport.
type flightWall struct {
	serverSecs, agentSecs float64
	serverN, agentN       int64
	reqBytes, respBytes   int64
	instance              string
}

// routeAgg aggregates one (side, route) series of wall records.
type routeAgg struct {
	n        int64
	sum, max float64
}

// Join correlates a deterministic span trace with a wall-clock record
// stream (fednet HTTP timings keyed by the Fednet-Flight header) and
// writes a deterministic report: per-route aggregates, and the top
// flights by transport overhead (server-observed wall time minus
// agent-observed handler time — the network + envelope cost). Wall
// records are small (two per dispatch), so they are held in a per-flight
// map while the span trace streams.
func Join(trace, wall io.Reader, w io.Writer, topN int) error {
	flights := map[int64]*flightWall{}
	routes := map[string]*routeAgg{}
	var orphans int64
	err := ForEachWall(wall, func(r obs.WallRecord) error {
		key := r.Side + "/" + r.Route
		ra := routes[key]
		if ra == nil {
			ra = &routeAgg{}
			routes[key] = ra
		}
		ra.n++
		ra.sum += r.Seconds
		if r.Seconds > ra.max {
			ra.max = r.Seconds
		}
		if r.Flight == 0 {
			orphans++
			return nil
		}
		fw := flights[r.Flight]
		if fw == nil {
			fw = &flightWall{}
			flights[r.Flight] = fw
		}
		switch r.Side {
		case "server":
			fw.serverSecs += r.Seconds
			fw.serverN++
			fw.reqBytes += r.ReqBytes
			fw.respBytes += r.RespBytes
		case "agent":
			fw.agentSecs += r.Seconds
			fw.agentN++
			if r.Instance != "" {
				fw.instance = r.Instance
			}
		}
		return nil
	})
	if err != nil {
		return err
	}

	// Stream the span trace, matching flight spans to their wall records.
	var rows []joined
	var matched, unmatchedSpans int64
	err = ForEachSpan(trace, func(sp obs.Span) error {
		if sp.Kind != obs.KindFlight {
			return nil
		}
		fw := flights[sp.Flight]
		if fw == nil {
			unmatchedSpans++
			return nil
		}
		matched++
		delete(flights, sp.Flight)
		j := joined{flight: sp.Flight, client: sp.Client, outcome: sp.Outcome,
			serverS: fw.serverSecs, agentS: fw.agentSecs,
			reqBytes: fw.reqBytes, respBytes: fw.respBytes, instance: fw.instance}
		if fw.serverN > 0 && fw.agentN > 0 {
			j.overhead = fw.serverSecs - fw.agentSecs
		}
		rows = append(rows, j)
		// Keep the retained set bounded: only the current top-N by
		// overhead survive between batches.
		if len(rows) > 4*topN {
			sortJoined(rows)
			rows = rows[:topN]
		}
		return nil
	})
	if err != nil {
		return err
	}
	sortJoined(rows)
	if len(rows) > topN {
		rows = rows[:topN]
	}

	fmt.Fprintf(w, "== wall routes ==\n")
	keys := make([]string, 0, len(routes))
	for k := range routes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Fprintf(w, "%-20s %9s %12s %12s\n", "side/route", "count", "mean_ms", "max_ms")
	for _, k := range keys {
		ra := routes[k]
		fmt.Fprintf(w, "%-20s %9d %12.3f %12.3f\n", k, ra.n, 1e3*ra.sum/float64(ra.n), 1e3*ra.max)
	}
	fmt.Fprintf(w, "\nflights joined %d  spans without wall records %d  wall records without flight %d  wall flights without span %d\n",
		matched, unmatchedSpans, orphans, int64(len(flights)))

	if len(rows) > 0 {
		fmt.Fprintf(w, "\n== top flights by transport overhead (server wall − agent handler) ==\n")
		fmt.Fprintf(w, "%-8s %-8s %-12s %12s %12s %12s %10s %10s  %s\n",
			"flight", "client", "outcome", "server_ms", "agent_ms", "overhead_ms", "req_bytes", "resp_bytes", "instance")
		for _, j := range rows {
			fmt.Fprintf(w, "%-8d %-8d %-12s %12.3f %12.3f %12.3f %10d %10d  %s\n",
				j.flight, j.client, j.outcome, 1e3*j.serverS, 1e3*j.agentS, 1e3*j.overhead,
				j.reqBytes, j.respBytes, j.instance)
		}
	}
	return nil
}

// joined is one flight's correlated deterministic + wall-clock view.
type joined struct {
	flight              int64
	client              int
	outcome             string
	overhead            float64
	serverS, agentS     float64
	reqBytes, respBytes int64
	instance            string
}

func sortJoined(rows []joined) {
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].overhead != rows[j].overhead {
			return rows[i].overhead > rows[j].overhead
		}
		return rows[i].flight < rows[j].flight
	})
}

// JoinFiles is the CLI entry: trace and wall paths, report to w.
func JoinFiles(tracePath, wallPath string, w io.Writer, topN int) error {
	wf, err := os.Open(wallPath)
	if err != nil {
		return err
	}
	defer wf.Close()
	tf, err := os.Open(tracePath)
	if err != nil {
		return err
	}
	defer tf.Close()
	return Join(tf, wf, w, topN)
}
