package analyze

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"adaptivefl/internal/obs"
)

// maxLineBytes bounds one trace line. Spans are a few hundred bytes; a
// megabyte of headroom keeps the reader safe against pathological lines
// without ever holding more than one in memory.
const maxLineBytes = 1 << 20

// ForEachSpan streams spans from a JSONL trace, invoking fn for each in
// file order. Memory is bounded by one line: the reader never retains
// past spans, which is what lets fltrace chew through a million-client
// smoke trace. Blank lines are skipped; wall records (kind "wall") are
// tolerated and skipped, so a combined span+wall stream still scans.
// fn returning an error aborts the scan with that error.
func ForEachSpan(r io.Reader, fn func(obs.Span) error) error {
	br := bufio.NewReaderSize(r, 1<<16)
	line := 0
	for {
		raw, err := readLine(br)
		if err == io.EOF && len(raw) == 0 {
			return nil
		}
		if err != nil && err != io.EOF {
			return err
		}
		atEOF := err == io.EOF
		line++
		if len(trimSpace(raw)) > 0 {
			var sp obs.Span
			if uerr := json.Unmarshal(raw, &sp); uerr != nil {
				return fmt.Errorf("analyze: trace line %d: %w", line, uerr)
			}
			if sp.Kind != obs.WallKind {
				if ferr := fn(sp); ferr != nil {
					return ferr
				}
			}
		}
		if atEOF {
			return nil
		}
	}
}

// ForEachWall streams wall records (kind "wall") from a JSONL stream,
// skipping any interleaved spans.
func ForEachWall(r io.Reader, fn func(obs.WallRecord) error) error {
	br := bufio.NewReaderSize(r, 1<<16)
	line := 0
	for {
		raw, err := readLine(br)
		if err == io.EOF && len(raw) == 0 {
			return nil
		}
		if err != nil && err != io.EOF {
			return err
		}
		atEOF := err == io.EOF
		line++
		if len(trimSpace(raw)) > 0 {
			var wr obs.WallRecord
			if uerr := json.Unmarshal(raw, &wr); uerr != nil {
				return fmt.Errorf("analyze: wall line %d: %w", line, uerr)
			}
			if wr.Kind == obs.WallKind {
				if ferr := fn(wr); ferr != nil {
					return ferr
				}
			}
		}
		if atEOF {
			return nil
		}
	}
}

// readLine reads one newline-terminated line (without the terminator),
// failing on lines over maxLineBytes instead of silently splitting them.
func readLine(br *bufio.Reader) ([]byte, error) {
	raw, err := br.ReadBytes('\n')
	if len(raw) > maxLineBytes {
		return nil, fmt.Errorf("analyze: trace line exceeds %d bytes", maxLineBytes)
	}
	if n := len(raw); n > 0 && raw[n-1] == '\n' {
		raw = raw[:n-1]
		if n := len(raw); n > 0 && raw[n-1] == '\r' {
			raw = raw[:n-1]
		}
	}
	return raw, err
}

func trimSpace(b []byte) []byte {
	for len(b) > 0 && (b[0] == ' ' || b[0] == '\t') {
		b = b[1:]
	}
	for len(b) > 0 && (b[len(b)-1] == ' ' || b[len(b)-1] == '\t') {
		b = b[:len(b)-1]
	}
	return b
}
