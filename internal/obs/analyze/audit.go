package analyze

import (
	"fmt"
	"io"
	"math"
	"sort"

	"adaptivefl/internal/obs"
	"adaptivefl/internal/sched"
)

// discountTol is the relative tolerance for reconciling floating-point
// discount sums: the run and the auditor add the same StalenessDiscount
// terms, but possibly in a different order.
const discountTol = 1e-9

// auditEdge is one tier group's replay state: the outcome census since
// its last commit, and the replayed model version (bumped by every
// non-empty commit and every down-sync — exactly the two paths that move
// core.Server.version).
type auditEdge struct {
	version                          int
	pendMerged, pendReused, pendLate int
	pendFailed, pendDropped          int
	pendRejected, pendClipped        int
	commits                          int
	anchor                           int   // global version at last down-sync
	arrivalAnchors                   []int // FIFO: anchors of edge-commits in backhaul transit
}

// Auditor replays a span stream and cross-checks conservation invariants
// — per-commit outcome counts, byte totals, staleness arithmetic,
// discount sums, LRU balance — against an optional LedgerSummary. Feed
// spans with Add, then call Finish. Memory is bounded per edge group, so
// million-flight traces stream through it.
type Auditor struct {
	ledger     *LedgerSummary
	violations []string

	edges map[int]*auditEdge

	flights, commitSpans               int64
	merged, late, lateReused           int64
	dropped, failed, trainSkipped      int64
	rejected, clipped                  int64
	down, up, upEst                    int64
	downOnce, downReserved, downNotMod int64
	discountSum                        float64
	globalVersion                      int
	globalArrives, globalMergedSum     int64
	globalMerges, downSyncs, edgeComms int64
	globalDiscount                     float64
	lruMade, lruEvict                  int64
}

// NewAuditor builds an auditor. ledger may be nil: the stream-internal
// invariants (commit census, staleness replay, LRU balance, hierarchy
// conservation) are still checked.
func NewAuditor(ledger *LedgerSummary) *Auditor {
	return &Auditor{ledger: ledger, edges: map[int]*auditEdge{}}
}

func (a *Auditor) violatef(format string, args ...any) {
	a.violations = append(a.violations, fmt.Sprintf(format, args...))
}

func (a *Auditor) edge(id int) *auditEdge {
	e := a.edges[id]
	if e == nil {
		e = &auditEdge{}
		a.edges[id] = e
	}
	return e
}

// Add replays one span. Spans must arrive in trace order — the replay is
// exactly the emission-order argument run in reverse.
func (a *Auditor) Add(sp obs.Span) {
	switch sp.Kind {
	case obs.KindFlight:
		a.addFlight(sp)
	case obs.KindCommit:
		a.addCommit(sp)
	case obs.KindEdgeCommit:
		a.edgeComms++
		e := a.edge(sp.Edge)
		e.arrivalAnchors = append(e.arrivalAnchors, e.anchor)
		if sp.End < sp.Time {
			a.violatef("edge-commit edge=%d round=%d arrives at %.3f before its cut at %.3f",
				sp.Edge, sp.Round, sp.End, sp.Time)
		}
	case obs.KindGlobalArrive:
		a.globalArrives++
		e := a.edge(sp.Edge)
		if len(e.arrivalAnchors) == 0 {
			a.violatef("global-arrive edge=%d t=%.3f without a preceding edge-commit in transit", sp.Edge, sp.Time)
			return
		}
		anchor := e.arrivalAnchors[0]
		e.arrivalAnchors = e.arrivalAnchors[1:]
		if want := a.globalVersion - anchor; sp.Staleness != want {
			a.violatef("global-arrive edge=%d t=%.3f staleness %d, replay says %d (version %d, anchor %d)",
				sp.Edge, sp.Time, sp.Staleness, want, a.globalVersion, anchor)
		}
		if a.ledger != nil {
			a.globalDiscount += sched.StalenessDiscount(sp.Staleness, a.ledger.GlobalStalenessExp)
		}
	case obs.KindGlobalMerge:
		a.globalMerges++
		a.globalMergedSum += int64(sp.Merged)
		if sp.Round != a.globalVersion+1 {
			a.violatef("global-merge t=%.3f version %d, replay expected %d", sp.Time, sp.Round, a.globalVersion+1)
		}
		a.globalVersion = sp.Round
	case obs.KindDownSync:
		a.downSyncs++
		if sp.Round != a.globalVersion {
			a.violatef("down-sync edge=%d t=%.3f to version %d, global tier is at %d",
				sp.Edge, sp.Time, sp.Round, a.globalVersion)
		}
		e := a.edge(sp.Edge)
		e.anchor = sp.Round
		// A down-sync bumps the edge server's version exactly like a commit.
		e.version++
	case obs.KindLRU:
		switch sp.Op {
		case obs.OpMaterialise:
			a.lruMade++
		case obs.OpEvict:
			a.lruEvict++
		}
	}
}

func (a *Auditor) addFlight(sp obs.Span) {
	a.flights++
	a.down += sp.DownBytes
	// Serving-path census. An empty path means the run had no artifact
	// store (every dispatch paid its own encode); the ledger records all
	// zeros there, so only labelled spans count.
	switch sp.DownPath {
	case obs.DownEncodedOnce:
		a.downOnce++
	case obs.DownReserved:
		a.downReserved++
	case obs.DownNotModified:
		a.downNotMod++
	case "":
	default:
		a.violatef("flight %d client %d: unknown down path %q", sp.Flight, sp.Client, sp.DownPath)
	}
	if sp.TrainSkipped {
		a.trainSkipped++
	}
	e := a.edge(sp.Edge)
	switch sp.Outcome {
	case obs.OutcomeMerged:
		a.merged++
		e.pendMerged++
	case obs.OutcomeClipped:
		// A clipped flight IS a fresh merge — the label records that its
		// delta was norm-clipped on the way in.
		a.merged++
		a.clipped++
		e.pendMerged++
		e.pendClipped++
	case obs.OutcomeRejected:
		a.rejected++
		e.pendRejected++
	case obs.OutcomeLateReused:
		a.lateReused++
		e.pendReused++
	case obs.OutcomeLate:
		a.late++
		e.pendLate++
	case obs.OutcomeDropped:
		a.dropped++
		e.pendDropped++
	case obs.OutcomeFailed:
		a.failed++
		e.pendFailed++
	default:
		a.violatef("flight %d client %d: unknown outcome %q", sp.Flight, sp.Client, sp.Outcome)
	}
	// Byte conservation mirrors core.RoundStats.Add: failed and dropped
	// dispatches return nothing, and an uplink estimate only counts when
	// an actual payload exists to compare it against.
	if sp.Outcome != obs.OutcomeFailed && sp.Outcome != obs.OutcomeDropped {
		a.up += sp.UpBytes
		if sp.UpBytes > 0 {
			a.upEst += sp.UpBytesEst
		}
	}
	if sp.Outcome == obs.OutcomeMerged || sp.Outcome == obs.OutcomeClipped || sp.Outcome == obs.OutcomeLateReused {
		// Staleness replay: the span's anchor version plus its recorded
		// staleness must land exactly on the tier's replayed version.
		if want := e.version - sp.Ver; sp.Staleness != want {
			a.violatef("flight %d client %d edge=%d: staleness %d, replay says %d (version %d, anchor %d)",
				sp.Flight, sp.Client, sp.Edge, sp.Staleness, want, e.version, sp.Ver)
		}
		if a.ledger != nil && a.ledger.HasDiscounts {
			a.discountSum += sched.StalenessDiscount(sp.Staleness, a.ledger.StalenessExp)
		}
	}
}

func (a *Auditor) addCommit(sp obs.Span) {
	a.commitSpans++
	e := a.edge(sp.Edge)
	e.commits++
	fresh := sp.Merged - sp.Reused
	if fresh != e.pendMerged || sp.Reused != e.pendReused || sp.Late != e.pendLate ||
		sp.Failed != e.pendFailed || sp.Dropped != e.pendDropped ||
		sp.Rejected != e.pendRejected || sp.Clipped != e.pendClipped {
		a.violatef("commit edge=%d round=%d t=%.3f counts (merged %d reused %d late %d failed %d dropped %d rejected %d clipped %d) != flight spans since last commit (%d %d %d %d %d %d %d)",
			sp.Edge, sp.Round, sp.Time, fresh, sp.Reused, sp.Late, sp.Failed, sp.Dropped, sp.Rejected, sp.Clipped,
			e.pendMerged, e.pendReused, e.pendLate, e.pendFailed, e.pendDropped, e.pendRejected, e.pendClipped)
	}
	e.pendMerged, e.pendReused, e.pendLate, e.pendFailed, e.pendDropped = 0, 0, 0, 0, 0
	e.pendRejected, e.pendClipped = 0, 0
	if sp.Merged > 0 {
		// ApplyUpdates is a no-op on an empty update set, so the model
		// version moves exactly on non-empty commits.
		e.version++
	}
}

// Finish runs the end-of-stream checks and returns every violation found
// (nil means the trace is conserved and, if a ledger was supplied, agrees
// with it).
func (a *Auditor) Finish() []string {
	ids := make([]int, 0, len(a.edges))
	for id := range a.edges {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		e := a.edges[id]
		if n := e.pendMerged + e.pendReused + e.pendLate + e.pendFailed + e.pendDropped + e.pendRejected; n > 0 {
			a.violatef("edge=%d: %d flight spans after the last commit", id, n)
		}
	}
	hasGlobal := a.globalMerges > 0 || a.edgeComms > 0
	if hasGlobal {
		// The global tier always returns from a merge with an empty
		// buffer, so every arrival must be accounted for by a merge;
		// edge-commits may legitimately still be in backhaul transit.
		if a.globalArrives != a.globalMergedSum {
			a.violatef("global tier: %d arrivals but merges consumed %d", a.globalArrives, a.globalMergedSum)
		}
		if a.globalArrives > a.edgeComms {
			a.violatef("global tier: %d arrivals exceed %d edge-commits", a.globalArrives, a.edgeComms)
		}
	}
	if a.lruMade-a.lruEvict < 0 {
		a.violatef("lru: %d evictions exceed %d materialisations", a.lruEvict, a.lruMade)
	}

	l := a.ledger
	if l == nil {
		return a.violations
	}
	checkInt := func(name string, got, want int64) {
		if got != want {
			a.violatef("%s: trace %d != ledger %d", name, got, want)
		}
	}
	checkInt("commits", a.commitSpans, int64(l.Commits))
	checkInt("dispatches", a.flights, int64(l.Dispatches))
	checkInt("merged", a.merged, int64(l.Merged))
	checkInt("late", a.late, int64(l.Late))
	checkInt("late-reused", a.lateReused, int64(l.LateReused))
	checkInt("dropped", a.dropped, int64(l.Dropped))
	checkInt("failed", a.failed, int64(l.Failed))
	checkInt("rejected", a.rejected, int64(l.Rejected))
	checkInt("clipped", a.clipped, int64(l.Clipped))
	checkInt("train-skipped", a.trainSkipped, int64(l.TrainSkipped))
	checkInt("down encoded-once", a.downOnce, int64(l.DownEncodedOnce))
	checkInt("down re-served", a.downReserved, int64(l.DownReserved))
	checkInt("down not-modified", a.downNotMod, int64(l.DownNotModified))
	checkInt("sent bytes", a.down, l.SentBytes)
	checkInt("returned bytes", a.up, l.ReturnedBytes)
	checkInt("returned bytes est", a.upEst, l.ReturnedBytesEst)
	if l.HasDiscounts && !closeEnough(a.discountSum, l.DiscountSum) {
		a.violatef("discount sum: trace replays %.12g != ledger %.12g (α=%g)",
			a.discountSum, l.DiscountSum, l.StalenessExp)
	}
	if l.GlobalCommits > 0 || a.globalMerges > 0 {
		checkInt("global merges", a.globalMerges, int64(l.GlobalCommits))
		if !closeEnough(a.globalDiscount, l.GlobalDiscountSum) {
			a.violatef("global discount sum: trace replays %.12g != ledger %.12g (α=%g)",
				a.globalDiscount, l.GlobalDiscountSum, l.GlobalStalenessExp)
		}
	}
	if l.HasLRU {
		checkInt("lru materialised", a.lruMade, l.LRUMade)
		checkInt("lru live", a.lruMade-a.lruEvict, l.LRULive)
	}
	return a.violations
}

func closeEnough(got, want float64) bool {
	scale := math.Max(1, math.Max(math.Abs(got), math.Abs(want)))
	return math.Abs(got-want) <= discountTol*scale
}

// Audit streams a trace against an optional ledger summary and returns
// the violations (nil when conserved).
func Audit(r io.Reader, ledger *LedgerSummary) ([]string, error) {
	a := NewAuditor(ledger)
	if err := ForEachSpan(r, func(sp obs.Span) error {
		a.Add(sp)
		return nil
	}); err != nil {
		return nil, err
	}
	return a.Finish(), nil
}
