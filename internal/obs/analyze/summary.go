package analyze

import (
	"fmt"
	"io"
	"sort"
	"strconv"

	"adaptivefl/internal/obs"
)

// histogram bucket layouts for the report (virtual seconds and
// staleness). Fixed at compile time so reports diff cleanly across runs.
var (
	phaseBuckets = []float64{1, 5, 15, 30, 60, 120, 300, 600, 1800, 3600}
	staleBuckets = []float64{0, 1, 2, 4, 8, 16, 32}
)

// hist is a fixed-bucket histogram for report output (the analyzer is
// single-goroutine, so no atomics).
type hist struct {
	bounds []float64
	counts []int64
	sum    float64
	n      int64
	max    float64
}

func newHist(bounds []float64) *hist {
	return &hist{bounds: bounds, counts: make([]int64, len(bounds)+1)}
}

func (h *hist) observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.n++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

func (h *hist) write(w io.Writer, indent string) {
	if h.n == 0 {
		fmt.Fprintf(w, "%s(empty)\n", indent)
		return
	}
	for i, b := range h.bounds {
		if h.counts[i] == 0 {
			continue
		}
		lo := "0"
		if i > 0 {
			lo = strconv.FormatFloat(h.bounds[i-1], 'g', -1, 64)
		}
		fmt.Fprintf(w, "%s(%s, %s]: %d\n", indent, lo, strconv.FormatFloat(b, 'g', -1, 64), h.counts[i])
	}
	if c := h.counts[len(h.bounds)]; c > 0 {
		fmt.Fprintf(w, "%s(%s, +Inf]: %d\n", indent,
			strconv.FormatFloat(h.bounds[len(h.bounds)-1], 'g', -1, 64), c)
	}
	fmt.Fprintf(w, "%scount=%d mean=%.3f max=%.3f\n", indent, h.n, h.sum/float64(h.n), h.max)
}

// pendingFlight is the bounded per-commit state: one finalised flight
// awaiting its group's commit span.
type pendingFlight struct {
	flight                        int64
	client                        int
	start, downEnd, trainEnd, end float64
	outcome                       string
	downBytes, upBytes            int64
}

// byteAgg accumulates a byte/count breakdown under one key (width, codec,
// outcome, client).
type byteAgg struct {
	flights            int64
	down, up, upEst    int64
	wastedDown, wasted int64 // bytes on flights that never merged
}

func (a *byteAgg) add(sp obs.Span) {
	a.flights++
	a.down += sp.DownBytes
	a.up += sp.UpBytes
	a.upEst += sp.UpBytesEst
	if sp.Outcome == obs.OutcomeDropped || sp.Outcome == obs.OutcomeFailed || sp.Outcome == obs.OutcomeLate {
		a.wastedDown += sp.DownBytes
		a.wasted += sp.DownBytes + sp.UpBytes
	}
}

// commitRow is one aggregation's critical-path record.
type commitRow struct {
	edge, round                                 int
	t, dur                                      float64
	merged, failed, late, reused, dropped       int
	closerFlight                                int64
	closerClient                                int
	closerOutcome                               string
	closerDown, closerTrain, closerUp, closerTo float64 // phase decomposition
	stragglers                                  int
}

// edgeState is the per-edge streaming state: the flights finalised since
// the edge's last commit, and the time of that commit.
type edgeState struct {
	pending    []pendingFlight
	lastCommit float64
	hasCommit  bool
}

// backhaul aggregates one edge's edge-commit transit lags.
type backhaul struct {
	n        int64
	sum, max float64
}

// topCommits bounds how many slowest commits the report details.
const topCommits = 10

// Summary is the streaming trace analyzer: feed every span with Add, then
// render with Write. Memory is bounded by the per-commit pending set, the
// per-key breakdown maps (clients actually dispatched, not the population
// size) and fixed-size histograms.
type Summary struct {
	kinds    map[string]int64
	outcomes map[string]int64

	down, up, upEst          int64
	wastedDown, wastedUp     int64
	downPaths                map[string]int64 // flights by serving path (empty path omitted)
	trainSkipped             int64
	downSum, trainSum, upSum float64 // phase sums over flights with full phase info
	phased                   int64

	byWidth   map[string]*byteAgg
	byCodec   map[string]*byteAgg
	byOutcome map[string]*byteAgg
	byClient  map[int]*byteAgg

	durHist   *hist
	downHist  *hist
	trainHist *hist
	upHist    *hist
	staleHist *hist

	edges   map[int]*edgeState
	commits int64
	// critical-path aggregates over every commit's closing flight
	critDown, critTrain, critUp float64
	critPhased                  int64
	stragglers                  int64
	slowest                     []commitRow

	// hierarchy
	backhauls   map[int]*backhaul
	globalStale *hist
	downSyncs   int64
	globalMerge int64

	lruMade, lruEvict int64
}

// NewSummary builds an empty analyzer.
func NewSummary() *Summary {
	return &Summary{
		kinds:       map[string]int64{},
		outcomes:    map[string]int64{},
		downPaths:   map[string]int64{},
		byWidth:     map[string]*byteAgg{},
		byCodec:     map[string]*byteAgg{},
		byOutcome:   map[string]*byteAgg{},
		byClient:    map[int]*byteAgg{},
		durHist:     newHist(phaseBuckets),
		downHist:    newHist(phaseBuckets),
		trainHist:   newHist(phaseBuckets),
		upHist:      newHist(phaseBuckets),
		staleHist:   newHist(staleBuckets),
		edges:       map[int]*edgeState{},
		backhauls:   map[int]*backhaul{},
		globalStale: newHist(staleBuckets),
	}
}

func (s *Summary) edge(id int) *edgeState {
	e := s.edges[id]
	if e == nil {
		e = &edgeState{}
		s.edges[id] = e
	}
	return e
}

func agg(m map[string]*byteAgg, key string, sp obs.Span) {
	a := m[key]
	if a == nil {
		a = &byteAgg{}
		m[key] = a
	}
	a.add(sp)
}

// Add folds one span into the analyzer. Spans must arrive in trace order
// (commit grouping depends on it).
func (s *Summary) Add(sp obs.Span) {
	s.kinds[sp.Kind]++
	switch sp.Kind {
	case obs.KindFlight:
		s.addFlight(sp)
	case obs.KindCommit:
		s.addCommit(sp)
	case obs.KindEdgeCommit:
		b := s.backhauls[sp.Edge]
		if b == nil {
			b = &backhaul{}
			s.backhauls[sp.Edge] = b
		}
		lag := sp.End - sp.Time
		b.n++
		b.sum += lag
		if lag > b.max {
			b.max = lag
		}
	case obs.KindGlobalArrive:
		s.globalStale.observe(float64(sp.Staleness))
	case obs.KindGlobalMerge:
		s.globalMerge++
	case obs.KindDownSync:
		s.downSyncs++
	case obs.KindLRU:
		switch sp.Op {
		case obs.OpMaterialise:
			s.lruMade++
		case obs.OpEvict:
			s.lruEvict++
		}
	}
}

func (s *Summary) addFlight(sp obs.Span) {
	s.outcomes[sp.Outcome]++
	s.down += sp.DownBytes
	s.up += sp.UpBytes
	s.upEst += sp.UpBytesEst
	if sp.DownPath != "" {
		s.downPaths[sp.DownPath]++
	}
	if sp.TrainSkipped {
		s.trainSkipped++
	}
	if sp.Outcome == obs.OutcomeDropped || sp.Outcome == obs.OutcomeFailed || sp.Outcome == obs.OutcomeLate {
		s.wastedDown += sp.DownBytes
		s.wastedUp += sp.UpBytes
	}
	agg(s.byWidth, sp.Sent, sp)
	if sp.Codec != "" {
		agg(s.byCodec, sp.Codec, sp)
	}
	agg(s.byOutcome, sp.Outcome, sp)
	agg2 := s.byClient[sp.Client]
	if agg2 == nil {
		agg2 = &byteAgg{}
		s.byClient[sp.Client] = agg2
	}
	agg2.add(sp)

	if sp.End > sp.Start {
		s.durHist.observe(sp.End - sp.Start)
	}
	if sp.DownEnd > 0 && sp.TrainEnd > 0 && sp.End >= sp.TrainEnd {
		s.downSum += sp.DownEnd - sp.Start
		s.trainSum += sp.TrainEnd - sp.DownEnd
		s.upSum += sp.End - sp.TrainEnd
		s.phased++
		s.downHist.observe(sp.DownEnd - sp.Start)
		s.trainHist.observe(sp.TrainEnd - sp.DownEnd)
		s.upHist.observe(sp.End - sp.TrainEnd)
	}
	if sp.Outcome == obs.OutcomeMerged || sp.Outcome == obs.OutcomeLateReused {
		s.staleHist.observe(float64(sp.Staleness))
	}

	e := s.edge(sp.Edge)
	e.pending = append(e.pending, pendingFlight{
		flight: sp.Flight, client: sp.Client,
		start: sp.Start, downEnd: sp.DownEnd, trainEnd: sp.TrainEnd, end: sp.End,
		outcome: sp.Outcome, downBytes: sp.DownBytes, upBytes: sp.UpBytes,
	})
}

func (s *Summary) addCommit(sp obs.Span) {
	s.commits++
	e := s.edge(sp.Edge)
	row := commitRow{
		edge: sp.Edge, round: sp.Round, t: sp.Time,
		merged: sp.Merged, failed: sp.Failed, late: sp.Late,
		reused: sp.Reused, dropped: sp.Dropped,
		closerClient: -1,
	}
	if e.hasCommit {
		row.dur = sp.Time - e.lastCommit
	} else {
		row.dur = sp.Time
	}
	// The closing flight: the last upload the server heard before the
	// commit — max End among the group's flights with End ≤ commit time
	// (deadline stragglers end later; they were cancelled, not waited on).
	// Ties break on flight ID, deterministically.
	var closer *pendingFlight
	for i := range e.pending {
		p := &e.pending[i]
		if p.end > sp.Time {
			row.stragglers++
			continue
		}
		if closer == nil || p.end > closer.end || (p.end == closer.end && p.flight > closer.flight) {
			closer = p
		}
	}
	if closer != nil {
		row.closerFlight = closer.flight
		row.closerClient = closer.client
		row.closerOutcome = closer.outcome
		row.closerTo = closer.end - closer.start
		if closer.downEnd > 0 && closer.trainEnd > 0 && closer.end >= closer.trainEnd {
			row.closerDown = closer.downEnd - closer.start
			row.closerTrain = closer.trainEnd - closer.downEnd
			row.closerUp = closer.end - closer.trainEnd
			s.critDown += row.closerDown
			s.critTrain += row.closerTrain
			s.critUp += row.closerUp
			s.critPhased++
		}
	}
	s.stragglers += int64(row.stragglers)
	e.pending = e.pending[:0]
	e.lastCommit, e.hasCommit = sp.Time, true

	s.slowest = append(s.slowest, row)
	sort.Slice(s.slowest, func(i, j int) bool {
		a, b := s.slowest[i], s.slowest[j]
		if a.dur != b.dur {
			return a.dur > b.dur
		}
		if a.t != b.t {
			return a.t < b.t
		}
		return a.edge < b.edge
	})
	if len(s.slowest) > topCommits {
		s.slowest = s.slowest[:topCommits]
	}
}

// Summarize streams a whole trace into a fresh Summary.
func Summarize(r io.Reader) (*Summary, error) {
	s := NewSummary()
	if err := ForEachSpan(r, func(sp obs.Span) error {
		s.Add(sp)
		return nil
	}); err != nil {
		return nil, err
	}
	return s, nil
}

func sortedKeys(m map[string]*byteAgg) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func writeAggTable(w io.Writer, title, keyName string, m map[string]*byteAgg) {
	if len(m) == 0 {
		return
	}
	fmt.Fprintf(w, "\n== %s ==\n", title)
	fmt.Fprintf(w, "%-14s %9s %14s %14s %14s %14s\n", keyName, "flights", "down_bytes", "up_bytes", "up_bytes_est", "wasted_bytes")
	for _, k := range sortedKeys(m) {
		a := m[k]
		fmt.Fprintf(w, "%-14s %9d %14d %14d %14d %14d\n", k, a.flights, a.down, a.up, a.upEst, a.wasted)
	}
}

// Write renders the deterministic report: overview, waste/bytes
// breakdowns, critical-path analysis, histograms, and (for hierarchy
// traces) backhaul stats. topClients bounds the per-client table.
func (s *Summary) Write(w io.Writer, topClients int) {
	fmt.Fprintf(w, "== overview ==\n")
	for _, k := range []string{obs.KindFlight, obs.KindCommit, obs.KindEdgeCommit,
		obs.KindGlobalArrive, obs.KindGlobalMerge, obs.KindDownSync, obs.KindLRU} {
		if n := s.kinds[k]; n > 0 {
			fmt.Fprintf(w, "spans %-13s %d\n", k, n)
		}
	}
	for _, oc := range []string{obs.OutcomeMerged, obs.OutcomeLateReused, obs.OutcomeLate,
		obs.OutcomeDropped, obs.OutcomeFailed} {
		if n := s.outcomes[oc]; n > 0 {
			fmt.Fprintf(w, "flights %-11s %d\n", oc, n)
		}
	}
	if s.trainSkipped > 0 {
		fmt.Fprintf(w, "train skipped       %d\n", s.trainSkipped)
	}

	fmt.Fprintf(w, "\n== bytes ==\n")
	fmt.Fprintf(w, "down %d  up %d  up_est %d\n", s.down, s.up, s.upEst)
	if s.down > 0 {
		fmt.Fprintf(w, "wasted down %d (%.1f%%)  wasted up %d\n",
			s.wastedDown, 100*float64(s.wastedDown)/float64(s.down), s.wastedUp)
	}
	if s.upEst > 0 && s.up > 0 {
		fmt.Fprintf(w, "estimate error (est-actual) %d\n", s.upEst-s.up)
	}
	if len(s.downPaths) > 0 {
		// Down bytes are the logical artifact size on every path; only
		// encoded-once dispatches paid a codec encode, and not-modified
		// ones moved no body at all.
		fmt.Fprintf(w, "downlink serving:")
		for _, p := range []string{obs.DownEncodedOnce, obs.DownReserved, obs.DownNotModified} {
			if n := s.downPaths[p]; n > 0 {
				fmt.Fprintf(w, "  %s %d", p, n)
			}
		}
		fmt.Fprintf(w, "\n")
	}

	writeAggTable(w, "by outcome", "outcome", s.byOutcome)
	writeAggTable(w, "by width", "width", s.byWidth)
	writeAggTable(w, "by codec", "codec", s.byCodec)

	if len(s.byClient) > 0 && topClients > 0 {
		type kv struct {
			c int
			a *byteAgg
		}
		rows := make([]kv, 0, len(s.byClient))
		for c, a := range s.byClient {
			rows = append(rows, kv{c, a})
		}
		sort.Slice(rows, func(i, j int) bool {
			a, b := rows[i], rows[j]
			if a.a.wasted != b.a.wasted {
				return a.a.wasted > b.a.wasted
			}
			if a.a.down+a.a.up != b.a.down+b.a.up {
				return a.a.down+a.a.up > b.a.down+b.a.up
			}
			return a.c < b.c
		})
		if len(rows) > topClients {
			rows = rows[:topClients]
		}
		fmt.Fprintf(w, "\n== top clients by wasted bytes (of %d seen) ==\n", len(s.byClient))
		fmt.Fprintf(w, "%-10s %9s %14s %14s %14s\n", "client", "flights", "down_bytes", "up_bytes", "wasted_bytes")
		for _, r := range rows {
			fmt.Fprintf(w, "%-10d %9d %14d %14d %14d\n", r.c, r.a.flights, r.a.down, r.a.up, r.a.wasted)
		}
	}

	fmt.Fprintf(w, "\n== critical path ==\n")
	fmt.Fprintf(w, "commits %d  stragglers past close %d\n", s.commits, s.stragglers)
	if s.critPhased > 0 {
		n := float64(s.critPhased)
		tot := s.critDown + s.critTrain + s.critUp
		fmt.Fprintf(w, "closing-flight phase means over %d commits: down %.3fs train %.3fs up %.3fs\n",
			s.critPhased, s.critDown/n, s.critTrain/n, s.critUp/n)
		if tot > 0 {
			fmt.Fprintf(w, "critical-path share: down %.1f%% train %.1f%% up %.1f%%\n",
				100*s.critDown/tot, 100*s.critTrain/tot, 100*s.critUp/tot)
		}
	}
	if len(s.slowest) > 0 {
		fmt.Fprintf(w, "\nslowest commits (by round duration):\n")
		fmt.Fprintf(w, "%-5s %-6s %12s %10s %7s %6s %5s %7s  %s\n",
			"edge", "round", "t", "dur", "merged", "late", "drop", "strag", "closed by")
		for _, r := range s.slowest {
			closer := "-"
			if r.closerClient >= 0 {
				closer = fmt.Sprintf("c%d %s", r.closerClient, r.closerOutcome)
				if r.closerTrain > 0 {
					closer += fmt.Sprintf(" (down %.1fs train %.1fs up %.1fs)",
						r.closerDown, r.closerTrain, r.closerUp)
				} else if r.closerTo > 0 {
					closer += fmt.Sprintf(" (%.1fs)", r.closerTo)
				}
			}
			fmt.Fprintf(w, "%-5d %-6d %12.3f %10.3f %7d %6d %5d %7d  %s\n",
				r.edge, r.round, r.t, r.dur, r.merged, r.late, r.dropped, r.stragglers, closer)
		}
	}

	if s.phased > 0 {
		n := float64(s.phased)
		fmt.Fprintf(w, "\n== phase means over %d fully-phased flights ==\n", s.phased)
		fmt.Fprintf(w, "down %.3fs  train %.3fs  up %.3fs\n", s.downSum/n, s.trainSum/n, s.upSum/n)
	}

	fmt.Fprintf(w, "\n== flight duration (virtual s) ==\n")
	s.durHist.write(w, "  ")
	if s.phased > 0 {
		fmt.Fprintf(w, "== down phase (virtual s) ==\n")
		s.downHist.write(w, "  ")
		fmt.Fprintf(w, "== train phase (virtual s) ==\n")
		s.trainHist.write(w, "  ")
		fmt.Fprintf(w, "== up phase (virtual s) ==\n")
		s.upHist.write(w, "  ")
	}
	fmt.Fprintf(w, "== staleness of merged/late-reused flights ==\n")
	s.staleHist.write(w, "  ")

	if len(s.backhauls) > 0 {
		fmt.Fprintf(w, "\n== hierarchy ==\n")
		fmt.Fprintf(w, "global merges %d  down-syncs %d\n", s.globalMerge, s.downSyncs)
		ids := make([]int, 0, len(s.backhauls))
		for id := range s.backhauls {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		fmt.Fprintf(w, "%-5s %9s %12s %12s\n", "edge", "commits", "mean_lag_s", "max_lag_s")
		for _, id := range ids {
			b := s.backhauls[id]
			fmt.Fprintf(w, "%-5d %9d %12.3f %12.3f\n", id, b.n, b.sum/float64(b.n), b.max)
		}
		fmt.Fprintf(w, "global-arrive staleness:\n")
		s.globalStale.write(w, "  ")
	}

	if s.lruMade > 0 || s.lruEvict > 0 {
		fmt.Fprintf(w, "\n== lru ==\n")
		fmt.Fprintf(w, "materialised %d  evicted %d  live %d\n",
			s.lruMade, s.lruEvict, s.lruMade-s.lruEvict)
	}
}
