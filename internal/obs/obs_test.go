package obs

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

func sampleFlight() Span {
	return Span{
		Kind: KindFlight, Time: 182.5, Start: 0, DownEnd: 12.5, TrainEnd: 170,
		End: 182.5, Client: 3, Sent: "M2", Got: "M2", Codec: "q8",
		DownBytes: 40000, UpBytes: 11000, UpBytesEst: 11000,
		Staleness: 1, Reward: 0.8, Outcome: OutcomeMerged,
	}
}

// The nil observer is the disabled state: every method must be safe and
// allocation-free so an untraced run pays nothing on the flight hot path.
func TestNilObserverZeroAlloc(t *testing.T) {
	var o *Observer
	s := sampleFlight()
	allocs := testing.AllocsPerRun(1000, func() {
		if o.Enabled() {
			t.Fatal("nil observer reports enabled")
		}
		o.Span(s)
		o.ExecDepth(1, -1)
		o.LRULive(42)
		_ = o.Metrics()
	})
	if allocs != 0 {
		t.Fatalf("nil observer path allocates %v per run, want 0", allocs)
	}
}

// BenchmarkNilObserverFlightPath is the acceptance benchmark: build a
// full flight span and emit it against a nil observer, as the engine's
// hot path would with no tracing attached. Must report 0 allocs/op.
func BenchmarkNilObserverFlightPath(b *testing.B) {
	var o *Observer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if o.Enabled() {
			s := sampleFlight()
			s.Client = i
			o.Span(s)
		}
		o.ExecDepth(1, 0)
		o.ExecDepth(-1, 1)
		o.ExecDepth(0, -1)
	}
}

func TestObserverFansOut(t *testing.T) {
	m := NewMetrics()
	var buf bytes.Buffer
	jw := NewJSONLWriter(&buf)
	o := NewObserver(m, jw)
	if !o.Enabled() {
		t.Fatal("observer with sinks reports disabled")
	}
	o.Span(sampleFlight())
	o.Span(Span{Kind: KindCommit, Time: 200, Client: -1, Round: 1, Merged: 1})
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d JSONL lines, want 2:\n%s", len(lines), buf.String())
	}
	if !strings.Contains(lines[0], `"kind":"flight"`) || !strings.Contains(lines[0], `"codec":"q8"`) {
		t.Fatalf("flight line missing fields: %s", lines[0])
	}
	if got := m.Flights.with(OutcomeMerged).Value(); got != 1 {
		t.Fatalf("merged flights counter = %d, want 1", got)
	}
	if got := m.Commits.with(KindCommit).Value(); got != 1 {
		t.Fatalf("commit counter = %d, want 1", got)
	}
	if got := m.DownBytes.with(DownEncodedOnce).Value(); got != 40000 {
		t.Fatalf("down bytes = %d, want 40000", got)
	}
}

func TestJSONLDeterministicBytes(t *testing.T) {
	spans := []Span{
		sampleFlight(),
		{Kind: KindLRU, Client: 7, Op: OpMaterialise},
		{Kind: KindCommit, Time: 360, Client: -1, Round: 2, Merged: 3, Dropped: 1},
	}
	render := func() string {
		var buf bytes.Buffer
		jw := NewJSONLWriter(&buf)
		for _, s := range spans {
			jw.Span(s)
		}
		if err := jw.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := render(), render()
	if a != b {
		t.Fatalf("JSONL rendering not byte-stable:\n%s\nvs\n%s", a, b)
	}
	if jw := NewJSONLWriter(io.Discard); jw.Count() != 0 {
		t.Fatal("fresh writer has nonzero count")
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(1, 10, 100)
	for _, v := range []float64{0.5, 1, 5, 10, 99, 1000} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	if got, want := h.Sum(), 0.5+1+5+10+99+1000; got != want {
		t.Fatalf("sum = %g, want %g", got, want)
	}
	// le semantics: 1 lands in the le=1 bucket, 10 in le=10.
	wantCounts := []int64{2, 2, 1, 1}
	for i, want := range wantCounts {
		if got := h.counts[i].Load(); got != want {
			t.Fatalf("bucket %d = %d, want %d", i, got, want)
		}
	}
}

func TestPrometheusExposition(t *testing.T) {
	m := NewMetrics()
	m.applySpan(sampleFlight())
	late := sampleFlight()
	late.Outcome = OutcomeLate
	late.DownPath = DownNotModified
	m.applySpan(late)
	m.applySpan(Span{Kind: KindCommit, Client: -1, Round: 1, Merged: 1})
	m.CodecTiming("q8", "encode", 11000, 0.002)
	m.HTTPRequest("train", 0.05, 40000, 11000)
	m.ExecQueued.Add(3)
	m.ExecQueued.Add(-1)

	var buf bytes.Buffer
	if err := m.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	checkPrometheusText(t, text)
	for _, want := range []string{
		`fl_flights_total{outcome="late"} 1`,
		`fl_flights_total{outcome="merged"} 1`,
		`fl_commits_total{kind="commit"} 1`,
		`fl_down_bytes_total{path="encoded-once"} 40000`,
		`fl_down_bytes_total{path="not-modified"} 40000`,
		"fl_exec_queued 2",
		`fl_codec_seconds_count{op="q8/encode"} 1`,
		`fl_codec_bytes_total{op="q8/encode"} 11000`,
		`fl_http_requests_total{route="train"} 1`,
		"fl_staleness_count 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("full exposition:\n%s", text)
	}
}

// checkPrometheusText is a structural parser for the text exposition
// format: every non-comment line must be `name{labels} value` or
// `name value`, every series must follow a # TYPE for its family, and
// histogram bucket counts must be cumulative (monotone in le).
func checkPrometheusText(t *testing.T, text string) {
	t.Helper()
	typed := map[string]string{}
	var lastBucketSeries string
	var lastBucketCum float64
	for _, line := range strings.Split(strings.TrimSuffix(text, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			typed[parts[2]] = parts[3]
			continue
		}
		if line == "" {
			t.Fatal("blank line in exposition")
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		family := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if typed[family] == "" && strings.HasSuffix(name, suf) {
				family = strings.TrimSuffix(name, suf)
			}
		}
		if typed[family] == "" {
			t.Fatalf("series %q has no preceding # TYPE", line)
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			t.Fatalf("series line has no value: %q", line)
		}
		// Histogram buckets must be cumulative within one series.
		if strings.Contains(line, "_bucket{") {
			cut := strings.LastIndex(line, ",le=")
			if cut < 0 {
				cut = strings.Index(line, "{")
			}
			series := line[:cut]
			v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
			if err != nil {
				t.Fatalf("bad bucket value in %q: %v", line, err)
			}
			if series == lastBucketSeries && v < lastBucketCum {
				t.Fatalf("bucket counts not monotone at %q", line)
			}
			lastBucketSeries, lastBucketCum = series, v
		}
	}
}

func TestMetricsHTTPHandler(t *testing.T) {
	m := NewMetrics()
	m.applySpan(sampleFlight())
	srv := httptest.NewServer(Handler(m, true))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	checkPrometheusText(t, string(body))

	// pprof index mounted when opted in.
	resp, err = http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index status %d", resp.StatusCode)
	}

	// ...and absent when not.
	srv2 := httptest.NewServer(Handler(m, false))
	defer srv2.Close()
	resp, err = http.Get(srv2.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof without opt-in: status %d, want 404", resp.StatusCode)
	}
}

func TestProgressSink(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgressSink(&buf)
	p.Span(sampleFlight())
	p.Span(Span{Kind: KindCommit, Time: 200, Client: -1, Round: 1, Merged: 1})
	p.Span(Span{Kind: KindGlobalMerge, Time: 300, Client: -1, Round: 2, Merged: 4})
	out := buf.String()
	if !strings.Contains(out, "commit r=1") || !strings.Contains(out, "flights=1") {
		t.Fatalf("commit line missing: %q", out)
	}
	if !strings.Contains(out, "global r=2 merged=4") {
		t.Fatalf("global line missing: %q", out)
	}
}
