package obs

import (
	"errors"
	"testing"
)

// failWriter accepts the first ok writes, then fails everything; Close
// fails too, with a distinct error, to pin the precedence in Close.
type failWriter struct {
	ok       int
	writes   int
	closed   bool
	writeErr error
	closeErr error
}

func (f *failWriter) Write(p []byte) (int, error) {
	f.writes++
	if f.writes > f.ok {
		return 0, f.writeErr
	}
	return len(p), nil
}

func (f *failWriter) Close() error {
	f.closed = true
	return f.closeErr
}

// TestJSONLWriterSurfacesWriteErrors pins the error path: a failing sink
// makes the first error sticky, later spans are counted as dropped rather
// than silently vanishing, and Close returns the root-cause write error —
// not the close error that followed it.
func TestJSONLWriterSurfacesWriteErrors(t *testing.T) {
	fw := &failWriter{writeErr: errors.New("disk full"), closeErr: errors.New("close failed")}
	jw := NewJSONLWriter(fw)

	// The encoder writes through a 64 KiB bufio buffer, so force the spill
	// with more span bytes than the buffer holds.
	span := Span{Kind: KindFlight, Client: 1, Outcome: OutcomeMerged}
	for i := 0; jw.Err() == nil && i < 10_000; i++ {
		span.Flight = int64(i + 1)
		jw.Span(span)
	}
	if jw.Err() == nil {
		t.Fatal("no sticky error after overflowing a failing writer")
	}
	if !errors.Is(jw.Err(), fw.writeErr) {
		t.Fatalf("Err() = %v, want the underlying write error", jw.Err())
	}
	before := jw.Dropped()
	jw.Span(span)
	if jw.Dropped() != before+1 {
		t.Fatalf("Dropped() = %d after a post-error span, want %d", jw.Dropped(), before+1)
	}
	if err := jw.Record(WallRecord{Kind: WallKind}); !errors.Is(err, fw.writeErr) {
		t.Fatalf("Record after write error = %v, want the sticky error", err)
	}
	if err := jw.Close(); !errors.Is(err, fw.writeErr) {
		t.Fatalf("Close = %v, want the original write error to take precedence", err)
	}
	if !fw.closed {
		t.Fatal("Close did not close the underlying writer")
	}
}

// TestJSONLWriterCloseError pins that a clean stream still surfaces a
// failing Close of the underlying writer.
func TestJSONLWriterCloseError(t *testing.T) {
	fw := &failWriter{ok: 1 << 30, closeErr: errors.New("close failed")}
	jw := NewJSONLWriter(fw)
	jw.Span(Span{Kind: KindFlight})
	if err := jw.Close(); !errors.Is(err, fw.closeErr) {
		t.Fatalf("Close = %v, want the underlying close error", err)
	}
	if jw.Dropped() != 0 {
		t.Fatalf("Dropped() = %d on a clean stream", jw.Dropped())
	}
}
