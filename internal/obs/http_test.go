package obs

import (
	"io"
	"net"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"
)

// TestServeShutdown pins the Serve lifecycle: the endpoint scrapes while
// live, shutdown returns cleanly, the port is actually released, and the
// serve goroutine is joined rather than leaked.
func TestServeShutdown(t *testing.T) {
	before := runtime.NumGoroutine()
	m := NewMetrics()
	m.applySpan(sampleFlight())
	addr, shutdown, err := Serve("127.0.0.1:0", m, false)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "fl_flights_total") {
		t.Fatalf("scrape missing fl_flights_total:\n%s", body)
	}

	if err := shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// The listener is closed: new connections must be refused.
	if conn, err := net.DialTimeout("tcp", addr, time.Second); err == nil {
		conn.Close()
		t.Fatal("listener still accepting after shutdown")
	}
	// The serve goroutine is joined; allow idle HTTP keep-alive workers a
	// moment to unwind before comparing.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before+1 {
		t.Fatalf("goroutines grew from %d to %d across Serve+shutdown", before, n)
	}

	// A second Serve on an ephemeral port must coexist and shut down too.
	_, shutdown2, err := Serve("127.0.0.1:0", m, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := shutdown2(); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
}
