package obs

import (
	"context"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler serves the registry at /metrics in Prometheus text format.
// With withPprof, the standard net/http/pprof endpoints are mounted
// under /debug/pprof/ — opt-in because profile endpoints on a
// million-client box are a foot-gun to expose by default.
func Handler(m *Metrics, withPprof bool) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		m.WritePrometheus(w)
	})
	if withPprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// serveShutdownTimeout bounds how long the shutdown func waits for
// in-flight scrapes before force-closing them.
const serveShutdownTimeout = 5 * time.Second

// Serve listens on addr (e.g. "127.0.0.1:9090", port 0 for ephemeral)
// and serves Handler in a background goroutine. It returns the bound
// address and a shutdown func. The caller's run is never blocked on the
// listener: serve errors after a successful bind are discarded.
//
// The shutdown func drains gracefully (http.Server.Shutdown with a short
// timeout, then force-close) and joins the serve goroutine before
// returning, so tests and cmds that call it leak neither the listener
// nor the goroutine.
func Serve(addr string, m *Metrics, withPprof bool) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: Handler(m, withPprof)}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	shutdown := func() error {
		ctx, cancel := context.WithTimeout(context.Background(), serveShutdownTimeout)
		defer cancel()
		err := srv.Shutdown(ctx)
		if err != nil {
			// In-flight requests outlived the grace window; cut them off.
			srv.Close()
		}
		if serveErr := <-done; serveErr != nil && serveErr != http.ErrServerClosed && err == nil {
			err = serveErr
		}
		return err
	}
	return ln.Addr().String(), shutdown, nil
}
