package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler serves the registry at /metrics in Prometheus text format.
// With withPprof, the standard net/http/pprof endpoints are mounted
// under /debug/pprof/ — opt-in because profile endpoints on a
// million-client box are a foot-gun to expose by default.
func Handler(m *Metrics, withPprof bool) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		m.WritePrometheus(w)
	})
	if withPprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// Serve listens on addr (e.g. "127.0.0.1:9090", port 0 for ephemeral)
// and serves Handler in a background goroutine. It returns the bound
// address and a shutdown func. The caller's run is never blocked on the
// listener: serve errors after a successful bind are discarded.
func Serve(addr string, m *Metrics, withPprof bool) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: Handler(m, withPprof)}
	go srv.Serve(ln)
	return ln.Addr().String(), srv.Close, nil
}
