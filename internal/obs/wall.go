package obs

// WallRecord is one wall-clock observation of a fednet HTTP exchange,
// keyed by the flight ID the server threads through the Fednet-Flight
// request header. Wall records live in a *separate* JSONL stream from
// spans — they are real-time measurements and therefore nondeterministic,
// and mixing them into a span trace would break its byte-identity
// guarantee. `fltrace join` matches them to flight spans by ID.
type WallRecord struct {
	Kind string `json:"kind"` // always "wall"
	// Flight is the correlation key (0 when the request carried no
	// header, e.g. a negotiate round trip).
	Flight int64 `json:"flight,omitempty"`
	// Side is which process measured: "server" (HTTPTrainer dispatch,
	// includes network + agent time) or "agent" (route handler only).
	Side string `json:"side"`
	// Route is the path class ("train", "negotiate").
	Route     string  `json:"route"`
	Client    int     `json:"client"`
	Instance  string  `json:"instance,omitempty"`
	Seconds   float64 `json:"seconds"`
	ReqBytes  int64   `json:"req_bytes,omitempty"`
	RespBytes int64   `json:"resp_bytes,omitempty"`
	Status    int     `json:"status,omitempty"`
}

// WallKind is the Kind value of every WallRecord line; the trace reader
// uses it to skip wall records when a combined stream is scanned.
const WallKind = "wall"
