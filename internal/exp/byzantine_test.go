package exp

import (
	"strings"
	"testing"

	"adaptivefl/internal/models"
)

// byzScale is the byzantine experiment's CI fidelity: small enough for a
// smoke run, large enough for the attack to separate the policies. K=7
// of 15 keeps the per-round attacker fraction close to the population's
// 30% — at K=5 the sampling variance lets single rounds run 60%
// adversarial, past what any aggregation rule can absorb.
func byzScale() Scale {
	return Scale{
		Name: "byz", Clients: 15, K: 7, Rounds: 10, EvalEvery: 2,
		SamplesPerClient: 20, TestSamples: 150, WidthScale: 0.10,
		LocalEpochs: 1, BatchSize: 10, LR: 0.10, Momentum: 0.5,
		Parallelism: 7, Seed: 1,
	}
}

// TestByzantineSeparation is the PR's acceptance experiment: under a 30%
// sign-flip/scale attack, at least one robust policy must stay within 3
// accuracy points of the attack-free baseline while the plain weighted
// mean (FedAvg) degrades by more than 10 points — and every row must be
// bit-deterministic across same-seed runs.
func TestByzantineSeparation(t *testing.T) {
	if testing.Short() {
		t.Skip("byzantine separation needs full training rounds")
	}
	sc := byzScale()
	cell := Cell{"cifar10", models.ResNet18, IID}
	rows, err := ByzantineRows(cell, sc)
	if err != nil {
		t.Fatal(err)
	}
	base, fedavg := rows[0], rows[1]
	t.Logf("attack-free baseline: %.2f%%", base.Full*100)
	for _, r := range rows[1:] {
		t.Logf("%-18s  full=%.2f%%  Δ=%+.2f  rejected=%d clipped=%d hash=%016x",
			r.Label, r.Full*100, (r.Full-base.Full)*100, r.Rejected, r.Clipped, r.Hash)
	}
	if drop := (base.Full - fedavg.Full) * 100; drop <= 10 {
		t.Errorf("FedAvg under attack lost only %.2f points (want > 10) — the attack lacks teeth", drop)
	}
	bestGap, bestLabel := 1e9, ""
	for _, r := range rows[2:] {
		if gap := (base.Full - r.Full) * 100; gap < bestGap {
			bestGap, bestLabel = gap, r.Label
		}
	}
	if bestGap > 3 {
		t.Errorf("best robust policy (%s) is %.2f points under the baseline (want <= 3)", bestLabel, bestGap)
	}
	t.Logf("best robust policy: %s (%.2f points under baseline)", bestLabel, bestGap)

	// The clip stage must actually ledger clips under attack (scale-attack
	// deltas are enormous), and no honest-path row may reject anything:
	// sign-flip and scale uploads are finite, so the hardened decode path
	// has nothing to refuse here.
	clip := rows[4]
	if clip.Clipped == 0 {
		t.Error("clip+trim row ledgered no clips under a scale attack")
	}

	// Bit-determinism: re-running a row at the same seed must reproduce
	// the final weights hash exactly.
	again := rows[3]
	if err := runByzantineRow(cell, sc, &again); err != nil {
		t.Fatal(err)
	}
	if again.Hash != rows[3].Hash {
		t.Errorf("same-seed re-run hash %016x != %016x", again.Hash, rows[3].Hash)
	}
	if again.Rejected != rows[3].Rejected || again.Clipped != rows[3].Clipped {
		t.Errorf("same-seed re-run ledger (%d,%d) != (%d,%d)",
			again.Rejected, again.Clipped, rows[3].Rejected, rows[3].Clipped)
	}
}

// TestTableByzantineOutput smoke-checks the printed table at a tiny scale
// — format only, no separation claims.
func TestTableByzantineOutput(t *testing.T) {
	sc := byzScale()
	sc.Rounds, sc.EvalEvery, sc.Clients, sc.K = 2, 1, 8, 3
	sc.Parallelism = 3
	var sb strings.Builder
	if err := TableByzantine(&sb, sc); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"Byzantine resilience", DefaultByzantineAttack,
		"mean (attack-free)", "mean (FedAvg)", "trimmed mean", "multi-Krum", "clip+trim",
		"weights-hash",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("TableByzantine output missing %q:\n%s", want, out)
		}
	}
}

// TestScaleAdversaryConflict verifies the two adversary channels
// (Scale.Adversary and a ';adversary' trace suffix) cannot disagree
// silently.
func TestScaleAdversaryConflict(t *testing.T) {
	sc := byzScale()
	sc.Adversary = "signflip:frac=0.3"
	sc.Trace = "always;scale:frac=0.2"
	fed, err := BuildFederation(models.ResNet18, "cifar10", IID, DefaultProportions, sc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewRunner("AdaptiveFL", fed, sc); err == nil {
		t.Fatal("conflicting adversary specs accepted")
	}
	sc.Adversary = ""
	if _, err := NewRunner("AdaptiveFL", fed, sc); err != nil {
		t.Fatalf("trace-borne adversary rejected: %v", err)
	}
	sc.Trace = "always;sign-flip:frac=bogus"
	if _, err := NewRunner("AdaptiveFL", fed, sc); err == nil {
		t.Fatal("malformed trace-borne adversary accepted")
	}
}
