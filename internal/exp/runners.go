package exp

import (
	"fmt"

	"adaptivefl/internal/baselines"
	"adaptivefl/internal/core"
	"adaptivefl/internal/eval"
	"adaptivefl/internal/prune"
	"adaptivefl/internal/rl"
	"adaptivefl/internal/sched"
	"adaptivefl/internal/testbed"
	"adaptivefl/internal/wire"
)

// NewRunner constructs an algorithm runner by name. Supported names:
// All-Large, Decoupled, HeteroFL, ScaleFL, AdaptiveFL, plus the Figure 5
// ablation variants AdaptiveFL+Greedy / +Random / +C / +S / +CS and the
// Table 4 coarse variant AdaptiveFL-Coarse.
func NewRunner(name string, fed *Federation, sc Scale) (baselines.Runner, error) {
	setup := baselines.Setup{
		Model:       fed.Model,
		Clients:     fed.Clients,
		K:           sc.K,
		Train:       sc.TrainConfig(),
		Seed:        sc.Seed + 101,
		Parallelism: sc.Parallelism,
	}
	adaptiveRL := func(mode rl.Mode, greedy bool, p int, rlCfg rl.Config, label string) (baselines.Runner, error) {
		var codec wire.Codec
		if sc.Codec != "" {
			var err error
			if codec, err = wire.ByTag(sc.Codec); err != nil {
				return nil, err
			}
		}
		trace, adv, err := sc.SplitAdversary()
		if err != nil {
			return nil, err
		}
		if sc.Trainer != nil {
			// A real transport owns the wire encoding end to end; applying
			// the codec in-process as well would encode twice.
			codec = nil
		}
		if m := sc.Observer.Metrics(); m != nil {
			// Timed wrapping reports wall-clock codec latency to the metrics
			// registry only — the span stream and the simulation never see it.
			codec = wire.Timed(codec, m)
		}
		a, err := baselines.NewAdaptive(core.Config{
			Model:           fed.Model,
			Pool:            prune.Config{P: p},
			RL:              rlCfg,
			Mode:            mode,
			Greedy:          greedy,
			ClientsPerRound: sc.K,
			Train:           sc.TrainConfig(),
			Seed:            sc.Seed + 101,
			Parallelism:     sc.Parallelism,
			Trainer:         sc.Trainer,
			Codec:           codec,
			EstimateUpBytes: sc.EstimateUp,
			Observer:        sc.Observer,
			Agg:             sc.Agg,
			Adversary:       adv,
		}, fed.Clients, label)
		if err != nil || sc.Sched == "" {
			return a, err
		}
		// The engine parses the trace itself — hand it the spec with the
		// adversary part already stripped.
		s := sc
		s.Trace = trace
		return schedRunner(a, fed, s)
	}
	adaptive := func(mode rl.Mode, greedy bool, p int, label string) (baselines.Runner, error) {
		return adaptiveRL(mode, greedy, p, rl.Config{}, label)
	}
	switch name {
	case "AdaptiveFL+LiteralRL":
		// DESIGN.md §5 deviation ablation: apply Algorithm 1 line 18
		// exactly as printed (the p−1 bonus lands on the L_1 row).
		return adaptiveRL(rl.ModeCS, false, 3, rl.Config{LiteralL1Bonus: true}, name)
	case "All-Large":
		return baselines.NewAllLarge(setup)
	case "Decoupled":
		return baselines.NewDecoupled(setup, fed.Pool)
	case "HeteroFL":
		return baselines.NewHeteroFL(setup)
	case "ScaleFL":
		return baselines.NewScaleFL(setup)
	case "AdaptiveFL", "AdaptiveFL+CS":
		return adaptive(rl.ModeCS, false, 3, name)
	case "AdaptiveFL+C":
		return adaptive(rl.ModeC, false, 3, name)
	case "AdaptiveFL+S":
		return adaptive(rl.ModeS, false, 3, name)
	case "AdaptiveFL+Random":
		return adaptive(rl.ModeRandom, false, 3, name)
	case "AdaptiveFL+Greedy":
		return adaptive(rl.ModeRandom, true, 3, name)
	case "AdaptiveFL-Coarse":
		return adaptive(rl.ModeCS, false, 1, name)
	}
	return nil, fmt.Errorf("exp: unknown algorithm %q", name)
}

// schedRunner wraps an AdaptiveFL runner with the event-driven scheduler:
// the Table 5 platform prices every dispatch, sc.Trace shapes per-client
// availability (weak-class devices are the straggler spec's targets), and
// sc.Sched picks the aggregation policy.
func schedRunner(a *baselines.Adaptive, fed *Federation, sc Scale) (baselines.Runner, error) {
	policy, err := sched.ParsePolicy(sc.Sched)
	if err != nil {
		return nil, err
	}
	sim, err := testbed.NewSim(testbed.Table5Platform())
	if err != nil {
		return nil, err
	}
	weak := func(c int) bool { return fed.Clients[c].Device.Class == core.Weak }
	trace, err := sched.ParseTrace(sc.Trace, sc.Seed+909, weak)
	if err != nil {
		return nil, err
	}
	eng, err := sched.New(a.Srv, sim, trace, sched.Config{
		Policy:      policy,
		K:           sc.K,
		Epochs:      sc.LocalEpochs,
		Parallelism: sc.Parallelism,
	})
	if err != nil {
		return nil, err
	}
	return baselines.NewSchedAdaptive(a, eng, policy), nil
}

// RunCurve advances a runner for the scale's rounds, evaluating every
// EvalEvery rounds (and at the final round), and returns the curve with
// series "full", "avg" and the per-level submodels.
func RunCurve(r baselines.Runner, fed *Federation, sc Scale) (*eval.Curve, error) {
	curve := &eval.Curve{}
	record := func(round int) error {
		acc, err := r.Evaluate(fed.Test, 64)
		if err != nil {
			return err
		}
		point := map[string]float64{}
		for k, v := range acc {
			point[k] = v
		}
		if avg := baselines.AvgOf(acc); avg > 0 {
			point["avg"] = avg
		}
		curve.Add(round, point)
		return nil
	}
	for round := 1; round <= sc.Rounds; round++ {
		if err := r.Round(); err != nil {
			return nil, err
		}
		if round%sc.EvalEvery == 0 || round == sc.Rounds {
			if err := record(round); err != nil {
				return nil, err
			}
		}
	}
	return curve, nil
}

// BestOf returns the best recorded value of a series — the convention the
// paper's tables use (accuracy of the best global model over training).
func BestOf(curve *eval.Curve, series string) float64 {
	best := 0.0
	for _, p := range curve.Points {
		if v, ok := p.Acc[series]; ok && v > best {
			best = v
		}
	}
	return best
}
