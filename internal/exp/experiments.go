package exp

import (
	"fmt"
	"io"

	"adaptivefl/internal/baselines"
	"adaptivefl/internal/core"
	"adaptivefl/internal/eval"
	"adaptivefl/internal/models"
	"adaptivefl/internal/prune"
	"adaptivefl/internal/testbed"
)

// Table1 regenerates the paper's Table 1: the split settings of full-scale
// VGG16 with p = 3, with the published values printed alongside.
func Table1(w io.Writer) error {
	mcfg := models.Config{Arch: models.VGG16, NumClasses: 10}
	pool, err := prune.BuildPool(mcfg, prune.Config{P: 3})
	if err != nil {
		return err
	}
	paper := map[string][2]float64{
		"L1": {33.65, 333.22}, "M1": {16.81, 272.17}, "M2": {15.41, 239.95},
		"M3": {14.84, 203.41}, "S1": {8.39, 239.00}, "S2": {6.48, 191.31}, "S3": {5.67, 139.07},
	}
	full := float64(pool.Largest().Size)
	fmt.Fprintln(w, "Table 1 — split settings for VGG16 (p=3)")
	fmt.Fprintln(w, "level  r_w    I   params(M)  paper  MACs(M)  paper   ratio")
	for i := len(pool.Members) - 1; i >= 0; i-- {
		m := pool.Members[i]
		iStr := fmt.Sprintf("%3d", m.I)
		if m.Level == prune.LevelL {
			iStr = "N/A"
		}
		p := paper[m.Name()]
		fmt.Fprintf(w, "%-5s  %.2f  %s  %9.2f  %5.2f  %7.2f  %6.2f  %.2f\n",
			m.Name(), m.Rw, iStr,
			float64(m.Size)/1e6, p[0],
			float64(m.MACs)/1e6, p[1],
			float64(m.Size)/full)
	}
	return nil
}

// Cell identifies one Table 2 cell.
type Cell struct {
	Dataset string
	Arch    models.Arch
	Dist    Dist
}

// CellResult is the avg/full outcome of one algorithm on one cell.
type CellResult struct {
	Algorithm string
	Avg, Full float64
	Curve     *eval.Curve
}

// RunCell executes one algorithm on one experiment cell.
func RunCell(cell Cell, alg string, proportions [3]float64, sc Scale) (*CellResult, error) {
	fed, err := BuildFederation(cell.Arch, cell.Dataset, cell.Dist, proportions, sc)
	if err != nil {
		return nil, err
	}
	r, err := NewRunner(alg, fed, sc)
	if err != nil {
		return nil, err
	}
	curve, err := RunCurve(r, fed, sc)
	if err != nil {
		return nil, err
	}
	return &CellResult{
		Algorithm: alg,
		Avg:       BestOf(curve, "avg"),
		Full:      BestOf(curve, "full"),
		Curve:     curve,
	}, nil
}

// DefaultProportions is the paper's 4:3:3 weak:medium:strong mix.
var DefaultProportions = [3]float64{4, 3, 3}

// Table2Algorithms lists the five compared methods in paper order.
var Table2Algorithms = []string{"All-Large", "Decoupled", "HeteroFL", "ScaleFL", "AdaptiveFL"}

// Table2 regenerates (a slice of) the paper's Table 2. Which cells run is
// caller-controlled to keep CPU budgets manageable.
func Table2(w io.Writer, cells []Cell, algs []string, sc Scale) error {
	fmt.Fprintf(w, "Table 2 — test accuracy (%%), scale=%s\n", sc.Name)
	for _, cell := range cells {
		fmt.Fprintf(w, "\n%s / %s / %s\n", cell.Dataset, cell.Arch, cell.Dist)
		fmt.Fprintln(w, "algorithm     avg     full")
		for _, alg := range algs {
			res, err := RunCell(cell, alg, DefaultProportions, sc)
			if err != nil {
				return fmt.Errorf("cell %+v alg %s: %w", cell, alg, err)
			}
			avgStr := "   -"
			if res.Avg > 0 {
				avgStr = fmt.Sprintf("%5.2f", res.Avg*100)
			}
			fmt.Fprintf(w, "%-12s %s   %5.2f\n", alg, avgStr, res.Full*100)
		}
	}
	return nil
}

// Figure2 regenerates the learning-curve comparison (CIFAR-10/100 ×
// IID/α=0.3 on VGG16): one CSV block of "avg" accuracy per setting.
func Figure2(w io.Writer, sc Scale) error {
	algs := []string{"Decoupled", "HeteroFL", "ScaleFL", "AdaptiveFL"}
	for _, cell := range []Cell{
		{"cifar10", models.VGG16, IID},
		{"cifar100", models.VGG16, IID},
		{"cifar10", models.VGG16, Dir03},
		{"cifar100", models.VGG16, Dir03},
	} {
		fmt.Fprintf(w, "\nFigure 2 — %s %s %s (avg accuracy per round)\n", cell.Dataset, cell.Arch, cell.Dist)
		merged := &eval.Curve{}
		for _, alg := range algs {
			res, err := RunCell(cell, alg, DefaultProportions, sc)
			if err != nil {
				return err
			}
			for _, p := range res.Curve.Points {
				v, ok := p.Acc["avg"]
				if !ok {
					v = p.Acc["full"]
				}
				merged.Add(p.Round, map[string]float64{alg: v})
			}
		}
		fmt.Fprint(w, collate(merged).CSV())
	}
	return nil
}

// collate merges points sharing a round into single rows.
func collate(c *eval.Curve) *eval.Curve {
	byRound := map[int]map[string]float64{}
	var order []int
	for _, p := range c.Points {
		m, ok := byRound[p.Round]
		if !ok {
			m = map[string]float64{}
			byRound[p.Round] = m
			order = append(order, p.Round)
		}
		for k, v := range p.Acc {
			m[k] = v
		}
	}
	out := &eval.Curve{}
	for _, r := range order {
		out.Add(r, byRound[r])
	}
	return out
}

// Figure3 regenerates the per-level submodel comparison (0.25×/0.5×/1.0×)
// on CIFAR-10 VGG16 IID for the three heterogeneous methods.
func Figure3(w io.Writer, sc Scale) error {
	fmt.Fprintln(w, "Figure 3 — submodel accuracy (%), cifar10/vgg16/iid")
	fmt.Fprintln(w, "algorithm    S(0.25x)  M(0.5x)  L(1.0x)")
	cell := Cell{"cifar10", models.VGG16, IID}
	for _, alg := range []string{"HeteroFL", "ScaleFL", "AdaptiveFL"} {
		res, err := RunCell(cell, alg, DefaultProportions, sc)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-12s %8.2f %8.2f %8.2f\n", alg,
			BestOf(res.Curve, "S1")*100, BestOf(res.Curve, "M1")*100, BestOf(res.Curve, "L1")*100)
	}
	return nil
}

// Figure4 regenerates the client-scalability sweep (K = population sizes,
// CIFAR-10 ResNet18 α=0.6): final "avg" accuracy per algorithm per K.
func Figure4(w io.Writer, populations []int, sc Scale) error {
	algs := []string{"HeteroFL", "ScaleFL", "AdaptiveFL"}
	fmt.Fprintln(w, "Figure 4 — scalability on cifar10/resnet18/dir0.6 (best avg %)")
	fmt.Fprintf(w, "%-12s", "algorithm")
	for _, n := range populations {
		fmt.Fprintf(w, "  K=%-4d", n)
	}
	fmt.Fprintln(w)
	type key struct {
		alg string
		n   int
	}
	resCache := map[key]float64{}
	for _, n := range populations {
		s := sc
		s.Clients = n
		s.K = n / 10
		if s.K < 2 {
			s.K = 2
		}
		if s.Parallelism > s.K {
			s.Parallelism = s.K
		}
		cell := Cell{"cifar10", models.ResNet18, Dir06}
		for _, alg := range algs {
			res, err := RunCell(cell, alg, DefaultProportions, s)
			if err != nil {
				return err
			}
			best := res.Avg
			if best == 0 {
				best = res.Full
			}
			resCache[key{alg, n}] = best
		}
	}
	for _, alg := range algs {
		fmt.Fprintf(w, "%-12s", alg)
		for _, n := range populations {
			fmt.Fprintf(w, "  %6.2f", resCache[key{alg, n}]*100)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Table3 regenerates the device-proportion sweep on CIFAR-10 VGG16 IID.
func Table3(w io.Writer, sc Scale) error {
	props := []struct {
		name string
		p    [3]float64
	}{
		{"4:3:3", [3]float64{4, 3, 3}},
		{"8:1:1", [3]float64{8, 1, 1}},
		{"1:8:1", [3]float64{1, 8, 1}},
		{"1:1:8", [3]float64{1, 1, 8}},
	}
	algs := []string{"All-Large", "HeteroFL", "ScaleFL", "AdaptiveFL"}
	fmt.Fprintln(w, "Table 3 — performance under device proportions (cifar10/vgg16/iid, best avg/full %)")
	fmt.Fprintf(w, "%-12s", "algorithm")
	for _, pr := range props {
		fmt.Fprintf(w, "  %14s", pr.name)
	}
	fmt.Fprintln(w)
	cell := Cell{"cifar10", models.VGG16, IID}
	for _, alg := range algs {
		fmt.Fprintf(w, "%-12s", alg)
		for _, pr := range props {
			res, err := RunCell(cell, alg, pr.p, sc)
			if err != nil {
				return err
			}
			if res.Avg > 0 {
				fmt.Fprintf(w, "  %6.2f/%6.2f", res.Avg*100, res.Full*100)
			} else {
				fmt.Fprintf(w, "       -/%6.2f", res.Full*100)
			}
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Table4 regenerates the fine- vs coarse-grained pruning ablation: full
// accuracy of AdaptiveFL with p=3 against p=1.
func Table4(w io.Writer, cells []Cell, sc Scale) error {
	fmt.Fprintln(w, "Table 4 — ablation of fine-grained pruning (best full %)")
	fmt.Fprintln(w, "dataset/arch/dist           coarse(p=1)  fine(p=3)")
	for _, cell := range cells {
		coarse, err := RunCell(cell, "AdaptiveFL-Coarse", DefaultProportions, sc)
		if err != nil {
			return err
		}
		fine, err := RunCell(cell, "AdaptiveFL", DefaultProportions, sc)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-26s  %10.2f  %9.2f (%+.2f)\n",
			fmt.Sprintf("%s/%s/%s", cell.Dataset, cell.Arch, cell.Dist),
			coarse.Full*100, fine.Full*100, (fine.Full-coarse.Full)*100)
	}
	return nil
}

// Figure5 regenerates the selection-strategy ablation on CIFAR-100
// ResNet18 IID: communication waste and best accuracy per variant.
func Figure5(w io.Writer, sc Scale) error {
	variants := []string{"AdaptiveFL+Greedy", "AdaptiveFL+Random", "AdaptiveFL+C", "AdaptiveFL+S", "AdaptiveFL+CS"}
	fmt.Fprintln(w, "Figure 5 — RL client-selection ablation (cifar100/resnet18/iid)")
	fmt.Fprintln(w, "variant             waste(%)  best-avg(%)  best-full(%)")
	cell := Cell{"cifar100", models.ResNet18, IID}
	for _, alg := range variants {
		fed, err := BuildFederation(cell.Arch, cell.Dataset, cell.Dist, DefaultProportions, sc)
		if err != nil {
			return err
		}
		r, err := NewRunner(alg, fed, sc)
		if err != nil {
			return err
		}
		curve, err := RunCurve(r, fed, sc)
		if err != nil {
			return err
		}
		waste := 0.0
		if a, ok := r.(*baselines.Adaptive); ok {
			waste = a.Waste()
		}
		fmt.Fprintf(w, "%-18s  %8.2f  %11.2f  %12.2f\n",
			alg, waste*100, BestOf(curve, "avg")*100, BestOf(curve, "full")*100)
	}
	return nil
}

// Figure6 regenerates the simulated test-bed experiment: Widar-like data
// and MobileNetV2 on the Table 5 platform (17 devices, 10 per round),
// reporting accuracy against simulated wall-clock seconds.
func Figure6(w io.Writer, sc Scale) error {
	s := sc
	s.Clients = 17
	s.K = 10
	if s.Parallelism > s.K {
		s.Parallelism = s.K
	}
	// Device mix per Table 5: 4 weak Pi, 10 medium Nano, 3 strong Xavier.
	props := [3]float64{4, 10, 3}
	fmt.Fprintln(w, "Figure 6 — simulated test-bed (widar/mobilenetv2, 17 devices, Table 5)")
	fmt.Fprintln(w, "algorithm    round  sim-time(s)  full-acc(%)")
	for _, alg := range []string{"HeteroFL", "ScaleFL", "AdaptiveFL"} {
		fedRun, err := BuildFederation(models.MobileNetV2, "widar", Natural, props, s)
		if err != nil {
			return err
		}
		r, err := NewRunner(alg, fedRun, s)
		if err != nil {
			return err
		}
		simRun, err := testbed.NewSim(testbed.Table5Platform())
		if err != nil {
			return err
		}
		classOf := func(id int) core.DeviceClass { return fedRun.Clients[id].Device.Class }
		samplesOf := func(id int) int { return fedRun.Clients[id].Data.Len() }
		for round := 1; round <= s.Rounds; round++ {
			if err := r.Round(); err != nil {
				return err
			}
			if a, ok := r.(*baselines.Adaptive); ok {
				stats := a.Srv.Stats()
				simRun.Advance(simRun.RoundTime(stats[len(stats)-1], classOf, samplesOf, s.LocalEpochs))
			} else {
				simRun.Advance(staticRoundTime(simRun, fedRun, alg, s))
			}
			if round%s.EvalEvery == 0 || round == s.Rounds {
				acc, err := r.Evaluate(fedRun.Test, 64)
				if err != nil {
					return err
				}
				fmt.Fprintf(w, "%-12s %5d  %11.1f  %10.2f\n", alg, round, simRun.Clock(), acc["full"]*100)
			}
		}
	}
	return nil
}

// DefaultByzantineAttack is the attack the byzantine table mounts when
// the scale does not name one: 30% of the fleet compromised, split evenly
// between sign-flips and 10× scale attacks — the two classic
// model-poisoning behaviors, well past the 20% the acceptance bar asks
// for.
const DefaultByzantineAttack = "mix:frac=0.3,signflip=1,scale=1"

// ByzantineRow is one machine-readable row of the byzantine table: an
// aggregation policy's outcome under (or without) attack.
type ByzantineRow struct {
	Label     string
	Agg       string // agg.ParsePolicy spec; "" = exact weighted mean
	Adversary string // core.ParseAdversary spec; "" = attack-free
	Full      float64
	// Rejected / Clipped sum the run's ledgered rejections and clips.
	Rejected int
	Clipped  int
	// Hash fingerprints the final global weights (HashState); two
	// same-seed runs of the same row must agree bit-for-bit.
	Hash uint64
}

// ByzantineRows runs the Byzantine-resilience comparison on one cell:
// an attack-free weighted-mean baseline, the same mean under attack
// (FedAvg's failure mode), then the robust policies under the identical
// attacker set. sc.Adversary overrides the mounted attack;
// sc.Agg is ignored (each row sets its own policy).
func ByzantineRows(cell Cell, sc Scale) ([]ByzantineRow, error) {
	attack := sc.Adversary
	if attack == "" {
		attack = DefaultByzantineAttack
	}
	// trim:frac=0.45 keeps only the coordinate-wise median band — the
	// strongest trim, needed because per-round attacker fractions swing
	// well above the population's 30% when K clients are sampled from it.
	// Krum is included as an honest negative result: selecting m whole
	// updates per round starves the coordinates only wide submodels
	// cover, so under prefix heterogeneity it trades robustness for
	// coverage and tends to stall (see docs/ROBUST.md).
	rows := []ByzantineRow{
		{Label: "mean (attack-free)", Agg: "", Adversary: ""},
		{Label: "mean (FedAvg)", Agg: "", Adversary: attack},
		{Label: "trimmed mean", Agg: "trim:frac=0.45", Adversary: attack},
		{Label: "multi-Krum", Agg: "krum:frac=0.4,m=2", Adversary: attack},
		{Label: "clip+trim", Agg: "clip:tau=8+trim:frac=0.45", Adversary: attack},
	}
	for i := range rows {
		if err := runByzantineRow(cell, sc, &rows[i]); err != nil {
			return nil, fmt.Errorf("byzantine row %q: %w", rows[i].Label, err)
		}
	}
	return rows, nil
}

// runByzantineRow executes one row's configuration and fills in its
// outcome fields.
func runByzantineRow(cell Cell, sc Scale, row *ByzantineRow) error {
	s := sc
	s.Agg, s.Adversary = row.Agg, row.Adversary
	fed, err := BuildFederation(cell.Arch, cell.Dataset, cell.Dist, DefaultProportions, s)
	if err != nil {
		return err
	}
	r, err := NewRunner("AdaptiveFL", fed, s)
	if err != nil {
		return err
	}
	curve, err := RunCurve(r, fed, s)
	if err != nil {
		return err
	}
	// Final accuracy, not best-over-training: a poisoned run often peaks
	// early before the attack lands, so BestOf would mask the collapse.
	if n := len(curve.Points); n > 0 {
		row.Full = curve.Points[n-1].Acc["full"]
	}
	if a, ok := r.(*baselines.Adaptive); ok {
		row.Hash = HashState(a.Srv.Global())
		for _, st := range a.Srv.Stats() {
			row.Rejected += st.Rejected
			row.Clipped += st.Clipped
		}
	}
	return nil
}

// TableByzantine prints the Byzantine-resilience table on Table 2's lead
// cell (CIFAR-10-like data, ResNet18 — the Widar test-bed cell sits at
// chance at reduced scales, leaving an attack nothing to destroy): robust
// policies should hold near the attack-free baseline where the plain
// weighted mean collapses. The weights hash makes each row's
// bit-determinism checkable by re-running the table at the same seed.
func TableByzantine(w io.Writer, sc Scale) error {
	cell := Cell{"cifar10", models.ResNet18, IID}
	rows, err := ByzantineRows(cell, sc)
	if err != nil {
		return err
	}
	attack := sc.Adversary
	if attack == "" {
		attack = DefaultByzantineAttack
	}
	fmt.Fprintf(w, "Table B — Byzantine resilience (%s/%s/%s, scale=%s)\n",
		cell.Dataset, cell.Arch, cell.Dist, sc.Name)
	fmt.Fprintf(w, "attack: %s\n", attack)
	fmt.Fprintln(w, "aggregation         best-full(%)  Δbaseline  rejected  clipped  weights-hash")
	base := rows[0].Full
	for _, r := range rows {
		fmt.Fprintf(w, "%-18s  %12.2f  %+9.2f  %8d  %7d  %016x\n",
			r.Label, r.Full*100, (r.Full-base)*100, r.Rejected, r.Clipped, r.Hash)
	}
	return nil
}

// staticRoundTime approximates a baseline's synchronous round time: the
// slowest device class trains its statically assigned model every round
// (with K=10 of 17 devices, every class is almost always selected).
func staticRoundTime(sim *testbed.Sim, fed *Federation, alg string, sc Scale) float64 {
	spec := fed.Model.Spec()
	sizes := map[core.DeviceClass][2]int64{} // params, MACs
	switch alg {
	case "HeteroFL":
		for class, rate := range map[core.DeviceClass]float64{core.Weak: 0.5, core.Medium: 0.7071, core.Strong: 1.0} {
			widths := prune.PlanWidths(spec.FullWidths, rate, 0)
			st := models.CountStats(fed.Model, widths)
			sizes[class] = [2]int64{st.Params, st.MACs}
		}
	case "ScaleFL":
		// Width rates per level; depth truncation roughly halves/thirds
		// the MACs on top — approximate with the width-scaled backbone
		// scaled by the level's depth fraction.
		for class, cfg := range map[core.DeviceClass][2]float64{
			core.Weak: {0.60, 0.33}, core.Medium: {0.80, 0.67}, core.Strong: {1.0, 1.0},
		} {
			widths := prune.PlanWidths(spec.FullWidths, cfg[0], 0)
			st := models.CountStats(fed.Model, widths)
			sizes[class] = [2]int64{int64(float64(st.Params) * cfg[1]), int64(float64(st.MACs) * cfg[1])}
		}
	default:
		st := models.CountStats(fed.Model, nil)
		for _, class := range []core.DeviceClass{core.Weak, core.Medium, core.Strong} {
			sizes[class] = [2]int64{st.Params, st.MACs}
		}
	}
	worst := 0.0
	samples := sc.SamplesPerClient
	for class, sz := range sizes {
		t := sim.TransferTime(class, sz[0], sz[0]) + sim.TrainTime(class, sz[1], samples, sc.LocalEpochs)
		if t > worst {
			worst = t
		}
	}
	return worst
}
