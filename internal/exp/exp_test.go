package exp

import (
	"strings"
	"testing"

	"adaptivefl/internal/baselines"
	"adaptivefl/internal/eval"
	"adaptivefl/internal/models"
)

// tinyScale keeps exp tests fast.
func tinyScale() Scale {
	return Scale{
		Name: "tiny", Clients: 6, K: 2, Rounds: 2, EvalEvery: 1,
		SamplesPerClient: 10, TestSamples: 30, WidthScale: 0.07,
		LocalEpochs: 1, BatchSize: 5, LR: 0.05, Momentum: 0.5,
		Parallelism: 2, Seed: 3,
	}
}

func TestScaleByName(t *testing.T) {
	for _, name := range []string{"quick", "small", "paper"} {
		sc, err := ScaleByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if sc.Name != name {
			t.Fatalf("scale name %q != %q", sc.Name, name)
		}
		if sc.Clients < 1 || sc.K < 1 || sc.Rounds < 1 || sc.WidthScale <= 0 {
			t.Fatalf("degenerate scale %+v", sc)
		}
	}
	if _, err := ScaleByName("nope"); err == nil {
		t.Fatal("unknown scale accepted")
	}
}

func TestPaperScaleMatchesPaperHyperparameters(t *testing.T) {
	sc := PaperScale()
	if sc.Clients != 100 || sc.K != 10 {
		t.Fatalf("paper population/participation wrong: %+v", sc)
	}
	if sc.BatchSize != 50 || sc.LocalEpochs != 5 || sc.LR != 0.01 || sc.Momentum != 0.5 {
		t.Fatalf("paper hyperparameters wrong: %+v", sc)
	}
	if sc.WidthScale != 1.0 {
		t.Fatalf("paper scale must use full-width models")
	}
}

func TestDatasetConfigs(t *testing.T) {
	sc := tinyScale()
	for name, classes := range map[string]int{"cifar10": 10, "cifar100": 100, "femnist": 62, "widar": 22} {
		cfg, err := DatasetConfig(name, sc)
		if err != nil {
			t.Fatal(err)
		}
		if cfg.Classes != classes {
			t.Fatalf("%s: %d classes, want %d", name, cfg.Classes, classes)
		}
	}
	if _, err := DatasetConfig("mnist", sc); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestBuildFederationShapes(t *testing.T) {
	sc := tinyScale()
	fed, err := BuildFederation(models.ResNet18, "cifar10", IID, DefaultProportions, sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(fed.Clients) != sc.Clients {
		t.Fatalf("%d clients, want %d", len(fed.Clients), sc.Clients)
	}
	total := 0
	for _, c := range fed.Clients {
		if c.Data.Len() == 0 {
			t.Fatal("client with no data")
		}
		if c.Device == nil {
			t.Fatal("client with no device")
		}
		total += c.Data.Len()
	}
	if total != sc.Clients*sc.SamplesPerClient*SampleBoost("cifar10") {
		t.Fatalf("total samples %d, want %d", total, sc.Clients*sc.SamplesPerClient*SampleBoost("cifar10"))
	}
	if fed.Test.Len() != sc.TestSamples {
		t.Fatalf("test size %d", fed.Test.Len())
	}
}

func TestBuildFederationNatural(t *testing.T) {
	sc := tinyScale()
	fed, err := BuildFederation(models.ResNet18, "femnist", Natural, DefaultProportions, sc)
	if err != nil {
		t.Fatal(err)
	}
	// Natural split: each writer covers a strict class subset.
	for _, c := range fed.Clients {
		distinct := map[int]bool{}
		for _, l := range c.Data.Labels {
			distinct[l] = true
		}
		if len(distinct) >= 62 {
			t.Fatal("natural split should restrict per-writer classes")
		}
	}
}

func TestBuildFederationDirichletSkewsLabels(t *testing.T) {
	sc := tinyScale()
	sc.SamplesPerClient = 40
	iid, err := BuildFederation(models.ResNet18, "cifar10", IID, DefaultProportions, sc)
	if err != nil {
		t.Fatal(err)
	}
	dir, err := BuildFederation(models.ResNet18, "cifar10", Dir03, DefaultProportions, sc)
	if err != nil {
		t.Fatal(err)
	}
	maxShare := func(fed *Federation) float64 {
		total := 0.0
		for _, c := range fed.Clients {
			counts := map[int]int{}
			for _, l := range c.Data.Labels {
				counts[l]++
			}
			max := 0
			for _, v := range counts {
				if v > max {
					max = v
				}
			}
			total += float64(max) / float64(c.Data.Len())
		}
		return total / float64(len(fed.Clients))
	}
	if maxShare(dir) <= maxShare(iid) {
		t.Fatalf("Dirichlet split (%v) should be more skewed than IID (%v)", maxShare(dir), maxShare(iid))
	}
}

func TestNewRunnerNames(t *testing.T) {
	sc := tinyScale()
	fed, err := BuildFederation(models.ResNet18, "cifar10", IID, DefaultProportions, sc)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"All-Large", "Decoupled", "HeteroFL", "ScaleFL", "AdaptiveFL",
		"AdaptiveFL+C", "AdaptiveFL+S", "AdaptiveFL+Random", "AdaptiveFL+Greedy",
		"AdaptiveFL+CS", "AdaptiveFL-Coarse",
	} {
		r, err := NewRunner(name, fed, sc)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if r.Name() != name {
			t.Fatalf("runner name %q != %q", r.Name(), name)
		}
	}
	if _, err := NewRunner("FedProx", fed, sc); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestRunCellProducesCurve(t *testing.T) {
	sc := tinyScale()
	res, err := RunCell(Cell{"cifar10", models.ResNet18, IID}, "AdaptiveFL", DefaultProportions, sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curve.Points) != sc.Rounds {
		t.Fatalf("%d curve points, want %d", len(res.Curve.Points), sc.Rounds)
	}
	if res.Full <= 0 || res.Full > 1 {
		t.Fatalf("full accuracy %v out of range", res.Full)
	}
	if res.Avg <= 0 {
		t.Fatal("AdaptiveFL must report avg")
	}
}

func TestTable1Output(t *testing.T) {
	var sb strings.Builder
	if err := Table1(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"L1", "M1", "M2", "M3", "S1", "S2", "S3", "33.6", "0.50", "0.25"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table1 output missing %q:\n%s", want, out)
		}
	}
}

func TestBestOf(t *testing.T) {
	c := &eval.Curve{}
	c.Add(1, map[string]float64{"full": 0.5})
	c.Add(2, map[string]float64{"full": 0.8})
	c.Add(3, map[string]float64{"full": 0.7})
	if got := BestOf(c, "full"); got != 0.8 {
		t.Fatalf("BestOf = %v", got)
	}
	if got := BestOf(c, "missing"); got != 0 {
		t.Fatalf("BestOf missing = %v", got)
	}
}

func TestCollateMergesRounds(t *testing.T) {
	c := &eval.Curve{}
	c.Add(1, map[string]float64{"a": 0.1})
	c.Add(1, map[string]float64{"b": 0.2})
	c.Add(2, map[string]float64{"a": 0.3})
	merged := collate(c)
	if len(merged.Points) != 2 {
		t.Fatalf("%d points after collate, want 2", len(merged.Points))
	}
	if merged.Points[0].Acc["a"] != 0.1 || merged.Points[0].Acc["b"] != 0.2 {
		t.Fatalf("collate lost series: %+v", merged.Points[0])
	}
}

func TestAdaptiveRunnerReportsWaste(t *testing.T) {
	sc := tinyScale()
	fed, err := BuildFederation(models.ResNet18, "cifar10", IID, DefaultProportions, sc)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner("AdaptiveFL+Greedy", fed, sc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunCurve(r, fed, sc); err != nil {
		t.Fatal(err)
	}
	a := r.(*baselines.Adaptive)
	if w := a.Waste(); w <= 0 {
		t.Fatalf("greedy waste %v, want > 0", w)
	}
}
