package exp

import (
	"math"
	"reflect"
	"testing"

	"adaptivefl/internal/core"
	"adaptivefl/internal/nn"
	"adaptivefl/internal/tensor"
)

func popTestScale() Scale {
	sc := tinyScale()
	sc.Sched = "semiasync"
	return sc
}

func popTestSpec(t *testing.T) core.PopulationSpec {
	t.Helper()
	spec, err := core.ParsePopulation("mix:n=300,weak=0.5,churn=20,samples=8")
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func TestHashStateDetectsSingleBit(t *testing.T) {
	mk := func() nn.State {
		st := nn.State{}
		a := tensor.New(4)
		copy(a.Data, []float64{1, 2, 3, 4})
		st["w"] = a
		return st
	}
	a, b := mk(), mk()
	if HashState(a) != HashState(b) {
		t.Fatal("identical states hash differently")
	}
	b["w"].Data[2] = math.Nextafter(b["w"].Data[2], math.Inf(1)) // one ulp
	if HashState(a) == HashState(b) {
		t.Fatal("single-bit divergence not detected")
	}
}

// TestRunPopSimDeterministic pins the flat generated-population run: two
// identical invocations must agree on every field, weights hash included.
func TestRunPopSimDeterministic(t *testing.T) {
	run := func() *PopSimResult {
		res, err := RunPopSim(nil, popTestSpec(t), popTestScale(), 1, 400, 0)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same-seed runs differ:\n%+v\n%+v", a, b)
	}
	if a.Commits < 1 {
		t.Fatal("no commits in the simulated window")
	}
	if a.Live > core.DefaultLazyCap {
		t.Fatalf("live clients %d exceed the LRU cap", a.Live)
	}
	if a.RLRows > int(a.TotalMade) {
		t.Fatalf("rl rows %d exceed materialised clients %d", a.RLRows, a.TotalMade)
	}
}

// TestRunPopSimHierarchyDeterministic does the same for the two-tier
// topology, and checks the shards actually fed the global tier.
func TestRunPopSimHierarchyDeterministic(t *testing.T) {
	run := func() *PopSimResult {
		res, err := RunPopSim(nil, popTestSpec(t), popTestScale(), 2, 400, 0)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same-seed hierarchy runs differ:\n%+v\n%+v", a, b)
	}
	if a.Commits < 1 || a.EdgeCommits < a.Commits {
		t.Fatalf("commits=%d edge-commits=%d: edges did not feed the global tier", a.Commits, a.EdgeCommits)
	}
	flat, err := RunPopSim(nil, popTestSpec(t), popTestScale(), 1, 400, 0)
	if err != nil {
		t.Fatal(err)
	}
	if flat.WeightsHash == a.WeightsHash {
		t.Fatal("flat and hierarchical runs produced identical weights; the topology had no effect")
	}
}
