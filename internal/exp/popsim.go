package exp

import (
	"fmt"
	"io"

	"adaptivefl/internal/core"
	"adaptivefl/internal/data"
	"adaptivefl/internal/models"
	"adaptivefl/internal/nn"
	"adaptivefl/internal/obs/analyze"
	"adaptivefl/internal/prune"
	"adaptivefl/internal/rl"
	"adaptivefl/internal/sched"
	"adaptivefl/internal/testbed"
)

// PopSimResult summarises one generated-population simulation.
type PopSimResult struct {
	Clients int
	Edges   int
	// SimTime is the virtual time reached (seconds); Commits the global
	// aggregations performed by then (edge-tier commits under a
	// hierarchy are counted separately).
	SimTime     float64
	Commits     int
	EdgeCommits int
	// Live / TotalMade audit the lazy population's memory envelope: the
	// clients currently materialised (LRU + pinned) and the total ever
	// materialised (total − distinct ≈ regeneration churn).
	Live      int
	TotalMade int64
	// RLRows counts allocated sparse RL columns, summed over servers.
	RLRows int
	// WeightsHash fingerprints the final global weights; two same-seed
	// runs must agree bit-for-bit.
	WeightsHash uint64
	// Mix is the realised weak/medium/strong split of the first 10k
	// clients (a cheap census, not the whole fleet).
	Mix [3]int
	// Ledger is the run's conservation summary (-ledger-out), the
	// cross-check target for `fltrace audit` over the run's span trace.
	Ledger *analyze.LedgerSummary
}

// HashState fingerprints a state dict: FNV-64a over sorted tensor names
// and raw float64 bits, so any single-bit weight divergence changes it.
// It is nn.HashState, re-exported where the result tables historically
// lived.
func HashState(st nn.State) uint64 { return nn.HashState(st) }

// popShardGen builds the lazy population's shard generator from the
// spec's data-distribution family: a WriterSampler whose prototype bank
// is shared across the fleet and whose per-client shards derive from each
// client's own seed.
func popShardGen(spec core.PopulationSpec, sc Scale) (core.ShardGen, error) {
	dcfg, err := DatasetConfig(spec.Dataset, sc)
	if err != nil {
		return nil, err
	}
	ws, err := data.NewWriterSampler(dcfg)
	if err != nil {
		return nil, err
	}
	classesPer := spec.Classes
	if classesPer <= 0 {
		classesPer = dcfg.Classes / 3
		if classesPer < 2 {
			classesPer = 2
		}
	}
	samples := spec.Samples
	return func(c int, seed int64) *data.Dataset {
		d, err := ws.Shard(seed, samples, classesPer, 0.15, 0.15)
		if err != nil {
			// The parameters were validated when the first shard was cut;
			// a later failure would be a programming error.
			panic(fmt.Sprintf("exp: shard for client %d: %v", c, err))
		}
		return d
	}, nil
}

// scaledCost multiplies every priced duration of a base cost model by a
// constant factor. RunPopSim uses it to calibrate virtual time: the
// reduced-width bench models price a dispatch in milliseconds, which
// would turn a simulated day into millions of commits; scaling restores
// a realistic fleet cadence without touching the training math.
type scaledCost struct {
	base sched.CostModel
	f    float64
}

func (s scaledCost) DispatchTimes(class core.DeviceClass, d core.Dispatch, samples, epochs int) (down, train, up float64) {
	down, train, up = s.base.DispatchTimes(class, d, samples, epochs)
	return down * s.f, train * s.f, up * s.f
}

// calibRound is the virtual cost of one median full-model round under the
// automatic time scale: the few-minute cadence cross-device deployments
// observe, which prices a simulated day at a laptop-friendly commit count.
const calibRound = 180.0

// popCost wraps sim so one Medium-class round trip of the largest pool
// member (the full global model) costs calibRound virtual seconds. The
// factor is pure arithmetic on model constants — deterministic. A
// positive timeScale overrides the calibration with a fixed multiplier.
func popCost(sim sched.CostModel, pool *prune.Pool, spec core.PopulationSpec, epochs int, timeScale float64) sched.CostModel {
	if timeScale > 0 {
		return scaledCost{base: sim, f: timeScale}
	}
	if epochs < 1 {
		epochs = 1
	}
	largest := pool.Largest()
	d := core.Dispatch{Sent: largest, Got: largest}
	down, train, up := sim.DispatchTimes(core.Medium, d, spec.Samples, epochs)
	base := down + train + up
	if base <= 0 {
		return sim
	}
	return scaledCost{base: sim, f: calibRound / base}
}

// popServer builds one server over pop with the scale's model and
// training setup. seed differentiates edges; adv is the spec's
// adversarial sub-population with its seed already set (shards remap
// client ids locally, so edges carry offset adversary seeds and draw
// independent — but deterministic — attacker subsets).
func popServer(mcfg models.Config, pop core.Population, sc Scale, k int, seed int64, adv core.AdversarySpec) (*core.Server, error) {
	return core.NewServerPopulation(core.Config{
		Model:           mcfg,
		Pool:            prune.Config{P: 3},
		RL:              rl.Config{},
		ClientsPerRound: k,
		Train:           sc.TrainConfig(),
		Seed:            seed,
		Parallelism:     sc.Parallelism,
		Observer:        sc.Observer,
		Agg:             sc.Agg,
		Adversary:       adv,
	}, pop)
}

// RunPopSim runs a parametric population through the event engine for
// simSeconds of virtual time: spec describes the fleet (size, capability
// mix, churn, data family), edges > 1 shards it across a two-tier
// hierarchy (each edge running sc.Sched over its shard, feeding the
// global semiasync tier), and sc supplies model scale, policy and seeds.
// timeScale multiplies every priced duration (0 = auto-calibrate to a
// realistic fleet cadence; see popCost). The run is deterministic: same
// (spec, sc, edges, timeScale) ⇒ identical weights hash and event logs.
// Progress lines go to w when non-nil.
func RunPopSim(w io.Writer, spec core.PopulationSpec, sc Scale, edges int, simSeconds, timeScale float64) (*PopSimResult, error) {
	if spec.N < 1 {
		return nil, fmt.Errorf("exp: population spec needs n >= 1 (got %d)", spec.N)
	}
	if edges < 1 {
		edges = 1
	}
	if edges > spec.N {
		return nil, fmt.Errorf("exp: %d edges for %d clients", edges, spec.N)
	}
	spec.Seed = sc.Seed + 977
	mcfg, err := ModelConfig(models.MobileNetV2, spec.Dataset, sc)
	if err != nil {
		return nil, err
	}
	pool, err := prune.BuildPool(mcfg, prune.Config{P: 3})
	if err != nil {
		return nil, err
	}
	gen, err := popShardGen(spec, sc)
	if err != nil {
		return nil, err
	}
	pop, err := core.NewLazyPopulation(spec, pool, core.DefaultDeviceModel(), gen, 0)
	if err != nil {
		return nil, err
	}
	sim, err := testbed.NewSim(testbed.Table5Platform())
	if err != nil {
		return nil, err
	}
	cost := popCost(sim, pool, spec, sc.LocalEpochs, timeScale)
	policy := sc.Sched
	if policy == "" {
		policy = "semiasync"
	}
	pol, err := sched.ParsePolicy(policy)
	if err != nil {
		return nil, err
	}
	weak := func(c int) bool { return spec.ClassOf(c) == core.Weak }
	baseTrace := sched.PopTrace{Spec: spec, SlowOnly: weak}
	adv := spec.Adversary
	adv.Seed = spec.Seed

	res := &PopSimResult{Clients: spec.N, Edges: edges, Mix: spec.MixCounts(min(spec.N, 10_000))}
	engCfg := func(k int) sched.Config {
		return sched.Config{Policy: pol, K: k, Epochs: sc.LocalEpochs, Parallelism: sc.Parallelism}
	}

	if edges == 1 {
		srv, err := popServer(mcfg, pop, sc, sc.K, sc.Seed+101, adv)
		if err != nil {
			return nil, err
		}
		eng, err := sched.New(srv, cost, baseTrace, engCfg(sc.K))
		if err != nil {
			return nil, err
		}
		for eng.Clock() < simSeconds {
			if _, err := eng.Step(); err != nil {
				return nil, err
			}
			res.Commits++
			progress(w, eng.Clock(), simSeconds, res.Commits, pop)
		}
		res.SimTime = eng.Clock()
		res.WeightsHash = HashState(srv.Global())
		res.RLRows = srv.Tables().Rows()
		res.Live, res.TotalMade = pop.Materialized()
		ledger := analyze.SummarizeStats(srv.Stats())
		ledger.Policy = policy
		ledger.HasDiscounts = true
		ledger.StalenessExp = eng.StalenessExp()
		ledger.DiscountSum = eng.DiscountSum()
		if sc.Observer.Enabled() {
			// LRU spans are in the trace only when observed, so the audit
			// target carries the balance only then.
			ledger.HasLRU = true
			ledger.LRULive = int64(res.Live)
			ledger.LRUMade = res.TotalMade
		}
		res.Ledger = &ledger
		return res, nil
	}

	// Two-tier topology: contiguous shards, one edge server + engine per
	// shard (distinct seeds → distinct selection streams), all feeding the
	// global semiasync tier. K is split across edges (at least 1 each).
	kEdge := sc.K / edges
	if kEdge < 1 {
		kEdge = 1
	}
	per := spec.N / edges
	eds := make([]*sched.Edge, edges)
	for i := 0; i < edges; i++ {
		n := per
		if i == edges-1 {
			n = spec.N - per*(edges-1)
		}
		shard, err := core.NewShardPopulation(pop, i*per, n)
		if err != nil {
			return nil, err
		}
		advEdge := adv
		advEdge.Seed = adv.Seed + int64(i)
		srv, err := popServer(mcfg, shard, sc, kEdge, sc.Seed+101+1000*int64(i), advEdge)
		if err != nil {
			return nil, err
		}
		eng, err := sched.New(srv, cost, sched.OffsetTrace{Base: baseTrace, Offset: i * per}, engCfg(kEdge))
		if err != nil {
			return nil, err
		}
		eds[i] = &sched.Edge{Srv: srv, Eng: eng}
	}
	hier, err := sched.NewHierarchy(eds, cost, sched.HierConfig{Epochs: sc.LocalEpochs, Observer: sc.Observer})
	if err != nil {
		return nil, err
	}
	for hier.Clock() < simSeconds {
		if _, err := hier.Step(); err != nil {
			return nil, err
		}
		res.Commits++
		progress(w, hier.Clock(), simSeconds, res.Commits, pop)
	}
	res.SimTime = hier.Clock()
	res.WeightsHash = HashState(hier.Global())
	var ledger analyze.LedgerSummary
	ledger.Policy = policy
	ledger.HasDiscounts = true
	for _, ed := range eds {
		res.EdgeCommits += len(ed.Eng.Commits())
		res.RLRows += ed.Srv.Tables().Rows()
		ledger.AddStats(ed.Srv.Stats())
		ledger.DiscountSum += ed.Eng.DiscountSum()
		ledger.StalenessExp = ed.Eng.StalenessExp()
	}
	ledger.GlobalCommits = len(hier.Commits())
	ledger.GlobalStalenessExp = hier.StalenessExp()
	ledger.GlobalDiscountSum = hier.DiscountSum()
	res.Live, res.TotalMade = pop.Materialized()
	if sc.Observer.Enabled() {
		ledger.HasLRU = true
		ledger.LRULive = int64(res.Live)
		ledger.LRUMade = res.TotalMade
	}
	res.Ledger = &ledger
	return res, nil
}

// progress emits an occasional status line (every 64 commits).
func progress(w io.Writer, clock, horizon float64, commits int, pop *core.LazyPopulation) {
	if w == nil || commits%64 != 0 {
		return
	}
	live, total := pop.Materialized()
	fmt.Fprintf(w, "t=%.0fs/%.0fs commits=%d live=%d made=%d\n", clock, horizon, commits, live, total)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
