package exp

import (
	"flag"
	"fmt"
	"os"

	"adaptivefl/internal/agg"
	"adaptivefl/internal/core"
	"adaptivefl/internal/obs"
	"adaptivefl/internal/sched"
	"adaptivefl/internal/wire"
)

// Flags is the CLI surface cmd/adaptivefl and cmd/flbench share: the
// scale selector with its overrides, the engine/wire/robustness spec
// flags, and the observability outputs. Each command Registers the subset
// it supports onto its FlagSet, parses, then calls Validate + Scale +
// Observability; command-specific gating (which algorithms a flag applies
// to, which flags require each other) stays in the command.
type Flags struct {
	// Register
	ScaleName    string
	Par          int
	Codec        string
	Sched        string
	Trace        string
	Agg          string
	Adversary    string
	WireEstimate bool
	TraceOut     string
	LedgerOut    string
	MetricsAddr  string
	Pprof        bool
	Progress     bool

	// RegisterOverrides
	Rounds  int
	Clients int
	K       int
	Seed    int64
}

// Register binds the shared flags onto fs with the canonical help text.
func (f *Flags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.ScaleName, "scale", "quick", "fidelity: quick|small|paper")
	fs.IntVar(&f.Par, "par", 0, "training parallelism override (0 = the scale's default)")
	fs.StringVar(&f.Codec, "codec", "", "wire codec for AdaptiveFL model transport: raw|f32|q8|delta (empty = exact in-memory)")
	fs.StringVar(&f.Sched, "sched", "", "aggregation policy for AdaptiveFL runs: sync|deadline|deadline-reuse|semiasync (empty = legacy synchronous loop)")
	fs.StringVar(&f.Trace, "trace", "", "availability trace for scheduled runs: always|straggler[:slow=,prob=,on=]|churn[:on=,off=,...]; an adversary spec may ride after a ';'")
	fs.StringVar(&f.Agg, "agg", "", "server aggregation policy: mean|trim[:frac=]|krum[:frac=,m=]|clip[:tau=], '+'-composable (empty = exact weighted mean)")
	fs.StringVar(&f.Adversary, "adversary", "", "compromise a deterministic client fraction (core.ParseAdversary grammar, e.g. signflip:frac=0.3 or mix:frac=0.3,signflip=1,scale=1)")
	fs.BoolVar(&f.WireEstimate, "wire-estimate", false, "price scheduled codec uplinks from the codec's size estimate (lazy codec flights; requires -codec)")
	fs.StringVar(&f.TraceOut, "trace-out", "", "stream every span of the run to this file as JSON lines (bounded memory; see docs/OBS.md)")
	fs.StringVar(&f.LedgerOut, "ledger-out", "", "write the run's ledger summary JSON here (the `fltrace audit` cross-check target)")
	fs.StringVar(&f.MetricsAddr, "metrics-addr", "", "serve Prometheus metrics at this address's /metrics while the run is live (e.g. 127.0.0.1:9090)")
	fs.BoolVar(&f.Pprof, "pprof", false, "with -metrics-addr: also mount net/http/pprof under /debug/pprof")
	fs.BoolVar(&f.Progress, "progress", false, "print a live per-commit progress line to stderr")
}

// RegisterOverrides binds the per-run scale overrides (cmd/adaptivefl
// drives a single cell, so it exposes them; flbench's tables own their
// cell geometry).
func (f *Flags) RegisterOverrides(fs *flag.FlagSet) {
	fs.IntVar(&f.Rounds, "rounds", 0, "override rounds")
	fs.IntVar(&f.Clients, "clients", 0, "override client population")
	fs.IntVar(&f.K, "k", 0, "override clients per round")
	fs.Int64Var(&f.Seed, "seed", 0, "override seed")
}

// Validate checks every non-empty spec flag against its grammar — the
// fail-fast pass both commands ran by hand before the flags were shared.
// Grammar errors surface here, before any federation is built.
func (f *Flags) Validate() error {
	if f.Codec != "" {
		if _, err := wire.ByTag(f.Codec); err != nil {
			return err
		}
	}
	if f.Sched != "" {
		if _, err := sched.ParsePolicy(f.Sched); err != nil {
			return err
		}
	}
	if f.Agg != "" {
		if _, _, err := agg.ParsePolicy(f.Agg); err != nil {
			return err
		}
	}
	if f.Adversary != "" {
		if _, err := core.ParseAdversary(f.Adversary); err != nil {
			return err
		}
	}
	if f.WireEstimate && f.Codec == "" {
		return fmt.Errorf("-wire-estimate requires -codec (the parameter estimate already prices codec-less flights)")
	}
	return nil
}

// Scale resolves the named scale and applies the overrides. The spec
// flags (codec, sched, trace, agg, adversary) are NOT copied in — which
// of them apply is a per-command decision, so the command assigns them
// after its own gating.
func (f *Flags) Scale() (Scale, error) {
	sc, err := ScaleByName(f.ScaleName)
	if err != nil {
		return sc, err
	}
	if f.Rounds > 0 {
		sc.Rounds = f.Rounds
	}
	if f.Clients > 0 {
		sc.Clients = f.Clients
	}
	if f.K > 0 {
		sc.K = f.K
	}
	if f.Seed != 0 {
		sc.Seed = f.Seed
	}
	if f.Par > 0 {
		sc.Parallelism = f.Par
	}
	if f.WireEstimate {
		sc.EstimateUp = true
	}
	return sc, nil
}

// Observability assembles the observer the flags ask for: a JSONL span
// trace, a live /metrics endpoint (with optional pprof) and a per-commit
// progress feed on stderr. With none of the flags set it returns a nil
// observer — the zero-cost disabled path. prefix labels the stderr
// chatter ("adaptivefl", "flbench"). The returned func flushes the trace
// and stops the endpoint; call it once the run is done.
func (f *Flags) Observability(prefix string) (*obs.Observer, func(), error) {
	if f.TraceOut == "" && f.MetricsAddr == "" && !f.Progress {
		return nil, func() {}, nil
	}
	var m *obs.Metrics
	var done []func()
	if f.MetricsAddr != "" {
		m = obs.NewMetrics()
	}
	o := obs.NewObserver(m)
	if f.TraceOut != "" {
		out, err := os.Create(f.TraceOut)
		if err != nil {
			return nil, nil, err
		}
		jw := obs.NewJSONLWriter(out)
		o.AddSink(jw)
		done = append(done, func() {
			if err := jw.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "%s: trace %s: %v\n", prefix, f.TraceOut, err)
			} else {
				fmt.Fprintf(os.Stderr, "%s: trace %s: %d spans\n", prefix, f.TraceOut, jw.Count())
			}
		})
	}
	if f.MetricsAddr != "" {
		bound, shutdown, err := obs.Serve(f.MetricsAddr, m, f.Pprof)
		if err != nil {
			return nil, nil, err
		}
		fmt.Fprintf(os.Stderr, "%s: metrics on http://%s/metrics\n", prefix, bound)
		done = append(done, func() { shutdown() }) //nolint:errcheck // best-effort teardown
	}
	if f.Progress {
		o.AddSink(obs.NewProgressSink(os.Stderr))
	}
	return o, func() {
		for _, fn := range done {
			fn()
		}
	}, nil
}
