package exp

import (
	"fmt"
	"io"

	"adaptivefl/internal/baselines"
	"adaptivefl/internal/models"
)

// SchedPolicies lists the aggregation policies TableSched compares.
var SchedPolicies = []string{"sync", "deadline", "deadline-reuse", "semiasync"}

// TableSched compares the scheduling policies on the simulated Table 5
// platform (17 devices, Widar-like data, MobileNetV2): each policy runs
// AdaptiveFL through the event-driven engine under the same availability
// trace and seed, and the table reports accuracy against simulated
// wall-clock seconds — the axis the straggler problem actually lives on.
// An empty trace defaults to the straggler spec (weak devices
// intermittently 10× slower), the scenario the async policies exist for.
// The footer reports each policy's time to reach the sync policy's final
// accuracy.
func TableSched(w io.Writer, sc Scale) error {
	s := sc
	s.Clients = 17
	s.K = 10
	if s.Parallelism > s.K {
		s.Parallelism = s.K
	}
	if s.Trace == "" {
		s.Trace = "straggler"
	}
	props := [3]float64{4, 10, 3} // Table 5: 4 Pi, 10 Nano, 3 Xavier
	fmt.Fprintf(w, "Sched — policies on the Table 5 platform (widar/mobilenetv2, trace=%s)\n", s.Trace)
	fmt.Fprintln(w, "policy          round  sim-time(s)  full-acc(%)")

	type point struct {
		time, acc float64
	}
	finals := map[string]point{}
	curves := map[string][]point{}
	reusedBy := map[string]int{}
	for _, policy := range SchedPolicies {
		run := s
		run.Sched = policy
		fed, err := BuildFederation(models.MobileNetV2, "widar", Natural, props, run)
		if err != nil {
			return err
		}
		r, err := NewRunner("AdaptiveFL", fed, run)
		if err != nil {
			return err
		}
		sa, ok := r.(*baselines.SchedAdaptive)
		if !ok {
			return fmt.Errorf("exp: %s runner is not scheduler-driven", policy)
		}
		for round := 1; round <= run.Rounds; round++ {
			if err := r.Round(); err != nil {
				return fmt.Errorf("%s round %d: %w", policy, round, err)
			}
			if round%run.EvalEvery == 0 || round == run.Rounds {
				acc, err := r.Evaluate(fed.Test, 64)
				if err != nil {
					return err
				}
				p := point{time: sa.SimTime(), acc: acc["full"]}
				curves[policy] = append(curves[policy], p)
				finals[policy] = p
				fmt.Fprintf(w, "%-14s %6d  %11.1f  %10.2f\n", policy, round, p.time, p.acc*100)
			}
		}
		for _, c := range sa.Eng.Commits() {
			reusedBy[policy] += c.LateReused
		}
	}

	// Time-to-target: how long each policy needs to match the sync
	// policy's final accuracy at the same aggregation budget.
	target := finals["sync"]
	fmt.Fprintf(w, "\ntime to reach sync's final accuracy (%.2f%%):\n", target.acc*100)
	for _, policy := range SchedPolicies {
		reached := -1.0
		for _, p := range curves[policy] {
			if p.acc >= target.acc {
				reached = p.time
				break
			}
		}
		reuseNote := ""
		if reusedBy[policy] > 0 {
			reuseNote = fmt.Sprintf("  [%d late uploads reused]", reusedBy[policy])
		}
		if reached < 0 {
			fmt.Fprintf(w, "%-14s  not reached in %d rounds (final %.2f%%)%s\n",
				policy, s.Rounds, finals[policy].acc*100, reuseNote)
			continue
		}
		fmt.Fprintf(w, "%-14s  %8.1fs  (%.2f× sync)%s\n", policy, reached, reached/target.time, reuseNote)
	}
	return nil
}
