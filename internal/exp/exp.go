// Package exp assembles the paper's experiments: it builds federations
// (dataset + partition + device population), constructs the algorithm
// runners, and provides one function per table/figure of the evaluation
// section. cmd/flbench and the repository benchmarks are thin wrappers
// around this package.
package exp

import (
	"fmt"
	"math/rand"

	"adaptivefl/internal/core"
	"adaptivefl/internal/data"
	"adaptivefl/internal/models"
	"adaptivefl/internal/obs"
	"adaptivefl/internal/prune"
)

// Scale fixes the fidelity of a run. Paper-faithful structure is kept at
// every scale (population, participation rate, device mix); what shrinks
// is width, sample counts and rounds so a CPU can finish the suite.
type Scale struct {
	Name             string
	Clients          int
	K                int // clients selected per round
	Rounds           int
	EvalEvery        int
	SamplesPerClient int
	TestSamples      int
	WidthScale       float64
	LocalEpochs      int
	BatchSize        int
	LR               float64
	Momentum         float64
	Parallelism      int
	Seed             int64
	// Codec names the wire codec the AdaptiveFL server moves models
	// through ("raw", "f32", "q8", "delta" — see internal/wire). Empty
	// keeps the exact in-memory float64 path.
	Codec string
	// Sched names the aggregation policy the AdaptiveFL server runs under
	// ("sync", "deadline", "semiasync" — see internal/sched). Empty keeps
	// the legacy synchronous Round loop; any policy drives training
	// through the event-driven engine on the Table 5 cost model, with each
	// Runner.Round advancing one aggregation.
	Sched string
	// Trace names the availability trace for scheduled runs (see
	// sched.ParseTrace: "always", "straggler:…", "churn:…"). Empty means
	// every client is always available at nominal speed.
	Trace string
	// EstimateUp prices scheduled codec uplinks from the codec's size
	// estimate instead of the actual encoded length
	// (core.Config.EstimateUpBytes), letting codec flights train lazily.
	EstimateUp bool
	// Agg names the server-side aggregation policy ("trim:frac=0.25",
	// "krum:frac=0.3,m=2", "clip:tau=5+trim", … — see agg.ParsePolicy).
	// Empty keeps the exact weighted prefix mean.
	Agg string
	// Adversary describes a Byzantine sub-population
	// (core.ParseAdversary: "signflip:frac=0.3", "mix:…"). An adversary can
	// also ride after a ';' in Trace; setting both is an error. The
	// adversary seed is derived from Seed, so two same-seed runs realize
	// the identical attacker set.
	Adversary string
	// Trainer, when set, overrides how AdaptiveFL dispatches execute —
	// cmd/adaptivefl wires a fednet.Cluster's HTTPTrainer here for real
	// loopback transport. The transport then owns the wire encoding, so
	// Codec is not also applied in-process.
	Trainer core.Trainer
	// Observer, when set, attaches the observability layer: every flight,
	// commit and LRU event emits an obs.Span, the wire codec (if any) is
	// wrapped with wall-clock timing, and the observer's metrics registry
	// fills for a /metrics scrape. Nil is the zero-cost disabled state; an
	// attached observer never perturbs the run (see internal/obs).
	Observer *obs.Observer
}

// QuickScale finishes an experiment in tens of seconds; used by the
// benchmarks and smoke runs.
func QuickScale() Scale {
	return Scale{
		Name: "quick", Clients: 20, K: 5, Rounds: 16, EvalEvery: 4,
		SamplesPerClient: 20, TestSamples: 200, WidthScale: 0.10,
		LocalEpochs: 1, BatchSize: 10, LR: 0.10, Momentum: 0.5,
		Parallelism: 5, Seed: 1,
	}
}

// SmallScale is the default for regenerating the tables: large enough for
// the paper's orderings to emerge, small enough for a CPU suite run.
func SmallScale() Scale {
	return Scale{
		Name: "small", Clients: 50, K: 10, Rounds: 40, EvalEvery: 5,
		SamplesPerClient: 30, TestSamples: 400, WidthScale: 0.125,
		LocalEpochs: 2, BatchSize: 15, LR: 0.08, Momentum: 0.5,
		Parallelism: 10, Seed: 1,
	}
}

// PaperScale mirrors the paper's setup (100 clients, 10% participation,
// batch 50, 5 local epochs, lr 0.01, full-width models). Running it needs
// GPU-class time on this pure-Go substrate; it exists so the
// configuration itself is executable documentation.
func PaperScale() Scale {
	return Scale{
		Name: "paper", Clients: 100, K: 10, Rounds: 1000, EvalEvery: 20,
		SamplesPerClient: 500, TestSamples: 10000, WidthScale: 1.0,
		LocalEpochs: 5, BatchSize: 50, LR: 0.01, Momentum: 0.5,
		Parallelism: 10, Seed: 1,
	}
}

// Dist names a data distribution setting from Table 2.
type Dist string

// The paper's distribution settings.
const (
	IID     Dist = "iid"
	Dir06   Dist = "dir0.6"
	Dir03   Dist = "dir0.3"
	Natural Dist = "natural" // FEMNIST/Widar per-writer split
)

// Federation is a ready-to-run client population with its test set.
type Federation struct {
	Clients []*core.Client
	Test    *data.Dataset
	Model   models.Config
	Pool    *prune.Pool
}

// SampleBoost scales per-client sample counts for many-class datasets so
// reduced-scale runs keep a workable number of samples per class (CIFAR-10
// at 30 samples/client is 150/class over 50 clients; CIFAR-100 at the same
// setting would get 15/class — too few to rise above chance).
func SampleBoost(name string) int {
	switch name {
	case "cifar100":
		return 3
	case "femnist":
		return 2
	case "widar":
		return 4
	}
	return 1
}

// DatasetConfig returns the synthetic stand-in for a paper dataset name.
func DatasetConfig(name string, sc Scale) (data.SynthConfig, error) {
	total := sc.Clients * sc.SamplesPerClient * SampleBoost(name)
	switch name {
	case "cifar10":
		return data.CIFAR10Like(total, sc.TestSamples, sc.Seed), nil
	case "cifar100":
		return data.CIFAR100Like(total, sc.TestSamples, sc.Seed), nil
	case "femnist":
		return data.FEMNISTLike(total, sc.TestSamples, sc.Seed), nil
	case "widar":
		return data.WidarLike(total, sc.TestSamples, sc.Seed), nil
	}
	return data.SynthConfig{}, fmt.Errorf("exp: unknown dataset %q", name)
}

// ModelConfig builds the models.Config for an architecture at this scale,
// matched to the dataset's shape.
func ModelConfig(arch models.Arch, dataset string, sc Scale) (models.Config, error) {
	dcfg, err := DatasetConfig(dataset, sc)
	if err != nil {
		return models.Config{}, err
	}
	return models.Config{
		Arch:       arch,
		NumClasses: dcfg.Classes,
		InChannels: dcfg.Channels,
		InputSize:  dcfg.Size,
		WidthScale: sc.WidthScale,
		Seed:       sc.Seed,
	}, nil
}

// BuildFederation assembles clients (data shard + device) and the test
// set for one experiment cell.
func BuildFederation(arch models.Arch, dataset string, dist Dist, proportions [3]float64, sc Scale) (*Federation, error) {
	mcfg, err := ModelConfig(arch, dataset, sc)
	if err != nil {
		return nil, err
	}
	pool, err := prune.BuildPool(mcfg, prune.Config{P: 3})
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(sc.Seed + 77))
	devices := core.NewPopulation(rng, sc.Clients, proportions, pool, core.DefaultDeviceModel())

	var shards []*data.Dataset
	var test *data.Dataset
	if dist == Natural {
		dcfg, err := DatasetConfig(dataset, sc)
		if err != nil {
			return nil, err
		}
		classesPer := dcfg.Classes / 3
		if classesPer < 2 {
			classesPer = 2
		}
		shards, test, err = data.GenerateFederatedWriters(dcfg, data.WriterConfig{
			Writers:          sc.Clients,
			SamplesPerWriter: sc.SamplesPerClient * SampleBoost(dataset),
			ClassesPerWriter: classesPer,
			StyleGain:        0.15,
			StyleOffset:      0.15,
		})
		if err != nil {
			return nil, err
		}
	} else {
		dcfg, err := DatasetConfig(dataset, sc)
		if err != nil {
			return nil, err
		}
		var train *data.Dataset
		train, test = data.Generate(dcfg)
		var parts [][]int
		switch dist {
		case IID:
			parts = data.PartitionIID(rng, train.Len(), sc.Clients)
		case Dir06:
			parts = data.PartitionDirichlet(rng, train.Labels, train.NumClasses, sc.Clients, 0.6)
		case Dir03:
			parts = data.PartitionDirichlet(rng, train.Labels, train.NumClasses, sc.Clients, 0.3)
		default:
			return nil, fmt.Errorf("exp: unknown distribution %q", dist)
		}
		shards = make([]*data.Dataset, sc.Clients)
		for i, p := range parts {
			shards[i] = train.Subset(p)
		}
	}
	clients := make([]*core.Client, sc.Clients)
	for i := range clients {
		clients[i] = &core.Client{ID: i, Data: shards[i], Device: devices[i]}
	}
	return &Federation{Clients: clients, Test: test, Model: mcfg, Pool: pool}, nil
}

// SplitAdversary resolves the scale's adversary — Scale.Adversary or a
// ';'-suffix of Trace, never both — and returns the trace spec with the
// adversary part stripped plus the parsed spec, its Seed already derived
// from Scale.Seed (the same offset ParseTrace uses, so a (Seed, spec)
// pair fixes the attacker set bit-reproducibly on every path).
func (sc Scale) SplitAdversary() (string, core.AdversarySpec, error) {
	trace, adv, err := core.CutAdversary(sc.Trace)
	if err != nil {
		return "", core.AdversarySpec{}, err
	}
	if sc.Adversary != "" {
		if adv.Enabled() {
			return "", core.AdversarySpec{}, fmt.Errorf("exp: adversary set both in Scale.Adversary and the trace spec")
		}
		if adv, err = core.ParseAdversary(sc.Adversary); err != nil {
			return "", core.AdversarySpec{}, err
		}
	}
	adv.Seed = sc.Seed + 909
	return trace, adv, nil
}

// TrainConfig converts a Scale into local-training hyperparameters.
func (sc Scale) TrainConfig() core.TrainConfig {
	return core.TrainConfig{
		LocalEpochs: sc.LocalEpochs, BatchSize: sc.BatchSize,
		LR: sc.LR, Momentum: sc.Momentum,
	}
}

// ScaleByName resolves quick/small/paper.
func ScaleByName(name string) (Scale, error) {
	switch name {
	case "quick":
		return QuickScale(), nil
	case "small":
		return SmallScale(), nil
	case "paper":
		return PaperScale(), nil
	}
	return Scale{}, fmt.Errorf("exp: unknown scale %q (quick|small|paper)", name)
}
