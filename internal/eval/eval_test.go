package eval

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"adaptivefl/internal/data"
	"adaptivefl/internal/nn"
	"adaptivefl/internal/tensor"
)

// constantModel always predicts the same class.
type constantModel struct{ class, classes int }

func (c constantModel) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out := tensor.New(x.Shape[0], c.classes)
	for i := 0; i < x.Shape[0]; i++ {
		out.Set(1, i, c.class)
	}
	return out
}
func (c constantModel) Backward(g *tensor.Tensor) *tensor.Tensor { return g }
func (c constantModel) Params() []*nn.Param                      { return nil }

func testDataset(n, classes int) *data.Dataset {
	d := &data.Dataset{
		X:          tensor.New(n, 1, 2, 2),
		Labels:     make([]int, n),
		NumClasses: classes,
	}
	for i := range d.Labels {
		d.Labels[i] = i % classes
	}
	return d
}

func TestAccuracyConstantPredictor(t *testing.T) {
	ds := testDataset(40, 4)
	acc := Accuracy(constantModel{class: 2, classes: 4}, ds, 7)
	if math.Abs(acc-0.25) > 1e-12 {
		t.Fatalf("accuracy = %v, want 0.25", acc)
	}
}

func TestAccuracyEmptyDataset(t *testing.T) {
	ds := testDataset(0, 3)
	if got := Accuracy(constantModel{0, 3}, ds, 4); got != 0 {
		t.Fatalf("empty accuracy = %v", got)
	}
}

func TestAccuracyBatchBoundaryInvariance(t *testing.T) {
	ds := testDataset(53, 5)
	a := Accuracy(constantModel{1, 5}, ds, 7)
	b := Accuracy(constantModel{1, 5}, ds, 53)
	c := Accuracy(constantModel{1, 5}, ds, 1)
	if a != b || b != c {
		t.Fatalf("batch size changed accuracy: %v %v %v", a, b, c)
	}
}

func TestCurveSeriesAndFinal(t *testing.T) {
	var c Curve
	c.Add(1, map[string]float64{"a": 0.1, "b": 0.5})
	c.Add(2, map[string]float64{"a": 0.2})
	c.Add(3, map[string]float64{"a": 0.3, "b": 0.7})
	rounds, vals := c.Series("a")
	if len(rounds) != 3 || vals[2] != 0.3 {
		t.Fatalf("Series(a) = %v %v", rounds, vals)
	}
	rounds, vals = c.Series("b")
	if len(rounds) != 2 || rounds[1] != 3 {
		t.Fatalf("Series(b) = %v %v", rounds, vals)
	}
	if c.Final("b") != 0.7 || c.Final("a") != 0.3 {
		t.Fatalf("Final wrong: %v %v", c.Final("a"), c.Final("b"))
	}
	if c.Final("missing") != 0 {
		t.Fatal("missing series should be 0")
	}
}

func TestCurveCSV(t *testing.T) {
	var c Curve
	c.Add(1, map[string]float64{"x": 0.5})
	c.Add(2, map[string]float64{"x": 0.75, "y": 0.25})
	csv := c.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if lines[0] != "round,x,y" {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "1,0.5000") {
		t.Fatalf("row 1 = %q", lines[1])
	}
	if !strings.Contains(lines[2], "0.2500") {
		t.Fatalf("row 2 = %q", lines[2])
	}
}

func TestMeanOf(t *testing.T) {
	acc := map[string]float64{"a": 0.2, "b": 0.4}
	if got := MeanOf(acc, "a", "b"); math.Abs(got-0.3) > 1e-12 {
		t.Fatalf("MeanOf = %v", got)
	}
	if got := MeanOf(acc, "a", "zzz"); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("MeanOf with missing = %v", got)
	}
	if got := MeanOf(acc, "zzz"); got != 0 {
		t.Fatalf("MeanOf all-missing = %v", got)
	}
}

func TestAccuracyRealModel(t *testing.T) {
	// Accuracy() must agree with nn.Accuracy on a real network.
	rng := rand.New(rand.NewSource(1))
	model := nn.NewSequential(
		nn.NewFlatten(),
		nn.NewLinear(rng, "fc", 4, 3, true),
	)
	ds := &data.Dataset{X: tensor.Randn(rng, 1, 30, 1, 2, 2), Labels: make([]int, 30), NumClasses: 3}
	for i := range ds.Labels {
		ds.Labels[i] = rng.Intn(3)
	}
	batched := Accuracy(model, ds, 7)
	x, labels := ds.Gather(seq(30))
	direct := nn.Accuracy(model.Forward(x, false), labels)
	if math.Abs(batched-direct) > 1e-12 {
		t.Fatalf("batched %v != direct %v", batched, direct)
	}
}

func seq(n int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = i
	}
	return s
}
