// Package eval provides the measurement utilities behind the paper's
// tables and figures: test-set accuracy, per-level submodel accuracy
// ("avg" vs "full" in Table 2), learning-curve recording, and the
// communication-waste rate of Figure 5.
package eval

import (
	"fmt"
	"sort"

	"adaptivefl/internal/data"
	"adaptivefl/internal/nn"
)

// Accuracy evaluates a model on a dataset in evaluation mode, batching to
// bound memory. It returns the top-1 accuracy in [0, 1].
func Accuracy(model nn.Layer, ds *data.Dataset, batchSize int) float64 {
	if ds.Len() == 0 {
		return 0
	}
	if batchSize < 1 {
		batchSize = 64
	}
	correct := 0
	for lo := 0; lo < ds.Len(); lo += batchSize {
		hi := lo + batchSize
		if hi > ds.Len() {
			hi = ds.Len()
		}
		idx := make([]int, hi-lo)
		for i := range idx {
			idx[i] = lo + i
		}
		x, labels := ds.Gather(idx)
		logits := model.Forward(x, false)
		correct += int(nn.Accuracy(logits, labels)*float64(len(labels)) + 0.5)
	}
	return float64(correct) / float64(ds.Len())
}

// Point is one learning-curve sample: accuracy per series at a round.
type Point struct {
	Round int
	Acc   map[string]float64
}

// Curve accumulates learning-curve points.
type Curve struct {
	Points []Point
}

// Add appends a point.
func (c *Curve) Add(round int, acc map[string]float64) {
	c.Points = append(c.Points, Point{Round: round, Acc: acc})
}

// Series returns the (round, value) sequence for one named series.
func (c *Curve) Series(name string) (rounds []int, values []float64) {
	for _, p := range c.Points {
		if v, ok := p.Acc[name]; ok {
			rounds = append(rounds, p.Round)
			values = append(values, v)
		}
	}
	return rounds, values
}

// Final returns the last recorded value of a series (0 if absent).
func (c *Curve) Final(name string) float64 {
	for i := len(c.Points) - 1; i >= 0; i-- {
		if v, ok := c.Points[i].Acc[name]; ok {
			return v
		}
	}
	return 0
}

// CSV renders the curve with one column per series, for plotting.
func (c *Curve) CSV() string {
	names := map[string]bool{}
	for _, p := range c.Points {
		for k := range p.Acc {
			names[k] = true
		}
	}
	cols := make([]string, 0, len(names))
	for k := range names {
		cols = append(cols, k)
	}
	sort.Strings(cols)
	out := "round"
	for _, k := range cols {
		out += "," + k
	}
	out += "\n"
	for _, p := range c.Points {
		out += fmt.Sprintf("%d", p.Round)
		for _, k := range cols {
			if v, ok := p.Acc[k]; ok {
				out += fmt.Sprintf(",%.4f", v)
			} else {
				out += ","
			}
		}
		out += "\n"
	}
	return out
}

// MeanOf averages the named entries of acc, skipping absent ones.
func MeanOf(acc map[string]float64, names ...string) float64 {
	sum, n := 0.0, 0
	for _, name := range names {
		if v, ok := acc[name]; ok {
			sum += v
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
