package fednet

import (
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"adaptivefl/internal/core"
	"adaptivefl/internal/data"
	"adaptivefl/internal/models"
	"adaptivefl/internal/nn"
	"adaptivefl/internal/persist"
	"adaptivefl/internal/prune"
	"adaptivefl/internal/wire"
)

func testModelCfg() models.Config {
	return models.Config{Arch: models.ResNet18, NumClasses: 4, WidthScale: 0.07, Seed: 3}
}

func buildClients(t *testing.T, n int) []*core.Client {
	t.Helper()
	pool, err := prune.BuildPool(testModelCfg(), prune.Config{P: 3})
	if err != nil {
		t.Fatal(err)
	}
	dcfg := data.SynthConfig{Name: "t", Classes: 4, Channels: 3, Size: 32,
		Train: n * 16, Test: 20, Noise: 0.3, Seed: 61}
	train, _ := data.Generate(dcfg)
	rng := rand.New(rand.NewSource(62))
	parts := data.PartitionIID(rng, train.Len(), n)
	devices := core.NewPopulation(rng, n, [3]float64{4, 3, 3}, pool, core.DefaultDeviceModel())
	clients := make([]*core.Client, n)
	for i := range clients {
		clients[i] = &core.Client{ID: i, Data: train.Subset(parts[i]), Device: devices[i]}
	}
	return clients
}

func quickTrain() core.TrainConfig {
	return core.TrainConfig{LocalEpochs: 1, BatchSize: 8, LR: 0.05, Momentum: 0.5}
}

// TestFederatedOverHTTPMatchesLocal spins one HTTP agent per client and
// runs Algorithm 1 through the network stack; the resulting global model
// must be identical to the in-process run with the same seeds. Device
// jitter is disabled so both runs see the same capacities.
func TestFederatedOverHTTPMatchesLocal(t *testing.T) {
	mcfg := testModelCfg()
	pcfg := prune.Config{P: 3}
	clients := buildClients(t, 5)
	for _, c := range clients {
		c.Device.Jitter = 0
	}

	runLocal := func() map[string]float64 {
		srv, err := core.NewServer(core.Config{
			Model: mcfg, Pool: pcfg, ClientsPerRound: 3,
			Train: quickTrain(), Seed: 63,
		}, clients)
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.Run(2, nil); err != nil {
			t.Fatal(err)
		}
		sums := map[string]float64{}
		for name, v := range srv.Global() {
			sums[name] = v.Sum()
		}
		return sums
	}

	runHTTP := func() map[string]float64 {
		urls := make([]string, len(clients))
		for i, c := range clients {
			agent, err := NewAgent(c, mcfg, pcfg)
			if err != nil {
				t.Fatal(err)
			}
			ts := httptest.NewServer(agent)
			defer ts.Close()
			urls[i] = ts.URL
		}
		pool, err := prune.BuildPool(mcfg, pcfg)
		if err != nil {
			t.Fatal(err)
		}
		srv, err := core.NewServer(core.Config{
			Model: mcfg, Pool: pcfg, ClientsPerRound: 3,
			Train: quickTrain(), Seed: 63,
			Trainer: NewHTTPTrainer(urls, pool, quickTrain()),
		}, clients)
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.Run(2, nil); err != nil {
			t.Fatal(err)
		}
		sums := map[string]float64{}
		for name, v := range srv.Global() {
			sums[name] = v.Sum()
		}
		return sums
	}

	local, remote := runLocal(), runHTTP()
	if len(local) != len(remote) {
		t.Fatalf("parameter sets differ: %d vs %d", len(local), len(remote))
	}
	for name, v := range local {
		if remote[name] != v {
			t.Fatalf("parameter %q differs between local and HTTP runs", name)
		}
	}
}

func TestAgentPrunesToCapacity(t *testing.T) {
	mcfg := testModelCfg()
	clients := buildClients(t, 1)
	pool, err := prune.BuildPool(mcfg, prune.Config{P: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Force a weak capacity: only S-level models fit.
	sAnchor := pool.ByLevel(prune.LevelS)
	clients[0].Device.Base = sAnchor[len(sAnchor)-1].Size
	clients[0].Device.Jitter = 0

	agent, err := NewAgent(clients[0], mcfg, prune.Config{P: 3})
	if err != nil {
		t.Fatal(err)
	}
	global := buildGlobal(t, mcfg)
	l1 := pool.Largest()
	st, err := pool.ExtractState(global, l1)
	if err != nil {
		t.Fatal(err)
	}
	wire, err := encodeState(st)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := agent.Train(TrainRequest{SentIndex: l1.Index, State: wire, Train: quickTrain(), Seed: 64})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Failed {
		t.Fatal("agent failed unexpectedly")
	}
	if got := pool.Members[resp.GotIndex]; got.Level != prune.LevelS {
		t.Fatalf("agent trained %s, want S-level under weak capacity", got.Name())
	}
}

func TestAgentReportsFailure(t *testing.T) {
	mcfg := testModelCfg()
	clients := buildClients(t, 1)
	clients[0].Device.Base = 1 // nothing fits
	clients[0].Device.Jitter = 0
	agent, err := NewAgent(clients[0], mcfg, prune.Config{P: 3})
	if err != nil {
		t.Fatal(err)
	}
	global := buildGlobal(t, mcfg)
	l1 := agent.Pool.Largest()
	st, err := agent.Pool.ExtractState(global, l1)
	if err != nil {
		t.Fatal(err)
	}
	wire, err := encodeState(st)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := agent.Train(TrainRequest{SentIndex: l1.Index, State: wire, Train: quickTrain(), Seed: 65})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Failed {
		t.Fatal("agent should report failure when nothing fits")
	}
}

func TestAgentRejectsBadIndex(t *testing.T) {
	mcfg := testModelCfg()
	clients := buildClients(t, 1)
	agent, err := NewAgent(clients[0], mcfg, prune.Config{P: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := agent.Train(TrainRequest{SentIndex: 99}); err == nil {
		t.Fatal("bad index accepted")
	}
}

func TestHTTPTrainerErrors(t *testing.T) {
	pool, err := prune.BuildPool(testModelCfg(), prune.Config{P: 3})
	if err != nil {
		t.Fatal(err)
	}
	tr := NewHTTPTrainer([]string{"http://127.0.0.1:1"}, pool, quickTrain())
	if _, err := tr.TrainDispatch(5, pool.Largest(), nil, 1); err == nil {
		t.Fatal("missing URL accepted")
	}
}

// TestFederatedOverHTTPWithCodecMatchesLocal: with a lossy codec on both
// paths, the network stack and the in-process codec round-trip
// (core.Config.Codec) must produce bitwise-identical global models — the
// whole point of threading the codec through the simulation path.
func TestFederatedOverHTTPWithCodecMatchesLocal(t *testing.T) {
	mcfg := testModelCfg()
	pcfg := prune.Config{P: 3}
	for _, codec := range []wire.Codec{wire.Q8{}, wire.NewDeltaTopK()} {
		t.Run(codec.Tag(), func(t *testing.T) {
			clients := buildClients(t, 5)
			for _, c := range clients {
				c.Device.Jitter = 0
			}
			run := func(trainer core.Trainer, inProcessCodec wire.Codec) map[string]float64 {
				srv, err := core.NewServer(core.Config{
					Model: mcfg, Pool: pcfg, ClientsPerRound: 3,
					Train: quickTrain(), Seed: 63,
					Trainer: trainer, Codec: inProcessCodec,
				}, clients)
				if err != nil {
					t.Fatal(err)
				}
				if err := srv.Run(2, nil); err != nil {
					t.Fatal(err)
				}
				sums := map[string]float64{}
				for name, v := range srv.Global() {
					sums[name] = v.Sum()
				}
				// The ledger must carry real encoded sizes on every round.
				for _, st := range srv.Stats() {
					if st.SentBytes == 0 {
						t.Fatalf("round %d recorded no sent bytes", st.Round)
					}
				}
				return sums
			}

			local := run(nil, codec)

			urls := make([]string, len(clients))
			for i, c := range clients {
				agent, err := NewAgent(c, mcfg, pcfg)
				if err != nil {
					t.Fatal(err)
				}
				ts := httptest.NewServer(agent)
				defer ts.Close()
				urls[i] = ts.URL
			}
			pool, err := prune.BuildPool(mcfg, pcfg)
			if err != nil {
				t.Fatal(err)
			}
			trainer := NewHTTPTrainer(urls, pool, quickTrain())
			trainer.Codec = codec
			remote := run(trainer, nil)

			for name, v := range local {
				if remote[name] != v {
					t.Fatalf("parameter %q differs between codec-local and codec-HTTP runs", name)
				}
			}
		})
	}
}

// TestNegotiate: the server picks the first preferred codec each agent
// supports and falls back to the default for agents that support none.
func TestNegotiate(t *testing.T) {
	mcfg := testModelCfg()
	clients := buildClients(t, 2)
	urls := make([]string, 2)
	for i, accept := range [][]string{{wire.TagRaw, wire.TagQ8}, {wire.TagRaw}} {
		agent, err := NewAgent(clients[i], mcfg, prune.Config{P: 3})
		if err != nil {
			t.Fatal(err)
		}
		agent.Codecs = accept
		ts := httptest.NewServer(agent)
		defer ts.Close()
		urls[i] = ts.URL
	}
	pool, err := prune.BuildPool(mcfg, prune.Config{P: 3})
	if err != nil {
		t.Fatal(err)
	}
	tr := NewHTTPTrainer(urls, pool, quickTrain())
	tr.Negotiate(wire.NewDeltaTopK(), wire.Q8{})
	if got := tr.codecFor(0).Tag(); got != wire.TagQ8 {
		t.Fatalf("client 0 negotiated %q, want q8 (delta unsupported there)", got)
	}
	if got := tr.codecFor(1).Tag(); got != wire.TagRaw {
		t.Fatalf("client 1 negotiated %q, want the raw fallback", got)
	}
}

// TestAgentRejectsUnsupportedCodec: a dispatch tagged with a codec outside
// the agent's accept list must fail loudly.
func TestAgentRejectsUnsupportedCodec(t *testing.T) {
	mcfg := testModelCfg()
	clients := buildClients(t, 1)
	agent, err := NewAgent(clients[0], mcfg, prune.Config{P: 3})
	if err != nil {
		t.Fatal(err)
	}
	agent.Codecs = []string{wire.TagRaw}
	global := buildGlobal(t, mcfg)
	l1 := agent.Pool.Largest()
	st, err := agent.Pool.ExtractState(global, l1)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := wire.Q8{}.Encode(st, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := agent.Train(TrainRequest{SentIndex: l1.Index, Codec: wire.TagQ8, State: enc, Train: quickTrain(), Seed: 9}); err == nil {
		t.Fatal("unsupported codec accepted")
	}
}

// buildGlobal materialises a full-width global state for tests.
func buildGlobal(t *testing.T, mcfg models.Config) nn.State {
	t.Helper()
	m, err := models.Build(mcfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	return nn.StateDict(m)
}

// encodeState wraps persist.EncodeToBytes for tests.
func encodeState(st nn.State) ([]byte, error) { return persist.EncodeToBytes(st) }

// countingCodec wraps a codec and counts Decode calls; embedding keeps the
// tag, so agents resolve the real codec from the registry while the
// trainer's own decodes go through the wrapper.
type countingCodec struct {
	wire.Codec
	decodes *int32
}

func (c countingCodec) Decode(b []byte, ref nn.State) (nn.State, error) {
	atomic.AddInt32(c.decodes, 1)
	return c.Codec.Decode(b, ref)
}

// TestDownlinkRefCachedPerRound pins the artifact store behind the
// downlink: with a reference-using codec (delta), repeated dispatches of
// one member within one snapshot encode and decode the payload exactly
// once (the artifact's round-trip), later dispatches revalidate bodyless
// via If-None-Match, and a changed snapshot keys — and pays for — a fresh
// artifact.
func TestDownlinkRefCachedPerRound(t *testing.T) {
	mcfg := testModelCfg()
	clients := buildClients(t, 1)
	clients[0].Device.Jitter = 0
	agent, err := NewAgent(clients[0], mcfg, prune.Config{P: 3})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var postLens []int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost {
			mu.Lock()
			postLens = append(postLens, r.ContentLength)
			mu.Unlock()
		}
		agent.ServeHTTP(w, r)
	}))
	defer ts.Close()

	pool := agent.Pool
	delta, err := wire.ByTag(wire.TagDelta)
	if err != nil {
		t.Fatal(err)
	}
	var decodes int32
	tr := NewHTTPTrainer([]string{ts.URL}, pool, quickTrain())
	tr.Codec = countingCodec{Codec: delta, decodes: &decodes}

	global := buildGlobal(t, mcfg)
	sent := pool.Smallest()
	st, err := pool.ExtractState(global, sent)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := tr.TrainDispatch(0, sent, st, int64(100+i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := atomic.LoadInt32(&decodes); got != 1 {
		t.Fatalf("snapshot decoded the downlink artifact %d times, want 1", got)
	}
	if enc := tr.Artifacts().Encodes(); enc != 1 {
		t.Fatalf("store encoded %d artifacts, want 1", enc)
	}
	// Dispatches 2 and 3 must have revalidated: bodyless conditionals, a
	// fraction of the full dispatch.
	mu.Lock()
	lens := append([]int64(nil), postLens...)
	mu.Unlock()
	if len(lens) != 3 {
		t.Fatalf("agent saw %d POSTs, want 3", len(lens))
	}
	for i, n := range lens[1:] {
		if n >= lens[0]/2 {
			t.Fatalf("dispatch %d not revalidated: %d bytes vs %d full", i+2, n, lens[0])
		}
	}
	// A new snapshot (any weight change) is a new content address: the
	// next dispatch encodes afresh and carries a full body again.
	st2 := st.Clone()
	for _, ten := range st2 {
		ten.Data[0] += 0.5
		break
	}
	if _, err := tr.TrainDispatch(0, sent, st2, 200); err != nil {
		t.Fatal(err)
	}
	if got := atomic.LoadInt32(&decodes); got != 2 {
		t.Fatalf("new snapshot did not re-decode (total %d decodes, want 2)", got)
	}
	if enc := tr.Artifacts().Encodes(); enc != 2 {
		t.Fatalf("store encoded %d artifacts after snapshot change, want 2", enc)
	}
}
