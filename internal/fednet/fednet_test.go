package fednet

import (
	"math/rand"
	"net/http/httptest"
	"testing"

	"adaptivefl/internal/core"
	"adaptivefl/internal/data"
	"adaptivefl/internal/models"
	"adaptivefl/internal/nn"
	"adaptivefl/internal/persist"
	"adaptivefl/internal/prune"
)

func testModelCfg() models.Config {
	return models.Config{Arch: models.ResNet18, NumClasses: 4, WidthScale: 0.07, Seed: 3}
}

func buildClients(t *testing.T, n int) []*core.Client {
	t.Helper()
	pool, err := prune.BuildPool(testModelCfg(), prune.Config{P: 3})
	if err != nil {
		t.Fatal(err)
	}
	dcfg := data.SynthConfig{Name: "t", Classes: 4, Channels: 3, Size: 32,
		Train: n * 16, Test: 20, Noise: 0.3, Seed: 61}
	train, _ := data.Generate(dcfg)
	rng := rand.New(rand.NewSource(62))
	parts := data.PartitionIID(rng, train.Len(), n)
	devices := core.NewPopulation(rng, n, [3]float64{4, 3, 3}, pool, core.DefaultDeviceModel())
	clients := make([]*core.Client, n)
	for i := range clients {
		clients[i] = &core.Client{ID: i, Data: train.Subset(parts[i]), Device: devices[i]}
	}
	return clients
}

func quickTrain() core.TrainConfig {
	return core.TrainConfig{LocalEpochs: 1, BatchSize: 8, LR: 0.05, Momentum: 0.5}
}

// TestFederatedOverHTTPMatchesLocal spins one HTTP agent per client and
// runs Algorithm 1 through the network stack; the resulting global model
// must be identical to the in-process run with the same seeds. Device
// jitter is disabled so both runs see the same capacities.
func TestFederatedOverHTTPMatchesLocal(t *testing.T) {
	mcfg := testModelCfg()
	pcfg := prune.Config{P: 3}
	clients := buildClients(t, 5)
	for _, c := range clients {
		c.Device.Jitter = 0
	}

	runLocal := func() map[string]float64 {
		srv, err := core.NewServer(core.Config{
			Model: mcfg, Pool: pcfg, ClientsPerRound: 3,
			Train: quickTrain(), Seed: 63,
		}, clients)
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.Run(2, nil); err != nil {
			t.Fatal(err)
		}
		sums := map[string]float64{}
		for name, v := range srv.Global() {
			sums[name] = v.Sum()
		}
		return sums
	}

	runHTTP := func() map[string]float64 {
		urls := make([]string, len(clients))
		for i, c := range clients {
			agent, err := NewAgent(c, mcfg, pcfg)
			if err != nil {
				t.Fatal(err)
			}
			ts := httptest.NewServer(agent)
			defer ts.Close()
			urls[i] = ts.URL
		}
		pool, err := prune.BuildPool(mcfg, pcfg)
		if err != nil {
			t.Fatal(err)
		}
		srv, err := core.NewServer(core.Config{
			Model: mcfg, Pool: pcfg, ClientsPerRound: 3,
			Train: quickTrain(), Seed: 63,
			Trainer: NewHTTPTrainer(urls, pool, quickTrain()),
		}, clients)
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.Run(2, nil); err != nil {
			t.Fatal(err)
		}
		sums := map[string]float64{}
		for name, v := range srv.Global() {
			sums[name] = v.Sum()
		}
		return sums
	}

	local, remote := runLocal(), runHTTP()
	if len(local) != len(remote) {
		t.Fatalf("parameter sets differ: %d vs %d", len(local), len(remote))
	}
	for name, v := range local {
		if remote[name] != v {
			t.Fatalf("parameter %q differs between local and HTTP runs", name)
		}
	}
}

func TestAgentPrunesToCapacity(t *testing.T) {
	mcfg := testModelCfg()
	clients := buildClients(t, 1)
	pool, err := prune.BuildPool(mcfg, prune.Config{P: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Force a weak capacity: only S-level models fit.
	sAnchor := pool.ByLevel(prune.LevelS)
	clients[0].Device.Base = sAnchor[len(sAnchor)-1].Size
	clients[0].Device.Jitter = 0

	agent, err := NewAgent(clients[0], mcfg, prune.Config{P: 3})
	if err != nil {
		t.Fatal(err)
	}
	global := buildGlobal(t, mcfg)
	l1 := pool.Largest()
	st, err := pool.ExtractState(global, l1)
	if err != nil {
		t.Fatal(err)
	}
	wire, err := encodeState(st)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := agent.Train(TrainRequest{SentIndex: l1.Index, State: wire, Train: quickTrain(), Seed: 64})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Failed {
		t.Fatal("agent failed unexpectedly")
	}
	if got := pool.Members[resp.GotIndex]; got.Level != prune.LevelS {
		t.Fatalf("agent trained %s, want S-level under weak capacity", got.Name())
	}
}

func TestAgentReportsFailure(t *testing.T) {
	mcfg := testModelCfg()
	clients := buildClients(t, 1)
	clients[0].Device.Base = 1 // nothing fits
	clients[0].Device.Jitter = 0
	agent, err := NewAgent(clients[0], mcfg, prune.Config{P: 3})
	if err != nil {
		t.Fatal(err)
	}
	global := buildGlobal(t, mcfg)
	l1 := agent.Pool.Largest()
	st, err := agent.Pool.ExtractState(global, l1)
	if err != nil {
		t.Fatal(err)
	}
	wire, err := encodeState(st)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := agent.Train(TrainRequest{SentIndex: l1.Index, State: wire, Train: quickTrain(), Seed: 65})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Failed {
		t.Fatal("agent should report failure when nothing fits")
	}
}

func TestAgentRejectsBadIndex(t *testing.T) {
	mcfg := testModelCfg()
	clients := buildClients(t, 1)
	agent, err := NewAgent(clients[0], mcfg, prune.Config{P: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := agent.Train(TrainRequest{SentIndex: 99}); err == nil {
		t.Fatal("bad index accepted")
	}
}

func TestHTTPTrainerErrors(t *testing.T) {
	pool, err := prune.BuildPool(testModelCfg(), prune.Config{P: 3})
	if err != nil {
		t.Fatal(err)
	}
	tr := NewHTTPTrainer([]string{"http://127.0.0.1:1"}, pool, quickTrain())
	if _, err := tr.TrainDispatch(5, pool.Largest(), nil, 1); err == nil {
		t.Fatal("missing URL accepted")
	}
}

// buildGlobal materialises a full-width global state for tests.
func buildGlobal(t *testing.T, mcfg models.Config) nn.State {
	t.Helper()
	m, err := models.Build(mcfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	return nn.StateDict(m)
}

// encodeState wraps persist.EncodeToBytes for tests.
func encodeState(st nn.State) ([]byte, error) { return persist.EncodeToBytes(st) }
