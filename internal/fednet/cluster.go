package fednet

import (
	"fmt"
	"net"
	"net/http"
	"strings"

	"adaptivefl/internal/core"
	"adaptivefl/internal/models"
	"adaptivefl/internal/obs"
	"adaptivefl/internal/prune"
)

// Cluster is the real-transport half of the sched×fednet bridge: one
// loopback HTTP agent server per client, plus an HTTPTrainer pointed at
// them. Handing Cluster.Trainer to core.Config.Trainer makes every
// dispatch a real POST /train round trip — the event engine then prices
// *time* from its virtual clock and traces while the *bytes* it charges
// are the actual encoded payloads that crossed the loopback — so a
// simulation run exercises the same agent code, codec negotiation and
// re-negotiation paths a physical AIoT deployment would.
//
// Agents listen on ephemeral 127.0.0.1 ports; Close shuts them all down.
// The agents share the caller's *core.Client values (data shard + device),
// mirroring the paper's test-bed where the device owns its resource state:
// capacity draws happen inside the agent, one per dispatch, exactly where
// the in-process trainer's preflight plan would draw them.
type Cluster struct {
	Agents  []*Agent
	URLs    []string
	Trainer *HTTPTrainer

	servers   []*http.Server
	listeners []net.Listener
}

// NewCluster builds and starts one agent server per client and the
// trainer wired to them. The pool is rebuilt from the model and pool
// configs so agents and server agree on member indices. On error,
// anything already started is shut down.
func NewCluster(clients []*core.Client, mcfg models.Config, pcfg prune.Config, train core.TrainConfig) (*Cluster, error) {
	cl := &Cluster{}
	for _, c := range clients {
		agent, err := NewAgent(c, mcfg, pcfg)
		if err != nil {
			cl.Close()
			return nil, err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			cl.Close()
			return nil, fmt.Errorf("fednet: agent listener: %w", err)
		}
		srv := &http.Server{Handler: agent}
		go srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
		cl.Agents = append(cl.Agents, agent)
		cl.URLs = append(cl.URLs, "http://"+ln.Addr().String()+"/train")
		cl.servers = append(cl.servers, srv)
		cl.listeners = append(cl.listeners, ln)
	}
	pool, err := prune.BuildPool(mcfg, pcfg)
	if err != nil {
		cl.Close()
		return nil, err
	}
	cl.Trainer = NewHTTPTrainer(cl.URLs, pool, train)
	return cl, nil
}

// SetMetrics attaches per-agent registries and a trainer registry: each
// agent starts serving GET /metrics on its own port (its device-local
// view of the fleet), and the trainer times its dispatch round trips into
// the server-side registry. agents(i) supplies agent i's registry — pass
// a shared one for a fleet-wide rollup or fresh ones for per-device
// scrapes; nil leaves that agent unobserved.
func (cl *Cluster) SetMetrics(server *obs.Metrics, agents func(i int) *obs.Metrics) {
	if cl.Trainer != nil {
		cl.Trainer.Metrics = server
	}
	if agents == nil {
		return
	}
	for i, a := range cl.Agents {
		a.Metrics = agents(i)
	}
}

// SetWallLog points the trainer and every agent at one shared wall-clock
// record writer (obs.WallRecord JSONL, -wall-out): the server side logs
// each dispatch round trip and the agent side each served request, both
// keyed by the Fednet-Flight header so `fltrace join` can reunite them
// with the deterministic flight spans. JSONLWriter serialises internally,
// so one writer is safe across all agents and concurrent dispatches.
func (cl *Cluster) SetWallLog(w *obs.JSONLWriter) {
	if cl.Trainer != nil {
		cl.Trainer.Wall = w
	}
	for _, a := range cl.Agents {
		a.Wall = w
	}
}

// SetAdversary arms every agent with the adversarial spec: each agent
// draws its own client's behavior from the spec's deterministic hash
// streams, so the attacker set matches an in-process run with the same
// (seed, spec) pair exactly.
func (cl *Cluster) SetAdversary(spec core.AdversarySpec) {
	for _, a := range cl.Agents {
		a.Adversary = spec
	}
}

// MetricsURL returns agent i's /metrics endpoint.
func (cl *Cluster) MetricsURL(i int) string {
	return strings.TrimSuffix(cl.URLs[i], "/train") + "/metrics"
}

// Close shuts every agent server down. Safe on a partially built cluster.
func (cl *Cluster) Close() {
	for _, srv := range cl.servers {
		srv.Close()
	}
}
