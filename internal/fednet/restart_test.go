package fednet

import (
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"adaptivefl/internal/core"
	"adaptivefl/internal/models"
	"adaptivefl/internal/nn"
	"adaptivefl/internal/prune"
	"adaptivefl/internal/wire"
)

// swappableAgent lets a test "restart" an agent behind a stable URL.
type swappableAgent struct {
	mu    sync.Mutex
	agent *Agent
}

func (s *swappableAgent) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	a := s.agent
	s.mu.Unlock()
	a.ServeHTTP(w, r)
}

func (s *swappableAgent) swap(a *Agent) {
	s.mu.Lock()
	s.agent = a
	s.mu.Unlock()
}

// serverGlobal builds a fresh server solely for its initial global state.
func serverGlobal(t *testing.T, mcfg models.Config, pcfg prune.Config, clients []*core.Client) nn.State {
	t.Helper()
	srv, err := core.NewServer(core.Config{
		Model: mcfg, Pool: pcfg, ClientsPerRound: 1,
		Train: quickTrain(), Seed: 73,
	}, clients)
	if err != nil {
		t.Fatal(err)
	}
	return srv.Global()
}

// TestAgentRestartRenegotiates is the ROADMAP item end to end: an agent
// that restarts mid-experiment with a smaller codec set answers the stale
// negotiated codec with 415; the trainer must re-negotiate that client and
// retry, and the dispatch must succeed under the newly agreed codec.
func TestAgentRestartRenegotiates(t *testing.T) {
	mcfg := testModelCfg()
	pcfg := prune.Config{P: 3}
	clients := buildClients(t, 1)
	clients[0].Device.Jitter = 0

	first, err := NewAgent(clients[0], mcfg, pcfg)
	if err != nil {
		t.Fatal(err)
	}
	first.Codecs = []string{wire.TagRaw, wire.TagQ8}
	holder := &swappableAgent{agent: first}
	ts := httptest.NewServer(holder)
	defer ts.Close()

	pool, err := prune.BuildPool(mcfg, pcfg)
	if err != nil {
		t.Fatal(err)
	}
	trainer := NewHTTPTrainer([]string{ts.URL}, pool, quickTrain())
	trainer.Negotiate(wire.Q8{})
	if got := trainer.codecFor(0).Tag(); got != wire.TagQ8 {
		t.Fatalf("negotiated %q, want q8", got)
	}

	srv, err := core.NewServer(core.Config{
		Model: mcfg, Pool: pcfg, ClientsPerRound: 1,
		Train: quickTrain(), Seed: 71, Trainer: trainer,
	}, clients)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Round(); err != nil {
		t.Fatal(err)
	}
	d := srv.Stats()[0].Dispatches[0]
	if d.Codec != wire.TagQ8 {
		t.Fatalf("round 1 ledger codec = %q, want q8", d.Codec)
	}

	// "Restart" the agent with a codec set that no longer includes q8.
	second, err := NewAgent(clients[0], mcfg, pcfg)
	if err != nil {
		t.Fatal(err)
	}
	second.Codecs = []string{wire.TagRaw}
	if second.Instance() == first.Instance() {
		t.Fatal("restarted agent kept its instance ID")
	}
	holder.swap(second)

	if err := srv.Round(); err != nil {
		t.Fatalf("dispatch after restart: %v", err)
	}
	d = srv.Stats()[1].Dispatches[0]
	if d.Codec != wire.TagRaw {
		t.Fatalf("round 2 ledger codec = %q, want raw after re-negotiation", d.Codec)
	}
	if d.Failed {
		t.Fatal("dispatch after restart failed")
	}
	if got := trainer.codecFor(0).Tag(); got != wire.TagRaw {
		t.Fatalf("re-negotiated codec = %q, want raw", got)
	}
}

// TestRestartDetectedOnSuccessfulDispatch: a restarted agent that still
// accepts the negotiated codec answers normally, but the changed instance
// ID must refresh the trainer's per-client negotiation record.
func TestRestartDetectedOnSuccessfulDispatch(t *testing.T) {
	mcfg := testModelCfg()
	pcfg := prune.Config{P: 3}
	clients := buildClients(t, 1)
	clients[0].Device.Jitter = 0

	first, err := NewAgent(clients[0], mcfg, pcfg)
	if err != nil {
		t.Fatal(err)
	}
	holder := &swappableAgent{agent: first}
	ts := httptest.NewServer(holder)
	defer ts.Close()

	pool, err := prune.BuildPool(mcfg, pcfg)
	if err != nil {
		t.Fatal(err)
	}
	trainer := NewHTTPTrainer([]string{ts.URL}, pool, quickTrain())
	trainer.Negotiate(wire.Q8{})
	if trainer.instances[0] != first.Instance() {
		t.Fatalf("negotiation recorded instance %q, want %q", trainer.instances[0], first.Instance())
	}

	second, err := NewAgent(clients[0], mcfg, pcfg) // accepts everything, like first
	if err != nil {
		t.Fatal(err)
	}
	holder.swap(second)

	st, err := pool.ExtractState(serverGlobal(t, mcfg, pcfg, clients), pool.Smallest())
	if err != nil {
		t.Fatal(err)
	}
	res, err := trainer.TrainDispatch(0, pool.Smallest(), st, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.CodecTag != wire.TagQ8 {
		t.Fatalf("dispatch used %q, want q8 (still accepted)", res.CodecTag)
	}
	if trainer.instances[0] != second.Instance() {
		t.Fatalf("instance record %q not refreshed to %q", trainer.instances[0], second.Instance())
	}
}

// TestAgentErrorFeedbackInterops: an agent carrying uplink residuals must
// stay wire-compatible — the server decodes its uploads with the plain
// negotiated codec.
func TestAgentErrorFeedbackInterops(t *testing.T) {
	mcfg := testModelCfg()
	pcfg := prune.Config{P: 3}
	clients := buildClients(t, 1)
	clients[0].Device.Jitter = 0

	agent, err := NewAgent(clients[0], mcfg, pcfg)
	if err != nil {
		t.Fatal(err)
	}
	agent.ErrorFeedback = true
	ts := httptest.NewServer(agent)
	defer ts.Close()

	pool, err := prune.BuildPool(mcfg, pcfg)
	if err != nil {
		t.Fatal(err)
	}
	trainer := NewHTTPTrainer([]string{ts.URL}, pool, quickTrain())
	trainer.Negotiate(wire.Q8{})
	st, err := pool.ExtractState(serverGlobal(t, mcfg, pcfg, clients), pool.Smallest())
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 2; round++ { // second round carries a residual
		res, err := trainer.TrainDispatch(0, pool.Smallest(), st, int64(9+round))
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if res.Failed || res.State == nil {
			t.Fatalf("round %d: no state back", round)
		}
		if res.CodecTag != wire.TagQ8 {
			t.Fatalf("round %d: codec %q, want q8", round, res.CodecTag)
		}
	}
}
