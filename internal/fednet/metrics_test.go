package fednet

import (
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"adaptivefl/internal/core"
	"adaptivefl/internal/obs"
	"adaptivefl/internal/prune"
)

// scrape GETs a metrics endpoint and returns the body.
func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d", url, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("GET %s: content type %q", url, ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// parsePrometheus structurally validates a text-format scrape — every
// series line parses, and its family was TYPE-declared first — and
// returns series name{labels} → value.
func parsePrometheus(t *testing.T, text string) map[string]float64 {
	t.Helper()
	series := map[string]float64{}
	typed := map[string]bool{}
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			typed[parts[2]] = true
			continue
		}
		if strings.HasPrefix(line, "#") || line == "" {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed series line %q", line)
		}
		key, val := line[:sp], line[sp+1:]
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Fatalf("series %q: bad value %q: %v", key, val, err)
		}
		family := key
		if i := strings.IndexByte(family, '{'); i >= 0 {
			family = family[:i]
		}
		family = strings.TrimSuffix(family, "_bucket")
		family = strings.TrimSuffix(family, "_sum")
		family = strings.TrimSuffix(family, "_count")
		if !typed[family] {
			t.Fatalf("series %q has no preceding TYPE declaration", key)
		}
		series[key] = v
	}
	return series
}

// TestAgentMetrics covers the fleet's live introspection path end to end:
// agents of a running cluster serve Prometheus text on their own ports,
// the scrape parses, the core series are present, and counters are
// monotone across a mid-run scrape. The pprof mount is opt-in per agent.
func TestAgentMetrics(t *testing.T) {
	mcfg := testModelCfg()
	pcfg := prune.Config{P: 3}
	clients := buildClients(t, 3)
	cluster, err := NewCluster(clients, mcfg, pcfg, quickTrain())
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	m := obs.NewMetrics()
	cluster.SetMetrics(m, func(int) *obs.Metrics { return m })
	cluster.Agents[0].Pprof = true

	srv, err := core.NewServer(core.Config{
		Model: mcfg, Pool: pcfg, ClientsPerRound: 2,
		Train: quickTrain(), Seed: 63,
		Trainer: cluster.Trainer,
	}, clients)
	if err != nil {
		t.Fatal(err)
	}

	if err := srv.Run(1, nil); err != nil {
		t.Fatal(err)
	}
	mid := parsePrometheus(t, scrape(t, cluster.MetricsURL(0)))

	trainKey := `fl_http_requests_total{route="train"}`
	dispatchKey := `fl_http_requests_total{route="dispatch"}`
	for _, key := range []string{trainKey, dispatchKey, "fl_http_request_bytes_total", "fl_http_response_bytes_total"} {
		if mid[key] <= 0 {
			t.Fatalf("mid-run scrape: %s = %v; want > 0\nscrape:\n%s", key, mid[key], cluster.MetricsURL(0))
		}
	}
	if mid[trainKey] != mid[dispatchKey] {
		t.Fatalf("served train requests (%v) != dispatch round trips (%v) on a shared registry",
			mid[trainKey], mid[dispatchKey])
	}

	if err := srv.Run(1, nil); err != nil {
		t.Fatal(err)
	}
	end := parsePrometheus(t, scrape(t, cluster.MetricsURL(1)))
	for _, key := range []string{trainKey, dispatchKey, "fl_http_request_bytes_total"} {
		if end[key] < mid[key] {
			t.Fatalf("counter %s went backwards: %v -> %v", key, mid[key], end[key])
		}
		if end[key] == mid[key] {
			t.Fatalf("counter %s did not advance over a round: %v", key, end[key])
		}
	}
	// Histogram invariant: the +Inf bucket equals the count.
	infKey := `fl_http_request_seconds_bucket{route="train",le="+Inf"}`
	countKey := `fl_http_request_seconds_count{route="train"}`
	if end[infKey] != end[countKey] || end[countKey] <= 0 {
		t.Fatalf("train latency histogram: +Inf bucket %v, count %v", end[infKey], end[countKey])
	}

	// pprof is mounted only where opted in.
	base0 := strings.TrimSuffix(cluster.MetricsURL(0), "/metrics")
	resp, err := http.Get(base0 + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof on opted-in agent: %d", resp.StatusCode)
	}
	base1 := strings.TrimSuffix(cluster.MetricsURL(1), "/metrics")
	resp, err = http.Get(base1 + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("pprof served on an agent that did not opt in")
	}
}
