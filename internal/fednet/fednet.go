// Package fednet runs AdaptiveFL over a real network, mirroring the
// paper's test-bed deployment: each device runs an Agent — an HTTP service
// owning its local data and resource state — and the cloud server executes
// Algorithm 1 with an HTTPTrainer that dispatches submodels to agents and
// collects the (possibly further pruned) trained submodels.
//
// The wire format is JSON envelopes carrying codec-encoded state dicts
// (internal/wire), so a dispatch is one POST /train round trip. Requests
// carry the codec tag the server chose for this agent — negotiated via
// GET /train, which lists the agent's supported codecs — and the agent
// answers in the same encoding. An untagged request means the raw persist
// v1 format, so pre-codec peers interoperate. Device-side resource-aware
// pruning happens inside the agent, exactly as in the paper: the server
// never sees the device's capacity, only which model size came back.
package fednet

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"adaptivefl/internal/core"
	"adaptivefl/internal/models"
	"adaptivefl/internal/nn"
	"adaptivefl/internal/obs"
	"adaptivefl/internal/prune"
	"adaptivefl/internal/wire"
)

// instanceHeader carries the agent's per-process instance ID on every
// response, so the server can detect a restarted agent (whose codec
// support may have changed) and re-negotiate instead of failing rounds.
const instanceHeader = "Fednet-Instance"

// FlightHeader carries the dispatch's flight ID (core.Flight.ID, decimal)
// on every POST /train request, and is echoed back on the response. It is
// the cross-process correlation contract: the same ID appears in the
// deterministic flight span (-trace-out), so agent- and server-side
// wall-clock records (-wall-out) join back to the simulated flight in
// `fltrace join`. Absent (or 0) when the trainer was driven without a
// flight — e.g. a bare TrainDispatch.
const FlightHeader = "Fednet-Flight"

// errCodecNotAccepted marks a dispatch whose codec the agent refuses;
// ServeHTTP maps it to 415 so the trainer can re-negotiate and retry.
var errCodecNotAccepted = errors.New("codec not accepted")

// errArtifactNotHeld marks a conditional (not-modified) dispatch whose
// ETag the agent no longer holds; ServeHTTP maps it to 412 so the trainer
// forgets the stale delivery and resends the full body.
var errArtifactNotHeld = errors.New("artifact not held")

// agentArtifactCap bounds each agent's decoded-artifact cache (and the
// trainer's per-client mirror of it): an agent rarely holds more than one
// live snapshot's worth of widths, so a few entries cover the live
// artifact plus a stale in-flight tail.
const agentArtifactCap = 4

// instanceCounter makes agent instance IDs unique within a process; the
// random prefix distinguishes processes (an agent restart usually is a new
// process, but tests restart in-process).
var instanceCounter atomic.Int64

// TrainRequest is the server→device dispatch payload.
type TrainRequest struct {
	// SentIndex identifies the dispatched pool member.
	SentIndex int `json:"sent_index"`
	// Codec tags the encoding of State (and of the expected upload).
	// Empty means raw, the pre-codec persist v1 format.
	Codec string `json:"codec,omitempty"`
	// State is the codec-encoded weight slice of the dispatched model
	// (empty on a NotModified dispatch — the agent already holds it).
	State []byte `json:"state"`
	// ETag content-addresses the dispatched artifact (the encoded form of
	// wire.ArtifactKey: global-snapshot hash, member, codec). The agent
	// caches its decode of State under this tag; empty on dispatches from
	// a trainer without snapshot hashing.
	ETag string `json:"etag,omitempty"`
	// NotModified makes the dispatch a revalidation: State is empty and
	// the agent must train on its cached decode of ETag. An agent that no
	// longer holds the tag answers 412 and the trainer falls back to a
	// full-body dispatch. The conditional request also carries ETag as an
	// If-None-Match header, so the skip is visible at the HTTP layer.
	NotModified bool `json:"not_modified,omitempty"`
	// Train carries the local hyperparameters.
	Train core.TrainConfig `json:"train"`
	// Seed makes local training reproducible.
	Seed int64 `json:"seed"`
}

// TrainResponse is the device→server upload payload.
type TrainResponse struct {
	// Failed reports that no derivable pool member fits the device.
	Failed bool `json:"failed"`
	// GotIndex identifies the pool member the device actually trained.
	GotIndex int `json:"got_index"`
	// Codec tags the encoding of State; delta uploads diff against the
	// dispatched state the agent decoded.
	Codec string `json:"codec,omitempty"`
	// State is the codec-encoded trained weights (empty when Failed).
	State []byte `json:"state,omitempty"`
	// Samples is the local dataset size (the aggregation weight).
	Samples int `json:"samples"`
}

// CodecList is the GET /train negotiation payload: the codec tags the
// agent accepts, in its order of preference, plus the agent's instance ID
// (a fresh ID per construction, so a restart is observable).
type CodecList struct {
	Codecs   []string `json:"codecs"`
	Instance string   `json:"instance,omitempty"`
}

// Agent is the device-side service: it owns a data shard and a device
// resource model, prunes received models to its currently available
// capacity, trains them, and returns the result.
type Agent struct {
	Client *core.Client
	Model  models.Config
	Pool   *prune.Pool
	// Codecs restricts which wire codecs this agent accepts, in order of
	// preference. Nil accepts every registered codec, preferring raw.
	Codecs []string
	// ErrorFeedback carries each upload's quantization residual into the
	// next upload (wire.ErrorFeedback). Sender-side only: the stream stays
	// wire-compatible, so the server needs no configuration.
	ErrorFeedback bool
	// Metrics, when set, times every served request (route, latency,
	// payload bytes) and adds a GET /metrics endpoint to this agent in
	// Prometheus text format — live introspection of a running device
	// fleet. Nil leaves the agent unobserved with no overhead.
	Metrics *obs.Metrics
	// Pprof additionally mounts net/http/pprof under /debug/pprof/ on
	// this agent (opt-in; requires Metrics).
	Pprof bool
	// Wall, when set, appends one obs.WallRecord per served train/negotiate
	// request (side "agent"), keyed by the Fednet-Flight header so the
	// handler time joins the deterministic flight span in `fltrace join`.
	Wall *obs.JSONLWriter
	// Adversary, when enabled, makes this agent act out its client's
	// deterministic behavior draw (core.AdversarySpec.BehaviorOf) — the
	// HTTP mirror of the in-process injection, tampering bit-identically.
	Adversary core.AdversarySpec

	// instance identifies this agent construction; a restarted agent gets
	// a fresh ID, which is how the server notices its negotiation is stale.
	instance string
	// advMu/advPrev hold the stale-replay behavior's previous trained
	// state (the agent serves exactly one client).
	advMu   sync.Mutex
	advPrev nn.State
	// ef holds this agent's residual streams, one per codec tag.
	efMu sync.Mutex
	ef   map[string]*wire.ErrorFeedback
	// arts is the decoded-artifact cache (FIFO, agentArtifactCap entries,
	// newest last): the agent's side of the ETag contract. Entries are the
	// agent's decode of a full-body dispatch, keyed by its ETag, and are
	// trained on read-only — a NotModified revalidation trains the cached
	// state without re-downloading or re-decoding anything.
	artMu sync.Mutex
	arts  []agentArtifact
}

// agentArtifact is one cached decoded dispatch.
type agentArtifact struct {
	etag  string
	state nn.State
}

// holdArtifact caches the decoded state under its ETag, mirroring the
// trainer's per-client bookkeeping: re-held tags move to newest, and the
// oldest entry beyond agentArtifactCap is evicted.
func (a *Agent) holdArtifact(etag string, st nn.State) {
	a.artMu.Lock()
	defer a.artMu.Unlock()
	for i, e := range a.arts {
		if e.etag == etag {
			a.arts = append(a.arts[:i], a.arts[i+1:]...)
			break
		}
	}
	a.arts = append(a.arts, agentArtifact{etag: etag, state: st})
	if len(a.arts) > agentArtifactCap {
		a.arts = a.arts[1:]
	}
}

// heldArtifact returns the cached decode for an ETag, if still held.
func (a *Agent) heldArtifact(etag string) (nn.State, bool) {
	a.artMu.Lock()
	defer a.artMu.Unlock()
	for _, e := range a.arts {
		if e.etag == etag {
			return e.state, true
		}
	}
	return nil, false
}

// NewAgent builds a device agent. The pool is rebuilt from the model and
// pool configuration so agents and server agree on member indices.
func NewAgent(client *core.Client, mcfg models.Config, pcfg prune.Config) (*Agent, error) {
	pool, err := prune.BuildPool(mcfg, pcfg)
	if err != nil {
		return nil, err
	}
	return &Agent{
		Client: client, Model: mcfg, Pool: pool,
		instance: fmt.Sprintf("agent-%d-%08x", instanceCounter.Add(1), rand.Int63()),
	}, nil
}

// Instance returns the agent's per-construction instance ID.
func (a *Agent) Instance() string { return a.instance }

// uplinkCodec returns the codec the agent answers with: the negotiated one,
// wrapped with this agent's persistent error-feedback stream when enabled.
// Residual streams are per codec tag and live as long as the agent — a
// restart naturally resets them along with the instance ID.
func (a *Agent) uplinkCodec(c wire.Codec) wire.Codec {
	if !a.ErrorFeedback {
		return c
	}
	a.efMu.Lock()
	defer a.efMu.Unlock()
	if a.ef == nil {
		a.ef = map[string]*wire.ErrorFeedback{}
	}
	ef, ok := a.ef[c.Tag()]
	if !ok {
		ef = wire.NewErrorFeedback(c)
		a.ef[c.Tag()] = ef
	}
	return ef
}

// SupportedCodecs returns the codec tags this agent accepts, in
// preference order.
func (a *Agent) SupportedCodecs() []string {
	if a.Codecs != nil {
		return a.Codecs
	}
	tags := []string{wire.TagRaw}
	for _, t := range wire.Tags() {
		if t != wire.TagRaw {
			tags = append(tags, t)
		}
	}
	return tags
}

// acceptsCodec reports whether tag is in the agent's accept list.
func (a *Agent) acceptsCodec(tag string) bool {
	if tag == "" {
		tag = wire.TagRaw
	}
	for _, t := range a.SupportedCodecs() {
		if t == tag {
			return true
		}
	}
	return false
}

// countingWriter tallies response body bytes for the request metrics.
type countingWriter struct {
	http.ResponseWriter
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.ResponseWriter.Write(p)
	c.n += int64(n)
	return n, err
}

// ServeHTTP handles POST /train (a dispatch) and GET /train (codec
// negotiation: the supported tag list). With Metrics set it additionally
// serves GET /metrics (Prometheus text exposition), optionally the pprof
// endpoints, and times every train/negotiate request.
func (a *Agent) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if a.Metrics != nil {
		switch {
		case r.Method == http.MethodGet && strings.HasSuffix(r.URL.Path, "/metrics"):
			w.Header().Set(instanceHeader, a.instance)
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			a.Metrics.WritePrometheus(w)
			return
		case strings.HasPrefix(r.URL.Path, "/debug/pprof"):
			// Profile endpoints are opt-in per agent; without the opt-in the
			// path 404s rather than falling through to the train handler.
			if a.Pprof {
				obs.Handler(a.Metrics, true).ServeHTTP(w, r)
			} else {
				http.NotFound(w, r)
			}
			return
		}
	}
	if a.Metrics == nil && a.Wall == nil {
		a.serveTrain(w, r)
		return
	}
	route := "train"
	if r.Method == http.MethodGet {
		route = "negotiate"
	}
	cw := &countingWriter{ResponseWriter: w}
	start := time.Now()
	a.serveTrain(cw, r)
	secs := time.Since(start).Seconds()
	if a.Metrics != nil {
		a.Metrics.HTTPRequest(route, secs, r.ContentLength, cw.n)
	}
	if a.Wall != nil {
		flight, _ := strconv.ParseInt(r.Header.Get(FlightHeader), 10, 64)
		reqBytes := r.ContentLength
		if reqBytes < 0 {
			reqBytes = 0 // chunked: length unknown at the header
		}
		_ = a.Wall.Record(obs.WallRecord{
			Kind: obs.WallKind, Flight: flight, Side: "agent", Route: route,
			Client: -1, Instance: a.instance, Seconds: secs,
			ReqBytes: reqBytes, RespBytes: cw.n,
		})
	}
}

// serveTrain is the train/negotiate handler body.
func (a *Agent) serveTrain(w http.ResponseWriter, r *http.Request) {
	w.Header().Set(instanceHeader, a.instance)
	if fl := r.Header.Get(FlightHeader); fl != "" {
		// Echo the flight ID so the server can assert the correlation
		// contract end to end.
		w.Header().Set(FlightHeader, fl)
	}
	if r.Method == http.MethodGet {
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(CodecList{Codecs: a.SupportedCodecs(), Instance: a.instance}); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
		return
	}
	if r.Method != http.MethodPost {
		http.Error(w, "fednet: POST only", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var req TrainRequest
	if err := json.Unmarshal(body, &req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	resp, err := a.Train(req)
	if err != nil {
		// A codec this agent does not speak is a negotiation problem, not a
		// server error: 415 tells the trainer to re-negotiate and retry
		// (the agent restarted with a different codec set).
		if errors.Is(err, errCodecNotAccepted) {
			http.Error(w, err.Error(), http.StatusUnsupportedMediaType)
			return
		}
		// A revalidation for an artifact this agent no longer holds is a
		// cache-coherence problem, not a server error: 412 tells the
		// trainer to forget the delivery and resend the full body.
		if errors.Is(err, errArtifactNotHeld) {
			http.Error(w, err.Error(), http.StatusPreconditionFailed)
			return
		}
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// Train executes one dispatch on this device: resource-aware pruning of
// the received model, local SGD, and state upload.
func (a *Agent) Train(req TrainRequest) (TrainResponse, error) {
	if req.SentIndex < 0 || req.SentIndex >= len(a.Pool.Members) {
		return TrainResponse{}, fmt.Errorf("fednet: sent index %d outside pool", req.SentIndex)
	}
	if !a.acceptsCodec(req.Codec) {
		return TrainResponse{}, fmt.Errorf("fednet: codec %q %w (supported: %v)", req.Codec, errCodecNotAccepted, a.SupportedCodecs())
	}
	codec, err := wire.ByTag(req.Codec)
	if err != nil {
		return TrainResponse{}, fmt.Errorf("fednet: %w", err)
	}
	sent := a.Pool.Members[req.SentIndex]
	capacity := a.Client.Device.Capacity()
	got, ok := a.Pool.LargestFit(sent, capacity)
	if !ok {
		return TrainResponse{Failed: true}, nil
	}
	var st nn.State
	if req.NotModified {
		// Revalidation: no body crossed the wire; train on the cached
		// decode of the tagged artifact. Refusing with errArtifactNotHeld
		// (→ 412) when the tag was evicted lets the trainer recover with a
		// full-body resend instead of failing the flight.
		st, ok = a.heldArtifact(req.ETag)
		if !ok {
			return TrainResponse{}, fmt.Errorf("fednet: etag %s %w", req.ETag, errArtifactNotHeld)
		}
	} else {
		var err error
		st, err = codec.Decode(req.State, nil)
		if err != nil {
			return TrainResponse{}, fmt.Errorf("fednet: decode dispatched state: %w", err)
		}
		if req.ETag != "" {
			a.holdArtifact(req.ETag, st)
		}
	}
	rng := rand.New(rand.NewSource(req.Seed))
	trained, err := core.TrainLocal(a.Model, got.Widths, st, a.Client.Data, req.Train, rng)
	if err != nil {
		return TrainResponse{}, err
	}
	behavior := a.Adversary.BehaviorOf(a.Client.ID)
	trained = a.applyBehavior(behavior, trained, st)
	// The upload diffs against the dispatched state as this device
	// decoded it — the reference the server reconstructs the same way.
	up, err := a.uplinkCodec(codec).Encode(trained, st)
	if err != nil {
		return TrainResponse{}, err
	}
	if behavior == core.Corrupt {
		// Bit-flip the encoded payload exactly as the in-process path
		// does — the envelope stays well-formed, the inner state does not.
		a.Adversary.CorruptPayload(a.Client.ID, up)
	}
	return TrainResponse{GotIndex: got.Index, Codec: codec.Tag(), State: up, Samples: a.Client.Data.Len()}, nil
}

// applyBehavior mirrors the in-process trainer's post-training injection:
// stateless transforms go through core.AdversarySpec.Mutate; stale-replay
// keeps the previous trained state in this agent (one agent = one client,
// and a client trains at most one flight at a time, so the replay order
// is deterministic).
func (a *Agent) applyBehavior(b core.Behavior, trained, sent nn.State) nn.State {
	if b == core.StaleReplay {
		a.advMu.Lock()
		prev := a.advPrev
		a.advPrev = trained.Clone()
		a.advMu.Unlock()
		if prev != nil {
			return prev
		}
		return trained
	}
	return a.Adversary.Mutate(b, trained, sent)
}

// HTTPTrainer implements core.Trainer by POSTing dispatches to per-client
// agent URLs.
type HTTPTrainer struct {
	// URLs maps client ID to the agent's /train endpoint.
	URLs []string
	// Pool resolves returned member indices.
	Pool *prune.Pool
	// Train is forwarded to agents.
	Train core.TrainConfig
	// HTTPClient defaults to a client with a 5-minute timeout.
	HTTPClient *http.Client
	// Codec encodes dispatches (nil means raw). Negotiate can override it
	// per client with what each agent actually supports.
	Codec wire.Codec
	// Metrics, when set, times every dispatch round trip (route
	// "dispatch": wall-clock latency, downlink/uplink payload bytes) —
	// the server-side view of the fleet's HTTP traffic. Wall-clock only,
	// so it never perturbs the simulation's virtual-time determinism.
	Metrics *obs.Metrics
	// Wall, when set, appends one obs.WallRecord per dispatch round trip
	// (side "server"), keyed by flight ID when the dispatch came through
	// TrainFlight. Like Metrics, it observes wall time only and never
	// perturbs virtual-time determinism.
	Wall *obs.JSONLWriter
	// FullDownlinks disables If-None-Match revalidation: every dispatch
	// carries the full encoded body even when the agent should already
	// hold the artifact. The artifact store still serves the bytes
	// (encode-once is unaffected); only the bodyless skip is suppressed.
	// Parity and debugging knob — a full-body run must be bit-identical
	// to a revalidating one. Set before training starts.
	FullDownlinks bool

	// mu guards the negotiation state below; dispatches to different
	// clients run concurrently and may re-negotiate mid-round.
	mu sync.Mutex
	// perClient holds negotiated per-agent codecs, keyed by client ID.
	perClient map[int]wire.Codec
	// preferred remembers Negotiate's codec ranking so a detected agent
	// restart can re-run the same negotiation for one client.
	preferred []wire.Codec
	// instances remembers each agent's instance ID; a changed ID means the
	// agent restarted and its negotiation may be stale.
	instances map[int]string
	// artifacts is the encode-once store for downlink dispatches, keyed by
	// (snapshot hash, member, codec): every dispatch of a member within one
	// snapshot serves the same cached bytes, and the artifact's decoded
	// state doubles as the uplink reference for delta uploads — content
	// addressing makes a stale hit impossible no matter how the trainer is
	// driven, with no per-round eviction hook needed.
	artifacts *wire.ArtifactStore
	// delivered mirrors, per client, the FIFO of artifact ETags the agent's
	// cache should hold (newest last, agentArtifactCap deep): a dispatch
	// whose tag is mirrored here goes out as a bodyless If-None-Match
	// revalidation. The mirror is a belief, not a guarantee — an agent
	// answers 412 when it has lost the tag (restart, shared agent), and the
	// trainer forgets the delivery and resends the full body.
	delivered map[int][]string
}

// artStore returns the trainer's artifact store, creating it on first
// use so zero-value trainers (tests build them as literals) work.
func (t *HTTPTrainer) artStore() *wire.ArtifactStore {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.artifacts == nil {
		t.artifacts = wire.NewArtifactStore(0)
	}
	return t.artifacts
}

// Artifacts exposes the downlink artifact store (for tests and stats).
func (t *HTTPTrainer) Artifacts() *wire.ArtifactStore { return t.artStore() }

// deliveredHas reports whether the agent for clientID is believed to
// hold the artifact.
func (t *HTTPTrainer) deliveredHas(clientID int, etag string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, e := range t.delivered[clientID] {
		if e == etag {
			return true
		}
	}
	return false
}

// markDelivered records a full-body delivery, mirroring the agent's FIFO
// eviction exactly (see Agent.holdArtifact).
func (t *HTTPTrainer) markDelivered(clientID int, etag string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.delivered == nil {
		t.delivered = map[int][]string{}
	}
	held := t.delivered[clientID]
	for i, e := range held {
		if e == etag {
			held = append(held[:i], held[i+1:]...)
			break
		}
	}
	held = append(held, etag)
	if len(held) > agentArtifactCap {
		held = held[1:]
	}
	t.delivered[clientID] = held
}

// forgetDelivered drops one mirrored delivery (the agent answered 412).
func (t *HTTPTrainer) forgetDelivered(clientID int, etag string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	held := t.delivered[clientID]
	for i, e := range held {
		if e == etag {
			t.delivered[clientID] = append(held[:i], held[i+1:]...)
			return
		}
	}
}

// NewHTTPTrainer builds a trainer for the given agent endpoints.
func NewHTTPTrainer(urls []string, pool *prune.Pool, train core.TrainConfig) *HTTPTrainer {
	return &HTTPTrainer{
		URLs: urls, Pool: pool, Train: train,
		HTTPClient: &http.Client{Timeout: 5 * time.Minute},
	}
}

// codecFor resolves the codec for one client: negotiated first, then the
// trainer default, then raw.
func (t *HTTPTrainer) codecFor(clientID int) wire.Codec {
	t.mu.Lock()
	defer t.mu.Unlock()
	if c, ok := t.perClient[clientID]; ok {
		return c
	}
	if t.Codec != nil {
		return t.Codec
	}
	return wire.Raw{}
}

// Negotiate asks every agent (GET on its /train URL) for its supported
// codecs and records, per client, the first of preferred that the agent
// accepts. Clients whose agents support none of preferred — or whose
// negotiation request fails — fall back to raw, the baseline every agent
// speaks, NOT the trainer default (which the agent might reject and turn
// a transient negotiation failure into a round-fatal dispatch error).
// Negotiation is an optimisation, not a requirement, so per-agent errors
// do not abort it. The preference ranking is remembered: when a later
// dispatch detects that an agent restarted (new instance ID, or a 415
// codec rejection), that one client is re-negotiated automatically.
func (t *HTTPTrainer) Negotiate(preferred ...wire.Codec) {
	t.mu.Lock()
	t.preferred = preferred
	t.mu.Unlock()
	for id := range t.URLs {
		t.negotiateClient(id)
	}
}

// negotiateClient (re-)negotiates the codec for one client and records the
// agent's instance ID.
func (t *HTTPTrainer) negotiateClient(id int) {
	chosen := wire.Codec(wire.Raw{})
	instance := ""
	t.mu.Lock()
	preferred := t.preferred
	t.mu.Unlock()
	if httpResp, err := t.HTTPClient.Get(t.URLs[id]); err == nil {
		var list CodecList
		err = json.NewDecoder(httpResp.Body).Decode(&list)
		httpResp.Body.Close()
		if err == nil && httpResp.StatusCode == http.StatusOK {
			instance = list.Instance
			supported := make(map[string]bool, len(list.Codecs))
			for _, tag := range list.Codecs {
				supported[tag] = true
			}
			for _, c := range preferred {
				if supported[c.Tag()] {
					chosen = c
					break
				}
			}
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.perClient == nil {
		t.perClient = make(map[int]wire.Codec, len(t.URLs))
		t.instances = make(map[int]string, len(t.URLs))
	}
	t.perClient[id] = chosen
	t.instances[id] = instance
	// A (re-)negotiated agent is treated as a fresh cache: anything we
	// believed delivered may be gone (restart), so fall back to full
	// bodies until deliveries are re-observed.
	delete(t.delivered, id)
}

// noteInstance records the instance ID seen on a response and reports
// whether it differs from the previously recorded one (agent restart).
func (t *HTTPTrainer) noteInstance(clientID int, instance string) (restarted bool) {
	if instance == "" {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.instances == nil {
		t.instances = make(map[int]string, len(t.URLs))
	}
	prev, known := t.instances[clientID]
	t.instances[clientID] = instance
	return known && prev != "" && prev != instance
}

// TrainDispatch implements core.Trainer over HTTP. If the agent answers
// 415 (it restarted with a different codec set and no longer speaks the
// negotiated encoding), the trainer re-negotiates that one client and
// retries the dispatch once with the freshly agreed codec.
func (t *HTTPTrainer) TrainDispatch(clientID int, sent prune.Submodel, sentState nn.State, seed int64) (core.TrainResult, error) {
	return t.TrainArtifact(0, clientID, sent, sentState, 0, seed)
}

// TrainFlight implements core.FlightTrainer: identical to TrainDispatch,
// except the flight ID rides along as the Fednet-Flight request header so
// agent-side wall records correlate with the deterministic flight span.
// flightID 0 means "no flight" and omits the header.
func (t *HTTPTrainer) TrainFlight(flightID int64, clientID int, sent prune.Submodel, sentState nn.State, seed int64) (core.TrainResult, error) {
	return t.TrainArtifact(flightID, clientID, sent, sentState, 0, seed)
}

// TrainArtifact implements core.ArtifactTrainer: the server passes the
// snapshot hash its dispatch attribution used, so the trainer's artifact
// keys (and ETags) agree with the ledger's encode-once accounting. snap 0
// (a bare TrainDispatch) falls back to hashing the dispatched state —
// still a sound content address, since extraction is deterministic.
func (t *HTTPTrainer) TrainArtifact(flightID int64, clientID int, sent prune.Submodel, sentState nn.State, snap uint64, seed int64) (core.TrainResult, error) {
	if clientID < 0 || clientID >= len(t.URLs) {
		return core.TrainResult{}, fmt.Errorf("fednet: no agent URL for client %d", clientID)
	}
	if snap == 0 {
		snap = nn.HashState(sentState)
	}
	res, status, err := t.dispatchOnce(flightID, clientID, sent, sentState, snap, seed, true)
	if status == http.StatusPreconditionFailed {
		// The agent lost the artifact we believed delivered (dispatchOnce
		// already forgot the mirror entry): resend with the full body.
		res, status, err = t.dispatchOnce(flightID, clientID, sent, sentState, snap, seed, false)
	}
	if status == http.StatusUnsupportedMediaType {
		t.negotiateClient(clientID)
		res, _, err = t.dispatchOnce(flightID, clientID, sent, sentState, snap, seed, true)
	}
	return res, err
}

// dispatchOnce performs one POST round trip with the currently negotiated
// codec, returning the HTTP status for the retry decision. The downlink
// body comes from the artifact store — one encode per (snapshot, member,
// codec), shared by every client — and goes out bodyless (If-None-Match)
// when allowCond is set and the client is believed to hold the artifact.
func (t *HTTPTrainer) dispatchOnce(flightID int64, clientID int, sent prune.Submodel, sentState nn.State, snap uint64, seed int64, allowCond bool) (core.TrainResult, int, error) {
	codec := t.codecFor(clientID)
	key := wire.ArtifactKey{Snapshot: snap, Member: sent.Index, Codec: codec.Tag()}
	art, err := t.artStore().Get(key, codec, func() (nn.State, error) { return sentState, nil })
	if err != nil {
		return core.TrainResult{}, 0, err
	}
	etag := key.ETag()
	conditional := allowCond && !t.FullDownlinks && t.deliveredHas(clientID, etag)
	treq := TrainRequest{
		SentIndex: sent.Index, Codec: codec.Tag(), ETag: etag,
		Train: t.Train, Seed: seed,
	}
	if conditional {
		treq.NotModified = true
	} else {
		treq.State = art.Bytes
	}
	reqBody, err := json.Marshal(treq)
	if err != nil {
		return core.TrainResult{}, 0, err
	}
	req, err := http.NewRequest(http.MethodPost, t.URLs[clientID], bytes.NewReader(reqBody))
	if err != nil {
		return core.TrainResult{}, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	if conditional {
		req.Header.Set("If-None-Match", etag)
	}
	if flightID > 0 {
		req.Header.Set(FlightHeader, strconv.FormatInt(flightID, 10))
	}
	start := time.Now()
	httpResp, err := t.HTTPClient.Do(req)
	if err != nil {
		return core.TrainResult{}, 0, fmt.Errorf("fednet: dispatch to client %d: %w", clientID, err)
	}
	defer httpResp.Body.Close()
	if t.Metrics != nil || t.Wall != nil {
		defer func() {
			secs := time.Since(start).Seconds()
			if t.Metrics != nil {
				t.Metrics.HTTPRequest("dispatch", secs, int64(len(reqBody)), httpResp.ContentLength)
			}
			if t.Wall != nil {
				respBytes := httpResp.ContentLength
				if respBytes < 0 {
					respBytes = 0 // chunked: length unknown at the header
				}
				_ = t.Wall.Record(obs.WallRecord{
					Kind: obs.WallKind, Flight: flightID, Side: "server", Route: "train",
					Client: clientID, Instance: httpResp.Header.Get(instanceHeader),
					Seconds: secs, ReqBytes: int64(len(reqBody)),
					RespBytes: respBytes, Status: httpResp.StatusCode,
				})
			}
		}()
	}
	if httpResp.StatusCode != http.StatusOK {
		if httpResp.StatusCode == http.StatusPreconditionFailed {
			// The agent no longer holds the artifact we revalidated: the
			// mirror was stale. Forget it; the caller resends the body.
			t.forgetDelivered(clientID, etag)
		}
		msg, _ := io.ReadAll(io.LimitReader(httpResp.Body, 1024))
		return core.TrainResult{}, httpResp.StatusCode,
			fmt.Errorf("fednet: client %d returned %s: %s", clientID, httpResp.Status, msg)
	}
	// A successful response from a different agent instance means the
	// agent restarted since negotiation (it still accepted this codec, so
	// the dispatch stands) — refresh its negotiation so the NEXT dispatch
	// uses the codec the new instance actually prefers.
	if t.noteInstance(clientID, httpResp.Header.Get(instanceHeader)) {
		t.negotiateClient(clientID)
	}
	var resp TrainResponse
	if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
		return core.TrainResult{}, httpResp.StatusCode, err
	}
	// SentBytes is the LOGICAL artifact size on every path: a not-modified
	// dispatch accounts the artifact it revalidated, so the ledger (and
	// everything derived from it) is bit-identical whether or not the body
	// was actually skipped. The skip shows up in the span's DownPath and
	// the fl_down_bytes_total{path=...} split, not in the sizes.
	sentBytes := int64(len(art.Bytes))
	if resp.Failed {
		return core.TrainResult{Failed: true, SentBytes: sentBytes, CodecTag: codec.Tag()}, httpResp.StatusCode, nil
	}
	if !conditional {
		// The agent decoded and cached the full-body artifact: mirror the
		// hold (revalidations leave the agent's FIFO order untouched, so
		// they leave the mirror untouched too).
		t.markDelivered(clientID, etag)
	}
	// From here on the envelope is well-formed HTTP+JSON from a live agent:
	// anything wrong with its *content* — a member index outside the pool,
	// an unknown or undecodable inner payload, a non-positive sample count
	// — is the agent's fault, not the transport's. Surface it as a
	// Rejected result so the flight ledgers a rejection and the round
	// completes; erroring here would fail the whole run, and a non-200
	// status would trigger a pointless re-negotiation.
	reject := func(got prune.Submodel, tag string) (core.TrainResult, int, error) {
		return core.TrainResult{
			Rejected: true, Got: got, SentBytes: sentBytes,
			GotBytes: int64(len(resp.State)), CodecTag: tag,
		}, httpResp.StatusCode, nil
	}
	if resp.GotIndex < 0 || resp.GotIndex >= len(t.Pool.Members) {
		return reject(t.Pool.Smallest(), codec.Tag())
	}
	got := t.Pool.Members[resp.GotIndex]
	upCodec, err := wire.ByTag(resp.Codec)
	if err != nil {
		return reject(got, codec.Tag())
	}
	var ref nn.State
	if upCodec.UsesRef() {
		// The agent diffed against its decode of the dispatched artifact —
		// exactly the artifact's cached round-trip state, with no extra
		// decode on either side.
		ref = art.State
	}
	st, err := upCodec.Decode(resp.State, ref)
	if err != nil {
		return reject(got, upCodec.Tag())
	}
	if resp.Samples <= 0 {
		return reject(got, upCodec.Tag())
	}
	return core.TrainResult{
		State:     st,
		Samples:   resp.Samples,
		Got:       got,
		SentBytes: sentBytes,
		GotBytes:  int64(len(resp.State)),
		CodecTag:  upCodec.Tag(),
	}, httpResp.StatusCode, nil
}

var _ core.Trainer = (*HTTPTrainer)(nil)
var _ core.FlightTrainer = (*HTTPTrainer)(nil)
var _ core.ArtifactTrainer = (*HTTPTrainer)(nil)
