// Package fednet runs AdaptiveFL over a real network, mirroring the
// paper's test-bed deployment: each device runs an Agent — an HTTP service
// owning its local data and resource state — and the cloud server executes
// Algorithm 1 with an HTTPTrainer that dispatches submodels to agents and
// collects the (possibly further pruned) trained submodels.
//
// The wire format is JSON envelopes carrying persist-encoded state dicts,
// so a dispatch is one POST /train round trip. Device-side resource-aware
// pruning happens inside the agent, exactly as in the paper: the server
// never sees the device's capacity, only which model size came back.
package fednet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"time"

	"adaptivefl/internal/core"
	"adaptivefl/internal/models"
	"adaptivefl/internal/nn"
	"adaptivefl/internal/persist"
	"adaptivefl/internal/prune"
)

// TrainRequest is the server→device dispatch payload.
type TrainRequest struct {
	// SentIndex identifies the dispatched pool member.
	SentIndex int `json:"sent_index"`
	// State is the persist-encoded weight slice of the dispatched model.
	State []byte `json:"state"`
	// Train carries the local hyperparameters.
	Train core.TrainConfig `json:"train"`
	// Seed makes local training reproducible.
	Seed int64 `json:"seed"`
}

// TrainResponse is the device→server upload payload.
type TrainResponse struct {
	// Failed reports that no derivable pool member fits the device.
	Failed bool `json:"failed"`
	// GotIndex identifies the pool member the device actually trained.
	GotIndex int `json:"got_index"`
	// State is the persist-encoded trained weights (empty when Failed).
	State []byte `json:"state,omitempty"`
	// Samples is the local dataset size (the aggregation weight).
	Samples int `json:"samples"`
}

// Agent is the device-side service: it owns a data shard and a device
// resource model, prunes received models to its currently available
// capacity, trains them, and returns the result.
type Agent struct {
	Client *core.Client
	Model  models.Config
	Pool   *prune.Pool
}

// NewAgent builds a device agent. The pool is rebuilt from the model and
// pool configuration so agents and server agree on member indices.
func NewAgent(client *core.Client, mcfg models.Config, pcfg prune.Config) (*Agent, error) {
	pool, err := prune.BuildPool(mcfg, pcfg)
	if err != nil {
		return nil, err
	}
	return &Agent{Client: client, Model: mcfg, Pool: pool}, nil
}

// ServeHTTP handles POST /train.
func (a *Agent) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "fednet: POST only", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var req TrainRequest
	if err := json.Unmarshal(body, &req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	resp, err := a.Train(req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// Train executes one dispatch on this device: resource-aware pruning of
// the received model, local SGD, and state upload.
func (a *Agent) Train(req TrainRequest) (TrainResponse, error) {
	if req.SentIndex < 0 || req.SentIndex >= len(a.Pool.Members) {
		return TrainResponse{}, fmt.Errorf("fednet: sent index %d outside pool", req.SentIndex)
	}
	sent := a.Pool.Members[req.SentIndex]
	capacity := a.Client.Device.Capacity()
	got, ok := a.Pool.LargestFit(sent, capacity)
	if !ok {
		return TrainResponse{Failed: true}, nil
	}
	st, err := persist.DecodeFromBytes(req.State)
	if err != nil {
		return TrainResponse{}, fmt.Errorf("fednet: decode dispatched state: %w", err)
	}
	rng := rand.New(rand.NewSource(req.Seed))
	trained, err := core.TrainLocal(a.Model, got.Widths, st, a.Client.Data, req.Train, rng)
	if err != nil {
		return TrainResponse{}, err
	}
	wire, err := persist.EncodeToBytes(trained)
	if err != nil {
		return TrainResponse{}, err
	}
	return TrainResponse{GotIndex: got.Index, State: wire, Samples: a.Client.Data.Len()}, nil
}

// HTTPTrainer implements core.Trainer by POSTing dispatches to per-client
// agent URLs.
type HTTPTrainer struct {
	// URLs maps client ID to the agent's /train endpoint.
	URLs []string
	// Pool resolves returned member indices.
	Pool *prune.Pool
	// Train is forwarded to agents.
	Train core.TrainConfig
	// HTTPClient defaults to a client with a 5-minute timeout.
	HTTPClient *http.Client
}

// NewHTTPTrainer builds a trainer for the given agent endpoints.
func NewHTTPTrainer(urls []string, pool *prune.Pool, train core.TrainConfig) *HTTPTrainer {
	return &HTTPTrainer{
		URLs: urls, Pool: pool, Train: train,
		HTTPClient: &http.Client{Timeout: 5 * time.Minute},
	}
}

// TrainDispatch implements core.Trainer over HTTP.
func (t *HTTPTrainer) TrainDispatch(clientID int, sent prune.Submodel, sentState nn.State, seed int64) (core.TrainResult, error) {
	if clientID < 0 || clientID >= len(t.URLs) {
		return core.TrainResult{}, fmt.Errorf("fednet: no agent URL for client %d", clientID)
	}
	wire, err := persist.EncodeToBytes(sentState)
	if err != nil {
		return core.TrainResult{}, err
	}
	reqBody, err := json.Marshal(TrainRequest{
		SentIndex: sent.Index, State: wire, Train: t.Train, Seed: seed,
	})
	if err != nil {
		return core.TrainResult{}, err
	}
	httpResp, err := t.HTTPClient.Post(t.URLs[clientID], "application/json", bytes.NewReader(reqBody))
	if err != nil {
		return core.TrainResult{}, fmt.Errorf("fednet: dispatch to client %d: %w", clientID, err)
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(httpResp.Body, 1024))
		return core.TrainResult{}, fmt.Errorf("fednet: client %d returned %s: %s", clientID, httpResp.Status, msg)
	}
	var resp TrainResponse
	if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
		return core.TrainResult{}, err
	}
	if resp.Failed {
		return core.TrainResult{Failed: true}, nil
	}
	if resp.GotIndex < 0 || resp.GotIndex >= len(t.Pool.Members) {
		return core.TrainResult{}, fmt.Errorf("fednet: client %d returned bad member index %d", clientID, resp.GotIndex)
	}
	st, err := persist.DecodeFromBytes(resp.State)
	if err != nil {
		return core.TrainResult{}, fmt.Errorf("fednet: decode upload from client %d: %w", clientID, err)
	}
	return core.TrainResult{
		State:   st,
		Samples: resp.Samples,
		Got:     t.Pool.Members[resp.GotIndex],
	}, nil
}

var _ core.Trainer = (*HTTPTrainer)(nil)
