package fednet

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"adaptivefl/internal/core"
	"adaptivefl/internal/prune"
)

// fakeAgent serves a canned handler in place of a real device agent.
func fakeAgent(t *testing.T, handler http.HandlerFunc) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(handler)
	t.Cleanup(ts.Close)
	return ts
}

// dispatchTo runs one TrainDispatch against the given endpoint with a
// real encoded state.
func dispatchTo(t *testing.T, url string) (core.TrainResult, error) {
	t.Helper()
	mcfg := testModelCfg()
	pool, err := prune.BuildPool(mcfg, prune.Config{P: 3})
	if err != nil {
		t.Fatal(err)
	}
	global := buildGlobal(t, mcfg)
	l1 := pool.Largest()
	st, err := pool.ExtractState(global, l1)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewHTTPTrainer([]string{url}, pool, quickTrain())
	return tr.TrainDispatch(0, l1, st, 1)
}

// TestTrainerRejectsMalformedUpload: an agent answering a well-formed
// envelope whose state blob is not decodable must come back as a
// Rejected result — the round completes and the garbage never reaches
// aggregation — not as a run-failing error.
func TestTrainerRejectsMalformedUpload(t *testing.T) {
	ts := fakeAgent(t, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(TrainResponse{
			GotIndex: 0, State: []byte("these are not weights"), Samples: 10,
		})
	})
	res, err := dispatchTo(t, ts.URL)
	if err != nil {
		t.Fatalf("corrupt upload should reject, not error: %v", err)
	}
	if !res.Rejected {
		t.Fatal("malformed upload accepted")
	}
	if res.State != nil {
		t.Fatal("rejected result carried state")
	}
	if res.GotBytes == 0 {
		t.Fatal("rejected upload should still record the bytes that crossed")
	}
}

// TestTrainerRejectsBadMemberIndex: a member index outside the pool is an
// agent-content fault — Rejected, not an error.
func TestTrainerRejectsBadMemberIndex(t *testing.T) {
	ts := fakeAgent(t, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(TrainResponse{
			GotIndex: 99, State: []byte{1, 2, 3}, Samples: 10,
		})
	})
	res, err := dispatchTo(t, ts.URL)
	if err != nil {
		t.Fatalf("bad member index should reject, not error: %v", err)
	}
	if !res.Rejected {
		t.Fatal("bad member index accepted")
	}
}

// TestTrainerRejectsMalformedJSON: a response body that is not JSON at
// all also fails loudly.
func TestTrainerRejectsMalformedJSON(t *testing.T) {
	ts := fakeAgent(t, func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("<html>not json</html>"))
	})
	if _, err := dispatchTo(t, ts.URL); err == nil {
		t.Fatal("malformed JSON accepted")
	}
}

// TestTrainerHandlesConnectionDrop: the agent's connection dying mid
// response (device crash, network partition) must return a transport
// error.
func TestTrainerHandlesConnectionDrop(t *testing.T) {
	ts := fakeAgent(t, func(w http.ResponseWriter, r *http.Request) {
		panic(http.ErrAbortHandler) // kill the connection mid-request
	})
	if _, err := dispatchTo(t, ts.URL); err == nil {
		t.Fatal("dropped connection produced no error")
	}
}

// TestTrainerHandlesFailedResponse: Failed=true is a protocol outcome,
// not an error — the result must carry the flag and no state.
func TestTrainerHandlesFailedResponse(t *testing.T) {
	ts := fakeAgent(t, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(TrainResponse{Failed: true})
	})
	res, err := dispatchTo(t, ts.URL)
	if err != nil {
		t.Fatalf("Failed=true should not be an error: %v", err)
	}
	if !res.Failed {
		t.Fatal("Failed flag lost")
	}
	if res.State != nil {
		t.Fatal("failed response carried state")
	}
	if res.SentBytes == 0 {
		t.Fatal("failed dispatch should still record the bytes sent down")
	}
}

// TestRoundFailsWhenAgentDiesMidRound: a full Algorithm 1 round over HTTP
// where one agent's server is down must abort the round with an error
// naming the transport, and keep the other agents unharmed.
func TestRoundFailsWhenAgentDiesMidRound(t *testing.T) {
	mcfg := testModelCfg()
	pcfg := prune.Config{P: 3}
	clients := buildClients(t, 3)
	for _, c := range clients {
		c.Device.Jitter = 0
	}
	urls := make([]string, len(clients))
	var dead *httptest.Server
	for i, c := range clients {
		agent, err := NewAgent(c, mcfg, pcfg)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(agent)
		urls[i] = ts.URL
		if i == 1 {
			dead = ts
		} else {
			defer ts.Close()
		}
	}
	dead.Close() // this agent is gone before the round starts
	pool, err := prune.BuildPool(mcfg, pcfg)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := core.NewServer(core.Config{
		Model: mcfg, Pool: pcfg, ClientsPerRound: 3,
		Train: quickTrain(), Seed: 63,
		Trainer: NewHTTPTrainer(urls, pool, quickTrain()),
	}, clients)
	if err != nil {
		t.Fatal(err)
	}
	err = srv.Round()
	if err == nil {
		t.Fatal("round succeeded with a dead agent")
	}
	if !strings.Contains(err.Error(), "dispatch to client") {
		t.Fatalf("error should identify the failed dispatch, got: %v", err)
	}
}

// TestAgentHTTPErrorPaths drives the agent's ServeHTTP through its error
// branches: wrong method, unparsable JSON, and a request whose state blob
// is not a valid envelope.
func TestAgentHTTPErrorPaths(t *testing.T) {
	mcfg := testModelCfg()
	clients := buildClients(t, 1)
	agent, err := NewAgent(clients[0], mcfg, prune.Config{P: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Make every pool member fit so the junk-state request reaches the
	// decode path instead of short-circuiting as Failed.
	clients[0].Device.Base = agent.Pool.Largest().Size * 2
	clients[0].Device.Jitter = 0
	ts := httptest.NewServer(agent)
	defer ts.Close()

	req, _ := http.NewRequest(http.MethodPut, ts.URL, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("PUT returned %d, want 405", resp.StatusCode)
	}

	resp, err = http.Post(ts.URL, "application/json", strings.NewReader("{broken"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("broken JSON returned %d, want 400", resp.StatusCode)
	}

	body, _ := json.Marshal(TrainRequest{SentIndex: 0, State: []byte("junk"), Train: quickTrain()})
	resp, err = http.Post(ts.URL, "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("junk state returned %d, want 500", resp.StatusCode)
	}

	// GET negotiates: the supported codec list must parse and lead with raw.
	resp, err = http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	var list CodecList
	err = json.NewDecoder(resp.Body).Decode(&list)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(list.Codecs) == 0 || list.Codecs[0] != "raw" {
		t.Fatalf("codec list %v should lead with raw", list.Codecs)
	}
}
