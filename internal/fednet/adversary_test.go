package fednet

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"adaptivefl/internal/core"
	"adaptivefl/internal/prune"
	"adaptivefl/internal/wire"
)

// TestRoundCompletesWithCorruptAgent: one agent of three answers every
// dispatch with a well-formed envelope around an undecodable payload. The
// round must complete (no error), ledger exactly one rejection, merge the
// honest two, and never trigger a re-negotiation.
func TestRoundCompletesWithCorruptAgent(t *testing.T) {
	mcfg := testModelCfg()
	pcfg := prune.Config{P: 3}
	clients := buildClients(t, 3)
	for _, c := range clients {
		c.Device.Jitter = 0
	}
	var negotiations atomic.Int64
	urls := make([]string, len(clients))
	for i, c := range clients {
		if i == 1 {
			ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if r.Method == http.MethodGet {
					negotiations.Add(1)
				}
				w.Header().Set("Content-Type", "application/json")
				json.NewEncoder(w).Encode(TrainResponse{
					GotIndex: 0, State: []byte("garbage payload"), Samples: 10,
				})
			}))
			t.Cleanup(ts.Close)
			urls[i] = ts.URL
			continue
		}
		agent, err := NewAgent(c, mcfg, pcfg)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(agent)
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
	}
	pool, err := prune.BuildPool(mcfg, pcfg)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := core.NewServer(core.Config{
		Model: mcfg, Pool: pcfg, ClientsPerRound: 3,
		Train: quickTrain(), Seed: 63,
		Trainer: NewHTTPTrainer(urls, pool, quickTrain()),
	}, clients)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Round(); err != nil {
		t.Fatalf("round with a corrupt agent must complete: %v", err)
	}
	st := srv.Stats()[0]
	if st.Rejected != 1 {
		t.Fatalf("rejected = %d, want exactly the corrupt agent's dispatch", st.Rejected)
	}
	rejected, merged := 0, 0
	for _, d := range st.Dispatches {
		switch {
		case d.Rejected:
			rejected++
			if d.Failed {
				t.Fatal("rejected dispatch also flagged Failed")
			}
			if d.GotBytes == 0 {
				t.Fatal("rejected dispatch lost its uplink byte count")
			}
		case !d.Failed && !d.Dropped:
			merged++
		}
	}
	if rejected != 1 || merged != 2 {
		t.Fatalf("got %d rejected / %d merged dispatches, want 1 / 2", rejected, merged)
	}
	if n := negotiations.Load(); n != 0 {
		t.Fatalf("corrupt payload triggered %d re-negotiations, want 0", n)
	}
}

// TestHTTPAdversaryParityWithInProcess: with the same (seed, spec) pair,
// agents acting out a stateless behavior over HTTP must yield the same
// global model as the in-process injection — the attacker set and its
// tampering are bit-reproducible across transports.
func TestHTTPAdversaryParityWithInProcess(t *testing.T) {
	mcfg := testModelCfg()
	pcfg := prune.Config{P: 3}
	adv, err := core.ParseAdversary("signflip:frac=0.6")
	if err != nil {
		t.Fatal(err)
	}
	adv.Seed = 17
	attackers := 0
	for c := 0; c < 5; c++ {
		if adv.BehaviorOf(c) != core.Honest {
			attackers++
		}
	}
	if attackers == 0 {
		t.Fatal("spec drew no attackers — the parity would be vacuous")
	}

	run := func(overHTTP bool) map[string]float64 {
		clients := buildClients(t, 5)
		for _, c := range clients {
			c.Device.Jitter = 0
		}
		cfg := core.Config{
			Model: mcfg, Pool: pcfg, ClientsPerRound: 3,
			Train: quickTrain(), Seed: 63,
		}
		if overHTTP {
			urls := make([]string, len(clients))
			for i, c := range clients {
				agent, err := NewAgent(c, mcfg, pcfg)
				if err != nil {
					t.Fatal(err)
				}
				agent.Adversary = adv
				ts := httptest.NewServer(agent)
				t.Cleanup(ts.Close)
				urls[i] = ts.URL
			}
			pool, err := prune.BuildPool(mcfg, pcfg)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Trainer = NewHTTPTrainer(urls, pool, quickTrain())
		} else {
			cfg.Adversary = adv
		}
		srv, err := core.NewServer(cfg, clients)
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.Run(2, nil); err != nil {
			t.Fatal(err)
		}
		sums := map[string]float64{}
		for name, v := range srv.Global() {
			sums[name] = v.Sum()
		}
		return sums
	}

	local, remote := run(false), run(true)
	for name, v := range local {
		if remote[name] != v {
			t.Fatalf("parameter %q differs between in-process and HTTP adversarial runs", name)
		}
	}
}

// TestAgentStaleReplay: a stale-replay agent's second upload re-sends its
// first trained state byte-for-byte, even though the fresh training (a
// different seed) would have produced different weights.
func TestAgentStaleReplay(t *testing.T) {
	mcfg := testModelCfg()
	pcfg := prune.Config{P: 3}
	clients := buildClients(t, 1)
	clients[0].Device.Base = 1 << 40
	clients[0].Device.Jitter = 0
	agent, err := NewAgent(clients[0], mcfg, pcfg)
	if err != nil {
		t.Fatal(err)
	}
	adv, err := core.ParseAdversary("stale-replay:frac=1")
	if err != nil {
		t.Fatal(err)
	}
	adv.Seed = 5
	agent.Adversary = adv
	if adv.BehaviorOf(0) != core.StaleReplay {
		t.Fatal("frac=1 spec must make client 0 a stale-replayer")
	}
	pool := agent.Pool
	global := buildGlobal(t, mcfg)
	st, err := pool.ExtractState(global, pool.Largest())
	if err != nil {
		t.Fatal(err)
	}
	enc, err := wire.Raw{}.Encode(st, nil)
	if err != nil {
		t.Fatal(err)
	}
	req := TrainRequest{SentIndex: pool.Largest().Index, Codec: wire.TagRaw,
		State: enc, Train: quickTrain(), Seed: 1}
	first, err := agent.Train(req)
	if err != nil {
		t.Fatal(err)
	}
	req.Seed = 2 // fresh training would differ
	second, err := agent.Train(req)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.State, second.State) {
		t.Fatal("stale-replay second upload should replay the first trained state")
	}
	req.Seed = 3
	third, err := agent.Train(req)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(second.State, third.State) {
		t.Fatal("third upload should replay the second training, not the first")
	}
}
