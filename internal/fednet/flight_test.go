package fednet

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"

	"adaptivefl/internal/obs"
	"adaptivefl/internal/prune"
)

// TestFlightHeaderRoundTrip pins the cross-process correlation contract:
// TrainFlight sends the flight ID as the Fednet-Flight request header, the
// agent echoes it on the response, both sides log a wall record carrying
// that ID, and a plain TrainDispatch sends no header at all.
func TestFlightHeaderRoundTrip(t *testing.T) {
	mcfg := testModelCfg()
	pcfg := prune.Config{P: 3}
	clients := buildClients(t, 1)
	clients[0].Device.Jitter = 0
	agent, err := NewAgent(clients[0], mcfg, pcfg)
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var reqHeaders, respHeaders []string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		agent.ServeHTTP(w, r)
		mu.Lock()
		reqHeaders = append(reqHeaders, r.Header.Get(FlightHeader))
		respHeaders = append(respHeaders, w.Header().Get(FlightHeader))
		mu.Unlock()
	}))
	defer ts.Close()

	pool, err := prune.BuildPool(mcfg, pcfg)
	if err != nil {
		t.Fatal(err)
	}
	trainer := NewHTTPTrainer([]string{ts.URL}, pool, quickTrain())

	var wallBuf bytes.Buffer
	wall := obs.NewJSONLWriter(&wallBuf)
	trainer.Wall = wall
	agent.Wall = wall

	global := buildGlobal(t, mcfg)
	if _, err := trainer.TrainFlight(7, 0, pool.Members[0], global, 99); err != nil {
		t.Fatal(err)
	}
	if _, err := trainer.TrainDispatch(0, pool.Members[0], global, 99); err != nil {
		t.Fatal(err)
	}
	if err := wall.Close(); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	if want := []string{"7", ""}; len(reqHeaders) != 2 || reqHeaders[0] != want[0] || reqHeaders[1] != want[1] {
		t.Fatalf("request flight headers = %q; want %q", reqHeaders, want)
	}
	if respHeaders[0] != "7" {
		t.Fatalf("response did not echo the flight header: %q", respHeaders[0])
	}
	if respHeaders[1] != "" {
		t.Fatalf("flightless dispatch got an echoed header: %q", respHeaders[1])
	}

	// Both sides logged the flight-7 dispatch under its ID; the bare
	// TrainDispatch logged with flight 0.
	byKey := map[string]int{}
	for _, line := range strings.Split(strings.TrimSpace(wallBuf.String()), "\n") {
		var rec obs.WallRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("wall line %q: %v", line, err)
		}
		if rec.Kind != obs.WallKind || rec.Route != "train" {
			t.Fatalf("unexpected wall record %+v", rec)
		}
		if rec.Seconds <= 0 {
			t.Fatalf("wall record without a duration: %+v", rec)
		}
		byKey[rec.Side+"/"+strconv.FormatInt(rec.Flight, 10)]++
	}
	for _, key := range []string{"server/7", "agent/7", "server/0", "agent/0"} {
		if byKey[key] != 1 {
			t.Fatalf("wall records by side/flight = %v; want one each of server/7 agent/7 server/0 agent/0", byKey)
		}
	}
	if agentInst := agent.Instance(); agentInst == "" {
		t.Fatal("agent instance empty")
	}
}
