package fednet

import (
	"reflect"
	"strings"
	"testing"

	"adaptivefl/internal/core"
	"adaptivefl/internal/prune"
	"adaptivefl/internal/sched"
	"adaptivefl/internal/testbed"
	"adaptivefl/internal/wire"
)

// TestEngineHTTPParityWithInProcess is the real-transport acceptance bar:
// driving the event engine with the HTTP trainer against loopback agents
// must reproduce the in-process codec path bit-for-bit — same global
// weights, same ledger (including the real encoded byte counts the cost
// model charged), same event log, same commits — for the same seed, trace
// and codec. Virtual time prices the schedule; the loopback transport
// supplies the actual payloads.
//
// The trace is a permanent straggler (no offline windows): a mid-flight
// dropout is the one place the two paths legitimately diverge in the
// ledger, because the in-process preflight plan skips a sealed dropout's
// training (TrainSkipped) while a real agent has already been asked.
func TestEngineHTTPParityWithInProcess(t *testing.T) {
	mcfg := testModelCfg()
	pcfg := prune.Config{P: 3}
	commits := 2

	codecs := []wire.Codec{wire.Q8{}}
	if !testing.Short() {
		codecs = append(codecs, wire.NewDeltaTopK()) // exercises the downlink-reference path
	}
	for _, codec := range codecs {
		t.Run(codec.Tag(), func(t *testing.T) {
			run := func(overHTTP bool) (map[string]float64, []core.RoundStats, []string, []sched.Commit) {
				clients := buildClients(t, 5) // fresh, bit-identical population per run
				cfg := core.Config{
					Model: mcfg, Pool: pcfg, ClientsPerRound: 3,
					Train: quickTrain(), Seed: 63,
				}
				var cluster *Cluster
				if overHTTP {
					var err error
					cluster, err = NewCluster(clients, mcfg, pcfg, quickTrain())
					if err != nil {
						t.Fatal(err)
					}
					defer cluster.Close()
					cluster.Trainer.Codec = codec
					cfg.Trainer = cluster.Trainer
				} else {
					cfg.Codec = codec
				}
				srv, err := core.NewServer(cfg, clients)
				if err != nil {
					t.Fatal(err)
				}
				sim, err := testbed.NewSim(testbed.Table5Platform())
				if err != nil {
					t.Fatal(err)
				}
				weak := func(c int) bool { return clients[c].Device.Class == core.Weak }
				trace := &sched.RandomTrace{
					Seed: 909, MeanOn: 1e9,
					SlowProb: 1, SlowFactor: 10, SlowOnly: weak,
				}
				eng, err := sched.New(srv, sim, trace, sched.Config{
					Policy: sched.DeadlineReuse, K: 3, Extra: 1, Epochs: 1,
				})
				if err != nil {
					t.Fatal(err)
				}
				if err := eng.Run(commits, nil); err != nil {
					t.Fatal(err)
				}
				sums := map[string]float64{}
				for name, v := range srv.Global() {
					sums[name] = v.Sum()
				}
				return sums, srv.Stats(), eng.Log(), eng.Commits()
			}

			localSums, localStats, localLog, localCommits := run(false)
			httpSums, httpStats, httpLog, httpCommits := run(true)

			if len(localSums) != len(httpSums) {
				t.Fatalf("parameter sets differ: %d vs %d", len(localSums), len(httpSums))
			}
			for name, v := range localSums {
				if httpSums[name] != v {
					t.Fatalf("parameter %q differs between in-process and HTTP engine runs", name)
				}
			}
			if !reflect.DeepEqual(localLog, httpLog) {
				t.Fatalf("event logs differ:\nlocal: %s\nhttp:  %s",
					strings.Join(localLog, "\n       "), strings.Join(httpLog, "\n       "))
			}
			if !reflect.DeepEqual(localStats, httpStats) {
				t.Fatalf("ledgers differ:\nlocal %+v\nhttp  %+v", localStats, httpStats)
			}
			if !reflect.DeepEqual(localCommits, httpCommits) {
				t.Fatalf("commits differ:\nlocal %+v\nhttp  %+v", localCommits, httpCommits)
			}
			// The parity is only meaningful if real bytes crossed the wire
			// and were charged.
			for _, st := range httpStats {
				if st.SentBytes == 0 {
					t.Fatalf("round %d moved no wire bytes — the transport was not exercised", st.Round)
				}
			}
		})
	}
}

// TestNotModifiedDownlinkParity is the ETag contract's acceptance bar: a
// run whose downlinks revalidate (bodyless not-modified dispatches served
// from the agents' artifact caches) must be bit-identical — weights,
// ledger, event log, commits — to the same run forced to resend every
// full body (HTTPTrainer.FullDownlinks). Exercised across all four
// scheduling policies; the delta codec rides along in full mode to cover
// the uplink-reference interaction (both sides must diff against the
// artifact's decoded state whether or not its body crossed again).
func TestNotModifiedDownlinkParity(t *testing.T) {
	mcfg := testModelCfg()
	pcfg := prune.Config{P: 3}

	codecs := []wire.Codec{wire.Q8{}}
	if !testing.Short() {
		codecs = append(codecs, wire.NewDeltaTopK())
	}
	// The semiasync case pins the whole population in flight with a deep
	// aggregation buffer, so returning clients are re-dispatched before the
	// snapshot moves — the config that actually exercises revalidation.
	cases := []struct {
		policy          sched.Policy
		clients, buffer int
		commits         int
	}{
		{sched.Sync, 5, 0, 2},
		{sched.Deadline, 5, 0, 2},
		{sched.DeadlineReuse, 5, 0, 2},
		{sched.SemiAsync, 3, 3, 3},
	}
	revalidated := 0
	for _, codec := range codecs {
		for _, tc := range cases {
			t.Run(string(tc.policy)+"/"+codec.Tag(), func(t *testing.T) {
				run := func(fullDownlinks bool) (map[string]float64, []core.RoundStats, []string, []sched.Commit) {
					clients := buildClients(t, tc.clients)
					cluster, err := NewCluster(clients, mcfg, pcfg, quickTrain())
					if err != nil {
						t.Fatal(err)
					}
					defer cluster.Close()
					cluster.Trainer.Codec = codec
					cluster.Trainer.FullDownlinks = fullDownlinks
					srv, err := core.NewServer(core.Config{
						Model: mcfg, Pool: pcfg, ClientsPerRound: 3,
						Train: quickTrain(), Seed: 63, Trainer: cluster.Trainer,
					}, clients)
					if err != nil {
						t.Fatal(err)
					}
					sim, err := testbed.NewSim(testbed.Table5Platform())
					if err != nil {
						t.Fatal(err)
					}
					weak := func(c int) bool { return clients[c].Device.Class == core.Weak }
					trace := &sched.RandomTrace{
						Seed: 909, MeanOn: 1e9,
						SlowProb: 1, SlowFactor: 10, SlowOnly: weak,
					}
					eng, err := sched.New(srv, sim, trace, sched.Config{
						Policy: tc.policy, K: 3, Extra: 1, Buffer: tc.buffer, Epochs: 1,
					})
					if err != nil {
						t.Fatal(err)
					}
					if err := eng.Run(tc.commits, nil); err != nil {
						t.Fatal(err)
					}
					sums := map[string]float64{}
					for name, v := range srv.Global() {
						sums[name] = v.Sum()
					}
					return sums, srv.Stats(), eng.Log(), eng.Commits()
				}

				fullSums, fullStats, fullLog, fullCommits := run(true)
				revSums, revStats, revLog, revCommits := run(false)

				if !reflect.DeepEqual(fullSums, revSums) {
					t.Fatal("global weights differ between full-body and revalidating runs")
				}
				if !reflect.DeepEqual(fullLog, revLog) {
					t.Fatalf("event logs differ:\nfull: %s\nreval: %s",
						strings.Join(fullLog, "\n      "), strings.Join(revLog, "\n       "))
				}
				if !reflect.DeepEqual(fullStats, revStats) {
					t.Fatalf("ledgers differ:\nfull  %+v\nreval %+v", fullStats, revStats)
				}
				if !reflect.DeepEqual(fullCommits, revCommits) {
					t.Fatalf("commits differ:\nfull  %+v\nreval %+v", fullCommits, revCommits)
				}
				for _, st := range revStats {
					revalidated += st.DownNotModified
				}
			})
		}
	}
	// The parity is only meaningful if some dispatch actually rode the
	// not-modified path (the server's attribution is deterministic, so
	// this is stable across machines).
	if revalidated == 0 {
		t.Fatal("no configuration produced a not-modified dispatch — the revalidation path was not exercised")
	}
}

// TestClusterAgentRestartUnderEngine drives the re-negotiation path
// through the event engine: an agent that restarts mid-run with a smaller
// codec set must be re-negotiated transparently (415 → renegotiate →
// retry) and the run must keep committing.
func TestClusterAgentRestartUnderEngine(t *testing.T) {
	mcfg := testModelCfg()
	pcfg := prune.Config{P: 3}
	clients := buildClients(t, 3)

	cluster, err := NewCluster(clients, mcfg, pcfg, quickTrain())
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	cluster.Trainer.Negotiate(wire.Q8{})

	// Swap agent 0 for a restarted instance that only speaks raw. The
	// cluster's server keeps its address, so the trainer's next dispatch
	// hits the new instance with the stale q8 negotiation.
	restarted, err := NewAgent(clients[0], mcfg, pcfg)
	if err != nil {
		t.Fatal(err)
	}
	restarted.Codecs = []string{wire.TagRaw}
	cluster.servers[0].Handler = restarted

	srv, err := core.NewServer(core.Config{
		Model: mcfg, Pool: pcfg, ClientsPerRound: 2,
		Train: quickTrain(), Seed: 71, Trainer: cluster.Trainer,
	}, clients)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := testbed.NewSim(testbed.Table5Platform())
	if err != nil {
		t.Fatal(err)
	}
	eng, err := sched.New(srv, sim, nil, sched.Config{Policy: sched.Sync, K: 2, Epochs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(2, nil); err != nil {
		t.Fatalf("engine run across agent restart: %v", err)
	}
	sawClient0 := false
	for _, st := range srv.Stats() {
		for _, d := range st.Dispatches {
			if d.Client != 0 {
				continue
			}
			sawClient0 = true
			if d.Codec != wire.TagRaw {
				t.Fatalf("client 0 dispatched with codec %q after restart, want raw", d.Codec)
			}
		}
	}
	if !sawClient0 {
		t.Skip("seed never selected client 0 — restart path not exercised")
	}
}
