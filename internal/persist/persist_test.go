package persist

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"testing"

	"adaptivefl/internal/models"
	"adaptivefl/internal/nn"
	"adaptivefl/internal/tensor"
)

func sampleState(seed int64) nn.State {
	rng := rand.New(rand.NewSource(seed))
	return nn.State{
		"b.weight":         tensor.Randn(rng, 1, 3, 4),
		"a.bias":           tensor.Randn(rng, 1, 5),
		"c.running_mean":   tensor.Randn(rng, 1, 2),
		"deep.conv.weight": tensor.Randn(rng, 1, 2, 2, 3, 3),
	}
}

func statesEqual(a, b nn.State) bool {
	if len(a) != len(b) {
		return false
	}
	for name, v := range a {
		w, ok := b[name]
		if !ok || !tensor.SameShape(v, w) {
			return false
		}
		for i := range v.Data {
			if v.Data[i] != w.Data[i] {
				return false
			}
		}
	}
	return true
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	st := sampleState(1)
	var buf bytes.Buffer
	if err := EncodeState(&buf, st); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeState(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !statesEqual(st, got) {
		t.Fatal("round trip changed the state")
	}
}

func TestEncodeDeterministic(t *testing.T) {
	a, err := EncodeToBytes(sampleState(2))
	if err != nil {
		t.Fatal(err)
	}
	b, err := EncodeToBytes(sampleState(2))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("encoding is not deterministic")
	}
}

func TestDecodeGarbage(t *testing.T) {
	if _, err := DecodeFromBytes([]byte("not a checkpoint")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := DecodeFromBytes(nil); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestSaveLoadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.bin")
	st := sampleState(3)
	if err := SaveState(path, st); err != nil {
		t.Fatal(err)
	}
	got, err := LoadState(path)
	if err != nil {
		t.Fatal(err)
	}
	if !statesEqual(st, got) {
		t.Fatal("file round trip changed the state")
	}
	if _, err := LoadState(filepath.Join(t.TempDir(), "missing.bin")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestFullModelCheckpoint(t *testing.T) {
	// A realistic end-to-end: snapshot a model, restore into a twin.
	cfg := models.Config{Arch: models.MobileNetV2, NumClasses: 5, WidthScale: 0.125, Seed: 4}
	m := models.MustBuild(cfg, nil)
	st := nn.StateDict(m)
	wire, err := EncodeToBytes(st)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeFromBytes(wire)
	if err != nil {
		t.Fatal(err)
	}
	twin := models.MustBuild(cfg, nil)
	if err := nn.LoadState(twin, back); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	x := tensor.Randn(rng, 1, 1, 3, 32, 32)
	ya := m.Forward(x, false)
	yb := twin.Forward(x, false)
	for i := range ya.Data {
		if ya.Data[i] != yb.Data[i] {
			t.Fatal("restored model behaves differently")
		}
	}
}

// TestV2EnvelopeRoundTrip covers the persist half of the v2 format: the
// opaque payload and codec tag survive the container, v1-only DecodeState
// rejects v2 bytes with a pointer at internal/wire, and DecodeStateAny
// still reads v1 inline without a payload decoder.
func TestV2EnvelopeRoundTrip(t *testing.T) {
	payload := []byte("opaque codec bytes \x00\x01\x02")
	var buf bytes.Buffer
	if err := EncodeStateV2(&buf, "q8", payload); err != nil {
		t.Fatal(err)
	}
	gotTag, gotPayload := "", []byte(nil)
	st, err := DecodeStateAny(bytes.NewReader(buf.Bytes()), func(tag string, p []byte) (nn.State, error) {
		gotTag, gotPayload = tag, p
		return nn.State{}, nil
	})
	if err != nil || st == nil {
		t.Fatalf("DecodeStateAny: %v", err)
	}
	if gotTag != "q8" || !bytes.Equal(gotPayload, payload) {
		t.Fatalf("payload round trip: tag %q, %d bytes", gotTag, len(gotPayload))
	}
	if _, err := DecodeState(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("v1-only DecodeState accepted a v2 envelope")
	}
	if _, err := DecodeStateAny(bytes.NewReader(buf.Bytes()), nil); err == nil {
		t.Fatal("DecodeStateAny without a decoder accepted a v2 envelope")
	}
	// v1 bytes still decode through DecodeStateAny with no decoder.
	want := sampleState(9)
	v1, err := EncodeToBytes(want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeStateAny(bytes.NewReader(v1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !statesEqual(want, got) {
		t.Fatal("v1 state changed through DecodeStateAny")
	}
}

func TestDecodeRejectsBadShapes(t *testing.T) {
	// Hand-craft an envelope with a mismatched element count.
	var buf bytes.Buffer
	st := nn.State{"w": tensor.New(2, 2)}
	if err := EncodeState(&buf, st); err != nil {
		t.Fatal(err)
	}
	good, err := DecodeFromBytes(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if good["w"].Numel() != 4 {
		t.Fatal("sanity check failed")
	}
}
