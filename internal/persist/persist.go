// Package persist serialises model states and experiment artefacts. FL
// deployments checkpoint the global model between rounds and ship
// submodels over the network; both use the same compact binary encoding
// (gob of a stable, versioned envelope).
package persist

import (
	"bytes"
	"compress/gzip"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"sort"

	"adaptivefl/internal/nn"
	"adaptivefl/internal/tensor"
)

// formatVersion guards against reading checkpoints written by an
// incompatible release.
const formatVersion = 1

// envelope is the on-disk/wire representation of a state dict.
type envelope struct {
	Version int
	Names   []string
	Shapes  [][]int
	Data    [][]float64
}

// EncodeState writes a state dict to w (gzip-compressed gob). Entries are
// sorted by name so the encoding is deterministic.
func EncodeState(w io.Writer, st nn.State) error {
	names := st.Names()
	env := envelope{Version: formatVersion, Names: names}
	for _, name := range names {
		t := st[name]
		env.Shapes = append(env.Shapes, t.Shape)
		env.Data = append(env.Data, t.Data)
	}
	zw := gzip.NewWriter(w)
	if err := gob.NewEncoder(zw).Encode(env); err != nil {
		return fmt.Errorf("persist: encode: %w", err)
	}
	return zw.Close()
}

// DecodeState reads a state dict written by EncodeState.
func DecodeState(r io.Reader) (nn.State, error) {
	zr, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("persist: gzip: %w", err)
	}
	defer zr.Close()
	var env envelope
	if err := gob.NewDecoder(zr).Decode(&env); err != nil {
		return nil, fmt.Errorf("persist: decode: %w", err)
	}
	if env.Version != formatVersion {
		return nil, fmt.Errorf("persist: version %d not supported (want %d)", env.Version, formatVersion)
	}
	if len(env.Names) != len(env.Shapes) || len(env.Names) != len(env.Data) {
		return nil, fmt.Errorf("persist: corrupt envelope (%d names, %d shapes, %d tensors)",
			len(env.Names), len(env.Shapes), len(env.Data))
	}
	if !sort.StringsAreSorted(env.Names) {
		return nil, fmt.Errorf("persist: corrupt envelope (names not sorted)")
	}
	st := make(nn.State, len(env.Names))
	for i, name := range env.Names {
		n := 1
		for _, d := range env.Shapes[i] {
			if d < 0 {
				return nil, fmt.Errorf("persist: negative dimension in %q", name)
			}
			n *= d
		}
		if n != len(env.Data[i]) {
			return nil, fmt.Errorf("persist: %q has %d values for shape %v", name, len(env.Data[i]), env.Shapes[i])
		}
		st[name] = tensor.FromSlice(env.Data[i], env.Shapes[i]...)
	}
	return st, nil
}

// SaveState writes a state dict to path atomically (tmp file + rename).
func SaveState(path string, st nn.State) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := EncodeState(f, st); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadState reads a state dict from path.
func LoadState(path string) (nn.State, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return DecodeState(f)
}

// EncodeToBytes is EncodeState into a fresh buffer (the network wire form).
func EncodeToBytes(st nn.State) ([]byte, error) {
	var buf bytes.Buffer
	if err := EncodeState(&buf, st); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeFromBytes parses a wire-form state dict.
func DecodeFromBytes(b []byte) (nn.State, error) {
	return DecodeState(bytes.NewReader(b))
}
