// Package persist serialises model states and experiment artefacts. FL
// deployments checkpoint the global model between rounds and ship
// submodels over the network; both use the same compact binary encoding
// (gob of a stable, versioned envelope).
package persist

import (
	"bytes"
	"compress/gzip"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"sort"

	"adaptivefl/internal/nn"
	"adaptivefl/internal/tensor"
)

// Envelope versions. Version 1 carries a float64 state dict inline;
// version 2 carries an opaque codec-encoded payload plus the codec's tag,
// so non-float64 encodings (float32, int8, sparse deltas — see
// internal/wire) travel in the same container without breaking v1 readers:
// a v1-only reader decodes the version field and reports a clear error.
const (
	formatVersion   = 1
	formatVersionV2 = 2
)

// envelope is the on-disk/wire representation of a state dict. V1 fills
// Names/Shapes/Data; v2 fills Codec/Payload. Gob ignores absent fields, so
// one struct reads both versions.
type envelope struct {
	Version int
	Names   []string
	Shapes  [][]int
	Data    [][]float64
	// Codec and Payload are the v2 fields: Payload holds the state dict
	// encoded by the wire codec registered under the Codec tag.
	Codec   string
	Payload []byte
}

// EncodeState writes a state dict to w (gzip-compressed gob). Entries are
// sorted by name so the encoding is deterministic.
func EncodeState(w io.Writer, st nn.State) error {
	names := st.Names()
	env := envelope{Version: formatVersion, Names: names}
	for _, name := range names {
		t := st[name]
		env.Shapes = append(env.Shapes, t.Shape)
		env.Data = append(env.Data, t.Data)
	}
	zw := gzip.NewWriter(w)
	if err := gob.NewEncoder(zw).Encode(env); err != nil {
		return fmt.Errorf("persist: encode: %w", err)
	}
	return zw.Close()
}

// EncodeStateV2 writes a v2 envelope wrapping an opaque codec payload.
// The caller (internal/wire) is responsible for codecTag naming a codec
// that can decode payload.
func EncodeStateV2(w io.Writer, codecTag string, payload []byte) error {
	env := envelope{Version: formatVersionV2, Codec: codecTag, Payload: payload}
	zw := gzip.NewWriter(w)
	if err := gob.NewEncoder(zw).Encode(env); err != nil {
		return fmt.Errorf("persist: encode v2: %w", err)
	}
	return zw.Close()
}

// readEnvelope decompresses and gob-decodes either envelope version.
func readEnvelope(r io.Reader) (envelope, error) {
	var env envelope
	zr, err := gzip.NewReader(r)
	if err != nil {
		return env, fmt.Errorf("persist: gzip: %w", err)
	}
	defer zr.Close()
	if err := gob.NewDecoder(zr).Decode(&env); err != nil {
		return env, fmt.Errorf("persist: decode: %w", err)
	}
	return env, nil
}

// DecodeStateAny reads either envelope version: v1 decodes inline, while a
// v2 envelope's payload is handed to decodePayload with the stored codec
// tag. internal/wire passes its codec registry here; persist itself stays
// codec-agnostic so the dependency points wire → persist only.
func DecodeStateAny(r io.Reader, decodePayload func(tag string, payload []byte) (nn.State, error)) (nn.State, error) {
	env, err := readEnvelope(r)
	if err != nil {
		return nil, err
	}
	switch env.Version {
	case formatVersion:
		return decodeV1(env)
	case formatVersionV2:
		if decodePayload == nil {
			return nil, fmt.Errorf("persist: v2 envelope (codec %q) needs a payload decoder — use internal/wire", env.Codec)
		}
		st, err := decodePayload(env.Codec, env.Payload)
		if err != nil {
			return nil, fmt.Errorf("persist: decode v2 payload (codec %q): %w", env.Codec, err)
		}
		return st, nil
	}
	return nil, fmt.Errorf("persist: version %d not supported (want %d or %d)", env.Version, formatVersion, formatVersionV2)
}

// DecodeState reads a state dict written by EncodeState. It only accepts
// v1 envelopes; v2 checkpoints must be loaded through internal/wire, which
// knows how to decode codec payloads.
func DecodeState(r io.Reader) (nn.State, error) {
	env, err := readEnvelope(r)
	if err != nil {
		return nil, err
	}
	if env.Version == formatVersionV2 {
		return nil, fmt.Errorf("persist: v2 envelope (codec %q) — decode via internal/wire", env.Codec)
	}
	if env.Version != formatVersion {
		return nil, fmt.Errorf("persist: version %d not supported (want %d)", env.Version, formatVersion)
	}
	return decodeV1(env)
}

// decodeV1 validates and materialises an inline float64 envelope.
func decodeV1(env envelope) (nn.State, error) {
	if len(env.Names) != len(env.Shapes) || len(env.Names) != len(env.Data) {
		return nil, fmt.Errorf("persist: corrupt envelope (%d names, %d shapes, %d tensors)",
			len(env.Names), len(env.Shapes), len(env.Data))
	}
	if !sort.StringsAreSorted(env.Names) {
		return nil, fmt.Errorf("persist: corrupt envelope (names not sorted)")
	}
	st := make(nn.State, len(env.Names))
	for i, name := range env.Names {
		n := 1
		for _, d := range env.Shapes[i] {
			if d < 0 {
				return nil, fmt.Errorf("persist: negative dimension in %q", name)
			}
			n *= d
		}
		if n != len(env.Data[i]) {
			return nil, fmt.Errorf("persist: %q has %d values for shape %v", name, len(env.Data[i]), env.Shapes[i])
		}
		st[name] = tensor.FromSlice(env.Data[i], env.Shapes[i]...)
	}
	return st, nil
}

// SaveState writes a state dict to path atomically (tmp file + rename).
func SaveState(path string, st nn.State) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := EncodeState(f, st); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadState reads a state dict from path.
func LoadState(path string) (nn.State, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return DecodeState(f)
}

// EncodeToBytes is EncodeState into a fresh buffer (the network wire form).
func EncodeToBytes(st nn.State) ([]byte, error) {
	var buf bytes.Buffer
	if err := EncodeState(&buf, st); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeFromBytes parses a wire-form state dict.
func DecodeFromBytes(b []byte) (nn.State, error) {
	return DecodeState(bytes.NewReader(b))
}
