// Package rl implements AdaptiveFL's reinforcement-learning-based client
// selection (paper §3.3): a curiosity table T_c counting how often each
// client was touched per size level, a resource table T_r scoring each
// (pool member, client) pair from dispatch/return history, the resource
// and curiosity rewards, and the sampling distribution P(m, c).
package rl

import (
	"fmt"
	"math"
	"math/rand"

	"adaptivefl/internal/prune"
)

// Config tunes the selection strategy.
type Config struct {
	// SuccessCap is the upper success rate beyond which selection is
	// driven purely by curiosity (paper: 0.5). Zero means 0.5.
	SuccessCap float64
	// LiteralL1Bonus applies Algorithm 1 line 18 exactly as printed
	// (T_r[L_1] += p−1 after an unpruned return). The default false uses
	// the symmetric reading T_r[m] += p−1, which preserves the capacity
	// signal; see DESIGN.md §5.
	LiteralL1Bonus bool
}

// Tables holds the two RL tables for a fixed pool and client population.
type Tables struct {
	cfg  Config
	p    int
	pool int // pool size (2p+1)
	// Tc[level][client] — selection counts per size level (3 rows).
	Tc [][]float64
	// Tr[member][client] — training scores per pool member, rows in
	// ascending pool order.
	Tr [][]float64
}

// NewTables initialises both tables to 1, as Algorithm 1 lines 1-2 do.
func NewTables(cfg Config, p, poolSize, numClients int) *Tables {
	if cfg.SuccessCap == 0 {
		cfg.SuccessCap = 0.5
	}
	t := &Tables{cfg: cfg, p: p, pool: poolSize}
	t.Tc = make([][]float64, prune.NumLevels)
	for i := range t.Tc {
		t.Tc[i] = ones(numClients)
	}
	t.Tr = make([][]float64, poolSize)
	for i := range t.Tr {
		t.Tr[i] = ones(numClients)
	}
	return t
}

func ones(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 1
	}
	return v
}

// NumClients returns the client population size the tables cover.
func (t *Tables) NumClients() int { return len(t.Tc[0]) }

// RecordDispatch applies Algorithm 1 lines 12-26 after client c was sent
// submodel sent and returned submodel got (got == sent when the device did
// not prune locally).
func (t *Tables) RecordDispatch(sent, got prune.Submodel, c int) {
	if c < 0 || c >= t.NumClients() {
		panic(fmt.Sprintf("rl: client %d out of range", c))
	}
	t.Tc[sent.Level][c]++
	t.Tc[got.Level][c]++
	last := t.pool - 1
	if got.Index == sent.Index {
		// No local pruning: the client's capacity is at least size(sent),
		// so every member from sent upward gains a point...
		for i := sent.Index; i <= last; i++ {
			t.Tr[i][c]++
		}
		// ...and the trained member gets the p−1 bonus (or L_1, if the
		// literal reading of line 18 is requested).
		if t.cfg.LiteralL1Bonus {
			t.Tr[last][c] += float64(t.p - 1)
		} else {
			t.Tr[sent.Index][c] += float64(t.p - 1)
		}
		return
	}
	// Local pruning happened: capacity sits between size(got) and the next
	// larger member. Reward the returned member, progressively penalise
	// everything above it (−0, −1, −2, …, floored at 0).
	t.Tr[got.Index][c] += float64(t.p)
	tau := 0.0
	for i := got.Index; i <= last; i++ {
		t.Tr[i][c] = math.Max(t.Tr[i][c]-tau, 0)
		tau++
	}
}

// ResourceReward computes R_s(m, c): the level-normalised share of the
// client's training score mass at or above each member of m's level.
func (t *Tables) ResourceReward(m prune.Submodel, pool *prune.Pool, c int) float64 {
	total := 0.0
	for i := 0; i < t.pool; i++ {
		total += t.Tr[i][c]
	}
	if total <= 0 {
		return 0
	}
	// Suffix sums: tail[i] = Σ_{t=i}^{L_1} T_r[t][c].
	tail := 0.0
	tails := make([]float64, t.pool)
	for i := t.pool - 1; i >= 0; i-- {
		tail += t.Tr[i][c]
		tails[i] = tail
	}
	levelMembers := pool.ByLevel(m.Level)
	num := 0.0
	for _, lm := range levelMembers {
		num += tails[lm.Index]
	}
	return num / (float64(len(levelMembers)) * total)
}

// CuriosityReward computes R_c(m, c) = 1/√T_c[level(m)][c] (MBIE-EB).
func (t *Tables) CuriosityReward(m prune.Submodel, c int) float64 {
	return 1 / math.Sqrt(t.Tc[m.Level][c])
}

// Reward combines the two: R = min(cap, R_s) · R_c (paper's 50% success
// cap keeps well-resourced clients from monopolising selection).
func (t *Tables) Reward(m prune.Submodel, pool *prune.Pool, c int) float64 {
	rs := math.Min(t.cfg.SuccessCap, t.ResourceReward(m, pool, c))
	return rs * t.CuriosityReward(m, c)
}

// Mode selects which reward signals drive SelectClient, supporting the
// paper's ablation variants (Figure 5).
type Mode int

// Selection modes.
const (
	ModeCS     Mode = iota // resource × curiosity (AdaptiveFL default)
	ModeC                  // curiosity only
	ModeS                  // resource only
	ModeRandom             // uniform random
)

// String names the mode as in the paper's ablation ("RL-CS" etc.).
func (m Mode) String() string {
	switch m {
	case ModeCS:
		return "RL-CS"
	case ModeC:
		return "RL-C"
	case ModeS:
		return "RL-S"
	case ModeRandom:
		return "Random"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// SelectClient samples a client for submodel m from the candidates
// according to P(m, c) = R(m, c)/Σ_j R(m, j). Candidates must be non-empty;
// if every reward is zero the choice is uniform.
func (t *Tables) SelectClient(rng *rand.Rand, mode Mode, m prune.Submodel, pool *prune.Pool, candidates []int) int {
	c, ok := t.TrySelectClient(rng, mode, m, pool, candidates)
	if !ok {
		panic("rl: SelectClient with no candidates")
	}
	return c
}

// TrySelectClient is SelectClient for callers whose candidate set can
// legitimately be empty — an availability-trace scheduler may find every
// client offline or already in flight. It reports false instead of
// panicking in that case, and otherwise samples exactly as SelectClient.
func (t *Tables) TrySelectClient(rng *rand.Rand, mode Mode, m prune.Submodel, pool *prune.Pool, candidates []int) (int, bool) {
	if len(candidates) == 0 {
		return 0, false
	}
	if mode == ModeRandom {
		return candidates[rng.Intn(len(candidates))], true
	}
	weights := make([]float64, len(candidates))
	sum := 0.0
	for i, c := range candidates {
		var w float64
		switch mode {
		case ModeCS:
			w = t.Reward(m, pool, c)
		case ModeC:
			w = t.CuriosityReward(m, c)
		case ModeS:
			w = t.ResourceReward(m, pool, c)
		}
		weights[i] = w
		sum += w
	}
	if sum <= 0 {
		return candidates[rng.Intn(len(candidates))], true
	}
	r := rng.Float64() * sum
	for i, w := range weights {
		r -= w
		if r < 0 {
			return candidates[i], true
		}
	}
	return candidates[len(candidates)-1], true
}
