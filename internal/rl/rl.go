// Package rl implements AdaptiveFL's reinforcement-learning-based client
// selection (paper §3.3): a curiosity table T_c counting how often each
// client was touched per size level, a resource table T_r scoring each
// (pool member, client) pair from dispatch/return history, the resource
// and curiosity rewards, and the sampling distribution P(m, c).
package rl

import (
	"fmt"
	"math"
	"math/rand"

	"adaptivefl/internal/prune"
)

// Config tunes the selection strategy.
type Config struct {
	// SuccessCap is the upper success rate beyond which selection is
	// driven purely by curiosity (paper: 0.5). Zero means 0.5.
	SuccessCap float64
	// LiteralL1Bonus applies Algorithm 1 line 18 exactly as printed
	// (T_r[L_1] += p−1 after an unpruned return). The default false uses
	// the symmetric reading T_r[m] += p−1, which preserves the capacity
	// signal; see DESIGN.md §5.
	LiteralL1Bonus bool
}

// Tables holds the two RL tables for a fixed pool and client population.
// The dense layout allocates both tables up front (the legacy path, and
// what the exported fields expose); NewSparseTables instead backs the same
// arithmetic with a per-client column store allocated on first touch, so
// million-client populations pay for the clients ever selected rather
// than the population. Every table entry starts at 1 either way, so a
// never-touched sparse column reads exactly as a fresh dense one.
type Tables struct {
	cfg  Config
	p    int
	pool int // pool size (2p+1)
	n    int // client population size
	// Tc[level][client] — selection counts per size level (3 rows). Nil in
	// sparse mode.
	Tc [][]float64
	// Tr[member][client] — training scores per pool member, rows in
	// ascending pool order. Nil in sparse mode.
	Tr [][]float64
	// cols is the sparse per-client column store (nil in dense mode): each
	// column holds one client's Tc and Tr entries. All table arithmetic is
	// column-local, which is what makes the sparse form bit-identical.
	cols map[int]*col
}

// col is one client's column of both tables.
type col struct {
	tc []float64 // by level
	tr []float64 // by pool member
}

// NewTables initialises both tables to 1, as Algorithm 1 lines 1-2 do.
func NewTables(cfg Config, p, poolSize, numClients int) *Tables {
	t := newTables(cfg, p, poolSize, numClients)
	t.Tc = make([][]float64, prune.NumLevels)
	for i := range t.Tc {
		t.Tc[i] = ones(numClients)
	}
	t.Tr = make([][]float64, poolSize)
	for i := range t.Tr {
		t.Tr[i] = ones(numClients)
	}
	return t
}

// NewSparseTables builds map-backed tables whose per-client columns
// allocate on first write. Reads of untouched clients see the same
// all-ones initial state dense tables start from, and every update and
// reward is column-local, so selection under a fixed rng stream is
// bit-identical to the dense form (the allocation audit test pins this).
func NewSparseTables(cfg Config, p, poolSize, numClients int) *Tables {
	t := newTables(cfg, p, poolSize, numClients)
	t.cols = map[int]*col{}
	return t
}

func newTables(cfg Config, p, poolSize, numClients int) *Tables {
	if cfg.SuccessCap == 0 {
		cfg.SuccessCap = 0.5
	}
	return &Tables{cfg: cfg, p: p, pool: poolSize, n: numClients}
}

func ones(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 1
	}
	return v
}

// NumClients returns the client population size the tables cover.
func (t *Tables) NumClients() int { return t.n }

// Sparse reports whether the tables use the lazily allocated column store.
func (t *Tables) Sparse() bool { return t.cols != nil }

// Rows returns the number of allocated client columns: the population in
// dense mode, the touched-client count in sparse mode (the memory-envelope
// stat the million-client smoke checks).
func (t *Tables) Rows() int {
	if t.cols != nil {
		return len(t.cols)
	}
	return t.n
}

// colFor returns client c's mutable column, allocating the initial
// all-ones column on first write. Dense mode never calls it.
func (t *Tables) colFor(c int) *col {
	cl, ok := t.cols[c]
	if !ok {
		cl = &col{tc: ones(prune.NumLevels), tr: ones(t.pool)}
		t.cols[c] = cl
	}
	return cl
}

// tcAt / trAt read one table entry in either mode; absent sparse columns
// read the initial 1.
func (t *Tables) tcAt(level prune.Level, c int) float64 {
	if t.Tc != nil {
		return t.Tc[level][c]
	}
	if cl, ok := t.cols[c]; ok {
		return cl.tc[level]
	}
	return 1
}

func (t *Tables) trAt(i, c int) float64 {
	if t.Tr != nil {
		return t.Tr[i][c]
	}
	if cl, ok := t.cols[c]; ok {
		return cl.tr[i]
	}
	return 1
}

// RecordDispatch applies Algorithm 1 lines 12-26 after client c was sent
// submodel sent and returned submodel got (got == sent when the device did
// not prune locally).
func (t *Tables) RecordDispatch(sent, got prune.Submodel, c int) {
	if c < 0 || c >= t.NumClients() {
		panic(fmt.Sprintf("rl: client %d out of range", c))
	}
	// Resolve client c's mutable column in either mode. The dense rows are
	// laid out [row][client], so the "column" here is a pair of tiny
	// accessor closures; the arithmetic below is shared verbatim.
	tc, tr := t.Tc, t.Tr
	var cc *col
	if t.cols != nil {
		cc = t.colFor(c)
	}
	addTc := func(level prune.Level, d float64) {
		if cc != nil {
			cc.tc[level] += d
		} else {
			tc[level][c] += d
		}
	}
	addTr := func(i int, d float64) {
		if cc != nil {
			cc.tr[i] += d
		} else {
			tr[i][c] += d
		}
	}
	setTr := func(i int, v float64) {
		if cc != nil {
			cc.tr[i] = v
		} else {
			tr[i][c] = v
		}
	}
	addTc(sent.Level, 1)
	addTc(got.Level, 1)
	last := t.pool - 1
	if got.Index == sent.Index {
		// No local pruning: the client's capacity is at least size(sent),
		// so every member from sent upward gains a point...
		for i := sent.Index; i <= last; i++ {
			addTr(i, 1)
		}
		// ...and the trained member gets the p−1 bonus (or L_1, if the
		// literal reading of line 18 is requested).
		if t.cfg.LiteralL1Bonus {
			addTr(last, float64(t.p-1))
		} else {
			addTr(sent.Index, float64(t.p-1))
		}
		return
	}
	// Local pruning happened: capacity sits between size(got) and the next
	// larger member. Reward the returned member, progressively penalise
	// everything above it (−0, −1, −2, …, floored at 0).
	addTr(got.Index, float64(t.p))
	tau := 0.0
	for i := got.Index; i <= last; i++ {
		setTr(i, math.Max(t.trAt(i, c)-tau, 0))
		tau++
	}
}

// ResourceReward computes R_s(m, c): the level-normalised share of the
// client's training score mass at or above each member of m's level.
func (t *Tables) ResourceReward(m prune.Submodel, pool *prune.Pool, c int) float64 {
	total := 0.0
	for i := 0; i < t.pool; i++ {
		total += t.trAt(i, c)
	}
	if total <= 0 {
		return 0
	}
	// Suffix sums: tail[i] = Σ_{t=i}^{L_1} T_r[t][c].
	tail := 0.0
	tails := make([]float64, t.pool)
	for i := t.pool - 1; i >= 0; i-- {
		tail += t.trAt(i, c)
		tails[i] = tail
	}
	levelMembers := pool.ByLevel(m.Level)
	num := 0.0
	for _, lm := range levelMembers {
		num += tails[lm.Index]
	}
	return num / (float64(len(levelMembers)) * total)
}

// CuriosityReward computes R_c(m, c) = 1/√T_c[level(m)][c] (MBIE-EB).
func (t *Tables) CuriosityReward(m prune.Submodel, c int) float64 {
	return 1 / math.Sqrt(t.tcAt(m.Level, c))
}

// Reward combines the two: R = min(cap, R_s) · R_c (paper's 50% success
// cap keeps well-resourced clients from monopolising selection).
func (t *Tables) Reward(m prune.Submodel, pool *prune.Pool, c int) float64 {
	rs := math.Min(t.cfg.SuccessCap, t.ResourceReward(m, pool, c))
	return rs * t.CuriosityReward(m, c)
}

// Mode selects which reward signals drive SelectClient, supporting the
// paper's ablation variants (Figure 5).
type Mode int

// Selection modes.
const (
	ModeCS     Mode = iota // resource × curiosity (AdaptiveFL default)
	ModeC                  // curiosity only
	ModeS                  // resource only
	ModeRandom             // uniform random
)

// String names the mode as in the paper's ablation ("RL-CS" etc.).
func (m Mode) String() string {
	switch m {
	case ModeCS:
		return "RL-CS"
	case ModeC:
		return "RL-C"
	case ModeS:
		return "RL-S"
	case ModeRandom:
		return "Random"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// SelectClient samples a client for submodel m from the candidates
// according to P(m, c) = R(m, c)/Σ_j R(m, j). Candidates must be non-empty;
// if every reward is zero the choice is uniform.
func (t *Tables) SelectClient(rng *rand.Rand, mode Mode, m prune.Submodel, pool *prune.Pool, candidates []int) int {
	c, ok := t.TrySelectClient(rng, mode, m, pool, candidates)
	if !ok {
		panic("rl: SelectClient with no candidates")
	}
	return c
}

// TrySelectClient is SelectClient for callers whose candidate set can
// legitimately be empty — an availability-trace scheduler may find every
// client offline or already in flight. It reports false instead of
// panicking in that case, and otherwise samples exactly as SelectClient.
func (t *Tables) TrySelectClient(rng *rand.Rand, mode Mode, m prune.Submodel, pool *prune.Pool, candidates []int) (int, bool) {
	if len(candidates) == 0 {
		return 0, false
	}
	if mode == ModeRandom {
		return candidates[rng.Intn(len(candidates))], true
	}
	weights := make([]float64, len(candidates))
	sum := 0.0
	for i, c := range candidates {
		var w float64
		switch mode {
		case ModeCS:
			w = t.Reward(m, pool, c)
		case ModeC:
			w = t.CuriosityReward(m, c)
		case ModeS:
			w = t.ResourceReward(m, pool, c)
		}
		weights[i] = w
		sum += w
	}
	if sum <= 0 {
		return candidates[rng.Intn(len(candidates))], true
	}
	r := rng.Float64() * sum
	for i, w := range weights {
		r -= w
		if r < 0 {
			return candidates[i], true
		}
	}
	return candidates[len(candidates)-1], true
}
