package rl

import (
	"math"
	"math/rand"
	"testing"

	"adaptivefl/internal/models"
	"adaptivefl/internal/prune"
)

func testPool(t *testing.T) *prune.Pool {
	t.Helper()
	pool, err := prune.BuildPool(models.Config{Arch: models.VGG16, NumClasses: 10, WidthScale: 0.25}, prune.Config{P: 3})
	if err != nil {
		t.Fatal(err)
	}
	return pool
}

func member(t *testing.T, pool *prune.Pool, name string) prune.Submodel {
	t.Helper()
	for _, m := range pool.Members {
		if m.Name() == name {
			return m
		}
	}
	t.Fatalf("no pool member %s", name)
	return prune.Submodel{}
}

func TestNewTablesInitialisedToOne(t *testing.T) {
	tb := NewTables(Config{}, 3, 7, 5)
	if len(tb.Tc) != 3 || len(tb.Tr) != 7 {
		t.Fatalf("table dims %dx? %dx?", len(tb.Tc), len(tb.Tr))
	}
	for _, row := range tb.Tc {
		for _, v := range row {
			if v != 1 {
				t.Fatal("Tc not initialised to 1")
			}
		}
	}
	for _, row := range tb.Tr {
		for _, v := range row {
			if v != 1 {
				t.Fatal("Tr not initialised to 1")
			}
		}
	}
	if tb.NumClients() != 5 {
		t.Fatalf("NumClients = %d", tb.NumClients())
	}
}

func TestRecordDispatchUnprunedReturn(t *testing.T) {
	pool := testPool(t)
	tb := NewTables(Config{}, pool.P, len(pool.Members), 3)
	m2 := member(t, pool, "M2")
	tb.RecordDispatch(m2, m2, 0)

	// Curiosity: level M counted twice (sent and returned).
	if tb.Tc[prune.LevelM][0] != 3 {
		t.Fatalf("Tc[M][0] = %v, want 3", tb.Tc[prune.LevelM][0])
	}
	// Resource: +1 for every member from M2 upward, +p−1 extra on M2.
	for _, m := range pool.Members {
		want := 1.0
		if m.Index >= m2.Index {
			want = 2
		}
		if m.Index == m2.Index {
			want = 2 + float64(pool.P-1)
		}
		if got := tb.Tr[m.Index][0]; got != want {
			t.Errorf("Tr[%s][0] = %v, want %v", m.Name(), got, want)
		}
	}
}

func TestRecordDispatchUnprunedLiteralL1(t *testing.T) {
	pool := testPool(t)
	tb := NewTables(Config{LiteralL1Bonus: true}, pool.P, len(pool.Members), 2)
	s1 := member(t, pool, "S1")
	tb.RecordDispatch(s1, s1, 1)
	l1 := pool.Largest()
	// Literal Alg.1 line 18: the L1 row takes the p−1 bonus.
	if got := tb.Tr[l1.Index][1]; got != 1+1+float64(pool.P-1) {
		t.Fatalf("Tr[L1] = %v, want %v", got, 1+1+float64(pool.P-1))
	}
	if got := tb.Tr[s1.Index][1]; got != 2 {
		t.Fatalf("Tr[S1] = %v, want 2", got)
	}
}

func TestRecordDispatchPrunedReturn(t *testing.T) {
	pool := testPool(t)
	tb := NewTables(Config{}, pool.P, len(pool.Members), 2)
	l1 := pool.Largest()
	s2 := member(t, pool, "S2")
	tb.RecordDispatch(l1, s2, 0)

	// Curiosity: L and S levels each +1.
	if tb.Tc[prune.LevelL][0] != 2 || tb.Tc[prune.LevelS][0] != 2 {
		t.Fatalf("Tc rows = L:%v S:%v", tb.Tc[prune.LevelL][0], tb.Tc[prune.LevelS][0])
	}
	// Resource: S2 row net +p; members above S2 penalised by 1, 2, 3, …
	// (floored at 0 from the initial value 1).
	if got := tb.Tr[s2.Index][0]; got != 1+float64(pool.P) {
		t.Fatalf("Tr[S2] = %v, want %v", got, 1+float64(pool.P))
	}
	for _, m := range pool.Members {
		if m.Index <= s2.Index {
			continue
		}
		tau := float64(m.Index - s2.Index)
		want := math.Max(1-tau, 0)
		if got := tb.Tr[m.Index][0]; got != want {
			t.Errorf("Tr[%s] = %v, want %v", m.Name(), got, want)
		}
	}
	// Untouched client unchanged.
	if tb.Tr[s2.Index][1] != 1 {
		t.Fatal("other client's row was modified")
	}
}

func TestResourceRewardFavoursCapableClient(t *testing.T) {
	pool := testPool(t)
	tb := NewTables(Config{}, pool.P, len(pool.Members), 2)
	l1 := pool.Largest()
	s3 := pool.Smallest()
	// Client 0 keeps returning L1 unpruned; client 1 keeps pruning to S3.
	for i := 0; i < 5; i++ {
		tb.RecordDispatch(l1, l1, 0)
		tb.RecordDispatch(l1, s3, 1)
	}
	rs0 := tb.ResourceReward(l1, pool, 0)
	rs1 := tb.ResourceReward(l1, pool, 1)
	if rs0 <= rs1 {
		t.Fatalf("R_s(L1): capable client %v should beat weak client %v", rs0, rs1)
	}
	// The weak client's L1 reward collapses towards zero (its score mass
	// sits entirely at S3), which is what prevents wasted large dispatches.
	if rs1 > 0.1 {
		t.Fatalf("R_s(L1) for weak client = %v, want near 0", rs1)
	}
	// For small models R_s stays high for both (the strong client can also
	// train S models); the 0.5 success cap plus curiosity — not R_s —
	// keeps strong clients from monopolising small dispatches.
	rsS0 := tb.ResourceReward(s3, pool, 0)
	rsS1 := tb.ResourceReward(s3, pool, 1)
	if rsS0 < 0.3 || rsS1 < 0.3 {
		t.Fatalf("R_s(S3) should stay substantial for both: strong %v, weak %v", rsS0, rsS1)
	}
	capped0 := tb.Reward(s3, pool, 0)
	if capped0 > 0.5+1e-12 {
		t.Fatalf("capped reward %v exceeds 0.5", capped0)
	}
}

func TestResourceRewardBounded(t *testing.T) {
	pool := testPool(t)
	tb := NewTables(Config{}, pool.P, len(pool.Members), 1)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		sent := pool.Members[rng.Intn(len(pool.Members))]
		got, ok := pool.LargestFit(sent, pool.Members[rng.Intn(len(pool.Members))].Size)
		if !ok {
			got = pool.Smallest()
		}
		tb.RecordDispatch(sent, got, 0)
		for _, m := range pool.Members {
			rs := tb.ResourceReward(m, pool, 0)
			if rs < 0 || rs > 1+1e-9 {
				t.Fatalf("R_s out of [0,1]: %v", rs)
			}
		}
	}
}

func TestCuriosityRewardDecays(t *testing.T) {
	pool := testPool(t)
	tb := NewTables(Config{}, pool.P, len(pool.Members), 2)
	m1 := member(t, pool, "M1")
	before := tb.CuriosityReward(m1, 0)
	tb.RecordDispatch(m1, m1, 0)
	after := tb.CuriosityReward(m1, 0)
	if after >= before {
		t.Fatalf("curiosity should decay with selections: %v -> %v", before, after)
	}
	// MBIE-EB form: 1/sqrt(count).
	if math.Abs(before-1) > 1e-12 {
		t.Fatalf("initial curiosity = %v, want 1", before)
	}
	if math.Abs(after-1/math.Sqrt(3)) > 1e-12 {
		t.Fatalf("after = %v, want 1/sqrt(3)", after)
	}
}

func TestRewardCapsSuccessRate(t *testing.T) {
	pool := testPool(t)
	tb := NewTables(Config{}, pool.P, len(pool.Members), 1)
	l1 := pool.Largest()
	for i := 0; i < 30; i++ {
		tb.RecordDispatch(l1, l1, 0)
	}
	rs := tb.ResourceReward(l1, pool, 0)
	if rs <= 0.5 {
		t.Fatalf("premise broken: R_s = %v should exceed the cap", rs)
	}
	want := 0.5 * tb.CuriosityReward(l1, 0)
	if got := tb.Reward(l1, pool, 0); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Reward = %v, want capped %v", got, want)
	}
}

func TestSelectClientDistribution(t *testing.T) {
	pool := testPool(t)
	tb := NewTables(Config{}, pool.P, len(pool.Members), 3)
	l1 := pool.Largest()
	s3 := pool.Smallest()
	// Client 0 trains L1 fine; clients 1 and 2 always collapse to S3.
	for i := 0; i < 10; i++ {
		tb.RecordDispatch(l1, l1, 0)
		tb.RecordDispatch(l1, s3, 1)
		tb.RecordDispatch(l1, s3, 2)
	}
	rng := rand.New(rand.NewSource(2))
	counts := make([]int, 3)
	for i := 0; i < 3000; i++ {
		counts[tb.SelectClient(rng, ModeCS, l1, pool, []int{0, 1, 2})]++
	}
	if counts[0] <= counts[1] || counts[0] <= counts[2] {
		t.Fatalf("capable client should be selected most for L1: %v", counts)
	}
}

func TestSelectClientRandomUniform(t *testing.T) {
	pool := testPool(t)
	tb := NewTables(Config{}, pool.P, len(pool.Members), 4)
	rng := rand.New(rand.NewSource(3))
	counts := make([]int, 4)
	for i := 0; i < 8000; i++ {
		counts[tb.SelectClient(rng, ModeRandom, pool.Largest(), pool, []int{0, 1, 2, 3})]++
	}
	for c, n := range counts {
		if math.Abs(float64(n)-2000) > 250 {
			t.Fatalf("ModeRandom client %d selected %d times, want ~2000", c, n)
		}
	}
}

func TestSelectClientRespectsCandidates(t *testing.T) {
	pool := testPool(t)
	tb := NewTables(Config{}, pool.P, len(pool.Members), 5)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 100; i++ {
		got := tb.SelectClient(rng, ModeCS, pool.Largest(), pool, []int{1, 3})
		if got != 1 && got != 3 {
			t.Fatalf("selected %d outside candidate set", got)
		}
	}
}

// TestTrySelectClientToleratesEmptyCandidates pins the non-panicking path
// an availability-trace scheduler relies on: every client can be offline
// or in flight, and selection must report that instead of crashing.
func TestTrySelectClientToleratesEmptyCandidates(t *testing.T) {
	pool := testPool(t)
	tb := NewTables(Config{}, pool.P, len(pool.Members), 5)
	rng := rand.New(rand.NewSource(5))
	for _, mode := range []Mode{ModeCS, ModeC, ModeS, ModeRandom} {
		if _, ok := tb.TrySelectClient(rng, mode, pool.Largest(), pool, nil); ok {
			t.Fatalf("mode %v: empty candidate set reported a selection", mode)
		}
	}
	got, ok := tb.TrySelectClient(rng, ModeCS, pool.Largest(), pool, []int{2})
	if !ok || got != 2 {
		t.Fatalf("single candidate: got %d ok=%v", got, ok)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SelectClient must still panic on an empty candidate set")
		}
	}()
	tb.SelectClient(rng, ModeCS, pool.Largest(), pool, nil)
}

func TestModeStrings(t *testing.T) {
	if ModeCS.String() != "RL-CS" || ModeC.String() != "RL-C" || ModeS.String() != "RL-S" || ModeRandom.String() != "Random" {
		t.Fatal("mode names changed")
	}
}
