package rl

import (
	"math/rand"
	"testing"
)

// TestSparseTablesMatchDense drives identical dispatch histories through
// dense and sparse tables and requires every reward and selection read to
// agree bit-for-bit — the arithmetic is column-local, so the backing
// layout must be unobservable.
func TestSparseTablesMatchDense(t *testing.T) {
	pool := testPool(t)
	const n = 12
	dense := NewTables(Config{}, 3, len(pool.Members), n)
	sparse := NewSparseTables(Config{}, 3, len(pool.Members), n)
	if dense.Sparse() || !sparse.Sparse() {
		t.Fatal("table modes mislabelled")
	}

	rng := rand.New(rand.NewSource(9))
	touched := map[int]bool{}
	for step := 0; step < 200; step++ {
		c := rng.Intn(n - 2) // leave clients n-2, n-1 untouched
		sent := pool.Members[rng.Intn(len(pool.Members))]
		got := sent
		if rng.Float64() < 0.5 {
			got = pool.Members[rng.Intn(sent.Index+1)] // local pruning
		}
		dense.RecordDispatch(sent, got, c)
		sparse.RecordDispatch(sent, got, c)
		touched[c] = true
	}

	for c := 0; c < n; c++ {
		for _, m := range pool.Members {
			if a, b := dense.ResourceReward(m, pool, c), sparse.ResourceReward(m, pool, c); a != b {
				t.Fatalf("resource reward (%s, %d): dense %v sparse %v", m.Name(), c, a, b)
			}
			if a, b := dense.CuriosityReward(m, c), sparse.CuriosityReward(m, c); a != b {
				t.Fatalf("curiosity reward (%s, %d): dense %v sparse %v", m.Name(), c, a, b)
			}
			if a, b := dense.Reward(m, pool, c), sparse.Reward(m, pool, c); a != b {
				t.Fatalf("combined reward (%s, %d): dense %v sparse %v", m.Name(), c, a, b)
			}
		}
	}

	// Selection consumes the rng stream identically in both modes.
	candidates := []int{0, 3, 5, 8, n - 1}
	r1, r2 := rand.New(rand.NewSource(4)), rand.New(rand.NewSource(4))
	for i := 0; i < 50; i++ {
		m := pool.Members[i%len(pool.Members)]
		for _, mode := range []Mode{ModeCS, ModeC, ModeS, ModeRandom} {
			a := dense.SelectClient(r1, mode, m, pool, candidates)
			b := sparse.SelectClient(r2, mode, m, pool, candidates)
			if a != b {
				t.Fatalf("selection diverged: mode %v draw %d picked %d vs %d", mode, i, a, b)
			}
		}
	}

	// Only dispatched clients allocated columns; reads alone allocate none.
	if got := sparse.Rows(); got != len(touched) {
		t.Fatalf("sparse tables hold %d columns, %d clients were dispatched", got, len(touched))
	}
	if dense.Rows() != n {
		t.Fatalf("dense tables report %d rows, want the population %d", dense.Rows(), n)
	}
}
