package wire

import (
	"adaptivefl/internal/nn"
	"adaptivefl/internal/tensor"
)

// ErrorFeedback wraps a lossy codec with residual error feedback: the
// quantization error of each Encode is remembered and added back into the
// next Encode of the same stream, so rounding errors cancel across rounds
// instead of random-walking. Over an FL run the receiver's reconstruction
// drifts from the true weights by at most one quantization step, versus
// an accumulating √rounds·step without feedback (see the round-trip test).
//
// The wire format — and therefore Tag — is the inner codec's, so the
// receiving end needs no changes and negotiation is untouched. The wrapper
// is stateful: one instance per stream (per agent, per direction), which
// is why it is deliberately NOT in the tag registry — registry codecs are
// shared singletons and a shared residual would leak state across clients.
// fednet agents opt in per-agent via Agent.ErrorFeedback.
type ErrorFeedback struct {
	inner Codec
	resid map[string]*tensor.Tensor
}

// NewErrorFeedback wraps a codec with a fresh residual stream. Wrapping a
// lossless codec (raw) is harmless: its residuals are identically zero.
func NewErrorFeedback(inner Codec) *ErrorFeedback {
	return &ErrorFeedback{inner: inner, resid: map[string]*tensor.Tensor{}}
}

// Tag implements Codec: the stream is wire-compatible with the inner one.
func (e *ErrorFeedback) Tag() string { return e.inner.Tag() }

// UsesRef implements Codec.
func (e *ErrorFeedback) UsesRef() bool { return e.inner.UsesRef() }

// Encode implements Codec: it compensates st with the stored residual,
// encodes with the inner codec, and stores the new residual (compensated
// minus what the receiver will reconstruct). Tensors whose shape changed
// since the last Encode (a differently-pruned upload) restart their
// residual from zero — a prefix of an old residual would compensate the
// wrong coordinates.
func (e *ErrorFeedback) Encode(st, ref nn.State) ([]byte, error) {
	comp := make(nn.State, len(st))
	for name, t := range st {
		if r, ok := e.resid[name]; ok && tensor.SameShape(r, t) {
			c := t.Clone()
			c.AddInPlace(r)
			comp[name] = c
		} else {
			comp[name] = t
		}
	}
	enc, err := e.inner.Encode(comp, ref)
	if err != nil {
		return nil, err
	}
	dec, err := e.inner.Decode(enc, ref)
	if err != nil {
		return nil, err
	}
	for name, c := range comp {
		d, ok := dec[name]
		if !ok || !tensor.SameShape(d, c) {
			delete(e.resid, name)
			continue
		}
		r := c.Clone()
		r.SubInPlace(d)
		e.resid[name] = r
	}
	return enc, nil
}

// Decode implements Codec by delegating to the inner codec: feedback is a
// sender-side mechanism and the payload is an ordinary inner-codec stream.
func (e *ErrorFeedback) Decode(data []byte, ref nn.State) (nn.State, error) {
	return e.inner.Decode(data, ref)
}

var _ Codec = (*ErrorFeedback)(nil)
