package wire

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"adaptivefl/internal/nn"
)

func artKey(snap uint64, member int, tag string) ArtifactKey {
	return ArtifactKey{Snapshot: snap, Member: member, Codec: tag}
}

// The store's bytes must be exactly what a direct refless encode of the
// same state produces — the pinning that keeps artifact-served runs
// bit-identical to per-client-encode runs.
func TestArtifactBytesMatchDirectEncode(t *testing.T) {
	st := randState(7)
	for _, tag := range []string{TagRaw, TagF32, TagQ8, TagDelta} {
		c, err := ByTag(tag)
		if err != nil {
			t.Fatal(err)
		}
		direct, err := c.Encode(st, nil)
		if err != nil {
			t.Fatal(err)
		}
		s := NewArtifactStore(0)
		art, err := s.Get(artKey(1, 0, tag), c, func() (nn.State, error) { return st, nil })
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(art.Bytes, direct) {
			t.Fatalf("%s: artifact bytes diverge from direct encode", tag)
		}
		// State is the decoded round-trip — what a device would decode —
		// not the pre-encode input (they differ under lossy codecs).
		roundTrip, err := c.Decode(direct, nil)
		if err != nil {
			t.Fatal(err)
		}
		if nn.HashState(art.State) != nn.HashState(roundTrip) {
			t.Fatalf("%s: artifact state diverges from decoded round-trip", tag)
		}
	}
}

// Each key encodes exactly once no matter how many concurrent dispatch
// workers ask for it.
func TestArtifactEncodeOnce(t *testing.T) {
	st := randState(8)
	c, _ := ByTag(TagQ8)
	s := NewArtifactStore(0)
	var calls int
	var mu sync.Mutex
	stateFn := func() (nn.State, error) {
		mu.Lock()
		calls++
		mu.Unlock()
		return st, nil
	}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.Get(artKey(42, 1, TagQ8), c, stateFn); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if calls != 1 {
		t.Fatalf("state extracted %d times, want 1", calls)
	}
	if s.Encodes() != 1 {
		t.Fatalf("Encodes() = %d, want 1", s.Encodes())
	}
	if s.Hits() != 15 {
		t.Fatalf("Hits() = %d, want 15", s.Hits())
	}
}

// Distinct (snapshot, member, codec, ref) keys are distinct artifacts and
// distinct ETags.
func TestArtifactKeysAndETagsDistinct(t *testing.T) {
	keys := []ArtifactKey{
		{Snapshot: 1, Member: 0, Codec: TagQ8},
		{Snapshot: 2, Member: 0, Codec: TagQ8},
		{Snapshot: 1, Member: 1, Codec: TagQ8},
		{Snapshot: 1, Member: 0, Codec: TagDelta},
		{Snapshot: 1, Member: 0, Codec: TagQ8, Ref: 3},
	}
	seen := map[string]bool{}
	for _, k := range keys {
		et := k.ETag()
		if seen[et] {
			t.Fatalf("duplicate ETag %s", et)
		}
		seen[et] = true
	}
}

func TestArtifactStoreEviction(t *testing.T) {
	st := randState(9)
	c, _ := ByTag(TagF32)
	s := NewArtifactStore(2)
	get := func(snap uint64) {
		if _, err := s.Get(artKey(snap, 0, TagF32), c, func() (nn.State, error) { return st, nil }); err != nil {
			t.Fatal(err)
		}
	}
	get(1)
	get(2)
	get(3) // evicts 1
	if s.Len() != 2 {
		t.Fatalf("Len() = %d, want 2", s.Len())
	}
	if _, ok := s.Lookup(artKey(1, 0, TagF32)); ok {
		t.Fatal("evicted artifact still resident")
	}
	get(1) // re-encode after eviction
	if s.Encodes() != 4 {
		t.Fatalf("Encodes() = %d, want 4", s.Encodes())
	}
	// 2 was the LRU victim of the re-encode of 1.
	if _, ok := s.Lookup(artKey(2, 0, TagF32)); ok {
		t.Fatal("LRU victim still resident")
	}
	if _, ok := s.Lookup(artKey(3, 0, TagF32)); !ok {
		t.Fatal("recently used artifact evicted")
	}
}

func TestArtifactStateFnError(t *testing.T) {
	c, _ := ByTag(TagRaw)
	s := NewArtifactStore(0)
	wantErr := fmt.Errorf("extract failed")
	_, err := s.Get(artKey(1, 0, TagRaw), c, func() (nn.State, error) { return nil, wantErr })
	if err != wantErr {
		t.Fatalf("err = %v", err)
	}
	if s.Len() != 0 || s.Encodes() != 0 {
		t.Fatal("failed encode left residue")
	}
}
