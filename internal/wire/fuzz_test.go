package wire

import (
	"math"
	"math/rand"
	"testing"

	"adaptivefl/internal/nn"
	"adaptivefl/internal/tensor"
)

// allCodecs returns one instance of every shipped codec.
func allCodecs() []Codec {
	return []Codec{Raw{}, F32{}, Q8{}, NewDeltaTopK()}
}

// decodeRef builds the reference a delta decode needs; stateless codecs
// get nil, exactly as the transport passes it.
func decodeRef(c Codec, ref nn.State) nn.State {
	if c.UsesRef() {
		return ref
	}
	return nil
}

// mustNotPanic decodes under a recover barrier: whatever the payload, a
// decoder must return an error, never take the process down.
func mustNotPanic(t *testing.T, c Codec, payload []byte, ref nn.State) (nn.State, error) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("%s decode panicked: %v", c.Tag(), r)
		}
	}()
	return c.Decode(payload, decodeRef(c, ref))
}

// TestDecodersSurviveMalformedPayloads drives every codec through a
// deterministic corpus of malformed inputs — truncations, bit flips,
// junk, oversized garbage — and requires each decode to either fail with
// an error or return a fully finite state. No panics, no silent NaN.
func TestDecodersSurviveMalformedPayloads(t *testing.T) {
	ref := randState(11)
	st := perturb(ref, 12, 0.01)
	rng := rand.New(rand.NewSource(13))
	junk := make([]byte, 4096)
	rng.Read(junk)
	big := make([]byte, 1<<20)
	rng.Read(big)

	for _, c := range allCodecs() {
		valid, err := c.Encode(st, ref)
		if err != nil {
			t.Fatalf("%s encode: %v", c.Tag(), err)
		}
		corpus := [][]byte{nil, {}, junk, big, []byte("not a payload")}
		// Every truncation point of the valid payload, coarsely stepped,
		// plus the first bytes exactly (gzip header boundary).
		for cut := 0; cut < len(valid); cut += 1 + len(valid)/64 {
			corpus = append(corpus, valid[:cut])
		}
		// Deterministic single- and multi-bit flips across the payload.
		for i := 0; i < 64; i++ {
			flipped := append([]byte(nil), valid...)
			for f := 0; f <= i%4; f++ {
				h := rng.Intn(len(flipped) * 8)
				flipped[h/8] ^= 1 << (h % 8)
			}
			corpus = append(corpus, flipped)
		}
		for pi, payload := range corpus {
			dec, err := mustNotPanic(t, c, payload, ref)
			if err != nil {
				continue
			}
			for name, v := range dec {
				for j, x := range v.Data {
					if math.IsNaN(x) || math.IsInf(x, 0) {
						t.Fatalf("%s corpus[%d]: decode accepted non-finite %q[%d] = %v",
							c.Tag(), pi, name, j, x)
					}
				}
			}
		}
	}
}

// TestDecodersRejectNonFinitePayloads crafts payloads whose bytes are
// structurally valid but carry NaN/Inf values; every decoder must refuse
// them rather than hand the poison to aggregation.
func TestDecodersRejectNonFinitePayloads(t *testing.T) {
	shape := []int{4, 3}
	mk := func(bad float64) nn.State {
		vals := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, bad}
		return nn.State{"w": tensor.FromSlice(vals, shape...)}
	}
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		// Raw and F32 encode non-finite values without complaint, so the
		// decoder is the only line of defense.
		for _, c := range []Codec{Raw{}, F32{}} {
			payload, err := c.Encode(mk(bad), nil)
			if err != nil {
				t.Fatalf("%s encode: %v", c.Tag(), err)
			}
			if _, err := c.Decode(payload, nil); err == nil {
				t.Fatalf("%s decoded a payload carrying %v", c.Tag(), bad)
			}
		}
		// Q8 and DeltaTopK refuse at encode time — the source-side guard.
		if _, err := (Q8{}).Encode(mk(bad), nil); err == nil {
			t.Fatalf("q8 encoded a state carrying %v", bad)
		}
		ref := nn.State{"w": tensor.Full(0, shape...)}
		if _, err := NewDeltaTopK().Encode(mk(bad), ref); err == nil {
			t.Fatalf("delta encoded a state carrying %v", bad)
		}
	}
}

// TestHeaderRejectsOverflowShapes: shapes whose element product would
// overflow or exceed the wire cap must fail validation, not wrap around
// every later length check or trigger an absurd allocation.
func TestHeaderRejectsOverflowShapes(t *testing.T) {
	for _, shape := range [][]int{
		{1 << 40},
		{1 << 20, 1 << 20},
		{1 << 31, 1 << 31, 1 << 31},
		{maxWireElems + 1},
	} {
		h := header{Names: []string{"w"}, Shapes: [][]int{shape}}
		if _, err := h.validate(); err == nil {
			t.Fatalf("shape %v passed validation", shape)
		}
	}
	h := header{Names: []string{"w"}, Shapes: [][]int{{16, 3, 3, 3}}}
	if _, err := h.validate(); err != nil {
		t.Fatalf("sane shape rejected: %v", err)
	}
}

// FuzzDecoders is the go-native fuzz entry: any byte string through any
// codec must error or produce finite values — never panic. The seed
// corpus covers valid payloads of each codec so mutation starts from
// structurally interesting bytes.
func FuzzDecoders(f *testing.F) {
	ref := randState(21)
	st := perturb(ref, 22, 0.01)
	for ci, c := range allCodecs() {
		payload, err := c.Encode(st, ref)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(ci, payload)
	}
	f.Fuzz(func(t *testing.T, ci int, payload []byte) {
		codecs := allCodecs()
		if ci < 0 {
			ci = -ci
		}
		c := codecs[ci%len(codecs)]
		dec, err := c.Decode(payload, decodeRef(c, ref))
		if err != nil {
			return
		}
		for name, v := range dec {
			for j, x := range v.Data {
				if math.IsNaN(x) || math.IsInf(x, 0) {
					t.Fatalf("%s: decode accepted non-finite %q[%d] = %v", c.Tag(), name, j, x)
				}
			}
		}
	})
}
