// Package wire compresses model state dicts for the FL transport path.
// AdaptiveFL's Pi-class devices are uplink-bound, so the bytes a round
// moves matter as much as the MACs it burns: a Codec turns an nn.State
// into wire bytes and back, trading accuracy for size along a documented
// error bound. Four codecs ship:
//
//   - raw   — the persist v1 gzip/gob float64 envelope, bit-exact; the
//     compatibility baseline every peer understands.
//   - f32   — float32 truncation; |err| ≤ |v|·2⁻²⁴ per value, ~2× smaller.
//   - q8    — per-tensor symmetric int8 quantization with a stored scale;
//     |err| ≤ max|v|/254 per tensor, ~8× smaller.
//   - delta — sparse top-k of the change versus a reference state (the
//     dispatched model), index+value encoded; kept coordinates are exact
//     to float32 rounding, dropped coordinates keep the reference value.
//     Falls back to dense float32 when no reference is available or the
//     kept fraction would not pay for the index overhead.
//
// Codecs are registered by tag so transports can negotiate: the server
// stamps each request with the codec tag and the device answers in kind.
// See docs/WIRE.md for the envelope format and compatibility rules.
package wire

import (
	"bytes"
	"compress/gzip"
	"encoding/gob"
	"fmt"
	"os"
	"sort"

	"adaptivefl/internal/nn"
	"adaptivefl/internal/persist"
	"adaptivefl/internal/tensor"
)

// Codec serialises a state dict. ref, when non-nil, is the reference
// state a delta codec diffs against — both ends of a transfer must pass
// the same reference (the decoded dispatched state) or the decode
// diverges. Stateless codecs ignore ref.
type Codec interface {
	// Tag is the codec's wire name, carried in envelopes and requests.
	Tag() string
	// Encode serialises st (diffed against ref when the codec uses one).
	Encode(st, ref nn.State) ([]byte, error)
	// Decode reconstructs a state dict from Encode's output.
	Decode(data []byte, ref nn.State) (nn.State, error)
	// UsesRef reports whether Decode needs the same ref Encode saw.
	UsesRef() bool
}

// registry holds the codecs reachable by tag.
var registry = map[string]Codec{}

// Register makes a codec reachable by its tag, replacing any previous
// registration. Packages may register custom codecs at init time.
func Register(c Codec) { registry[c.Tag()] = c }

// ByTag resolves a codec tag. The empty tag resolves to raw, the
// compatibility baseline, so untagged (pre-codec) peers keep working.
func ByTag(tag string) (Codec, error) {
	if tag == "" {
		tag = TagRaw
	}
	c, ok := registry[tag]
	if !ok {
		return nil, fmt.Errorf("wire: unknown codec %q (have %v)", tag, Tags())
	}
	return c, nil
}

// Tags returns the registered codec tags, sorted.
func Tags() []string {
	tags := make([]string, 0, len(registry))
	for t := range registry {
		tags = append(tags, t)
	}
	sort.Strings(tags)
	return tags
}

// The built-in codec tags.
const (
	TagRaw   = "raw"
	TagF32   = "f32"
	TagQ8    = "q8"
	TagDelta = "delta"
)

// SizeEstimator is an optional Codec capability: a codec that can forecast
// its encoded size from a trainable-parameter count alone implements it.
// The forecast is what lets a scheduler price an uplink *before* local
// training has produced the actual payload (internal/sched's estimate
// mode), so it must be a pure function of the parameter count — no state,
// no randomness — or estimate-mode runs lose their determinism.
//
// Estimates are deliberately coarse (they ignore gzip's behaviour on the
// particular values and the per-tensor header overhead beyond a flat
// allowance); the round ledger records the estimated-vs-actual delta so a
// run can audit how much pricing fidelity the laziness cost.
type SizeEstimator interface {
	// EstimateSize forecasts Encode's output length for a state dict of
	// the given total trainable-parameter count.
	EstimateSize(params int64) int64
}

// estimateHeadroom is the flat per-payload allowance the built-in
// estimators add for the name/shape header and container overhead.
const estimateHeadroom = 256

// EstimateSize forecasts c's encoded size for a parameter count,
// delegating to the codec's own estimator when it has one and falling
// back to the raw codec's 8 bytes per float64 value otherwise.
func EstimateSize(c Codec, params int64) int64 {
	if se, ok := c.(SizeEstimator); ok {
		return se.EstimateSize(params)
	}
	return 8*params + estimateHeadroom
}

func init() {
	Register(Raw{})
	Register(F32{})
	Register(Q8{})
	Register(NewDeltaTopK())
}

// EncodeEnvelope wraps st in the persist container: raw emits the v1
// format unchanged (so old readers still load it), any other codec is
// carried in a v2 envelope stamped with its tag.
func EncodeEnvelope(c Codec, st, ref nn.State) ([]byte, error) {
	payload, err := c.Encode(st, ref)
	if err != nil {
		return nil, err
	}
	if c.Tag() == TagRaw {
		return payload, nil // raw's payload is the v1 envelope itself
	}
	var buf bytes.Buffer
	if err := persist.EncodeStateV2(&buf, c.Tag(), payload); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeEnvelope reads either envelope version: v1 decodes inline, a v2
// envelope routes its payload to the codec registered under the stored
// tag. ref is forwarded to delta codecs; a nil ref works only because a
// ref-less Encode falls back to dense tensors — decoding a payload with
// sparse tensors and no ref is an error, never a silent zero baseline.
func DecodeEnvelope(b []byte, ref nn.State) (nn.State, error) {
	return persist.DecodeStateAny(bytes.NewReader(b), func(tag string, payload []byte) (nn.State, error) {
		c, err := ByTag(tag)
		if err != nil {
			return nil, err
		}
		return c.Decode(payload, ref)
	})
}

// SaveState checkpoints st at path through the codec (tmp file + rename,
// like persist.SaveState). Raw writes a v1 checkpoint.
func SaveState(path string, c Codec, st nn.State) error {
	b, err := EncodeEnvelope(c, st, nil)
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// LoadState reads a checkpoint written by SaveState or persist.SaveState.
func LoadState(path string) (nn.State, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return DecodeEnvelope(b, nil)
}

// header is the name/shape metadata shared by the non-raw payloads.
type header struct {
	Names  []string
	Shapes [][]int
}

// makeHeader flattens st into sorted name/shape arrays.
func makeHeader(st nn.State) (header, []*tensor.Tensor) {
	names := st.Names()
	h := header{Names: names, Shapes: make([][]int, len(names))}
	ts := make([]*tensor.Tensor, len(names))
	for i, name := range names {
		h.Shapes[i] = st[name].Shape
		ts[i] = st[name]
	}
	return h, ts
}

// validate checks a decoded header and returns the element count of each
// tensor. Wire data is untrusted, so corruption must surface as an error.
func (h header) validate() ([]int, error) {
	if len(h.Names) != len(h.Shapes) {
		return nil, fmt.Errorf("wire: corrupt header (%d names, %d shapes)", len(h.Names), len(h.Shapes))
	}
	if !sort.StringsAreSorted(h.Names) {
		return nil, fmt.Errorf("wire: corrupt header (names not sorted)")
	}
	counts := make([]int, len(h.Names))
	for i, shape := range h.Shapes {
		n := 1
		for _, d := range shape {
			if d < 0 {
				return nil, fmt.Errorf("wire: negative dimension in %q", h.Names[i])
			}
			// Corrupt dimensions must not overflow the element count (a
			// wrapped-negative count defeats every later length check) or
			// drive a decoder into an absurd allocation.
			if d > 0 && n > maxWireElems/d {
				return nil, fmt.Errorf("wire: shape %v of %q exceeds %d elements", shape, h.Names[i], maxWireElems)
			}
			n *= d
		}
		counts[i] = n
	}
	return counts, nil
}

// maxWireElems bounds a single decoded tensor (2²⁸ elements = 2 GiB of
// float64 — far beyond any model this transport moves). Wire data is
// untrusted: without a cap, a corrupt shape turns into an enormous
// allocation before any payload-length check can catch it (the delta
// decoder allocates the full dense tensor for a sparse payload).
const maxWireElems = 1 << 28

// refBlock returns the prefix block of ref[name] matching shape, or nil
// when ref has no compatible tensor. Uploads are often pruned below the
// dispatched widths, so the reference is sliced the same way the model
// was (width-wise prefix blocks).
func refBlock(ref nn.State, name string, shape []int) *tensor.Tensor {
	if ref == nil {
		return nil
	}
	g, ok := ref[name]
	if !ok {
		return nil
	}
	probe := &tensor.Tensor{Shape: shape}
	if !tensor.PrefixFits(probe, g) {
		return nil
	}
	if tensor.SameShape(probe, g) {
		return g
	}
	return tensor.ExtractPrefix(g, shape)
}

// gobGzip encodes v with gob and compresses the result.
func gobGzip(v any) ([]byte, error) {
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if err := gob.NewEncoder(zw).Encode(v); err != nil {
		return nil, fmt.Errorf("wire: encode: %w", err)
	}
	if err := zw.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// unGobGzip reverses gobGzip into v.
func unGobGzip(b []byte, v any) error {
	zr, err := gzip.NewReader(bytes.NewReader(b))
	if err != nil {
		return fmt.Errorf("wire: gzip: %w", err)
	}
	defer zr.Close()
	if err := gob.NewDecoder(zr).Decode(v); err != nil {
		return fmt.Errorf("wire: decode: %w", err)
	}
	return nil
}
