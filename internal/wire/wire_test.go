package wire

import (
	"bytes"
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"adaptivefl/internal/nn"
	"adaptivefl/internal/persist"
	"adaptivefl/internal/tensor"
)

// randState builds a state dict with a mix of tensor ranks and scales,
// the shapes a pruned conv/linear model actually ships.
func randState(seed int64) nn.State {
	rng := rand.New(rand.NewSource(seed))
	return nn.State{
		"block1.conv.weight": tensor.Randn(rng, 0.2, 16, 3, 3, 3),
		"block1.conv.bias":   tensor.Randn(rng, 0.01, 16),
		"block2.conv.weight": tensor.Randn(rng, 0.05, 32, 16, 3, 3),
		"head.weight":        tensor.Randn(rng, 0.3, 10, 128),
		"head.bias":          tensor.Randn(rng, 1.0, 10),
		"norm.running_var":   tensor.Full(1.0, 32),
	}
}

// perturb returns a copy of st with small random deltas added — a stand-in
// for one round of local training against the dispatched reference.
func perturb(st nn.State, seed int64, scale float64) nn.State {
	rng := rand.New(rand.NewSource(seed))
	out := st.Clone()
	for _, t := range out {
		for i := range t.Data {
			t.Data[i] += scale * rng.NormFloat64()
		}
	}
	return out
}

func maxAbsDiff(a, b nn.State, t *testing.T) float64 {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("state sizes differ: %d vs %d", len(a), len(b))
	}
	worst := 0.0
	for name, av := range a {
		bv, ok := b[name]
		if !ok {
			t.Fatalf("missing tensor %q", name)
		}
		if !tensor.SameShape(av, bv) {
			t.Fatalf("%q shape %v vs %v", name, av.Shape, bv.Shape)
		}
		for i := range av.Data {
			if d := math.Abs(av.Data[i] - bv.Data[i]); d > worst {
				worst = d
			}
		}
	}
	return worst
}

func TestRawRoundTripExact(t *testing.T) {
	st := randState(1)
	b, err := Raw{}.Encode(st, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Raw{}.Decode(b, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(st, got, t); d != 0 {
		t.Fatalf("raw round trip not exact: max diff %g", d)
	}
}

// TestF32RoundTrip checks the documented bound: every decoded value is
// exactly float64(float32(v)) — the nearest float32.
func TestF32RoundTrip(t *testing.T) {
	st := randState(2)
	b, err := F32{}.Encode(st, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := F32{}.Decode(b, nil)
	if err != nil {
		t.Fatal(err)
	}
	for name, v := range st {
		for i, x := range v.Data {
			want := float64(float32(x))
			if got[name].Data[i] != want {
				t.Fatalf("%q[%d]: got %v want exact f32 %v", name, i, got[name].Data[i], want)
			}
		}
	}
}

// TestQ8RoundTripBound checks the documented per-tensor bound
// |err| ≤ max|v|/254 (half a quantization step).
func TestQ8RoundTripBound(t *testing.T) {
	st := randState(3)
	b, err := Q8{}.Encode(st, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Q8{}.Decode(b, nil)
	if err != nil {
		t.Fatal(err)
	}
	for name, v := range st {
		maxAbs := 0.0
		for _, x := range v.Data {
			if a := math.Abs(x); a > maxAbs {
				maxAbs = a
			}
		}
		bound := maxAbs/254 + 1e-12
		for i, x := range v.Data {
			if d := math.Abs(got[name].Data[i] - x); d > bound {
				t.Fatalf("%q[%d]: error %g above bound %g", name, i, d, bound)
			}
		}
	}
}

// TestQ8ZeroTensor covers the scale==0 branch.
func TestQ8ZeroTensor(t *testing.T) {
	st := nn.State{"w": tensor.New(4, 4)}
	b, err := Q8{}.Encode(st, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Q8{}.Decode(b, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range got["w"].Data {
		if v != 0 {
			t.Fatalf("zero tensor decoded to %v", v)
		}
	}
}

// TestDeltaTopKRoundTrip checks the documented contract: every coordinate
// decodes either to the reference value exactly (dropped) or to
// ref + float32(delta) (kept), and at least the densest Density fraction
// of each tensor is kept.
func TestDeltaTopKRoundTrip(t *testing.T) {
	ref := randState(4)
	st := perturb(ref, 5, 0.01)
	d := NewDeltaTopK()
	b, err := d.Encode(st, ref)
	if err != nil {
		t.Fatal(err)
	}
	got, err := d.Decode(b, ref)
	if err != nil {
		t.Fatal(err)
	}
	for name, v := range st {
		kept := 0
		for i, x := range v.Data {
			rv := ref[name].Data[i]
			exact := rv + float64(float32(x-rv))
			switch got[name].Data[i] {
			case rv:
				// dropped coordinate
			case exact:
				kept++
			default:
				t.Fatalf("%q[%d]: got %v, want ref %v or ref+delta %v", name, i, got[name].Data[i], rv, exact)
			}
		}
		n := len(v.Data)
		minKept := int(math.Ceil(d.Density*float64(n))) - 1 // a kept delta may be exactly 0 and look dropped
		if kept < minKept {
			t.Fatalf("%q kept %d of %d coordinates, want ≥ %d", name, kept, n, minKept)
		}
	}
}

// TestDeltaTopKNilRefDense: without a reference the codec must fall back
// to dense float32, never to zeroed weights.
func TestDeltaTopKNilRefDense(t *testing.T) {
	st := randState(6)
	d := NewDeltaTopK()
	b, err := d.Encode(st, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := d.Decode(b, nil)
	if err != nil {
		t.Fatal(err)
	}
	for name, v := range st {
		for i, x := range v.Data {
			if got[name].Data[i] != float64(float32(x)) {
				t.Fatalf("%q[%d]: nil-ref decode %v, want dense f32 %v", name, i, got[name].Data[i], x)
			}
		}
	}
}

// TestDeltaTopKPrunedShapes: an upload pruned below the dispatched widths
// diffs against the matching prefix block of the reference.
func TestDeltaTopKPrunedShapes(t *testing.T) {
	ref := nn.State{"w": tensor.Randn(rand.New(rand.NewSource(7)), 0.3, 8, 6, 3, 3)}
	small := nn.State{"w": tensor.ExtractPrefix(ref["w"], []int{4, 3, 3, 3})}
	st := perturb(small, 8, 0.02)
	d := NewDeltaTopK()
	b, err := d.Encode(st, ref)
	if err != nil {
		t.Fatal(err)
	}
	got, err := d.Decode(b, ref)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.SameShape(got["w"], st["w"]) {
		t.Fatalf("decoded shape %v, want %v", got["w"].Shape, st["w"].Shape)
	}
	base := tensor.ExtractPrefix(ref["w"], []int{4, 3, 3, 3})
	for i, x := range st["w"].Data {
		rv := base.Data[i]
		exact := rv + float64(float32(x-rv))
		if g := got["w"].Data[i]; g != rv && g != exact {
			t.Fatalf("[%d]: got %v, want %v or %v", i, g, rv, exact)
		}
	}
}

// TestDeltaDecodeMismatchedRef: a sparse payload without its reference
// must fail loudly, not silently reconstruct garbage.
func TestDeltaDecodeMismatchedRef(t *testing.T) {
	ref := randState(9)
	st := perturb(ref, 10, 0.01)
	d := NewDeltaTopK()
	b, err := d.Encode(st, ref)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Decode(b, nil); err == nil {
		t.Fatal("sparse delta decoded without its reference")
	}
}

// TestDeltaTopKKeepsLargestOverTies: threshold ties earlier in the tensor
// must not crowd out strictly larger deltas later in it — the kept set
// has to contain every delta strictly above the k-th magnitude.
func TestDeltaTopKKeepsLargestOverTies(t *testing.T) {
	ref := nn.State{"w": tensor.New(4)}
	st := nn.State{"w": tensor.FromSlice([]float64{5, 5, 5, 9}, 4)}
	d := DeltaTopK{Density: 0.5, DenseCutoff: 0.9} // k = 2 of 4
	b, err := d.Encode(st, ref)
	if err != nil {
		t.Fatal(err)
	}
	got, err := d.Decode(b, ref)
	if err != nil {
		t.Fatal(err)
	}
	if got["w"].Data[3] != 9 {
		t.Fatalf("largest delta dropped in favour of threshold ties: decoded %v", got["w"].Data)
	}
}

// TestKthLargestMatchesSort: the quickselect threshold must agree with a
// full sort on random data, duplicates, and edge k values.
func TestKthLargestMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(50)
		a := make([]float64, n)
		for i := range a {
			a[i] = float64(rng.Intn(8)) // plenty of duplicates
		}
		k := 1 + rng.Intn(n)
		sorted := append([]float64(nil), a...)
		sort.Float64s(sorted)
		want := sorted[n-k]
		if got := kthLargest(append([]float64(nil), a...), k); got != want {
			t.Fatalf("kthLargest(%v, %d) = %v, want %v", a, k, got, want)
		}
	}
}

// TestQ8RejectsNonFiniteState: a diverged state must fail at encode with
// the tensor named, not round-trip into garbage or a misleading decoder
// corruption error.
func TestQ8RejectsNonFiniteState(t *testing.T) {
	for _, bad := range []float64{math.NaN(), math.Inf(1)} {
		st := nn.State{"w": tensor.FromSlice([]float64{1, bad}, 2)}
		if _, err := (Q8{}).Encode(st, nil); err == nil {
			t.Fatalf("q8 encoded a state containing %v", bad)
		} else if !strings.Contains(err.Error(), `"w"`) {
			t.Fatalf("error should name the tensor: %v", err)
		}
	}
	// The delta codec rejects the same states on the sparse path.
	ref := nn.State{"w": tensor.New(64)}
	data := make([]float64, 64)
	data[7] = math.NaN()
	if _, err := NewDeltaTopK().Encode(nn.State{"w": tensor.FromSlice(data, 64)}, ref); err == nil {
		t.Fatal("delta encoded a NaN state")
	}
}

// TestQ8RejectsCorruptScale: a payload whose per-tensor scale is not a
// finite non-negative number must error, not decode a NaN tensor.
func TestQ8RejectsCorruptScale(t *testing.T) {
	for _, bad := range []float64{math.NaN(), math.Inf(1), -1} {
		p := q8Payload{
			Head:   header{Names: []string{"w"}, Shapes: [][]int{{2}}},
			Scales: []float64{bad},
			Data:   [][]byte{{128, 130}},
		}
		b, err := gobGzip(p)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := (Q8{}).Decode(b, nil); err == nil {
			t.Fatalf("scale %v accepted", bad)
		}
	}
}

// TestDeltaRejectsNonFiniteValue: a sparse delta carrying NaN/Inf must
// error with the tensor name instead of poisoning the aggregate.
func TestDeltaRejectsNonFiniteValue(t *testing.T) {
	ref := nn.State{"w": tensor.Full(1, 4)}
	for _, bad := range []float32{float32(math.NaN()), float32(math.Inf(-1))} {
		p := deltaPayload{
			Head:    header{Names: []string{"w"}, Shapes: [][]int{{4}}},
			IsDense: []bool{false},
			Dense:   [][]float32{nil},
			Index:   [][]uint32{{2}},
			Value:   [][]float32{{bad}},
		}
		b, err := gobGzip(p)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := NewDeltaTopK().Decode(b, ref); err == nil {
			t.Fatalf("value %v accepted", bad)
		}
	}
}

func TestByTag(t *testing.T) {
	for _, tag := range []string{TagRaw, TagF32, TagQ8, TagDelta} {
		c, err := ByTag(tag)
		if err != nil {
			t.Fatal(err)
		}
		if c.Tag() != tag {
			t.Fatalf("ByTag(%q).Tag() = %q", tag, c.Tag())
		}
	}
	if c, err := ByTag(""); err != nil || c.Tag() != TagRaw {
		t.Fatalf("empty tag should resolve to raw, got %v, %v", c, err)
	}
	if _, err := ByTag("zstd"); err == nil {
		t.Fatal("unknown tag accepted")
	}
}

// TestEnvelopeRawIsV1 guarantees backward compatibility: a raw envelope
// is the persist v1 format, loadable by the pre-codec reader.
func TestEnvelopeRawIsV1(t *testing.T) {
	st := randState(11)
	b, err := EncodeEnvelope(Raw{}, st, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := persist.DecodeState(bytes.NewReader(b))
	if err != nil {
		t.Fatalf("persist v1 reader rejected a raw envelope: %v", err)
	}
	if d := maxAbsDiff(st, got, t); d != 0 {
		t.Fatalf("raw envelope via persist differs: %g", d)
	}
	// And the wire reader accepts genuine v1 bytes.
	v1, err := persist.EncodeToBytes(st)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := DecodeEnvelope(v1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(st, got2, t); d != 0 {
		t.Fatalf("v1 bytes via wire differ: %g", d)
	}
}

// TestEnvelopeV2RoundTrip covers the non-raw codecs through the persist
// v2 container, plus the v1-only reader's error message.
func TestEnvelopeV2RoundTrip(t *testing.T) {
	st := randState(12)
	for _, c := range []Codec{F32{}, Q8{}, NewDeltaTopK()} {
		b, err := EncodeEnvelope(c, st, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeEnvelope(b, nil)
		if err != nil {
			t.Fatalf("%s: %v", c.Tag(), err)
		}
		if len(got) != len(st) {
			t.Fatalf("%s: decoded %d tensors, want %d", c.Tag(), len(got), len(st))
		}
		if _, err := persist.DecodeState(bytes.NewReader(b)); err == nil {
			t.Fatalf("%s: v1-only reader accepted a v2 envelope", c.Tag())
		} else if !strings.Contains(err.Error(), "wire") {
			t.Fatalf("%s: v2 error should point at internal/wire, got: %v", c.Tag(), err)
		}
	}
}

func TestSaveLoadState(t *testing.T) {
	st := randState(13)
	for _, c := range []Codec{Raw{}, Q8{}} {
		path := t.TempDir() + "/" + c.Tag() + ".ckpt"
		if err := SaveState(path, c, st); err != nil {
			t.Fatal(err)
		}
		got, err := LoadState(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(st) {
			t.Fatalf("%s: loaded %d tensors, want %d", c.Tag(), len(got), len(st))
		}
	}
	// A v1 checkpoint written by persist.SaveState still loads.
	path := t.TempDir() + "/v1.ckpt"
	if err := persist.SaveState(path, st); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadState(path); err != nil {
		t.Fatalf("v1 checkpoint failed to load through wire: %v", err)
	}
}

// TestCompressionRatios pins the headline sizes: q8 beats raw by ≥4× and
// a sparse delta upload beats raw by ≥4×, on the same state.
func TestCompressionRatios(t *testing.T) {
	ref := randState(14)
	st := perturb(ref, 15, 0.01)
	rawB, err := Raw{}.Encode(st, nil)
	if err != nil {
		t.Fatal(err)
	}
	q8B, err := Q8{}.Encode(st, nil)
	if err != nil {
		t.Fatal(err)
	}
	deltaB, err := NewDeltaTopK().Encode(st, ref)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := float64(len(rawB)) / float64(len(q8B)); ratio < 4 {
		t.Fatalf("q8 ratio %.2fx < 4x (raw %d, q8 %d bytes)", ratio, len(rawB), len(q8B))
	}
	if ratio := float64(len(rawB)) / float64(len(deltaB)); ratio < 4 {
		t.Fatalf("delta ratio %.2fx < 4x (raw %d, delta %d bytes)", ratio, len(rawB), len(deltaB))
	}
}
