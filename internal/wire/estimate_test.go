package wire_test

import (
	"math/rand"
	"testing"

	"adaptivefl/internal/nn"
	"adaptivefl/internal/tensor"
	"adaptivefl/internal/wire"
)

// estState builds a state dict with params total values of trained-weight
// shape (noisy, mixed magnitudes) so encoded sizes behave like real
// uploads rather than like compressible constants.
func estState(params int) nn.State {
	rng := rand.New(rand.NewSource(17))
	st := nn.State{}
	half := params / 2
	mk := func(n int) *tensor.Tensor {
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.NormFloat64() * 0.05
		}
		return tensor.FromSlice(vals, n)
	}
	st["a.weight"] = mk(half)
	st["b.weight"] = mk(params - half)
	return st
}

// TestEstimateSizeDeterministic pins the estimator contract: a pure
// function of the parameter count, identical across calls.
func TestEstimateSizeDeterministic(t *testing.T) {
	for _, tag := range wire.Tags() {
		c, err := wire.ByTag(tag)
		if err != nil {
			t.Fatal(err)
		}
		a := wire.EstimateSize(c, 10000)
		b := wire.EstimateSize(c, 10000)
		if a != b {
			t.Fatalf("%s: estimate not deterministic (%d vs %d)", tag, a, b)
		}
		if a <= 0 {
			t.Fatalf("%s: non-positive estimate %d", tag, a)
		}
	}
}

// TestEstimateSizeOrdering pins the relative sizes the codecs are built
// for: delta(10%, 0.8 B/param) < q8 (1 B/param) < f32 < raw at a fixed
// parameter count.
func TestEstimateSizeOrdering(t *testing.T) {
	const n = 50000
	est := func(tag string) int64 {
		c, err := wire.ByTag(tag)
		if err != nil {
			t.Fatal(err)
		}
		return wire.EstimateSize(c, n)
	}
	q8, delta, f32, raw := est(wire.TagQ8), est(wire.TagDelta), est(wire.TagF32), est(wire.TagRaw)
	if !(delta < q8 && q8 < f32 && f32 < raw) {
		t.Fatalf("estimate ordering violated: delta=%d q8=%d f32=%d raw=%d", delta, q8, f32, raw)
	}
}

// TestEstimateTracksActual requires each built-in estimator to land
// within a factor of the actual encoded size on a realistic state — the
// pricing error a scheduler's estimate mode accepts must stay bounded.
func TestEstimateTracksActual(t *testing.T) {
	const params = 20000
	st := estState(params)
	for _, tag := range []string{wire.TagRaw, wire.TagF32, wire.TagQ8} {
		c, err := wire.ByTag(tag)
		if err != nil {
			t.Fatal(err)
		}
		enc, err := c.Encode(st, nil)
		if err != nil {
			t.Fatal(err)
		}
		actual := int64(len(enc))
		est := wire.EstimateSize(c, params)
		if est < actual/3 || est > actual*3 {
			t.Fatalf("%s: estimate %d vs actual %d outside 3x band", tag, est, actual)
		}
	}
}

// TestEstimateSizeFallback: a codec without its own estimator prices at
// the raw 8-bytes-per-value baseline.
func TestEstimateSizeFallback(t *testing.T) {
	got := wire.EstimateSize(noEstimator{}, 1000)
	if want := wire.EstimateSize(wire.Raw{}, 1000); got != want {
		t.Fatalf("fallback estimate %d, want raw's %d", got, want)
	}
}

// noEstimator is a minimal codec that does not implement SizeEstimator
// (no embedding — a promoted EstimateSize would defeat the test).
type noEstimator struct{}

func (noEstimator) Tag() string                                   { return "noest" }
func (noEstimator) UsesRef() bool                                 { return false }
func (noEstimator) Encode(st, _ nn.State) ([]byte, error)         { return wire.Raw{}.Encode(st, nil) }
func (noEstimator) Decode(b []byte, _ nn.State) (nn.State, error) { return wire.Raw{}.Decode(b, nil) }
