package wire

import (
	"container/list"
	"fmt"
	"sync"

	"adaptivefl/internal/nn"
)

// ArtifactKey content-addresses one encoded downlink artifact: the bytes
// a (snapshot, width, codec) triple encodes to are a pure function of the
// key, so every client of a cohort can be served the same artifact and a
// client that already holds it can skip the body entirely.
type ArtifactKey struct {
	// Snapshot is the global-state hash (nn.HashState) the artifact was
	// extracted from. Any single-bit weight change yields a new key.
	Snapshot uint64
	// Member is the pool member (width) index the dispatch extracted.
	Member int
	// Codec is the wire codec tag the artifact is encoded with.
	Codec string
	// Ref is the reference-state hash for ref-diffed encodes. Downlink
	// dispatch always encodes refless (Ref = 0); the field keys future
	// delta downlinks, where the same snapshot diffed against different
	// references yields different bytes.
	Ref uint64
}

// ETag renders the key as a strong HTTP entity tag for the fednet
// downlink. Distinct keys render distinct tags.
func (k ArtifactKey) ETag() string {
	return fmt.Sprintf("\"%016x-%d-%s-%016x\"", k.Snapshot, k.Member, k.Codec, k.Ref)
}

// Artifact is one cached encode: the wire bytes plus their decoded
// round-trip. Both are shared across every consumer of the key —
// read-only; a trainer that mutates State corrupts the cohort.
type Artifact struct {
	Key ArtifactKey
	// Bytes is the encoded payload, byte-identical to what a direct
	// Codec.Encode of the extracted state would produce (the store pins
	// this).
	Bytes []byte
	// State is the decoded round-trip of Bytes — exactly what a remote
	// device would decode, so serving it to in-process trainers keeps
	// them bit-identical to HTTP ones. It is also the uplink reference
	// both ends diff against for ref-using codecs.
	State nn.State
}

// DefaultArtifactCap bounds the artifact LRU: commits are serial and a
// pool has a handful of widths, so a small cap covers the live snapshot
// plus the stale in-flight tail.
const DefaultArtifactCap = 16

// ArtifactStore memoises encoded dispatch artifacts by key with LRU
// eviction. Get holds the store lock across the encode, so each key is
// encoded exactly once per residency no matter how many dispatch workers
// race on it — the encode-once invariant the scheduler bench pins.
type ArtifactStore struct {
	mu      sync.Mutex
	capn    int
	index   map[ArtifactKey]*list.Element
	lru     *list.List // front = most recently used; value is *Artifact
	encodes int64
	hits    int64
}

// NewArtifactStore builds a store holding at most capn artifacts
// (0 = DefaultArtifactCap).
func NewArtifactStore(capn int) *ArtifactStore {
	if capn <= 0 {
		capn = DefaultArtifactCap
	}
	return &ArtifactStore{capn: capn, index: map[ArtifactKey]*list.Element{}, lru: list.New()}
}

// Get returns the artifact for key, encoding it at most once: on a miss,
// stateFn supplies the state dict and c encodes it refless. Concurrent
// callers of the same key serialise on the store lock, so the second
// caller finds the first one's artifact instead of re-encoding.
func (s *ArtifactStore) Get(key ArtifactKey, c Codec, stateFn func() (nn.State, error)) (*Artifact, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.index[key]; ok {
		s.lru.MoveToFront(el)
		s.hits++
		return el.Value.(*Artifact), nil
	}
	st, err := stateFn()
	if err != nil {
		return nil, err
	}
	b, err := c.Encode(st, nil)
	if err != nil {
		return nil, err
	}
	dec, err := c.Decode(b, nil)
	if err != nil {
		return nil, err
	}
	s.encodes++
	art := &Artifact{Key: key, Bytes: b, State: dec}
	s.index[key] = s.lru.PushFront(art)
	for s.lru.Len() > s.capn {
		el := s.lru.Back()
		delete(s.index, el.Value.(*Artifact).Key)
		s.lru.Remove(el)
	}
	return art, nil
}

// Lookup returns the cached artifact for key without encoding on a miss.
func (s *ArtifactStore) Lookup(key ArtifactKey) (*Artifact, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.index[key]
	if !ok {
		return nil, false
	}
	s.lru.MoveToFront(el)
	s.hits++
	return el.Value.(*Artifact), true
}

// Encodes reports how many artifacts the store has encoded (misses).
func (s *ArtifactStore) Encodes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.encodes
}

// Hits reports how many Get/Lookup calls were served from cache.
func (s *ArtifactStore) Hits() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits
}

// Len reports the artifacts currently resident.
func (s *ArtifactStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lru.Len()
}
