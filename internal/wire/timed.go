package wire

import (
	"time"

	"adaptivefl/internal/nn"
)

// CodecRecorder receives wall-clock codec pass measurements. It is
// satisfied by obs.(*Metrics) — wire stays a leaf package and only
// depends on the shape of the sink.
type CodecRecorder interface {
	CodecTiming(tag, op string, bytes int, seconds float64)
}

// Timed wraps a codec so every Encode/Decode pass reports its wall-clock
// latency and payload size to rec. Wall-clock facts go to metrics only —
// never into the deterministic span stream — so a timed codec is
// bit-identical to the bare one in everything the simulation sees. A nil
// rec returns c unchanged.
func Timed(c Codec, rec CodecRecorder) Codec {
	if rec == nil || c == nil {
		return c
	}
	t := timedCodec{inner: c, rec: rec}
	if se, ok := c.(SizeEstimator); ok {
		// Only claim SizeEstimator when the wrapped codec does: EstimateSize
		// dispatches on the interface, and a false claim would change which
		// estimate path prices flights.
		return timedSizerCodec{timedCodec: t, se: se}
	}
	return t
}

type timedCodec struct {
	inner Codec
	rec   CodecRecorder
}

func (t timedCodec) Tag() string   { return t.inner.Tag() }
func (t timedCodec) UsesRef() bool { return t.inner.UsesRef() }

func (t timedCodec) Encode(st, ref nn.State) ([]byte, error) {
	start := time.Now()
	data, err := t.inner.Encode(st, ref)
	if err == nil {
		t.rec.CodecTiming(t.inner.Tag(), "encode", len(data), time.Since(start).Seconds())
	}
	return data, err
}

func (t timedCodec) Decode(data []byte, ref nn.State) (nn.State, error) {
	start := time.Now()
	st, err := t.inner.Decode(data, ref)
	if err == nil {
		t.rec.CodecTiming(t.inner.Tag(), "decode", len(data), time.Since(start).Seconds())
	}
	return st, err
}

type timedSizerCodec struct {
	timedCodec
	se SizeEstimator
}

func (t timedSizerCodec) EstimateSize(params int64) int64 { return t.se.EstimateSize(params) }
