package wire

import (
	"fmt"
	"math"

	"adaptivefl/internal/nn"
	"adaptivefl/internal/persist"
	"adaptivefl/internal/tensor"
)

// Raw is the compatibility baseline: the persist v1 gzip/gob float64
// envelope, bit-exact. Peers that predate codec negotiation speak exactly
// this format.
type Raw struct{}

// Tag implements Codec.
func (Raw) Tag() string { return TagRaw }

// UsesRef implements Codec.
func (Raw) UsesRef() bool { return false }

// Encode implements Codec.
func (Raw) Encode(st, _ nn.State) ([]byte, error) { return persist.EncodeToBytes(st) }

// Decode implements Codec. The envelope is untrusted wire data: a NaN or
// Inf that slipped in (corruption, or a diverged peer) must surface here,
// not poison the aggregate downstream.
func (Raw) Decode(data []byte, _ nn.State) (nn.State, error) {
	st, err := persist.DecodeFromBytes(data)
	if err != nil {
		return nil, err
	}
	for name, t := range st {
		for j, v := range t.Data {
			if math.IsInf(v, 0) || math.IsNaN(v) {
				return nil, fmt.Errorf("wire: raw %q has non-finite value at index %d", name, j)
			}
		}
	}
	return st, nil
}

// EstimateSize implements SizeEstimator: 8 bytes per float64 value (gzip
// buys almost nothing on trained-weight mantissas) plus header headroom.
func (Raw) EstimateSize(params int64) int64 { return 8*params + estimateHeadroom }

// F32 truncates every value to float32. Error per value is half a
// float32 ulp: |err| ≤ |v|·2⁻²⁴.
type F32 struct{}

// f32Payload is F32's wire form.
type f32Payload struct {
	Head header
	Data [][]float32
}

// Tag implements Codec.
func (F32) Tag() string { return TagF32 }

// UsesRef implements Codec.
func (F32) UsesRef() bool { return false }

// EstimateSize implements SizeEstimator: 4 bytes per value.
func (F32) EstimateSize(params int64) int64 { return 4*params + estimateHeadroom }

// Encode implements Codec.
func (F32) Encode(st, _ nn.State) ([]byte, error) {
	head, ts := makeHeader(st)
	p := f32Payload{Head: head, Data: make([][]float32, len(ts))}
	for i, t := range ts {
		row := make([]float32, len(t.Data))
		for j, v := range t.Data {
			row[j] = float32(v)
		}
		p.Data[i] = row
	}
	return gobGzip(p)
}

// Decode implements Codec.
func (F32) Decode(data []byte, _ nn.State) (nn.State, error) {
	var p f32Payload
	if err := unGobGzip(data, &p); err != nil {
		return nil, err
	}
	counts, err := p.Head.validate()
	if err != nil {
		return nil, err
	}
	if len(p.Data) != len(counts) {
		return nil, fmt.Errorf("wire: f32 payload has %d tensors for %d names", len(p.Data), len(counts))
	}
	st := make(nn.State, len(counts))
	for i, name := range p.Head.Names {
		if len(p.Data[i]) != counts[i] {
			return nil, fmt.Errorf("wire: f32 %q has %d values for shape %v", name, len(p.Data[i]), p.Head.Shapes[i])
		}
		vals := make([]float64, counts[i])
		for j, v := range p.Data[i] {
			// float32 carries its own Inf/NaN encodings: a corrupt or
			// diverged payload must not decode into the aggregate silently.
			if f := float64(v); math.IsInf(f, 0) || math.IsNaN(f) {
				return nil, fmt.Errorf("wire: f32 %q has non-finite value at index %d", name, j)
			}
			vals[j] = float64(v)
		}
		st[name] = tensor.FromSlice(vals, p.Head.Shapes[i]...)
	}
	return st, nil
}

// Q8 applies per-tensor symmetric int8 quantization: each tensor stores
// one float64 scale (max|v|/127) and one byte per value. Error per value
// is half a quantization step: |err| ≤ max|v|/254 over the tensor.
type Q8 struct{}

// q8Payload is Q8's wire form. Data stores the signed level biased by
// +128 so gob serialises it as raw bytes (one byte per value) instead of
// per-element varints.
type q8Payload struct {
	Head   header
	Scales []float64
	Data   [][]byte
}

// Tag implements Codec.
func (Q8) Tag() string { return TagQ8 }

// UsesRef implements Codec.
func (Q8) UsesRef() bool { return false }

// EstimateSize implements SizeEstimator: one byte per quantized value
// (gzip's win on near-zero levels varies too much with the values to
// forecast, so the estimate is the uncompressed level stream).
func (Q8) EstimateSize(params int64) int64 { return params + estimateHeadroom }

// Encode implements Codec.
func (Q8) Encode(st, _ nn.State) ([]byte, error) {
	head, ts := makeHeader(st)
	p := q8Payload{Head: head, Scales: make([]float64, len(ts)), Data: make([][]byte, len(ts))}
	for i, t := range ts {
		maxAbs := 0.0
		for j, v := range t.Data {
			// Inf makes the scale infinite (the decoder rejects it as
			// corruption) and NaN slips past the max (NaN compares false)
			// into an unspecified int conversion — reject both here, where
			// the error can name the diverged tensor.
			if math.IsInf(v, 0) || math.IsNaN(v) {
				return nil, fmt.Errorf("wire: q8 %q: non-finite value at index %d (diverged state?)", head.Names[i], j)
			}
			if a := math.Abs(v); a > maxAbs {
				maxAbs = a
			}
		}
		scale := maxAbs / 127
		p.Scales[i] = scale
		row := make([]byte, len(t.Data))
		if scale > 0 {
			for j, v := range t.Data {
				q := math.Round(v / scale)
				if q > 127 {
					q = 127
				} else if q < -127 {
					q = -127
				}
				row[j] = byte(int(q) + 128)
			}
		} else {
			for j := range row {
				row[j] = 128
			}
		}
		p.Data[i] = row
	}
	return gobGzip(p)
}

// Decode implements Codec.
func (Q8) Decode(data []byte, _ nn.State) (nn.State, error) {
	var p q8Payload
	if err := unGobGzip(data, &p); err != nil {
		return nil, err
	}
	counts, err := p.Head.validate()
	if err != nil {
		return nil, err
	}
	if len(p.Data) != len(counts) || len(p.Scales) != len(counts) {
		return nil, fmt.Errorf("wire: q8 payload has %d tensors, %d scales for %d names", len(p.Data), len(p.Scales), len(counts))
	}
	st := make(nn.State, len(counts))
	for i, name := range p.Head.Names {
		if len(p.Data[i]) != counts[i] {
			return nil, fmt.Errorf("wire: q8 %q has %d values for shape %v", name, len(p.Data[i]), p.Head.Shapes[i])
		}
		scale := p.Scales[i]
		// Encode never produces a negative or non-finite scale, so either
		// is wire corruption — and a NaN scale would otherwise decode the
		// whole tensor to NaN with no diagnostic. A huge finite scale is
		// equally corrupt: dequantising level ±128 against it overflows to
		// Inf (Encode's scale is max|v|/127, far below this).
		if scale < 0 || math.IsInf(scale, 0) || math.IsNaN(scale) || scale > math.MaxFloat64/128 {
			return nil, fmt.Errorf("wire: q8 %q has corrupt scale %v", name, scale)
		}
		vals := make([]float64, counts[i])
		for j, b := range p.Data[i] {
			vals[j] = float64(int(b)-128) * scale
		}
		st[name] = tensor.FromSlice(vals, p.Head.Shapes[i]...)
	}
	return st, nil
}

// DeltaTopK encodes the k largest-magnitude changes of each tensor versus
// the reference state, as (index, float32 value) pairs; the remaining
// coordinates decode to the reference value exactly. Kept coordinates are
// exact to float32 rounding of the delta. When a tensor has no usable
// reference — or keeping Density of it would not beat dense float32 — the
// tensor falls back to dense float32 values (so a nil ref degrades to F32,
// never to zeroed weights).
//
// References are matched width-wise: an uploaded tensor pruned below the
// dispatched shape diffs against the same prefix block that seeded it.
type DeltaTopK struct {
	// Density is the kept fraction per tensor, in (0,1].
	Density float64
	// DenseCutoff switches a tensor to dense float32 when the kept
	// fraction reaches it; index+value pairs cost ~2× a dense value, so
	// sparsity above ~0.5 loses money.
	DenseCutoff float64
}

// NewDeltaTopK returns the registered default: keep the top 10% of each
// tensor's delta, falling back to dense beyond 50% density.
func NewDeltaTopK() DeltaTopK { return DeltaTopK{Density: 0.10, DenseCutoff: 0.5} }

// kthLargest returns the k-th largest value of a (1 ≤ k ≤ len(a)) by
// iterative quickselect, mutating a (the caller passes scratch). The
// selected *value* is unique for given inputs, so the encoding stays
// deterministic even though the partition order is not. O(n) expected —
// a full sort here would dominate the encode of large tensors.
func kthLargest(a []float64, k int) float64 {
	target := len(a) - k // index in ascending order
	lo, hi := 0, len(a)-1
	for lo < hi {
		// Median-of-three pivot guards the sorted/reversed worst cases.
		mid := lo + (hi-lo)/2
		if a[mid] < a[lo] {
			a[mid], a[lo] = a[lo], a[mid]
		}
		if a[hi] < a[lo] {
			a[hi], a[lo] = a[lo], a[hi]
		}
		if a[hi] < a[mid] {
			a[hi], a[mid] = a[mid], a[hi]
		}
		pivot := a[mid]
		i, j := lo, hi
		for i <= j {
			for a[i] < pivot {
				i++
			}
			for a[j] > pivot {
				j--
			}
			if i <= j {
				a[i], a[j] = a[j], a[i]
				i++
				j--
			}
		}
		if target <= j {
			hi = j
		} else if target >= i {
			lo = i
		} else {
			return a[target]
		}
	}
	return a[target]
}

// deltaPayload is DeltaTopK's wire form. Per tensor, IsDense selects
// between Dense[i] (dense float32 values) and Index[i]/Value[i] (the
// sparse delta). An explicit flag is used because gob cannot distinguish
// a nil slice from an empty one.
type deltaPayload struct {
	Head    header
	IsDense []bool
	Dense   [][]float32
	Index   [][]uint32
	Value   [][]float32
}

// Tag implements Codec.
func (DeltaTopK) Tag() string { return TagDelta }

// UsesRef implements Codec.
func (DeltaTopK) UsesRef() bool { return true }

// EstimateSize implements SizeEstimator: Density of the values kept as
// (uint32 index, float32 value) pairs, capped at the dense-float32
// fallback the encoder switches to when sparsity would not pay.
func (d DeltaTopK) EstimateSize(params int64) int64 {
	density := d.Density
	if density <= 0 || density > 1 {
		density = 1
	}
	sparse := int64(math.Ceil(density*float64(params))) * 8
	if dense := 4 * params; sparse > dense {
		sparse = dense
	}
	return sparse + estimateHeadroom
}

// Encode implements Codec.
func (d DeltaTopK) Encode(st, ref nn.State) ([]byte, error) {
	density := d.Density
	if density <= 0 || density > 1 {
		return nil, fmt.Errorf("wire: delta density %v outside (0,1]", density)
	}
	cutoff := d.DenseCutoff
	if cutoff <= 0 {
		cutoff = 0.5
	}
	head, ts := makeHeader(st)
	p := deltaPayload{
		Head:    head,
		IsDense: make([]bool, len(ts)),
		Dense:   make([][]float32, len(ts)),
		Index:   make([][]uint32, len(ts)),
		Value:   make([][]float32, len(ts)),
	}
	for i, t := range ts {
		base := refBlock(ref, head.Names[i], t.Shape)
		n := len(t.Data)
		k := int(math.Ceil(density * float64(n)))
		if n == 0 || base == nil || float64(k) >= cutoff*float64(n) {
			row := make([]float32, n)
			for j, v := range t.Data {
				row[j] = float32(v)
			}
			p.IsDense[i] = true
			p.Dense[i] = row
			continue
		}
		delta := make([]float64, n)
		mags := make([]float64, n)
		for j, v := range t.Data {
			d := v - base.Data[j]
			// NaN magnitudes poison the threshold sort (every comparison
			// is false), silently dropping valid deltas — reject here.
			if math.IsNaN(d) {
				return nil, fmt.Errorf("wire: delta %q: NaN delta at index %d (diverged state?)", head.Names[i], j)
			}
			delta[j] = d
			mags[j] = math.Abs(d)
		}
		thresh := kthLargest(mags, k)
		idx := make([]uint32, 0, k)
		val := make([]float32, 0, k)
		// Keep everything strictly above the k-th magnitude first (there
		// are at most k-1 such entries), then fill the remaining slots
		// with threshold ties in index order — a single >=-scan capped at
		// k could exhaust the budget on early ties and drop strictly
		// larger deltas later in the tensor.
		for j := 0; j < n; j++ {
			if math.Abs(delta[j]) > thresh {
				idx = append(idx, uint32(j))
				val = append(val, float32(delta[j]))
			}
		}
		for j := 0; j < n && len(idx) < k; j++ {
			if math.Abs(delta[j]) == thresh {
				idx = append(idx, uint32(j))
				val = append(val, float32(delta[j]))
			}
		}
		for j, v := range val {
			// Inf here is either an infinite delta or a float32 overflow
			// of a huge finite one; the decoder rejects both, so fail at
			// the source with a clearer error.
			if math.IsInf(float64(v), 0) {
				return nil, fmt.Errorf("wire: delta %q: delta at index %d overflows float32 (diverged state?)", head.Names[i], idx[j])
			}
		}
		p.Index[i] = idx
		p.Value[i] = val
	}
	return gobGzip(p)
}

// Decode implements Codec.
func (d DeltaTopK) Decode(data []byte, ref nn.State) (nn.State, error) {
	var p deltaPayload
	if err := unGobGzip(data, &p); err != nil {
		return nil, err
	}
	counts, err := p.Head.validate()
	if err != nil {
		return nil, err
	}
	if len(p.IsDense) != len(counts) || len(p.Dense) != len(counts) || len(p.Index) != len(counts) || len(p.Value) != len(counts) {
		return nil, fmt.Errorf("wire: delta payload tensor counts do not match %d names", len(counts))
	}
	st := make(nn.State, len(counts))
	for i, name := range p.Head.Names {
		shape := p.Head.Shapes[i]
		if p.IsDense[i] {
			if len(p.Dense[i]) != counts[i] {
				return nil, fmt.Errorf("wire: delta %q has %d dense values for shape %v", name, len(p.Dense[i]), shape)
			}
			vals := make([]float64, counts[i])
			for j, v := range p.Dense[i] {
				// Same rule as the sparse path below: non-finite wire values
				// are corruption, never data.
				if f := float64(v); math.IsInf(f, 0) || math.IsNaN(f) {
					return nil, fmt.Errorf("wire: delta %q has non-finite dense value at index %d", name, j)
				}
				vals[j] = float64(v)
			}
			st[name] = tensor.FromSlice(vals, shape...)
			continue
		}
		base := refBlock(ref, name, shape)
		if base == nil {
			return nil, fmt.Errorf("wire: delta %q is sparse but the reference state has no matching tensor", name)
		}
		if len(p.Index[i]) != len(p.Value[i]) {
			return nil, fmt.Errorf("wire: delta %q has %d indices for %d values", name, len(p.Index[i]), len(p.Value[i]))
		}
		vals := make([]float64, counts[i])
		copy(vals, base.Data)
		for j, idx := range p.Index[i] {
			if int(idx) >= counts[i] {
				return nil, fmt.Errorf("wire: delta %q index %d outside %d elements", name, idx, counts[i])
			}
			v := float64(p.Value[i][j])
			// A non-finite delta (wire corruption, or a float32 overflow
			// of a diverged upload) would poison the aggregate silently;
			// fail with the tensor name instead.
			if math.IsInf(v, 0) || math.IsNaN(v) {
				return nil, fmt.Errorf("wire: delta %q has non-finite value at index %d", name, idx)
			}
			vals[idx] = base.Data[idx] + v
		}
		st[name] = tensor.FromSlice(vals, shape...)
	}
	return st, nil
}
