package wire

import (
	"math"
	"math/rand"
	"testing"

	"adaptivefl/internal/nn"
	"adaptivefl/internal/tensor"
)

// simulateUplinkRounds models the FL transport loop the wrapper exists
// for: each round the sender's true weights advance by a small update and
// the receiver's copy is whatever survives the codec. It returns the mean
// absolute drift between the receiver's copy and the true weights after
// the final round.
func simulateUplinkRounds(t *testing.T, codec Codec, rounds int) float64 {
	t.Helper()
	truth := randState(71)
	received := truth.Clone()
	for r := 0; r < rounds; r++ {
		// The sender trains from what the receiver last reconstructed
		// (the server aggregates decoded uploads and redispatches), so
		// transport error feeds back into the next round's input — the
		// accumulation this test measures.
		next := perturb(received, int64(100+r), 1e-3)
		// Truth advances by exactly the same training delta.
		for name, v := range next {
			d := v.Clone()
			d.SubInPlace(received[name])
			truth[name].AddInPlace(d)
		}
		enc, err := codec.Encode(next, nil)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := codec.Decode(enc, nil)
		if err != nil {
			t.Fatal(err)
		}
		received = dec
	}
	sum, n := 0.0, 0
	for name, v := range truth {
		for i := range v.Data {
			sum += math.Abs(v.Data[i] - received[name].Data[i])
			n++
		}
	}
	return sum / float64(n)
}

// TestErrorFeedbackBeatsPlainQ8 is the satellite's acceptance bar: over 10
// simulated uplink rounds, carrying the quantization residual into the
// next upload must leave strictly less accumulated error than plain q8.
func TestErrorFeedbackBeatsPlainQ8(t *testing.T) {
	const rounds = 10
	plain := simulateUplinkRounds(t, Q8{}, rounds)
	ef := simulateUplinkRounds(t, NewErrorFeedback(Q8{}), rounds)
	if ef >= plain {
		t.Fatalf("error feedback drift %.3g not below plain q8 %.3g", ef, plain)
	}
	// The win should be structural (bounded vs random walk), not noise.
	if ef > 0.8*plain {
		t.Fatalf("error feedback drift %.3g is not clearly below plain q8 %.3g", ef, plain)
	}
}

// TestErrorFeedbackWireCompatible: an EF stream must decode with the plain
// inner codec — feedback is sender-side only, so the receiving end (and
// codec negotiation) cannot tell the difference.
func TestErrorFeedbackWireCompatible(t *testing.T) {
	ef := NewErrorFeedback(Q8{})
	if ef.Tag() != TagQ8 || ef.UsesRef() {
		t.Fatalf("wrapper changed the wire identity: tag=%q usesRef=%v", ef.Tag(), ef.UsesRef())
	}
	st := randState(72)
	// Two encodes so the second carries a non-zero residual.
	if _, err := ef.Encode(st, nil); err != nil {
		t.Fatal(err)
	}
	enc, err := ef.Encode(perturb(st, 73, 1e-3), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (Q8{}).Decode(enc, nil); err != nil {
		t.Fatalf("plain q8 cannot decode an EF stream: %v", err)
	}
}

// TestErrorFeedbackDeltaRef exercises the wrapper over the ref-using delta
// codec: the residual mechanism must compose with reference diffs.
func TestErrorFeedbackDeltaRef(t *testing.T) {
	ref := randState(74)
	ef := NewErrorFeedback(NewDeltaTopK())
	st := perturb(ref, 75, 1e-3)
	for r := 0; r < 3; r++ {
		enc, err := ef.Encode(st, ref)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := ef.Decode(enc, ref)
		if err != nil {
			t.Fatal(err)
		}
		if d := maxAbsDiff(st, dec, t); d > 0.1 {
			t.Fatalf("round %d: EF(delta) drifted %v", r, d)
		}
		st = perturb(st, int64(76+r), 1e-3)
	}
}

// TestErrorFeedbackShapeChangeResets: a tensor uploaded at a different
// pruned width must not be compensated with the old shape's residual.
func TestErrorFeedbackShapeChangeResets(t *testing.T) {
	ef := NewErrorFeedback(Q8{})
	rng := rand.New(rand.NewSource(77))
	wide := nn.State{"w": tensor.Randn(rng, 0.2, 8, 4)}
	narrow := nn.State{"w": tensor.Randn(rng, 0.2, 4, 4)}
	if _, err := ef.Encode(wide, nil); err != nil {
		t.Fatal(err)
	}
	enc, err := ef.Encode(narrow, nil)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := ef.Decode(enc, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Error must stay within one plain quantization step: the stale wide
	// residual was discarded, not misapplied.
	maxAbs := narrow["w"].MaxAbs()
	if d := maxAbsDiff(narrow, dec, t); d > maxAbs/127 {
		t.Fatalf("shape change produced drift %v beyond one q8 step %v", d, maxAbs/127)
	}
}

// TestErrorFeedbackLossless: wrapping raw is a no-op with zero residuals.
func TestErrorFeedbackLossless(t *testing.T) {
	ef := NewErrorFeedback(Raw{})
	st := randState(78)
	for r := 0; r < 2; r++ {
		enc, err := ef.Encode(st, nil)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := ef.Decode(enc, nil)
		if err != nil {
			t.Fatal(err)
		}
		if d := maxAbsDiff(st, dec, t); d != 0 {
			t.Fatalf("raw under EF is not bit-exact: %v", d)
		}
	}
}
