package wire

import (
	"fmt"
	"testing"
)

// benchCodecs enumerates the registered codecs with a ready reference for
// the delta codec.
func benchCodecs() []Codec {
	return []Codec{Raw{}, F32{}, Q8{}, NewDeltaTopK()}
}

func BenchmarkEncode(b *testing.B) {
	ref := randState(100)
	st := perturb(ref, 101, 0.01)
	for _, c := range benchCodecs() {
		b.Run(c.Tag(), func(b *testing.B) {
			enc, err := c.Encode(st, ref)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(enc)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.Encode(st, ref); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDecode(b *testing.B) {
	ref := randState(102)
	st := perturb(ref, 103, 0.01)
	for _, c := range benchCodecs() {
		b.Run(c.Tag(), func(b *testing.B) {
			enc, err := c.Encode(st, ref)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(enc)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.Decode(enc, ref); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEncodedSize is not a timing benchmark: it reports bytes per
// codec for one state so `go test -bench EncodedSize` doubles as a size
// table.
func BenchmarkEncodedSize(b *testing.B) {
	ref := randState(104)
	st := perturb(ref, 105, 0.01)
	for _, c := range benchCodecs() {
		b.Run(c.Tag(), func(b *testing.B) {
			enc, err := c.Encode(st, ref)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(len(enc)), "bytes")
			b.ReportMetric(0, "ns/op")
			_ = fmt.Sprintf("%d", len(enc))
		})
	}
}
