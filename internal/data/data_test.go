package data

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGenerateShapesAndBalance(t *testing.T) {
	cfg := CIFAR10Like(200, 50, 1)
	train, test := Generate(cfg)
	if train.Len() != 200 || test.Len() != 50 {
		t.Fatalf("sizes %d/%d", train.Len(), test.Len())
	}
	if got := train.SampleShape(); got[0] != 3 || got[1] != 32 || got[2] != 32 {
		t.Fatalf("shape %v", got)
	}
	counts := train.ClassCounts()
	for c, n := range counts {
		if n != 20 {
			t.Fatalf("class %d has %d samples, want 20", c, n)
		}
	}
}

func TestGenerateDeterministicPerSeed(t *testing.T) {
	a, _ := Generate(CIFAR10Like(30, 10, 42))
	b, _ := Generate(CIFAR10Like(30, 10, 42))
	for i := range a.X.Data {
		if a.X.Data[i] != b.X.Data[i] {
			t.Fatal("same seed should reproduce data")
		}
	}
	c, _ := Generate(CIFAR10Like(30, 10, 43))
	same := true
	for i := range a.X.Data {
		if a.X.Data[i] != c.X.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds should differ")
	}
}

func TestDatasetConfigsMatchPaperShapes(t *testing.T) {
	cases := []struct {
		cfg      SynthConfig
		classes  int
		channels int
		size     int
	}{
		{CIFAR10Like(10, 10, 1), 10, 3, 32},
		{CIFAR100Like(10, 10, 1), 100, 3, 32},
		{FEMNISTLike(10, 10, 1), 62, 1, 32},
		{WidarLike(10, 10, 1), 22, 1, 20},
	}
	for _, c := range cases {
		if c.cfg.Classes != c.classes || c.cfg.Channels != c.channels || c.cfg.Size != c.size {
			t.Errorf("%s: %+v", c.cfg.Name, c.cfg)
		}
	}
}

func TestSubsetAndGather(t *testing.T) {
	train, _ := Generate(CIFAR10Like(40, 10, 2))
	sub := train.Subset([]int{3, 7, 11})
	if sub.Len() != 3 {
		t.Fatalf("Subset len %d", sub.Len())
	}
	if sub.Labels[0] != train.Labels[3] || sub.Labels[2] != train.Labels[11] {
		t.Fatal("Subset labels wrong")
	}
	x, labels := train.Gather([]int{5, 6})
	if x.Shape[0] != 2 || labels[0] != train.Labels[5] {
		t.Fatal("Gather wrong")
	}
	sz := 3 * 32 * 32
	for i := 0; i < sz; i++ {
		if x.Data[i] != train.X.Data[5*sz+i] {
			t.Fatal("Gather copied wrong sample")
		}
	}
}

func TestBatchesCoverDatasetOnce(t *testing.T) {
	train, _ := Generate(CIFAR10Like(37, 10, 3))
	rng := rand.New(rand.NewSource(1))
	batches := train.Batches(rng, 10)
	seen := make(map[int]bool)
	for _, b := range batches {
		for _, i := range b {
			if seen[i] {
				t.Fatalf("index %d appears twice", i)
			}
			seen[i] = true
		}
	}
	if len(seen) != 37 {
		t.Fatalf("covered %d of 37", len(seen))
	}
	if len(batches[0]) != 10 || len(batches[3]) != 7 {
		t.Fatalf("batch sizes wrong: %d, %d", len(batches[0]), len(batches[3]))
	}
}

func TestConcat(t *testing.T) {
	a, _ := Generate(CIFAR10Like(10, 5, 4))
	b, _ := Generate(CIFAR10Like(20, 5, 5))
	c := Concat(a, b)
	if c.Len() != 30 {
		t.Fatalf("Concat len %d", c.Len())
	}
	if c.Labels[10] != b.Labels[0] {
		t.Fatal("Concat label order wrong")
	}
}

func TestPartitionIIDProperty(t *testing.T) {
	f := func(nRaw, cRaw uint8) bool {
		n := int(nRaw)%200 + 20
		clients := int(cRaw)%10 + 2
		rng := rand.New(rand.NewSource(int64(nRaw)*31 + int64(cRaw)))
		parts := PartitionIID(rng, n, clients)
		seen := make(map[int]bool)
		for _, p := range parts {
			for _, i := range p {
				if i < 0 || i >= n || seen[i] {
					return false
				}
				seen[i] = true
			}
		}
		if len(seen) != n {
			return false
		}
		// Near-equal shard sizes.
		for _, p := range parts {
			if len(p) < n/clients || len(p) > n/clients+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionDirichletCoversAllSamplesOnce(t *testing.T) {
	train, _ := Generate(CIFAR10Like(500, 10, 6))
	rng := rand.New(rand.NewSource(7))
	parts := PartitionDirichlet(rng, train.Labels, 10, 20, 0.3)
	seen := make(map[int]int)
	for _, p := range parts {
		for _, i := range p {
			seen[i]++
		}
	}
	// Empty-client top-up may duplicate a sample; everything else must
	// appear exactly once, and every client must be non-empty.
	dups := 0
	for i := 0; i < train.Len(); i++ {
		switch seen[i] {
		case 0:
			t.Fatalf("sample %d unassigned", i)
		case 1:
		default:
			dups += seen[i] - 1
		}
	}
	if dups > 20 {
		t.Fatalf("too many duplicated samples: %d", dups)
	}
	for c, p := range parts {
		if len(p) == 0 {
			t.Fatalf("client %d empty", c)
		}
	}
}

// skewOf measures label skew as the mean over clients of the max class
// share — 1/classes for perfectly uniform, →1 for single-class clients.
func skewOf(parts [][]int, labels []int, classes int) float64 {
	total := 0.0
	n := 0
	for _, p := range parts {
		if len(p) == 0 {
			continue
		}
		byClass := make([]int, classes)
		for _, i := range p {
			byClass[labels[i]]++
		}
		max := 0
		for _, v := range byClass {
			if v > max {
				max = v
			}
		}
		total += float64(max) / float64(len(p))
		n++
	}
	return total / float64(n)
}

func TestDirichletAlphaControlsSkew(t *testing.T) {
	train, _ := Generate(CIFAR10Like(2000, 10, 8))
	rng := rand.New(rand.NewSource(9))
	loAlpha := PartitionDirichlet(rng, train.Labels, 10, 20, 0.1)
	hiAlpha := PartitionDirichlet(rng, train.Labels, 10, 20, 100)
	skewLo := skewOf(loAlpha, train.Labels, 10)
	skewHi := skewOf(hiAlpha, train.Labels, 10)
	if skewLo <= skewHi {
		t.Fatalf("alpha=0.1 skew %.3f should exceed alpha=100 skew %.3f", skewLo, skewHi)
	}
	if skewHi > 0.3 {
		t.Fatalf("alpha=100 should be near-IID, got max-share %.3f", skewHi)
	}
}

func TestDirichletRejectsBadAlpha(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for alpha <= 0")
		}
	}()
	PartitionDirichlet(rand.New(rand.NewSource(1)), []int{0, 1}, 2, 2, 0)
}

func TestGammaDrawMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, shape := range []float64{0.3, 1, 4.5} {
		n := 20000
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += gammaDraw(rng, shape)
		}
		mean := sum / float64(n)
		if math.Abs(mean-shape)/shape > 0.1 {
			t.Fatalf("Gamma(%v) sample mean %.3f, want ~%.3f", shape, mean, shape)
		}
	}
}

func TestGenerateFederatedWriters(t *testing.T) {
	cfg := FEMNISTLike(0, 60, 11)
	clients, test, err := GenerateFederatedWriters(cfg, WriterConfig{
		Writers: 12, SamplesPerWriter: 30, ClassesPerWriter: 10,
		StyleGain: 0.2, StyleOffset: 0.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(clients) != 12 || test.Len() != 60 {
		t.Fatalf("sizes: %d clients, %d test", len(clients), test.Len())
	}
	for w, d := range clients {
		if d.Len() != 30 {
			t.Fatalf("writer %d has %d samples", w, d.Len())
		}
		distinct := make(map[int]bool)
		for _, l := range d.Labels {
			distinct[l] = true
		}
		if len(distinct) > 10 {
			t.Fatalf("writer %d covers %d classes, cap is 10", w, len(distinct))
		}
	}
}

func TestGenerateFederatedWritersErrors(t *testing.T) {
	cfg := FEMNISTLike(0, 10, 1)
	if _, _, err := GenerateFederatedWriters(cfg, WriterConfig{Writers: 0, SamplesPerWriter: 1, ClassesPerWriter: 1}); err == nil {
		t.Fatal("expected error for zero writers")
	}
	if _, _, err := GenerateFederatedWriters(cfg, WriterConfig{Writers: 1, SamplesPerWriter: 1, ClassesPerWriter: 999}); err == nil {
		t.Fatal("expected error for too many classes per writer")
	}
}

func TestSuperclassStructureIsHarder(t *testing.T) {
	// CIFAR-100-like prototypes within a superclass must be closer to each
	// other than across superclasses (that is what makes it harder).
	cfg := CIFAR100Like(0, 0, 12)
	rng := rand.New(rand.NewSource(cfg.Seed))
	protos := prototypes(rng, cfg)
	dist := func(a, b int) float64 {
		s := 0.0
		for i := range protos[a].Data {
			d := protos[a].Data[i] - protos[b].Data[i]
			s += d * d
		}
		return s
	}
	within := dist(0, 1)  // same superclass (0-4)
	across := dist(0, 97) // different superclass
	if within >= across {
		t.Fatalf("within-superclass distance %.2f should be < across %.2f", within, across)
	}
}
