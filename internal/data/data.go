// Package data provides the datasets and partitioners the AdaptiveFL
// evaluation needs. The environment is offline, so CIFAR-10, CIFAR-100,
// FEMNIST and Widar are replaced by synthetic class-conditional generators
// with the same shapes, class counts and non-IID structure (see DESIGN.md
// §4): each class has a smooth random prototype, samples are noisy shifted
// copies, CIFAR-100-like classes share superclass structure, FEMNIST-like
// samples carry per-writer styles, and Widar-like samples carry per-user
// domain shifts.
package data

import (
	"fmt"
	"math"
	"math/rand"

	"adaptivefl/internal/tensor"
)

// Dataset is a labelled collection of fixed-shape samples.
type Dataset struct {
	X          *tensor.Tensor // [N, C, H, W]
	Labels     []int
	NumClasses int
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.Labels) }

// SampleShape returns [C, H, W].
func (d *Dataset) SampleShape() []int { return d.X.Shape[1:] }

// Subset copies the samples at the given indices into a new dataset.
func (d *Dataset) Subset(idx []int) *Dataset {
	c, h, w := d.X.Shape[1], d.X.Shape[2], d.X.Shape[3]
	sz := c * h * w
	out := &Dataset{
		X:          tensor.New(len(idx), c, h, w),
		Labels:     make([]int, len(idx)),
		NumClasses: d.NumClasses,
	}
	for i, j := range idx {
		copy(out.X.Data[i*sz:(i+1)*sz], d.X.Data[j*sz:(j+1)*sz])
		out.Labels[i] = d.Labels[j]
	}
	return out
}

// Gather copies a batch of samples into a fresh tensor plus label slice.
func (d *Dataset) Gather(idx []int) (*tensor.Tensor, []int) {
	c, h, w := d.X.Shape[1], d.X.Shape[2], d.X.Shape[3]
	sz := c * h * w
	x := tensor.New(len(idx), c, h, w)
	labels := make([]int, len(idx))
	for i, j := range idx {
		copy(x.Data[i*sz:(i+1)*sz], d.X.Data[j*sz:(j+1)*sz])
		labels[i] = d.Labels[j]
	}
	return x, labels
}

// Batches returns shuffled index batches covering the dataset once. The
// final batch may be smaller than batchSize.
func (d *Dataset) Batches(rng *rand.Rand, batchSize int) [][]int {
	idx := rng.Perm(d.Len())
	var out [][]int
	for lo := 0; lo < len(idx); lo += batchSize {
		hi := lo + batchSize
		if hi > len(idx) {
			hi = len(idx)
		}
		out = append(out, idx[lo:hi])
	}
	return out
}

// Concat concatenates datasets with identical shapes and class counts.
func Concat(parts ...*Dataset) *Dataset {
	if len(parts) == 0 {
		panic("data: Concat of nothing")
	}
	c, h, w := parts[0].X.Shape[1], parts[0].X.Shape[2], parts[0].X.Shape[3]
	n := 0
	for _, p := range parts {
		n += p.Len()
	}
	out := &Dataset{X: tensor.New(n, c, h, w), Labels: make([]int, 0, n), NumClasses: parts[0].NumClasses}
	off := 0
	for _, p := range parts {
		copy(out.X.Data[off:], p.X.Data)
		off += p.X.Numel()
		out.Labels = append(out.Labels, p.Labels...)
	}
	return out
}

// ClassCounts returns per-class sample counts.
func (d *Dataset) ClassCounts() []int {
	counts := make([]int, d.NumClasses)
	for _, l := range d.Labels {
		counts[l]++
	}
	return counts
}

// PartitionIID splits n sample indices into near-equal random shards, one
// per client.
func PartitionIID(rng *rand.Rand, n, clients int) [][]int {
	perm := rng.Perm(n)
	out := make([][]int, clients)
	for i, j := range perm {
		c := i % clients
		out[c] = append(out[c], j)
	}
	return out
}

// PartitionDirichlet splits samples across clients with per-class
// proportions drawn from Dir(alpha) — the paper's non-IID protocol. Lower
// alpha means more skew. Clients left empty receive one random sample so
// every client can participate.
func PartitionDirichlet(rng *rand.Rand, labels []int, numClasses, clients int, alpha float64) [][]int {
	if alpha <= 0 {
		panic(fmt.Sprintf("data: Dirichlet alpha must be positive, got %v", alpha))
	}
	byClass := make([][]int, numClasses)
	for i, l := range labels {
		byClass[l] = append(byClass[l], i)
	}
	out := make([][]int, clients)
	for _, idx := range byClass {
		if len(idx) == 0 {
			continue
		}
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		props := dirichlet(rng, alpha, clients)
		// Convert proportions to cumulative cut points.
		lo := 0
		acc := 0.0
		for c := 0; c < clients; c++ {
			acc += props[c]
			hi := int(acc*float64(len(idx)) + 0.5)
			if c == clients-1 {
				hi = len(idx)
			}
			if hi > len(idx) {
				hi = len(idx)
			}
			if hi > lo {
				out[c] = append(out[c], idx[lo:hi]...)
			}
			lo = hi
		}
	}
	for c := range out {
		if len(out[c]) == 0 {
			out[c] = append(out[c], rng.Intn(len(labels)))
		}
	}
	return out
}

// dirichlet draws one sample from Dir(alpha, …, alpha) via Gamma draws.
func dirichlet(rng *rand.Rand, alpha float64, k int) []float64 {
	v := make([]float64, k)
	sum := 0.0
	for i := range v {
		v[i] = gammaDraw(rng, alpha)
		sum += v[i]
	}
	if sum == 0 {
		for i := range v {
			v[i] = 1 / float64(k)
		}
		return v
	}
	for i := range v {
		v[i] /= sum
	}
	return v
}

// gammaDraw samples Gamma(shape, 1) with the Marsaglia–Tsang method,
// boosting shape < 1 via the standard power transform.
func gammaDraw(rng *rand.Rand, shape float64) float64 {
	if shape < 1 {
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		return gammaDraw(rng, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / (3 * math.Sqrt(d))
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}
