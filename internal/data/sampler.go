package data

import (
	"fmt"
	"math/rand"

	"adaptivefl/internal/tensor"
)

// WriterSampler generates per-writer shards on demand, for populations too
// large to materialise every client's data up front. It differs from
// GenerateFederatedWriters in one structural way: that generator threads a
// single sequential rng through every writer (so writer w's shard depends
// on having generated writers 0..w−1 — cheap for hundreds of clients, and
// frozen for bit-compatibility), while the sampler derives each shard from
// an independent per-writer seed, so shard w is the same bytes whether it
// is the first ever generated or regenerated after an LRU eviction. The
// class prototype bank is built once from the dataset seed and shared
// read-only across shards.
type WriterSampler struct {
	cfg    SynthConfig
	protos []*tensor.Tensor
}

// NewWriterSampler builds the shared prototype bank from cfg.Seed.
func NewWriterSampler(cfg SynthConfig) (*WriterSampler, error) {
	if cfg.Classes < 1 || cfg.Channels < 1 || cfg.Size < 1 {
		return nil, fmt.Errorf("data: sampler config needs positive Classes/Channels/Size, got %+v", cfg)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	return &WriterSampler{cfg: cfg, protos: prototypes(rng, cfg)}, nil
}

// Config returns the sampler's dataset configuration.
func (ws *WriterSampler) Config() SynthConfig { return ws.cfg }

// Shard generates one writer's dataset from the writer's own seed: a
// private affine style (gain, offset), a class subset of classesPer
// classes, and samples noisy shifted prototype copies — the same non-IID
// shape GenerateFederatedWriters produces, minus the cross-writer rng
// coupling. Deterministic in (sampler seed, seed, parameters).
func (ws *WriterSampler) Shard(seed int64, samples, classesPer int, styleGain, styleOffset float64) (*Dataset, error) {
	cfg := ws.cfg
	if samples < 1 {
		return nil, fmt.Errorf("data: shard needs positive samples, got %d", samples)
	}
	if classesPer < 1 || classesPer > cfg.Classes {
		return nil, fmt.Errorf("data: shard classes %d outside [1,%d]", classesPer, cfg.Classes)
	}
	rng := rand.New(rand.NewSource(seed))
	gain := 1 + styleGain*rng.NormFloat64()
	offset := styleOffset * rng.NormFloat64()
	classes := rng.Perm(cfg.Classes)[:classesPer]
	d := &Dataset{
		X:          tensor.New(samples, cfg.Channels, cfg.Size, cfg.Size),
		Labels:     make([]int, samples),
		NumClasses: cfg.Classes,
	}
	sz := cfg.Channels * cfg.Size * cfg.Size
	for i := 0; i < samples; i++ {
		c := classes[i%len(classes)]
		d.Labels[i] = c
		sampleInto(rng, d.X.Data[i*sz:(i+1)*sz], pickProto(rng, ws.protos, cfg, c), cfg, gain, offset)
	}
	return d, nil
}

// TestSet generates a style-free balanced test set from its own seed.
func (ws *WriterSampler) TestSet(n int, seed int64) *Dataset {
	cfg := ws.cfg
	rng := rand.New(rand.NewSource(seed))
	test := &Dataset{
		X:          tensor.New(n, cfg.Channels, cfg.Size, cfg.Size),
		Labels:     make([]int, n),
		NumClasses: cfg.Classes,
	}
	sz := cfg.Channels * cfg.Size * cfg.Size
	for i := 0; i < n; i++ {
		c := i % cfg.Classes
		test.Labels[i] = c
		sampleInto(rng, test.X.Data[i*sz:(i+1)*sz], pickProto(rng, ws.protos, cfg, c), cfg, 1, 0)
	}
	return test
}
