package data

import (
	"fmt"
	"math/rand"

	"adaptivefl/internal/tensor"
)

// SynthConfig parameterises a synthetic class-conditional dataset.
type SynthConfig struct {
	Name       string
	Classes    int
	Channels   int
	Size       int // square resolution
	Train      int // training samples
	Test       int // test samples
	Noise      float64
	MaxShift   int // random translation range (pixels)
	Superclass int // classes per shared superclass prototype (0 = none)
	// Confusion is the fraction of samples rendered from a uniformly
	// random class prototype while keeping their nominal label — the
	// irreducible ambiguity that caps achievable accuracy at roughly
	// 1 − Confusion·(1 − 1/Classes), mirroring each real dataset's
	// difficulty (e.g. ~0.80 for CIFAR-10, ~0.41 for CIFAR-100).
	Confusion float64
	Seed      int64
}

// CIFAR10Like mirrors CIFAR-10's shape: 3×32×32, 10 classes.
func CIFAR10Like(train, test int, seed int64) SynthConfig {
	return SynthConfig{Name: "cifar10", Classes: 10, Channels: 3, Size: 32,
		Train: train, Test: test, Noise: 1.0, MaxShift: 2, Confusion: 0.22, Seed: seed}
}

// CIFAR100Like mirrors CIFAR-100: 3×32×32, 100 classes grouped into
// 20 superclasses of 5, which makes classes confusable the way CIFAR-100's
// fine labels are and keeps its accuracy well below CIFAR-10's.
func CIFAR100Like(train, test int, seed int64) SynthConfig {
	return SynthConfig{Name: "cifar100", Classes: 100, Channels: 3, Size: 32,
		Train: train, Test: test, Noise: 1.0, MaxShift: 2, Superclass: 5, Confusion: 0.55, Seed: seed}
}

// FEMNISTLike mirrors FEMNIST's shape after the usual resize: 1×32×32 and
// 62 character classes (paper pipelines feed 28×28 digits into 32×32
// networks). Writer styles are added by GenerateFederatedWriters.
func FEMNISTLike(train, test int, seed int64) SynthConfig {
	return SynthConfig{Name: "femnist", Classes: 62, Channels: 1, Size: 32,
		Train: train, Test: test, Noise: 0.8, MaxShift: 2, Confusion: 0.15, Seed: seed}
}

// WidarLike mirrors the Widar gesture-sensing tensors used on the paper's
// test bed: 1×20×20 inputs and 22 gesture classes.
func WidarLike(train, test int, seed int64) SynthConfig {
	return SynthConfig{Name: "widar", Classes: 22, Channels: 1, Size: 20,
		Train: train, Test: test, Noise: 0.8, MaxShift: 1, Confusion: 0.48, Seed: seed}
}

// prototypes builds one smooth random pattern per class by upsampling a
// coarse random grid; classes within a superclass share the coarse base
// and differ by a smaller delta, so they are genuinely confusable.
func prototypes(rng *rand.Rand, cfg SynthConfig) []*tensor.Tensor {
	protos := make([]*tensor.Tensor, cfg.Classes)
	var base *tensor.Tensor
	for c := 0; c < cfg.Classes; c++ {
		if cfg.Superclass > 0 {
			if c%cfg.Superclass == 0 {
				base = smoothPattern(rng, cfg.Channels, cfg.Size, 1.0)
			}
			delta := smoothPattern(rng, cfg.Channels, cfg.Size, 0.6)
			p := base.Clone()
			p.AddInPlace(delta)
			protos[c] = p
			continue
		}
		protos[c] = smoothPattern(rng, cfg.Channels, cfg.Size, 1.0)
	}
	return protos
}

// smoothPattern draws a 4×4 coarse grid per channel and bilinearly
// upsamples it, yielding low-frequency structure like natural images.
func smoothPattern(rng *rand.Rand, channels, size int, scale float64) *tensor.Tensor {
	const coarse = 4
	out := tensor.New(channels, size, size)
	for ch := 0; ch < channels; ch++ {
		grid := make([]float64, coarse*coarse)
		for i := range grid {
			grid[i] = rng.NormFloat64() * scale
		}
		for y := 0; y < size; y++ {
			fy := float64(y) / float64(size-1) * float64(coarse-1)
			y0 := int(fy)
			y1 := y0 + 1
			if y1 >= coarse {
				y1 = coarse - 1
			}
			wy := fy - float64(y0)
			for x := 0; x < size; x++ {
				fx := float64(x) / float64(size-1) * float64(coarse-1)
				x0 := int(fx)
				x1 := x0 + 1
				if x1 >= coarse {
					x1 = coarse - 1
				}
				wx := fx - float64(x0)
				v := (1-wy)*((1-wx)*grid[y0*coarse+x0]+wx*grid[y0*coarse+x1]) +
					wy*((1-wx)*grid[y1*coarse+x0]+wx*grid[y1*coarse+x1])
				out.Set(v, ch, y, x)
			}
		}
	}
	return out
}

// sampleInto writes one noisy, shifted copy of proto into dst (a [C,H,W]
// window), optionally applying an affine style (gain, offset).
func sampleInto(rng *rand.Rand, dst []float64, proto *tensor.Tensor, cfg SynthConfig, gain, offset float64) {
	c, h, w := proto.Shape[0], proto.Shape[1], proto.Shape[2]
	dy := 0
	dx := 0
	if cfg.MaxShift > 0 {
		dy = rng.Intn(2*cfg.MaxShift+1) - cfg.MaxShift
		dx = rng.Intn(2*cfg.MaxShift+1) - cfg.MaxShift
	}
	i := 0
	for ch := 0; ch < c; ch++ {
		for y := 0; y < h; y++ {
			sy := y + dy
			for x := 0; x < w; x++ {
				sx := x + dx
				v := 0.0
				if sy >= 0 && sy < h && sx >= 0 && sx < w {
					v = proto.At(ch, sy, sx)
				}
				dst[i] = gain*v + offset + cfg.Noise*rng.NormFloat64()
				i++
			}
		}
	}
}

// pickProto returns class c's prototype, or — with probability
// cfg.Confusion — a uniformly random one (irreducible label ambiguity).
func pickProto(rng *rand.Rand, protos []*tensor.Tensor, cfg SynthConfig, c int) *tensor.Tensor {
	if cfg.Confusion > 0 && rng.Float64() < cfg.Confusion {
		return protos[rng.Intn(len(protos))]
	}
	return protos[c]
}

// Generate builds a train/test pair with balanced class membership.
func Generate(cfg SynthConfig) (train, test *Dataset) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	protos := prototypes(rng, cfg)
	make1 := func(n int) *Dataset {
		d := &Dataset{
			X:          tensor.New(n, cfg.Channels, cfg.Size, cfg.Size),
			Labels:     make([]int, n),
			NumClasses: cfg.Classes,
		}
		sz := cfg.Channels * cfg.Size * cfg.Size
		for i := 0; i < n; i++ {
			c := i % cfg.Classes
			d.Labels[i] = c
			sampleInto(rng, d.X.Data[i*sz:(i+1)*sz], pickProto(rng, protos, cfg, c), cfg, 1, 0)
		}
		return d
	}
	return make1(cfg.Train), make1(cfg.Test)
}

// WriterConfig controls GenerateFederatedWriters.
type WriterConfig struct {
	Writers          int // one client per writer
	SamplesPerWriter int
	ClassesPerWriter int // subset of classes each writer produces
	StyleGain        float64
	StyleOffset      float64
}

// GenerateFederatedWriters builds a naturally non-IID federation in the
// FEMNIST/Widar mould: each writer (client) has a private affine style and
// covers only a subset of classes. The returned test set is style-free.
func GenerateFederatedWriters(cfg SynthConfig, wcfg WriterConfig) (clients []*Dataset, test *Dataset, err error) {
	if wcfg.Writers < 1 || wcfg.SamplesPerWriter < 1 {
		return nil, nil, fmt.Errorf("data: writer config needs positive Writers and SamplesPerWriter, got %+v", wcfg)
	}
	if wcfg.ClassesPerWriter < 1 || wcfg.ClassesPerWriter > cfg.Classes {
		return nil, nil, fmt.Errorf("data: ClassesPerWriter %d outside [1,%d]", wcfg.ClassesPerWriter, cfg.Classes)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	protos := prototypes(rng, cfg)
	sz := cfg.Channels * cfg.Size * cfg.Size
	clients = make([]*Dataset, wcfg.Writers)
	for wtr := 0; wtr < wcfg.Writers; wtr++ {
		gain := 1 + wcfg.StyleGain*rng.NormFloat64()
		offset := wcfg.StyleOffset * rng.NormFloat64()
		classes := rng.Perm(cfg.Classes)[:wcfg.ClassesPerWriter]
		d := &Dataset{
			X:          tensor.New(wcfg.SamplesPerWriter, cfg.Channels, cfg.Size, cfg.Size),
			Labels:     make([]int, wcfg.SamplesPerWriter),
			NumClasses: cfg.Classes,
		}
		for i := 0; i < wcfg.SamplesPerWriter; i++ {
			c := classes[i%len(classes)]
			d.Labels[i] = c
			sampleInto(rng, d.X.Data[i*sz:(i+1)*sz], pickProto(rng, protos, cfg, c), cfg, gain, offset)
		}
		clients[wtr] = d
	}
	test = &Dataset{
		X:          tensor.New(cfg.Test, cfg.Channels, cfg.Size, cfg.Size),
		Labels:     make([]int, cfg.Test),
		NumClasses: cfg.Classes,
	}
	for i := 0; i < cfg.Test; i++ {
		c := i % cfg.Classes
		test.Labels[i] = c
		sampleInto(rng, test.X.Data[i*sz:(i+1)*sz], pickProto(rng, protos, cfg, c), cfg, 1, 0)
	}
	return clients, test, nil
}
