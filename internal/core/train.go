package core

import (
	"fmt"
	"math/rand"

	"adaptivefl/internal/data"
	"adaptivefl/internal/models"
	"adaptivefl/internal/nn"
	"adaptivefl/internal/prune"
)

// TrainConfig holds the local-training hyperparameters. The paper's
// defaults are SGD with lr 0.01, momentum 0.5, batch 50, 5 local epochs.
type TrainConfig struct {
	LocalEpochs int
	BatchSize   int
	LR          float64
	Momentum    float64
	WeightDecay float64
}

// DefaultTrainConfig returns the paper's local-training setup.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{LocalEpochs: 5, BatchSize: 50, LR: 0.01, Momentum: 0.5}
}

func (tc *TrainConfig) validate() error {
	if tc.LocalEpochs < 1 || tc.BatchSize < 1 || tc.LR <= 0 {
		return fmt.Errorf("core: invalid train config %+v", *tc)
	}
	return nil
}

// TrainLocal loads the (prefix-sliced) state into a model at the given
// widths, runs LocalEpochs of SGD over the dataset and returns the trained
// state. It is the LocalTrain(.) of Algorithm 1 and is shared by every
// baseline. The model and optimizer come from a rented training arena:
// repeated trainings of the same construction reuse one set of parameter,
// gradient and momentum tensors instead of rebuilding them per dispatch —
// bit-identical to a fresh build (LoadState overwrites every parameter and
// buffer, gradients are zeroed per batch, SGD.Reset zeroes the momentum).
func TrainLocal(mcfg models.Config, widths []int, st nn.State, ds *data.Dataset, tc TrainConfig, rng *rand.Rand) (nn.State, error) {
	if err := tc.validate(); err != nil {
		return nil, err
	}
	a := rentArena()
	defer returnArena(a)
	model, params, opt, err := a.modelFor(mcfg, widths, tc)
	if err != nil {
		return nil, err
	}
	sliced, err := prune.ExtractForModel(st, model)
	if err != nil {
		return nil, err
	}
	if err := nn.LoadState(model, sliced); err != nil {
		return nil, err
	}
	for epoch := 0; epoch < tc.LocalEpochs; epoch++ {
		for _, batch := range ds.Batches(rng, tc.BatchSize) {
			x, labels := ds.Gather(batch)
			nn.ZeroGradParams(params)
			logits := model.Forward(x, true)
			_, grad := nn.CrossEntropy(logits, labels)
			model.Backward(grad)
			opt.Step(params)
		}
	}
	return nn.StateDict(model), nil
}
