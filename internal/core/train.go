package core

import (
	"fmt"
	"math/rand"

	"adaptivefl/internal/data"
	"adaptivefl/internal/models"
	"adaptivefl/internal/nn"
	"adaptivefl/internal/prune"
)

// TrainConfig holds the local-training hyperparameters. The paper's
// defaults are SGD with lr 0.01, momentum 0.5, batch 50, 5 local epochs.
type TrainConfig struct {
	LocalEpochs int
	BatchSize   int
	LR          float64
	Momentum    float64
	WeightDecay float64
}

// DefaultTrainConfig returns the paper's local-training setup.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{LocalEpochs: 5, BatchSize: 50, LR: 0.01, Momentum: 0.5}
}

func (tc *TrainConfig) validate() error {
	if tc.LocalEpochs < 1 || tc.BatchSize < 1 || tc.LR <= 0 {
		return fmt.Errorf("core: invalid train config %+v", *tc)
	}
	return nil
}

// TrainLocal builds a model at the given widths, loads the (prefix-sliced)
// state, runs LocalEpochs of SGD over the dataset and returns the trained
// state. It is the LocalTrain(.) of Algorithm 1 and is shared by every
// baseline.
func TrainLocal(mcfg models.Config, widths []int, st nn.State, ds *data.Dataset, tc TrainConfig, rng *rand.Rand) (nn.State, error) {
	if err := tc.validate(); err != nil {
		return nil, err
	}
	model, err := models.Build(mcfg, widths)
	if err != nil {
		return nil, err
	}
	sliced, err := prune.ExtractForModel(st, model)
	if err != nil {
		return nil, err
	}
	if err := nn.LoadState(model, sliced); err != nil {
		return nil, err
	}
	opt := nn.NewSGD(tc.LR, tc.Momentum, tc.WeightDecay)
	for epoch := 0; epoch < tc.LocalEpochs; epoch++ {
		for _, batch := range ds.Batches(rng, tc.BatchSize) {
			x, labels := ds.Gather(batch)
			nn.ZeroGrads(model)
			logits := model.Forward(x, true)
			_, grad := nn.CrossEntropy(logits, labels)
			model.Backward(grad)
			opt.Step(model.Params())
		}
	}
	return nn.StateDict(model), nil
}
