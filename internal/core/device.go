// Package core implements the AdaptiveFL framework itself (paper §3,
// Algorithm 1): the cloud server that prunes the global model into a pool,
// selects clients with the RL tables, dispatches submodels, lets devices
// prune adaptively to their currently available resources, and aggregates
// the returned heterogeneous submodels into a new global model.
package core

import (
	"fmt"
	"math/rand"

	"adaptivefl/internal/data"
	"adaptivefl/internal/prune"
)

// DeviceClass is the paper's three-tier device taxonomy.
type DeviceClass int

// Device classes: weak devices fit only S-level models, medium devices fit
// up to M-level, strong devices fit everything.
const (
	Weak DeviceClass = iota
	Medium
	Strong
)

// String names the class.
func (c DeviceClass) String() string {
	switch c {
	case Weak:
		return "weak"
	case Medium:
		return "medium"
	case Strong:
		return "strong"
	}
	return fmt.Sprintf("DeviceClass(%d)", int(c))
}

// DeviceModel maps device classes to capacities, expressed relative to
// pool-member sizes, plus a per-round multiplicative jitter modelling the
// paper's uncertain operating environments.
type DeviceModel struct {
	// Factors multiply the anchor size of each class (S_1 for weak, M_1
	// for medium, L_1 for strong). Values slightly above 1 mean the class
	// normally fits its anchor model but jitter can push it below,
	// triggering on-device pruning.
	WeakFactor, MediumFactor, StrongFactor float64
	// Jitter is the half-width of the uniform relative capacity noise.
	Jitter float64
}

// DefaultDeviceModel returns the configuration used across the experiment
// suite.
func DefaultDeviceModel() DeviceModel {
	return DeviceModel{WeakFactor: 1.08, MediumFactor: 1.08, StrongFactor: 1.15, Jitter: 0.10}
}

// Device is one AIoT device's resource state. Capacity is measured in
// trainable-parameter counts, the same unit as prune.Submodel.Size.
type Device struct {
	Class  DeviceClass
	Base   int64
	Jitter float64
	rng    *rand.Rand
}

// Capacity returns the device's currently available resources. Successive
// calls model the paper's dynamically changing environments.
func (d *Device) Capacity() int64 {
	if d.Jitter == 0 {
		return d.Base
	}
	f := 1 + d.Jitter*(2*d.rng.Float64()-1)
	return int64(float64(d.Base) * f)
}

// Client couples a local dataset with a device.
type Client struct {
	ID     int
	Data   *data.Dataset
	Device *Device
}

// anchorSizes returns the capacity anchors (largest member per level).
func anchorSizes(pool *prune.Pool) (s, m, l int64) {
	for _, mem := range pool.Members {
		switch mem.Level {
		case prune.LevelS:
			if mem.Size > s {
				s = mem.Size
			}
		case prune.LevelM:
			if mem.Size > m {
				m = mem.Size
			}
		case prune.LevelL:
			l = mem.Size
		}
	}
	return s, m, l
}

// classBases computes the per-class base capacities a pool and device
// model imply. The class contract is "weak never fits an M model, medium
// never fits L_1". Level sizes can interleave (for ResNet/MobileNet the
// S_1 submodel outweighs M_3 because late stages dominate parameters), so
// clamp each class's base capacity below the next level's smallest member
// even at maximum positive jitter. Both the eager NewPopulation and the
// lazy generator derive capacities here, so the arithmetic stays shared.
func classBases(pool *prune.Pool, dm DeviceModel) [3]int64 {
	sAnchor, mAnchor, lAnchor := anchorSizes(pool)
	minM := lAnchor
	for _, mem := range pool.Members {
		if mem.Level == prune.LevelM && mem.Size < minM {
			minM = mem.Size
		}
	}
	clamp := func(base float64, ceiling int64) int64 {
		lim := float64(ceiling) / (1 + dm.Jitter) * 0.999
		if base > lim {
			base = lim
		}
		return int64(base)
	}
	var bases [3]int64
	bases[Weak] = clamp(float64(sAnchor)*dm.WeakFactor, minM)
	bases[Medium] = clamp(float64(mAnchor)*dm.MediumFactor, lAnchor)
	bases[Strong] = int64(float64(lAnchor) * dm.StrongFactor)
	return bases
}

// NewPopulation builds n devices with the given weak:medium:strong
// proportions (they are normalised internally; the paper's default is
// 4:3:3). Devices are assigned round-robin by cumulative share so the
// realised mix matches the requested one as closely as possible.
func NewPopulation(rng *rand.Rand, n int, proportions [3]float64, pool *prune.Pool, dm DeviceModel) []*Device {
	total := proportions[0] + proportions[1] + proportions[2]
	if total <= 0 {
		panic("core: proportions must sum to a positive value")
	}
	bases := classBases(pool, dm)
	devices := make([]*Device, n)
	acc := 0.0
	counts := [3]int{}
	for i := 0; i < n; i++ {
		// Largest-remainder style assignment keeps the mix exact.
		acc += 1.0
		var class DeviceClass
		switch {
		case float64(counts[0]) < proportions[0]/total*acc:
			class = Weak
		case float64(counts[1]) < proportions[1]/total*acc:
			class = Medium
		default:
			class = Strong
		}
		counts[class]++
		devices[i] = &Device{
			Class:  class,
			Base:   bases[class],
			Jitter: dm.Jitter,
			rng:    rand.New(rand.NewSource(rng.Int63())),
		}
	}
	// Shuffle so class does not correlate with client index (and hence
	// with data partition order).
	rng.Shuffle(n, func(i, j int) { devices[i], devices[j] = devices[j], devices[i] })
	return devices
}
