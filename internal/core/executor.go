package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"adaptivefl/internal/models"
	"adaptivefl/internal/nn"
	"adaptivefl/internal/obs"
)

// Executor bounds concurrent local-training executions. The synchronous
// Round and the event-driven scheduler (internal/sched) both push flight
// executions through one of these, so a whole process shares the same
// notion of training parallelism — and, through the arena pool below, the
// same recycled training state. An Executor is cheap (a semaphore): the
// expensive reusable state lives in the process-wide arena pool, not in
// the executor itself.
type Executor struct {
	sem      chan struct{}
	executed atomic.Int64
	skipped  atomic.Int64
	obs      *obs.Observer
}

// NewExecutor builds an executor bounding concurrent executions to
// parallelism; <= 0 means GOMAXPROCS.
func NewExecutor(parallelism int) *Executor {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	return &Executor{sem: make(chan struct{}, parallelism)}
}

// Width returns the executor's concurrency bound.
func (x *Executor) Width() int { return cap(x.sem) }

// SetObserver attaches an observer whose queue-depth gauges (fl_exec_queued,
// fl_exec_running) track this executor's occupancy. Gauges only — queue
// residence is wall-clock state and never enters the span stream.
func (x *Executor) SetObserver(o *obs.Observer) { x.obs = o }

// Stats reports how many enqueued executions actually trained and how
// many were cancelled before a worker picked them up (a deadline round
// closing on stragglers whose uploads would be discarded anyway). The
// split between the two is timing-dependent; their sum is not.
func (x *Executor) Stats() (executed, skipped int64) {
	return x.executed.Load(), x.skipped.Load()
}

// run executes task on its own goroutine, bounded by the semaphore.
func (x *Executor) run(task func()) {
	x.obs.ExecDepth(1, 0)
	go func() {
		x.sem <- struct{}{}
		x.obs.ExecDepth(-1, 1)
		defer func() {
			<-x.sem
			x.obs.ExecDepth(0, -1)
		}()
		task()
	}()
}

// Training arenas.
//
// Every local training used to build a fresh model (parameter, gradient
// and momentum tensors, layer caches) and drop it after one dispatch,
// even though a round trains the same handful of pool members over and
// over. An arena keeps those structures alive between the dispatches a
// worker executes, keyed by (model config, width vector): renting an
// arena, training through it, and returning it leaves the weights fully
// overwritten by LoadState, the gradients zeroed by the per-batch
// ZeroGrads, and the momentum zeroed by SGD.Reset — so reuse is
// bit-identical to building from scratch (pinned by TestArenaReuseExact).
// Arenas follow rent/return semantics like tensor's scratch pool: at most
// one goroutine owns an arena at a time, and steady-state concurrency N
// keeps N arenas alive.

// arenaKey identifies one model construction.
type arenaKey struct {
	cfg    models.Config
	widths string
}

// arenaEntry is one cached model with its recycled optimizer.
type arenaEntry struct {
	model  *models.Model
	params []*nn.Param
	opt    *nn.SGD
}

// arenaMaxEntries bounds how many distinct model constructions one arena
// retains (a p=3 pool has nine members; full-width paper models are tens
// of MB each, so the cap keeps a worker's footprint bounded even when a
// run cycles through many width vectors).
const arenaMaxEntries = 12

// trainArena caches built models and optimizer state across the local
// trainings one worker executes.
type trainArena struct {
	entries map[arenaKey]*arenaEntry
}

func widthsSig(widths []int) string {
	if widths == nil {
		return "full"
	}
	return fmt.Sprint(widths)
}

// modelFor returns a model (and optimizer) for the given construction,
// recycled when the arena has seen it before. The caller must load state
// before training; the optimizer comes hyperparameter-set and with zeroed
// momentum.
func (a *trainArena) modelFor(cfg models.Config, widths []int, tc TrainConfig) (*models.Model, []*nn.Param, *nn.SGD, error) {
	key := arenaKey{cfg: cfg, widths: widthsSig(widths)}
	if e, ok := a.entries[key]; ok {
		e.opt.LR, e.opt.Momentum, e.opt.WeightDecay = tc.LR, tc.Momentum, tc.WeightDecay
		e.opt.Reset()
		return e.model, e.params, e.opt, nil
	}
	m, err := models.Build(cfg, widths)
	if err != nil {
		return nil, nil, nil, err
	}
	if len(a.entries) >= arenaMaxEntries {
		for k := range a.entries {
			delete(a.entries, k)
			break
		}
	}
	e := &arenaEntry{model: m, params: m.Params(), opt: nn.NewSGD(tc.LR, tc.Momentum, tc.WeightDecay)}
	a.entries[key] = e
	return e.model, e.params, e.opt, nil
}

// arenaPool recycles training arenas process-wide. sync.Pool may drop
// arenas under GC pressure; losing one only costs a rebuild.
var arenaPool = sync.Pool{New: func() any {
	return &trainArena{entries: map[arenaKey]*arenaEntry{}}
}}

func rentArena() *trainArena    { return arenaPool.Get().(*trainArena) }
func returnArena(a *trainArena) { arenaPool.Put(a) }
