package core

import (
	"math/rand"
	"testing"

	"adaptivefl/internal/data"
	"adaptivefl/internal/models"
	"adaptivefl/internal/nn"
	"adaptivefl/internal/prune"
)

// arenaTestSetup builds a small model config, a global state and a local
// shard for training determinism checks.
func arenaTestSetup(t *testing.T) (models.Config, nn.State, *data.Dataset, TrainConfig) {
	t.Helper()
	mcfg := models.Config{Arch: models.VGG16, NumClasses: 4, WidthScale: 0.05, Seed: 9}
	global := nn.StateDict(models.MustBuild(mcfg, nil))
	dcfg := data.SynthConfig{Name: "a", Classes: 4, Channels: 3, Size: 32,
		Train: 24, Test: 8, Noise: 0.3, MaxShift: 1, Seed: 21}
	train, _ := data.Generate(dcfg)
	tc := TrainConfig{LocalEpochs: 2, BatchSize: 8, LR: 0.05, Momentum: 0.5}
	return mcfg, global, train, tc
}

// TestArenaReuseExact pins the training arena's contract: a recycled
// model (overwritten weights, zeroed gradients and momentum) trains
// bit-identically to a freshly built one. The first TrainLocal call
// populates the arena; the repeats reuse it. The reference replicates the
// pre-arena TrainLocal loop with a fresh build.
func TestArenaReuseExact(t *testing.T) {
	mcfg, global, train, tc := arenaTestSetup(t)

	// Fresh-build reference: the exact loop TrainLocal ran before arenas.
	reference := func() nn.State {
		model := models.MustBuild(mcfg, nil)
		sliced, err := prune.ExtractForModel(global, model)
		if err != nil {
			t.Fatal(err)
		}
		if err := nn.LoadState(model, sliced); err != nil {
			t.Fatal(err)
		}
		opt := nn.NewSGD(tc.LR, tc.Momentum, tc.WeightDecay)
		rng := rand.New(rand.NewSource(7))
		for epoch := 0; epoch < tc.LocalEpochs; epoch++ {
			for _, batch := range train.Batches(rng, tc.BatchSize) {
				x, labels := train.Gather(batch)
				nn.ZeroGrads(model)
				logits := model.Forward(x, true)
				_, grad := nn.CrossEntropy(logits, labels)
				model.Backward(grad)
				opt.Step(model.Params())
			}
		}
		return nn.StateDict(model)
	}
	want := reference()

	for attempt := 0; attempt < 3; attempt++ {
		got, err := TrainLocal(mcfg, nil, global, train, tc, rand.New(rand.NewSource(7)))
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range want.Names() {
			w, g := want[name], got[name]
			if g == nil {
				t.Fatalf("attempt %d: result missing parameter %q", attempt, name)
			}
			for i := range w.Data {
				if w.Data[i] != g.Data[i] {
					t.Fatalf("attempt %d: parameter %q element %d differs: fresh %v, arena %v",
						attempt, name, i, w.Data[i], g.Data[i])
				}
			}
		}
	}
}

// TestArenaReuseAcrossWidths checks that interleaving constructions
// (different width vectors through the same arena pool) cannot leak state
// between them.
func TestArenaReuseAcrossWidths(t *testing.T) {
	mcfg, global, train, tc := arenaTestSetup(t)
	pool, err := prune.BuildPool(mcfg, prune.Config{P: 2})
	if err != nil {
		t.Fatal(err)
	}
	small := pool.Smallest()
	smallState, err := pool.ExtractState(global, small)
	if err != nil {
		t.Fatal(err)
	}

	first, err := TrainLocal(mcfg, small.Widths, smallState, train, tc, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	// Train a different construction in between to dirty the arena pool.
	if _, err := TrainLocal(mcfg, nil, global, train, tc, rand.New(rand.NewSource(4))); err != nil {
		t.Fatal(err)
	}
	second, err := TrainLocal(mcfg, small.Widths, smallState, train, tc, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range first.Names() {
		a, b := first[name], second[name]
		for i := range a.Data {
			if a.Data[i] != b.Data[i] {
				t.Fatalf("parameter %q element %d differs after arena interleaving", name, i)
			}
		}
	}
}
