package core

import (
	"fmt"
	"math"
	"strings"

	"adaptivefl/internal/nn"
	"adaptivefl/internal/spec"
	"adaptivefl/internal/tensor"
)

// Behavior classifies how a client acts when it uploads an update. Honest
// clients return their trained weights; the adversarial behaviors model
// the compromised, buggy and free-riding devices an AIoT fleet contains.
type Behavior int

// Client behaviors. The adversarial set covers the standard Byzantine
// model-poisoning repertoire plus the transport-level faults a hardened
// decode path must survive.
const (
	// Honest uploads the trained weights unchanged.
	Honest Behavior = iota
	// SignFlip uploads the negated update: ref − (trained − ref).
	SignFlip
	// ScaleAttack magnifies the update by a factor K: ref + K·(trained − ref).
	ScaleAttack
	// FreeRide uploads the dispatched weights untouched (no local work),
	// still claiming the full sample count.
	FreeRide
	// StaleReplay re-uploads the client's previous trained state instead
	// of the fresh one (honest on its first upload).
	StaleReplay
	// Corrupt flips bits in the encoded codec payload on the wire; without
	// a codec it poisons the raw upload with NaNs. Either way the server
	// must ledger a rejection, never panic or merge garbage.
	Corrupt
)

// numBehaviors counts the adversarial behaviors (Honest excluded).
const numBehaviors = 5

// behaviorNames maps the grammar tokens; index Behavior−1.
var behaviorNames = [numBehaviors]string{"signflip", "scale", "freeride", "stale-replay", "corrupt"}

// String returns the grammar token for b.
func (b Behavior) String() string {
	if b == Honest {
		return "honest"
	}
	if b >= SignFlip && b <= Corrupt {
		return behaviorNames[b-1]
	}
	return fmt.Sprintf("behavior(%d)", int(b))
}

// AdversarySpec parameterises a deterministic adversarial sub-population:
// a fraction of clients is adversarial, each drawing its behavior from a
// weighted mix. Both draws derive from splitmix64 per-client hash streams
// (the same generator the population grammar uses), so a given
// (Seed, spec) pair yields a bit-reproducible attacker set at any
// population size, through both the in-process and fednet HTTP paths.
type AdversarySpec struct {
	// Frac is the adversarial fraction of the population in [0, 1];
	// 0 disables the adversary entirely.
	Frac float64
	// Weights are the relative behavior-mix weights, indexed Behavior−1
	// (signflip, scale, freeride, stale-replay, corrupt). They need not
	// sum to 1; only ratios matter.
	Weights [numBehaviors]float64
	// K is the magnification factor of the scale attack (default 10).
	K float64
	// Seed drives the per-client role and behavior draws. Not part of the
	// grammar; callers set it the way ParseTrace takes a seed argument.
	Seed int64
}

// Enabled reports whether the spec describes any adversaries at all.
func (a AdversarySpec) Enabled() bool { return a.Frac > 0 }

// Salts for the adversary's independent hash streams. Population salts
// 1–2 and sched.PopTrace's 10+ stay disjoint.
const (
	saltAdvRole uint64 = 3
	saltAdvKind uint64 = 4
	saltAdvByte uint64 = 5
)

// advHash derives a per-client stream value without needing a full
// PopulationSpec — trace-driven runs carry only a seed.
func advHash(seed int64, c int, salt uint64) uint64 {
	return mix64(uint64(seed) ^ mix64(uint64(c)^mix64(salt)))
}

// BehaviorOf returns client c's behavior: Honest with probability
// 1−Frac, otherwise a weighted draw from the behavior mix. Pure in
// (Seed, c) — no state, no ordering dependence.
func (a AdversarySpec) BehaviorOf(c int) Behavior {
	if !a.Enabled() {
		return Honest
	}
	if unitFloat(advHash(a.Seed, c, saltAdvRole)) >= a.Frac {
		return Honest
	}
	total := 0.0
	for _, w := range a.Weights {
		total += w
	}
	if total <= 0 {
		return SignFlip
	}
	u := unitFloat(advHash(a.Seed, c, saltAdvKind)) * total
	for i, w := range a.Weights {
		if u < w {
			return Behavior(i + 1)
		}
		u -= w
	}
	return Corrupt
}

// CorruptPayload flips a handful of bits of an encoded payload in place,
// at positions drawn from client c's hash stream — deterministic, so the
// in-process and HTTP paths corrupt identical bytes identically.
func (a AdversarySpec) CorruptPayload(c int, p []byte) {
	if len(p) == 0 {
		return
	}
	h := advHash(a.Seed, c, saltAdvByte)
	for i := 0; i < 8; i++ {
		h = mix64(h)
		p[h%uint64(len(p))] ^= 1 << (h >> 61)
	}
}

// advDefaults is the parse-time default spec: a fifth of the fleet, scale
// attacks magnified 10×.
func advDefaults() AdversarySpec {
	return AdversarySpec{Frac: 0.2, K: 10}
}

// ParseAdversary builds an AdversarySpec from a compact spec string, the
// adversarial analogue of ParsePopulation:
//
//	"signflip"                          — 20% of clients sign-flip
//	"scale:frac=0.3,k=10"               — 30% magnify their update 10×
//	"freeride" | "stale-replay" | "corrupt"
//	"mix:frac=0.3,signflip=1,scale=1"   — 30% adversarial, split evenly
//	    between sign-flips and scale attacks (any behavior name is a
//	    weight key; k tunes the scale factor)
//
// The empty string parses to the zero spec (no adversaries). The seed is
// not part of the grammar — set Spec.Seed after parsing.
func ParseAdversary(advSpec string) (AdversarySpec, error) {
	if advSpec == "" {
		return AdversarySpec{}, nil
	}
	name, args, err := spec.Parse("core", "adversary", advSpec)
	if err != nil {
		return AdversarySpec{}, err
	}
	a := advDefaults()
	single := -1
	if name != "mix" {
		for i, bn := range behaviorNames {
			if name == bn {
				single = i
				break
			}
		}
		if single < 0 {
			return AdversarySpec{}, fmt.Errorf("core: unknown adversary spec %q (want mix|%s)", name, strings.Join(behaviorNames[:], "|"))
		}
		a.Weights[single] = 1
	}
	a.Frac = args.NonNeg("frac", a.Frac)
	a.K = args.NonNeg("k", a.K)
	for i, bn := range behaviorNames {
		if !args.Has(bn) {
			continue
		}
		if single >= 0 {
			args.Reject(bn, fmt.Errorf("core: behavior weight %q only applies to mix specs", bn))
			continue
		}
		a.Weights[i] = args.NonNeg(bn, 0)
	}
	if err := args.Finish(); err != nil {
		return AdversarySpec{}, err
	}
	if a.Frac > 1 {
		return AdversarySpec{}, fmt.Errorf("core: adversary frac must be <= 1 (got %v)", a.Frac)
	}
	if name == "mix" {
		total := 0.0
		for _, w := range a.Weights {
			total += w
		}
		if total <= 0 {
			// The default mix splits between the two model-poisoning attacks.
			a.Weights[SignFlip-1], a.Weights[ScaleAttack-1] = 1, 1
		}
	}
	if a.K < 1 {
		return AdversarySpec{}, fmt.Errorf("core: adversary scale factor k must be >= 1 (got %v)", a.K)
	}
	return a, nil
}

// String renders the canonical spec string; ParseAdversary round-trips it
// (Seed excepted — it is not part of the grammar). The zero spec renders
// empty.
func (a AdversarySpec) String() string {
	if !a.Enabled() {
		return ""
	}
	single, nonzero := -1, 0
	for i, w := range a.Weights {
		if w > 0 {
			single, nonzero = i, nonzero+1
		}
	}
	if nonzero == 1 && a.Weights[single] == 1 {
		b := spec.NewBuilder(behaviorNames[single]).Float("frac", a.Frac)
		if Behavior(single+1) == ScaleAttack {
			b.Float("k", a.K)
		}
		return b.String()
	}
	b := spec.NewBuilder("mix").Float("frac", a.Frac)
	for i, w := range a.Weights {
		if w > 0 {
			b.Float(behaviorNames[i], w)
		}
	}
	// k always renders in mix form so a non-default factor survives the
	// round trip even when the scale weight happens to be zero.
	b.Float("k", a.K)
	return b.String()
}

// CutAdversary splits a composite "trace;adversary" spec: the part after
// the first ';' parses as an adversary spec, the rest is returned for the
// trace (or population) grammar. Specs without a ';' come back unchanged
// with the zero AdversarySpec.
func CutAdversary(composite string) (string, AdversarySpec, error) {
	rest, advStr, found := strings.Cut(composite, ";")
	if !found {
		return composite, AdversarySpec{}, nil
	}
	a, err := ParseAdversary(strings.TrimSpace(advStr))
	if err != nil {
		return "", AdversarySpec{}, err
	}
	return strings.TrimSpace(rest), a, nil
}

// Mutate applies the stateless update transforms (sign flip, scale,
// free ride) to a trained state against its dispatched reference. The
// stateful behaviors — StaleReplay (needs a per-client cache) and Corrupt
// (acts on the encoded payload) — are the caller's to handle; Mutate
// passes them through unchanged. Shared by the in-process trainer and the
// fednet agent so both paths tamper bit-identically.
func (a AdversarySpec) Mutate(b Behavior, trained, sent nn.State) nn.State {
	switch b {
	case SignFlip:
		return scaleUpdate(trained, sent, -1)
	case ScaleAttack:
		return scaleUpdate(trained, sent, a.K)
	case FreeRide:
		return scaleUpdate(trained, sent, 0)
	}
	return trained
}

// PoisonState clones the trained state with a NaN written into every
// tensor — the codec-less Corrupt behavior. The server's record-time
// finiteness guard must turn this into a ledgered rejection.
func PoisonState(st nn.State) nn.State { return poisonState(st) }

// scaleUpdate returns ref + k·(trained − ref), where ref is the
// got-shaped prefix of the dispatched state — the update-direction
// transform behind sign flips (k = −1), scale attacks (k = K) and free
// rides (k = 0). Tensors the sent state does not cover pass through
// unchanged (the pool invariant makes that unreachable; staying total
// keeps the attacker code panic-free).
func scaleUpdate(trained, sent nn.State, k float64) nn.State {
	out := make(nn.State, len(trained))
	for name, tv := range trained {
		sv, ok := sent[name]
		if !ok || !tensor.PrefixFits(tv, sv) {
			out[name] = tv.Clone()
			continue
		}
		ref := tensor.ExtractPrefix(sv, tv.Shape)
		for i, r := range ref.Data {
			ref.Data[i] = r + k*(tv.Data[i]-r)
		}
		out[name] = ref
	}
	return out
}

// poisonState clones the trained state with a NaN written into every
// tensor — the codec-less corrupt behavior. The server's record-time
// finiteness guard must turn this into a ledgered rejection.
func poisonState(st nn.State) nn.State {
	out := st.Clone()
	for _, v := range out {
		if len(v.Data) > 0 {
			v.Data[0] = math.NaN()
		}
	}
	return out
}

// StateFinite reports whether every value of st is finite — the guard
// that keeps a poisoned or garbage-decoded upload out of the global
// model. A nil state is vacuously finite.
func StateFinite(st nn.State) bool {
	for _, v := range st {
		for _, x := range v.Data {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return false
			}
		}
	}
	return true
}
