package core

import (
	"math"
	"reflect"
	"testing"

	"adaptivefl/internal/data"
	"adaptivefl/internal/prune"
)

// stubShards is a ShardGen that records which (client, seed) pairs were
// cut, returning a tiny distinct dataset per call so pointer identity can
// distinguish materialisations.
func stubShards(calls *[][2]int64) ShardGen {
	return func(c int, seed int64) *data.Dataset {
		if calls != nil {
			*calls = append(*calls, [2]int64{int64(c), seed})
		}
		return &data.Dataset{Labels: []int{c}, NumClasses: 1}
	}
}

func TestParsePopulationDefaults(t *testing.T) {
	s, err := ParsePopulation("mix")
	if err != nil {
		t.Fatal(err)
	}
	if s.Weak != 0.4 || s.Medium != 0.3 || s.Strong != 0.3 {
		t.Fatalf("default mix %v/%v/%v, want 0.4/0.3/0.3", s.Weak, s.Medium, s.Strong)
	}
	if s.MeanOn != 60 || s.MeanOff != 0 || s.SlowFactor != 1 {
		t.Fatalf("default churn profile %+v", s)
	}
	if s.Samples != 20 || s.Dataset != "widar" {
		t.Fatalf("default shard config %+v", s)
	}
}

func TestParsePopulationGrammar(t *testing.T) {
	s, err := ParsePopulation("mix:n=1000000,weak=0.6,churn=20,on=45,slow=4,slowprob=0.1,samples=16,classes=5,data=cifar10")
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 1_000_000 {
		t.Fatalf("n = %d", s.N)
	}
	// weak=0.6 with default medium/strong 0.3/0.3 normalises to 0.5/0.25/0.25.
	if s.Weak != 0.5 || s.Medium != 0.25 || s.Strong != 0.25 {
		t.Fatalf("normalised mix %v/%v/%v", s.Weak, s.Medium, s.Strong)
	}
	if s.MeanOn != 45 || s.MeanOff != 20 || s.SlowFactor != 4 || s.SlowProb != 0.1 {
		t.Fatalf("churn profile %+v", s)
	}
	if s.Samples != 16 || s.Classes != 5 || s.Dataset != "cifar10" {
		t.Fatalf("shard config %+v", s)
	}
}

func TestParsePopulationErrors(t *testing.T) {
	for _, spec := range []string{
		"grid",                         // unknown family
		"mix:n",                        // not key=value
		"mix:n=abc",                    // not a number
		"mix:n=-5",                     // negative
		"mix:bogus=1",                  // unknown key
		"mix:weak=0,medium=0,strong=0", // degenerate mix
		"mix:on=0",                     // zero on-window
		"mix:slow=0.5",                 // slow factor below 1
		"mix:slowprob=2",               // probability above 1
		"mix:samples=0",                // empty shards
		"mix:data=",                    // empty dataset name
	} {
		if _, err := ParsePopulation(spec); err == nil {
			t.Errorf("ParsePopulation(%q) accepted", spec)
		}
	}
}

func TestPopulationSpecRoundTrip(t *testing.T) {
	for _, spec := range []string{
		"mix",
		"mix:n=1000,weak=0.6,churn=30",
		"mix:n=42,on=90,churn=15,slow=3,slowprob=0.25,samples=8,classes=4,data=cifar100",
	} {
		a, err := ParsePopulation(spec)
		if err != nil {
			t.Fatal(err)
		}
		b, err := ParsePopulation(a.String())
		if err != nil {
			t.Fatalf("re-parse of %q: %v", a.String(), err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("round trip of %q changed the spec:\n%+v\n%+v", spec, a, b)
		}
	}
}

func TestPopulationMixDeterministic(t *testing.T) {
	parse := func(seed int64) PopulationSpec {
		s, err := ParsePopulation("mix:n=5000,weak=0.6,churn=20")
		if err != nil {
			t.Fatal(err)
		}
		s.Seed = seed
		return s
	}
	a, b := parse(7), parse(7)
	counts := a.MixCounts(5000)
	if counts != b.MixCounts(5000) {
		t.Fatal("same seed produced different class assignments")
	}
	// Realised shares track the normalised spec (0.5/0.25/0.25) closely.
	for i, want := range []float64{0.5, 0.25, 0.25} {
		got := float64(counts[i]) / 5000
		if math.Abs(got-want) > 0.03 {
			t.Fatalf("class %d share %.3f, want ~%.2f", i, got, want)
		}
	}
	// A different seed keeps the shares but reshuffles the assignment.
	c := parse(8)
	diff := 0
	for i := 0; i < 5000; i++ {
		if a.ClassOf(i) != c.ClassOf(i) {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("changing the seed did not move any client between classes")
	}
	// Assignment is per-client stable: no dependence on query order.
	if a.ClassOf(4999) != b.ClassOf(4999) || a.ClientSeed(4999) != b.ClientSeed(4999) {
		t.Fatal("per-client derivations depend on more than (seed, client)")
	}
}

func TestLazyPopulationRematerialisesIdentically(t *testing.T) {
	pool := testPool(t)
	spec, err := ParsePopulation("mix:n=100,weak=0.6,churn=20")
	if err != nil {
		t.Fatal(err)
	}
	spec.Seed = 11
	var calls [][2]int64
	pop, err := NewLazyPopulation(spec, pool, DefaultDeviceModel(), stubShards(&calls), 4)
	if err != nil {
		t.Fatal(err)
	}
	first := pop.Client(3)
	// Flood the 4-slot LRU so client 3 is evicted, then touch it again.
	for c := 10; c < 20; c++ {
		pop.Client(c)
	}
	second := pop.Client(3)
	if first == second {
		t.Fatal("client 3 was not evicted by the LRU flood")
	}
	if first.Device.Class != second.Device.Class || first.Device.Base != second.Device.Base {
		t.Fatalf("re-materialised device differs: %+v vs %+v", first.Device, second.Device)
	}
	// The shard generator saw the same deterministic seed both times.
	var seeds []int64
	for _, call := range calls {
		if call[0] == 3 {
			seeds = append(seeds, call[1])
		}
	}
	if len(seeds) != 2 || seeds[0] != seeds[1] {
		t.Fatalf("shard seeds for client 3: %v, want two identical", seeds)
	}
	if live, total := pop.Materialized(); live > 4+1 || total != int64(len(calls)) {
		t.Fatalf("audit live=%d total=%d calls=%d", live, total, len(calls))
	}
}

func TestLazyPopulationPinSurvivesEviction(t *testing.T) {
	pool := testPool(t)
	spec, err := ParsePopulation("mix:n=100")
	if err != nil {
		t.Fatal(err)
	}
	spec.Seed = 12
	pop, err := NewLazyPopulation(spec, pool, DefaultDeviceModel(), stubShards(nil), 2)
	if err != nil {
		t.Fatal(err)
	}
	pinned := pop.Client(1)
	pop.Pin(1)
	pop.Pin(1) // refcounted: two pins need two unpins
	for c := 20; c < 40; c++ {
		pop.Client(c)
	}
	if pop.Client(1) != pinned {
		t.Fatal("pinned client was evicted")
	}
	pop.Unpin(1)
	if pop.Client(1) != pinned {
		t.Fatal("client dropped after first of two unpins")
	}
	pop.Unpin(1)
	for c := 40; c < 60; c++ {
		pop.Client(c)
	}
	if pop.Client(1) == pinned {
		t.Fatal("fully unpinned client survived an LRU flood")
	}
}

func TestShardPopulationRemap(t *testing.T) {
	pool := testPool(t)
	spec, err := ParsePopulation("mix:n=50")
	if err != nil {
		t.Fatal(err)
	}
	spec.Seed = 13
	pop, err := NewLazyPopulation(spec, pool, DefaultDeviceModel(), stubShards(nil), 0)
	if err != nil {
		t.Fatal(err)
	}
	shard, err := NewShardPopulation(pop, 10, 20)
	if err != nil {
		t.Fatal(err)
	}
	if shard.Len() != 20 || shard.Offset() != 10 {
		t.Fatalf("shard shape %d/%d", shard.Len(), shard.Offset())
	}
	if got := shard.Client(0).ID; got != 10 {
		t.Fatalf("shard client 0 has base ID %d, want 10", got)
	}
	if got := shard.Client(19).ID; got != 29 {
		t.Fatalf("shard client 19 has base ID %d, want 29", got)
	}
	for _, bad := range [][2]int{{-1, 5}, {0, 0}, {40, 20}} {
		if _, err := NewShardPopulation(pop, bad[0], bad[1]); err == nil {
			t.Errorf("shard [%d,+%d) accepted", bad[0], bad[1])
		}
	}
}

// plainPop hides the eager slice behind the bare Population interface, so
// NewServerPopulation takes the sparse-tables path while selection still
// runs the same full permutation eager populations use.
type plainPop []*Client

func (p plainPop) Len() int             { return len(p) }
func (p plainPop) Client(c int) *Client { return p[c] }

// TestEagerSparseSelectionBitIdentity is the rl allocation audit: backing
// the RL tables with lazily allocated columns must not move a single
// selection or weight — same seed, same clients, bit-identical run.
func TestEagerSparseSelectionBitIdentity(t *testing.T) {
	pool := testPool(t)
	cfg := Config{
		Model: testModelCfg(), Pool: prune.Config{P: 3},
		ClientsPerRound: 3,
		Train:           quickTrain(),
		Seed:            29, Parallelism: 3,
	}
	rounds := 2

	eagerClients, _ := testClients(t, 6, pool)
	eager, err := NewServer(cfg, eagerClients)
	if err != nil {
		t.Fatal(err)
	}
	if err := eager.Run(rounds, nil); err != nil {
		t.Fatal(err)
	}

	sparseClients, _ := testClients(t, 6, pool)
	sparse, err := NewServerPopulation(cfg, plainPop(sparseClients))
	if err != nil {
		t.Fatal(err)
	}
	if !sparse.Tables().Sparse() {
		t.Fatal("non-eager population did not get sparse tables")
	}
	if err := sparse.Run(rounds, nil); err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(eager.Stats(), sparse.Stats()) {
		t.Fatalf("dispatch ledgers differ:\neager  %+v\nsparse %+v", eager.Stats(), sparse.Stats())
	}
	for name, v := range eager.Global() {
		if got := sparse.Global()[name].Sum(); got != v.Sum() {
			t.Fatalf("parameter %q differs between eager and sparse runs", name)
		}
	}
	// Every reward the selection loop can read must agree bit-for-bit.
	et, st := eager.Tables(), sparse.Tables()
	for c := 0; c < 6; c++ {
		for _, m := range pool.Members {
			if a, b := et.ResourceReward(m, pool, c), st.ResourceReward(m, pool, c); a != b {
				t.Fatalf("resource reward (%s, %d): %v vs %v", m.Name(), c, a, b)
			}
			if a, b := et.CuriosityReward(m, c), st.CuriosityReward(m, c); a != b {
				t.Fatalf("curiosity reward (%s, %d): %v vs %v", m.Name(), c, a, b)
			}
		}
	}
	if st.Rows() > 6 {
		t.Fatalf("sparse tables allocated %d columns for 6 clients", st.Rows())
	}
}
