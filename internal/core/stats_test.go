package core

import (
	"testing"

	"adaptivefl/internal/prune"
)

// sub builds a pool member stand-in with just the fields the ledger reads.
func sub(size int64) prune.Submodel {
	return prune.Submodel{Level: prune.LevelL, Sub: 1, Size: size}
}

// TestWireTotalsEmpty pins the aggregate helpers' degenerate cases: nil
// and empty ledgers, and ledgers with rounds but no codec traffic, all
// report zero without dividing by zero.
func TestWireTotalsEmpty(t *testing.T) {
	for _, stats := range [][]RoundStats{nil, {}} {
		if sent, back := TotalWireBytes(stats); sent != 0 || back != 0 {
			t.Fatalf("TotalWireBytes(%v) = %d, %d; want 0, 0", stats, sent, back)
		}
		if w := CommWasteRate(stats); w != 0 {
			t.Fatalf("CommWasteRate(%v) = %v; want 0", stats, w)
		}
	}
	// Rounds recorded, but every dispatch failed: SentParams stays 0 only
	// if nothing was sent — with sent params and nothing returned the
	// waste is total, not NaN.
	var st RoundStats
	st.Add(Dispatch{Client: 1, Sent: sub(100), Failed: true})
	if w := CommWasteRate([]RoundStats{st}); w != 1 {
		t.Fatalf("all-failed waste = %v; want 1", w)
	}
	// No codec in play: byte totals are zero even with parameter traffic.
	var ok RoundStats
	ok.Add(Dispatch{Client: 1, Sent: sub(100), Got: sub(40)})
	if sent, back := TotalWireBytes([]RoundStats{ok}); sent != 0 || back != 0 {
		t.Fatalf("codec-less TotalWireBytes = %d, %d; want 0, 0", sent, back)
	}
	if w := CommWasteRate([]RoundStats{ok}); w != 0.6 {
		t.Fatalf("waste = %v; want 0.6", w)
	}
}

// TestRoundStatsAdd pins the per-dispatch folding rules: which outcomes
// count returned parameters, when byte estimates accumulate, and how the
// skip/reuse counters move.
func TestRoundStatsAdd(t *testing.T) {
	cases := []struct {
		name string
		d    Dispatch
		want RoundStats
	}{
		{
			name: "merged",
			d:    Dispatch{Sent: sub(100), Got: sub(40), SentBytes: 800, GotBytes: 320, GotBytesEst: 300},
			want: RoundStats{SentParams: 100, ReturnedParams: 40, SentBytes: 800, ReturnedBytes: 320, ReturnedBytesEst: 300},
		},
		{
			name: "failed wastes the full sent size",
			d:    Dispatch{Sent: sub(100), Got: sub(40), Failed: true, SentBytes: 800, GotBytes: 320, GotBytesEst: 300},
			want: RoundStats{SentParams: 100, SentBytes: 800},
		},
		{
			name: "dropped returns nothing",
			d:    Dispatch{Sent: sub(100), Got: sub(40), Dropped: true, GotBytesEst: 300},
			want: RoundStats{SentParams: 100},
		},
		{
			name: "late discarded counts bytes but no params",
			d:    Dispatch{Sent: sub(100), Got: sub(40), Late: true, GotBytes: 320, GotBytesEst: 300},
			want: RoundStats{SentParams: 100, ReturnedBytes: 320, ReturnedBytesEst: 300},
		},
		{
			name: "late reused counts params as useful work",
			d:    Dispatch{Sent: sub(100), Got: sub(40), Late: true, LateReused: true, GotBytes: 320},
			want: RoundStats{SentParams: 100, ReturnedParams: 40, ReturnedBytes: 320, LateReused: 1},
		},
		{
			name: "estimate without actual bytes is excluded from the audit",
			d:    Dispatch{Sent: sub(100), Got: sub(40), GotBytesEst: 300},
			want: RoundStats{SentParams: 100, ReturnedParams: 40},
		},
		{
			name: "train skipped still moves its bytes",
			d:    Dispatch{Sent: sub(100), Got: sub(40), TrainSkipped: true, Dropped: true, SentBytes: 800},
			want: RoundStats{SentParams: 100, SentBytes: 800, TrainSkipped: 1},
		},
	}
	for _, tc := range cases {
		var st RoundStats
		st.Add(tc.d)
		if len(st.Dispatches) != 1 {
			t.Fatalf("%s: dispatch not appended", tc.name)
		}
		if !statsEqual(st, tc.want) {
			t.Fatalf("%s:\ngot  %+v\nwant %+v", tc.name, st, tc.want)
		}
	}

	// Counters accumulate across dispatches of one round.
	var st RoundStats
	st.Add(Dispatch{Sent: sub(10), Got: sub(5), Late: true, LateReused: true})
	st.Add(Dispatch{Sent: sub(10), Got: sub(5), Late: true, LateReused: true})
	st.Add(Dispatch{Sent: sub(10), Got: sub(5), TrainSkipped: true, Dropped: true})
	if st.LateReused != 2 || st.TrainSkipped != 1 {
		t.Fatalf("counters: LateReused=%d TrainSkipped=%d; want 2, 1", st.LateReused, st.TrainSkipped)
	}
	if st.SentParams != 30 || st.ReturnedParams != 10 {
		t.Fatalf("params: sent=%d returned=%d; want 30, 10", st.SentParams, st.ReturnedParams)
	}
}

// statsEqual compares the scalar ledger fields (Dispatches is aliased by
// the caller before the comparison).
func statsEqual(a, b RoundStats) bool {
	return a.Round == b.Round &&
		a.SentParams == b.SentParams && a.ReturnedParams == b.ReturnedParams &&
		a.SentBytes == b.SentBytes && a.ReturnedBytes == b.ReturnedBytes &&
		a.ReturnedBytesEst == b.ReturnedBytesEst &&
		a.TrainSkipped == b.TrainSkipped && a.LateReused == b.LateReused
}
