package core

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"adaptivefl/internal/agg"
	"adaptivefl/internal/models"
	"adaptivefl/internal/nn"
	"adaptivefl/internal/obs"
	"adaptivefl/internal/prune"
	"adaptivefl/internal/rl"
	"adaptivefl/internal/wire"
)

// Config assembles an AdaptiveFL experiment.
type Config struct {
	Model models.Config
	Pool  prune.Config
	RL    rl.Config
	// Mode is the client-selection strategy (RL-CS by default; RL-C, RL-S
	// and Random are the paper's Figure 5 ablations).
	Mode rl.Mode
	// Greedy dispatches the unpruned L_1 to every slot instead of random
	// pool members (the "AdaptiveFL+Greedy" ablation).
	Greedy bool
	// ClientsPerRound is K, the number of dispatches per round.
	ClientsPerRound int
	Train           TrainConfig
	Seed            int64
	// Parallelism bounds concurrent local trainers (Algorithm 1's
	// parallel for). 0 means GOMAXPROCS. The bound lives in the server's
	// Executor, which the event-driven scheduler shares by default.
	Parallelism int
	// Trainer overrides how dispatches are executed. Nil uses in-process
	// training on the client's dataset; internal/fednet provides an
	// HTTP-backed implementation for networked device agents.
	Trainer Trainer
	// Codec, when set, routes the in-process training path through the
	// wire encoding both ways — dispatches train on the decoded (possibly
	// lossy) weights and uploads are re-decoded before aggregation — so a
	// simulation measures exactly the model quality a networked
	// deployment with that codec would see, and the round ledger carries
	// real encoded byte counts. Nil keeps the exact float64 path.
	Codec wire.Codec
	// Agg selects the aggregation policy (agg.ParsePolicy grammar:
	// mean|trim|krum|clip, clip composable via "+"). Empty keeps the
	// paper's weighted prefix mean on the exact legacy path. Robust
	// policies tolerate Byzantine updates at commit time; clip bounds each
	// update's influence at record time and ledgers it as Clipped.
	Agg string
	// Adversary injects deterministic per-client adversarial behaviors
	// into the in-process training path (ParseAdversary grammar; the zero
	// spec is fully honest). Networked runs configure their agents
	// instead (fednet.Cluster.SetAdversary) with the same spec and seed,
	// so both paths corrupt the same clients identically.
	Adversary AdversarySpec
	// EstimateUpBytes, with a Codec configured, lets flight plans forecast
	// the uplink size from the codec's wire.SizeEstimator instead of
	// waiting for the trained payload's actual encoded length. An
	// event-driven scheduler can then price and schedule a codec flight's
	// whole timeline at launch and keep its training lazy; the ledger
	// records both the estimate used for pricing (Dispatch.GotBytesEst)
	// and the actual bytes, so the pricing error stays auditable. No
	// effect without a codec (the parameter estimate already prices those
	// flights) or with a custom Trainer (planning is in-process only).
	EstimateUpBytes bool
	// Observer receives flight/commit spans and occupancy metrics
	// (internal/obs). Nil disables observability at zero cost on the hot
	// path; an attached observer is a pure sink and never perturbs the
	// run (sched's bit-identity property test pins this).
	Observer *obs.Observer
}

// TrainResult is the outcome of one dispatch: the trained submodel state,
// the sample count used as the aggregation weight, which pool member the
// device actually trained (after on-device pruning), and whether the
// device failed to fit any derivable member.
type TrainResult struct {
	State   nn.State
	Samples int
	Got     prune.Submodel
	Failed  bool
	// SentBytes / GotBytes are the encoded payload sizes that crossed the
	// wire (0 when the trainer moved raw in-memory states).
	SentBytes, GotBytes int64
	// CodecTag names the wire codec the dispatch moved through (empty for
	// raw in-memory transfers). Networked trainers report the codec they
	// actually negotiated per agent, so the ledger shows real encodings.
	CodecTag string
	// Rejected marks an upload that arrived but whose payload was
	// undecodable or invalid (corrupt codec bytes, non-finite values):
	// the bytes crossed the wire but the state must not be aggregated.
	// State is nil when set.
	Rejected bool
}

// Trainer executes Steps 4-5 of Algorithm 1 for one dispatch: on-device
// resource-aware pruning of the received submodel followed by local
// training. sentState is the dispatched weight slice.
type Trainer interface {
	TrainDispatch(clientID int, sent prune.Submodel, sentState nn.State, seed int64) (TrainResult, error)
}

// RoundStarter is an optional Trainer capability: RoundStart is invoked
// whenever the server hands the trainer a fresh global snapshot (once per
// synchronous round; once per aggregation under the event engine), with
// the snapshot's version. Trainers that key derived state by snapshot
// content (ArtifactTrainer implementations) don't need it; it remains for
// trainers that cache per-version state with no content key to evict by.
type RoundStarter interface {
	RoundStart(version int)
}

// Dispatch records one slot of one round, for communication accounting.
type Dispatch struct {
	Client    int
	Sent, Got prune.Submodel
	Failed    bool // device could not fit any derivable pool member
	// Late marks an upload that arrived after its round had already closed
	// (deadline scheduling): the bytes crossed the wire but the result was
	// not aggregated, so the dispatch counts as communication waste.
	Late bool
	// LateReused marks a late upload that was banked instead of discarded
	// and merged into a later aggregation under a staleness discount
	// (sched's deadline-reuse policy): the bytes were late but not wasted,
	// so the returned parameters count as useful work in the ledger.
	// Always set together with Late.
	LateReused bool
	// Dropped marks a dispatch whose client went offline before the upload
	// completed: nothing came back at all.
	Dropped bool
	// Rejected marks an upload that arrived but was refused at the door:
	// the payload failed to decode (corrupt codec bytes), carried
	// non-finite values, or claimed a non-positive sample weight. The
	// uplink bytes crossed the wire (they are ledgered) but nothing was
	// aggregated — the hardened-decode analogue of Late waste.
	Rejected bool
	// Clipped marks a merged update whose delta exceeded the norm-clipping
	// policy's bound and was scaled down before aggregation (Config.Agg
	// "clip"). The update still did useful work — it rides with Merged the
	// way LateReused rides with Late.
	Clipped bool
	// TrainSkipped marks a dispatch whose local training never ran because
	// its result could not be observed (the flight's dropout was already
	// sealed when it was priced — lazy execution). The eager engine used to
	// burn training compute on exactly these dispatches.
	TrainSkipped bool
	// Codec is the wire codec tag the dispatch moved through (empty when
	// the trainer moved raw in-memory states).
	Codec string
	// DownPath classifies how the downlink artifact was served (obs.Down*
	// label; empty when the server is not hashing snapshots). SentBytes
	// stays the logical artifact size on every path — a not-modified
	// dispatch still accounts the artifact it revalidated.
	DownPath string
	// SentBytes / GotBytes are real encoded payload sizes when the round
	// moved models through a wire codec (0 otherwise). testbed.Sim
	// prefers these over parameter-count estimates.
	SentBytes, GotBytes int64
	// GotBytesEst is the codec's forecast of the uplink size
	// (Config.EstimateUpBytes): the value the scheduler priced the upload
	// with before training had produced the actual payload. 0 when the
	// dispatch was priced from actual bytes or the parameter estimate.
	GotBytesEst int64
}

// RoundStats aggregates one round's communication ledger.
type RoundStats struct {
	Round      int
	Dispatches []Dispatch
	// SentParams / ReturnedParams sum trainable parameter counts of the
	// dispatched and returned models (the unit behind the paper's
	// communication-waste rate).
	SentParams, ReturnedParams int64
	// SentBytes / ReturnedBytes sum the encoded payload sizes (0 when no
	// codec was in play).
	SentBytes, ReturnedBytes int64
	// ReturnedBytesEst sums the estimated uplink sizes the scheduler
	// priced with (estimate mode), over the dispatches that also produced
	// actual bytes — so ReturnedBytesEst − ReturnedBytes is the round's
	// aggregate pricing error on a like-for-like population (a cancelled
	// straggler's forecast, with no payload to compare to, is excluded).
	ReturnedBytesEst int64
	// TrainSkipped counts dispatches whose local training was skipped
	// because the result was provably unobservable (see
	// Dispatch.TrainSkipped).
	TrainSkipped int
	// LateReused counts late uploads banked and merged into this
	// aggregation instead of being discarded (see Dispatch.LateReused).
	LateReused int
	// Rejected counts uploads refused at the door (see Dispatch.Rejected):
	// bytes ledgered, parameters not.
	Rejected int
	// Clipped counts merged updates whose delta was norm-clipped before
	// aggregation (see Dispatch.Clipped).
	Clipped int
	// DownEncodedOnce / DownReserved / DownNotModified census the
	// dispatches by downlink serving path (see Dispatch.DownPath; all zero
	// when the server is not hashing snapshots). DownEncodedOnce bounds
	// the encode CPU the aggregation cost its cohort: at most one per
	// (member, codec) however large the cohort.
	DownEncodedOnce, DownReserved, DownNotModified int
}

// Add appends d to the ledger and folds it into the round totals. Failed
// and dropped dispatches waste the full sent size; late uploads moved
// bytes over the wire but count no returned parameters (they were not
// aggregated, so they are waste in the paper's metric) — unless they were
// banked and reused, in which case the parameters did useful work.
func (st *RoundStats) Add(d Dispatch) {
	st.Dispatches = append(st.Dispatches, d)
	st.SentParams += d.Sent.Size
	st.SentBytes += d.SentBytes
	switch d.DownPath {
	case obs.DownEncodedOnce:
		st.DownEncodedOnce++
	case obs.DownReserved:
		st.DownReserved++
	case obs.DownNotModified:
		st.DownNotModified++
	}
	if d.TrainSkipped {
		st.TrainSkipped++
	}
	if d.LateReused {
		st.LateReused++
	}
	if d.Failed || d.Dropped {
		return
	}
	st.ReturnedBytes += d.GotBytes
	if d.GotBytes > 0 {
		// Estimates accumulate only when an actual upload exists to
		// compare against: a cancelled straggler was priced by its
		// estimate but produced no payload, and counting its forecast
		// would turn the pricing-error audit into noise.
		st.ReturnedBytesEst += d.GotBytesEst
	}
	if d.Rejected {
		// The payload crossed the wire (bytes counted above) but was
		// refused: no parameters did useful work.
		st.Rejected++
		return
	}
	if d.Late && !d.LateReused {
		return
	}
	if d.Clipped {
		st.Clipped++
	}
	st.ReturnedParams += d.Got.Size
}

// Server is the AdaptiveFL cloud server.
type Server struct {
	cfg    Config
	pool   *prune.Pool
	tables *rl.Tables
	pop    Population
	global nn.State
	rng    *rand.Rand
	round  int
	stats  []RoundStats

	// version counts aggregations applied to the global model; each
	// in-flight dispatch anchors to the version it was cut from, which is
	// what staleness-aware (semi-asynchronous) aggregation discounts by.
	version int
	// snap is the content hash (nn.HashState) of the current global
	// snapshot — the first component of every downlink artifact key and
	// the value the fednet ETag derives from. Recomputed once per commit
	// (commitSnapshot), never per dispatch. Zero when hashOn is false.
	snap uint64
	// hashOn gates snapshot hashing and dispatch attribution: on whenever
	// dispatches move through an encoding (an in-process codec or a custom
	// trainer that does its own wire work). The raw in-memory path skips
	// the hash — there is no artifact to address.
	hashOn bool
	// artifacts memoises the in-process codec's encoded dispatches across
	// snapshots (nil without a codec; custom trainers hold their own
	// store). One encode per (snapshot, member, codec), shared by every
	// cohort client.
	artifacts *wire.ArtifactStore
	// downMembers / downClients attribute each dispatch's downlink serving
	// path for the current snapshot (reset by commitSnapshot, mutated under
	// mu by OpenFlight): downMembers marks members already encoded this
	// snapshot, downClients marks (client, member) pairs already delivered.
	downMembers map[int]bool
	downClients map[downKey]bool
	// inflight holds dispatches that have been issued but not yet released
	// (collected, dropped, or cancelled), keyed by flight ID.
	inflight map[int64]*Flight
	nextID   int64
	mu       sync.Mutex

	// exec bounds this server's concurrent local trainings; Round and (by
	// default) the event-driven scheduler both execute through it.
	exec *Executor

	// aggPolicy/clip are the parsed Config.Agg policy (nil = the exact
	// legacy weighted-mean path with no per-update clipping).
	aggPolicy agg.Policy
	clip      *agg.Clipper
	// advPrev caches each adversarial stale-replay client's previous
	// trained state (in-process path; fednet agents keep their own).
	// Clients train one flight at a time, so per-client order is
	// deterministic; the mutex only guards cross-client map access.
	advMu   sync.Mutex
	advPrev map[int]nn.State
}

// NewServer validates the configuration, builds the model pool, the RL
// tables and the initial full-width global model. The clients slice is the
// legacy eager population; NewServerPopulation takes any Population.
func NewServer(cfg Config, clients []*Client) (*Server, error) {
	return NewServerPopulation(cfg, EagerPopulation(clients))
}

// NewServerPopulation is NewServer over an abstract Population. An eager
// population keeps the legacy dense RL tables and permutation-based
// selection bit-identically; any other population (the lazy generator, a
// shard view) gets sparse RL tables whose rows allocate on first touch,
// so server memory scales with the set of clients ever selected rather
// than the population.
func NewServerPopulation(cfg Config, pop Population) (*Server, error) {
	if pop == nil || pop.Len() == 0 {
		return nil, fmt.Errorf("core: no clients")
	}
	if cfg.ClientsPerRound < 1 {
		return nil, fmt.Errorf("core: ClientsPerRound must be >= 1")
	}
	if cfg.ClientsPerRound > pop.Len() {
		return nil, fmt.Errorf("core: ClientsPerRound %d exceeds population %d", cfg.ClientsPerRound, pop.Len())
	}
	if err := cfg.Train.validate(); err != nil {
		return nil, err
	}
	pool, err := prune.BuildPool(cfg.Model, cfg.Pool)
	if err != nil {
		return nil, err
	}
	full, err := models.Build(cfg.Model, nil)
	if err != nil {
		return nil, err
	}
	tables := rl.NewTables(cfg.RL, pool.P, len(pool.Members), pop.Len())
	if _, eager := pop.(EagerPopulation); !eager {
		tables = rl.NewSparseTables(cfg.RL, pool.P, len(pool.Members), pop.Len())
	}
	s := &Server{
		cfg:      cfg,
		pool:     pool,
		tables:   tables,
		pop:      pop,
		global:   nn.StateDict(full),
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		inflight: map[int64]*Flight{},
		exec:     NewExecutor(cfg.Parallelism),
		advPrev:  map[int]nn.State{},
	}
	if cfg.Agg != "" {
		pol, clip, err := agg.ParsePolicy(cfg.Agg)
		if err != nil {
			return nil, err
		}
		s.aggPolicy, s.clip = pol, clip
	}
	if cfg.Observer.Enabled() {
		s.exec.SetObserver(cfg.Observer)
		if op, ok := pop.(observablePopulation); ok {
			op.SetObserver(cfg.Observer)
		}
	}
	s.hashOn = cfg.Codec != nil || cfg.Trainer != nil
	if cfg.Codec != nil {
		s.artifacts = wire.NewArtifactStore(0)
	}
	s.commitSnapshot()
	return s, nil
}

// downKey identifies one (client, member) delivery for dispatch
// attribution within a snapshot.
type downKey struct{ client, member int }

// commitSnapshot re-anchors the dispatch layer to the current global
// state: it hashes the snapshot once (every dispatch of this snapshot
// reuses the hash in its artifact key) and resets the downlink
// attribution maps, since a new snapshot means new artifacts. Called at
// construction and after every ApplyUpdates/SyncGlobal version bump.
func (s *Server) commitSnapshot() {
	if !s.hashOn {
		return
	}
	h := nn.HashState(s.global)
	s.mu.Lock()
	s.snap = h
	s.downMembers = map[int]bool{}
	s.downClients = map[downKey]bool{}
	s.mu.Unlock()
}

// SnapshotHash returns the content hash of the current global snapshot
// (zero when the server is not hashing — no codec and no custom trainer).
func (s *Server) SnapshotHash() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snap
}

// Artifacts returns the in-process encode-once artifact store (nil
// without a codec, or when a custom trainer owns the wire).
func (s *Server) Artifacts() *wire.ArtifactStore { return s.artifacts }

// observablePopulation is an optional Population capability: populations
// with internal cache dynamics (the lazy LRU) report them to an observer.
type observablePopulation interface {
	SetObserver(o *obs.Observer)
}

// Executor returns the server's training executor.
func (s *Server) Executor() *Executor { return s.exec }

// Observer returns the attached observer (nil when observability is off;
// the nil observer is safe to call).
func (s *Server) Observer() *obs.Observer { return s.cfg.Observer }

// RewardOf reads the RL selection reward R(got, client) from the current
// tables — the quantity the next selection of this client would weigh.
// Pure read; flight spans carry it so a trace shows how each dispatch
// moved the bandit.
func (s *Server) RewardOf(got prune.Submodel, client int) float64 {
	return s.tables.Reward(got, s.pool, client)
}

// Pool exposes the model pool (read-only use intended).
func (s *Server) Pool() *prune.Pool { return s.pool }

// Tables exposes the RL tables (read-only use intended).
func (s *Server) Tables() *rl.Tables { return s.tables }

// Global returns the current global state dict (not a copy).
func (s *Server) Global() nn.State { return s.global }

// Stats returns the per-round communication ledger.
func (s *Server) Stats() []RoundStats { return s.stats }

// Clients returns the eager client slice, or nil for generated
// populations — scale-aware callers use NumClients/ClientAt instead.
func (s *Server) Clients() []*Client {
	if p, ok := s.pop.(EagerPopulation); ok {
		return p
	}
	return nil
}

// Population returns the server's client population.
func (s *Server) Population() Population { return s.pop }

// NumClients returns the population size.
func (s *Server) NumClients() int { return s.pop.Len() }

// ClientAt returns client c, materialising it if the population is lazy.
func (s *Server) ClientAt(c int) *Client { return s.pop.Client(c) }

// GlobalModel materialises the current global model at full width.
func (s *Server) GlobalModel() (*models.Model, error) {
	m, err := models.Build(s.cfg.Model, nil)
	if err != nil {
		return nil, err
	}
	if err := nn.LoadState(m, s.global); err != nil {
		return nil, err
	}
	return m, nil
}

// SubmodelByName materialises the pool member with the given paper name
// (e.g. "M1") from the current global weights.
func (s *Server) SubmodelByName(name string) (*models.Model, error) {
	for _, mem := range s.pool.Members {
		if mem.Name() == name {
			st, err := s.pool.ExtractState(s.global, mem)
			if err != nil {
				return nil, err
			}
			m, err := models.Build(s.cfg.Model, mem.Widths)
			if err != nil {
				return nil, err
			}
			if err := nn.LoadState(m, st); err != nil {
				return nil, err
			}
			return m, nil
		}
	}
	return nil, fmt.Errorf("core: no pool member %q", name)
}

// localResult carries one slot's training outcome back to the server.
type localResult struct {
	state     nn.State
	samples   int
	got       prune.Submodel
	failed    bool
	sentBytes int64
	gotBytes  int64
	// gotBytesEst is the plan's uplink-size forecast (estimate mode); it
	// rides along into the ledger so priced-vs-actual stays auditable.
	gotBytesEst int64
	codec       string
	// skipped marks a result finalised from the flight's plan without
	// training (the dropout was sealed before training could be observed).
	skipped bool
	// rejected marks an upload whose payload failed to decode: the bytes
	// are ledgered (gotBytes) but state is nil and must not aggregate.
	rejected bool
	err      error
}

// Slot is one planned dispatch: the selected client, the pool member to
// send, and the local-training seed.
type Slot struct {
	Client int
	Sent   prune.Submodel
	Seed   int64
}

// Flight is one in-flight dispatch: issued via OpenFlight, executed via
// Execute (synchronously) or ExecuteAsync (on an Executor, joined via
// Wait), and finalised via Release/Record. The synchronous Round barriers
// on a whole round of flights; the event-driven scheduler (internal/sched)
// keeps flights open across virtual time, executes them lazily while the
// virtual clock advances, and aggregates them out of order.
type Flight struct {
	ID   int64
	Slot Slot
	// Version is the global-model version the dispatch was cut from; the
	// difference to the version at merge time is the update's staleness.
	Version int
	res     localResult

	// global is the state snapshot the dispatch trains from, captured at
	// open time. Aggregation replaces the server's state rather than
	// mutating it, so the reference stays valid (and bit-exact) for
	// lazily executed flights that outlive later commits.
	global nn.State
	// snap is global's content hash, captured with it — the artifact key
	// component for this dispatch (zero when the server is not hashing).
	snap uint64
	// downPath classifies how this dispatch's downlink artifact is served
	// (obs.Down* label; empty when the server is not hashing): the first
	// dispatch of a (snapshot, member) pays the encode, later dispatches
	// to new clients re-serve the cached bytes, and a repeat to a client
	// that already holds the artifact is a not-modified revalidation.
	downPath string
	// plan, when non-nil, is the pre-training forecast of the dispatch's
	// ledger shape (Server.Plan).
	plan *FlightPlan
	// done is closed when an async execution (or a cancellation skip)
	// finalises res; nil for synchronously executed flights.
	done      chan struct{}
	cancelled atomic.Bool
	// resolved marks res as written on the opener's own goroutine
	// (Execute, SkipFlight); async executions signal through done instead.
	resolved bool
}

// Err reports the training error of an executed flight, if any.
func (f *Flight) Err() error { return f.res.err }

// Wait joins an asynchronous execution; it returns immediately for
// synchronously executed or skip-finalised flights.
func (f *Flight) Wait() {
	if f.done != nil {
		<-f.done
	}
}

// Cancel marks a pending asynchronous execution as unwanted: if no worker
// has picked it up yet, training is skipped and the result is finalised
// from the plan (ledger-identical for every field an unaggregated outcome
// reads). A training already underway completes and is simply discarded.
func (f *Flight) Cancel() { f.cancelled.Store(true) }

// finalised reports whether res is safe to read: the flight either ran
// (or was skip-finalised) on the opener's goroutine, or its done channel
// has been closed. Observing the closed channel orders the worker's res
// writes before the caller's read; the resolved flag is only consulted
// when no async execution was started, so it never races a worker.
func (f *Flight) finalised() bool {
	if f.done != nil {
		select {
		case <-f.done:
			return true
		default:
			return false
		}
	}
	return f.resolved
}

// Dispatch returns the ledger view of a flight's outcome. The caller (or
// Record) stamps Late/Dropped according to how the flight was finalised.
// For a planned flight whose execution is still pending (a cancelled
// deadline straggler), the view derives from planResult — identical,
// field for field, to what the executed result would report for an
// outcome that discards the trained weights, with TrainSkipped false
// because whether the worker had already started is timing noise. A
// *cancelled* flight whose plan priced the uplink (estimate mode) always
// reports the plan view, even if a worker happened to finish first:
// there the executed view carries the actual encoded upload length, so
// whether the ledger showed it would otherwise depend on worker timing —
// the one field the two views do not share.
func (f *Flight) Dispatch() Dispatch {
	var res localResult
	if f.plan != nil && (!f.finalised() || (f.cancelled.Load() && f.plan.UpBytesKnown)) {
		// res must not be touched here: a cancelled worker may still be
		// writing it.
		res = f.planResult(false)
	} else {
		res = f.res
	}
	return Dispatch{Client: f.Slot.Client, Sent: f.Slot.Sent, Got: res.got,
		Failed: res.failed, Codec: res.codec, DownPath: f.downPath,
		SentBytes: res.sentBytes, GotBytes: res.gotBytes,
		GotBytesEst: res.gotBytesEst, TrainSkipped: res.skipped,
		Rejected: res.rejected}
}

// PlanSlots runs Algorithm 1's selection phase for up to k dispatches over
// the clients for which eligible returns true (nil means everyone): random
// model selection, RL client selection with shrinking candidates, and one
// training seed per slot. On an eager population it consumes the server
// rng in exactly the order the synchronous Round always has, so an
// event-driven replay of the sync policy is bit-identical; a
// CandidateSampler population draws a bounded candidate sample instead
// (still purely from the server rng, so still deterministic) because
// permuting a million-client fleet per selection is the O(N) cost this
// refactor removes. Fewer than k slots come back when fewer clients are
// eligible.
func (s *Server) PlanSlots(k int, eligible func(int) bool) []Slot {
	var candidates []int
	if cs, ok := s.pop.(CandidateSampler); ok {
		candidates = cs.SampleCandidates(s.rng, k)
	} else {
		candidates = s.rng.Perm(s.pop.Len())
	}
	if eligible != nil {
		kept := candidates[:0]
		for _, c := range candidates {
			if eligible(c) {
				kept = append(kept, c)
			}
		}
		candidates = kept
	}
	if k > len(candidates) {
		k = len(candidates)
	}
	slots := make([]Slot, 0, k)
	for i := 0; i < k; i++ {
		var sent prune.Submodel
		if s.cfg.Greedy {
			sent = s.pool.Largest()
		} else {
			sent = s.pool.Members[s.rng.Intn(len(s.pool.Members))] // RandomSel
		}
		// The tolerant variant: an availability-trace scheduler can
		// legitimately run the candidate set dry.
		c, ok := s.tables.TrySelectClient(s.rng, s.cfg.Mode, sent, s.pool, candidates)
		if !ok {
			break
		}
		// Remove c from candidates: a client trains at most one model at a
		// time.
		for j, cand := range candidates {
			if cand == c {
				candidates = append(candidates[:j], candidates[j+1:]...)
				break
			}
		}
		slots = append(slots, Slot{Sent: sent, Client: c})
	}
	for i := range slots {
		slots[i].Seed = s.rng.Int63()
	}
	return slots
}

// RoundTrainer returns the Trainer that will execute the given slots: the
// configured one if set, otherwise the in-process trainer. The in-process
// trainer serves every dispatch from the server's content-addressed
// artifact store: each distinct (snapshot, member, codec) is encoded
// exactly once — here for the planned slots, on first use for members
// dispatched later — and the warm encode survives across trainers of the
// same snapshot. The trainer captures the current snapshot (weights and
// hash), so build a fresh one after every aggregation.
func (s *Server) RoundTrainer(slots []Slot) (Trainer, error) {
	if s.cfg.Trainer != nil {
		if rs, ok := s.cfg.Trainer.(RoundStarter); ok {
			rs.RoundStart(s.version)
		}
		return s.cfg.Trainer, nil
	}
	lt := localTrainer{s: s, snap: s.snap, global: s.global}
	if s.cfg.Codec != nil {
		for _, sl := range slots {
			if _, err := lt.preFor(sl.Sent); err != nil {
				return nil, err
			}
		}
	}
	return lt, nil
}

// OpenFlight registers a dispatch in the in-flight set and anchors its
// staleness to the current global version. Flight IDs are assigned in call
// order, so open flights deterministically (single goroutine) and Execute
// them concurrently. On a pinning population the client is pinned for the
// flight's lifetime: it is materialised here, on the opener's goroutine,
// so worker-side reads never influence (or race) the population's
// eviction order.
func (s *Server) OpenFlight(sl Slot) *Flight {
	if p, ok := s.pop.(Pinner); ok {
		p.Pin(sl.Client)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	f := &Flight{ID: s.nextID, Slot: sl, Version: s.version, global: s.global, snap: s.snap}
	if s.hashOn {
		// Downlink attribution, decided where flight order is already
		// deterministic (this method runs on the opener's goroutine under
		// mu): the classification is a pure function of dispatch order, so
		// it is identical across serial/parallel execution and across the
		// in-process and HTTP transports.
		dk := downKey{client: sl.Client, member: sl.Sent.Index}
		switch {
		case s.downClients[dk]:
			f.downPath = obs.DownNotModified
		case s.downMembers[sl.Sent.Index]:
			f.downPath = obs.DownReserved
		default:
			f.downPath = obs.DownEncodedOnce
			s.downMembers[sl.Sent.Index] = true
		}
		s.downClients[dk] = true
	}
	s.inflight[f.ID] = f
	return f
}

// FlightPlan is the pre-training forecast of a dispatch's ledger shape:
// everything the cost model and the ledger can know before (or without)
// running local training. The in-process trainer resolves it from the
// device's capacity draw; networked trainers cannot (the pruning decision
// happens on the device), so planning is an in-process capability.
type FlightPlan struct {
	// Got is the pool member the device will train after on-device
	// pruning (Sent when Failed).
	Got    prune.Submodel
	Failed bool
	// SentBytes is the encoded downlink size (0 without a codec).
	SentBytes int64
	// Codec is the wire codec tag ("" without a codec).
	Codec string
	// UpBytesKnown reports that the uplink size is derivable without
	// training: true on the parameter-estimate path and in estimate mode
	// (Config.EstimateUpBytes), false with a codec pricing actual bytes
	// (the encoded upload length depends on the trained values).
	UpBytesKnown bool
	// UpBytesEst is the codec's uplink-size forecast (estimate mode; 0
	// otherwise). The scheduler prices the upload phase with it, so the
	// flight's whole timeline is knowable at launch and its training can
	// stay lazy.
	UpBytesEst int64
}

// Plan resolves a flight's on-device pruning decision ahead of training,
// consuming the device's capacity draw exactly where the eager path would
// (one draw per dispatch, in dispatch order). A planned flight's Execute
// reuses the decision instead of drawing again. Returns (nil, nil) when
// the trainer cannot preflight — custom trainers own the capacity draw.
func (s *Server) Plan(trainer Trainer, f *Flight) (*FlightPlan, error) {
	lt, ok := trainer.(localTrainer)
	if !ok {
		return nil, nil
	}
	client := s.pop.Client(f.Slot.Client)
	got, fit := s.pool.LargestFit(f.Slot.Sent, client.Device.Capacity())
	pl := &FlightPlan{Got: got, Failed: !fit, UpBytesKnown: s.cfg.Codec == nil}
	if !fit {
		pl.Got = f.Slot.Sent
	}
	if s.cfg.Codec != nil {
		pl.Codec = s.cfg.Codec.Tag()
		art, err := lt.preFor(f.Slot.Sent)
		if err != nil {
			return nil, err
		}
		pl.SentBytes = int64(len(art.Bytes))
		if s.cfg.EstimateUpBytes && !pl.Failed {
			// Forecast the uplink from the member the device will train:
			// the flight becomes fully priceable at launch, at the cost of
			// charging estimated rather than actual wire seconds (the
			// ledger keeps both sizes). Failed dispatches answer with no
			// state; the cost model already charges them the sent size.
			pl.UpBytesKnown = true
			pl.UpBytesEst = wire.EstimateSize(s.cfg.Codec, pl.Got.Size)
		}
	}
	f.plan = pl
	return pl, nil
}

// SkipFlight finalises a planned flight without training — lazy
// execution's payoff: a flight whose dropout is already sealed before the
// upload phase would discard its result unread, so no compute is spent
// producing it. Capacity failures are finalised the same way (they never
// trained) but are not counted as skips.
func (s *Server) SkipFlight(f *Flight) {
	f.res = f.planResult(true)
	f.resolved = true
}

// planResult is the plan-derived localResult an unexecuted flight
// finalises with — the single place the plan-view/res-view field equality
// lives. skipped marks deterministic plan-time skips (ledgered); racy
// cancellation skips pass false so timing never shows in the ledger.
// Capacity failures never had training to skip either way.
func (f *Flight) planResult(skipped bool) localResult {
	pl := f.plan
	return localResult{failed: pl.Failed, got: pl.Got,
		sentBytes: pl.SentBytes, gotBytesEst: pl.UpBytesEst,
		codec: pl.Codec, skipped: skipped && !pl.Failed}
}

// Execute runs the flight's local training (Steps 4-5 of Algorithm 1).
// Distinct flights may execute concurrently. A planned flight trains the
// member its plan resolved; an unplanned one defers the whole decision to
// the trainer.
func (s *Server) Execute(trainer Trainer, f *Flight) {
	if lt, ok := trainer.(localTrainer); ok && f.plan != nil {
		f.res = s.trainPlanned(lt, f)
	} else {
		f.res = s.trainSlot(trainer, f)
	}
	f.resolved = true
}

// ExecuteAsync enqueues the flight's training on the executor; Wait joins
// it. A flight cancelled before a worker picks it up skips training and
// finalises from its plan.
func (s *Server) ExecuteAsync(x *Executor, trainer Trainer, f *Flight) {
	f.done = make(chan struct{})
	x.run(func() {
		defer close(f.done)
		if f.cancelled.Load() && f.plan != nil {
			f.res = f.planResult(false)
			x.skipped.Add(1)
			return
		}
		x.executed.Add(1)
		s.Execute(trainer, f)
	})
}

// Release removes a flight from the in-flight set (its upload arrived, was
// dropped, or the run is abandoning it). The client becomes selectable
// again — and, on a pinning population, evictable again.
func (s *Server) Release(f *Flight) {
	s.mu.Lock()
	_, open := s.inflight[f.ID]
	delete(s.inflight, f.ID)
	s.mu.Unlock()
	if !open {
		return
	}
	if p, ok := s.pop.(Pinner); ok {
		p.Unpin(f.Slot.Client)
	}
}

// InFlight returns the number of open flights.
func (s *Server) InFlight() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.inflight)
}

// Version returns the number of aggregations applied to the global model.
func (s *Server) Version() int { return s.version }

// Staleness returns how many aggregations have been applied since the
// flight was dispatched.
func (s *Server) Staleness(f *Flight) int { return s.version - f.Version }

// Outcome classifies how a flight was finalised.
type Outcome int

// Flight outcomes.
const (
	// Merged: the upload arrived in time and joins the next aggregation.
	Merged Outcome = iota
	// Late: the upload arrived after its round closed; wire bytes were
	// spent but the result is discarded (communication waste).
	Late
	// Dropped: the client went offline before the upload completed;
	// nothing came back.
	Dropped
	// LateReused: the upload arrived after its round closed but is banked
	// and merged into a later aggregation under a staleness discount
	// (FedAsync-style reuse) instead of being discarded.
	LateReused
	// Rejected: the upload arrived but its payload was refused (corrupt
	// codec bytes, non-finite values, invalid weight). Derived — callers
	// never pass it to Record; Record downgrades a Merged/LateReused
	// intent itself when the payload fails validation.
	Rejected
	// Clipped: the upload merged, but its delta was norm-clipped first
	// (Config.Agg "clip"). Derived the same way as Rejected.
	Clipped
)

// Record finalises an executed flight's outcome: it applies the RL table
// update and returns the ledger entry plus the aggregation update. The
// update is non-nil only for Merged and LateReused flights that trained
// successfully; the caller applies any staleness discount to its weight
// before aggregating.
func (s *Server) Record(f *Flight, oc Outcome) (Dispatch, *agg.Update) {
	// Everything below reads the ledger view, not res directly: a
	// cancelled flight whose worker is still running must be recordable
	// without racing it (Dispatch falls back to the plan view then, which
	// carries identical values for every field these outcomes read).
	d := f.Dispatch()
	if oc == Dropped {
		// The server never saw the upload: nothing is known beyond the
		// dispatch itself. Like a capacity failure, record the smallest
		// member so the selector learns to avoid the flaky client.
		d.Dropped, d.Got, d.GotBytes = true, d.Sent, 0
		s.tables.RecordDispatch(f.Slot.Sent, s.pool.Smallest(), f.Slot.Client)
		return d, nil
	}
	if d.Failed {
		// Nothing came back; the dispatch was pure waste. Record the
		// smallest member as the observed return for the tables so the
		// selector learns to avoid this client for large models.
		s.tables.RecordDispatch(f.Slot.Sent, s.pool.Smallest(), f.Slot.Client)
		return d, nil
	}
	// Rejection: the upload arrived but its payload must not aggregate —
	// the trainer flagged a decode failure, or (for outcomes that would
	// merge) record-time validation finds non-finite values or a
	// non-positive sample weight. Like a failure, the tables record the
	// smallest member so the selector learns to avoid the client.
	rejected := d.Rejected
	if !rejected && (oc == Merged || oc == LateReused) {
		rejected = f.res.samples <= 0 || !StateFinite(f.res.state)
	}
	if rejected {
		d.Rejected = true
		if oc == Late || oc == LateReused {
			d.Late = true
		}
		s.tables.RecordDispatch(f.Slot.Sent, s.pool.Smallest(), f.Slot.Client)
		return d, nil
	}
	// The upload arrived (possibly late): the returned member is a
	// truthful capacity observation either way.
	s.tables.RecordDispatch(f.Slot.Sent, d.Got, f.Slot.Client)
	if oc == Late {
		d.Late = true
		return d, nil
	}
	if oc == LateReused {
		d.Late, d.LateReused = true, true
	}
	// Merged (and late-reused) outcomes consume the trained state: the
	// caller must have joined the execution (Wait) before recording, and
	// applies any staleness discount to the update's weight.
	state := f.res.state
	if s.clip != nil && oc == Merged {
		// Record-time norm clipping against the dispatched reference at
		// the update's own width. Fresh merges only: late-reused updates
		// are already staleness-discounted, and keeping Clipped ⊆ Merged
		// keeps the ledger census one-class-per-dispatch. An extraction
		// failure cannot happen for a pool member; staying total keeps the
		// hot path panic-free.
		if ref, err := s.pool.ExtractState(f.global, d.Got); err == nil {
			if clipped, did := s.clip.Clip(ref, state); did {
				state, d.Clipped = clipped, true
			}
		}
	}
	return d, &agg.Update{State: state, Weight: float64(f.res.samples)}
}

// SpanOutcome maps a recorded dispatch to its span outcome label. The
// precedence mirrors Record: dropped > failed > rejected > late-reused >
// late > clipped > merged — every dispatch wears exactly one label.
func SpanOutcome(oc Outcome, d Dispatch) string {
	if d.Failed || d.Dropped {
		if d.Dropped {
			return obs.OutcomeDropped
		}
		return obs.OutcomeFailed
	}
	if d.Rejected {
		return obs.OutcomeRejected
	}
	switch oc {
	case Late:
		return obs.OutcomeLate
	case LateReused:
		return obs.OutcomeLateReused
	}
	if d.Clipped {
		return obs.OutcomeClipped
	}
	return obs.OutcomeMerged
}

// FlightSpan builds the observability span for a recorded flight: the
// ledger facts plus the RL reward read back from the updated tables.
// Callers that own a virtual clock (internal/sched) fill the timing
// fields; the synchronous Round path leaves them zero. Call only with an
// enabled observer — member names and the reward read are work the
// disabled path must not do.
func (s *Server) FlightSpan(f *Flight, d Dispatch, oc Outcome) obs.Span {
	sp := obs.Span{
		Kind:         obs.KindFlight,
		Client:       d.Client,
		Flight:       f.ID,
		Ver:          f.Version,
		Sent:         d.Sent.Name(),
		Codec:        d.Codec,
		DownBytes:    d.SentBytes,
		DownPath:     d.DownPath,
		UpBytes:      d.GotBytes,
		UpBytesEst:   d.GotBytesEst,
		TrainSkipped: d.TrainSkipped,
		Outcome:      SpanOutcome(oc, d),
	}
	if !d.Failed && !d.Dropped {
		sp.Got = d.Got.Name()
		sp.Reward = s.RewardOf(d.Got, d.Client)
	}
	if oc == Merged || oc == LateReused {
		sp.Staleness = s.Staleness(f)
	}
	return sp
}

// ApplyUpdates aggregates merged updates into the global model and bumps
// the version. An empty update set is a no-op (the version does not move).
func (s *Server) ApplyUpdates(updates []agg.Update) error {
	if len(updates) == 0 {
		return nil
	}
	var next nn.State
	var err error
	if s.aggPolicy != nil {
		next, err = s.aggPolicy.Aggregate(s.global, updates)
	} else {
		next, err = agg.Aggregate(s.global, updates)
	}
	if err != nil {
		return err
	}
	s.global = next
	s.version++
	s.commitSnapshot()
	return nil
}

// SyncGlobal replaces the global model with an externally aggregated
// state and bumps the version, exactly as ApplyUpdates would. A two-tier
// topology down-syncs each edge server from the global tier's merges this
// way; in-flight dispatches keep training on their captured snapshots and
// simply read as one aggregation staler.
func (s *Server) SyncGlobal(st nn.State) {
	s.global = st
	s.version++
	s.commitSnapshot()
}

// NextRound advances and returns the round counter (ledger numbering).
func (s *Server) NextRound() int {
	s.round++
	return s.round
}

// PushStats appends a completed ledger entry. The synchronous Round does
// this itself; event-driven schedulers push one entry per aggregation.
func (s *Server) PushStats(st RoundStats) {
	s.stats = append(s.stats, st)
}

// Round executes one FL round of Algorithm 1: split (the pool is static —
// weights are sliced per dispatch), random model selection, RL client
// selection, parallel local training with on-device pruning, RL table
// updates, and heterogeneous aggregation. It is the synchronous
// composition of the reentrant steps above: plan, open, execute in
// parallel, then collect at a barrier in slot order.
func (s *Server) Round() error {
	round := s.NextRound()
	slots := s.PlanSlots(s.cfg.ClientsPerRound, nil)
	trainer, err := s.RoundTrainer(slots)
	if err != nil {
		return fmt.Errorf("core: round %d %w", round, err)
	}
	flights := make([]*Flight, len(slots))
	for i, sl := range slots {
		flights[i] = s.OpenFlight(sl)
	}
	for _, f := range flights {
		s.ExecuteAsync(s.exec, trainer, f)
	}

	// Collect — RL table updates, ledger, aggregation, in slot order. On a
	// training error, keep draining: every flight must still be joined and
	// released so no execution outlives Round (a leftover worker would race
	// the next round's capacity draws) and the in-flight set empties.
	stats := RoundStats{Round: round}
	var updates []agg.Update
	var firstErr error
	for _, f := range flights {
		f.Wait()
		s.Release(f)
		if firstErr != nil {
			continue
		}
		if err := f.Err(); err != nil {
			firstErr = fmt.Errorf("core: round %d client %d: %w", round, f.Slot.Client, err)
			continue
		}
		d, u := s.Record(f, Merged)
		stats.Add(d)
		if u != nil {
			updates = append(updates, *u)
		}
		if s.cfg.Observer.Enabled() {
			s.cfg.Observer.Span(s.FlightSpan(f, d, Merged))
		}
	}
	if firstErr != nil {
		return firstErr
	}
	s.stats = append(s.stats, stats)
	if err := s.ApplyUpdates(updates); err != nil {
		return fmt.Errorf("core: round %d aggregate: %w", round, err)
	}
	if s.cfg.Observer.Enabled() {
		sp := obs.Span{Kind: obs.KindCommit, Client: -1, Round: round, Merged: len(updates)}
		for _, d := range stats.Dispatches {
			if d.Failed || d.Dropped {
				sp.Failed++
				continue
			}
			if d.Rejected {
				sp.Rejected++
				continue
			}
			if d.Clipped {
				sp.Clipped++
			}
		}
		s.cfg.Observer.Span(sp)
	}
	return nil
}

// preDecodedTrainer is an optional Trainer capability: a trainer that
// already holds the dispatch state for a pool member reports it here so
// the server skips an extraction the trainer would discard unread.
// Wrapping trainers should forward this method to preserve the skip.
type preDecodedTrainer interface {
	PreDecodedFor(memberIndex int) bool
}

// FlightTrainer is an optional Trainer capability: a trainer that can
// carry the flight ID alongside a dispatch implements it to correlate its
// own transport-level records (e.g. fednet's Fednet-Flight header and
// wall-clock logs) with the deterministic flight span. The ID is
// observability metadata only — TrainFlight must behave exactly like
// TrainDispatch for the same arguments.
type FlightTrainer interface {
	TrainFlight(flightID int64, clientID int, sent prune.Submodel, sentState nn.State, seed int64) (TrainResult, error)
}

// ArtifactTrainer is an optional Trainer capability: a trainer that
// content-addresses its dispatches (fednet's encode-once downlink with
// ETag revalidation) receives the flight's snapshot hash alongside the
// flight ID, so its artifact keys agree with the server's dispatch
// attribution. The hash is a cache key, never an input to training —
// TrainArtifact must behave exactly like TrainDispatch for the same
// dispatch arguments.
type ArtifactTrainer interface {
	TrainArtifact(flightID int64, clientID int, sent prune.Submodel, sentState nn.State, snap uint64, seed int64) (TrainResult, error)
}

// trainSlot performs Step 4/5 for one dispatch, delegating to the given
// Trainer (built once per round). The dispatch state comes from the
// flight's captured snapshot, so lazily executed flights train on the
// weights they were cut from even if later aggregations have moved the
// server's state on.
func (s *Server) trainSlot(trainer Trainer, f *Flight) localResult {
	clientID, sent, seed := f.Slot.Client, f.Slot.Sent, f.Slot.Seed
	var st nn.State
	if pd, ok := trainer.(preDecodedTrainer); !ok || !pd.PreDecodedFor(sent.Index) {
		var err error
		if st, err = s.pool.ExtractState(f.global, sent); err != nil {
			return localResult{err: err}
		}
	}
	var res TrainResult
	var err error
	switch tr := trainer.(type) {
	case ArtifactTrainer:
		res, err = tr.TrainArtifact(f.ID, clientID, sent, st, f.snap, seed)
	case FlightTrainer:
		res, err = tr.TrainFlight(f.ID, clientID, sent, st, seed)
	default:
		res, err = trainer.TrainDispatch(clientID, sent, st, seed)
	}
	if err != nil {
		return localResult{err: err}
	}
	if res.Failed {
		return localResult{failed: true, got: sent, sentBytes: res.SentBytes, codec: res.CodecTag}
	}
	return localResult{state: res.State, samples: res.Samples, got: res.Got,
		sentBytes: res.SentBytes, gotBytes: res.GotBytes, codec: res.CodecTag,
		rejected: res.Rejected}
}

// trainPlanned executes a planned flight: the capacity draw already
// happened at Plan time, so training goes straight to the resolved member.
func (s *Server) trainPlanned(lt localTrainer, f *Flight) localResult {
	pl := f.plan
	if pl.Failed {
		return localResult{failed: true, got: f.Slot.Sent, sentBytes: pl.SentBytes, codec: pl.Codec}
	}
	var sentState nn.State
	if s.cfg.Codec != nil {
		art, err := lt.preFor(f.Slot.Sent)
		if err != nil {
			return localResult{err: err}
		}
		sentState = art.State
	} else {
		var err error
		if sentState, err = s.pool.ExtractState(f.global, f.Slot.Sent); err != nil {
			return localResult{err: err}
		}
	}
	state, gotBytes, samples, rejected, err := lt.trainGot(f.Slot.Client, pl.Got, sentState, f.Slot.Seed)
	if err != nil {
		return localResult{err: err}
	}
	return localResult{state: state, samples: samples, got: pl.Got,
		sentBytes: pl.SentBytes, gotBytes: gotBytes, gotBytesEst: pl.UpBytesEst,
		codec: pl.Codec, rejected: rejected}
}

// localTrainer is the default in-process Trainer: it reads the client's
// device capacity, prunes to the largest derivable pool member, and trains
// on the client's local shard.
type localTrainer struct {
	s *Server
	// snap / global are the snapshot the trainer dispatches from, captured
	// at build time: the hash keys the artifact store, the weights feed the
	// extraction on a store miss. RoundTrainer's contract is a fresh
	// trainer per aggregation, so both stay consistent for its lifetime.
	snap   uint64
	global nn.State
}

// PreDecodedFor implements preDecodedTrainer: with a codec configured the
// trainer always sources the dispatch state from the artifact store (it
// can re-extract from its captured snapshot on a miss, even after an LRU
// eviction), so a server-side extraction would be discarded unread.
func (lt localTrainer) PreDecodedFor(memberIndex int) bool {
	return lt.s.cfg.Codec != nil
}

// preFor returns the dispatch artifact for a pool member from the
// server's content-addressed store, extracting and encoding exactly once
// per (snapshot, member, codec) across all trainers and dispatch workers.
// Only valid with a codec configured.
func (lt localTrainer) preFor(sub prune.Submodel) (*wire.Artifact, error) {
	c := lt.s.cfg.Codec
	key := wire.ArtifactKey{Snapshot: lt.snap, Member: sub.Index, Codec: c.Tag()}
	art, err := lt.s.artifacts.Get(key, c, func() (nn.State, error) {
		return lt.s.pool.ExtractState(lt.global, sub)
	})
	if err != nil {
		return nil, fmt.Errorf("dispatch %s: %w", sub.Name(), err)
	}
	return art, nil
}

// applyBehavior transforms a client's trained state according to its
// adversarial behavior. Corrupt is handled at the wire layer (trainGot),
// not here. The stale-replay cache is keyed per client under advMu; a
// client trains at most one flight at a time, so the cache order — and
// with it the replayed state — is deterministic.
func (s *Server) applyBehavior(clientID int, b Behavior, trained, sent nn.State) nn.State {
	if b == StaleReplay {
		s.advMu.Lock()
		prev := s.advPrev[clientID]
		s.advPrev[clientID] = trained.Clone()
		s.advMu.Unlock()
		if prev != nil {
			return prev
		}
		return trained
	}
	return s.cfg.Adversary.Mutate(b, trained, sent)
}

// trainGot runs local training of the resolved pool member and, with a
// codec configured, round-trips the upload through the wire encoding.
// Adversarial behaviors inject here — after training, before the wire —
// exactly where a compromised device would tamper. The fourth return
// reports a rejected upload: the payload arrived (bytes counted) but
// failed to decode, so the server must ledger a rejection rather than
// fail the flight.
func (lt localTrainer) trainGot(clientID int, got prune.Submodel, sentState nn.State, seed int64) (nn.State, int64, int, bool, error) {
	client := lt.s.pop.Client(clientID)
	rng := rand.New(rand.NewSource(seed))
	trained, err := TrainLocal(lt.s.cfg.Model, got.Widths, sentState, client.Data, lt.s.cfg.Train, rng)
	if err != nil {
		return nil, 0, 0, false, err
	}
	behavior := lt.s.cfg.Adversary.BehaviorOf(clientID)
	trained = lt.s.applyBehavior(clientID, behavior, trained, sentState)
	var gotBytes int64
	if c := lt.s.cfg.Codec; c != nil {
		// The uplink reference is the decoded dispatched state — the same
		// tensor a device agent would diff against.
		enc, err := c.Encode(trained, sentState)
		if err != nil {
			return nil, 0, 0, false, err
		}
		if behavior == Corrupt {
			lt.s.cfg.Adversary.CorruptPayload(clientID, enc)
		}
		gotBytes = int64(len(enc))
		if trained, err = c.Decode(enc, sentState); err != nil {
			// A garbage payload still crossed the uplink: the bytes are
			// real, the update is not. Graceful rejection, not a run error.
			return nil, gotBytes, client.Data.Len(), true, nil
		}
	} else if behavior == Corrupt {
		// No wire encoding to flip bits in — poison the raw state instead;
		// the record-time finiteness guard turns it into the same rejection.
		trained = poisonState(trained)
	}
	return trained, gotBytes, client.Data.Len(), false, nil
}

// TrainDispatch implements Trainer. With a codec configured, the dispatch
// and upload both round-trip through the wire encoding so the in-process
// run trains on — and aggregates — exactly what a networked device would
// see, and the ledger carries the real encoded sizes. The dispatch side
// comes from the artifact store (sentState is ignored then — the server
// skips the extraction via PreDecodedFor), so slots sharing a member
// share one encode.
func (lt localTrainer) TrainDispatch(clientID int, sent prune.Submodel, sentState nn.State, seed int64) (TrainResult, error) {
	var sentBytes int64
	var tag string
	if c := lt.s.cfg.Codec; c != nil {
		art, err := lt.preFor(sent)
		if err != nil {
			return TrainResult{}, err
		}
		sentBytes, sentState = int64(len(art.Bytes)), art.State
		tag = c.Tag()
	}
	client := lt.s.pop.Client(clientID)
	capacity := client.Device.Capacity()
	got, ok := lt.s.pool.LargestFit(sent, capacity)
	if !ok {
		return TrainResult{Failed: true, SentBytes: sentBytes, CodecTag: tag}, nil
	}
	state, gotBytes, samples, rejected, err := lt.trainGot(clientID, got, sentState, seed)
	if err != nil {
		return TrainResult{}, err
	}
	return TrainResult{State: state, Samples: samples, Got: got,
		SentBytes: sentBytes, GotBytes: gotBytes, CodecTag: tag, Rejected: rejected}, nil
}

// Run executes rounds and invokes cb (if non-nil) after each; cb returning
// false stops early.
func (s *Server) Run(rounds int, cb func(round int) bool) error {
	for r := 0; r < rounds; r++ {
		if err := s.Round(); err != nil {
			return err
		}
		if cb != nil && !cb(s.round) {
			return nil
		}
	}
	return nil
}

// TotalWireBytes sums the encoded payload sizes across the recorded
// rounds. Both totals are zero when no wire codec was in play.
func TotalWireBytes(stats []RoundStats) (sent, returned int64) {
	for _, st := range stats {
		sent += st.SentBytes
		returned += st.ReturnedBytes
	}
	return sent, returned
}

// CommWasteRate computes the paper's communication-waste metric over all
// recorded rounds: 1 − Σ size(returned) / Σ size(sent).
func CommWasteRate(stats []RoundStats) float64 {
	var sent, back int64
	for _, st := range stats {
		sent += st.SentParams
		back += st.ReturnedParams
	}
	if sent == 0 {
		return 0
	}
	return 1 - float64(back)/float64(sent)
}
