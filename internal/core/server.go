package core

import (
	"fmt"
	"math/rand"
	"sync"

	"adaptivefl/internal/agg"
	"adaptivefl/internal/models"
	"adaptivefl/internal/nn"
	"adaptivefl/internal/prune"
	"adaptivefl/internal/rl"
	"adaptivefl/internal/wire"
)

// Config assembles an AdaptiveFL experiment.
type Config struct {
	Model models.Config
	Pool  prune.Config
	RL    rl.Config
	// Mode is the client-selection strategy (RL-CS by default; RL-C, RL-S
	// and Random are the paper's Figure 5 ablations).
	Mode rl.Mode
	// Greedy dispatches the unpruned L_1 to every slot instead of random
	// pool members (the "AdaptiveFL+Greedy" ablation).
	Greedy bool
	// ClientsPerRound is K, the number of dispatches per round.
	ClientsPerRound int
	Train           TrainConfig
	Seed            int64
	// Parallelism bounds concurrent local trainers (Algorithm 1's
	// parallel for). 0 means K.
	Parallelism int
	// Trainer overrides how dispatches are executed. Nil uses in-process
	// training on the client's dataset; internal/fednet provides an
	// HTTP-backed implementation for networked device agents.
	Trainer Trainer
	// Codec, when set, routes the in-process training path through the
	// wire encoding both ways — dispatches train on the decoded (possibly
	// lossy) weights and uploads are re-decoded before aggregation — so a
	// simulation measures exactly the model quality a networked
	// deployment with that codec would see, and the round ledger carries
	// real encoded byte counts. Nil keeps the exact float64 path.
	Codec wire.Codec
}

// TrainResult is the outcome of one dispatch: the trained submodel state,
// the sample count used as the aggregation weight, which pool member the
// device actually trained (after on-device pruning), and whether the
// device failed to fit any derivable member.
type TrainResult struct {
	State   nn.State
	Samples int
	Got     prune.Submodel
	Failed  bool
	// SentBytes / GotBytes are the encoded payload sizes that crossed the
	// wire (0 when the trainer moved raw in-memory states).
	SentBytes, GotBytes int64
}

// Trainer executes Steps 4-5 of Algorithm 1 for one dispatch: on-device
// resource-aware pruning of the received submodel followed by local
// training. sentState is the dispatched weight slice.
type Trainer interface {
	TrainDispatch(clientID int, sent prune.Submodel, sentState nn.State, seed int64) (TrainResult, error)
}

// Dispatch records one slot of one round, for communication accounting.
type Dispatch struct {
	Client    int
	Sent, Got prune.Submodel
	Failed    bool // device could not fit any derivable pool member
	// SentBytes / GotBytes are real encoded payload sizes when the round
	// moved models through a wire codec (0 otherwise). testbed.Sim
	// prefers these over parameter-count estimates.
	SentBytes, GotBytes int64
}

// RoundStats aggregates one round's communication ledger.
type RoundStats struct {
	Round      int
	Dispatches []Dispatch
	// SentParams / ReturnedParams sum trainable parameter counts of the
	// dispatched and returned models (the unit behind the paper's
	// communication-waste rate).
	SentParams, ReturnedParams int64
	// SentBytes / ReturnedBytes sum the encoded payload sizes (0 when no
	// codec was in play).
	SentBytes, ReturnedBytes int64
}

// Server is the AdaptiveFL cloud server.
type Server struct {
	cfg     Config
	pool    *prune.Pool
	tables  *rl.Tables
	clients []*Client
	global  nn.State
	rng     *rand.Rand
	round   int
	stats   []RoundStats
}

// NewServer validates the configuration, builds the model pool, the RL
// tables and the initial full-width global model.
func NewServer(cfg Config, clients []*Client) (*Server, error) {
	if len(clients) == 0 {
		return nil, fmt.Errorf("core: no clients")
	}
	if cfg.ClientsPerRound < 1 {
		return nil, fmt.Errorf("core: ClientsPerRound must be >= 1")
	}
	if cfg.ClientsPerRound > len(clients) {
		return nil, fmt.Errorf("core: ClientsPerRound %d exceeds population %d", cfg.ClientsPerRound, len(clients))
	}
	if err := cfg.Train.validate(); err != nil {
		return nil, err
	}
	pool, err := prune.BuildPool(cfg.Model, cfg.Pool)
	if err != nil {
		return nil, err
	}
	full, err := models.Build(cfg.Model, nil)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:     cfg,
		pool:    pool,
		tables:  rl.NewTables(cfg.RL, pool.P, len(pool.Members), len(clients)),
		clients: clients,
		global:  nn.StateDict(full),
		rng:     rand.New(rand.NewSource(cfg.Seed)),
	}
	return s, nil
}

// Pool exposes the model pool (read-only use intended).
func (s *Server) Pool() *prune.Pool { return s.pool }

// Tables exposes the RL tables (read-only use intended).
func (s *Server) Tables() *rl.Tables { return s.tables }

// Global returns the current global state dict (not a copy).
func (s *Server) Global() nn.State { return s.global }

// Stats returns the per-round communication ledger.
func (s *Server) Stats() []RoundStats { return s.stats }

// GlobalModel materialises the current global model at full width.
func (s *Server) GlobalModel() (*models.Model, error) {
	m, err := models.Build(s.cfg.Model, nil)
	if err != nil {
		return nil, err
	}
	if err := nn.LoadState(m, s.global); err != nil {
		return nil, err
	}
	return m, nil
}

// SubmodelByName materialises the pool member with the given paper name
// (e.g. "M1") from the current global weights.
func (s *Server) SubmodelByName(name string) (*models.Model, error) {
	for _, mem := range s.pool.Members {
		if mem.Name() == name {
			st, err := s.pool.ExtractState(s.global, mem)
			if err != nil {
				return nil, err
			}
			m, err := models.Build(s.cfg.Model, mem.Widths)
			if err != nil {
				return nil, err
			}
			if err := nn.LoadState(m, st); err != nil {
				return nil, err
			}
			return m, nil
		}
	}
	return nil, fmt.Errorf("core: no pool member %q", name)
}

// localResult carries one slot's training outcome back to the server.
type localResult struct {
	slot      int
	state     nn.State
	samples   int
	got       prune.Submodel
	failed    bool
	sentBytes int64
	gotBytes  int64
	err       error
}

// Round executes one FL round of Algorithm 1: split (the pool is static —
// weights are sliced per dispatch), random model selection, RL client
// selection, parallel local training with on-device pruning, RL table
// updates, and heterogeneous aggregation.
func (s *Server) Round() error {
	s.round++
	k := s.cfg.ClientsPerRound
	stats := RoundStats{Round: s.round}

	// Phase 1 — model and client selection (sequential; candidates shrink
	// so a client trains at most one model per round).
	type slot struct {
		sent   prune.Submodel
		client int
	}
	slots := make([]slot, k)
	candidates := s.rng.Perm(len(s.clients))
	for i := 0; i < k; i++ {
		var sent prune.Submodel
		if s.cfg.Greedy {
			sent = s.pool.Largest()
		} else {
			sent = s.pool.Members[s.rng.Intn(len(s.pool.Members))] // RandomSel
		}
		c := s.tables.SelectClient(s.rng, s.cfg.Mode, sent, s.pool, candidates)
		// Remove c from candidates.
		for j, cand := range candidates {
			if cand == c {
				candidates = append(candidates[:j], candidates[j+1:]...)
				break
			}
		}
		slots[i] = slot{sent: sent, client: c}
	}

	// Phase 2 — parallel local training. The in-process trainer encodes
	// each distinct dispatched pool member once per round up front:
	// stateless codecs are deterministic, so the K slots sharing a member
	// would otherwise repeat an identical full-model encode+decode each.
	trainer := s.cfg.Trainer
	if trainer == nil {
		lt := localTrainer{s: s}
		if s.cfg.Codec != nil {
			lt.pre = make(map[int]preDispatch)
			for _, sl := range slots {
				if _, ok := lt.pre[sl.sent.Index]; ok {
					continue
				}
				st, err := s.pool.ExtractState(s.global, sl.sent)
				if err != nil {
					return fmt.Errorf("core: round %d extract %s: %w", s.round, sl.sent.Name(), err)
				}
				enc, err := s.cfg.Codec.Encode(st, nil)
				if err != nil {
					return fmt.Errorf("core: round %d encode %s: %w", s.round, sl.sent.Name(), err)
				}
				dec, err := s.cfg.Codec.Decode(enc, nil)
				if err != nil {
					return fmt.Errorf("core: round %d decode %s: %w", s.round, sl.sent.Name(), err)
				}
				lt.pre[sl.sent.Index] = preDispatch{bytes: int64(len(enc)), state: dec}
			}
		}
		trainer = lt
	}
	par := s.cfg.Parallelism
	if par <= 0 || par > k {
		par = k
	}
	results := make([]localResult, k)
	sem := make(chan struct{}, par)
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		seed := s.rng.Int63()
		go func(i int, seed int64) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i] = s.trainSlot(trainer, slots[i].client, slots[i].sent, seed)
			results[i].slot = i
		}(i, seed)
	}
	wg.Wait()

	// Phase 3 — RL table updates, ledger, aggregation.
	var updates []agg.Update
	for i, res := range results {
		if res.err != nil {
			return fmt.Errorf("core: round %d client %d: %w", s.round, slots[i].client, res.err)
		}
		d := Dispatch{Client: slots[i].client, Sent: slots[i].sent, Got: res.got, Failed: res.failed,
			SentBytes: res.sentBytes, GotBytes: res.gotBytes}
		stats.Dispatches = append(stats.Dispatches, d)
		stats.SentParams += slots[i].sent.Size
		stats.SentBytes += res.sentBytes
		if res.failed {
			// Nothing came back; the dispatch was pure waste. Record the
			// smallest member as the observed return for the tables so
			// the selector learns to avoid this client for large models.
			s.tables.RecordDispatch(slots[i].sent, s.pool.Smallest(), slots[i].client)
			continue
		}
		stats.ReturnedParams += res.got.Size
		stats.ReturnedBytes += res.gotBytes
		s.tables.RecordDispatch(slots[i].sent, res.got, slots[i].client)
		updates = append(updates, agg.Update{State: res.state, Weight: float64(res.samples)})
	}
	s.stats = append(s.stats, stats)
	if len(updates) > 0 {
		next, err := agg.Aggregate(s.global, updates)
		if err != nil {
			return fmt.Errorf("core: round %d aggregate: %w", s.round, err)
		}
		s.global = next
	}
	return nil
}

// preDecodedTrainer is an optional Trainer capability: a trainer that
// already holds the dispatch state for a pool member reports it here so
// the server skips an extraction the trainer would discard unread.
// Wrapping trainers should forward this method to preserve the skip.
type preDecodedTrainer interface {
	PreDecodedFor(memberIndex int) bool
}

// trainSlot performs Step 4/5 for one dispatch, delegating to the given
// Trainer (built once per round).
func (s *Server) trainSlot(trainer Trainer, clientID int, sent prune.Submodel, seed int64) localResult {
	var st nn.State
	if pd, ok := trainer.(preDecodedTrainer); !ok || !pd.PreDecodedFor(sent.Index) {
		var err error
		if st, err = s.pool.ExtractState(s.global, sent); err != nil {
			return localResult{err: err}
		}
	}
	res, err := trainer.TrainDispatch(clientID, sent, st, seed)
	if err != nil {
		return localResult{err: err}
	}
	if res.Failed {
		return localResult{failed: true, got: sent, sentBytes: res.SentBytes}
	}
	return localResult{state: res.State, samples: res.Samples, got: res.Got,
		sentBytes: res.SentBytes, gotBytes: res.GotBytes}
}

// preDispatch is one pre-encoded dispatch: the wire size and the decoded
// (possibly lossy) state the device-side training sees. The state is
// shared read-only across the round's slots.
type preDispatch struct {
	bytes int64
	state nn.State
}

// localTrainer is the default in-process Trainer: it reads the client's
// device capacity, prunes to the largest derivable pool member, and trains
// on the client's local shard.
type localTrainer struct {
	s *Server
	// pre caches the codec round-trip of each dispatched pool member for
	// one round, keyed by member index (nil when no codec is configured).
	pre map[int]preDispatch
}

// PreDecodedFor implements preDecodedTrainer.
func (lt localTrainer) PreDecodedFor(memberIndex int) bool {
	_, ok := lt.pre[memberIndex]
	return ok
}

// TrainDispatch implements Trainer. With a codec configured, the dispatch
// and upload both round-trip through the wire encoding so the in-process
// run trains on — and aggregates — exactly what a networked device would
// see, and the ledger carries the real encoded sizes.
func (lt localTrainer) TrainDispatch(clientID int, sent prune.Submodel, sentState nn.State, seed int64) (TrainResult, error) {
	var sentBytes int64
	if c := lt.s.cfg.Codec; c != nil {
		if d, ok := lt.pre[sent.Index]; ok {
			sentBytes, sentState = d.bytes, d.state
		} else {
			// Fallback for direct calls outside Round's precompute.
			enc, err := c.Encode(sentState, nil)
			if err != nil {
				return TrainResult{}, err
			}
			sentBytes = int64(len(enc))
			if sentState, err = c.Decode(enc, nil); err != nil {
				return TrainResult{}, err
			}
		}
	}
	client := lt.s.clients[clientID]
	capacity := client.Device.Capacity()
	got, ok := lt.s.pool.LargestFit(sent, capacity)
	if !ok {
		return TrainResult{Failed: true, SentBytes: sentBytes}, nil
	}
	rng := rand.New(rand.NewSource(seed))
	trained, err := TrainLocal(lt.s.cfg.Model, got.Widths, sentState, client.Data, lt.s.cfg.Train, rng)
	if err != nil {
		return TrainResult{}, err
	}
	res := TrainResult{State: trained, Samples: client.Data.Len(), Got: got, SentBytes: sentBytes}
	if c := lt.s.cfg.Codec; c != nil {
		// The uplink reference is the decoded dispatched state — the same
		// tensor a device agent would diff against.
		enc, err := c.Encode(trained, sentState)
		if err != nil {
			return TrainResult{}, err
		}
		res.GotBytes = int64(len(enc))
		if res.State, err = c.Decode(enc, sentState); err != nil {
			return TrainResult{}, err
		}
	}
	return res, nil
}

// Run executes rounds and invokes cb (if non-nil) after each; cb returning
// false stops early.
func (s *Server) Run(rounds int, cb func(round int) bool) error {
	for r := 0; r < rounds; r++ {
		if err := s.Round(); err != nil {
			return err
		}
		if cb != nil && !cb(s.round) {
			return nil
		}
	}
	return nil
}

// TotalWireBytes sums the encoded payload sizes across the recorded
// rounds. Both totals are zero when no wire codec was in play.
func TotalWireBytes(stats []RoundStats) (sent, returned int64) {
	for _, st := range stats {
		sent += st.SentBytes
		returned += st.ReturnedBytes
	}
	return sent, returned
}

// CommWasteRate computes the paper's communication-waste metric over all
// recorded rounds: 1 − Σ size(returned) / Σ size(sent).
func CommWasteRate(stats []RoundStats) float64 {
	var sent, back int64
	for _, st := range stats {
		sent += st.SentParams
		back += st.ReturnedParams
	}
	if sent == 0 {
		return 0
	}
	return 1 - float64(back)/float64(sent)
}
