package core

import (
	"math"
	"math/bits"
	"testing"

	"adaptivefl/internal/nn"
	"adaptivefl/internal/prune"
	"adaptivefl/internal/tensor"
	"adaptivefl/internal/wire"
)

// stateOf builds a single-tensor 1-D state for transform tests.
func stateOf(t *testing.T, vals []float64) nn.State {
	t.Helper()
	return nn.State{"w": tensor.FromSlice(vals, len(vals))}
}

// mergedCount tallies the round's aggregated dispatches from the ledger.
func mergedCount(st RoundStats) int {
	n := 0
	for _, d := range st.Dispatches {
		if !d.Failed && !d.Dropped && !d.Rejected && (!d.Late || d.LateReused) {
			n++
		}
	}
	return n
}

func TestParseAdversaryGrammar(t *testing.T) {
	cases := []struct {
		spec string
		want AdversarySpec
	}{
		{"", AdversarySpec{}},
		{"signflip", AdversarySpec{Frac: 0.2, Weights: [numBehaviors]float64{1, 0, 0, 0, 0}, K: 10}},
		{"signflip:frac=0.5", AdversarySpec{Frac: 0.5, Weights: [numBehaviors]float64{1, 0, 0, 0, 0}, K: 10}},
		{"scale:frac=0.3,k=5", AdversarySpec{Frac: 0.3, Weights: [numBehaviors]float64{0, 1, 0, 0, 0}, K: 5}},
		{"freeride", AdversarySpec{Frac: 0.2, Weights: [numBehaviors]float64{0, 0, 1, 0, 0}, K: 10}},
		{"stale-replay:frac=1", AdversarySpec{Frac: 1, Weights: [numBehaviors]float64{0, 0, 0, 1, 0}, K: 10}},
		{"corrupt", AdversarySpec{Frac: 0.2, Weights: [numBehaviors]float64{0, 0, 0, 0, 1}, K: 10}},
		{"mix", AdversarySpec{Frac: 0.2, Weights: [numBehaviors]float64{1, 1, 0, 0, 0}, K: 10}},
		{"mix:frac=0.4,signflip=2,corrupt=1",
			AdversarySpec{Frac: 0.4, Weights: [numBehaviors]float64{2, 0, 0, 0, 1}, K: 10}},
	}
	for _, tc := range cases {
		got, err := ParseAdversary(tc.spec)
		if err != nil {
			t.Fatalf("ParseAdversary(%q): %v", tc.spec, err)
		}
		if got != tc.want {
			t.Fatalf("ParseAdversary(%q) = %+v, want %+v", tc.spec, got, tc.want)
		}
	}
}

func TestParseAdversaryErrors(t *testing.T) {
	for _, spec := range []string{
		"bogus",
		"signflip:frac=2",    // frac > 1
		"signflip:frac=-0.1", // negative
		"signflip:scale=1",   // behavior weight outside mix
		"signflip:frac",      // not key=value
		"signflip:frac=x",    // not a float
		"scale:k=0.5",        // k < 1
		"mix:zap=1",          // unknown param
	} {
		if _, err := ParseAdversary(spec); err == nil {
			t.Fatalf("ParseAdversary(%q) accepted", spec)
		}
	}
}

func TestAdversarySpecRoundTrip(t *testing.T) {
	for _, spec := range []string{
		"", "signflip", "scale:frac=0.3,k=5", "freeride:frac=0.1",
		"stale-replay", "corrupt:frac=0.25", "mix",
		"mix:frac=0.4,signflip=2,corrupt=1,k=3",
	} {
		a, err := ParseAdversary(spec)
		if err != nil {
			t.Fatal(err)
		}
		back, err := ParseAdversary(a.String())
		if err != nil {
			t.Fatalf("reparse %q -> %q: %v", spec, a.String(), err)
		}
		if back != a {
			t.Fatalf("round trip %q -> %q: %+v vs %+v", spec, a.String(), back, a)
		}
	}
}

func TestCutAdversary(t *testing.T) {
	rest, a, err := CutAdversary("poisson:rate=0.1 ; signflip:frac=0.3")
	if err != nil {
		t.Fatal(err)
	}
	if rest != "poisson:rate=0.1" {
		t.Fatalf("trace part = %q", rest)
	}
	if a.Frac != 0.3 || a.Weights[SignFlip-1] != 1 {
		t.Fatalf("adversary part = %+v", a)
	}
	rest, a, err = CutAdversary("flaky:p=0.2")
	if err != nil || rest != "flaky:p=0.2" || a.Enabled() {
		t.Fatalf("spec without ';' changed: %q %+v %v", rest, a, err)
	}
	if _, _, err := CutAdversary("trace;bogus"); err == nil {
		t.Fatal("bad adversary part accepted")
	}
}

func TestBehaviorOfDeterministicFraction(t *testing.T) {
	a, err := ParseAdversary("mix:frac=0.3,signflip=1,corrupt=3")
	if err != nil {
		t.Fatal(err)
	}
	a.Seed = 42
	const n = 4000
	counts := map[Behavior]int{}
	for c := 0; c < n; c++ {
		b := a.BehaviorOf(c)
		counts[b]++
		if b != a.BehaviorOf(c) {
			t.Fatalf("client %d behavior not stable", c)
		}
		if b != Honest && b != SignFlip && b != Corrupt {
			t.Fatalf("client %d drew %v, outside the mix", c, b)
		}
	}
	adv := n - counts[Honest]
	if frac := float64(adv) / n; math.Abs(frac-0.3) > 0.03 {
		t.Fatalf("realised adversarial fraction %v, want ~0.3", frac)
	}
	// Weight 1:3 between signflip and corrupt.
	if r := float64(counts[Corrupt]) / float64(counts[SignFlip]); r < 2 || r > 4.5 {
		t.Fatalf("corrupt:signflip ratio %v, want ~3", r)
	}
	// A different seed must redraw the attacker set.
	b := a
	b.Seed = 43
	same := true
	for c := 0; c < 100; c++ {
		if a.BehaviorOf(c) != b.BehaviorOf(c) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 drew identical behavior for 100 clients")
	}
	// Boundary fractions.
	off := AdversarySpec{}
	one, _ := ParseAdversary("freeride:frac=1")
	for c := 0; c < 100; c++ {
		if off.BehaviorOf(c) != Honest {
			t.Fatal("zero spec drew an adversary")
		}
		if one.BehaviorOf(c) != FreeRide {
			t.Fatal("frac=1 spec drew an honest client")
		}
	}
}

func TestCorruptPayloadDeterministic(t *testing.T) {
	a := AdversarySpec{Frac: 1, Seed: 7}
	orig := make([]byte, 257)
	for i := range orig {
		orig[i] = byte(i)
	}
	flip := func(c int) []byte {
		p := append([]byte(nil), orig...)
		a.CorruptPayload(c, p)
		return p
	}
	p1, p2 := flip(3), flip(3)
	if string(p1) != string(p2) {
		t.Fatal("same (seed, client) corrupted differently")
	}
	changed := 0
	for i := range orig {
		changed += bits.OnesCount8(p1[i] ^ orig[i])
	}
	if changed == 0 || changed > 8 {
		t.Fatalf("corruption flipped %d bits, want 1..8", changed)
	}
	if string(flip(4)) == string(p1) {
		t.Fatal("distinct clients corrupted identically")
	}
	a.CorruptPayload(3, nil) // must not panic
}

func TestMutateBehaviors(t *testing.T) {
	sent := stateOf(t, []float64{1, 1, 1, 1})
	trained := stateOf(t, []float64{2, 3, 1, 0})
	a := AdversarySpec{K: 10}
	check := func(b Behavior, want []float64) {
		t.Helper()
		out := a.Mutate(b, trained, sent)
		for i, x := range out["w"].Data {
			if x != want[i] {
				t.Fatalf("%v: got %v, want %v", b, out["w"].Data, want)
			}
		}
	}
	check(SignFlip, []float64{0, -1, 1, 2})      // ref − delta
	check(ScaleAttack, []float64{11, 21, 1, -9}) // ref + 10·delta
	check(FreeRide, []float64{1, 1, 1, 1})       // ref untouched
	// Honest and the stateful behaviors pass through unchanged.
	for _, b := range []Behavior{Honest, StaleReplay, Corrupt} {
		out := a.Mutate(b, trained, sent)
		for i, x := range out["w"].Data {
			if x != trained["w"].Data[i] {
				t.Fatalf("%v mutated the trained state", b)
			}
		}
	}
	if trained["w"].Data[0] != 2 {
		t.Fatal("Mutate modified its input")
	}
}

func TestPoisonStateRejectedByGuard(t *testing.T) {
	st := stateOf(t, []float64{1, 2, 3})
	if !StateFinite(st) {
		t.Fatal("clean state flagged non-finite")
	}
	poisoned := PoisonState(st)
	if StateFinite(poisoned) {
		t.Fatal("poisoned state passed the finiteness guard")
	}
	if !StateFinite(st) {
		t.Fatal("PoisonState mutated its input")
	}
	if StateFinite(stateOf(t, []float64{1, math.Inf(-1)})) {
		t.Fatal("Inf passed the finiteness guard")
	}
}

func TestParsePopulationAdversary(t *testing.T) {
	s, err := ParsePopulation("mix:n=100,adv=scale,advfrac=0.25,advk=4")
	if err != nil {
		t.Fatal(err)
	}
	want := AdversarySpec{Frac: 0.25, Weights: [numBehaviors]float64{0, 1, 0, 0, 0}, K: 4}
	if s.Adversary != want {
		t.Fatalf("population adversary = %+v, want %+v", s.Adversary, want)
	}
	back, err := ParsePopulation(s.String())
	if err != nil {
		t.Fatalf("reparse %q: %v", s.String(), err)
	}
	if back.Adversary != want {
		t.Fatalf("round trip lost the adversary: %+v", back.Adversary)
	}
	if s, err = ParsePopulation("mix:n=10,adv=mix"); err != nil {
		t.Fatal(err)
	} else if s.Adversary.Frac != 0.2 || s.Adversary.Weights[SignFlip-1] != 1 {
		t.Fatalf("default adv mix = %+v", s.Adversary)
	}
	for _, spec := range []string{
		"mix:n=10,advfrac=0.3",         // advfrac without adv
		"mix:n=10,advk=5",              // advk without adv
		"mix:n=10,adv=bogus",           // unknown behavior
		"mix:n=10,adv=",                // empty behavior
		"mix:n=10,adv=scale,advfrac=2", // frac > 1
	} {
		if _, err := ParsePopulation(spec); err == nil {
			t.Fatalf("ParsePopulation(%q) accepted", spec)
		}
	}
}

// advServer builds a small in-process federation with the given adversary
// and aggregation settings.
func advServer(t *testing.T, seed int64, adversary, aggSpec string, codec wire.Codec) *Server {
	t.Helper()
	pool := testPool(t)
	clients, _ := testClients(t, 6, pool)
	adv, err := ParseAdversary(adversary)
	if err != nil {
		t.Fatal(err)
	}
	adv.Seed = seed + 909
	srv, err := NewServer(Config{
		Model: testModelCfg(), Pool: prune.Config{P: 3},
		ClientsPerRound: 4, Train: quickTrain(), Seed: seed,
		Adversary: adv, Agg: aggSpec, Codec: codec,
	}, clients)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// TestCodecLessCorruptRejected: with no codec the corrupt behavior poisons
// the raw upload with NaN; every such dispatch must come back Rejected —
// ledgered, byte-accounted, and kept out of the global model.
func TestCodecLessCorruptRejected(t *testing.T) {
	srv := advServer(t, 21, "corrupt:frac=1", "", nil)
	before := srv.Global().Clone()
	if err := srv.Round(); err != nil {
		t.Fatalf("round with all-corrupt fleet must complete: %v", err)
	}
	st := srv.Stats()[0]
	if st.Rejected != 4 || mergedCount(st) != 0 {
		t.Fatalf("rejected=%d merged=%d, want 4/0", st.Rejected, mergedCount(st))
	}
	for _, d := range st.Dispatches {
		if !d.Rejected || d.Failed {
			t.Fatalf("dispatch not ledgered as a clean rejection: %+v", d)
		}
	}
	for name, v := range srv.Global() {
		for i, x := range v.Data {
			if x != before[name].Data[i] {
				t.Fatal("all-rejected round moved the global model")
			}
			if math.IsNaN(x) || math.IsInf(x, 0) {
				t.Fatal("poison reached the global model")
			}
		}
	}
}

// TestCorruptWithCodecNeverPoisons: bit flips on the encoded payload either
// fail the decode (→ Rejected) or decode into finite garbage (→ merged and
// survivable); the one forbidden outcome is non-finite state downstream.
func TestCorruptWithCodecNeverPoisons(t *testing.T) {
	srv := advServer(t, 22, "corrupt:frac=1", "", wire.Raw{})
	if err := srv.Round(); err != nil {
		t.Fatalf("round with corrupt payloads must complete: %v", err)
	}
	st := srv.Stats()[0]
	if st.Rejected+mergedCount(st) != 4 {
		t.Fatalf("rejected=%d merged=%d, want 4 total", st.Rejected, mergedCount(st))
	}
	if !StateFinite(srv.Global()) {
		t.Fatal("corrupt payload poisoned the global model")
	}
	for _, d := range st.Dispatches {
		if d.GotBytes == 0 {
			t.Fatalf("dispatch lost its uplink byte count: %+v", d)
		}
	}
}

// TestClipPolicyLedgersClipped: a tiny tau clips every fresh merge, and the
// ledger says so — Clipped counts alongside (not instead of) Merged.
func TestClipPolicyLedgersClipped(t *testing.T) {
	srv := advServer(t, 23, "", "clip:tau=1e-9", nil)
	if err := srv.Round(); err != nil {
		t.Fatal(err)
	}
	st := srv.Stats()[0]
	if mergedCount(st) == 0 || st.Clipped != mergedCount(st) {
		t.Fatalf("clipped=%d merged=%d, want every merge clipped", st.Clipped, mergedCount(st))
	}
	for _, d := range st.Dispatches {
		if d.Clipped && d.Rejected {
			t.Fatalf("dispatch both clipped and rejected: %+v", d)
		}
	}
	if !StateFinite(srv.Global()) {
		t.Fatal("clipping produced a non-finite global")
	}
}

// TestRobustPolicyRoundsDeterministic: same-seed adversarial runs under a
// robust policy produce bit-identical globals and ledgers.
func TestRobustPolicyRoundsDeterministic(t *testing.T) {
	run := func() (map[string]float64, RoundStats) {
		srv := advServer(t, 29, "mix:frac=0.5,signflip=1,scale=1,k=4", "trim:frac=0.25", nil)
		if err := srv.Round(); err != nil {
			t.Fatal(err)
		}
		sums := map[string]float64{}
		for name, v := range srv.Global() {
			sums[name] = v.Sum()
		}
		return sums, srv.Stats()[0]
	}
	s1, st1 := run()
	s2, st2 := run()
	for name, v := range s1 {
		if s2[name] != v {
			t.Fatalf("parameter %q differs across same-seed adversarial runs", name)
		}
	}
	if st1.Rejected != st2.Rejected || st1.Clipped != st2.Clipped || mergedCount(st1) != mergedCount(st2) {
		t.Fatalf("ledgers differ: rejected %d/%d clipped %d/%d", st1.Rejected, st2.Rejected, st1.Clipped, st2.Clipped)
	}
}

func TestNewServerRejectsBadAggSpec(t *testing.T) {
	pool := testPool(t)
	clients, _ := testClients(t, 4, pool)
	_, err := NewServer(Config{
		Model: testModelCfg(), Pool: prune.Config{P: 3},
		ClientsPerRound: 2, Train: quickTrain(), Seed: 1, Agg: "bogus",
	}, clients)
	if err == nil {
		t.Fatal("bad Agg spec accepted")
	}
}
