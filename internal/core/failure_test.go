package core

import (
	"math/rand"
	"testing"

	"adaptivefl/internal/data"
	"adaptivefl/internal/prune"
	"adaptivefl/internal/rl"
)

// TestFailedDispatchAccounting injects a device whose capacity is below
// the smallest pool member: the dispatch must be recorded as failed, waste
// the full sent size, and still update the RL tables so the selector
// learns to avoid the client.
func TestFailedDispatchAccounting(t *testing.T) {
	pool := testPool(t)
	dcfg := data.SynthConfig{Name: "t", Classes: 4, Channels: 3, Size: 32, Train: 24, Test: 10, Noise: 0.3, Seed: 51}
	train, _ := data.Generate(dcfg)
	// One client whose device fits nothing.
	clients := []*Client{{
		ID:     0,
		Data:   train,
		Device: &Device{Class: Weak, Base: pool.Smallest().Size / 2},
	}}
	srv, err := NewServer(Config{
		Model: testModelCfg(), Pool: prune.Config{P: 3},
		ClientsPerRound: 1, Train: quickTrain(), Seed: 52, Greedy: true,
	}, clients)
	if err != nil {
		t.Fatal(err)
	}
	before := srv.Global().Clone()
	if err := srv.Round(); err != nil {
		t.Fatal(err)
	}
	st := srv.Stats()[0]
	if len(st.Dispatches) != 1 || !st.Dispatches[0].Failed {
		t.Fatalf("expected one failed dispatch, got %+v", st.Dispatches)
	}
	if st.ReturnedParams != 0 || st.SentParams == 0 {
		t.Fatalf("failed round ledger wrong: %+v", st)
	}
	if w := CommWasteRate(srv.Stats()); w != 1 {
		t.Fatalf("waste = %v, want 1 for all-failed round", w)
	}
	// Aggregation must be skipped: the global model is unchanged.
	for name, v := range srv.Global() {
		for i := range v.Data {
			if v.Data[i] != before[name].Data[i] {
				t.Fatal("global changed despite no successful uploads")
			}
		}
	}
	// Table update happened (smallest member recorded as the observation).
	if srv.Tables().Tr[pool.Smallest().Index][0] == 1 {
		t.Fatal("RL tables not updated after failure")
	}
}

// TestRoundWithAllLevelsAggregates drives a mixed population long enough
// that every pool level is dispatched and returned at least once. In
// -short mode a reduced round budget is used; the run is deterministic
// (fixed seed), so the smaller budget is known to still cover all levels.
func TestRoundWithAllLevelsAggregates(t *testing.T) {
	pool := testPool(t)
	clients, _ := testClients(t, 9, pool)
	srv, err := NewServer(Config{
		Model: testModelCfg(), Pool: prune.Config{P: 3},
		ClientsPerRound: 6, Train: quickTrain(), Seed: 53,
	}, clients)
	if err != nil {
		t.Fatal(err)
	}
	rounds := 15
	if testing.Short() {
		rounds = 10
	}
	seen := map[prune.Level]bool{}
	for r := 0; r < rounds; r++ {
		if err := srv.Round(); err != nil {
			t.Fatal(err)
		}
	}
	for _, st := range srv.Stats() {
		for _, d := range st.Dispatches {
			if !d.Failed {
				seen[d.Got.Level] = true
			}
		}
	}
	for _, lvl := range []prune.Level{prune.LevelS, prune.LevelM, prune.LevelL} {
		if !seen[lvl] {
			t.Errorf("level %v never trained in %d rounds", lvl, rounds)
		}
	}
}

// TestParallelismOneMatchesParallelismMany guards against data races and
// nondeterminism in the concurrent round executor.
func TestParallelismOneMatchesParallelismMany(t *testing.T) {
	run := func(par int) map[string]float64 {
		pool := testPool(t)
		clients, _ := testClients(t, 6, pool)
		srv, err := NewServer(Config{
			Model: testModelCfg(), Pool: prune.Config{P: 3},
			ClientsPerRound: 4, Train: quickTrain(), Seed: 54, Parallelism: par,
		}, clients)
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.Run(2, nil); err != nil {
			t.Fatal(err)
		}
		// Compare per-parameter (map iteration order is randomised, and
		// float addition is not associative across orders).
		sums := map[string]float64{}
		for name, v := range srv.Global() {
			sums[name] = v.Sum()
		}
		return sums
	}
	a, b := run(1), run(4)
	for name, v := range a {
		if b[name] != v {
			t.Fatalf("parallelism changed parameter %q", name)
		}
	}
}

// TestRunCallbackStopsEarly verifies the Run callback contract.
func TestRunCallbackStopsEarly(t *testing.T) {
	pool := testPool(t)
	clients, _ := testClients(t, 6, pool)
	srv, err := NewServer(Config{
		Model: testModelCfg(), Pool: prune.Config{P: 3},
		ClientsPerRound: 2, Train: quickTrain(), Seed: 55,
	}, clients)
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	if err := srv.Run(10, func(round int) bool {
		calls++
		return round < 2
	}); err != nil {
		t.Fatal(err)
	}
	if calls != 2 || len(srv.Stats()) != 2 {
		t.Fatalf("callback stop failed: %d calls, %d rounds", calls, len(srv.Stats()))
	}
}

// TestLiteralL1BonusChangesSelection exercises the DESIGN.md §5 deviation
// switch end to end.
func TestLiteralL1BonusChangesSelection(t *testing.T) {
	pool := testPool(t)
	clients, _ := testClients(t, 6, pool)
	mk := func(literal bool) *Server {
		srv, err := NewServer(Config{
			Model: testModelCfg(), Pool: prune.Config{P: 3},
			RL:              rlConfig(literal),
			ClientsPerRound: 3, Train: quickTrain(), Seed: 56,
		}, clients)
		if err != nil {
			t.Fatal(err)
		}
		return srv
	}
	a, b := mk(false), mk(true)
	for r := 0; r < 3; r++ {
		if err := a.Round(); err != nil {
			t.Fatal(err)
		}
		if err := b.Round(); err != nil {
			t.Fatal(err)
		}
	}
	last := len(a.Pool().Members) - 1
	diff := false
	for c := 0; c < 6; c++ {
		if a.Tables().Tr[last][c] != b.Tables().Tr[last][c] {
			diff = true
		}
	}
	if !diff {
		t.Fatal("literal L1 bonus had no effect on the resource table")
	}
}

// TestDevicePopulationDeterministic ensures NewPopulation is reproducible
// for a fixed rng seed.
func TestDevicePopulationDeterministic(t *testing.T) {
	pool := testPool(t)
	mk := func() []int64 {
		rng := rand.New(rand.NewSource(57))
		devices := NewPopulation(rng, 20, [3]float64{4, 3, 3}, pool, DefaultDeviceModel())
		out := make([]int64, len(devices))
		for i, d := range devices {
			out[i] = d.Base
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("population not deterministic")
		}
	}
}

// rlConfig builds an rl.Config with the literal-L1 switch set.
func rlConfig(literal bool) rl.Config { return rl.Config{LiteralL1Bonus: literal} }
