package core

import (
	"testing"

	"adaptivefl/internal/nn"
	"adaptivefl/internal/prune"
	"adaptivefl/internal/wire"
)

// TestEncodeOncePerCommit pins the tentpole invariant of the encode-once
// dispatch path: per commit, the server runs exactly one codec encode per
// distinct pool member it dispatched — however many clients are in the
// cohort — and every dispatch is attributed to exactly one serving path.
// Doubling the cohort must not change the encodes a round costs.
func TestEncodeOncePerCommit(t *testing.T) {
	for _, cohort := range []int{4, 8} {
		pool := testPool(t)
		clients, _ := codecTestClients(t, 8, pool)
		srv, err := NewServer(Config{
			Model: testModelCfg(), Pool: prune.Config{P: 3},
			ClientsPerRound: cohort,
			Train:           TrainConfig{LocalEpochs: 1, BatchSize: 12, LR: 0.1, Momentum: 0.5},
			Seed:            31, Codec: wire.Q8{},
		}, clients)
		if err != nil {
			t.Fatal(err)
		}
		var prev int64
		if err := srv.Run(3, func(round int) bool {
			stats := srv.Stats()
			st := stats[len(stats)-1]
			members := map[int]bool{}
			for _, d := range st.Dispatches {
				members[d.Sent.Index] = true
			}
			if got := srv.Artifacts().Encodes() - prev; got != int64(len(members)) {
				t.Fatalf("cohort %d round %d: %d encodes for %d distinct members dispatched",
					cohort, round, got, len(members))
			}
			prev = srv.Artifacts().Encodes()
			if st.DownEncodedOnce != len(members) {
				t.Fatalf("cohort %d round %d: DownEncodedOnce = %d, want %d",
					cohort, round, st.DownEncodedOnce, len(members))
			}
			if n := st.DownEncodedOnce + st.DownReserved + st.DownNotModified; n != len(st.Dispatches) {
				t.Fatalf("cohort %d round %d: serving-path census %d != %d dispatches",
					cohort, round, n, len(st.Dispatches))
			}
			// Every dispatch beyond the first per member rode the store.
			if want := len(st.Dispatches) - len(members); st.DownReserved != want {
				t.Fatalf("cohort %d round %d: DownReserved = %d, want %d",
					cohort, round, st.DownReserved, want)
			}
			return true
		}); err != nil {
			t.Fatal(err)
		}

		// A second codec against the same snapshot costs exactly one more
		// encode per member — W members × C codecs, never W × C × cohort.
		c2 := wire.F32{}
		snap := srv.SnapshotHash()
		before := srv.Artifacts().Encodes()
		for pass := 0; pass < 2; pass++ { // second pass must be all hits
			for _, sub := range pool.Members {
				sub := sub
				key := wire.ArtifactKey{Snapshot: snap, Member: sub.Index, Codec: c2.Tag()}
				if _, err := srv.Artifacts().Get(key, c2, func() (nn.State, error) {
					return pool.ExtractState(srv.Global(), sub)
				}); err != nil {
					t.Fatal(err)
				}
			}
		}
		if got := srv.Artifacts().Encodes() - before; got != int64(len(pool.Members)) {
			t.Fatalf("second codec cost %d encodes, want %d", got, len(pool.Members))
		}
	}
}

// TestNotModifiedOnUnchangedSnapshot: when the global model does not move
// between dispatches (an empty commit), re-dispatching the same member to
// the same client is attributed not-modified — the ETag revalidation path.
func TestNotModifiedOnUnchangedSnapshot(t *testing.T) {
	pool := testPool(t)
	clients, _ := codecTestClients(t, 4, pool)
	srv, err := NewServer(Config{
		Model: testModelCfg(), Pool: prune.Config{P: 3},
		ClientsPerRound: 4,
		Train:           TrainConfig{LocalEpochs: 1, BatchSize: 12, LR: 0.1, Momentum: 0.5},
		Seed:            31, Codec: wire.Q8{},
	}, clients)
	if err != nil {
		t.Fatal(err)
	}
	// Drive dispatches by hand at a pinned snapshot: two flights for the
	// same (client, member) slot without an intervening commit.
	slots := srv.PlanSlots(4, nil)
	trainer, err := srv.RoundTrainer(slots)
	if err != nil {
		t.Fatal(err)
	}
	encodesAfterWarm := srv.Artifacts().Encodes()
	var st RoundStats
	for pass := 0; pass < 2; pass++ {
		for _, sl := range slots {
			f := srv.OpenFlight(sl)
			srv.Execute(trainer, f)
			f.Wait()
			srv.Release(f)
			if err := f.Err(); err != nil {
				t.Fatal(err)
			}
			d, _ := srv.Record(f, Merged)
			st.Add(d)
		}
	}
	if st.DownNotModified != len(slots) {
		t.Fatalf("DownNotModified = %d, want %d (every second-pass dispatch)",
			st.DownNotModified, len(slots))
	}
	if srv.Artifacts().Encodes() != encodesAfterWarm {
		t.Fatalf("re-dispatch at a pinned snapshot re-encoded: %d -> %d",
			encodesAfterWarm, srv.Artifacts().Encodes())
	}
}
