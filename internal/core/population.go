package core

import (
	"container/list"
	"fmt"
	"math/rand"
	"sync"

	"adaptivefl/internal/data"
	"adaptivefl/internal/obs"
	"adaptivefl/internal/prune"
	"adaptivefl/internal/spec"
)

// Population abstracts the server's client fleet. The legacy path is an
// eager slice of fully-built clients; at AIoT fleet scale (the paper's
// massive resource-constrained deployments) the population is a parametric
// generator that materialises a client's device and data shard only when a
// dispatch first touches it, so server memory is O(active flights) instead
// of O(clients).
type Population interface {
	// Len is the population size.
	Len() int
	// Client returns client c, materialising it if necessary. The result
	// is stable while the client is pinned (has an open flight).
	Client(c int) *Client
}

// CandidateSampler is an optional Population capability: populations too
// large to permute per selection expose a bounded candidate sample
// instead. PlanSlots draws the sample from the server rng, so selection
// stays deterministic for a fixed seed.
type CandidateSampler interface {
	// SampleCandidates returns a deterministic, duplicate-free candidate
	// set sized for selecting k slots, consuming only rng draws.
	SampleCandidates(rng *rand.Rand, k int) []int
}

// Pinner is an optional Population capability: a lazily materialised
// client must not be evicted (and deterministically re-generated with a
// reset device rng) while a flight holds it. OpenFlight pins, Release
// unpins.
type Pinner interface {
	Pin(c int)
	Unpin(c int)
}

// EagerPopulation adapts the legacy fully-built client slice. Every
// existing construction path goes through it, bit-identically.
type EagerPopulation []*Client

// Len implements Population.
func (p EagerPopulation) Len() int { return len(p) }

// Client implements Population.
func (p EagerPopulation) Client(c int) *Client { return p[c] }

// mix64 is the SplitMix64 finaliser: a cheap, high-quality avalanche used
// to derive per-client streams from a population seed without storing
// per-client state.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Hash derives a deterministic 64-bit stream value for client c under the
// given salt. Distinct salts decorrelate the spec's independent draws
// (class assignment, client seed, churn phases — internal/sched's PopTrace
// consumes salts too).
func (s PopulationSpec) Hash(c int, salt uint64) uint64 {
	return mix64(uint64(s.Seed) ^ mix64(uint64(c)^mix64(salt)))
}

// unitFloat maps a hash value to [0, 1).
func unitFloat(h uint64) float64 { return float64(h>>11) / (1 << 53) }

// PopulationSpec parameterises a generated client population: the
// capability mix (weak/medium/strong shares), the churn profile every
// client's availability timeline is drawn from, and the data-distribution
// family of the per-client shards. It is the population analogue of the
// sched trace grammar — ParsePopulation parses the spec string,
// LazyPopulation materialises clients from it on demand, and
// sched.PopTrace turns the churn profile into an O(1)-memory availability
// trace.
type PopulationSpec struct {
	// N is the population size.
	N int
	// Weak, Medium, Strong are the capability-mix shares (normalised).
	Weak, Medium, Strong float64
	// MeanOn / MeanOff parameterise the churn profile in virtual seconds:
	// mean on-window and mean off-window durations. MeanOff = 0 means
	// clients never go offline.
	MeanOn, MeanOff float64
	// SlowProb is the chance an on-window runs slowed by SlowFactor.
	SlowProb, SlowFactor float64
	// Samples is the per-client shard size.
	Samples int
	// Classes bounds the classes each client's shard covers (0 = the
	// dataset family's default).
	Classes int
	// Dataset names the synthetic data family ("widar", "cifar10", …).
	Dataset string
	// Adversary describes the adversarial sub-population (zero = all
	// honest). The grammar expresses single-behavior specs and the default
	// mix via adv=/advfrac=/advk=; richer mixes go through Config.Adversary
	// directly. Its Seed is not set by the parser — consumers copy the
	// population Seed in (cf. popServer).
	Adversary AdversarySpec
	// Seed drives every per-client derivation. Not part of the spec
	// string; callers set it the way ParseTrace takes a seed argument.
	Seed int64
}

// popDefaults is the parse-time default spec.
func popDefaults() PopulationSpec {
	return PopulationSpec{
		Weak: 0.4, Medium: 0.3, Strong: 0.3,
		MeanOn: 60, SlowFactor: 1,
		Samples: 20, Dataset: "widar",
	}
}

// ParsePopulation builds a PopulationSpec from a compact spec string, the
// population analogue of sched.ParseTrace:
//
//	"mix"                                  — the default 4:3:3 mix, no churn
//	"mix:n=1000000,weak=0.6,churn=20"      — 1M clients, weak-heavy,
//	    cycling on/off with 20 s mean off-windows
//	"mix:on=60,churn=20,slow=4,slowprob=0.1,samples=20,classes=8,data=widar"
//
// Unspecified class shares keep their defaults (weak=0.4, medium=0.3,
// strong=0.3); shares are normalised to sum to 1. The seed is not part of
// the grammar — set Spec.Seed after parsing.
func ParsePopulation(popSpec string) (PopulationSpec, error) {
	name, args, err := spec.Parse("core", "population", popSpec)
	if err != nil {
		return PopulationSpec{}, err
	}
	if name != "mix" {
		return PopulationSpec{}, fmt.Errorf("core: unknown population spec %q (want mix[:k=v,...])", name)
	}
	s := popDefaults()
	if v, raw, ok := args.Take("data"); ok {
		if v == "" {
			return PopulationSpec{}, fmt.Errorf("core: population param %q needs a dataset name", raw)
		}
		s.Dataset = v
	}
	advName := ""
	if v, raw, ok := args.Take("adv"); ok {
		if v == "" {
			return PopulationSpec{}, fmt.Errorf("core: population param %q needs a behavior name", raw)
		}
		advName = v
	}
	s.N = args.Int("n", s.N)
	s.Weak = args.NonNeg("weak", s.Weak)
	s.Medium = args.NonNeg("medium", s.Medium)
	s.Strong = args.NonNeg("strong", s.Strong)
	s.MeanOn = args.NonNeg("on", s.MeanOn)
	s.MeanOff = args.NonNeg("churn", s.MeanOff)
	s.SlowFactor = args.NonNeg("slow", s.SlowFactor)
	s.SlowProb = args.NonNeg("slowprob", s.SlowProb)
	s.Samples = args.Int("samples", s.Samples)
	s.Classes = args.Int("classes", s.Classes)
	advFrac := args.NonNeg("advfrac", -1)
	advK := args.NonNeg("advk", -1)
	if err := args.Finish(); err != nil {
		return PopulationSpec{}, err
	}
	if advName == "" && (advFrac >= 0 || advK >= 0) {
		return PopulationSpec{}, fmt.Errorf("core: population params advfrac/advk need adv=<behavior>")
	}
	if advName != "" {
		// Delegate to the adversary grammar so validation and defaults stay
		// in one place.
		b := spec.NewBuilder(advName)
		if advFrac >= 0 {
			b.Float("frac", advFrac)
		}
		if advK >= 0 {
			b.Float("k", advK)
		}
		a, err := ParseAdversary(b.String())
		if err != nil {
			return PopulationSpec{}, err
		}
		s.Adversary = a
	}
	if err := s.normalise(); err != nil {
		return PopulationSpec{}, err
	}
	return s, nil
}

// normalise validates and canonicalises the spec (shares sum to 1).
func (s *PopulationSpec) normalise() error {
	total := s.Weak + s.Medium + s.Strong
	if total <= 0 {
		return fmt.Errorf("core: population class shares must sum to a positive value")
	}
	s.Weak, s.Medium, s.Strong = s.Weak/total, s.Medium/total, s.Strong/total
	if s.MeanOn <= 0 {
		return fmt.Errorf("core: population mean on-window must be positive")
	}
	if s.SlowFactor != 0 && s.SlowFactor < 1 {
		return fmt.Errorf("core: population slow factor must be >= 1")
	}
	if s.SlowFactor == 0 {
		s.SlowFactor = 1
	}
	if s.SlowProb > 1 {
		return fmt.Errorf("core: population slowprob must be <= 1")
	}
	if s.Samples <= 0 {
		return fmt.Errorf("core: population samples must be positive")
	}
	return nil
}

// String renders the canonical spec string; ParsePopulation round-trips it
// (Seed excepted — it is not part of the grammar).
func (s PopulationSpec) String() string {
	b := spec.NewBuilder("mix").
		Int("n", s.N).
		Float("weak", s.Weak).Float("medium", s.Medium).Float("strong", s.Strong).
		Float("on", s.MeanOn).Float("churn", s.MeanOff).
		Float("slow", s.SlowFactor).Float("slowprob", s.SlowProb).
		Int("samples", s.Samples).Int("classes", s.Classes).
		Str("data", s.Dataset)
	if a := s.Adversary; a.Enabled() {
		// Single-behavior specs and the default mix round-trip; bespoke
		// mix weights collapse to the default mix (grammar limitation).
		name := "mix"
		single, nonzero := -1, 0
		for i, w := range a.Weights {
			if w > 0 {
				single, nonzero = i, nonzero+1
			}
		}
		if nonzero == 1 && a.Weights[single] == 1 {
			name = behaviorNames[single]
		}
		b.Str("adv", name).Float("advfrac", a.Frac).Float("advk", a.K)
	}
	return b.String()
}

// Class salts for the spec's independent hash streams. sched.PopTrace owns
// the churn salts (10+); keep the ranges disjoint.
const (
	saltClass uint64 = 1
	saltSeed  uint64 = 2
)

// ClassOf returns client c's device class, drawn deterministically from
// the capability mix: the same (Seed, c) always lands in the same class,
// independent of which other clients were ever materialised.
func (s PopulationSpec) ClassOf(c int) DeviceClass {
	u := unitFloat(s.Hash(c, saltClass))
	switch {
	case u < s.Weak:
		return Weak
	case u < s.Weak+s.Medium:
		return Medium
	}
	return Strong
}

// ClientSeed returns the deterministic per-client seed all of client c's
// materialised state (device jitter stream, data shard) derives from.
func (s PopulationSpec) ClientSeed(c int) int64 {
	return int64(s.Hash(c, saltSeed) >> 1) // keep it non-negative for readability
}

// ShardGen generates one client's data shard from its deterministic seed.
// internal/exp wires data.WriterSampler here; tests can supply a stub.
type ShardGen func(c int, seed int64) *data.Dataset

// LazyPopulation materialises clients on first dispatch from a
// PopulationSpec and keeps at most Cap of them alive in an LRU. Clients
// with open flights are pinned outside the LRU (never evicted), so worker
// goroutines reading a flight's client can never race an eviction, and
// eviction order stays a pure function of the event loop's deterministic
// access sequence.
type LazyPopulation struct {
	spec    PopulationSpec
	bases   [3]int64
	jitter  float64
	datagen ShardGen
	capn    int

	mu    sync.Mutex
	cache map[int]*list.Element
	lru   *list.List // front = most recently used; element value is *lruEntry
	pins  map[int]*pinEntry
	made  int64 // total materialisations, for memory/regeneration audits
	obs   *obs.Observer
}

type lruEntry struct {
	c  int
	cl *Client
}

type pinEntry struct {
	cl *Client
	n  int
}

// DefaultLazyCap is the default LRU capacity: comfortably above any
// realistic in-flight set, small enough that a million-client run holds
// thousandths of its population in memory.
const DefaultLazyCap = 2048

// NewLazyPopulation builds a lazy population. The pool and device model
// fix the per-class capacity bases exactly as NewPopulation computes them;
// datagen supplies per-client shards (required — training reads them);
// cacheCap bounds the materialised-client LRU (0 = DefaultLazyCap).
func NewLazyPopulation(spec PopulationSpec, pool *prune.Pool, dm DeviceModel, datagen ShardGen, cacheCap int) (*LazyPopulation, error) {
	if spec.N < 1 {
		return nil, fmt.Errorf("core: lazy population needs n >= 1, got %d", spec.N)
	}
	if datagen == nil {
		return nil, fmt.Errorf("core: lazy population needs a shard generator")
	}
	if err := spec.normalise(); err != nil {
		return nil, err
	}
	if cacheCap <= 0 {
		cacheCap = DefaultLazyCap
	}
	return &LazyPopulation{
		spec:    spec,
		bases:   classBases(pool, dm),
		jitter:  dm.Jitter,
		datagen: datagen,
		capn:    cacheCap,
		cache:   map[int]*list.Element{},
		lru:     list.New(),
		pins:    map[int]*pinEntry{},
	}, nil
}

// Spec returns the population's parametric spec.
func (p *LazyPopulation) Spec() PopulationSpec { return p.spec }

// SetObserver attaches an observer for LRU materialise/evict spans and
// the live-client gauge. Safe because cache mutations happen only on the
// event-loop's access sequence (workers read pinned clients), so span
// order — and with it the JSONL trace — stays deterministic.
func (p *LazyPopulation) SetObserver(o *obs.Observer) {
	p.mu.Lock()
	p.obs = o
	p.mu.Unlock()
}

// observeLocked reports one cache event and refreshes the live gauge.
func (p *LazyPopulation) observeLocked(op string, c int) {
	if !p.obs.Enabled() {
		return
	}
	p.obs.Span(obs.Span{Kind: obs.KindLRU, Op: op, Client: c})
	p.obs.LRULive(int64(p.lru.Len() + len(p.pins)))
}

// Len implements Population.
func (p *LazyPopulation) Len() int { return p.spec.N }

// Client implements Population.
func (p *LazyPopulation) Client(c int) *Client {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.clientLocked(c)
}

func (p *LazyPopulation) clientLocked(c int) *Client {
	if pe, ok := p.pins[c]; ok {
		return pe.cl
	}
	if el, ok := p.cache[c]; ok {
		p.lru.MoveToFront(el)
		return el.Value.(*lruEntry).cl
	}
	cl := p.materialise(c)
	p.cache[c] = p.lru.PushFront(&lruEntry{c: c, cl: cl})
	p.observeLocked(obs.OpMaterialise, c)
	p.evictLocked()
	return cl
}

// Pin implements Pinner: the client leaves the LRU and survives until the
// matching Unpin, however many other clients are materialised meanwhile.
func (p *LazyPopulation) Pin(c int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if pe, ok := p.pins[c]; ok {
		pe.n++
		return
	}
	var cl *Client
	if el, ok := p.cache[c]; ok {
		cl = el.Value.(*lruEntry).cl
		p.lru.Remove(el)
		delete(p.cache, c)
	} else {
		cl = p.materialise(c)
		p.observeLocked(obs.OpMaterialise, c)
	}
	p.pins[c] = &pinEntry{cl: cl, n: 1}
}

// Unpin implements Pinner: when the last pin drops the client re-enters
// the LRU as most recently used.
func (p *LazyPopulation) Unpin(c int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	pe, ok := p.pins[c]
	if !ok {
		return
	}
	if pe.n--; pe.n > 0 {
		return
	}
	delete(p.pins, c)
	p.cache[c] = p.lru.PushFront(&lruEntry{c: c, cl: pe.cl})
	p.evictLocked()
}

func (p *LazyPopulation) evictLocked() {
	for p.lru.Len() > p.capn {
		el := p.lru.Back()
		c := el.Value.(*lruEntry).c
		delete(p.cache, c)
		p.lru.Remove(el)
		p.observeLocked(obs.OpEvict, c)
	}
}

// materialise builds client c from its deterministic per-client streams.
// Re-materialising after an eviction yields a bit-identical device and
// shard, with the device's capacity-jitter rng reset to the stream start;
// since eviction order is itself deterministic (pinning keeps worker
// accesses off the LRU), whole runs stay reproducible.
func (p *LazyPopulation) materialise(c int) *Client {
	seed := p.spec.ClientSeed(c)
	class := p.spec.ClassOf(c)
	p.made++
	return &Client{
		ID:   c,
		Data: p.datagen(c, seed),
		Device: &Device{
			Class:  class,
			Base:   p.bases[class],
			Jitter: p.jitter,
			rng:    rand.New(rand.NewSource(seed)),
		},
	}
}

// Materialized reports the live set (LRU + pinned) and the total number of
// materialisations so far; total − peak live is regeneration churn.
func (p *LazyPopulation) Materialized() (live int, total int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.lru.Len() + len(p.pins), p.made
}

// SampleCandidates implements CandidateSampler: a duplicate-free sample of
// max(64, 8k) client ids (capped at the population) drawn from rng. A
// collision re-draws, so the result is a pure function of the rng stream;
// the attempt cap keeps pathological small-N cases bounded (the sample
// just comes back short, which PlanSlots already tolerates).
func (p *LazyPopulation) SampleCandidates(rng *rand.Rand, k int) []int {
	return sampleCandidates(rng, p.spec.N, k)
}

func sampleCandidates(rng *rand.Rand, n, k int) []int {
	target := 8 * k
	if target < 64 {
		target = 64
	}
	if target > n {
		target = n
	}
	seen := make(map[int]bool, target)
	out := make([]int, 0, target)
	for attempts := 0; len(out) < target && attempts < 16*target; attempts++ {
		c := rng.Intn(n)
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	return out
}

// ShardPopulation exposes a contiguous id-range of a base population as a
// population of its own, remapping local ids [0, n) to base ids
// [offset, offset+n). The two-tier scheduler gives each edge aggregator
// one shard; pins, sampling and materialisation all pass through to the
// base, so shards of one LazyPopulation share its LRU.
type ShardPopulation struct {
	base   Population
	offset int
	n      int
}

// NewShardPopulation builds the [offset, offset+n) view of base.
func NewShardPopulation(base Population, offset, n int) (*ShardPopulation, error) {
	if offset < 0 || n < 1 || offset+n > base.Len() {
		return nil, fmt.Errorf("core: shard [%d, %d) outside population of %d", offset, offset+n, base.Len())
	}
	return &ShardPopulation{base: base, offset: offset, n: n}, nil
}

// Offset returns the shard's base-id offset.
func (p *ShardPopulation) Offset() int { return p.offset }

// Len implements Population.
func (p *ShardPopulation) Len() int { return p.n }

// Client implements Population.
func (p *ShardPopulation) Client(c int) *Client { return p.base.Client(p.offset + c) }

// Pin implements Pinner (a no-op for non-pinning bases).
func (p *ShardPopulation) Pin(c int) {
	if pin, ok := p.base.(Pinner); ok {
		pin.Pin(p.offset + c)
	}
}

// Unpin implements Pinner.
func (p *ShardPopulation) Unpin(c int) {
	if pin, ok := p.base.(Pinner); ok {
		pin.Unpin(p.offset + c)
	}
}

// SetObserver forwards to the base population: shards of one
// LazyPopulation share its LRU, so they share its cache spans too. LRU
// span client ids are base ids, matching how the cache actually behaves.
func (p *ShardPopulation) SetObserver(o *obs.Observer) {
	if op, ok := p.base.(observablePopulation); ok {
		op.SetObserver(o)
	}
}

// SampleCandidates implements CandidateSampler when the base samples:
// local ids are drawn over the shard's own range, so each edge's selection
// consumes only its own server's rng stream.
func (p *ShardPopulation) SampleCandidates(rng *rand.Rand, k int) []int {
	if _, ok := p.base.(CandidateSampler); !ok {
		// Eager base: PlanSlots would not have sampled either; mirror the
		// permutation path over the shard range.
		return rng.Perm(p.n)
	}
	return sampleCandidates(rng, p.n, k)
}

// MixCounts tallies the realised class mix of the first n clients of a
// spec — the determinism and mix tests read it, and popsim reports it.
func (s PopulationSpec) MixCounts(n int) [3]int {
	var counts [3]int
	for c := 0; c < n; c++ {
		counts[s.ClassOf(c)]++
	}
	return counts
}
