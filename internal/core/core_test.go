package core

import (
	"math"
	"math/rand"
	"testing"

	"adaptivefl/internal/data"
	"adaptivefl/internal/eval"
	"adaptivefl/internal/models"
	"adaptivefl/internal/prune"
	"adaptivefl/internal/rl"
	"adaptivefl/internal/tensor"
)

func testModelCfg() models.Config {
	return models.Config{Arch: models.ResNet18, NumClasses: 4, WidthScale: 0.07, Seed: 3}
}

func testPool(t *testing.T) *prune.Pool {
	t.Helper()
	pool, err := prune.BuildPool(testModelCfg(), prune.Config{P: 3})
	if err != nil {
		t.Fatal(err)
	}
	return pool
}

func testClients(t *testing.T, n int, pool *prune.Pool) ([]*Client, *data.Dataset) {
	t.Helper()
	cfg := data.SynthConfig{Name: "t", Classes: 4, Channels: 3, Size: 32,
		Train: n * 24, Test: 80, Noise: 0.3, MaxShift: 1, Seed: 11}
	train, test := data.Generate(cfg)
	rng := rand.New(rand.NewSource(5))
	parts := data.PartitionIID(rng, train.Len(), n)
	devices := NewPopulation(rng, n, [3]float64{4, 3, 3}, pool, DefaultDeviceModel())
	clients := make([]*Client, n)
	for i := range clients {
		clients[i] = &Client{ID: i, Data: train.Subset(parts[i]), Device: devices[i]}
	}
	return clients, test
}

func quickTrain() TrainConfig {
	return TrainConfig{LocalEpochs: 1, BatchSize: 12, LR: 0.02, Momentum: 0.5}
}

func TestDeviceClassCapacities(t *testing.T) {
	pool := testPool(t)
	rng := rand.New(rand.NewSource(1))
	devices := NewPopulation(rng, 100, [3]float64{4, 3, 3}, pool, DefaultDeviceModel())
	counts := map[DeviceClass]int{}
	for _, d := range devices {
		counts[d.Class]++
	}
	if counts[Weak] != 40 || counts[Medium] != 30 || counts[Strong] != 30 {
		t.Fatalf("class mix %v, want 40/30/30", counts)
	}
	s, m, l := anchorSizes(pool)
	if !(s < m && m < l) {
		t.Fatalf("anchors not ordered: %d %d %d", s, m, l)
	}
	for _, d := range devices {
		cap := d.Capacity()
		switch d.Class {
		case Weak:
			if cap >= m {
				t.Fatalf("weak capacity %d can fit an M model (%d)", cap, m)
			}
		case Medium:
			if cap >= l {
				t.Fatalf("medium capacity %d can fit L1 (%d)", cap, l)
			}
			if cap < s {
				t.Fatalf("medium capacity %d below S anchor", cap)
			}
		case Strong:
			if cap < m {
				t.Fatalf("strong capacity %d below M anchor", cap)
			}
		}
	}
}

func TestDeviceCapacityJitters(t *testing.T) {
	d := &Device{Class: Weak, Base: 1000, Jitter: 0.2, rng: rand.New(rand.NewSource(2))}
	seen := map[int64]bool{}
	for i := 0; i < 20; i++ {
		c := d.Capacity()
		if c < 800 || c > 1200 {
			t.Fatalf("capacity %d outside jitter band", c)
		}
		seen[c] = true
	}
	if len(seen) < 10 {
		t.Fatal("capacity does not vary")
	}
	fixed := &Device{Base: 500}
	if fixed.Capacity() != 500 {
		t.Fatal("zero jitter must return base")
	}
}

func TestNewPopulationProportions(t *testing.T) {
	pool := testPool(t)
	rng := rand.New(rand.NewSource(3))
	for _, props := range [][3]float64{{8, 1, 1}, {1, 8, 1}, {1, 1, 8}} {
		devices := NewPopulation(rng, 50, props, pool, DefaultDeviceModel())
		counts := map[DeviceClass]int{}
		for _, d := range devices {
			counts[d.Class]++
		}
		dominant := Weak
		if props[1] == 8 {
			dominant = Medium
		} else if props[2] == 8 {
			dominant = Strong
		}
		if counts[dominant] != 40 {
			t.Fatalf("props %v: dominant class has %d devices, want 40", props, counts[dominant])
		}
	}
}

func TestNewServerValidation(t *testing.T) {
	pool := testPool(t)
	clients, _ := testClients(t, 4, pool)
	base := Config{Model: testModelCfg(), Pool: prune.Config{P: 3}, ClientsPerRound: 2, Train: quickTrain()}
	if _, err := NewServer(base, nil); err == nil {
		t.Fatal("expected error for no clients")
	}
	bad := base
	bad.ClientsPerRound = 9
	if _, err := NewServer(bad, clients); err == nil {
		t.Fatal("expected error for K > population")
	}
	bad = base
	bad.Train.BatchSize = 0
	if _, err := NewServer(bad, clients); err == nil {
		t.Fatal("expected error for bad train config")
	}
	if _, err := NewServer(base, clients); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestRoundUpdatesGlobalAndTables(t *testing.T) {
	pool := testPool(t)
	clients, _ := testClients(t, 6, pool)
	srv, err := NewServer(Config{
		Model: testModelCfg(), Pool: prune.Config{P: 3},
		ClientsPerRound: 3, Train: quickTrain(), Seed: 7,
	}, clients)
	if err != nil {
		t.Fatal(err)
	}
	before := srv.Global().Clone()
	if err := srv.Round(); err != nil {
		t.Fatal(err)
	}
	after := srv.Global()
	changed := false
	for name, v := range after {
		for i := range v.Data {
			if v.Data[i] != before[name].Data[i] {
				changed = true
				break
			}
		}
		if changed {
			break
		}
	}
	if !changed {
		t.Fatal("global state unchanged after a round")
	}
	st := srv.Stats()
	if len(st) != 1 || len(st[0].Dispatches) != 3 {
		t.Fatalf("stats = %+v", st)
	}
	if st[0].SentParams <= 0 || st[0].ReturnedParams <= 0 {
		t.Fatalf("ledger empty: %+v", st[0])
	}
	// Returned models never exceed what was sent.
	for _, d := range st[0].Dispatches {
		if !d.Failed && d.Got.Size > d.Sent.Size {
			t.Fatalf("returned model larger than sent: %+v", d)
		}
	}
}

func TestRoundClientsUniquePerRound(t *testing.T) {
	pool := testPool(t)
	clients, _ := testClients(t, 8, pool)
	srv, err := NewServer(Config{
		Model: testModelCfg(), Pool: prune.Config{P: 3},
		ClientsPerRound: 8, Train: quickTrain(), Seed: 9,
	}, clients)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Round(); err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, d := range srv.Stats()[0].Dispatches {
		if seen[d.Client] {
			t.Fatalf("client %d selected twice in one round", d.Client)
		}
		seen[d.Client] = true
	}
}

func TestGreedyDispatchesOnlyL1(t *testing.T) {
	pool := testPool(t)
	clients, _ := testClients(t, 6, pool)
	srv, err := NewServer(Config{
		Model: testModelCfg(), Pool: prune.Config{P: 3},
		ClientsPerRound: 4, Train: quickTrain(), Seed: 11, Greedy: true,
	}, clients)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Round(); err != nil {
		t.Fatal(err)
	}
	for _, d := range srv.Stats()[0].Dispatches {
		if d.Sent.Level != prune.LevelL {
			t.Fatalf("greedy sent %s, want L1", d.Sent.Name())
		}
	}
	// Greedy wastes communication: weak/medium devices pruned locally.
	if w := CommWasteRate(srv.Stats()); w <= 0 {
		t.Fatalf("greedy waste = %v, want > 0", w)
	}
}

func TestWeakDevicesForceLocalPruning(t *testing.T) {
	pool := testPool(t)
	// All-weak population receiving L1 must return S-level models.
	cfgData := data.SynthConfig{Name: "t", Classes: 4, Channels: 3, Size: 32, Train: 48, Test: 10, Noise: 0.3, Seed: 13}
	train, _ := data.Generate(cfgData)
	rng := rand.New(rand.NewSource(14))
	devices := NewPopulation(rng, 4, [3]float64{1, 0, 0}, pool, DefaultDeviceModel())
	parts := data.PartitionIID(rng, train.Len(), 4)
	clients := make([]*Client, 4)
	for i := range clients {
		clients[i] = &Client{ID: i, Data: train.Subset(parts[i]), Device: devices[i]}
	}
	srv, err := NewServer(Config{
		Model: testModelCfg(), Pool: prune.Config{P: 3},
		ClientsPerRound: 4, Train: quickTrain(), Seed: 15, Greedy: true,
	}, clients)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Round(); err != nil {
		t.Fatal(err)
	}
	for _, d := range srv.Stats()[0].Dispatches {
		if d.Failed {
			continue
		}
		if d.Got.Level != prune.LevelS {
			t.Fatalf("weak device returned %s, want S-level", d.Got.Name())
		}
	}
}

func TestSubmodelByName(t *testing.T) {
	pool := testPool(t)
	clients, _ := testClients(t, 4, pool)
	srv, err := NewServer(Config{
		Model: testModelCfg(), Pool: prune.Config{P: 3},
		ClientsPerRound: 2, Train: quickTrain(), Seed: 17,
	}, clients)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"S1", "M1", "L1"} {
		m, err := srv.SubmodelByName(name)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(18))
		y := m.Forward(tensor.Randn(rng, 1, 1, 3, 32, 32), false)
		if y.Shape[1] != 4 {
			t.Fatalf("%s output shape %v", name, y.Shape)
		}
	}
	if _, err := srv.SubmodelByName("Z9"); err == nil {
		t.Fatal("expected error for unknown submodel")
	}
}

func TestCommWasteRate(t *testing.T) {
	stats := []RoundStats{
		{SentParams: 100, ReturnedParams: 80},
		{SentParams: 100, ReturnedParams: 60},
	}
	if w := CommWasteRate(stats); math.Abs(w-0.3) > 1e-12 {
		t.Fatalf("waste = %v, want 0.3", w)
	}
	if w := CommWasteRate(nil); w != 0 {
		t.Fatalf("empty waste = %v", w)
	}
}

func TestRLSelectionReducesWasteVsRandom(t *testing.T) {
	// After a burn-in, RL-CS should dispatch large models to weak devices
	// less often than Random does, lowering the waste rate.
	rounds, burnIn := 12, 4
	if testing.Short() {
		rounds, burnIn = 5, 2
	}
	run := func(mode rl.Mode, seed int64) float64 {
		pool := testPool(t)
		clients, _ := testClients(t, 10, pool)
		srv, err := NewServer(Config{
			Model: testModelCfg(), Pool: prune.Config{P: 3}, Mode: mode,
			ClientsPerRound: 5, Train: TrainConfig{LocalEpochs: 1, BatchSize: 24, LR: 0.02, Momentum: 0}, Seed: seed,
		}, clients)
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.Run(rounds, nil); err != nil {
			t.Fatal(err)
		}
		// Ignore the first rounds (exploration).
		return CommWasteRate(srv.Stats()[burnIn:])
	}
	if testing.Short() {
		// Reduced scale: too few rounds for the statistical comparison to
		// be reliable, so just exercise both selection paths end to end
		// and sanity-check the waste ledger.
		for _, mode := range []rl.Mode{rl.ModeCS, rl.ModeRandom} {
			if w := run(mode, 21); w < 0 || w > 1 {
				t.Fatalf("mode %v waste rate %v outside [0,1]", mode, w)
			}
		}
		return
	}
	wasteRL := (run(rl.ModeCS, 21) + run(rl.ModeCS, 22) + run(rl.ModeCS, 23)) / 3
	wasteRnd := (run(rl.ModeRandom, 21) + run(rl.ModeRandom, 22) + run(rl.ModeRandom, 23)) / 3
	if wasteRL >= wasteRnd {
		t.Fatalf("RL-CS waste %.3f should be below Random %.3f", wasteRL, wasteRnd)
	}
}

func TestFederatedTrainingImproves(t *testing.T) {
	pool := testPool(t)
	clients, test := testClients(t, 8, pool)
	srv, err := NewServer(Config{
		Model: testModelCfg(), Pool: prune.Config{P: 3},
		ClientsPerRound: 4, Train: TrainConfig{LocalEpochs: 2, BatchSize: 12, LR: 0.12, Momentum: 0.5}, Seed: 31,
	}, clients)
	if err != nil {
		t.Fatal(err)
	}
	m0, err := srv.GlobalModel()
	if err != nil {
		t.Fatal(err)
	}
	accBefore := eval.Accuracy(m0, test, 40)
	// Heterogeneous FL has a warm-up phase: the full model's deep channels
	// stay at their random initialisation until enough L-level dispatches
	// have trained them, so give the run enough rounds to take off. In
	// -short mode the run is cut to the warm-up itself: the improvement
	// bound cannot be asserted yet, so only require that training does not
	// diverge.
	rounds := 14
	if testing.Short() {
		rounds = 3
	}
	if err := srv.Run(rounds, nil); err != nil {
		t.Fatal(err)
	}
	m1, err := srv.GlobalModel()
	if err != nil {
		t.Fatal(err)
	}
	accAfter := eval.Accuracy(m1, test, 40)
	if testing.Short() {
		if accAfter < accBefore-0.1 {
			t.Fatalf("accuracy %.3f -> %.3f: training diverged", accBefore, accAfter)
		}
		return
	}
	if accAfter <= accBefore+0.15 {
		t.Fatalf("accuracy %.3f -> %.3f: federated training did not improve", accBefore, accAfter)
	}
}

func TestTrainLocalRejectsBadConfig(t *testing.T) {
	if _, err := TrainLocal(testModelCfg(), nil, nil, nil, TrainConfig{}, nil); err == nil {
		t.Fatal("expected error for zero train config")
	}
}

func TestDeterministicRuns(t *testing.T) {
	// Same seeds must reproduce the exact global state, goroutines or not.
	run := func() map[string]float64 {
		pool := testPool(t)
		clients, _ := testClients(t, 6, pool)
		srv, err := NewServer(Config{
			Model: testModelCfg(), Pool: prune.Config{P: 3},
			ClientsPerRound: 3, Train: quickTrain(), Seed: 41, Parallelism: 3,
		}, clients)
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.Run(2, nil); err != nil {
			t.Fatal(err)
		}
		sums := map[string]float64{}
		for name, v := range srv.Global() {
			sums[name] = v.Sum()
		}
		return sums
	}
	a, b := run(), run()
	for name, v := range a {
		if b[name] != v {
			t.Fatalf("parameter %q differs across identical runs", name)
		}
	}
}
