package core

import (
	"math/rand"
	"testing"

	"adaptivefl/internal/data"
	"adaptivefl/internal/eval"
	"adaptivefl/internal/prune"
	"adaptivefl/internal/wire"
)

// codecTestClients mirrors testClients with a much larger test split, so
// a 2-point accuracy comparison is not drowned by evaluation noise (at 80
// test samples one flipped prediction already moves 1.25 points).
func codecTestClients(t *testing.T, n int, pool *prune.Pool) ([]*Client, *data.Dataset) {
	t.Helper()
	cfg := data.SynthConfig{Name: "t", Classes: 4, Channels: 3, Size: 32,
		Train: n * 24, Test: 400, Noise: 0.3, MaxShift: 1, Seed: 11}
	train, test := data.Generate(cfg)
	rng := rand.New(rand.NewSource(5))
	parts := data.PartitionIID(rng, train.Len(), n)
	devices := NewPopulation(rng, n, [3]float64{4, 3, 3}, pool, DefaultDeviceModel())
	clients := make([]*Client, n)
	for i := range clients {
		clients[i] = &Client{ID: i, Data: train.Subset(parts[i]), Device: devices[i]}
	}
	return clients, test
}

// runWithCodec executes a small synthetic federation with the given wire
// codec and returns the final full-model accuracy plus the byte totals
// from the round ledger (real encoded sizes, not estimates).
func runWithCodec(t *testing.T, codec wire.Codec, rounds int) (acc float64, sent, back int64) {
	t.Helper()
	pool := testPool(t)
	clients, test := codecTestClients(t, 8, pool)
	srv, err := NewServer(Config{
		Model: testModelCfg(), Pool: prune.Config{P: 3},
		ClientsPerRound: 4,
		Train:           TrainConfig{LocalEpochs: 2, BatchSize: 12, LR: 0.12, Momentum: 0.5},
		Seed:            31, Codec: codec,
	}, clients)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Run(rounds, nil); err != nil {
		t.Fatal(err)
	}
	for _, st := range srv.Stats() {
		if st.SentBytes == 0 {
			t.Fatalf("round %d recorded no encoded bytes", st.Round)
		}
	}
	sent, back = TotalWireBytes(srv.Stats())
	m, err := srv.GlobalModel()
	if err != nil {
		t.Fatal(err)
	}
	return eval.Accuracy(m, test, 40), sent, back
}

// TestQ8CutsBytesKeepsAccuracy is the wire subsystem's acceptance bar:
// on the same seed, int8 quantization must cut the bytes a round moves by
// ≥4× versus the raw float64 encoding while landing within 2 accuracy
// points of the raw baseline.
func TestQ8CutsBytesKeepsAccuracy(t *testing.T) {
	rounds := 14
	if testing.Short() {
		// The byte-ratio bound holds from round one; only the accuracy
		// comparison needs a full training run.
		rounds = 2
	}
	rawAcc, rawSent, rawBack := runWithCodec(t, wire.Raw{}, rounds)
	q8Acc, q8Sent, q8Back := runWithCodec(t, wire.Q8{}, rounds)

	rawTotal := rawSent + rawBack
	q8Total := q8Sent + q8Back
	if ratio := float64(rawTotal) / float64(q8Total); ratio < 4 {
		t.Fatalf("q8 moved %d bytes vs raw %d — %.2fx, want ≥4x", q8Total, rawTotal, ratio)
	}
	if testing.Short() {
		return
	}
	// One-sided: quantization must not cost more than 2 points. Landing
	// above the baseline is fine (int8 noise can act as regularisation).
	if q8Acc < rawAcc-0.02 {
		t.Fatalf("q8 accuracy %.4f vs raw %.4f — %.1f points below, want ≤2", q8Acc, rawAcc, (rawAcc-q8Acc)*100)
	}
}

// TestDeltaUplinkSparsity: with the delta codec, uploads (which diff
// against the dispatched reference) must come back much smaller than the
// dense dispatches going down.
func TestDeltaUplinkSparsity(t *testing.T) {
	_, sent, back := runWithCodec(t, wire.NewDeltaTopK(), 2)
	if back == 0 {
		t.Fatal("no upload bytes recorded")
	}
	// Downlink is dense f32 (no reference yet); uplink keeps ~10% of
	// coordinates. Sent and returned cover different model sizes, so just
	// require a clear asymmetry.
	if float64(back) > 0.5*float64(sent) {
		t.Fatalf("delta uplink %d bytes vs downlink %d — expected sparse uploads", back, sent)
	}
}
