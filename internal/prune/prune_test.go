package prune

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"adaptivefl/internal/models"
	"adaptivefl/internal/nn"
	"adaptivefl/internal/tensor"
)

func vggFull() models.Config {
	return models.Config{Arch: models.VGG16, NumClasses: 10}
}

func vggTiny() models.Config {
	return models.Config{Arch: models.VGG16, NumClasses: 5, WidthScale: 0.125, Seed: 1}
}

// TestTable1VGG16Splits reproduces the paper's Table 1: the parameter
// count and MAC count of every pool member of full-scale VGG16 (p = 3)
// must match the published values within 1.5%. This pins down the exact
// pruning semantics (outputs pruned from layer I+1 on, inputs following
// the previous layer's width).
func TestTable1VGG16Splits(t *testing.T) {
	pool, err := BuildPool(vggFull(), Config{P: 3})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]struct {
		params, macs float64
	}{
		"L1": {33.65e6, 333.22e6},
		"M1": {16.81e6, 272.17e6},
		"M2": {15.41e6, 239.95e6},
		"M3": {14.84e6, 203.41e6},
		"S1": {8.39e6, 239.00e6},
		"S2": {6.48e6, 191.31e6},
		"S3": {5.67e6, 139.07e6},
	}
	if len(pool.Members) != 7 {
		t.Fatalf("pool has %d members, want 7", len(pool.Members))
	}
	for _, m := range pool.Members {
		w, ok := want[m.Name()]
		if !ok {
			t.Fatalf("unexpected pool member %s", m.Name())
		}
		if rel := math.Abs(float64(m.Size)-w.params) / w.params; rel > 0.015 {
			t.Errorf("%s: params %d vs paper %.0f (rel err %.3f)", m.Name(), m.Size, w.params, rel)
		}
		if rel := math.Abs(float64(m.MACs)-w.macs) / w.macs; rel > 0.015 {
			t.Errorf("%s: MACs %d vs paper %.0f (rel err %.3f)", m.Name(), m.MACs, w.macs, rel)
		}
	}
}

func TestTable1SplitConfiguration(t *testing.T) {
	pool, err := BuildPool(vggFull(), Config{P: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Table 1's (r_w, I) assignments: S3=(0.40,4) ... M1=(0.66,8).
	cases := map[string]struct {
		rw float64
		i  int
	}{
		"S3": {0.40, 4}, "S2": {0.40, 6}, "S1": {0.40, 8},
		"M3": {0.66, 4}, "M2": {0.66, 6}, "M1": {0.66, 8},
	}
	for _, m := range pool.Members {
		if m.Level == LevelL {
			continue
		}
		c := cases[m.Name()]
		if m.Rw != c.rw || m.I != c.i {
			t.Errorf("%s: got (rw=%.2f, I=%d), want (%.2f, %d)", m.Name(), m.Rw, m.I, c.rw, c.i)
		}
	}
}

func TestPlanWidths(t *testing.T) {
	full := []int{10, 20, 30}
	w := PlanWidths(full, 0.5, 1)
	if w[0] != 10 || w[1] != 10 || w[2] != 15 {
		t.Fatalf("PlanWidths = %v", w)
	}
	w = PlanWidths(full, 0.04, 0)
	if w[0] != 1 {
		t.Fatalf("widths must be at least 1, got %v", w)
	}
	w = PlanWidths(full, 0.5, 3)
	for i := range full {
		if w[i] != full[i] {
			t.Fatalf("I=n must keep full widths, got %v", w)
		}
	}
}

func TestPoolOrderingAscending(t *testing.T) {
	for _, arch := range []models.Arch{models.VGG16, models.ResNet18, models.MobileNetV2} {
		cfg := models.Config{Arch: arch, NumClasses: 10}
		pool, err := BuildPool(cfg, Config{P: 3})
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(pool.Members); i++ {
			if pool.Members[i].Size <= pool.Members[i-1].Size {
				t.Errorf("%s: pool not ascending at %d: %d then %d",
					arch, i, pool.Members[i-1].Size, pool.Members[i].Size)
			}
		}
		if pool.Largest().Level != LevelL {
			t.Errorf("%s: largest member is %s, want L", arch, pool.Largest().Name())
		}
		if pool.Smallest().Name() != "S3" {
			t.Errorf("%s: smallest member is %s, want S3", arch, pool.Smallest().Name())
		}
	}
}

func TestCoarsePoolP1(t *testing.T) {
	pool, err := BuildPool(vggFull(), Config{P: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(pool.Members) != 3 {
		t.Fatalf("coarse pool has %d members, want 3", len(pool.Members))
	}
	names := []string{"S1", "M1", "L1"}
	for i, m := range pool.Members {
		if m.Name() != names[i] {
			t.Errorf("member %d = %s, want %s", i, m.Name(), names[i])
		}
	}
	// Coarse members use the largest I choice.
	if pool.Members[0].I != 8 {
		t.Errorf("coarse S1 has I=%d, want 8", pool.Members[0].I)
	}
}

func TestBuildPoolRejectsBadConfig(t *testing.T) {
	if _, err := BuildPool(vggFull(), Config{P: 0}); err == nil {
		t.Fatal("expected error for P=0")
	}
	if _, err := BuildPool(vggFull(), Config{P: 5}); err == nil {
		t.Fatal("expected error for P exceeding I choices")
	}
	if _, err := BuildPool(models.Config{Arch: "nope", NumClasses: 2}, Config{P: 1}); err == nil {
		t.Fatal("expected error for bad model config")
	}
}

func TestDerivability(t *testing.T) {
	pool, err := BuildPool(vggFull(), Config{P: 3})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Submodel{}
	for _, m := range pool.Members {
		byName[m.Name()] = m
	}
	// Everything is derivable from L1.
	for _, m := range pool.Members {
		if !m.DerivableFrom(byName["L1"]) {
			t.Errorf("%s should be derivable from L1", m.Name())
		}
	}
	// S1 (0.40, I=8) is smaller than M3 (0.66, I=4) but NOT derivable:
	// S1 keeps layers 5-8 at full width, which M3 has already pruned.
	if byName["S1"].Size >= byName["M3"].Size {
		t.Fatal("premise broken: S1 should be smaller than M3")
	}
	if byName["S1"].DerivableFrom(byName["M3"]) {
		t.Error("S1 must not be derivable from M3")
	}
	// Same level: smaller I derivable from larger I.
	if !byName["S3"].DerivableFrom(byName["S1"]) {
		t.Error("S3 should be derivable from S1")
	}
	if byName["S1"].DerivableFrom(byName["S3"]) {
		t.Error("S1 must not be derivable from S3")
	}
	// Cross level with both rw and I smaller: derivable.
	if !byName["S3"].DerivableFrom(byName["M1"]) {
		t.Error("S3 should be derivable from M1")
	}
}

func TestLargestFit(t *testing.T) {
	pool, err := BuildPool(vggFull(), Config{P: 3})
	if err != nil {
		t.Fatal(err)
	}
	l1 := pool.Largest()
	// Plenty of capacity: keep the received model.
	got, ok := pool.LargestFit(l1, l1.Size)
	if !ok || got.Name() != "L1" {
		t.Fatalf("LargestFit(L1, full) = %v %v, want L1", got.Name(), ok)
	}
	// Capacity just below M1: best derivable-from-L1 fit below that size.
	byName := map[string]Submodel{}
	for _, m := range pool.Members {
		byName[m.Name()] = m
	}
	got, ok = pool.LargestFit(l1, byName["M1"].Size-1)
	if !ok || got.Name() != "M2" {
		t.Fatalf("LargestFit(L1, <M1) = %s, want M2", got.Name())
	}
	// Received M3 (I=4): S1 (I=8) and S2 (I=6) are smaller but keep
	// layers M3 has already pruned, so only S3 (I=4) is derivable.
	got, ok = pool.LargestFit(byName["M3"], byName["M3"].Size-1)
	if !ok || got.Name() != "S3" {
		t.Fatalf("LargestFit(M3, <M3) = %s, want S3 (S1/S2 not derivable)", got.Name())
	}
	// No capacity at all.
	if _, ok := pool.LargestFit(l1, 0); ok {
		t.Fatal("LargestFit with zero capacity should fail")
	}
}

func TestExtractStateShapesAndValues(t *testing.T) {
	cfg := vggTiny()
	pool, err := BuildPool(cfg, Config{P: 3})
	if err != nil {
		t.Fatal(err)
	}
	fullModel := models.MustBuild(cfg, nil)
	global := nn.StateDict(fullModel)
	for _, m := range pool.Members {
		st, err := pool.ExtractState(global, m)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		// Every extracted tensor must be the prefix block of the global.
		for name, v := range st {
			g := global[name]
			if !tensor.PrefixFits(v, g) {
				t.Fatalf("%s/%s: %v not prefix of %v", m.Name(), name, v.Shape, g.Shape)
			}
			p := tensor.ExtractPrefix(g, v.Shape)
			for i := range v.Data {
				if v.Data[i] != p.Data[i] {
					t.Fatalf("%s/%s: extracted values differ", m.Name(), name)
				}
			}
		}
		// The extracted state must load into a model built at m's widths.
		sub, err := models.Build(cfg, m.Widths)
		if err != nil {
			t.Fatal(err)
		}
		if err := nn.LoadState(sub, st); err != nil {
			t.Fatalf("%s: LoadState: %v", m.Name(), err)
		}
	}
}

func TestExtractFullIsIdentity(t *testing.T) {
	cfg := vggTiny()
	pool, err := BuildPool(cfg, Config{P: 3})
	if err != nil {
		t.Fatal(err)
	}
	fullModel := models.MustBuild(cfg, nil)
	global := nn.StateDict(fullModel)
	st, err := pool.ExtractState(global, pool.Largest())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	sub := models.MustBuild(cfg, nil)
	if err := nn.LoadState(sub, st); err != nil {
		t.Fatal(err)
	}
	x := tensor.Randn(rng, 1, 2, 3, 32, 32)
	ya := fullModel.Forward(x, false)
	yb := sub.Forward(x, false)
	for i := range ya.Data {
		if math.Abs(ya.Data[i]-yb.Data[i]) > 1e-12 {
			t.Fatal("full-extraction round trip changed the model")
		}
	}
}

func TestResourceAwareSearch(t *testing.T) {
	cfg := vggFull()
	grid := []float64{0.40, 0.66, 1.0}
	full := models.CountStats(cfg, nil).Params
	// With full capacity the search keeps everything.
	rw, i, _, ok := ResourceAwareSearch(cfg, grid, 1.0, 15, full)
	if !ok || rw != 1.0 || i != 15 {
		t.Fatalf("search(full cap) = (%.2f,%d,%v), want (1.0,15,true)", rw, i, ok)
	}
	// Capacity at 50%: Table 1 says M1 = (0.66, I=8) is the best fit.
	rw, i, widths, ok := ResourceAwareSearch(cfg, grid, 1.0, 15, full/2)
	if !ok {
		t.Fatal("search(half cap) failed")
	}
	if rw != 0.66 || i != 8 {
		t.Fatalf("search(half cap) = (%.2f,%d), want (0.66,8)", rw, i)
	}
	if got := models.CountStats(cfg, widths).Params; got > full/2 {
		t.Fatalf("search result size %d exceeds capacity %d", got, full/2)
	}
	// Impossible capacity.
	if _, _, _, ok := ResourceAwareSearch(cfg, grid, 1.0, 15, 10); ok {
		t.Fatal("search with absurd capacity should fail")
	}
}

func TestResourceAwareSearchMonotoneProperty(t *testing.T) {
	// Property: the best-fit size is monotone non-decreasing in capacity.
	cfg := models.Config{Arch: models.ResNet18, NumClasses: 10, WidthScale: 0.25}
	grid := []float64{0.40, 0.66, 1.0}
	full := models.CountStats(cfg, nil).Params
	f := func(aRaw, bRaw uint32) bool {
		a := int64(aRaw)%full + 1
		b := int64(bRaw)%full + 1
		if a > b {
			a, b = b, a
		}
		sizeAt := func(cap int64) int64 {
			_, _, w, ok := ResourceAwareSearch(cfg, grid, 1.0, 4, cap)
			if !ok {
				return 0
			}
			return models.CountStats(cfg, w).Params
		}
		return sizeAt(a) <= sizeAt(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPoolMembersLoadableAcrossArchs(t *testing.T) {
	for _, arch := range []models.Arch{models.ResNet18, models.MobileNetV2} {
		cfg := models.Config{Arch: arch, NumClasses: 5, WidthScale: 0.125, Seed: 2}
		pool, err := BuildPool(cfg, Config{P: 3})
		if err != nil {
			t.Fatal(err)
		}
		global := nn.StateDict(models.MustBuild(cfg, nil))
		rng := rand.New(rand.NewSource(8))
		x := tensor.Randn(rng, 1, 1, 3, 32, 32)
		for _, m := range pool.Members {
			st, err := pool.ExtractState(global, m)
			if err != nil {
				t.Fatalf("%s/%s: %v", arch, m.Name(), err)
			}
			sub := models.MustBuild(cfg, m.Widths)
			if err := nn.LoadState(sub, st); err != nil {
				t.Fatalf("%s/%s: %v", arch, m.Name(), err)
			}
			y := sub.Forward(x, false)
			if y.Shape[1] != cfg.NumClasses {
				t.Fatalf("%s/%s: bad output shape %v", arch, m.Name(), y.Shape)
			}
		}
	}
}
