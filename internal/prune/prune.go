// Package prune implements AdaptiveFL's fine-grained width-wise model
// pruning mechanism (paper §3.2): submodels are produced by keeping the
// leading round(F_k·r_w) channels of every width unit k > I while units
// k ≤ I keep their full width F_k, where r_w is the width pruning ratio
// and I the starting pruning layer (I ≥ τ so all submodels share shallow
// layers).
//
// The package builds the model pool R = {S_p,…,S_1, M_p,…,M_1, L_1}
// (paper Algorithm 1 line 4 / Table 1), decides derivability between pool
// members, slices submodel weights out of the global state, and performs
// the on-device available-resource-aware pruning search.
package prune

import (
	"fmt"
	"sort"

	"adaptivefl/internal/models"
	"adaptivefl/internal/nn"
	"adaptivefl/internal/tensor"
)

// Level is a submodel size level.
type Level int

// The three size levels of the pool.
const (
	LevelS Level = iota
	LevelM
	LevelL
)

// NumLevels is the number of size levels (the curiosity table's rows).
const NumLevels = 3

// String returns the paper's level letter.
func (l Level) String() string {
	switch l {
	case LevelS:
		return "S"
	case LevelM:
		return "M"
	case LevelL:
		return "L"
	}
	return fmt.Sprintf("Level(%d)", int(l))
}

// DefaultRw holds the paper's per-level width ratios (Table 1).
var DefaultRw = map[Level]float64{LevelS: 0.40, LevelM: 0.66, LevelL: 1.0}

// Submodel is one pool member: a (level, r_w, I) triple with its realised
// width vector and trainable-parameter size.
type Submodel struct {
	Index  int   // position in the pool, ascending by construction order
	Level  Level // S, M or L
	Sub    int   // 1-based sublevel: S_1 is the largest S (paper notation)
	Rw     float64
	I      int // starting pruning layer; 0 for the unpruned L_1
	Widths []int
	Size   int64 // trainable parameters
	MACs   int64
}

// Name renders the paper notation, e.g. "S2" or "L1".
func (s Submodel) Name() string { return fmt.Sprintf("%s%d", s.Level, s.Sub) }

// DerivableFrom reports whether s can be produced on-device from received
// by further prefix pruning, i.e. s's widths are elementwise ≤ received's.
// (Equivalently r_w(s) ≤ r_w(received) and I(s) ≤ I(received); the width
// comparison also covers the unpruned L_1.)
func (s Submodel) DerivableFrom(received Submodel) bool {
	if len(s.Widths) != len(received.Widths) {
		return false
	}
	for i := range s.Widths {
		if s.Widths[i] > received.Widths[i] {
			return false
		}
	}
	return true
}

// PlanWidths realises the (r_w, I) pruning rule on a full width vector:
// unit k (1-based) keeps full[k-1] channels when k ≤ I and
// max(1, floor(full[k-1]·r_w)) channels when k > I. Floor (W[:d·r_w] slice
// semantics) is what reproduces Table 1's sizes exactly — e.g. M1 =
// floor(512·0.66) = 337 channels gives 16.81M parameters, ratio 0.50.
func PlanWidths(full []int, rw float64, i int) []int {
	widths := make([]int, len(full))
	for k := range full {
		if k+1 <= i || rw >= 1 {
			widths[k] = full[k]
			continue
		}
		w := int(float64(full[k]) * rw)
		if w < 1 {
			w = 1
		}
		widths[k] = w
	}
	return widths
}

// Config controls pool construction.
type Config struct {
	// P is the number of submodels per S/M level (paper hyperparameter p).
	// P = 1 is the coarse-grained ablation; the paper's default is 3.
	P int
	// RwS / RwM override the level width ratios; zero means the defaults
	// (0.40 and 0.66).
	RwS, RwM float64
}

// Pool is the model pool R in ascending size-level order:
// index 0 = S_p (smallest) … index 2P = L_1 (the full global model).
type Pool struct {
	Members []Submodel
	P       int
	Spec    models.Spec
	Model   models.Config
}

// BuildPool splits an architecture into the 2p+1 pool members.
func BuildPool(mcfg models.Config, pcfg Config) (*Pool, error) {
	if err := mcfg.Validate(); err != nil {
		return nil, err
	}
	if pcfg.P < 1 {
		return nil, fmt.Errorf("prune: P must be >= 1, got %d", pcfg.P)
	}
	spec := mcfg.Spec()
	if pcfg.P > len(spec.IChoices) {
		return nil, fmt.Errorf("prune: P=%d exceeds the %d I-choices of %s", pcfg.P, len(spec.IChoices), mcfg.Arch)
	}
	rwS, rwM := pcfg.RwS, pcfg.RwM
	if rwS == 0 {
		rwS = DefaultRw[LevelS]
	}
	if rwM == 0 {
		rwM = DefaultRw[LevelM]
	}
	// Use the largest P of the I choices, ascending: S_p has the smallest
	// I (most layers pruned), S_1 the largest.
	iChoices := spec.IChoices[len(spec.IChoices)-pcfg.P:]

	pool := &Pool{P: pcfg.P, Spec: spec, Model: mcfg}
	add := func(level Level, sub int, rw float64, i int) {
		widths := PlanWidths(spec.FullWidths, rw, i)
		st := models.CountStats(mcfg, widths)
		pool.Members = append(pool.Members, Submodel{
			Index: len(pool.Members), Level: level, Sub: sub,
			Rw: rw, I: i, Widths: widths, Size: st.Params, MACs: st.MACs,
		})
	}
	for j, i := range iChoices {
		add(LevelS, pcfg.P-j, rwS, i)
	}
	for j, i := range iChoices {
		add(LevelM, pcfg.P-j, rwM, i)
	}
	full := append([]int(nil), spec.FullWidths...)
	st := models.CountStats(mcfg, full)
	pool.Members = append(pool.Members, Submodel{
		Index: len(pool.Members), Level: LevelL, Sub: 1,
		Rw: 1, I: len(full), Widths: full, Size: st.Params, MACs: st.MACs,
	})
	// Algorithm 1's resource-table updates treat the pool as ordered by
	// size ("for t = m … L_1"). For VGG16 the construction order already
	// is ascending, but for architectures whose deep units dominate the
	// parameter count the levels can interleave (e.g. MobileNetV2's S_1
	// outweighs M_3), so sort explicitly.
	sort.SliceStable(pool.Members, func(i, j int) bool {
		return pool.Members[i].Size < pool.Members[j].Size
	})
	for i := range pool.Members {
		pool.Members[i].Index = i
	}
	return pool, nil
}

// Largest returns the unpruned L_1 member (the global model's shape).
func (p *Pool) Largest() Submodel { return p.Members[len(p.Members)-1] }

// Smallest returns S_p, the smallest member.
func (p *Pool) Smallest() Submodel { return p.Members[0] }

// ByLevel returns the members of one level, ascending by size.
func (p *Pool) ByLevel(l Level) []Submodel {
	var out []Submodel
	for _, m := range p.Members {
		if m.Level == l {
			out = append(out, m)
		}
	}
	return out
}

// LargestFit returns the largest pool member that is derivable from the
// received submodel and whose size fits capacity — the device-side
// available-resource-aware pruning of paper §3.2 restricted to pool
// members (Algorithm 1 treats the returned model m′ as a pool member).
// ok is false when not even a derivable member fits.
func (p *Pool) LargestFit(received Submodel, capacity int64) (Submodel, bool) {
	for i := len(p.Members) - 1; i >= 0; i-- {
		m := p.Members[i]
		if m.Size <= capacity && m.DerivableFrom(received) {
			return m, true
		}
	}
	return Submodel{}, false
}

// ExtractState slices the submodel's parameters out of a full-width global
// state dict: every tensor is the prefix block matching the shapes of a
// model built at the submodel's widths.
func (p *Pool) ExtractState(global nn.State, sub Submodel) (nn.State, error) {
	target, err := models.Build(p.Model, sub.Widths)
	if err != nil {
		return nil, err
	}
	return ExtractForModel(global, target)
}

// ParamHolder is anything exposing named parameters — *models.Model, a
// plain nn.Layer, or composite wrappers like ScaleFL's multi-exit nets.
type ParamHolder interface {
	Params() []*nn.Param
}

// ExtractForModel slices, for each parameter of target, the prefix block
// of the same name from the global state.
func ExtractForModel(global nn.State, target ParamHolder) (nn.State, error) {
	out := make(nn.State)
	for _, param := range target.Params() {
		g, ok := global[param.Name]
		if !ok {
			return nil, fmt.Errorf("prune: global state missing %q", param.Name)
		}
		if !tensor.PrefixFits(param.Val, g) {
			return nil, fmt.Errorf("prune: %q shape %v does not fit global %v", param.Name, param.Val.Shape, g.Shape)
		}
		out[param.Name] = tensor.ExtractPrefix(g, param.Val.Shape)
	}
	return out, nil
}

// ResourceAwareSearch is the paper's continuous on-device pruning
// objective: argmax over (r_w, I) of model size subject to
// size ≤ capacity and I ≥ τ. rwGrid is the candidate ratio set (it should
// include the received model's own ratio); maxI caps I at the received
// model's starting layer so the result stays derivable.
func ResourceAwareSearch(mcfg models.Config, rwGrid []float64, maxRw float64, maxI int, capacity int64) (rw float64, i int, widths []int, ok bool) {
	spec := mcfg.Spec()
	if maxI > len(spec.FullWidths) {
		maxI = len(spec.FullWidths)
	}
	grid := append([]float64(nil), rwGrid...)
	sort.Sort(sort.Reverse(sort.Float64Slice(grid)))
	var bestSize int64 = -1
	// Descending iteration with a strict improvement test prefers larger
	// r_w and larger I on size ties (at I = n every ratio yields the full
	// model; report it as r_w = maxRw rather than an arbitrary grid entry).
	for _, r := range grid {
		if r > maxRw {
			continue
		}
		for cand := maxI; cand >= spec.Tau; cand-- {
			w := PlanWidths(spec.FullWidths, r, cand)
			size := models.CountStats(mcfg, w).Params
			if size <= capacity && size > bestSize {
				bestSize, rw, i, widths, ok = size, r, cand, w, true
			}
		}
	}
	return rw, i, widths, ok
}
