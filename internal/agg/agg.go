// Package agg implements AdaptiveFL's heterogeneous model aggregation
// (paper Algorithm 2): every uploaded submodel parameter is a prefix block
// of the corresponding global tensor, so the server accumulates
// weight·value and weight per element and divides; elements not covered by
// any upload keep their previous global value.
package agg

import (
	"adaptivefl/internal/nn"
	"adaptivefl/internal/tensor"
)

// Update is one client's trained submodel with its aggregation weight
// (the paper uses the local dataset size |d_c|).
type Update struct {
	State  nn.State
	Weight float64
}

// Aggregate merges heterogeneous updates into a new global state. Every
// tensor in every update must have the same name as — and fit as a prefix
// block of — the matching global tensor, and every value must be finite
// (a NaN or Inf would silently poison every element it touches). Updates
// may omit parameters they do not hold; parameters no update covers are
// carried over unchanged.
func Aggregate(global nn.State, updates []Update) (nn.State, error) {
	if err := validateUpdates(global, updates); err != nil {
		return nil, err
	}
	out := make(nn.State, len(global))
	for name, g := range global {
		acc := tensor.New(g.Shape...)
		cnt := tensor.New(g.Shape...)
		covered := false
		for _, u := range updates {
			if v, ok := u.State[name]; ok {
				tensor.AccumulatePrefix(acc, cnt, v, u.Weight)
				covered = true
			}
		}
		res := g.Clone()
		if covered {
			for i := range res.Data {
				if cnt.Data[i] > 0 {
					res.Data[i] = acc.Data[i] / cnt.Data[i]
				}
			}
		}
		out[name] = res
	}
	return out, nil
}
