package agg

import (
	"math"
	"testing"

	"adaptivefl/internal/nn"
	"adaptivefl/internal/tensor"
)

// vec builds a width-len(vals) 1-D single-tensor update.
func vec(weight float64, vals ...float64) Update {
	return Update{State: nn.State{"w": tensor.FromSlice(vals, len(vals))}, Weight: weight}
}

func scalarGlobal() nn.State { return nn.State{"w": tensor.FromSlice([]float64{0}, 1)} }

func TestTrimmedMeanDiscardsOutliers(t *testing.T) {
	// Five scalar updates, two of them wild; frac=0.2 trims one per side,
	// so both outliers go and the honest middle survives untouched.
	updates := []Update{vec(1, 1), vec(1, 2), vec(1, 3), vec(7, 1e6), vec(9, -1e6)}
	out, err := TrimmedMean{Frac: 0.2}.Aggregate(scalarGlobal(), updates)
	if err != nil {
		t.Fatal(err)
	}
	if got := out["w"].Data[0]; got != 2 {
		t.Fatalf("trimmed mean = %v, want 2 (outliers and their weights ignored)", got)
	}
}

func TestTrimmedMeanFallbackAtPrefixBoundary(t *testing.T) {
	// Width-2 global; only one update reaches element 1. With n=5 and
	// frac=0.2 the trim count is 1, so element 0 (coverage 5) trims while
	// element 1 (coverage 1 < 2t+1) falls back to the weighted mean —
	// i.e. the lone covering value, exactly what Aggregate computes.
	global := nn.State{"w": tensor.FromSlice([]float64{0, 0}, 2)}
	updates := []Update{
		vec(1, 10, 100),
		vec(1, 1), vec(1, 2), vec(1, 3), vec(1, 4),
	}
	out, err := TrimmedMean{Frac: 0.2}.Aggregate(global, updates)
	if err != nil {
		t.Fatal(err)
	}
	w := out["w"]
	// Element 0: sorted {1,2,3,4,10}, trim one per side → mean(2,3,4)=3.
	if w.Data[0] != 3 {
		t.Fatalf("element 0 = %v, want 3", w.Data[0])
	}
	if w.Data[1] != 100 {
		t.Fatalf("prefix-boundary element = %v, want the weighted-mean fallback 100", w.Data[1])
	}
}

func TestTrimmedMeanAllAdversarial(t *testing.T) {
	// A unanimous adversarial set defeats any order statistic; the policy
	// must still terminate with a finite, deterministic result (the
	// adversarial consensus), never an error or NaN.
	updates := []Update{vec(1, 50), vec(1, 50), vec(1, 50)}
	out, err := TrimmedMean{Frac: 0.3}.Aggregate(scalarGlobal(), updates)
	if err != nil {
		t.Fatal(err)
	}
	if got := out["w"].Data[0]; got != 50 {
		t.Fatalf("unanimous set = %v, want 50", got)
	}
}

func TestPoliciesSingleUpdateMatchMean(t *testing.T) {
	// One honest update: every policy degenerates to the weighted mean.
	// Trim has nothing to cut, Krum has too few candidates to score.
	global := nn.State{"w": tensor.FromSlice([]float64{0, 0, 0}, 3)}
	updates := []Update{vec(4, 7, 8, 9)}
	want, err := Aggregate(global, updates)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []Policy{TrimmedMean{Frac: 0.2}, Krum{Frac: 0.2, M: 1}, Mean{}} {
		out, err := p.Aggregate(global, updates)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		for i, x := range out["w"].Data {
			if x != want["w"].Data[i] {
				t.Fatalf("%s diverged from the weighted mean on a single update: %v vs %v",
					p.Name(), out["w"].Data, want["w"].Data)
			}
		}
	}
}

func TestKrumSelectsFromHonestCluster(t *testing.T) {
	// Three honest updates cluster near 1, two attackers sit far out. With
	// frac=0.4 (f=2, one scored neighbor) the attackers' nearest peers are
	// still distant, so classic Krum (m=1) must pick an honest update.
	// Honest values are exact in binary so their scores tie exactly.
	updates := []Update{vec(1, 1.0), vec(1, 1.25), vec(1, 0.75), vec(1, -9), vec(1, 11)}
	out, err := Krum{Frac: 0.4, M: 1}.Aggregate(scalarGlobal(), updates)
	if err != nil {
		t.Fatal(err)
	}
	// All three honest updates tie on score; the stable sort breaks the
	// tie on update order, so the deterministic winner is the first.
	if got := out["w"].Data[0]; got != 1.0 {
		t.Fatalf("krum picked %v, want the first honest update 1.0", got)
	}
}

func TestMultiKrumAveragesSelected(t *testing.T) {
	updates := []Update{vec(1, 1.0), vec(1, 1.25), vec(1, 0.75), vec(1, -9), vec(1, 11)}
	out, err := Krum{Frac: 0.4, M: 2}.Aggregate(scalarGlobal(), updates)
	if err != nil {
		t.Fatal(err)
	}
	// The honest scores tie exactly, so the stable order selects the first
	// two honest updates; equal weights average them.
	want := (1.0 + 1.25) / 2
	if got := out["w"].Data[0]; got != want {
		t.Fatalf("multi-krum = %v, want %v", got, want)
	}
}

func TestKrumAllAdversarialStillTerminates(t *testing.T) {
	// Every candidate hostile: Krum picks one of them — garbage in,
	// garbage out — but deterministically and without error.
	updates := []Update{vec(1, 100), vec(1, 101), vec(1, -100)}
	out, err := Krum{Frac: 0.3, M: 1}.Aggregate(scalarGlobal(), updates)
	if err != nil {
		t.Fatal(err)
	}
	got := out["w"].Data[0]
	if got != 100 && got != 101 && got != -100 {
		t.Fatalf("krum output %v is not one of the candidates", got)
	}
	if math.IsNaN(got) || math.IsInf(got, 0) {
		t.Fatalf("krum output %v is non-finite", got)
	}
}

func TestKrumHeterogeneousWidths(t *testing.T) {
	// Mixed submodel widths: distances are normalised by shared element
	// count, so a narrow honest update is comparable with a wide one, and
	// the wide attacker still scores worst.
	global := nn.State{"w": tensor.FromSlice([]float64{0, 0, 0, 0}, 4)}
	updates := []Update{
		vec(1, 1, 1, 1, 1), // honest, full width
		vec(1, 1, 1),       // honest, narrow
		vec(1, 1, 1),       // honest, narrow
		vec(1, 9, 9, 9, 9), // attacker, full width
	}
	out, err := Krum{Frac: 0.25, M: 1}.Aggregate(global, updates)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range out["w"].Data {
		if x != 1 {
			t.Fatalf("element %d = %v, want the honest value 1", i, x)
		}
	}
}

func TestClipperScalesOntoBall(t *testing.T) {
	ref := nn.State{"w": tensor.FromSlice([]float64{0, 0}, 2)}
	upd := nn.State{"w": tensor.FromSlice([]float64{3, 4}, 2)} // delta norm 5
	clipped, did := Clipper{Tau: 2.5}.Clip(ref, upd)
	if !did {
		t.Fatal("norm-5 delta against tau=2.5 must clip")
	}
	w := clipped["w"]
	if w.Data[0] != 1.5 || w.Data[1] != 2 {
		t.Fatalf("clipped = %v, want [1.5 2] (delta halved)", w.Data)
	}
	if upd["w"].Data[0] != 3 {
		t.Fatal("Clip mutated the input update")
	}
}

func TestClipperInsideBallPassesThrough(t *testing.T) {
	ref := nn.State{"w": tensor.FromSlice([]float64{0, 0}, 2)}
	upd := nn.State{"w": tensor.FromSlice([]float64{3, 4}, 2)}
	if _, did := (Clipper{Tau: 5}).Clip(ref, upd); did {
		t.Fatal("norm-5 delta against tau=5 must pass unclipped")
	}
	// A zero delta (norm 0) must never divide by zero.
	if _, did := (Clipper{Tau: 1}).Clip(ref, ref); did {
		t.Fatal("zero delta clipped")
	}
}

func TestClipperNarrowUpdate(t *testing.T) {
	// The reference is sliced to the update's own width before the norm is
	// taken, so a pruned upload clips against the state it was trained on.
	ref := nn.State{"w": tensor.FromSlice([]float64{1, 50}, 2)}
	upd := nn.State{"w": tensor.FromSlice([]float64{4}, 1)} // delta 3 vs ref prefix
	clipped, did := Clipper{Tau: 1}.Clip(ref, upd)
	if !did {
		t.Fatal("norm-3 delta against tau=1 must clip")
	}
	if got := clipped["w"].Data[0]; got != 2 {
		t.Fatalf("clipped = %v, want 2 (1 + 3/3)", got)
	}
	if len(clipped["w"].Data) != 1 {
		t.Fatal("clip changed the update's width")
	}
}

func TestPoliciesRejectInvalidUpdates(t *testing.T) {
	global := scalarGlobal()
	bad := []struct {
		name    string
		updates []Update
	}{
		{"non-finite value", []Update{vec(1, math.NaN())}},
		{"zero weight", []Update{vec(0, 1)}},
		{"oversized shape", []Update{{State: nn.State{"w": tensor.FromSlice([]float64{1, 2}, 2)}, Weight: 1}}},
		{"unknown parameter", []Update{{State: nn.State{"x": tensor.FromSlice([]float64{1}, 1)}, Weight: 1}}},
	}
	for _, p := range []Policy{Mean{}, TrimmedMean{Frac: 0.2}, Krum{Frac: 0.2, M: 1}} {
		for _, tc := range bad {
			if _, err := p.Aggregate(global, tc.updates); err == nil {
				t.Fatalf("%s accepted %s", p.Name(), tc.name)
			}
		}
	}
	if _, err := (TrimmedMean{Frac: 0.5}).Aggregate(global, []Update{vec(1, 1)}); err == nil {
		t.Fatal("trim frac=0.5 accepted")
	}
	if _, err := (Krum{Frac: -0.1, M: 1}).Aggregate(global, []Update{vec(1, 1)}); err == nil {
		t.Fatal("krum frac=-0.1 accepted")
	}
}

func TestParsePolicyGrammar(t *testing.T) {
	cases := []struct {
		spec     string
		wantPol  string
		wantClip float64 // 0 = no clipper
	}{
		{"", "mean", 0},
		{"mean", "mean", 0},
		{"trim", "trim:frac=0.2", 0},
		{"trim:frac=0.3", "trim:frac=0.3", 0},
		{"krum", "krum:frac=0.2,m=1", 0},
		{"krum:frac=0.1,m=3", "krum:frac=0.1,m=3", 0},
		{"clip", "mean", 5},
		{"clip:tau=2", "mean", 2},
		{"clip:tau=2+trim:frac=0.1", "trim:frac=0.1", 2},
		{"trim:frac=0.1+clip:tau=2", "trim:frac=0.1", 2},
	}
	for _, tc := range cases {
		pol, clip, err := ParsePolicy(tc.spec)
		if err != nil {
			t.Fatalf("ParsePolicy(%q): %v", tc.spec, err)
		}
		if pol.Name() != tc.wantPol {
			t.Fatalf("ParsePolicy(%q) policy = %q, want %q", tc.spec, pol.Name(), tc.wantPol)
		}
		switch {
		case tc.wantClip == 0 && clip != nil:
			t.Fatalf("ParsePolicy(%q) grew an unexpected clipper", tc.spec)
		case tc.wantClip != 0 && (clip == nil || clip.Tau != tc.wantClip):
			t.Fatalf("ParsePolicy(%q) clip = %+v, want tau=%v", tc.spec, clip, tc.wantClip)
		}
	}
}

func TestParsePolicyRoundTripsNames(t *testing.T) {
	// Policy.Name() is itself valid spec syntax, so ledgers and flags can
	// echo a policy back into ParsePolicy unchanged.
	for _, p := range []Policy{Mean{}, TrimmedMean{Frac: 0.25}, Krum{Frac: 0.3, M: 2}} {
		back, _, err := ParsePolicy(p.Name())
		if err != nil {
			t.Fatalf("ParsePolicy(%q): %v", p.Name(), err)
		}
		if back.Name() != p.Name() {
			t.Fatalf("round trip %q -> %q", p.Name(), back.Name())
		}
	}
}

func TestParsePolicyErrors(t *testing.T) {
	for _, spec := range []string{
		"bogus",
		"trim+krum",        // two aggregation rules
		"clip+clip",        // duplicate clipper
		"trim:frac=0.6",    // out of range
		"krum:frac=0.5",    // out of range
		"krum:m=0",         // m < 1
		"clip:tau=-1",      // non-positive tau
		"clip:tau=0",       // non-positive tau
		"trim:frac",        // not key=value
		"trim:frac=x",      // not a float
		"trim:zap=1",       // unknown param
		"krum:frac=0.2;m2", // stray separator
	} {
		if _, _, err := ParsePolicy(spec); err == nil {
			t.Fatalf("ParsePolicy(%q) accepted", spec)
		}
	}
}
