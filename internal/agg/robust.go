// Robust aggregation policies: composable Byzantine-resilient
// alternatives to the plain weighted mean, adapted to AdaptiveFL's
// heterogeneous prefix-block updates. Trimming and Krum scoring only ever
// consider the elements each width actually covers; where coverage is too
// thin to be robust the policies fall back to the weighted mean, so an
// attack-free run aggregates exactly like Aggregate does.
package agg

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"adaptivefl/internal/nn"
	"adaptivefl/internal/spec"
	"adaptivefl/internal/tensor"
)

// Policy merges a set of heterogeneous updates into a new global state.
// Implementations must be deterministic in (global, updates) — the
// serial-vs-parallel bit-identity property covers every policy.
type Policy interface {
	Name() string
	Aggregate(global nn.State, updates []Update) (nn.State, error)
}

// Mean is the default policy: the paper's weighted prefix mean
// (Aggregate), named so a ledger can report it.
type Mean struct{}

// Name implements Policy.
func (Mean) Name() string { return "mean" }

// Aggregate implements Policy.
func (Mean) Aggregate(global nn.State, updates []Update) (nn.State, error) {
	return Aggregate(global, updates)
}

// TrimmedMean is the coordinate-wise trimmed mean: per element, the
// t = ⌊Frac·n⌋ smallest and largest covering values are discarded (t
// taken from the total update count n — attackers reach every element
// they cover) and the remainder averaged (unweighted — robustness comes
// from rank order, and sample-count weights are attacker-controlled).
// Elements whose coverage is too thin to trim (fewer than 2t+1 covering
// updates, including every element only one update covers) fall back to
// the weighted mean, so a deep prefix coordinate never goes
// un-aggregated just because few widths reach it.
type TrimmedMean struct {
	// Frac is the per-side trim fraction in [0, 0.5).
	Frac float64
}

// Name implements Policy.
func (p TrimmedMean) Name() string {
	return spec.NewBuilder("trim").Float("frac", p.Frac).String()
}

// Aggregate implements Policy.
func (p TrimmedMean) Aggregate(global nn.State, updates []Update) (nn.State, error) {
	if p.Frac < 0 || p.Frac >= 0.5 {
		return nil, fmt.Errorf("agg: trim fraction %v outside [0, 0.5)", p.Frac)
	}
	if err := validateUpdates(global, updates); err != nil {
		return nil, err
	}
	out := make(nn.State, len(global))
	vals := make([]float64, 0, len(updates))
	// The trim count comes from the full update count, not per-element
	// coverage: an attacker controls ⌊Frac·n⌋ of the n updates wherever
	// they reach, so elements fewer than 2t+1 updates cover cannot be
	// trimmed safely and fall back to the weighted mean.
	trim := int(p.Frac * float64(len(updates)))
	for name, g := range global {
		res := g.Clone()
		covering := coveringTensors(name, updates)
		if len(covering) == 0 {
			out[name] = res
			continue
		}
		gs := g.Strides()
		var walk func(off int, shape, strides []int, pos []int)
		walk = func(off int, shape, strides []int, pos []int) {
			if len(shape) == 0 {
				vals = vals[:0]
				var wsum, wval float64
				for _, cv := range covering {
					if v, ok := cv.at(pos); ok {
						vals = append(vals, v)
						wsum += cv.weight
						wval += cv.weight * v
					}
				}
				if len(vals) == 0 {
					return
				}
				if 2*trim >= len(vals) {
					// Coverage too thin to trim: weighted mean, exactly
					// what Aggregate computes for this element.
					res.Data[off] = wval / wsum
					return
				}
				sort.Float64s(vals)
				sum := 0.0
				for _, v := range vals[trim : len(vals)-trim] {
					sum += v
				}
				res.Data[off] = sum / float64(len(vals)-2*trim)
				return
			}
			for i := 0; i < shape[0]; i++ {
				walk(off+i*strides[0], shape[1:], strides[1:], append(pos, i))
			}
		}
		walk(0, g.Shape, gs, make([]int, 0, len(g.Shape)))
		out[name] = res
	}
	return out, nil
}

// coveredTensor is one update's view of a global tensor, with enough
// geometry to answer point queries over the prefix block it covers.
type coveredTensor struct {
	t       *tensor.Tensor
	strides []int
	weight  float64
}

// at returns the update's value at the global position pos, if covered.
func (cv coveredTensor) at(pos []int) (float64, bool) {
	off := 0
	for i, p := range pos {
		if p >= cv.t.Shape[i] {
			return 0, false
		}
		off += p * cv.strides[i]
	}
	return cv.t.Data[off], true
}

// coveringTensors collects the updates holding tensor name.
func coveringTensors(name string, updates []Update) []coveredTensor {
	var out []coveredTensor
	for _, u := range updates {
		if v, ok := u.State[name]; ok {
			out = append(out, coveredTensor{t: v, strides: v.Strides(), weight: u.Weight})
		}
	}
	return out
}

// validateUpdates runs Aggregate's shape/weight/finiteness admission
// checks without aggregating.
func validateUpdates(global nn.State, updates []Update) error {
	for ui, u := range updates {
		if u.Weight <= 0 {
			return fmt.Errorf("agg: update %d has non-positive weight %v", ui, u.Weight)
		}
		for name, v := range u.State {
			g, ok := global[name]
			if !ok {
				return fmt.Errorf("agg: update %d has unknown parameter %q", ui, name)
			}
			if !tensor.PrefixFits(v, g) {
				return fmt.Errorf("agg: update %d parameter %q shape %v does not fit global %v", ui, name, v.Shape, g.Shape)
			}
			for _, x := range v.Data {
				if math.IsNaN(x) || math.IsInf(x, 0) {
					return fmt.Errorf("agg: update %d parameter %q contains a non-finite value", ui, name)
				}
			}
		}
	}
	return nil
}

// Krum scores every update by the summed squared distances to its
// n−f−2 nearest peers — distances taken per element over the prefix
// block both updates cover, normalised by the shared element count so
// narrow and wide submodels score comparably — and aggregates the M
// lowest-scoring updates by weighted mean (M = 1 is classic Krum,
// M > 1 multi-Krum). f = ⌊Frac·n⌋ is the assumed attacker count. With
// too few updates to score (n − f − 2 < 1) the policy falls back to the
// weighted mean of all of them.
type Krum struct {
	// Frac is the assumed adversarial fraction in [0, 0.5).
	Frac float64
	// M is how many lowest-scoring updates are averaged (min 1).
	M int
}

// Name implements Policy.
func (p Krum) Name() string {
	return spec.NewBuilder("krum").Float("frac", p.Frac).Int("m", p.M).String()
}

// Aggregate implements Policy.
func (p Krum) Aggregate(global nn.State, updates []Update) (nn.State, error) {
	if p.Frac < 0 || p.Frac >= 0.5 {
		return nil, fmt.Errorf("agg: krum fraction %v outside [0, 0.5)", p.Frac)
	}
	if err := validateUpdates(global, updates); err != nil {
		return nil, err
	}
	n := len(updates)
	f := int(p.Frac * float64(n))
	neighbors := n - f - 2
	if neighbors < 1 {
		// Too few candidates to score robustly.
		return Aggregate(global, updates)
	}
	m := p.M
	if m < 1 {
		m = 1
	}
	if m > n {
		m = n
	}
	// Pairwise mean-squared distances over common coverage.
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := stateDistance(updates[i].State, updates[j].State)
			dist[i][j], dist[j][i] = d, d
		}
	}
	type scored struct {
		idx   int
		score float64
	}
	scores := make([]scored, n)
	ds := make([]float64, 0, n-1)
	for i := 0; i < n; i++ {
		ds = ds[:0]
		for j := 0; j < n; j++ {
			if j != i {
				ds = append(ds, dist[i][j])
			}
		}
		sort.Float64s(ds)
		sum := 0.0
		for _, d := range ds[:neighbors] {
			sum += d
		}
		scores[i] = scored{idx: i, score: sum}
	}
	// Ties break on update order, which the caller fixes deterministically.
	sort.SliceStable(scores, func(a, b int) bool { return scores[a].score < scores[b].score })
	selected := make([]Update, 0, m)
	for _, sc := range scores[:m] {
		selected = append(selected, updates[sc.idx])
	}
	return Aggregate(global, selected)
}

// stateDistance is the mean squared elementwise difference over the
// prefix block two states share, summed across tensors and normalised by
// the shared element count. Every pool member covers the smallest
// prefix, so two updates always share elements; a degenerate empty
// intersection scores 0.
func stateDistance(a, b nn.State) float64 {
	var sum float64
	var count int64
	// Iterate in sorted name order: the sum is floating-point, so map
	// iteration order would leak into the low bits and break the
	// serial-vs-parallel bit-identity bar.
	for _, name := range a.Names() {
		av := a[name]
		bv, ok := b[name]
		if !ok {
			continue
		}
		small, big := av, bv
		if !tensor.PrefixFits(small, big) {
			small, big = bv, av
			if !tensor.PrefixFits(small, big) {
				continue
			}
		}
		bs := big.Strides()
		var walk func(offS, offB int, shape, stridesS, stridesB []int)
		walk = func(offS, offB int, shape, stridesS, stridesB []int) {
			if len(shape) == 0 {
				d := small.Data[offS] - big.Data[offB]
				sum += d * d
				count++
				return
			}
			for i := 0; i < shape[0]; i++ {
				walk(offS+i*stridesS[0], offB+i*stridesB[0], shape[1:], stridesS[1:], stridesB[1:])
			}
		}
		walk(0, 0, small.Shape, small.Strides(), bs)
	}
	if count == 0 {
		return 0
	}
	return sum / float64(count)
}

// Clipper bounds each update's influence before aggregation: an update
// whose delta against the dispatched reference exceeds Tau in L2 norm is
// scaled down onto the Tau-ball. Applied per update at record time (the
// server owns the reference state), composable with any Policy.
type Clipper struct {
	// Tau is the L2 norm bound on the update delta.
	Tau float64
}

// Clip returns the clipped state and whether clipping occurred. ref is
// the dispatched reference at the update's own width; tensors ref does
// not cover pass through unclipped (unreachable under the pool
// invariant).
func (c Clipper) Clip(ref, upd nn.State) (nn.State, bool) {
	var sq float64
	// Sorted name order keeps the floating-point norm independent of map
	// iteration order (see stateDistance).
	for _, name := range upd.Names() {
		uv := upd[name]
		rv, ok := ref[name]
		if !ok || !tensor.PrefixFits(uv, rv) {
			continue
		}
		r := tensor.ExtractPrefix(rv, uv.Shape)
		for i, x := range uv.Data {
			d := x - r.Data[i]
			sq += d * d
		}
	}
	norm := math.Sqrt(sq)
	if norm <= c.Tau || norm == 0 {
		return upd, false
	}
	scale := c.Tau / norm
	out := make(nn.State, len(upd))
	for name, uv := range upd {
		rv, ok := ref[name]
		if !ok || !tensor.PrefixFits(uv, rv) {
			out[name] = uv.Clone()
			continue
		}
		r := tensor.ExtractPrefix(rv, uv.Shape)
		for i, x := range uv.Data {
			r.Data[i] += scale * (x - r.Data[i])
		}
		out[name] = r
	}
	return out, true
}

// ParsePolicy builds an aggregation policy (and optional record-time
// clipper) from a compact spec string:
//
//	"" | "mean"              — the paper's weighted prefix mean
//	"trim" | "trim:frac=0.2" — coordinate-wise trimmed mean
//	"krum" | "krum:frac=0.2,m=2"
//	"clip" | "clip:tau=5"    — norm clipping over the mean
//	"clip:tau=5+trim:frac=0.2" — clipping composed with any policy
//
// Clipping is a per-update transform, so it composes with every policy;
// at most one non-clip policy may appear.
func ParsePolicy(policySpec string) (Policy, *Clipper, error) {
	var pol Policy
	var clip *Clipper
	for _, part := range strings.Split(policySpec, "+") {
		part = strings.TrimSpace(part)
		name, args, err := spec.Parse("agg", "policy", part)
		if err != nil {
			return nil, nil, err
		}
		var p Policy
		switch name {
		case "", "mean":
			p = Mean{}
		case "trim":
			p = TrimmedMean{Frac: args.Float("frac", 0.2)}
		case "krum":
			p = Krum{Frac: args.Float("frac", 0.2), M: args.Int("m", 1)}
		case "clip":
			if clip != nil {
				return nil, nil, fmt.Errorf("agg: duplicate clip in policy %q", policySpec)
			}
			clip = &Clipper{Tau: args.Float("tau", 5)}
			if clip.Tau <= 0 {
				return nil, nil, fmt.Errorf("agg: clip tau must be positive")
			}
		default:
			return nil, nil, fmt.Errorf("agg: unknown aggregation policy %q (want mean|trim|krum|clip)", name)
		}
		if err := args.Finish(); err != nil {
			return nil, nil, err
		}
		if p != nil {
			if pol != nil {
				return nil, nil, fmt.Errorf("agg: policy %q combines two aggregation rules (only clip composes)", policySpec)
			}
			pol = p
		}
	}
	if pol == nil {
		pol = Mean{}
	}
	switch v := pol.(type) {
	case TrimmedMean:
		if v.Frac < 0 || v.Frac >= 0.5 {
			return nil, nil, fmt.Errorf("agg: trim fraction %v outside [0, 0.5)", v.Frac)
		}
	case Krum:
		if v.Frac < 0 || v.Frac >= 0.5 {
			return nil, nil, fmt.Errorf("agg: krum fraction %v outside [0, 0.5)", v.Frac)
		}
		if v.M < 1 {
			return nil, nil, fmt.Errorf("agg: krum m must be >= 1")
		}
	}
	return pol, clip, nil
}
