package agg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"adaptivefl/internal/nn"
	"adaptivefl/internal/tensor"
)

func TestAggregateHandExample(t *testing.T) {
	// Global 2x2; client A covers the full tensor with weight 1, client B
	// covers the top-left 1x1 prefix with weight 3.
	global := nn.State{"w": tensor.FromSlice([]float64{0, 0, 0, 0}, 2, 2)}
	a := nn.State{"w": tensor.FromSlice([]float64{4, 4, 4, 4}, 2, 2)}
	b := nn.State{"w": tensor.FromSlice([]float64{8}, 1, 1)}
	out, err := Aggregate(global, []Update{{a, 1}, {b, 3}})
	if err != nil {
		t.Fatal(err)
	}
	w := out["w"]
	// Element (0,0): (4*1 + 8*3)/4 = 7; the rest: 4.
	if w.At(0, 0) != 7 {
		t.Fatalf("overlap element = %v, want 7", w.At(0, 0))
	}
	for _, idx := range [][2]int{{0, 1}, {1, 0}, {1, 1}} {
		if w.At(idx[0], idx[1]) != 4 {
			t.Fatalf("element %v = %v, want 4", idx, w.At(idx[0], idx[1]))
		}
	}
}

func TestAggregateUncoveredKeepsGlobal(t *testing.T) {
	global := nn.State{
		"covered":   tensor.FromSlice([]float64{1, 1}, 2),
		"uncovered": tensor.FromSlice([]float64{5, 6}, 2),
	}
	up := nn.State{"covered": tensor.FromSlice([]float64{3, 3}, 2)}
	out, err := Aggregate(global, []Update{{up, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if out["covered"].Data[0] != 3 {
		t.Fatalf("covered = %v", out["covered"].Data)
	}
	if out["uncovered"].Data[0] != 5 || out["uncovered"].Data[1] != 6 {
		t.Fatalf("uncovered changed: %v", out["uncovered"].Data)
	}
}

func TestAggregatePartialPrefixKeepsGlobalTail(t *testing.T) {
	global := nn.State{"w": tensor.FromSlice([]float64{10, 20, 30}, 3)}
	up := nn.State{"w": tensor.FromSlice([]float64{1, 2}, 2)}
	out, err := Aggregate(global, []Update{{up, 1}})
	if err != nil {
		t.Fatal(err)
	}
	w := out["w"]
	if w.Data[0] != 1 || w.Data[1] != 2 || w.Data[2] != 30 {
		t.Fatalf("w = %v, want [1 2 30]", w.Data)
	}
}

func TestAggregateErrors(t *testing.T) {
	global := nn.State{"w": tensor.New(2)}
	if _, err := Aggregate(global, []Update{{nn.State{"x": tensor.New(2)}, 1}}); err == nil {
		t.Fatal("expected error for unknown parameter")
	}
	if _, err := Aggregate(global, []Update{{nn.State{"w": tensor.New(3)}, 1}}); err == nil {
		t.Fatal("expected error for oversized update")
	}
	if _, err := Aggregate(global, []Update{{nn.State{"w": tensor.New(2)}, 0}}); err == nil {
		t.Fatal("expected error for zero weight")
	}
}

func TestAggregateIdenticalClientsIsIdentity(t *testing.T) {
	// Property: aggregating k copies of the same state returns that state
	// regardless of the weights.
	rng := rand.New(rand.NewSource(1))
	f := func(w1Raw, w2Raw uint8) bool {
		w1, w2 := float64(w1Raw%9)+1, float64(w2Raw%9)+1
		st := nn.State{"w": tensor.Randn(rng, 1, 3, 2)}
		global := nn.State{"w": tensor.New(3, 2)}
		out, err := Aggregate(global, []Update{{st.Clone(), w1}, {st.Clone(), w2}})
		if err != nil {
			return false
		}
		for i := range st["w"].Data {
			if math.Abs(out["w"].Data[i]-st["w"].Data[i]) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestAggregateMatchesFedAvgOnHomogeneous(t *testing.T) {
	// With all clients holding the full shape, Algorithm 2 reduces to
	// weighted FedAvg.
	rng := rand.New(rand.NewSource(2))
	global := nn.State{"w": tensor.New(4)}
	var ups []Update
	weights := []float64{1, 2, 3}
	states := make([]nn.State, 3)
	for i := range states {
		states[i] = nn.State{"w": tensor.Randn(rng, 1, 4)}
		ups = append(ups, Update{states[i], weights[i]})
	}
	out, err := Aggregate(global, ups)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 4; j++ {
		want := (states[0]["w"].Data[j]*1 + states[1]["w"].Data[j]*2 + states[2]["w"].Data[j]*3) / 6
		if math.Abs(out["w"].Data[j]-want) > 1e-12 {
			t.Fatalf("element %d = %v, want %v", j, out["w"].Data[j], want)
		}
	}
}

func TestAggregateConvexHullProperty(t *testing.T) {
	// Property: every aggregated element lies within [min, max] of the
	// values contributed for it (or equals the global if uncovered).
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		global := nn.State{"w": tensor.Randn(rng, 1, 3, 3)}
		var ups []Update
		for k := 0; k < 3; k++ {
			rows := 1 + r.Intn(3)
			cols := 1 + r.Intn(3)
			ups = append(ups, Update{nn.State{"w": tensor.Randn(rng, 1, rows, cols)}, float64(1 + r.Intn(5))})
		}
		out, err := Aggregate(global, ups)
		if err != nil {
			return false
		}
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				lo, hi := math.Inf(1), math.Inf(-1)
				covered := false
				for _, u := range ups {
					w := u.State["w"]
					if i < w.Shape[0] && j < w.Shape[1] {
						covered = true
						v := w.At(i, j)
						lo, hi = math.Min(lo, v), math.Max(hi, v)
					}
				}
				got := out["w"].At(i, j)
				if !covered {
					if got != global["w"].At(i, j) {
						return false
					}
					continue
				}
				if got < lo-1e-12 || got > hi+1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
