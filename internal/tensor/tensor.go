// Package tensor provides dense, row-major, float64 tensors and the small
// set of linear-algebra kernels a CPU deep-learning stack needs: GEMM with
// optional transposes, im2col/col2im for convolutions, element-wise
// arithmetic, and N-dimensional prefix-block copies (the primitive behind
// AdaptiveFL's width-wise pruning and heterogeneous aggregation).
//
// Tensors are plain values: Shape describes the logical dimensions and
// Data holds len = prod(Shape) contiguous elements. The zero Tensor is
// empty and ready to use.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Tensor is a dense row-major array of float64 values.
type Tensor struct {
	Shape []int
	Data  []float64
}

// New returns a zero-filled tensor with the given shape.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float64, n)}
}

// FromSlice wraps data in a tensor with the given shape. The slice is used
// directly, not copied. It panics if len(data) does not match the shape.
func FromSlice(data []float64, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: shape %v needs %d elements, got %d", shape, n, len(data)))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: data}
}

// Full returns a tensor with every element set to v.
func Full(v float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = v
	}
	return t
}

// Randn returns a tensor with elements drawn from N(0, std²) using rng.
func Randn(rng *rand.Rand, std float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = rng.NormFloat64() * std
	}
	return t
}

// Uniform returns a tensor with elements drawn from U[lo, hi) using rng.
func Uniform(rng *rand.Rand, lo, hi float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = lo + rng.Float64()*(hi-lo)
	}
	return t
}

// Numel reports the number of elements.
func (t *Tensor) Numel() int { return len(t.Data) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.Shape[i] }

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	c := &Tensor{Shape: append([]int(nil), t.Shape...), Data: make([]float64, len(t.Data))}
	copy(c.Data, t.Data)
	return c
}

// Reshape returns a tensor sharing t's data with a new shape. The element
// count must be unchanged. One dimension may be -1 and is inferred.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	shape = append([]int(nil), shape...)
	infer, n := -1, 1
	for i, d := range shape {
		if d == -1 {
			if infer >= 0 {
				panic("tensor: multiple -1 dims in Reshape")
			}
			infer = i
		} else {
			n *= d
		}
	}
	if infer >= 0 {
		if n == 0 || len(t.Data)%n != 0 {
			panic(fmt.Sprintf("tensor: cannot infer dim for shape %v from %d elements", shape, len(t.Data)))
		}
		shape[infer] = len(t.Data) / n
		n *= shape[infer]
	}
	if n != len(t.Data) {
		panic(fmt.Sprintf("tensor: Reshape %v incompatible with %d elements", shape, len(t.Data)))
	}
	return &Tensor{Shape: shape, Data: t.Data}
}

// Strides returns row-major strides for the tensor's shape.
func (t *Tensor) Strides() []int {
	s := make([]int, len(t.Shape))
	acc := 1
	for i := len(t.Shape) - 1; i >= 0; i-- {
		s[i] = acc
		acc *= t.Shape[i]
	}
	return s
}

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float64 { return t.Data[t.offset(idx)] }

// Set assigns v to the element at the given multi-index.
func (t *Tensor) Set(v float64, idx ...int) { t.Data[t.offset(idx)] = v }

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.Shape) {
		panic(fmt.Sprintf("tensor: index rank %d != shape rank %d", len(idx), len(t.Shape)))
	}
	off, acc := 0, 1
	for i := len(t.Shape) - 1; i >= 0; i-- {
		if idx[i] < 0 || idx[i] >= t.Shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.Shape))
		}
		off += idx[i] * acc
		acc *= t.Shape[i]
	}
	return off
}

// SameShape reports whether a and b have identical shapes.
func SameShape(a, b *Tensor) bool {
	if len(a.Shape) != len(b.Shape) {
		return false
	}
	for i := range a.Shape {
		if a.Shape[i] != b.Shape[i] {
			return false
		}
	}
	return true
}

// Zero sets every element of t to zero.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// Fill sets every element of t to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// AddInPlace adds o to t element-wise. Shapes must match.
func (t *Tensor) AddInPlace(o *Tensor) {
	mustSameLen(t, o)
	for i, v := range o.Data {
		t.Data[i] += v
	}
}

// SubInPlace subtracts o from t element-wise.
func (t *Tensor) SubInPlace(o *Tensor) {
	mustSameLen(t, o)
	for i, v := range o.Data {
		t.Data[i] -= v
	}
}

// MulInPlace multiplies t by o element-wise.
func (t *Tensor) MulInPlace(o *Tensor) {
	mustSameLen(t, o)
	for i, v := range o.Data {
		t.Data[i] *= v
	}
}

// Scale multiplies every element of t by a.
func (t *Tensor) Scale(a float64) {
	for i := range t.Data {
		t.Data[i] *= a
	}
}

// AddScaled adds a*o to t element-wise (axpy).
func (t *Tensor) AddScaled(a float64, o *Tensor) {
	mustSameLen(t, o)
	for i, v := range o.Data {
		t.Data[i] += a * v
	}
}

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.Data {
		s += v
	}
	return s
}

// MaxAbs returns the largest absolute element value (0 for empty tensors).
func (t *Tensor) MaxAbs() float64 {
	m := 0.0
	for _, v := range t.Data {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// ArgMax returns the index of the largest element in t.Data.
func (t *Tensor) ArgMax() int {
	best, bi := math.Inf(-1), 0
	for i, v := range t.Data {
		if v > best {
			best, bi = v, i
		}
	}
	return bi
}

func mustSameLen(a, b *Tensor) {
	if len(a.Data) != len(b.Data) {
		panic(fmt.Sprintf("tensor: length mismatch %d vs %d", len(a.Data), len(b.Data)))
	}
}

// String renders a compact description, useful in test failures.
func (t *Tensor) String() string {
	if t.Numel() <= 16 {
		return fmt.Sprintf("Tensor%v%v", t.Shape, t.Data)
	}
	return fmt.Sprintf("Tensor%v[%d elems]", t.Shape, t.Numel())
}
