package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewShapesAndNumel(t *testing.T) {
	cases := []struct {
		shape []int
		want  int
	}{
		{[]int{}, 1},
		{[]int{0}, 0},
		{[]int{3}, 3},
		{[]int{2, 3}, 6},
		{[]int{2, 3, 4, 5}, 120},
	}
	for _, c := range cases {
		tt := New(c.shape...)
		if tt.Numel() != c.want {
			t.Errorf("New(%v).Numel() = %d, want %d", c.shape, tt.Numel(), c.want)
		}
	}
}

func TestAtSetRoundTrip(t *testing.T) {
	x := New(2, 3, 4)
	x.Set(7.5, 1, 2, 3)
	if got := x.At(1, 2, 3); got != 7.5 {
		t.Fatalf("At(1,2,3) = %v, want 7.5", got)
	}
	if got := x.Data[1*12+2*4+3]; got != 7.5 {
		t.Fatalf("row-major offset wrong: %v", got)
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range index")
		}
	}()
	New(2, 2).At(2, 0)
}

func TestReshapeSharesData(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	y := x.Reshape(3, 2)
	y.Set(99, 0, 0)
	if x.At(0, 0) != 99 {
		t.Fatal("Reshape must share underlying data")
	}
	z := x.Reshape(-1, 2)
	if z.Shape[0] != 3 {
		t.Fatalf("inferred dim = %d, want 3", z.Shape[0])
	}
}

func TestReshapeBadShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on incompatible reshape")
		}
	}()
	New(2, 3).Reshape(4, 2)
}

func TestCloneIndependent(t *testing.T) {
	x := FromSlice([]float64{1, 2}, 2)
	y := x.Clone()
	y.Data[0] = 42
	if x.Data[0] != 1 {
		t.Fatal("Clone must not share data")
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3}, 3)
	b := FromSlice([]float64{4, 5, 6}, 3)
	a.AddInPlace(b)
	want := []float64{5, 7, 9}
	for i := range want {
		if a.Data[i] != want[i] {
			t.Fatalf("AddInPlace: got %v", a.Data)
		}
	}
	a.SubInPlace(b)
	for i, w := range []float64{1, 2, 3} {
		if a.Data[i] != w {
			t.Fatalf("SubInPlace: got %v", a.Data)
		}
	}
	a.MulInPlace(b)
	for i, w := range []float64{4, 10, 18} {
		if a.Data[i] != w {
			t.Fatalf("MulInPlace: got %v", a.Data)
		}
	}
	a.Scale(0.5)
	if a.Data[0] != 2 {
		t.Fatalf("Scale: got %v", a.Data)
	}
	a.AddScaled(2, b)
	if a.Data[0] != 10 {
		t.Fatalf("AddScaled: got %v", a.Data)
	}
}

func TestSumArgMaxMaxAbs(t *testing.T) {
	x := FromSlice([]float64{-5, 2, 3}, 3)
	if x.Sum() != 0 {
		t.Fatalf("Sum = %v", x.Sum())
	}
	if x.ArgMax() != 2 {
		t.Fatalf("ArgMax = %d", x.ArgMax())
	}
	if x.MaxAbs() != 5 {
		t.Fatalf("MaxAbs = %v", x.MaxAbs())
	}
}

// naiveMatMul is the O(mnk) reference used to validate GEMM.
func naiveMatMul(a, b *Tensor) *Tensor {
	m, k, n := a.Shape[0], a.Shape[1], b.Shape[1]
	c := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for p := 0; p < k; p++ {
				s += a.At(i, p) * b.At(p, j)
			}
			c.Set(s, i, j)
		}
	}
	return c
}

func TestMatMulMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dims := range [][3]int{{1, 1, 1}, {2, 3, 4}, {5, 7, 3}, {16, 16, 16}, {33, 17, 29}} {
		a := Randn(rng, 1, dims[0], dims[1])
		b := Randn(rng, 1, dims[1], dims[2])
		got := MatMul(a, b)
		want := naiveMatMul(a, b)
		for i := range got.Data {
			if !almostEq(got.Data[i], want.Data[i], 1e-10) {
				t.Fatalf("MatMul %v mismatch at %d: %v vs %v", dims, i, got.Data[i], want.Data[i])
			}
		}
	}
}

func TestGemmTransposes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m, k, n := 6, 5, 7
	a := Randn(rng, 1, m, k)
	b := Randn(rng, 1, k, n)
	want := naiveMatMul(a, b)

	// Build transposed copies.
	at := New(k, m)
	for i := 0; i < m; i++ {
		for p := 0; p < k; p++ {
			at.Set(a.At(i, p), p, i)
		}
	}
	bt := New(n, k)
	for p := 0; p < k; p++ {
		for j := 0; j < n; j++ {
			bt.Set(b.At(p, j), j, p)
		}
	}
	check := func(name string, transA, transB bool, aa, bb *Tensor) {
		t.Helper()
		c := New(m, n)
		Gemm(transA, transB, 1, aa, bb, 0, c)
		for i := range c.Data {
			if !almostEq(c.Data[i], want.Data[i], 1e-10) {
				t.Fatalf("%s mismatch at %d", name, i)
			}
		}
	}
	check("NN", false, false, a, b)
	check("TN", true, false, at, b)
	check("NT", false, true, a, bt)
	check("TT", true, true, at, bt)
}

func TestGemmAlphaBeta(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := Randn(rng, 1, 3, 4)
	b := Randn(rng, 1, 4, 2)
	c := Full(1, 3, 2)
	Gemm(false, false, 2, a, b, 3, c)
	want := naiveMatMul(a, b)
	for i := range c.Data {
		if !almostEq(c.Data[i], 2*want.Data[i]+3, 1e-10) {
			t.Fatalf("alpha/beta mismatch at %d", i)
		}
	}
}

func TestGemmParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := Randn(rng, 1, 64, 48)
	b := Randn(rng, 1, 48, 40)
	prev := SetParallelism(1)
	serial := MatMul(a, b)
	SetParallelism(8)
	par := MatMul(a, b)
	SetParallelism(prev)
	for i := range serial.Data {
		if !almostEq(serial.Data[i], par.Data[i], 1e-12) {
			t.Fatalf("parallel GEMM differs at %d", i)
		}
	}
}

func TestMatVec(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	y := MatVec(a, []float64{1, 1, 1})
	if y[0] != 6 || y[1] != 15 {
		t.Fatalf("MatVec = %v", y)
	}
}

// naiveConv computes a direct convolution for validating im2col+GEMM.
func naiveConv(x, w *Tensor, stride, pad int) *Tensor {
	c, h, wd := x.Shape[0], x.Shape[1], x.Shape[2]
	oc, kh, kw := w.Shape[0], w.Shape[2], w.Shape[3]
	oh := ConvOutSize(h, kh, stride, pad)
	ow := ConvOutSize(wd, kw, stride, pad)
	y := New(oc, oh, ow)
	for o := 0; o < oc; o++ {
		for oi := 0; oi < oh; oi++ {
			for oj := 0; oj < ow; oj++ {
				s := 0.0
				for ci := 0; ci < c; ci++ {
					for ki := 0; ki < kh; ki++ {
						for kj := 0; kj < kw; kj++ {
							ii, jj := oi*stride-pad+ki, oj*stride-pad+kj
							if ii >= 0 && ii < h && jj >= 0 && jj < wd {
								s += x.At(ci, ii, jj) * w.At(o, ci, ki, kj)
							}
						}
					}
				}
				y.Set(s, o, oi, oj)
			}
		}
	}
	return y
}

func TestIm2ColConvMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, cfg := range []struct{ c, h, w, oc, k, stride, pad int }{
		{1, 5, 5, 2, 3, 1, 1},
		{3, 8, 8, 4, 3, 1, 1},
		{2, 7, 7, 3, 3, 2, 1},
		{4, 6, 6, 2, 1, 1, 0},
		{2, 9, 9, 5, 5, 2, 2},
	} {
		x := Randn(rng, 1, cfg.c, cfg.h, cfg.w)
		w := Randn(rng, 1, cfg.oc, cfg.c, cfg.k, cfg.k)
		oh := ConvOutSize(cfg.h, cfg.k, cfg.stride, cfg.pad)
		ow := ConvOutSize(cfg.w, cfg.k, cfg.stride, cfg.pad)
		cols := New(cfg.c*cfg.k*cfg.k, oh*ow)
		Im2Col(x, cfg.k, cfg.k, cfg.stride, cfg.pad, cols)
		wm := w.Reshape(cfg.oc, cfg.c*cfg.k*cfg.k)
		y := MatMul(wm, cols).Reshape(cfg.oc, oh, ow)
		want := naiveConv(x, w, cfg.stride, cfg.pad)
		for i := range y.Data {
			if !almostEq(y.Data[i], want.Data[i], 1e-9) {
				t.Fatalf("conv cfg %+v mismatch at %d: %v vs %v", cfg, i, y.Data[i], want.Data[i])
			}
		}
	}
}

func TestCol2ImIsIm2ColAdjoint(t *testing.T) {
	// <Im2Col(x), g> must equal <x, Col2Im(g)> — the defining property of
	// an adjoint pair, which is exactly what backprop relies on.
	rng := rand.New(rand.NewSource(6))
	c, h, w, k, stride, pad := 3, 7, 6, 3, 2, 1
	oh := ConvOutSize(h, k, stride, pad)
	ow := ConvOutSize(w, k, stride, pad)
	x := Randn(rng, 1, c, h, w)
	g := Randn(rng, 1, c*k*k, oh*ow)

	cols := New(c*k*k, oh*ow)
	Im2Col(x, k, k, stride, pad, cols)
	lhs := 0.0
	for i := range cols.Data {
		lhs += cols.Data[i] * g.Data[i]
	}
	back := New(c, h, w)
	Col2Im(g, c, h, w, k, k, stride, pad, back)
	rhs := 0.0
	for i := range back.Data {
		rhs += back.Data[i] * x.Data[i]
	}
	if !almostEq(lhs, rhs, 1e-9) {
		t.Fatalf("adjoint mismatch: %v vs %v", lhs, rhs)
	}
}

func TestExtractPrefix(t *testing.T) {
	x := FromSlice([]float64{
		1, 2, 3,
		4, 5, 6,
	}, 2, 3)
	p := ExtractPrefix(x, []int{2, 2})
	want := []float64{1, 2, 4, 5}
	for i := range want {
		if p.Data[i] != want[i] {
			t.Fatalf("ExtractPrefix = %v, want %v", p.Data, want)
		}
	}
}

func TestCopyPrefixInto(t *testing.T) {
	dst := Full(9, 2, 3)
	src := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	CopyPrefixInto(dst, src)
	want := []float64{1, 2, 9, 3, 4, 9}
	for i := range want {
		if dst.Data[i] != want[i] {
			t.Fatalf("CopyPrefixInto = %v, want %v", dst.Data, want)
		}
	}
}

func TestAccumulatePrefix(t *testing.T) {
	dst := New(2, 2)
	cnt := New(2, 2)
	src := FromSlice([]float64{1, 2}, 1, 2)
	AccumulatePrefix(dst, cnt, src, 3)
	AccumulatePrefix(dst, cnt, src, 1)
	if dst.At(0, 0) != 4 || dst.At(0, 1) != 8 || dst.At(1, 0) != 0 {
		t.Fatalf("dst = %v", dst.Data)
	}
	if cnt.At(0, 0) != 4 || cnt.At(1, 1) != 0 {
		t.Fatalf("cnt = %v", cnt.Data)
	}
}

func TestPrefixRoundTripProperty(t *testing.T) {
	// Property: extracting a prefix and copying it back into a zero tensor
	// then re-extracting yields the same block.
	rng := rand.New(rand.NewSource(7))
	f := func(a, b, c uint8) bool {
		d0, d1, d2 := int(a%4)+1, int(b%4)+1, int(c%4)+1
		full := Randn(rng, 1, d0+2, d1+1, d2+3)
		block := ExtractPrefix(full, []int{d0, d1, d2})
		host := New(full.Shape...)
		CopyPrefixInto(host, block)
		again := ExtractPrefix(host, []int{d0, d1, d2})
		for i := range block.Data {
			if block.Data[i] != again.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestAccumulatePrefixEqualsWeightedMeanProperty(t *testing.T) {
	// Property: accumulating k copies of the same tensor with arbitrary
	// positive weights and dividing by counts recovers the tensor.
	rng := rand.New(rand.NewSource(8))
	f := func(wa, wb uint8) bool {
		w1, w2 := float64(wa%10)+1, float64(wb%10)+1
		src := Randn(rng, 1, 3, 2)
		dst, cnt := New(3, 2), New(3, 2)
		AccumulatePrefix(dst, cnt, src, w1)
		AccumulatePrefix(dst, cnt, src, w2)
		for i := range dst.Data {
			if !almostEq(dst.Data[i]/cnt.Data[i], src.Data[i], 1e-12) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPrefixFits(t *testing.T) {
	a, b := New(2, 3), New(2, 4)
	if !PrefixFits(a, b) {
		t.Fatal("2x3 should fit in 2x4")
	}
	if PrefixFits(b, a) {
		t.Fatal("2x4 should not fit in 2x3")
	}
	if PrefixFits(New(2), New(2, 2)) {
		t.Fatal("rank mismatch should not fit")
	}
}

func TestConvOutSize(t *testing.T) {
	if ConvOutSize(32, 3, 1, 1) != 32 {
		t.Fatal("same-pad 3x3 should preserve size")
	}
	if ConvOutSize(32, 2, 2, 0) != 16 {
		t.Fatal("2x2/2 pooling should halve")
	}
	if ConvOutSize(7, 3, 2, 1) != 4 {
		t.Fatal("ConvOutSize(7,3,2,1) should be 4")
	}
}
