package tensor

// Vector micro-kernels behind the blocked GEMM. Each has an accelerated
// amd64/AVX implementation (axpy_amd64.s) and a portable Go tail; the two
// are written to produce bitwise-identical results: the AVX code uses
// separate VMULPD/VADDPD (no FMA contraction) in exactly the association
// the Go code uses, so enabling the fast path never changes a result —
// only how fast it is produced.

// axpy2x2 computes c0[j] += u0*b0[j] + u1*b1[j] and
// c1[j] += v0*b0[j] + v1*b1[j] over the common length.
func axpy2x2(u0, u1, v0, v1 float64, b0, b1, c0, c1 []float64) {
	j := axpy2x2Accel(u0, u1, v0, v1, b0, b1, c0, c1)
	b0, b1, c0, c1 = b0[j:], b1[j:], c0[j:], c1[j:]
	for j := range c0 {
		bv0, bv1 := b0[j], b1[j]
		c0[j] += u0*bv0 + u1*bv1
		c1[j] += v0*bv0 + v1*bv1
	}
}

// axpy2x1 computes c0[j] += u0*b0[j] + u1*b1[j].
func axpy2x1(u0, u1 float64, b0, b1, c0 []float64) {
	j := axpy2x1Accel(u0, u1, b0, b1, c0)
	b0, b1, c0 = b0[j:], b1[j:], c0[j:]
	for j := range c0 {
		c0[j] += u0*b0[j] + u1*b1[j]
	}
}

// dotLanes is the reduction contract shared by the scalar and AVX dot
// kernels: 16 partial sums striped by index mod 16, pre-combined lanewise
// into t[l] = (s[l] + s[l+4]) + (s[l+8] + s[l+12]).
type dotLanes [4]float64

// dot computes the inner product of a and b with a fixed reduction tree:
// 16 striped partials, folded to 4 lanes, then ((t0+t1)+(t2+t3)), with a
// sequential tail for the remainder. The tree is a function of len(a)
// alone, so serial, pooled, and AVX execution all agree bitwise.
func dot(a, b []float64) float64 {
	n16 := len(a) &^ 15
	var t dotLanes
	if n16 > 0 {
		t = dotLanesAccel(a[:n16], b[:n16])
	}
	s := (t[0] + t[1]) + (t[2] + t[3])
	for p := n16; p < len(a); p++ {
		s += a[p] * b[p]
	}
	return s
}

// dotLanesGeneric is the portable 16-stripe kernel; n must be a positive
// multiple of 16.
func dotLanesGeneric(a, b []float64) dotLanes {
	var s [16]float64
	for p := 0; p+16 <= len(a); p += 16 {
		aa := a[p : p+16]
		bb := b[p : p+16]
		for l := 0; l < 16; l++ {
			s[l] += aa[l] * bb[l]
		}
	}
	var t dotLanes
	for l := 0; l < 4; l++ {
		t[l] = (s[l] + s[l+4]) + (s[l+8] + s[l+12])
	}
	return t
}
