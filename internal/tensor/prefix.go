package tensor

import "fmt"

// Prefix-block operations.
//
// AdaptiveFL's width-wise pruning always keeps the leading channels of
// every dimension, so a pruned parameter tensor is exactly the prefix
// block dst[0:s0, 0:s1, ...] of the full tensor. These helpers copy and
// accumulate such blocks for arbitrary rank, which is all that model
// dispatch (ExtractPrefix) and Algorithm 2 aggregation (AccumulatePrefix)
// need.

// PrefixFits reports whether small's shape is elementwise <= big's shape
// with equal rank.
func PrefixFits(small, big *Tensor) bool {
	if len(small.Shape) != len(big.Shape) {
		return false
	}
	for i := range small.Shape {
		if small.Shape[i] > big.Shape[i] {
			return false
		}
	}
	return true
}

// ExtractPrefix copies the prefix block of src with the given shape into a
// freshly allocated tensor. shape must be elementwise <= src.Shape.
func ExtractPrefix(src *Tensor, shape []int) *Tensor {
	dst := New(shape...)
	if !PrefixFits(dst, src) {
		panic(fmt.Sprintf("tensor: prefix shape %v does not fit in %v", shape, src.Shape))
	}
	copyPrefix(dst.Data, src.Data, dst.Shape, src.Strides(), dst.Strides())
	return dst
}

// CopyPrefixInto writes src into the prefix block of dst. src.Shape must be
// elementwise <= dst.Shape. Elements of dst outside the block are left
// untouched.
func CopyPrefixInto(dst, src *Tensor) {
	if !PrefixFits(src, dst) {
		panic(fmt.Sprintf("tensor: prefix shape %v does not fit in %v", src.Shape, dst.Shape))
	}
	scatterPrefix(dst.Data, src.Data, src.Shape, dst.Strides(), src.Strides(), func(d *float64, s, _ float64) { *d = s })
}

// AccumulatePrefix adds weight*src into dst's prefix block and adds weight
// into the matching block of counts. dst and counts share dst's shape. It
// is the inner loop of heterogeneous aggregation (Algorithm 2).
func AccumulatePrefix(dst, counts, src *Tensor, weight float64) {
	if !PrefixFits(src, dst) || !SameShape(dst, counts) {
		panic("tensor: AccumulatePrefix shape mismatch")
	}
	dstStr, srcStr := dst.Strides(), src.Strides()
	accumPrefix(dst.Data, counts.Data, src.Data, src.Shape, dstStr, srcStr, weight)
}

func copyPrefix(dst, src []float64, shape, srcStr, dstStr []int) {
	if len(shape) == 0 {
		dst[0] = src[0]
		return
	}
	if len(shape) == 1 {
		copy(dst[:shape[0]], src[:shape[0]])
		return
	}
	for i := 0; i < shape[0]; i++ {
		copyPrefix(dst[i*dstStr[0]:], src[i*srcStr[0]:], shape[1:], srcStr[1:], dstStr[1:])
	}
}

func scatterPrefix(dst, src []float64, shape, dstStr, srcStr []int, op func(*float64, float64, float64)) {
	if len(shape) == 0 {
		op(&dst[0], src[0], 0)
		return
	}
	if len(shape) == 1 {
		for i := 0; i < shape[0]; i++ {
			op(&dst[i], src[i], 0)
		}
		return
	}
	for i := 0; i < shape[0]; i++ {
		scatterPrefix(dst[i*dstStr[0]:], src[i*srcStr[0]:], shape[1:], dstStr[1:], srcStr[1:], op)
	}
}

func accumPrefix(dst, counts, src []float64, shape, dstStr, srcStr []int, w float64) {
	if len(shape) == 0 {
		dst[0] += w * src[0]
		counts[0] += w
		return
	}
	if len(shape) == 1 {
		for i := 0; i < shape[0]; i++ {
			dst[i] += w * src[i]
			counts[i] += w
		}
		return
	}
	for i := 0; i < shape[0]; i++ {
		off := i * dstStr[0]
		accumPrefix(dst[off:], counts[off:], src[i*srcStr[0]:], shape[1:], dstStr[1:], srcStr[1:], w)
	}
}
