package tensor

import "sync"

// Scratch pool.
//
// Conv layers unfold every batch into a column matrix whose size repeats
// across calls (the same layer sees the same shapes each step, and layers
// of the same width share shapes). Training caches the matrix per layer
// for the backward pass, but eval-mode forwards would otherwise allocate
// and drop one column matrix per layer per call. The pool below recycles
// those slabs process-wide, keyed by element count, so inference settles
// into zero steady-state allocation for its im2col and GEMM-output
// buffers.

var (
	scratchMu    sync.Mutex
	scratchPools = map[int]*sync.Pool{}
)

// GetScratch returns a tensor of the given shape backed by a recycled
// slab when one is available. The contents are undefined — callers must
// fully overwrite it (Im2ColBatch and beta=0 GEMMs do). Pair with
// PutScratch when the buffer's lifetime ends.
func GetScratch(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	scratchMu.Lock()
	p := scratchPools[n]
	scratchMu.Unlock()
	if p != nil {
		if v := p.Get(); v != nil {
			return &Tensor{Shape: append([]int(nil), shape...), Data: *(v.(*[]float64))}
		}
	}
	return New(shape...)
}

// PutScratch recycles t's backing slab for a later GetScratch of the same
// element count. The caller must not touch t afterwards.
func PutScratch(t *Tensor) {
	if t == nil || len(t.Data) == 0 {
		return
	}
	n := len(t.Data)
	scratchMu.Lock()
	p := scratchPools[n]
	if p == nil {
		p = &sync.Pool{}
		scratchPools[n] = p
	}
	scratchMu.Unlock()
	data := t.Data
	p.Put(&data)
}
