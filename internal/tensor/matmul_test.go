package tensor

import (
	"math/rand"
	"testing"
)

// gemmOperands builds operands for one (m,k,n, transA, transB) combo.
func gemmOperands(rng *rand.Rand, m, k, n int, transA, transB bool) (a, b *Tensor) {
	if transA {
		a = Randn(rng, 1, k, m)
	} else {
		a = Randn(rng, 1, m, k)
	}
	if transB {
		b = Randn(rng, 1, n, k)
	} else {
		b = Randn(rng, 1, k, n)
	}
	return a, b
}

// TestGemmSerialParallelBitwise is the determinism contract of the tiled
// kernel: for every transpose combination, alpha/beta case, and shape edge
// (m==1, empty dimensions, odd sizes that exercise the pair/tail paths,
// sizes above the fan-out threshold), running with SetParallelism(1) and
// with a worker pool must produce bitwise-identical results.
func TestGemmSerialParallelBitwise(t *testing.T) {
	shapes := []struct{ m, k, n int }{
		{1, 7, 5},      // m==1 fast path
		{3, 1, 4},      // k==1: only the scalar k-tail runs
		{0, 3, 2},      // empty m
		{4, 0, 3},      // empty k
		{5, 4, 0},      // empty n
		{17, 31, 29},   // odd everything, below the parallel threshold
		{33, 129, 65},  // odd everything, above the parallel threshold
		{64, 300, 128}, // k spanning multiple panels
		{1, 64, 2048},  // skinny m, huge n: the j-split grid carries all parallelism
		{2, 48, 1100},  // j-split with a ragged final column chunk
		{3, 40, 4099},  // j-split spanning multiple nTile panels, odd n
	}
	cases := []struct{ alpha, beta float64 }{
		{1, 0}, {2, 3}, {0.5, 1}, {0, 2}, {-1.25, -0.5},
	}
	defer SetParallelism(SetParallelism(1))
	for _, sh := range shapes {
		for _, ab := range cases {
			for _, transA := range []bool{false, true} {
				for _, transB := range []bool{false, true} {
					rng := rand.New(rand.NewSource(int64(7*sh.m + 13*sh.k + 29*sh.n)))
					a, b := gemmOperands(rng, sh.m, sh.k, sh.n, transA, transB)
					cInit := Randn(rng, 1, sh.m, sh.n)

					SetParallelism(1)
					serial := cInit.Clone()
					Gemm(transA, transB, ab.alpha, a, b, ab.beta, serial)

					SetParallelism(4)
					par := cInit.Clone()
					Gemm(transA, transB, ab.alpha, a, b, ab.beta, par)

					for i := range serial.Data {
						if serial.Data[i] != par.Data[i] {
							t.Fatalf("m=%d k=%d n=%d transA=%v transB=%v alpha=%v beta=%v: parallel differs at %d: %v vs %v",
								sh.m, sh.k, sh.n, transA, transB, ab.alpha, ab.beta, i, serial.Data[i], par.Data[i])
						}
					}
				}
			}
		}
	}
}

// TestGemmAccelMatchesGeneric pins the AVX micro-kernels to the portable
// Go implementations: identical bits, not just close values.
func TestGemmAccelMatchesGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for _, n := range []int{1, 3, 4, 7, 8, 15, 16, 31, 64, 100} {
		b0 := Randn(rng, 1, n).Data
		b1 := Randn(rng, 1, n).Data
		base := Randn(rng, 1, n).Data

		got0 := append([]float64(nil), base...)
		got1 := append([]float64(nil), base...)
		axpy2x2(1.5, -0.25, 0.75, 2, b0, b1, got0, got1)
		want0 := append([]float64(nil), base...)
		want1 := append([]float64(nil), base...)
		for j := 0; j < n; j++ {
			want0[j] += 1.5*b0[j] + -0.25*b1[j]
			want1[j] += 0.75*b0[j] + 2*b1[j]
		}
		for j := 0; j < n; j++ {
			if got0[j] != want0[j] || got1[j] != want1[j] {
				t.Fatalf("axpy2x2 n=%d differs at %d", n, j)
			}
		}

		got := append([]float64(nil), base...)
		axpy2x1(0.5, -3, b0, b1, got)
		want := append([]float64(nil), base...)
		for j := 0; j < n; j++ {
			want[j] += 0.5*b0[j] + -3*b1[j]
		}
		for j := 0; j < n; j++ {
			if got[j] != want[j] {
				t.Fatalf("axpy2x1 n=%d differs at %d", n, j)
			}
		}

		if n >= 16 {
			n16 := n &^ 15
			gotLanes := dotLanesAccel(b0[:n16], b1[:n16])
			wantLanes := dotLanesGeneric(b0[:n16], b1[:n16])
			if gotLanes != wantLanes {
				t.Fatalf("dotLanes n=%d: %v vs %v", n16, gotLanes, wantLanes)
			}
		}
	}
}

// TestMatMulEmpty pins the MatMul wrapper on degenerate shapes.
func TestMatMulEmpty(t *testing.T) {
	a := New(0, 4)
	b := New(4, 3)
	c := MatMul(a, b)
	if c.Shape[0] != 0 || c.Shape[1] != 3 || len(c.Data) != 0 {
		t.Fatalf("MatMul empty result shape %v", c.Shape)
	}
}
