package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// parallelism is the number of workers GEMM may fan out to. FL rounds
// train many clients concurrently, so the per-operation parallelism is a
// process-wide knob rather than a per-call argument.
var parallelism int64 = int64(runtime.GOMAXPROCS(0))

// SetParallelism caps the number of workers used by a single GEMM call.
// n < 1 resets to GOMAXPROCS. It returns the previous value.
func SetParallelism(n int) int {
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	return int(atomic.SwapInt64(&parallelism, int64(n)))
}

// Parallelism reports the current GEMM worker cap.
func Parallelism() int { return int(atomic.LoadInt64(&parallelism)) }

// serialThreshold is the FLOP count below which GEMM stays single-threaded;
// task fan-out costs more than it saves on small matrices.
const serialThreshold = 1 << 16

// Gemm used to spawn fresh goroutines on every call, which dominated the
// cost of the many small batched GEMMs a training step issues. Work is now
// handed to a persistent pool of GOMAXPROCS workers; submission never
// blocks — if every worker is busy (e.g. nested GEMMs inside concurrently
// training clients) the caller runs the chunk inline, so the pool cannot
// deadlock.
var (
	poolOnce  sync.Once
	poolTasks chan func()
)

func trySubmit(task func()) bool {
	poolOnce.Do(func() {
		workers := runtime.GOMAXPROCS(0)
		poolTasks = make(chan func(), 4*workers)
		for i := 0; i < workers; i++ {
			go func() {
				for f := range poolTasks {
					f()
				}
			}()
		}
	})
	select {
	case poolTasks <- task:
		return true
	default:
		return false
	}
}

// Tiling parameters for the blocked kernel. A j-panel of nTile columns
// keeps the active C segment and four B row segments (~40 KB) L1/L2
// resident; a k-panel of kTile rows bounds the slab of B streamed per
// output row. Panel boundaries are fixed by matrix shape alone, so the
// floating-point accumulation order — and therefore the bitwise result —
// is identical whether the row chunks run serially or on the pool.
const (
	kTile = 256
	nTile = 1024
)

// minJChunk is the narrowest j-span worth handing to a worker when the
// grid splits columns: wide enough to amortise task dispatch and keep
// axpy passes on long contiguous runs.
const minJChunk = 256

// MatMul returns C = A·B for A of shape [m,k] and B of shape [k,n].
func MatMul(a, b *Tensor) *Tensor {
	c := New(a.Shape[0], b.Shape[1])
	Gemm(false, false, 1, a, b, 0, c)
	return c
}

// Gemm computes C = alpha*op(A)·op(B) + beta*C where op optionally
// transposes its argument. A, B and C must be rank-2. Shapes after op must
// satisfy op(A):[m,k], op(B):[k,n], C:[m,n].
//
// The kernel is register-blocked 2×2: two C rows by two B rows per inner
// pass (axpy2x2), with a single-row tail that keeps the identical 2-wise
// k grouping, and large operands are tiled into kTile×nTile panels. Rows
// of C are partitioned across the persistent worker pool; each row is
// owned by exactly one worker and accumulated in a fixed order, so
// results are bitwise independent of the parallelism setting. Any future
// kernel variant must preserve the per-row accumulation grouping (2-wise
// over k, panels fixed by shape) or the serial/parallel/AVX paths stop
// being bitwise identical — see TestGemmSerialParallelBitwise.
func Gemm(transA, transB bool, alpha float64, a, b *Tensor, beta float64, c *Tensor) {
	if len(a.Shape) != 2 || len(b.Shape) != 2 || len(c.Shape) != 2 {
		panic("tensor: Gemm requires rank-2 tensors")
	}
	am, ak := a.Shape[0], a.Shape[1]
	if transA {
		am, ak = ak, am
	}
	bk, bn := b.Shape[0], b.Shape[1]
	if transB {
		bk, bn = bn, bk
	}
	if ak != bk || c.Shape[0] != am || c.Shape[1] != bn {
		panic("tensor: Gemm shape mismatch")
	}
	m, k, n := am, ak, bn

	if beta == 0 {
		c.Zero()
	} else if beta != 1 {
		c.Scale(beta)
	}
	if alpha == 0 || m == 0 || n == 0 || k == 0 {
		return
	}

	workers := Parallelism()
	if 2*m*n*k < serialThreshold || workers <= 1 {
		gemmBlock(transA, transB, alpha, a, b, c, 0, m, 0, n, k)
		return
	}

	// Partition C into a rows × cols grid of chunks. Row splitting alone
	// starves the pool on the skinny-m/huge-n GEMMs batched conv produces
	// (a VGG block's forward is [OutC, InC·K²] × [InC·K², N·OH·OW] with
	// OutC as small as 8), so leftover workers split the j dimension too.
	// Every C element's accumulation order over k is fixed by the matrix
	// shapes alone — never by the chunk a worker owns — so the result
	// stays bitwise identical to the serial kernel for any grid.
	rows := workers
	if rows > m {
		rows = m
	}
	cols := 1
	if rows < workers && n >= 2*minJChunk {
		cols = (workers + rows - 1) / rows
		if maxCols := n / minJChunk; cols > maxCols {
			cols = maxCols
		}
	}
	rowChunk := (m + rows - 1) / rows
	// Round the j chunk up to a multiple of 8 (one 64-byte cache line of
	// C) so adjacent workers do not false-share row segments.
	jChunk := (n + cols - 1) / cols
	jChunk = (jChunk + 7) &^ 7

	var wg sync.WaitGroup
	for lo := 0; lo < m; lo += rowChunk {
		hi := lo + rowChunk
		if hi > m {
			hi = m
		}
		for jLo := 0; jLo < n; jLo += jChunk {
			jHi := jLo + jChunk
			if jHi > n {
				jHi = n
			}
			if hi == m && jHi == n {
				// Run the final chunk on the calling goroutine: the caller
				// would otherwise idle in Wait while its work sits queued
				// behind other callers' chunks.
				gemmBlock(transA, transB, alpha, a, b, c, lo, hi, jLo, jHi, k)
				break
			}
			wg.Add(1)
			task := func(lo, hi, jLo, jHi int) func() {
				return func() {
					defer wg.Done()
					gemmBlock(transA, transB, alpha, a, b, c, lo, hi, jLo, jHi, k)
				}
			}(lo, hi, jLo, jHi)
			if !trySubmit(task) {
				task()
			}
		}
	}
	wg.Wait()
}

// gemmBlock accumulates the C block rows [lo,hi) × columns [jLo,jHi)
// with the blocked kernel. The loop order keeps the innermost access
// contiguous whenever the operand layout permits, and the per-element
// accumulation order — always a fixed 2-wise grouping over k — depends
// only on the matrix shapes, never on the block bounds, so any grid
// partition of C reproduces the serial result bitwise.
func gemmBlock(transA, transB bool, alpha float64, a, b, c *Tensor, lo, hi, jLo, jHi, k int) {
	n := c.Shape[1]
	ad, bd, cd := a.Data, b.Data, c.Data
	switch {
	case !transA && !transB:
		// C[i,j] += alpha * A[i,p] * B[p,j], tiled j-then-k, k unrolled 4x.
		for j0 := jLo; j0 < jHi; j0 += nTile {
			j1 := j0 + nTile
			if j1 > jHi {
				j1 = jHi
			}
			for p0 := 0; p0 < k; p0 += kTile {
				p1 := p0 + kTile
				if p1 > k {
					p1 = k
				}
				nj := j1 - j0
				i := lo
				for ; i+2 <= hi; i += 2 {
					c0 := cd[i*n+j0:][:nj]
					c1 := cd[(i+1)*n+j0:][:nj]
					a0 := ad[i*k : i*k+k]
					a1 := ad[(i+1)*k : (i+1)*k+k]
					p := p0
					for ; p+2 <= p1; p += 2 {
						axpy2x2(alpha*a0[p], alpha*a0[p+1], alpha*a1[p], alpha*a1[p+1],
							bd[p*n+j0:][:nj], bd[(p+1)*n+j0:][:nj], c0, c1)
					}
					for ; p < p1; p++ {
						u := alpha * a0[p]
						v := alpha * a1[p]
						bp := bd[p*n+j0:][:nj]
						for j := range c0 {
							bv := bp[j]
							c0[j] += u * bv
							c1[j] += v * bv
						}
					}
				}
				// The single-row tail mirrors the pair path's 2-wise k
				// grouping exactly, so a row's accumulation order does not
				// depend on which path (or worker chunk) processed it.
				for ; i < hi; i++ {
					ci := cd[i*n+j0:][:nj]
					ai := ad[i*k : i*k+k]
					p := p0
					for ; p+2 <= p1; p += 2 {
						axpy2x1(alpha*ai[p], alpha*ai[p+1],
							bd[p*n+j0:][:nj], bd[(p+1)*n+j0:][:nj], ci)
					}
					for ; p < p1; p++ {
						av := alpha * ai[p]
						bp := bd[p*n+j0:][:nj]
						for j := range ci {
							ci[j] += av * bp[j]
						}
					}
				}
			}
		}
	case !transA && transB:
		// C[i,j] += alpha * A[i,p] * B[j,p]: a dot of two rows with the
		// fixed 16-stripe reduction tree (see dot).
		for i := lo; i < hi; i++ {
			ai := ad[i*k : i*k+k]
			ci := cd[i*n : i*n+n]
			for j := jLo; j < jHi; j++ {
				ci[j] += alpha * dot(ai, bd[j*k:j*k+k])
			}
		}
	case transA && !transB:
		// C[i,j] += alpha * A[p,i] * B[p,j], k unrolled 2x so each pass
		// over a C row covers two B rows.
		m := c.Shape[0]
		nj := jHi - jLo
		p := 0
		for ; p+2 <= k; p += 2 {
			ap0 := ad[p*m : p*m+m]
			ap1 := ad[(p+1)*m : (p+1)*m+m]
			bp0 := bd[p*n+jLo:][:nj]
			bp1 := bd[(p+1)*n+jLo:][:nj]
			for i := lo; i < hi; i++ {
				axpy2x1(alpha*ap0[i], alpha*ap1[i], bp0, bp1, cd[i*n+jLo:][:nj])
			}
		}
		for ; p < k; p++ {
			ap := ad[p*m : p*m+m]
			bp := bd[p*n+jLo:][:nj]
			for i := lo; i < hi; i++ {
				av := alpha * ap[i]
				ci := cd[i*n+jLo:][:nj]
				for j := range ci {
					ci[j] += av * bp[j]
				}
			}
		}
	default: // transA && transB
		m := c.Shape[0]
		for i := lo; i < hi; i++ {
			ci := cd[i*n : i*n+n]
			for j := jLo; j < jHi; j++ {
				s := 0.0
				for p := 0; p < k; p++ {
					s += ad[p*m+i] * bd[j*k+p]
				}
				ci[j] += alpha * s
			}
		}
	}
}

// MatVec returns y = A·x for A [m,n] and x of length n.
func MatVec(a *Tensor, x []float64) []float64 {
	m, n := a.Shape[0], a.Shape[1]
	if len(x) != n {
		panic("tensor: MatVec length mismatch")
	}
	y := make([]float64, m)
	for i := 0; i < m; i++ {
		row := a.Data[i*n : i*n+n]
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}
