package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// parallelism is the number of goroutines GEMM may fan out to. FL rounds
// train many clients concurrently, so the per-operation parallelism is a
// process-wide knob rather than a per-call argument.
var parallelism int64 = int64(runtime.GOMAXPROCS(0))

// SetParallelism caps the number of goroutines used by a single GEMM call.
// n < 1 resets to GOMAXPROCS. It returns the previous value.
func SetParallelism(n int) int {
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	return int(atomic.SwapInt64(&parallelism, int64(n)))
}

// Parallelism reports the current GEMM goroutine cap.
func Parallelism() int { return int(atomic.LoadInt64(&parallelism)) }

// serialThreshold is the FLOP count below which GEMM stays single-threaded;
// goroutine fan-out costs more than it saves on small matrices.
const serialThreshold = 1 << 16

// MatMul returns C = A·B for A of shape [m,k] and B of shape [k,n].
func MatMul(a, b *Tensor) *Tensor {
	m, k := a.Shape[0], a.Shape[1]
	n := b.Shape[1]
	c := New(m, n)
	Gemm(false, false, 1, a, b, 0, c)
	_ = k
	return c
}

// Gemm computes C = alpha*op(A)·op(B) + beta*C where op optionally
// transposes its argument. A, B and C must be rank-2. Shapes after op must
// satisfy op(A):[m,k], op(B):[k,n], C:[m,n].
func Gemm(transA, transB bool, alpha float64, a, b *Tensor, beta float64, c *Tensor) {
	if len(a.Shape) != 2 || len(b.Shape) != 2 || len(c.Shape) != 2 {
		panic("tensor: Gemm requires rank-2 tensors")
	}
	am, ak := a.Shape[0], a.Shape[1]
	if transA {
		am, ak = ak, am
	}
	bk, bn := b.Shape[0], b.Shape[1]
	if transB {
		bk, bn = bn, bk
	}
	if ak != bk || c.Shape[0] != am || c.Shape[1] != bn {
		panic("tensor: Gemm shape mismatch")
	}
	m, k, n := am, ak, bn

	if beta == 0 {
		c.Zero()
	} else if beta != 1 {
		c.Scale(beta)
	}
	if alpha == 0 || m == 0 || n == 0 || k == 0 {
		return
	}

	workers := Parallelism()
	if 2*m*n*k < serialThreshold || workers <= 1 || m == 1 {
		gemmRows(transA, transB, alpha, a, b, c, 0, m, k, n)
		return
	}
	if workers > m {
		workers = m
	}
	chunk := (m + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < m; lo += chunk {
		hi := lo + chunk
		if hi > m {
			hi = m
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			gemmRows(transA, transB, alpha, a, b, c, lo, hi, k, n)
		}(lo, hi)
	}
	wg.Wait()
}

// gemmRows accumulates rows [lo,hi) of C. The inner loops are arranged so
// that the innermost access pattern is contiguous whenever the operand
// layout permits (i-k-j order for the non-transposed cases).
func gemmRows(transA, transB bool, alpha float64, a, b, c *Tensor, lo, hi, k, n int) {
	ad, bd, cd := a.Data, b.Data, c.Data
	switch {
	case !transA && !transB:
		// C[i,j] += alpha * A[i,p] * B[p,j]
		for i := lo; i < hi; i++ {
			ci := cd[i*n : i*n+n]
			ai := ad[i*k : i*k+k]
			for p := 0; p < k; p++ {
				av := alpha * ai[p]
				if av == 0 {
					continue
				}
				bp := bd[p*n : p*n+n]
				for j, bv := range bp {
					ci[j] += av * bv
				}
			}
		}
	case !transA && transB:
		// C[i,j] += alpha * A[i,p] * B[j,p]  (dot of two rows)
		for i := lo; i < hi; i++ {
			ai := ad[i*k : i*k+k]
			ci := cd[i*n : i*n+n]
			for j := 0; j < n; j++ {
				bj := bd[j*k : j*k+k]
				s := 0.0
				for p, av := range ai {
					s += av * bj[p]
				}
				ci[j] += alpha * s
			}
		}
	case transA && !transB:
		// C[i,j] += alpha * A[p,i] * B[p,j]
		m := c.Shape[0]
		for p := 0; p < k; p++ {
			ap := ad[p*m : p*m+m]
			bp := bd[p*n : p*n+n]
			for i := lo; i < hi; i++ {
				av := alpha * ap[i]
				if av == 0 {
					continue
				}
				ci := cd[i*n : i*n+n]
				for j, bv := range bp {
					ci[j] += av * bv
				}
			}
		}
	default: // transA && transB
		m := c.Shape[0]
		for i := lo; i < hi; i++ {
			ci := cd[i*n : i*n+n]
			for j := 0; j < n; j++ {
				s := 0.0
				for p := 0; p < k; p++ {
					s += ad[p*m+i] * bd[j*k+p]
				}
				ci[j] += alpha * s
			}
		}
	}
}

// MatVec returns y = A·x for A [m,n] and x of length n.
func MatVec(a *Tensor, x []float64) []float64 {
	m, n := a.Shape[0], a.Shape[1]
	if len(x) != n {
		panic("tensor: MatVec length mismatch")
	}
	y := make([]float64, m)
	for i := 0; i < m; i++ {
		row := a.Data[i*n : i*n+n]
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}
