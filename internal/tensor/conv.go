package tensor

// ConvOutSize returns the spatial output size of a convolution or pooling
// window: floor((in + 2*pad - kernel)/stride) + 1.
func ConvOutSize(in, kernel, stride, pad int) int {
	return (in+2*pad-kernel)/stride + 1
}

// Im2Col unfolds a single image x of shape [C,H,W] into a matrix of shape
// [C*kh*kw, oh*ow] so that convolution becomes GEMM. Out-of-bounds taps
// (padding) contribute zeros. The result is written into cols, which must
// have shape [C*kh*kw, oh*ow].
func Im2Col(x *Tensor, kh, kw, stride, pad int, cols *Tensor) {
	c, h, w := x.Shape[0], x.Shape[1], x.Shape[2]
	oh := ConvOutSize(h, kh, stride, pad)
	ow := ConvOutSize(w, kw, stride, pad)
	if cols.Shape[0] != c*kh*kw || cols.Shape[1] != oh*ow {
		panic("tensor: Im2Col cols shape mismatch")
	}
	xd, cd := x.Data, cols.Data
	row := 0
	for ch := 0; ch < c; ch++ {
		base := ch * h * w
		for ki := 0; ki < kh; ki++ {
			for kj := 0; kj < kw; kj++ {
				out := cd[row*oh*ow : (row+1)*oh*ow]
				idx := 0
				for oi := 0; oi < oh; oi++ {
					ii := oi*stride - pad + ki
					if ii < 0 || ii >= h {
						for oj := 0; oj < ow; oj++ {
							out[idx] = 0
							idx++
						}
						continue
					}
					rowBase := base + ii*w
					jj := -pad + kj
					for oj := 0; oj < ow; oj++ {
						if jj >= 0 && jj < w {
							out[idx] = xd[rowBase+jj]
						} else {
							out[idx] = 0
						}
						idx++
						jj += stride
					}
				}
				row++
			}
		}
	}
}

// Col2Im folds cols of shape [C*kh*kw, oh*ow] back into an image gradient
// of shape [C,H,W], accumulating overlapping taps. dst is zeroed first.
func Col2Im(cols *Tensor, c, h, w, kh, kw, stride, pad int, dst *Tensor) {
	oh := ConvOutSize(h, kh, stride, pad)
	ow := ConvOutSize(w, kw, stride, pad)
	if dst.Shape[0] != c || dst.Shape[1] != h || dst.Shape[2] != w {
		panic("tensor: Col2Im dst shape mismatch")
	}
	dst.Zero()
	cd, dd := cols.Data, dst.Data
	row := 0
	for ch := 0; ch < c; ch++ {
		base := ch * h * w
		for ki := 0; ki < kh; ki++ {
			for kj := 0; kj < kw; kj++ {
				in := cd[row*oh*ow : (row+1)*oh*ow]
				idx := 0
				for oi := 0; oi < oh; oi++ {
					ii := oi*stride - pad + ki
					if ii < 0 || ii >= h {
						idx += ow
						continue
					}
					rowBase := base + ii*w
					jj := -pad + kj
					for oj := 0; oj < ow; oj++ {
						if jj >= 0 && jj < w {
							dd[rowBase+jj] += in[idx]
						}
						idx++
						jj += stride
					}
				}
				row++
			}
		}
	}
}
