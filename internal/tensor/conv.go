package tensor

// ConvOutSize returns the spatial output size of a convolution or pooling
// window: floor((in + 2*pad - kernel)/stride) + 1.
func ConvOutSize(in, kernel, stride, pad int) int {
	return (in+2*pad-kernel)/stride + 1
}

// Im2ColBatch unfolds a batch x of shape [N,C,H,W] into a matrix of shape
// [C*kh*kw, N*oh*ow] so that the convolution over the whole batch becomes
// a single GEMM. Sample s occupies columns [s*oh*ow, (s+1)*oh*ow). Out-of-
// bounds taps (padding) contribute zeros. The result is written into cols,
// which must have shape [C*kh*kw, N*oh*ow]. Stride-1 rows are bulk-copied.
func Im2ColBatch(x *Tensor, kh, kw, stride, pad int, cols *Tensor) {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	oh := ConvOutSize(h, kh, stride, pad)
	ow := ConvOutSize(w, kw, stride, pad)
	total := n * oh * ow
	if cols.Shape[0] != c*kh*kw || cols.Shape[1] != total {
		panic("tensor: Im2ColBatch cols shape mismatch")
	}
	xd, cd := x.Data, cols.Data
	row := 0
	for ch := 0; ch < c; ch++ {
		for ki := 0; ki < kh; ki++ {
			for kj := 0; kj < kw; kj++ {
				out := cd[row*total : (row+1)*total]
				for s := 0; s < n; s++ {
					base := (s*c + ch) * h * w
					seg := out[s*oh*ow : (s+1)*oh*ow]
					idx := 0
					for oi := 0; oi < oh; oi++ {
						ii := oi*stride - pad + ki
						if ii < 0 || ii >= h {
							for j := 0; j < ow; j++ {
								seg[idx+j] = 0
							}
							idx += ow
							continue
						}
						rowBase := base + ii*w
						if stride == 1 {
							jj := kj - pad // input column under oj=0
							lo, hi := clipWindow(jj, ow, w)
							for j := 0; j < lo; j++ {
								seg[idx+j] = 0
							}
							if hi > lo {
								copy(seg[idx+lo:idx+hi], xd[rowBase+jj+lo:rowBase+jj+hi])
							}
							for j := hi; j < ow; j++ {
								seg[idx+j] = 0
							}
							idx += ow
							continue
						}
						jj := -pad + kj
						for oj := 0; oj < ow; oj++ {
							if jj >= 0 && jj < w {
								seg[idx] = xd[rowBase+jj]
							} else {
								seg[idx] = 0
							}
							idx++
							jj += stride
						}
					}
				}
				row++
			}
		}
	}
}

// Col2ImBatch folds cols of shape [C*kh*kw, N*oh*ow] back into a batch
// gradient of shape [N,C,H,W], accumulating overlapping taps. dst is
// zeroed first.
func Col2ImBatch(cols *Tensor, c, h, w, kh, kw, stride, pad int, dst *Tensor) {
	n := dst.Shape[0]
	oh := ConvOutSize(h, kh, stride, pad)
	ow := ConvOutSize(w, kw, stride, pad)
	total := n * oh * ow
	if dst.Shape[1] != c || dst.Shape[2] != h || dst.Shape[3] != w {
		panic("tensor: Col2ImBatch dst shape mismatch")
	}
	if cols.Shape[0] != c*kh*kw || cols.Shape[1] != total {
		panic("tensor: Col2ImBatch cols shape mismatch")
	}
	dst.Zero()
	cd, dd := cols.Data, dst.Data
	row := 0
	for ch := 0; ch < c; ch++ {
		for ki := 0; ki < kh; ki++ {
			for kj := 0; kj < kw; kj++ {
				in := cd[row*total : (row+1)*total]
				for s := 0; s < n; s++ {
					base := (s*c + ch) * h * w
					seg := in[s*oh*ow : (s+1)*oh*ow]
					idx := 0
					for oi := 0; oi < oh; oi++ {
						ii := oi*stride - pad + ki
						if ii < 0 || ii >= h {
							idx += ow
							continue
						}
						rowBase := base + ii*w
						if stride == 1 {
							jj := kj - pad
							lo, hi := clipWindow(jj, ow, w)
							if hi > lo {
								drow := dd[rowBase+jj+lo : rowBase+jj+hi]
								srow := seg[idx+lo : idx+hi]
								for j, v := range srow {
									drow[j] += v
								}
							}
							idx += ow
							continue
						}
						jj := -pad + kj
						for oj := 0; oj < ow; oj++ {
							if jj >= 0 && jj < w {
								dd[rowBase+jj] += seg[idx]
							}
							idx++
							jj += stride
						}
					}
				}
				row++
			}
		}
	}
}

// clipWindow returns the sub-range [lo,hi) of a length-ow stride-1 window
// whose input column off+j stays inside [0,w).
func clipWindow(off, ow, w int) (lo, hi int) {
	lo, hi = 0, ow
	if off < 0 {
		lo = -off
	}
	if off+ow > w {
		hi = w - off
	}
	if lo > ow {
		lo = ow
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// Im2Col unfolds a single image x of shape [C,H,W] into a matrix of shape
// [C*kh*kw, oh*ow]. It is the N==1 special case of Im2ColBatch.
func Im2Col(x *Tensor, kh, kw, stride, pad int, cols *Tensor) {
	c, h, w := x.Shape[0], x.Shape[1], x.Shape[2]
	Im2ColBatch(x.Reshape(1, c, h, w), kh, kw, stride, pad, cols)
}

// Col2Im folds cols of shape [C*kh*kw, oh*ow] back into an image gradient
// of shape [C,H,W], accumulating overlapping taps. dst is zeroed first. It
// is the N==1 special case of Col2ImBatch.
func Col2Im(cols *Tensor, c, h, w, kh, kw, stride, pad int, dst *Tensor) {
	Col2ImBatch(cols, c, h, w, kh, kw, stride, pad, dst.Reshape(1, c, h, w))
}
