package tensor

import "testing"

func TestScratchReuse(t *testing.T) {
	a := GetScratch(4, 8)
	if a.Shape[0] != 4 || a.Shape[1] != 8 || len(a.Data) != 32 {
		t.Fatalf("scratch shape %v len %d", a.Shape, len(a.Data))
	}
	a.Data[0] = 42
	PutScratch(a)
	b := GetScratch(8, 4) // same element count, different shape
	if len(b.Data) != 32 || b.Shape[0] != 8 || b.Shape[1] != 4 {
		t.Fatalf("recycled scratch shape %v len %d", b.Shape, len(b.Data))
	}
	if &b.Data[0] != &a.Data[0] {
		t.Fatal("scratch slab was not recycled")
	}
	PutScratch(b)
	// A different size must not alias the pooled slab.
	c := GetScratch(3, 3)
	if len(c.Data) != 9 {
		t.Fatalf("scratch len %d, want 9", len(c.Data))
	}
}

func TestScratchNilAndEmpty(t *testing.T) {
	PutScratch(nil) // must not panic
	e := GetScratch(0, 5)
	if len(e.Data) != 0 {
		t.Fatalf("empty scratch has %d elements", len(e.Data))
	}
	PutScratch(e)
}
