//go:build !amd64

package tensor

func axpy2x2Accel(u0, u1, v0, v1 float64, b0, b1, c0, c1 []float64) int { return 0 }

func axpy2x1Accel(u0, u1 float64, b0, b1, c0 []float64) int { return 0 }

func dotLanesAccel(a, b []float64) dotLanes { return dotLanesGeneric(a, b) }
