//go:build amd64

package tensor

// useAVX reports whether the OS and CPU support 256-bit AVX float math.
// The kernels below use only AVX1 instructions (VMULPD/VADDPD/VBROADCASTSD)
// so plain AVX support is sufficient.
var useAVX = detectAVX()

func detectAVX() bool {
	maxID, _, _, _ := cpuidex(0, 0)
	if maxID < 1 {
		return false
	}
	_, _, ecx, _ := cpuidex(1, 0)
	const osxsave = 1 << 27
	const avx = 1 << 28
	if ecx&osxsave == 0 || ecx&avx == 0 {
		return false
	}
	// XGETBV(0) bits 1|2: XMM and YMM state enabled by the OS.
	eax, _ := xgetbv0()
	return eax&0x6 == 0x6
}

// Implemented in axpy_amd64.s.
func cpuidex(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)
func xgetbv0() (eax, edx uint32)
func axpy2x2AVX(u0, u1, v0, v1 float64, b0, b1, c0, c1 *float64, n int)
func axpy2x1AVX(u0, u1 float64, b0, b1, c0 *float64, n int)
func dotLanesAVX(a, b *float64, n int) (s0, s1, s2, s3 float64)

// axpy2x2Accel runs the AVX kernel over the largest multiple-of-4 prefix
// and returns how many elements it handled.
func axpy2x2Accel(u0, u1, v0, v1 float64, b0, b1, c0, c1 []float64) int {
	n4 := len(c0) &^ 3
	if !useAVX || n4 == 0 {
		return 0
	}
	axpy2x2AVX(u0, u1, v0, v1, &b0[0], &b1[0], &c0[0], &c1[0], n4)
	return n4
}

// axpy2x1Accel runs the AVX kernel over the largest multiple-of-4 prefix
// and returns how many elements it handled.
func axpy2x1Accel(u0, u1 float64, b0, b1, c0 []float64) int {
	n4 := len(c0) &^ 3
	if !useAVX || n4 == 0 {
		return 0
	}
	axpy2x1AVX(u0, u1, &b0[0], &b1[0], &c0[0], n4)
	return n4
}

// dotLanesAccel computes the striped partial sums over a multiple-of-16
// length using AVX when available.
func dotLanesAccel(a, b []float64) dotLanes {
	if !useAVX {
		return dotLanesGeneric(a, b)
	}
	s0, s1, s2, s3 := dotLanesAVX(&a[0], &b[0], len(a))
	return dotLanes{s0, s1, s2, s3}
}
