//go:build amd64

#include "textflag.h"

// func cpuidex(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidex(SB), NOSPLIT, $0-24
	MOVL eaxArg+0(FP), AX
	MOVL ecxArg+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func axpy2x2AVX(u0, u1, v0, v1 float64, b0, b1, c0, c1 *float64, n int)
//
// c0[j] += u0*b0[j] + u1*b1[j]; c1[j] += v0*b0[j] + v1*b1[j] for
// j in [0,n), n a multiple of 4. Uses separate VMULPD/VADDPD in the same
// association as the Go code so results are bitwise identical.
TEXT ·axpy2x2AVX(SB), NOSPLIT, $0-72
	VBROADCASTSD u0+0(FP), Y0
	VBROADCASTSD u1+8(FP), Y1
	VBROADCASTSD v0+16(FP), Y2
	VBROADCASTSD v1+24(FP), Y3
	MOVQ b0+32(FP), SI
	MOVQ b1+40(FP), DI
	MOVQ c0+48(FP), R8
	MOVQ c1+56(FP), R9
	MOVQ n+64(FP), CX
	SHRQ $2, CX
	JZ   axpy22done
	XORQ AX, AX

axpy22loop:
	VMOVUPD (SI)(AX*8), Y4        // b0
	VMOVUPD (DI)(AX*8), Y5        // b1
	VMULPD  Y4, Y0, Y6            // u0*b0
	VMULPD  Y5, Y1, Y7            // u1*b1
	VADDPD  Y7, Y6, Y6            // u0*b0 + u1*b1
	VMOVUPD (R8)(AX*8), Y8        // c0
	VADDPD  Y6, Y8, Y8            // c0 + (...)
	VMOVUPD Y8, (R8)(AX*8)
	VMULPD  Y4, Y2, Y6            // v0*b0
	VMULPD  Y5, Y3, Y7            // v1*b1
	VADDPD  Y7, Y6, Y6
	VMOVUPD (R9)(AX*8), Y8        // c1
	VADDPD  Y6, Y8, Y8
	VMOVUPD Y8, (R9)(AX*8)
	ADDQ    $4, AX
	DECQ    CX
	JNZ     axpy22loop

axpy22done:
	VZEROUPPER
	RET

// func axpy2x1AVX(u0, u1 float64, b0, b1, c0 *float64, n int)
//
// c0[j] += u0*b0[j] + u1*b1[j] for j in [0,n), n a multiple of 4.
TEXT ·axpy2x1AVX(SB), NOSPLIT, $0-48
	VBROADCASTSD u0+0(FP), Y0
	VBROADCASTSD u1+8(FP), Y1
	MOVQ b0+16(FP), SI
	MOVQ b1+24(FP), DI
	MOVQ c0+32(FP), R8
	MOVQ n+40(FP), CX
	SHRQ $2, CX
	JZ   axpy21done
	XORQ AX, AX

axpy21loop:
	VMOVUPD (SI)(AX*8), Y4
	VMOVUPD (DI)(AX*8), Y5
	VMULPD  Y4, Y0, Y6
	VMULPD  Y5, Y1, Y7
	VADDPD  Y7, Y6, Y6
	VMOVUPD (R8)(AX*8), Y8
	VADDPD  Y6, Y8, Y8
	VMOVUPD Y8, (R8)(AX*8)
	ADDQ    $4, AX
	DECQ    CX
	JNZ     axpy21loop

axpy21done:
	VZEROUPPER
	RET

// func dotLanesAVX(a, b *float64, n int) (s0, s1, s2, s3 float64)
//
// Computes 16 striped partial sums of a[p]*b[p] (stripe = p mod 16) in
// four YMM accumulators, then folds them lanewise as
// t[l] = (s[l] + s[l+4]) + (s[l+8] + s[l+12]) — the same reduction tree
// as dotLanesGeneric. n must be a positive multiple of 16.
TEXT ·dotLanesAVX(SB), NOSPLIT, $0-56
	MOVQ a+0(FP), SI
	MOVQ b+8(FP), DI
	MOVQ n+16(FP), CX
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	SHRQ $4, CX
	JZ   dotdone
	XORQ AX, AX

dotloop:
	VMOVUPD (SI)(AX*8), Y4
	VMOVUPD (DI)(AX*8), Y5
	VMULPD  Y5, Y4, Y4
	VADDPD  Y4, Y0, Y0
	VMOVUPD 32(SI)(AX*8), Y4
	VMOVUPD 32(DI)(AX*8), Y5
	VMULPD  Y5, Y4, Y4
	VADDPD  Y4, Y1, Y1
	VMOVUPD 64(SI)(AX*8), Y4
	VMOVUPD 64(DI)(AX*8), Y5
	VMULPD  Y5, Y4, Y4
	VADDPD  Y4, Y2, Y2
	VMOVUPD 96(SI)(AX*8), Y4
	VMOVUPD 96(DI)(AX*8), Y5
	VMULPD  Y5, Y4, Y4
	VADDPD  Y4, Y3, Y3
	ADDQ    $16, AX
	DECQ    CX
	JNZ     dotloop

dotdone:
	// t = (Y0 + Y1) + (Y2 + Y3), lanewise.
	VADDPD Y1, Y0, Y0
	VADDPD Y3, Y2, Y2
	VADDPD Y2, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VMOVSD X0, s0+24(FP)
	VUNPCKHPD X0, X0, X2
	VMOVSD X2, s1+32(FP)
	VMOVSD X1, s2+40(FP)
	VUNPCKHPD X1, X1, X3
	VMOVSD X3, s3+48(FP)
	VZEROUPPER
	RET
