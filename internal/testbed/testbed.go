// Package testbed simulates the paper's real AIoT test-bed (Table 5): a
// 17-device fleet of Raspberry Pi 4B, Jetson Nano and Jetson Xavier AGX
// boards training MobileNetV2 on Widar. Without the physical boards, the
// simulation assigns each device class an effective training throughput
// and network bandwidth and converts each FL round's dispatch ledger into
// simulated wall-clock time, which is what Figure 6 plots accuracy
// against.
package testbed

import (
	"fmt"

	"adaptivefl/internal/core"
)

// DeviceSpec describes one hardware class of the platform.
type DeviceSpec struct {
	Name  string
	Class core.DeviceClass
	// Throughput is effective training MACs per second. The defaults
	// encode the relative speeds of the boards (a Pi 4B CPU is roughly
	// 20× slower than a Nano's Maxwell GPU, which is roughly 5× slower
	// than a Xavier AGX at DNN training).
	Throughput float64
	// Bandwidth is the model up/down link in bytes per second.
	Bandwidth float64
	Count     int
}

// Table5Platform returns the paper's test-bed configuration: 4 weak
// Raspberry Pi 4B, 10 medium Jetson Nano, 3 strong Jetson Xavier AGX.
func Table5Platform() []DeviceSpec {
	return []DeviceSpec{
		{Name: "Raspberry Pi 4B", Class: core.Weak, Throughput: 0.5e9, Bandwidth: 10e6, Count: 4},
		{Name: "Jetson Nano", Class: core.Medium, Throughput: 10e9, Bandwidth: 25e6, Count: 10},
		{Name: "Jetson Xavier AGX", Class: core.Strong, Throughput: 50e9, Bandwidth: 50e6, Count: 3},
	}
}

// Sim converts round ledgers into simulated seconds.
type Sim struct {
	specs         map[core.DeviceClass]DeviceSpec
	BytesPerParam float64
	// TrainPassFactor scales a forward pass to a full training step
	// (forward + backward ≈ 3× forward MACs).
	TrainPassFactor float64
	clock           float64
}

// NewSim builds a simulator from device specs.
func NewSim(specs []DeviceSpec) (*Sim, error) {
	s := &Sim{specs: map[core.DeviceClass]DeviceSpec{}, BytesPerParam: 4, TrainPassFactor: 3}
	for _, sp := range specs {
		if sp.Throughput <= 0 || sp.Bandwidth <= 0 {
			return nil, fmt.Errorf("testbed: spec %q needs positive throughput and bandwidth", sp.Name)
		}
		s.specs[sp.Class] = sp
	}
	for _, class := range []core.DeviceClass{core.Weak, core.Medium, core.Strong} {
		if _, ok := s.specs[class]; !ok {
			return nil, fmt.Errorf("testbed: missing spec for %v devices", class)
		}
	}
	return s, nil
}

// TrainTime returns the seconds a device class needs for local training:
// TrainPassFactor · MACs/sample · samples · epochs / throughput.
func (s *Sim) TrainTime(class core.DeviceClass, macsPerSample int64, samples, epochs int) float64 {
	sp := s.specs[class]
	work := s.TrainPassFactor * float64(macsPerSample) * float64(samples) * float64(epochs)
	return work / sp.Throughput
}

// TransferTime returns the seconds to move a model of the given parameter
// count down and the returned model back up, using the BytesPerParam
// estimate. When the round ledger carries real encoded sizes (a wire
// codec was active), RoundTime uses TransferTimeBytes instead.
func (s *Sim) TransferTime(class core.DeviceClass, downParams, upParams int64) float64 {
	return s.TransferTimeBytes(class, int64(float64(downParams)*s.BytesPerParam), int64(float64(upParams)*s.BytesPerParam))
}

// TransferTimeBytes returns the seconds to move downBytes to the device
// and upBytes back.
func (s *Sim) TransferTimeBytes(class core.DeviceClass, downBytes, upBytes int64) float64 {
	sp := s.specs[class]
	return float64(downBytes+upBytes) / sp.Bandwidth
}

// DispatchTimes prices the three phases of one dispatch for the
// event-driven scheduler (internal/sched's CostModel): seconds to move the
// dispatched model down, train it locally, and move the result back up.
// Dispatches carrying real encoded byte counts are charged those bytes; a
// dispatch priced before training (codec estimate mode) carries the
// codec's uplink forecast in GotBytesEst instead, and the BytesPerParam ×
// params estimate covers the rest. Failed dispatches mirror RoundTime's
// accounting: no training, and the estimate path's full round trip
// (d.Got = d.Sent there) becomes an uplink of the sent size.
func (s *Sim) DispatchTimes(class core.DeviceClass, d core.Dispatch, samples, epochs int) (down, train, up float64) {
	sp := s.specs[class]
	if d.SentBytes > 0 {
		down = float64(d.SentBytes) / sp.Bandwidth
		upBytes := d.GotBytes
		if upBytes == 0 && d.GotBytesEst > 0 {
			// Pre-training pricing: the trained payload does not exist yet,
			// so the plan's size forecast stands in for it.
			upBytes = d.GotBytesEst
		}
		if d.Failed {
			upBytes = d.SentBytes
		}
		up = float64(upBytes) / sp.Bandwidth
	} else {
		down = float64(d.Sent.Size) * s.BytesPerParam / sp.Bandwidth
		up = float64(d.Got.Size) * s.BytesPerParam / sp.Bandwidth
	}
	if !d.Failed {
		train = s.TrainTime(class, d.Got.MACs, samples, epochs)
	}
	return down, train, up
}

// RoundTime computes one synchronous round's wall-clock: the slowest
// selected client's transfer + training time. classOf maps client id to
// device class; samplesOf to local dataset size. Dispatches that carry
// real encoded byte counts (core.Config.Codec or an HTTP trainer was in
// play) are charged those bytes; otherwise the BytesPerParam × params
// estimate applies.
func (s *Sim) RoundTime(stats core.RoundStats, classOf func(int) core.DeviceClass, samplesOf func(int) int, epochs int) float64 {
	worst := 0.0
	for _, d := range stats.Dispatches {
		class := classOf(d.Client)
		var t float64
		if d.SentBytes > 0 {
			up := d.GotBytes
			if d.Failed {
				// The estimate path charges a failed dispatch the full
				// round trip (d.Got = d.Sent there); mirror that here so
				// codec-vs-estimate timing comparisons are not skewed by
				// different failure accounting.
				up = d.SentBytes
			}
			t = s.TransferTimeBytes(class, d.SentBytes, up)
		} else {
			t = s.TransferTime(class, d.Sent.Size, d.Got.Size)
		}
		if !d.Failed {
			t += s.TrainTime(class, d.Got.MACs, samplesOf(d.Client), epochs)
		}
		if t > worst {
			worst = t
		}
	}
	return worst
}

// Advance adds seconds to the simulated clock and returns the new time.
func (s *Sim) Advance(seconds float64) float64 {
	s.clock += seconds
	return s.clock
}

// Clock returns the current simulated time in seconds.
func (s *Sim) Clock() float64 { return s.clock }
