package testbed

import (
	"testing"

	"adaptivefl/internal/core"
	"adaptivefl/internal/prune"
)

func TestTable5Platform(t *testing.T) {
	specs := Table5Platform()
	if len(specs) != 3 {
		t.Fatalf("%d specs, want 3", len(specs))
	}
	total := 0
	for _, sp := range specs {
		total += sp.Count
	}
	if total != 17 {
		t.Fatalf("platform has %d devices, want 17 (Table 5)", total)
	}
	// Ordering of capability must match the paper's hardware.
	if !(specs[0].Throughput < specs[1].Throughput && specs[1].Throughput < specs[2].Throughput) {
		t.Fatal("throughputs must increase weak < medium < strong")
	}
}

func TestNewSimValidation(t *testing.T) {
	if _, err := NewSim(nil); err == nil {
		t.Fatal("empty specs accepted")
	}
	bad := Table5Platform()
	bad[0].Throughput = 0
	if _, err := NewSim(bad); err == nil {
		t.Fatal("zero throughput accepted")
	}
	if _, err := NewSim(Table5Platform()); err != nil {
		t.Fatal(err)
	}
}

func TestTrainAndTransferTimes(t *testing.T) {
	sim, err := NewSim(Table5Platform())
	if err != nil {
		t.Fatal(err)
	}
	// A weak device must be much slower than a strong one on equal work.
	weak := sim.TrainTime(core.Weak, 1e6, 100, 5)
	strong := sim.TrainTime(core.Strong, 1e6, 100, 5)
	if weak <= strong*10 {
		t.Fatalf("weak %v should be >>10x strong %v", weak, strong)
	}
	// Transfer scales with parameter counts.
	t1 := sim.TransferTime(core.Medium, 1e6, 1e6)
	t2 := sim.TransferTime(core.Medium, 2e6, 2e6)
	if t2 <= t1 {
		t.Fatal("transfer time must grow with model size")
	}
}

func TestRoundTimeTakesSlowest(t *testing.T) {
	sim, err := NewSim(Table5Platform())
	if err != nil {
		t.Fatal(err)
	}
	small := prune.Submodel{Size: 1e5, MACs: 1e6}
	large := prune.Submodel{Size: 1e6, MACs: 1e7}
	stats := core.RoundStats{Dispatches: []core.Dispatch{
		{Client: 0, Sent: large, Got: small},
		{Client: 1, Sent: large, Got: large},
	}}
	classOf := func(id int) core.DeviceClass {
		if id == 0 {
			return core.Weak
		}
		return core.Strong
	}
	samplesOf := func(int) int { return 50 }
	got := sim.RoundTime(stats, classOf, samplesOf, 5)
	weakTime := sim.TransferTime(core.Weak, large.Size, small.Size) + sim.TrainTime(core.Weak, small.MACs, 50, 5)
	strongTime := sim.TransferTime(core.Strong, large.Size, large.Size) + sim.TrainTime(core.Strong, large.MACs, 50, 5)
	want := weakTime
	if strongTime > want {
		want = strongTime
	}
	if got != want {
		t.Fatalf("RoundTime = %v, want max(%v, %v)", got, weakTime, strongTime)
	}
}

func TestFailedDispatchStillCostsTransfer(t *testing.T) {
	sim, err := NewSim(Table5Platform())
	if err != nil {
		t.Fatal(err)
	}
	large := prune.Submodel{Size: 1e6, MACs: 1e7}
	stats := core.RoundStats{Dispatches: []core.Dispatch{
		{Client: 0, Sent: large, Got: large, Failed: true},
	}}
	got := sim.RoundTime(stats, func(int) core.DeviceClass { return core.Weak }, func(int) int { return 10 }, 5)
	if got <= 0 {
		t.Fatal("failed dispatch should still consume transfer time")
	}
	want := sim.TransferTime(core.Weak, large.Size, large.Size)
	if got != want {
		t.Fatalf("failed dispatch time = %v, want transfer-only %v", got, want)
	}
}

// TestRoundTimeUsesEncodedBytes: dispatches carrying real wire sizes are
// charged those bytes, not the BytesPerParam estimate — a quantized round
// must beat the raw estimate on the same submodels.
func TestRoundTimeUsesEncodedBytes(t *testing.T) {
	sim, err := NewSim(Table5Platform())
	if err != nil {
		t.Fatal(err)
	}
	large := prune.Submodel{Size: 1e6, MACs: 1e7}
	classOf := func(int) core.DeviceClass { return core.Weak }
	samplesOf := func(int) int { return 10 }
	est := core.RoundStats{Dispatches: []core.Dispatch{{Client: 0, Sent: large, Got: large}}}
	// A q8-style encoding: ~1 byte per param both ways instead of 4.
	coded := core.RoundStats{Dispatches: []core.Dispatch{
		{Client: 0, Sent: large, Got: large, SentBytes: 1e6, GotBytes: 1e6},
	}}
	tEst := sim.RoundTime(est, classOf, samplesOf, 1)
	tCoded := sim.RoundTime(coded, classOf, samplesOf, 1)
	if tCoded >= tEst {
		t.Fatalf("encoded-bytes round %v should beat estimate %v", tCoded, tEst)
	}
	train := sim.TrainTime(core.Weak, large.MACs, 10, 1)
	if want := sim.TransferTimeBytes(core.Weak, 1e6, 1e6) + train; tCoded != want {
		t.Fatalf("coded round = %v, want %v", tCoded, want)
	}
	// Failure accounting must match the estimate path: a failed dispatch
	// is charged the full round trip there (Got = Sent), so the bytes
	// path charges the downlink size both ways.
	failed := core.RoundStats{Dispatches: []core.Dispatch{
		{Client: 0, Sent: large, Got: large, Failed: true, SentBytes: 1e6},
	}}
	if got, want := sim.RoundTime(failed, classOf, samplesOf, 1), sim.TransferTimeBytes(core.Weak, 1e6, 1e6); got != want {
		t.Fatalf("failed coded dispatch = %v, want full round trip %v", got, want)
	}
}

func TestClockAdvance(t *testing.T) {
	sim, err := NewSim(Table5Platform())
	if err != nil {
		t.Fatal(err)
	}
	if sim.Clock() != 0 {
		t.Fatal("clock should start at 0")
	}
	sim.Advance(5)
	if got := sim.Advance(2.5); got != 7.5 {
		t.Fatalf("clock = %v, want 7.5", got)
	}
}
