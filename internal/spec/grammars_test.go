// Golden round-trip and fuzz coverage for every grammar ported onto the
// spec tokenizer. The golden strings are the documented examples from
// docs/ and README — each must parse, and each grammar with a canonical
// String()/Name() rendering must reach a fixed point (parse → render →
// parse → render is stable).
package spec_test

import (
	"reflect"
	"testing"

	"adaptivefl/internal/agg"
	"adaptivefl/internal/core"
	"adaptivefl/internal/sched"
)

// Documented population specs (docs/SCHED.md, docs/ROBUST.md, README).
var goldenPopulations = []string{
	"mix",
	"mix:n=1000000,weak=0.6,churn=30",
	"mix:n=1000000,weak=0.6,churn=30,on=60,slow=4,slowprob=0.1,samples=20",
	"mix:on=60,churn=20,slow=4,slowprob=0.1,samples=20,classes=8,data=widar",
	"mix:n=100000,adv=scale,advfrac=0.25,advk=4",
}

// Documented adversary specs (docs/ROBUST.md, README).
var goldenAdversaries = []string{
	"signflip",
	"signflip:frac=0.3",
	"scale:frac=0.3,k=10",
	"freeride",
	"stale-replay",
	"corrupt",
	"mix:frac=0.3,signflip=1,scale=1",
}

// Documented trace specs (docs/SCHED.md).
var goldenTraces = []string{
	"",
	"always",
	"straggler",
	"straggler:slow=10,prob=0.5,on=30",
	"churn:on=60,off=20,slow=4,prob=0.2",
	"churn:on=30,off=10",
	"churn:on=40",
}

// Documented aggregation policies (docs/ROBUST.md, README).
var goldenPolicies = []string{
	"",
	"mean",
	"trim",
	"trim:frac=0.2",
	"trim:frac=0.45",
	"krum",
	"krum:frac=0.2,m=2",
	"clip",
	"clip:tau=5",
	"clip:tau=8+trim:frac=0.45",
	"clip:tau=5+trim:frac=0.2",
}

func TestGoldenPopulationRoundTrip(t *testing.T) {
	for _, s := range goldenPopulations {
		p, err := core.ParsePopulation(s)
		if err != nil {
			t.Fatalf("%q: %v", s, err)
		}
		canon := p.String()
		p2, err := core.ParsePopulation(canon)
		if err != nil {
			t.Fatalf("%q canonical %q: %v", s, canon, err)
		}
		if !reflect.DeepEqual(p, p2) {
			t.Fatalf("%q: reparse of %q diverged:\n%+v\n%+v", s, canon, p, p2)
		}
		if got := p2.String(); got != canon {
			t.Fatalf("%q: canonical form not a fixed point: %q then %q", s, canon, got)
		}
	}
}

func TestGoldenAdversaryRoundTrip(t *testing.T) {
	for _, s := range goldenAdversaries {
		a, err := core.ParseAdversary(s)
		if err != nil {
			t.Fatalf("%q: %v", s, err)
		}
		canon := a.String()
		a2, err := core.ParseAdversary(canon)
		if err != nil {
			t.Fatalf("%q canonical %q: %v", s, canon, err)
		}
		if a != a2 {
			t.Fatalf("%q: reparse of %q diverged: %+v vs %+v", s, canon, a, a2)
		}
		if got := a2.String(); got != canon {
			t.Fatalf("%q: canonical form not a fixed point: %q then %q", s, canon, got)
		}
	}
}

func TestGoldenTraceParses(t *testing.T) {
	for _, s := range goldenTraces {
		if _, err := sched.ParseTrace(s, 1, nil); err != nil {
			t.Fatalf("%q: %v", s, err)
		}
	}
}

func TestGoldenPolicyRoundTrip(t *testing.T) {
	for _, s := range goldenPolicies {
		pol, _, err := agg.ParsePolicy(s)
		if err != nil {
			t.Fatalf("%q: %v", s, err)
		}
		canon := pol.Name()
		pol2, _, err := agg.ParsePolicy(canon)
		if err != nil {
			t.Fatalf("%q canonical %q: %v", s, canon, err)
		}
		if got := pol2.Name(); got != canon {
			t.Fatalf("%q: canonical form not a fixed point: %q then %q", s, canon, got)
		}
	}
}

func TestGoldenCompositeTraceAdversary(t *testing.T) {
	rest, adv, err := core.CutAdversary("churn:on=40;signflip:frac=0.3")
	if err != nil {
		t.Fatal(err)
	}
	if rest != "churn:on=40" {
		t.Fatalf("rest = %q", rest)
	}
	if !adv.Enabled() || adv.Frac != 0.3 {
		t.Fatalf("adv = %+v", adv)
	}
	if _, err := sched.ParseTrace(rest, 1, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTraceRejectsUnknownParam(t *testing.T) {
	for _, s := range []string{"straggler:bogus=1", "churn:on=40,nope=2", "always:x=1"} {
		if _, err := sched.ParseTrace(s, 1, nil); err == nil {
			t.Fatalf("%q: expected an unknown-param error", s)
		}
	}
}

// FuzzSpecGrammars throws arbitrary strings at every spec-backed grammar:
// no input may panic, and any accepted input must reach a canonical fixed
// point where the grammar renders one.
func FuzzSpecGrammars(f *testing.F) {
	for _, s := range goldenPopulations {
		f.Add(s)
	}
	for _, s := range goldenAdversaries {
		f.Add(s)
	}
	for _, s := range goldenTraces {
		f.Add(s)
	}
	for _, s := range goldenPolicies {
		f.Add(s)
	}
	f.Add("churn:on=40;signflip:frac=0.3")
	f.Add("mix:n=1e9")
	f.Add("mix:n=NaN")
	f.Add("trim:frac=+Inf")
	f.Fuzz(func(t *testing.T, s string) {
		if p, err := core.ParsePopulation(s); err == nil {
			// Share normalisation is contractive, not exactly idempotent
			// (re-normalising a ≈1.0 sum can drift by an ULP), so the
			// property here is acceptance of every canonical rendering,
			// not a bit-exact fixed point — the golden test pins that for
			// the documented specs, whose shares normalise exactly.
			canon := p.String()
			p2, err := core.ParsePopulation(canon)
			if err != nil {
				t.Fatalf("population %q: canonical %q rejected: %v", s, canon, err)
			}
			if _, err := core.ParsePopulation(p2.String()); err != nil {
				t.Fatalf("population %q: second canonical %q rejected: %v", s, p2.String(), err)
			}
		}
		if a, err := core.ParseAdversary(s); err == nil {
			canon := a.String()
			if canon != "" {
				a2, err := core.ParseAdversary(canon)
				if err != nil {
					t.Fatalf("adversary %q: canonical %q rejected: %v", s, canon, err)
				}
				if got := a2.String(); got != canon {
					t.Fatalf("adversary %q: %q then %q", s, canon, got)
				}
			}
		}
		core.CutAdversary(s)
		if pol, _, err := agg.ParsePolicy(s); err == nil {
			canon := pol.Name()
			if _, _, err := agg.ParsePolicy(canon); err != nil {
				t.Fatalf("policy %q: canonical %q rejected: %v", s, canon, err)
			}
		}
		sched.ParseTrace(s, 1, nil)
	})
}
