// Package spec is the one tokenizer/validator behind the repository's
// compact "name[:key=value,...]" configuration grammars: availability
// traces (sched.ParseTrace), population mixes (core.ParsePopulation),
// adversary specs (core.ParseAdversary) and aggregation policies
// (agg.ParsePolicy). Each grammar keeps its own names, keys, defaults and
// range validation; what they share is here — the tokenizer, the typed
// accessors, the duplicate-key (last wins) and unknown-key semantics, and
// the canonical Builder rendering every String() round-trips through.
//
// The accessor protocol: Parse (or ParseArgs) tokenizes, the grammar
// consumes its keys with Str/Float/NonNeg, and Finish surfaces the first
// value error — or, when every value parsed, an unknown-key error for the
// first unconsumed pair in written order. Diagnostics carry the raw
// "key=value" token, prefixed "<pkg>: <kind> param …", matching the
// messages the hand-rolled parsers always printed.
package spec

import (
	"fmt"
	"strconv"
	"strings"
)

// pair is one tokenized key=value argument. key is trimmed; raw keeps the
// original token for diagnostics.
type pair struct {
	key, val, raw string
}

// Args is one tokenized argument section with consume-tracking typed
// accessors.
type Args struct {
	pkg, kind string
	pairs     []pair
	taken     []bool
	err       error
}

// Parse splits a spec string at the first ':' into its name and tokenized
// arguments. pkg and kind shape the diagnostics ("core"/"population" →
// `core: population param "x" is not key=value`).
func Parse(pkg, kind, s string) (string, *Args, error) {
	name, args, _ := strings.Cut(s, ":")
	a, err := ParseArgs(pkg, kind, args)
	return name, a, err
}

// ParseArgs tokenizes a bare comma-separated key=value list (grammars
// that cut the name themselves, like agg's '+'-composed policy parts).
func ParseArgs(pkg, kind, args string) (*Args, error) {
	a := &Args{pkg: pkg, kind: kind}
	if args == "" {
		return a, nil
	}
	for _, kv := range strings.Split(args, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return nil, fmt.Errorf("%s: %s param %q is not key=value", pkg, kind, kv)
		}
		a.pairs = append(a.pairs, pair{key: strings.TrimSpace(k), val: v, raw: kv})
	}
	a.taken = make([]bool, len(a.pairs))
	return a, nil
}

// fail records the first value error; later errors are dropped (one
// diagnostic per parse, like the hand-rolled loops).
func (a *Args) fail(err error) {
	if a.err == nil {
		a.err = err
	}
}

// take consumes every occurrence of key and returns the last (duplicate
// keys are last-wins, matching the original map/assignment semantics).
func (a *Args) take(key string) (pair, bool) {
	var p pair
	found := false
	for i := range a.pairs {
		if a.pairs[i].key == key {
			a.taken[i] = true
			p, found = a.pairs[i], true
		}
	}
	return p, found
}

// Has reports whether key is present, without consuming it.
func (a *Args) Has(key string) bool {
	for i := range a.pairs {
		if a.pairs[i].key == key && !a.taken[i] {
			return true
		}
	}
	return false
}

// Str consumes key as a string field; def when absent.
func (a *Args) Str(key, def string) string {
	p, ok := a.take(key)
	if !ok {
		return def
	}
	return p.val
}

// Take consumes key, returning its last value and the raw "key=value"
// token for grammar-specific diagnostics (e.g. rejecting empty values).
func (a *Args) Take(key string) (val, raw string, ok bool) {
	p, found := a.take(key)
	return p.val, p.raw, found
}

// Float consumes key as a float64 field; def when absent. A malformed
// value records `<pkg>: <kind> param "k=v": <strconv error>`.
func (a *Args) Float(key string, def float64) float64 {
	p, ok := a.take(key)
	if !ok {
		return def
	}
	f, err := strconv.ParseFloat(p.val, 64)
	if err != nil {
		a.fail(fmt.Errorf("%s: %s param %q: %w", a.pkg, a.kind, p.raw, err))
		return def
	}
	return f
}

// NonNeg is Float, additionally rejecting negative (and NaN) values
// (`… must be non-negative`).
func (a *Args) NonNeg(key string, def float64) float64 {
	p, ok := a.take(key)
	if !ok {
		return def
	}
	f, err := strconv.ParseFloat(p.val, 64)
	if err != nil {
		a.fail(fmt.Errorf("%s: %s param %q: %w", a.pkg, a.kind, p.raw, err))
		return def
	}
	if !(f >= 0) {
		a.fail(fmt.Errorf("%s: %s param %q must be non-negative", a.pkg, a.kind, p.raw))
		return def
	}
	return f
}

// maxCount bounds Int values: 2^53, above which float64 can no longer
// represent every integer (and far above any meaningful count here).
const maxCount = 1 << 53

// Int consumes key as a non-negative integer count; def when absent. The
// fractional part truncates (matching the historical int(f) conversions);
// NaN and values past 2^53 are rejected rather than wrapped through an
// undefined float→int conversion.
func (a *Args) Int(key string, def int) int {
	p, ok := a.take(key)
	if !ok {
		return def
	}
	f, err := strconv.ParseFloat(p.val, 64)
	if err != nil {
		a.fail(fmt.Errorf("%s: %s param %q: %w", a.pkg, a.kind, p.raw, err))
		return def
	}
	if !(f >= 0) {
		a.fail(fmt.Errorf("%s: %s param %q must be non-negative", a.pkg, a.kind, p.raw))
		return def
	}
	if f > maxCount {
		a.fail(fmt.Errorf("%s: %s param %q is too large", a.pkg, a.kind, p.raw))
		return def
	}
	return int(f)
}

// Reject consumes key and records reason as its error — for keys that are
// well-formed but invalid in this context (e.g. a behavior weight outside
// a mix spec), so the diagnostic beats the generic unknown-key error.
func (a *Args) Reject(key string, reason error) {
	if _, ok := a.take(key); ok {
		a.fail(reason)
	}
}

// Err returns the first accumulated value error (nil if none so far).
func (a *Args) Err() error { return a.err }

// Finish returns the first value error, else an unknown-key error for the
// first unconsumed pair (`<pkg>: unknown <kind> param "key"`), else nil.
func (a *Args) Finish() error {
	if a.err != nil {
		return a.err
	}
	for i := range a.pairs {
		if !a.taken[i] {
			return fmt.Errorf("%s: unknown %s param %q", a.pkg, a.kind, a.pairs[i].key)
		}
	}
	return nil
}

// FormatFloat renders a float the way every ported String() does —
// strconv 'g' with the shortest round-trip precision.
func FormatFloat(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// Builder renders the canonical "name:k=v,..." spec form. Values render
// so that build→parse→build is a fixed point: floats via FormatFloat,
// matching the grammars' String() methods byte for byte.
type Builder struct {
	name  string
	parts []string
}

// NewBuilder starts a spec rendering for the given grammar name.
func NewBuilder(name string) *Builder { return &Builder{name: name} }

// Int appends an integer field.
func (b *Builder) Int(key string, v int) *Builder {
	b.parts = append(b.parts, key+"="+strconv.Itoa(v))
	return b
}

// Float appends a float field.
func (b *Builder) Float(key string, v float64) *Builder {
	b.parts = append(b.parts, key+"="+FormatFloat(v))
	return b
}

// Str appends a string field.
func (b *Builder) Str(key, v string) *Builder {
	b.parts = append(b.parts, key+"="+v)
	return b
}

// String renders the spec: bare name with no fields, "name:k=v,..."
// otherwise.
func (b *Builder) String() string {
	if len(b.parts) == 0 {
		return b.name
	}
	return b.name + ":" + strings.Join(b.parts, ",")
}
