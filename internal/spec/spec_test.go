package spec

import (
	"strings"
	"testing"
)

func TestParseSplitsNameAndArgs(t *testing.T) {
	name, args, err := Parse("core", "population", "mix:n=10,data=widar")
	if err != nil {
		t.Fatal(err)
	}
	if name != "mix" {
		t.Fatalf("name = %q", name)
	}
	if got := args.Str("data", ""); got != "widar" {
		t.Fatalf("data = %q", got)
	}
	if got := args.Float("n", 0); got != 10 {
		t.Fatalf("n = %v", got)
	}
	if err := args.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestParseBareName(t *testing.T) {
	name, args, err := Parse("sched", "trace", "always")
	if err != nil {
		t.Fatal(err)
	}
	if name != "always" {
		t.Fatalf("name = %q", name)
	}
	if err := args.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestMalformedToken(t *testing.T) {
	_, _, err := Parse("core", "adversary", "mix:frac")
	want := `core: adversary param "frac" is not key=value`
	if err == nil || err.Error() != want {
		t.Fatalf("err = %v, want %s", err, want)
	}
}

func TestTokensAreTrimmed(t *testing.T) {
	_, args, err := Parse("sched", "trace", "churn: on = 40 ,off=10")
	if err != nil {
		t.Fatal(err)
	}
	// Keys trim; values keep their spacing (strconv rejects " 40 " the
	// way the hand-rolled parsers always did), so only the well-formed
	// token is asserted here.
	if got := args.Float("off", 0); got != 10 {
		t.Fatalf("off = %v", got)
	}
}

func TestDuplicateKeysLastWins(t *testing.T) {
	_, args, err := Parse("core", "population", "mix:n=1,n=2")
	if err != nil {
		t.Fatal(err)
	}
	if got := args.Float("n", 0); got != 2 {
		t.Fatalf("n = %v", got)
	}
	// Both occurrences are consumed: no unknown-key error.
	if err := args.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownKeyError(t *testing.T) {
	_, args, err := Parse("core", "population", "mix:n=1,bogus=2,other=3")
	if err != nil {
		t.Fatal(err)
	}
	args.Float("n", 0)
	err = args.Finish()
	want := `core: unknown population param "bogus"`
	if err == nil || err.Error() != want {
		t.Fatalf("err = %v, want %s", err, want)
	}
}

func TestValueErrorBeatsUnknownKey(t *testing.T) {
	_, args, err := Parse("core", "population", "mix:bogus=1,n=xyz")
	if err != nil {
		t.Fatal(err)
	}
	args.Float("n", 0)
	err = args.Finish()
	if err == nil || !strings.Contains(err.Error(), `param "n=xyz"`) {
		t.Fatalf("err = %v, want the n=xyz value error", err)
	}
}

func TestNonNegRejectsNegative(t *testing.T) {
	_, args, err := Parse("core", "population", "mix:n=-1")
	if err != nil {
		t.Fatal(err)
	}
	args.NonNeg("n", 0)
	err = args.Finish()
	want := `core: population param "n=-1" must be non-negative`
	if err == nil || err.Error() != want {
		t.Fatalf("err = %v, want %s", err, want)
	}
}

func TestFloatKeepsSign(t *testing.T) {
	_, args, _ := Parse("x", "y", "n:v=-2.5")
	if got := args.Float("v", 0); got != -2.5 {
		t.Fatalf("v = %v", got)
	}
	if err := args.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestTakeReturnsRawToken(t *testing.T) {
	_, args, _ := Parse("core", "population", "mix:data=")
	v, raw, ok := args.Take("data")
	if !ok || v != "" || raw != "data=" {
		t.Fatalf("Take = (%q, %q, %v)", v, raw, ok)
	}
}

func TestReject(t *testing.T) {
	_, args, _ := Parse("core", "adversary", "signflip:scale=1")
	args.Reject("scale", errBehavior)
	if err := args.Finish(); err != errBehavior {
		t.Fatalf("err = %v", err)
	}
}

var errBehavior = &mixOnlyError{}

type mixOnlyError struct{}

func (*mixOnlyError) Error() string { return "behavior weight only applies to mix specs" }

func TestBuilderFixedPoint(t *testing.T) {
	s := NewBuilder("mix").Int("n", 10).Float("weak", 0.4).Str("data", "widar").String()
	want := "mix:n=10,weak=0.4,data=widar"
	if s != want {
		t.Fatalf("built %q, want %q", s, want)
	}
	name, args, err := Parse("core", "population", s)
	if err != nil || name != "mix" {
		t.Fatalf("reparse: %v, name %q", err, name)
	}
	again := NewBuilder("mix").
		Int("n", int(args.Float("n", 0))).
		Float("weak", args.Float("weak", 0)).
		Str("data", args.Str("data", "")).String()
	if again != s {
		t.Fatalf("round trip %q != %q", again, s)
	}
}

func TestBuilderBareName(t *testing.T) {
	if got := NewBuilder("always").String(); got != "always" {
		t.Fatalf("got %q", got)
	}
}

func TestEmptyArgs(t *testing.T) {
	a, err := ParseArgs("agg", "policy", "")
	if err != nil {
		t.Fatal(err)
	}
	if a.Has("anything") {
		t.Fatal("empty args claim a key")
	}
	if err := a.Finish(); err != nil {
		t.Fatal(err)
	}
}
