package baselines

import (
	"math"
	"math/rand"
	"testing"

	"adaptivefl/internal/core"
	"adaptivefl/internal/data"
	"adaptivefl/internal/models"
	"adaptivefl/internal/nn"
	"adaptivefl/internal/prune"
	"adaptivefl/internal/tensor"
)

func testModelCfg() models.Config {
	return models.Config{Arch: models.VGG16, NumClasses: 4, WidthScale: 0.07, Seed: 3}
}

func testSetup(t *testing.T, n int) (Setup, *prune.Pool, *data.Dataset) {
	t.Helper()
	mcfg := testModelCfg()
	pool, err := prune.BuildPool(mcfg, prune.Config{P: 3})
	if err != nil {
		t.Fatal(err)
	}
	dcfg := data.SynthConfig{Name: "t", Classes: 4, Channels: 3, Size: 32,
		Train: n * 20, Test: 60, Noise: 0.3, MaxShift: 1, Seed: 21}
	train, test := data.Generate(dcfg)
	rng := rand.New(rand.NewSource(22))
	parts := data.PartitionIID(rng, train.Len(), n)
	devices := core.NewPopulation(rng, n, [3]float64{4, 3, 3}, pool, core.DefaultDeviceModel())
	clients := make([]*core.Client, n)
	for i := range clients {
		clients[i] = &core.Client{ID: i, Data: train.Subset(parts[i]), Device: devices[i]}
	}
	return Setup{
		Model: mcfg, Clients: clients, K: 3, Seed: 23,
		Train: core.TrainConfig{LocalEpochs: 1, BatchSize: 10, LR: 0.05, Momentum: 0.5},
	}, pool, test
}

func changed(before, after nn.State) bool {
	for name, v := range after {
		for i := range v.Data {
			if v.Data[i] != before[name].Data[i] {
				return true
			}
		}
	}
	return false
}

func TestAllLargeRoundAndEvaluate(t *testing.T) {
	setup, _, test := testSetup(t, 6)
	a, err := NewAllLarge(setup)
	if err != nil {
		t.Fatal(err)
	}
	before := a.Global().Clone()
	if err := a.Round(); err != nil {
		t.Fatal(err)
	}
	if !changed(before, a.Global()) {
		t.Fatal("All-Large round did not change the global model")
	}
	acc, err := a.Evaluate(test, 30)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := acc["full"]; !ok {
		t.Fatal("All-Large must report full accuracy")
	}
	if _, ok := acc["S1"]; ok {
		t.Fatal("All-Large has no submodels")
	}
}

func TestDecoupledLevelsIsolated(t *testing.T) {
	setup, pool, test := testSetup(t, 8)
	d, err := NewDecoupled(setup, pool)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Round(); err != nil {
		t.Fatal(err)
	}
	acc, err := d.Evaluate(test, 30)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"S1", "M1", "L1", "full"} {
		if _, ok := acc[key]; !ok {
			t.Fatalf("Decoupled missing %s accuracy", key)
		}
	}
	if acc["full"] != acc["L1"] {
		t.Fatal("Decoupled full must be the L1 model")
	}
}

func TestDecoupledAssignsByClass(t *testing.T) {
	if levelFor(core.Strong) != 2 || levelFor(core.Medium) != 1 || levelFor(core.Weak) != 0 {
		t.Fatal("class->level mapping wrong")
	}
}

func TestHeteroFLNestedSizes(t *testing.T) {
	setup, _, _ := testSetup(t, 6)
	h, err := NewHeteroFL(setup)
	if err != nil {
		t.Fatal(err)
	}
	// Width rates sqrt(0.25), sqrt(0.5), 1 should give ~0.25/0.5/1.0
	// parameter ratios at paper scale.
	fullCfg := models.Config{Arch: models.VGG16, NumClasses: 10}
	spec := fullCfg.Spec()
	fullSize := models.CountStats(fullCfg, nil).Params
	for i, want := range []float64{0.25, 0.5} {
		widths := prune.PlanWidths(spec.FullWidths, h.rates[i], 0)
		size := models.CountStats(fullCfg, widths).Params
		ratio := float64(size) / float64(fullSize)
		if ratio < want-0.05 || ratio > want+0.05 {
			t.Errorf("HeteroFL rate %.3f gives size ratio %.3f, want ~%.2f", h.rates[i], ratio, want)
		}
	}
}

func TestHeteroFLRoundAndEvaluate(t *testing.T) {
	setup, _, test := testSetup(t, 6)
	h, err := NewHeteroFL(setup)
	if err != nil {
		t.Fatal(err)
	}
	before := h.global.Clone()
	if err := h.Round(); err != nil {
		t.Fatal(err)
	}
	if !changed(before, h.global) {
		t.Fatal("HeteroFL round did not change the global model")
	}
	acc, err := h.Evaluate(test, 30)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"S1", "M1", "L1", "full"} {
		if _, ok := acc[key]; !ok {
			t.Fatalf("HeteroFL missing %s accuracy", key)
		}
	}
}

func TestScaleFLMultiExitGradients(t *testing.T) {
	// The multi-exit wrapper must backpropagate correctly: train a tiny
	// 3-exit net on separable data and expect every exit to learn.
	setup, _, _ := testSetup(t, 6)
	sf, err := NewScaleFL(setup)
	if err != nil {
		t.Fatal(err)
	}
	me, err := sf.buildNet(sf.levels[2])
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	n := 24
	x := tensor.Randn(rng, 1, n, 3, 32, 32)
	labels := make([]int, n)
	for i := range labels {
		labels[i] = i % 4
		// Inject a strong class-dependent mean so the task is learnable.
		for j := 0; j < 3*32*32; j++ {
			x.Data[i*3*32*32+j] += float64(labels[i]) * 0.5
		}
	}
	wrapper := multiExitLayer{me}
	opt := nn.NewSGD(0.05, 0.5, 0)
	var first, last float64
	for step := 0; step < 15; step++ {
		nn.ZeroGrads(wrapper)
		outs := me.forwardAll(x, true)
		grads := make([]*tensor.Tensor, len(outs))
		total := 0.0
		for i, logits := range outs {
			loss, g := nn.CrossEntropy(logits, labels)
			total += loss
			grads[i] = g
		}
		me.backwardAll(grads)
		opt.Step(wrapper.Params())
		if step == 0 {
			first = total
		}
		last = total
	}
	if last >= first*0.8 {
		t.Fatalf("multi-exit training did not reduce loss: %.4f -> %.4f", first, last)
	}
}

func TestScaleFLRoundAndEvaluate(t *testing.T) {
	setup, _, test := testSetup(t, 6)
	sf, err := NewScaleFL(setup)
	if err != nil {
		t.Fatal(err)
	}
	before := sf.global.Clone()
	if err := sf.Round(); err != nil {
		t.Fatal(err)
	}
	if !changed(before, sf.global) {
		t.Fatal("ScaleFL round did not change the global model")
	}
	acc, err := sf.Evaluate(test, 30)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"S1", "M1", "L1", "full"} {
		if _, ok := acc[key]; !ok {
			t.Fatalf("ScaleFL missing %s accuracy", key)
		}
	}
}

func TestScaleFLGlobalIncludesExitHeads(t *testing.T) {
	setup, _, _ := testSetup(t, 6)
	sf, err := NewScaleFL(setup)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"exit1.fc.weight", "exit2.fc.weight"} {
		if _, ok := sf.global[name]; !ok {
			t.Fatalf("ScaleFL global missing %s", name)
		}
	}
}

func TestAdaptiveRunner(t *testing.T) {
	setup, _, test := testSetup(t, 6)
	a, err := NewAdaptive(core.Config{
		Model: setup.Model, Pool: prune.Config{P: 3},
		ClientsPerRound: setup.K, Train: setup.Train, Seed: setup.Seed,
	}, setup.Clients, "")
	if err != nil {
		t.Fatal(err)
	}
	if a.Name() != "AdaptiveFL" {
		t.Fatalf("Name = %s", a.Name())
	}
	if err := a.Round(); err != nil {
		t.Fatal(err)
	}
	acc, err := a.Evaluate(test, 30)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"S1", "M1", "L1", "full"} {
		if _, ok := acc[key]; !ok {
			t.Fatalf("Adaptive missing %s accuracy", key)
		}
	}
	if w := a.Waste(); w < 0 || w > 1 {
		t.Fatalf("waste %v outside [0,1]", w)
	}
}

func TestAvgOf(t *testing.T) {
	acc := map[string]float64{"S1": 0.2, "M1": 0.4, "L1": 0.6, "full": 0.9}
	if got := AvgOf(acc); math.Abs(got-0.4) > 1e-12 {
		t.Fatalf("AvgOf = %v, want 0.4", got)
	}
}

func TestSetupValidate(t *testing.T) {
	if _, err := NewAllLarge(Setup{}); err == nil {
		t.Fatal("empty setup accepted")
	}
	setup, _, _ := testSetup(t, 4)
	setup.K = 99
	if _, err := NewHeteroFL(setup); err == nil {
		t.Fatal("K > clients accepted")
	}
}
