package baselines

import (
	"fmt"
	"math/rand"

	"adaptivefl/internal/agg"
	"adaptivefl/internal/core"
	"adaptivefl/internal/data"
	"adaptivefl/internal/eval"
	"adaptivefl/internal/models"
	"adaptivefl/internal/nn"
	"adaptivefl/internal/prune"
)

// Decoupled trains three completely independent FedAvg models — at the
// L_1, M_1 and S_1 shapes — each with the clients that can afford it
// (paper baseline "Decoupled [1]"). No knowledge flows between levels,
// which is why the paper finds it weakest.
type Decoupled struct {
	setup   Setup
	levels  []prune.Submodel // S1, M1, L1 (ascending)
	globals []nn.State       // one per level
	rng     *rand.Rand
}

// NewDecoupled builds the per-level FedAvg baseline from the pool's
// largest member of each level.
func NewDecoupled(s Setup, pool *prune.Pool) (*Decoupled, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	d := &Decoupled{setup: s, rng: rand.New(rand.NewSource(s.Seed))}
	for _, level := range []prune.Level{prune.LevelS, prune.LevelM, prune.LevelL} {
		members := pool.ByLevel(level)
		if len(members) == 0 {
			return nil, fmt.Errorf("baselines: pool has no %v members", level)
		}
		top := members[len(members)-1]
		m, err := models.Build(s.Model, top.Widths)
		if err != nil {
			return nil, err
		}
		d.levels = append(d.levels, top)
		d.globals = append(d.globals, nn.StateDict(m))
	}
	return d, nil
}

// Name implements Runner.
func (d *Decoupled) Name() string { return "Decoupled" }

// levelFor maps a device class to the index of the largest level model the
// class can afford (Decoupled assumes resource classes are known).
func levelFor(class core.DeviceClass) int {
	switch class {
	case core.Strong:
		return 2
	case core.Medium:
		return 1
	default:
		return 0
	}
}

// Round selects K clients uniformly; each trains its class's level model,
// and aggregation happens strictly within levels.
func (d *Decoupled) Round() error {
	sel := pickClients(d.rng, len(d.setup.Clients), d.setup.K)
	states := make([]nn.State, len(sel))
	errs := make([]error, len(sel))
	lvls := make([]int, len(sel))
	seeds := make([]int64, len(sel))
	for i, c := range sel {
		lvls[i] = levelFor(d.setup.Clients[c].Device.Class)
		seeds[i] = d.rng.Int63()
	}
	runParallel(len(sel), d.setup.Parallelism, func(i int) {
		client := d.setup.Clients[sel[i]]
		rng := rand.New(rand.NewSource(seeds[i]))
		lv := lvls[i]
		states[i], errs[i] = core.TrainLocal(d.setup.Model, d.levels[lv].Widths, d.globals[lv], client.Data, d.setup.Train, rng)
	})
	updates := make([][]agg.Update, len(d.levels))
	for i := range sel {
		if errs[i] != nil {
			return errs[i]
		}
		lv := lvls[i]
		updates[lv] = append(updates[lv], agg.Update{State: states[i], Weight: float64(d.setup.Clients[sel[i]].Data.Len())})
	}
	for lv := range d.levels {
		if len(updates[lv]) == 0 {
			continue
		}
		next, err := agg.Aggregate(d.globals[lv], updates[lv])
		if err != nil {
			return err
		}
		d.globals[lv] = next
	}
	return nil
}

// Evaluate reports each level model's accuracy; "full" is the L_1 model.
func (d *Decoupled) Evaluate(test *data.Dataset, batch int) (map[string]float64, error) {
	out := map[string]float64{}
	for i, lvl := range d.levels {
		m, err := models.Build(d.setup.Model, lvl.Widths)
		if err != nil {
			return nil, err
		}
		if err := nn.LoadState(m, d.globals[i]); err != nil {
			return nil, err
		}
		acc := eval.Accuracy(m, test, batch)
		out[lvl.Name()] = acc
		if lvl.Level == prune.LevelL {
			out["full"] = acc
		}
	}
	return out, nil
}
