package baselines

import (
	"fmt"

	"adaptivefl/internal/sched"
)

// SchedAdaptive drives an AdaptiveFL server through internal/sched's
// event-driven engine instead of the synchronous Round loop: each Round()
// advances the schedule by one aggregation (a barrier round for the sync
// and deadline policies, a buffer commit for semiasync), so the experiment
// harness can sweep scheduling policies exactly like algorithms — with the
// virtual clock exposed for accuracy-versus-simulated-time curves.
type SchedAdaptive struct {
	*Adaptive
	Eng    *sched.Engine
	policy sched.Policy
}

// NewSchedAdaptive wraps an Adaptive runner with its scheduler engine.
func NewSchedAdaptive(a *Adaptive, eng *sched.Engine, policy sched.Policy) *SchedAdaptive {
	return &SchedAdaptive{Adaptive: a, Eng: eng, policy: policy}
}

// Name implements Runner.
func (s *SchedAdaptive) Name() string {
	return fmt.Sprintf("%s[%s]", s.Adaptive.Name(), s.policy)
}

// Round implements Runner: one scheduler aggregation.
func (s *SchedAdaptive) Round() error {
	_, err := s.Eng.Step()
	return err
}

// SimTime returns the simulated wall-clock seconds consumed so far.
func (s *SchedAdaptive) SimTime() float64 { return s.Eng.Clock() }
