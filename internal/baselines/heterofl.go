package baselines

import (
	"math"
	"math/rand"

	"adaptivefl/internal/agg"
	"adaptivefl/internal/core"
	"adaptivefl/internal/data"
	"adaptivefl/internal/eval"
	"adaptivefl/internal/models"
	"adaptivefl/internal/nn"
	"adaptivefl/internal/prune"
)

// HeteroFL is Diao et al.'s static width-scaling baseline: nested
// submodels obtained by shrinking every layer of the global model by a
// fixed rate, with each client statically assigned the rate its resource
// class affords. Width rates are the square roots of the target size
// ratios (channel scaling shrinks parameters quadratically), so the three
// submodels weigh ≈1.0×, 0.5× and 0.25× of the full model — the sizes the
// paper's Figure 3 compares.
type HeteroFL struct {
	setup  Setup
	rates  []float64 // ascending width rates per level: S, M, L
	widths [][]int
	global nn.State
	rng    *rand.Rand
}

// NewHeteroFL builds the baseline with size ratios {0.25, 0.5, 1.0}.
func NewHeteroFL(s Setup) (*HeteroFL, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	full, err := models.Build(s.Model, nil)
	if err != nil {
		return nil, err
	}
	h := &HeteroFL{
		setup:  s,
		rates:  []float64{math.Sqrt(0.25), math.Sqrt(0.5), 1.0},
		global: nn.StateDict(full),
		rng:    rand.New(rand.NewSource(s.Seed)),
	}
	spec := s.Model.Spec()
	for _, r := range h.rates {
		// I = 0: HeteroFL's coarse scaling prunes every layer.
		h.widths = append(h.widths, prune.PlanWidths(spec.FullWidths, r, 0))
	}
	return h, nil
}

// Name implements Runner.
func (h *HeteroFL) Name() string { return "HeteroFL" }

// rateFor statically maps device classes to width-rate indices.
func rateFor(class core.DeviceClass) int {
	switch class {
	case core.Strong:
		return 2
	case core.Medium:
		return 1
	default:
		return 0
	}
}

// Round selects K clients uniformly; each trains its class's submodel, and
// the overlap-averaged aggregation merges them into the global model.
func (h *HeteroFL) Round() error {
	sel := pickClients(h.rng, len(h.setup.Clients), h.setup.K)
	states := make([]nn.State, len(sel))
	errs := make([]error, len(sel))
	seeds := make([]int64, len(sel))
	for i := range sel {
		seeds[i] = h.rng.Int63()
	}
	runParallel(len(sel), h.setup.Parallelism, func(i int) {
		client := h.setup.Clients[sel[i]]
		rng := rand.New(rand.NewSource(seeds[i]))
		widths := h.widths[rateFor(client.Device.Class)]
		states[i], errs[i] = core.TrainLocal(h.setup.Model, widths, h.global, client.Data, h.setup.Train, rng)
	})
	var updates []agg.Update
	for i := range sel {
		if errs[i] != nil {
			return errs[i]
		}
		updates = append(updates, agg.Update{State: states[i], Weight: float64(h.setup.Clients[sel[i]].Data.Len())})
	}
	next, err := agg.Aggregate(h.global, updates)
	if err != nil {
		return err
	}
	h.global = next
	return nil
}

// Evaluate extracts the three nested submodels from the global weights and
// reports their accuracies (keys S1/M1/L1 by analogy; "full" = 1.0 rate).
func (h *HeteroFL) Evaluate(test *data.Dataset, batch int) (map[string]float64, error) {
	names := []string{"S1", "M1", "L1"}
	out := map[string]float64{}
	for i, widths := range h.widths {
		m, err := models.Build(h.setup.Model, widths)
		if err != nil {
			return nil, err
		}
		st, err := prune.ExtractForModel(h.global, m)
		if err != nil {
			return nil, err
		}
		if err := nn.LoadState(m, st); err != nil {
			return nil, err
		}
		acc := eval.Accuracy(m, test, batch)
		out[names[i]] = acc
		if h.rates[i] == 1.0 {
			out["full"] = acc
		}
	}
	return out, nil
}
