package baselines

import (
	"math/rand"

	"adaptivefl/internal/agg"
	"adaptivefl/internal/core"
	"adaptivefl/internal/data"
	"adaptivefl/internal/eval"
	"adaptivefl/internal/models"
	"adaptivefl/internal/nn"
)

// AllLarge is classic FedAvg training the unpruned L_1 model on every
// selected client, ignoring resource constraints — the paper's upper
// baseline ("All-Large [1]").
type AllLarge struct {
	setup  Setup
	global nn.State
	rng    *rand.Rand
}

// NewAllLarge builds the FedAvg baseline.
func NewAllLarge(s Setup) (*AllLarge, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	full, err := models.Build(s.Model, nil)
	if err != nil {
		return nil, err
	}
	return &AllLarge{setup: s, global: nn.StateDict(full), rng: rand.New(rand.NewSource(s.Seed))}, nil
}

// Name implements Runner.
func (a *AllLarge) Name() string { return "All-Large" }

// Round selects K clients uniformly and FedAvg-aggregates full models.
func (a *AllLarge) Round() error {
	sel := pickClients(a.rng, len(a.setup.Clients), a.setup.K)
	states := make([]nn.State, len(sel))
	errs := make([]error, len(sel))
	seeds := make([]int64, len(sel))
	for i := range sel {
		seeds[i] = a.rng.Int63()
	}
	runParallel(len(sel), a.setup.Parallelism, func(i int) {
		client := a.setup.Clients[sel[i]]
		rng := rand.New(rand.NewSource(seeds[i]))
		states[i], errs[i] = core.TrainLocal(a.setup.Model, nil, a.global, client.Data, a.setup.Train, rng)
	})
	var updates []agg.Update
	for i := range sel {
		if errs[i] != nil {
			return errs[i]
		}
		updates = append(updates, agg.Update{State: states[i], Weight: float64(a.setup.Clients[sel[i]].Data.Len())})
	}
	next, err := agg.Aggregate(a.global, updates)
	if err != nil {
		return err
	}
	a.global = next
	return nil
}

// Evaluate reports the full-model accuracy (All-Large has no submodels).
func (a *AllLarge) Evaluate(test *data.Dataset, batch int) (map[string]float64, error) {
	m, err := models.Build(a.setup.Model, nil)
	if err != nil {
		return nil, err
	}
	if err := nn.LoadState(m, a.global); err != nil {
		return nil, err
	}
	return map[string]float64{"full": eval.Accuracy(m, test, batch)}, nil
}

// Global exposes the current global state.
func (a *AllLarge) Global() nn.State { return a.global }
