package baselines

import (
	"fmt"
	"math/rand"

	"adaptivefl/internal/agg"
	"adaptivefl/internal/core"
	"adaptivefl/internal/data"
	"adaptivefl/internal/eval"
	"adaptivefl/internal/models"
	"adaptivefl/internal/nn"
	"adaptivefl/internal/prune"
	"adaptivefl/internal/tensor"
)

// ScaleFL is Ilhan et al.'s two-dimensional scaling baseline: submodels
// shrink both in width and in depth, truncated models classify through
// early-exit heads, and larger models distil knowledge from their deepest
// exit into the earlier ones during local training (self-distillation).
// This is a re-implementation from the paper's description; see DESIGN.md
// §5.
type ScaleFL struct {
	setup Setup
	// Per level (S, M, L): width rate, number of exits kept, widths.
	levels []scaleLevel
	global nn.State
	rng    *rand.Rand
	temp   float64 // distillation temperature
	kdW    float64 // distillation loss weight
}

type scaleLevel struct {
	name   string
	width  float64
	exits  int // how many exits the level keeps (1 = first exit only)
	widths []int
}

// NewScaleFL builds the baseline with depth fractions ≈1/3 and ≈2/3 for
// the small and medium levels and width rates chosen so the three levels
// weigh roughly 0.25×, 0.5× and 1.0× of the full model.
func NewScaleFL(s Setup) (*ScaleFL, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	spec := s.Model.Spec()
	sf := &ScaleFL{setup: s, rng: rand.New(rand.NewSource(s.Seed)), temp: 3, kdW: 0.5}
	for _, lv := range []struct {
		name  string
		width float64
		exits int
	}{
		{"S1", 0.60, 1},
		{"M1", 0.80, 2},
		{"L1", 1.00, 3},
	} {
		sf.levels = append(sf.levels, scaleLevel{
			name:   lv.name,
			width:  lv.width,
			exits:  lv.exits,
			widths: prune.PlanWidths(spec.FullWidths, lv.width, 0),
		})
	}
	full, err := sf.buildNet(sf.levels[2])
	if err != nil {
		return nil, err
	}
	sf.global = nn.StateDict(multiExitLayer{full})
	return sf, nil
}

// Name implements Runner.
func (sf *ScaleFL) Name() string { return "ScaleFL" }

// cutPoints picks the two early-exit attachment points at ≈1/3 and ≈2/3 of
// the backbone's exit candidates.
func cutPoints(m *models.Model) [2]models.ExitPoint {
	n := len(m.Exits)
	i1 := n / 3
	i2 := 2 * n / 3
	if i2 <= i1 {
		i2 = i1 + 1
	}
	if i2 >= n {
		i2 = n - 1
	}
	if i1 >= i2 {
		i1 = i2 - 1
	}
	return [2]models.ExitPoint{m.Exits[i1], m.Exits[i2]}
}

// multiExit wraps a backbone split into segments with early-exit heads.
// Segment i feeds head i (for i < len(heads)); the final segment ends in
// the model's own classifier, acting as the deepest exit.
type multiExit struct {
	segments [][]nn.Layer
	heads    [][]nn.Layer // len = len(segments)-1
}

// forwardAll returns the logits of every exit, shallow to deep.
func (me *multiExit) forwardAll(x *tensor.Tensor, train bool) []*tensor.Tensor {
	var outs []*tensor.Tensor
	a := x
	for i, seg := range me.segments {
		for _, l := range seg {
			a = l.Forward(a, train)
		}
		if i < len(me.heads) {
			h := a
			for _, l := range me.heads[i] {
				h = l.Forward(h, train)
			}
			outs = append(outs, h)
		} else {
			outs = append(outs, a)
		}
	}
	return outs
}

// backwardAll injects one gradient per exit and backpropagates jointly.
func (me *multiExit) backwardAll(grads []*tensor.Tensor) {
	if len(grads) != len(me.segments) {
		panic(fmt.Sprintf("baselines: %d exit grads for %d segments", len(grads), len(me.segments)))
	}
	var g *tensor.Tensor
	for i := len(me.segments) - 1; i >= 0; i-- {
		if i < len(me.heads) {
			hg := grads[i]
			for j := len(me.heads[i]) - 1; j >= 0; j-- {
				hg = me.heads[i][j].Backward(hg)
			}
			if g == nil {
				g = hg
			} else {
				g.AddInPlace(hg)
			}
		} else {
			g = grads[i]
		}
		for j := len(me.segments[i]) - 1; j >= 0; j-- {
			g = me.segments[i][j].Backward(g)
		}
	}
}

func (me *multiExit) params() []*nn.Param {
	var ps []*nn.Param
	for _, seg := range me.segments {
		for _, l := range seg {
			ps = append(ps, l.Params()...)
		}
	}
	for _, h := range me.heads {
		for _, l := range h {
			ps = append(ps, l.Params()...)
		}
	}
	return ps
}

// asLayer adapts a multiExit to nn.Layer for state-dict handling; Forward
// returns the deepest exit's logits.
type multiExitLayer struct{ me *multiExit }

func (m multiExitLayer) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	outs := m.me.forwardAll(x, train)
	return outs[len(outs)-1]
}
func (m multiExitLayer) Backward(grad *tensor.Tensor) *tensor.Tensor {
	panic("baselines: use backwardAll on multiExit")
}
func (m multiExitLayer) Params() []*nn.Param { return m.me.params() }

// buildNet constructs the multi-exit network for one level: a backbone at
// the level's widths truncated to its exit count, with fresh-named heads.
func (sf *ScaleFL) buildNet(lv scaleLevel) (*multiExit, error) {
	m, err := models.Build(sf.setup.Model, lv.widths)
	if err != nil {
		return nil, err
	}
	cuts := cutPoints(m)
	me := &multiExit{}
	rng := rand.New(rand.NewSource(sf.setup.Model.Seed + 1000))
	addHead := func(idx int, ep models.ExitPoint) {
		head := []nn.Layer{
			nn.NewGlobalAvgPool2D(),
			nn.NewFlatten(),
			nn.NewLinear(rng, fmt.Sprintf("exit%d.fc", idx+1), ep.Channels, sf.setup.Model.NumClasses, true),
		}
		me.heads = append(me.heads, head)
	}
	switch lv.exits {
	case 1:
		me.segments = [][]nn.Layer{m.Layers[:cuts[0].LayerIdx+1]}
		// The single exit is the head itself: treat it as the final
		// segment's classifier by appending head layers to the segment.
		head := []nn.Layer{
			nn.NewGlobalAvgPool2D(),
			nn.NewFlatten(),
			nn.NewLinear(rng, "exit1.fc", cuts[0].Channels, sf.setup.Model.NumClasses, true),
		}
		me.segments[0] = append(append([]nn.Layer(nil), me.segments[0]...), head...)
	case 2:
		me.segments = [][]nn.Layer{
			m.Layers[:cuts[0].LayerIdx+1],
			append(append([]nn.Layer(nil), m.Layers[cuts[0].LayerIdx+1:cuts[1].LayerIdx+1]...),
				nn.NewGlobalAvgPool2D(), nn.NewFlatten(),
				nn.NewLinear(rng, "exit2.fc", cuts[1].Channels, sf.setup.Model.NumClasses, true)),
		}
		addHead(0, cuts[0])
	case 3:
		me.segments = [][]nn.Layer{
			m.Layers[:cuts[0].LayerIdx+1],
			m.Layers[cuts[0].LayerIdx+1 : cuts[1].LayerIdx+1],
			m.Layers[cuts[1].LayerIdx+1:],
		}
		addHead(0, cuts[0])
		addHead(1, cuts[1])
	default:
		return nil, fmt.Errorf("baselines: unsupported exit count %d", lv.exits)
	}
	return me, nil
}

// levelFor maps device classes to ScaleFL levels (resource info is known
// to ScaleFL, as in its paper).
func (sf *ScaleFL) levelFor(class core.DeviceClass) scaleLevel {
	switch class {
	case core.Strong:
		return sf.levels[2]
	case core.Medium:
		return sf.levels[1]
	default:
		return sf.levels[0]
	}
}

// trainLocal runs the multi-exit local objective: cross-entropy at every
// exit plus distillation from the deepest exit into the earlier ones.
func (sf *ScaleFL) trainLocal(lv scaleLevel, ds *data.Dataset, seed int64) (nn.State, error) {
	me, err := sf.buildNet(lv)
	if err != nil {
		return nil, err
	}
	wrapper := multiExitLayer{me}
	st, err := prune.ExtractForModel(sf.global, wrapper)
	if err != nil {
		return nil, err
	}
	if err := nn.LoadState(wrapper, st); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	opt := nn.NewSGD(sf.setup.Train.LR, sf.setup.Train.Momentum, sf.setup.Train.WeightDecay)
	for epoch := 0; epoch < sf.setup.Train.LocalEpochs; epoch++ {
		for _, batch := range ds.Batches(rng, sf.setup.Train.BatchSize) {
			x, labels := ds.Gather(batch)
			nn.ZeroGrads(wrapper)
			outs := me.forwardAll(x, true)
			grads := make([]*tensor.Tensor, len(outs))
			deepest := outs[len(outs)-1]
			for i, logits := range outs {
				_, g := nn.CrossEntropy(logits, labels)
				if i < len(outs)-1 {
					_, kd := nn.DistillKL(logits, deepest, sf.temp)
					g.AddScaled(sf.kdW, kd)
				}
				g.Scale(1 / float64(len(outs)))
				grads[i] = g
			}
			me.backwardAll(grads)
			opt.Step(wrapper.Params())
		}
	}
	return nn.StateDict(wrapper), nil
}

// Round selects K clients uniformly; each trains its class's ScaleFL level
// with the multi-exit distillation objective.
func (sf *ScaleFL) Round() error {
	sel := pickClients(sf.rng, len(sf.setup.Clients), sf.setup.K)
	states := make([]nn.State, len(sel))
	errs := make([]error, len(sel))
	seeds := make([]int64, len(sel))
	for i := range sel {
		seeds[i] = sf.rng.Int63()
	}
	runParallel(len(sel), sf.setup.Parallelism, func(i int) {
		client := sf.setup.Clients[sel[i]]
		states[i], errs[i] = sf.trainLocal(sf.levelFor(client.Device.Class), client.Data, seeds[i])
	})
	var updates []agg.Update
	for i := range sel {
		if errs[i] != nil {
			return errs[i]
		}
		updates = append(updates, agg.Update{State: states[i], Weight: float64(sf.setup.Clients[sel[i]].Data.Len())})
	}
	next, err := agg.Aggregate(sf.global, updates)
	if err != nil {
		return err
	}
	sf.global = next
	return nil
}

// Evaluate reports each level's accuracy through its own deepest exit;
// "full" is the L level's final classifier.
func (sf *ScaleFL) Evaluate(test *data.Dataset, batch int) (map[string]float64, error) {
	out := map[string]float64{}
	for _, lv := range sf.levels {
		me, err := sf.buildNet(lv)
		if err != nil {
			return nil, err
		}
		wrapper := multiExitLayer{me}
		st, err := prune.ExtractForModel(sf.global, wrapper)
		if err != nil {
			return nil, err
		}
		if err := nn.LoadState(wrapper, st); err != nil {
			return nil, err
		}
		acc := eval.Accuracy(wrapper, test, batch)
		out[lv.name] = acc
		if lv.name == "L1" {
			out["full"] = acc
		}
	}
	return out, nil
}
