// Package baselines implements the four comparison methods of the paper's
// evaluation: All-Large (classic FedAvg on the full model), Decoupled
// (independent FedAvg per size level), HeteroFL (static nested width
// scaling), and ScaleFL (two-dimensional width+depth scaling with early
// exits and self-distillation). All baselines share AdaptiveFL's training
// substrate, device population and aggregation machinery so comparisons
// isolate the algorithmic differences.
package baselines

import (
	"fmt"
	"math/rand"
	"sync"

	"adaptivefl/internal/core"
	"adaptivefl/internal/data"
	"adaptivefl/internal/eval"
	"adaptivefl/internal/models"
)

// Setup is the experiment context shared by every algorithm.
type Setup struct {
	Model       models.Config
	Clients     []*core.Client
	K           int // clients per round
	Train       core.TrainConfig
	Seed        int64
	Parallelism int // concurrent local trainers; 0 = K
}

func (s *Setup) validate() error {
	if len(s.Clients) == 0 {
		return fmt.Errorf("baselines: no clients")
	}
	if s.K < 1 || s.K > len(s.Clients) {
		return fmt.Errorf("baselines: K=%d outside [1,%d]", s.K, len(s.Clients))
	}
	return nil
}

// Runner is a federated algorithm under test: it advances one round at a
// time and reports named accuracies ("full" plus the per-level submodels
// it defines, keyed "L1"/"M1"/"S1").
type Runner interface {
	Name() string
	Round() error
	Evaluate(test *data.Dataset, batch int) (map[string]float64, error)
}

// AvgOf computes the paper's "avg" metric from an Evaluate result: the
// mean of the per-level submodel accuracies present.
func AvgOf(acc map[string]float64) float64 {
	return eval.MeanOf(acc, "L1", "M1", "S1")
}

// runParallel executes fn(0..k-1) on at most par goroutines.
func runParallel(k, par int, fn func(i int)) {
	if par <= 0 || par > k {
		par = k
	}
	sem := make(chan struct{}, par)
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			fn(i)
		}(i)
	}
	wg.Wait()
}

// pickClients selects k distinct client indices uniformly at random.
func pickClients(rng *rand.Rand, n, k int) []int {
	return rng.Perm(n)[:k]
}
