package baselines

import (
	"adaptivefl/internal/core"
	"adaptivefl/internal/data"
	"adaptivefl/internal/eval"
)

// Adaptive adapts core.Server (AdaptiveFL itself) to the Runner interface
// so the experiment harness can sweep it alongside the baselines.
type Adaptive struct {
	Srv *core.Server
	// Label overrides Name() for ablation variants (e.g. "AdaptiveFL+C").
	Label string
}

// NewAdaptive builds an AdaptiveFL runner from a server configuration.
func NewAdaptive(cfg core.Config, clients []*core.Client, label string) (*Adaptive, error) {
	srv, err := core.NewServer(cfg, clients)
	if err != nil {
		return nil, err
	}
	if label == "" {
		label = "AdaptiveFL"
	}
	return &Adaptive{Srv: srv, Label: label}, nil
}

// Name implements Runner.
func (a *Adaptive) Name() string { return a.Label }

// Round implements Runner.
func (a *Adaptive) Round() error { return a.Srv.Round() }

// Evaluate reports the full global model plus the L1/M1/S1 pool members
// extracted from it.
func (a *Adaptive) Evaluate(test *data.Dataset, batch int) (map[string]float64, error) {
	out := map[string]float64{}
	full, err := a.Srv.GlobalModel()
	if err != nil {
		return nil, err
	}
	out["full"] = eval.Accuracy(full, test, batch)
	for _, name := range []string{"S1", "M1", "L1"} {
		m, err := a.Srv.SubmodelByName(name)
		if err != nil {
			// Coarse pools (P=1) still expose S1/M1/L1; other pool shapes
			// may not — skip absent levels.
			continue
		}
		out[name] = eval.Accuracy(m, test, batch)
	}
	return out, nil
}

// Waste reports the communication-waste rate accumulated so far.
func (a *Adaptive) Waste() float64 { return core.CommWasteRate(a.Srv.Stats()) }
