package models

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"adaptivefl/internal/nn"
	"adaptivefl/internal/tensor"
)

func tinyCfg(arch Arch) Config {
	return Config{Arch: arch, NumClasses: 5, InChannels: 3, InputSize: 32, WidthScale: 0.125, Seed: 1}
}

func TestConfigValidate(t *testing.T) {
	c := Config{Arch: VGG16, NumClasses: 10}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.InputSize != 32 || c.WidthScale != 1 || c.InChannels != 3 {
		t.Fatalf("defaults not applied: %+v", c)
	}
	bad := Config{Arch: "nope", NumClasses: 10}
	if err := bad.Validate(); err == nil {
		t.Fatal("expected error for unknown arch")
	}
	small := Config{Arch: VGG16, NumClasses: 10, InputSize: 16}
	if err := small.Validate(); err == nil {
		t.Fatal("expected error for VGG16 with 16px input")
	}
	noClasses := Config{Arch: ResNet18}
	if err := noClasses.Validate(); err == nil {
		t.Fatal("expected error for zero classes")
	}
}

func TestSpecShapes(t *testing.T) {
	cases := []struct {
		arch  Arch
		units int
		tau   int
	}{
		{VGG16, 15, 4},
		{ResNet18, 4, 1},
		{MobileNetV2, 9, 3},
	}
	for _, c := range cases {
		spec := Config{Arch: c.arch, NumClasses: 10}.Spec()
		if len(spec.FullWidths) != c.units {
			t.Errorf("%s: %d width units, want %d", c.arch, len(spec.FullWidths), c.units)
		}
		if spec.Tau != c.tau {
			t.Errorf("%s: tau %d, want %d", c.arch, spec.Tau, c.tau)
		}
		if len(spec.IChoices) != 3 {
			t.Errorf("%s: %d I choices, want 3", c.arch, len(spec.IChoices))
		}
		for _, w := range spec.FullWidths {
			if w < 1 {
				t.Errorf("%s: non-positive width in spec", c.arch)
			}
		}
	}
}

func TestBuildForwardShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, arch := range []Arch{VGG16, ResNet18, MobileNetV2} {
		cfg := tinyCfg(arch)
		m := MustBuild(cfg, nil)
		x := tensor.Randn(rng, 1, 2, 3, 32, 32)
		y := m.Forward(x, false)
		if y.Shape[0] != 2 || y.Shape[1] != cfg.NumClasses {
			t.Errorf("%s: output shape %v, want [2 %d]", arch, y.Shape, cfg.NumClasses)
		}
	}
}

func TestBuildRejectsBadWidths(t *testing.T) {
	cfg := tinyCfg(VGG16)
	if _, err := Build(cfg, []int{1, 2}); err == nil {
		t.Fatal("expected error for wrong width-vector length")
	}
	spec := cfg.Spec()
	w := append([]int(nil), spec.FullWidths...)
	w[0] = spec.FullWidths[0] + 1
	if _, err := Build(cfg, w); err == nil {
		t.Fatal("expected error for width above full")
	}
	w[0] = 0
	if _, err := Build(cfg, w); err == nil {
		t.Fatal("expected error for zero width")
	}
}

func TestParamNamesStableAcrossWidths(t *testing.T) {
	for _, arch := range []Arch{VGG16, ResNet18, MobileNetV2} {
		cfg := tinyCfg(arch)
		spec := cfg.Spec()
		full := MustBuild(cfg, nil)
		halved := make([]int, len(spec.FullWidths))
		for i, w := range spec.FullWidths {
			halved[i] = (w + 1) / 2
		}
		small := MustBuild(cfg, halved)
		fullNames := nn.StateDict(full).Names()
		smallNames := nn.StateDict(small).Names()
		if len(fullNames) != len(smallNames) {
			t.Fatalf("%s: param count differs: %d vs %d", arch, len(fullNames), len(smallNames))
		}
		for i := range fullNames {
			if fullNames[i] != smallNames[i] {
				t.Fatalf("%s: name mismatch %q vs %q", arch, fullNames[i], smallNames[i])
			}
		}
	}
}

func TestPrunedParamsArePrefixBlocks(t *testing.T) {
	for _, arch := range []Arch{VGG16, ResNet18, MobileNetV2} {
		cfg := tinyCfg(arch)
		spec := cfg.Spec()
		full := MustBuild(cfg, nil)
		halved := make([]int, len(spec.FullWidths))
		for i, w := range spec.FullWidths {
			halved[i] = (w + 1) / 2
		}
		small := MustBuild(cfg, halved)
		fullState := nn.StateDict(full)
		for _, p := range small.Params() {
			g := fullState[p.Name]
			if g == nil {
				t.Fatalf("%s: full model missing %q", arch, p.Name)
			}
			if !tensor.PrefixFits(p.Val, g) {
				t.Fatalf("%s: %q shape %v not a prefix of %v", arch, p.Name, p.Val.Shape, g.Shape)
			}
		}
	}
}

func TestCountStatsMatchesBuiltModels(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, arch := range []Arch{VGG16, ResNet18, MobileNetV2} {
		cfg := tinyCfg(arch)
		spec := cfg.Spec()
		f := func(seed int64) bool {
			r := rand.New(rand.NewSource(seed))
			widths := make([]int, len(spec.FullWidths))
			for i, w := range spec.FullWidths {
				widths[i] = 1 + r.Intn(w)
			}
			m, err := Build(cfg, widths)
			if err != nil {
				return false
			}
			got := CountStats(cfg, widths)
			want := m.Stats()
			return got.Params == want.Params && got.MACs == want.MACs
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 8, Rand: rng}); err != nil {
			t.Errorf("%s: analytic count disagrees with built model: %v", arch, err)
		}
	}
}

func TestFullScaleParamCounts(t *testing.T) {
	// Paper-scale sanity anchors: VGG16 (Table 1) = 33.65M params and
	// 333.22M MACs; ResNet18-CIFAR ≈ 11.17M; MobileNetV2 ≈ 2.3M.
	vgg := CountStats(Config{Arch: VGG16, NumClasses: 10}, nil)
	if rel := math.Abs(float64(vgg.Params)-33.65e6) / 33.65e6; rel > 0.01 {
		t.Errorf("VGG16 params %d, want ~33.65M (rel err %.3f)", vgg.Params, rel)
	}
	if rel := math.Abs(float64(vgg.MACs)-333.22e6) / 333.22e6; rel > 0.015 {
		t.Errorf("VGG16 MACs %d, want ~333.22M (rel err %.3f)", vgg.MACs, rel)
	}
	res := CountStats(Config{Arch: ResNet18, NumClasses: 10}, nil)
	if rel := math.Abs(float64(res.Params)-11.17e6) / 11.17e6; rel > 0.02 {
		t.Errorf("ResNet18 params %d, want ~11.17M (rel err %.3f)", res.Params, rel)
	}
	mob := CountStats(Config{Arch: MobileNetV2, NumClasses: 10}, nil)
	if mob.Params < 2.0e6 || mob.Params > 2.6e6 {
		t.Errorf("MobileNetV2 params %d, want ~2.2-2.4M", mob.Params)
	}
}

func TestBasicBlockGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, proj := range []bool{true, false} {
		stride := 1
		in, out := 3, 3
		if proj {
			stride, in, out = 2, 2, 3
		}
		b := newBasicBlock(rng, "b", in, out, stride, proj)
		x := tensor.Randn(rng, 1, 2, in, 4, 4)
		res := nn.CheckGradients(rng, b, x)
		if res.MaxInputErr > 1e-6 || res.MaxParamErr > 1e-6 {
			t.Errorf("basicBlock(proj=%v): grad errs %g/%g", proj, res.MaxInputErr, res.MaxParamErr)
		}
	}
}

func TestInvertedResidualGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, tc := range []struct {
		name                    string
		in, out, stride, expand int
		residual                bool
	}{
		{"expand-residual", 3, 3, 1, 6, true},
		{"expand-stride2", 2, 3, 2, 6, false},
		{"no-expand", 3, 2, 1, 1, false},
	} {
		b := newInvertedResidual(rng, "m", tc.in, tc.out, tc.stride, tc.expand, tc.residual)
		x := tensor.Randn(rng, 1, 2, tc.in, 4, 4)
		res := nn.CheckGradients(rng, b, x)
		if res.MaxInputErr > 1e-6 || res.MaxParamErr > 1e-6 {
			t.Errorf("invertedResidual(%s): grad errs %g/%g", tc.name, res.MaxInputErr, res.MaxParamErr)
		}
	}
}

func TestExitPoints(t *testing.T) {
	for _, arch := range []Arch{VGG16, ResNet18, MobileNetV2} {
		m := MustBuild(tinyCfg(arch), nil)
		if len(m.Exits) == 0 {
			t.Errorf("%s: no exit points", arch)
			continue
		}
		for _, e := range m.Exits {
			if e.LayerIdx < 0 || e.LayerIdx >= len(m.Layers) {
				t.Errorf("%s: exit index %d out of range", arch, e.LayerIdx)
			}
			if e.Channels < 1 || e.Spatial < 1 {
				t.Errorf("%s: degenerate exit %+v", arch, e)
			}
		}
	}
}

func TestModelsTrainToLowerLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, arch := range []Arch{ResNet18, MobileNetV2} {
		cfg := tinyCfg(arch)
		m := MustBuild(cfg, nil)
		x := tensor.Randn(rng, 1, 8, 3, 32, 32)
		labels := make([]int, 8)
		for i := range labels {
			labels[i] = rng.Intn(cfg.NumClasses)
		}
		opt := nn.NewSGD(0.02, 0.5, 0)
		first, last := 0.0, 0.0
		for step := 0; step < 12; step++ {
			nn.ZeroGrads(m)
			logits := m.Forward(x, true)
			loss, grad := nn.CrossEntropy(logits, labels)
			if step == 0 {
				first = loss
			}
			last = loss
			m.Backward(grad)
			opt.Step(m.Params())
		}
		if last >= first {
			t.Errorf("%s: loss did not decrease (%.4f -> %.4f)", arch, first, last)
		}
	}
}

func TestIsBufferName(t *testing.T) {
	if !IsBufferName("stem.bn.running_mean") || !IsBufferName("x.running_var") {
		t.Fatal("buffer names not recognised")
	}
	if IsBufferName("stem.bn.gamma") || IsBufferName("fc.weight") {
		t.Fatal("trainable names misclassified")
	}
}

func TestParamCountExcludesBuffers(t *testing.T) {
	st := nn.State{
		"a.weight":       tensor.New(2, 2),
		"a.running_mean": tensor.New(2),
	}
	if got := ParamCount(st); got != 4 {
		t.Fatalf("ParamCount = %d, want 4", got)
	}
}
