package models

import (
	"strings"

	"adaptivefl/internal/nn"
	"adaptivefl/internal/tensor"
)

// Stats summarises a model's size and compute cost.
type Stats struct {
	Params int64 // trainable parameters (buffers excluded)
	MACs   int64 // multiply-accumulates per forward pass (conv + linear)
}

// macCounter is implemented by composite blocks that know their own MAC
// count and output spatial size.
type macCounter interface {
	countMACs(spatial int) (int64, int)
}

func convMACs(c *nn.Conv2D, spatial int) (int64, int) {
	out := tensor.ConvOutSize(spatial, c.K, c.Stride, c.Pad)
	macs := int64(c.OutC) * int64(c.InC) * int64(c.K*c.K) * int64(out*out)
	return macs, out
}

func depthwiseMACs(d *nn.DepthwiseConv2D, spatial int) (int64, int) {
	out := tensor.ConvOutSize(spatial, d.K, d.Stride, d.Pad)
	macs := int64(d.C) * int64(d.K*d.K) * int64(out*out)
	return macs, out
}

// Stats walks the layer chain, tracking spatial size, and returns the
// trainable parameter count and the MAC count of one forward pass.
// Batch-norm and activation costs are excluded, matching how the paper's
// Table 1 reports #FLOPS (multiply-accumulates of conv and FC layers).
func (m *Model) Stats() Stats {
	var st Stats
	for _, p := range m.Params() {
		if !p.Buffer {
			st.Params += int64(p.Val.Numel())
		}
	}
	spatial := m.Cfg.InputSize
	for _, l := range m.Layers {
		switch v := l.(type) {
		case *nn.Conv2D:
			macs, out := convMACs(v, spatial)
			st.MACs += macs
			spatial = out
		case *nn.DepthwiseConv2D:
			macs, out := depthwiseMACs(v, spatial)
			st.MACs += macs
			spatial = out
		case *nn.Linear:
			st.MACs += int64(v.In) * int64(v.Out)
		case *nn.MaxPool2D:
			spatial = tensor.ConvOutSize(spatial, v.K, v.Stride, 0)
		case *nn.AvgPool2D:
			spatial = tensor.ConvOutSize(spatial, v.K, v.Stride, 0)
		case *nn.GlobalAvgPool2D:
			spatial = 1
		case macCounter:
			macs, out := v.countMACs(spatial)
			st.MACs += macs
			spatial = out
		}
	}
	return st
}

// ParamCount returns the number of trainable parameters in a state dict,
// identifying buffers by the naming convention used across this package
// (running_mean / running_var).
func ParamCount(st nn.State) int64 {
	var n int64
	for name, v := range st {
		if IsBufferName(name) {
			continue
		}
		n += int64(v.Numel())
	}
	return n
}

// IsBufferName reports whether a parameter name denotes a non-trainable
// buffer under this package's naming convention.
func IsBufferName(name string) bool {
	return strings.HasSuffix(name, ".running_mean") || strings.HasSuffix(name, ".running_var")
}
