package models

import "adaptivefl/internal/tensor"

// CountStats computes Stats analytically from a width vector, without
// allocating any weights. It mirrors the builders exactly (the package
// tests cross-validate it against Model.Stats() on built models) and is
// what the pruning machinery uses to size pool members and to run the
// on-device resource-aware search cheaply even at paper scale.
func CountStats(cfg Config, widths []int) Stats {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	spec := cfg.Spec()
	if widths == nil {
		widths = spec.FullWidths
	}
	switch cfg.Arch {
	case VGG16:
		return countVGG(cfg, widths)
	case ResNet18:
		return countResNet(cfg, spec, widths)
	case MobileNetV2:
		return countMobileNet(cfg, widths)
	}
	panic("unreachable")
}

func countVGG(cfg Config, widths []int) Stats {
	var st Stats
	in := int64(cfg.InChannels)
	spatial := int64(cfg.InputSize)
	for i := 0; i < 13; i++ {
		out := int64(widths[i])
		st.Params += out*in*9 + 2*out // conv + BN gamma/beta
		st.MACs += out * in * 9 * spatial * spatial
		in = out
		if vggPoolAfter[i] {
			spatial /= 2
		}
	}
	features := in * spatial * spatial
	fc1, fc2 := int64(widths[13]), int64(widths[14])
	classes := int64(cfg.NumClasses)
	st.Params += fc1*features + fc1
	st.MACs += fc1 * features
	st.Params += fc2*fc1 + fc2
	st.MACs += fc2 * fc1
	st.Params += classes*fc2 + classes
	st.MACs += classes * fc2
	return st
}

func countResNet(cfg Config, spec Spec, widths []int) Stats {
	var st Stats
	w1 := int64(widths[0])
	spatial := int64(cfg.InputSize)
	st.Params += w1*int64(cfg.InChannels)*9 + 2*w1
	st.MACs += w1 * int64(cfg.InChannels) * 9 * spatial * spatial
	in := w1
	for stage := 0; stage < 4; stage++ {
		out := int64(widths[stage])
		stride := 1
		if stage > 0 {
			stride = 2
		}
		outSp := spatial
		if stride == 2 {
			outSp = int64(tensor.ConvOutSize(int(spatial), 3, 2, 1))
		}
		// block1: conv1 (in->out, stride), conv2 (out->out), optional proj.
		st.Params += out*in*9 + 2*out
		st.MACs += out * in * 9 * outSp * outSp
		st.Params += out*out*9 + 2*out
		st.MACs += out * out * 9 * outSp * outSp
		fullIn := spec.FullWidths[0]
		if stage > 0 {
			fullIn = spec.FullWidths[stage-1]
		}
		if stride != 1 || fullIn != spec.FullWidths[stage] {
			st.Params += out*in + 2*out
			st.MACs += out * in * outSp * outSp
		}
		// block2: two out->out convs.
		st.Params += 2 * (out*out*9 + 2*out)
		st.MACs += 2 * out * out * 9 * outSp * outSp
		spatial = outSp
		in = out
	}
	classes := int64(cfg.NumClasses)
	st.Params += classes*in + classes
	st.MACs += classes * in
	return st
}

func countMobileNet(cfg Config, widths []int) Stats {
	var st Stats
	stemW := int64(widths[0])
	spatial := int64(cfg.InputSize)
	st.Params += stemW*int64(cfg.InChannels)*9 + 2*stemW
	st.MACs += stemW * int64(cfg.InChannels) * 9 * spatial * spatial
	in := stemW
	for gi, g := range mobilenetGroups {
		out := int64(widths[gi+1])
		for bi := 0; bi < g.blocks; bi++ {
			stride := 1
			if bi == 0 {
				stride = g.stride
			}
			hidden := in * int64(g.expand)
			if g.expand != 1 {
				st.Params += hidden*in + 2*hidden
				st.MACs += hidden * in * spatial * spatial
			}
			outSp := spatial
			if stride == 2 {
				outSp = int64(tensor.ConvOutSize(int(spatial), 3, 2, 1))
			}
			st.Params += hidden*9 + 2*hidden
			st.MACs += hidden * 9 * outSp * outSp
			st.Params += out*hidden + 2*out
			st.MACs += out * hidden * outSp * outSp
			spatial = outSp
			in = out
		}
	}
	lastW := int64(widths[8])
	st.Params += lastW*in + 2*lastW
	st.MACs += lastW * in * spatial * spatial
	classes := int64(cfg.NumClasses)
	st.Params += classes*lastW + classes
	st.MACs += classes * lastW
	return st
}
